// Ablations over EUCON's design choices (DESIGN.md §5), quantified on the
// full simulator:
//   A. control-penalty form (Δr vs Δr-difference, the eq.-7 ambiguity)
//   B. hard vs soft utilization constraints at high gain (the §7.2
//      oscillation despite analytic stability)
//   C. horizons P/M
//   D. reference time constant Tref/Ts (speed vs smoothness, §6.3)
//   E. controller family: EUCON vs PID vs OPEN under dynamic load
//   F. feedback-lane delay sensitivity (the paper assumes zero)
#include <cstdio>

#include "bench_util.h"
#include "eucon/eucon.h"

using namespace eucon;

namespace {

struct Outcome {
  double mean, sd;
  int settle;
};

ExperimentConfig simple_config(control::MpcParams params, double etf,
                               double lane_delay = 0.0,
                               ControllerKind kind = ControllerKind::kEucon) {
  ExperimentConfig cfg;
  cfg.spec = workloads::simple();
  cfg.mpc = params;
  cfg.controller = kind;
  cfg.sim.etf = rts::EtfProfile::constant(etf);
  cfg.sim.jitter = 0.1;
  cfg.sim.seed = 42;
  cfg.sim.feedback_lane_delay = lane_delay;
  cfg.num_periods = 300;
  return cfg;
}

Outcome simple_outcome(const ExperimentResult& res) {
  const auto a = metrics::acceptability(res, 0);
  return {a.mean, a.stddev, metrics::settling_time(res, 0, 0, 0.05, 10)};
}

// Each ablation cell is an independent run: fan the section's configs
// through the batch engine, map results to outcomes in config order.
std::vector<Outcome> run_simple_batch(
    const std::vector<ExperimentConfig>& cfgs) {
  const std::vector<ExperimentResult> results = run_batch(cfgs);
  std::vector<Outcome> out;
  out.reserve(results.size());
  for (const auto& res : results) out.push_back(simple_outcome(res));
  return out;
}

ExperimentConfig medium_dynamic_config(ControllerKind kind) {
  ExperimentConfig cfg;
  cfg.spec = workloads::medium();
  cfg.mpc = workloads::medium_controller_params();
  cfg.controller = kind;
  cfg.pid = control::PidParams{};
  cfg.sim.etf = rts::EtfProfile::steps(
      {{0.0, 0.5}, {100000.0, 0.9}, {200000.0, 0.33}});
  cfg.sim.jitter = 0.2;
  cfg.sim.seed = 7;
  cfg.num_periods = 300;
  return cfg;
}

Outcome medium_outcome(const ExperimentResult& res) {
  const auto a = metrics::acceptability(res, 0, 160, 200);
  return {a.mean, a.stddev, metrics::settling_time(res, 0, 100, 0.07, 10)};
}

}  // namespace

int main() {
  bench::ShapeChecks checks;

  // --- A: penalty form -----------------------------------------------------
  std::printf("# A. control-penalty form (SIMPLE, etf=0.5)\n");
  bench::print_header({"form", "mean", "sd", "settle"});
  control::MpcParams p = workloads::simple_controller_params();
  std::vector<ExperimentConfig> a_cfgs{simple_config(p, 0.5)};
  p.penalty_form = control::PenaltyForm::kDeltaDeltaRate;
  a_cfgs.push_back(simple_config(p, 0.5));
  const std::vector<Outcome> a_out = run_simple_batch(a_cfgs);
  const Outcome& dr = a_out[0];
  const Outcome& ddr = a_out[1];
  std::printf("delta_rate,%.4f,%.4f,%d\n", dr.mean, dr.sd, dr.settle);
  std::printf("delta_delta_rate,%.4f,%.4f,%d\n", ddr.mean, ddr.sd, ddr.settle);
  checks.expect(std::abs(dr.mean - 0.828) < 0.02 && dr.sd < 0.05,
                "A: default (delta-rate) penalty converges cleanly");
  checks.expect(std::abs(ddr.mean - 0.828) < 0.03,
                "A: literal eq.-7 penalty still tracks in simulation "
                "(instability is confined to null(F) rate drift)");

  // --- B: hard vs soft constraints at high gain -----------------------------
  std::printf("\n# B. constraint mode at etf=5 (SIMPLE)\n");
  bench::print_header({"mode", "mean", "sd"});
  p = workloads::simple_controller_params();
  std::vector<ExperimentConfig> b_cfgs{simple_config(p, 5.0)};
  p.constraint_mode = control::ConstraintMode::kSoftOnly;
  b_cfgs.push_back(simple_config(p, 5.0));
  const std::vector<Outcome> b_out = run_simple_batch(b_cfgs);
  const Outcome& hard5 = b_out[0];
  const Outcome& soft5 = b_out[1];
  std::printf("hard,%.4f,%.4f\n", hard5.mean, hard5.sd);
  std::printf("soft,%.4f,%.4f\n", soft5.mean, soft5.sd);
  checks.expect(hard5.sd > 0.05,
                "B: hard constraints limit-cycle at high gain (paper's "
                "sigma>0.05 for etf 4-6)");
  checks.expect(soft5.sd < hard5.sd,
                "B: dropping the hard rows reduces the oscillation");

  // --- C: horizons ----------------------------------------------------------
  std::printf("\n# C. horizons (SIMPLE, etf=0.5)\n");
  bench::print_header({"P", "M", "mean", "sd", "settle"});
  const std::vector<std::pair<int, int>> horizons{{1, 1}, {2, 1}, {4, 2},
                                                  {8, 4}};
  std::vector<ExperimentConfig> c_cfgs;
  for (auto [ph, mh] : horizons) {
    p = workloads::simple_controller_params();
    p.prediction_horizon = ph;
    p.control_horizon = mh;
    c_cfgs.push_back(simple_config(p, 0.5));
  }
  const std::vector<Outcome> c_out = run_simple_batch(c_cfgs);
  for (std::size_t i = 0; i < horizons.size(); ++i) {
    const auto [ph, mh] = horizons[i];
    const Outcome& o = c_out[i];
    std::printf("%d,%d,%.4f,%.4f,%d\n", ph, mh, o.mean, o.sd, o.settle);
    checks.expect(std::abs(o.mean - 0.828) < 0.02,
                  "C: converges with P=" + std::to_string(ph) +
                      ", M=" + std::to_string(mh));
  }

  // --- D: reference time constant -------------------------------------------
  std::printf("\n# D. Tref/Ts (SIMPLE, etf=0.5)\n");
  bench::print_header({"tref_over_ts", "mean", "sd", "settle"});
  const std::vector<double> trefs{1.0, 4.0, 12.0};
  std::vector<ExperimentConfig> d_cfgs;
  for (double tr : trefs) {
    p = workloads::simple_controller_params();
    p.tref_over_ts = tr;
    d_cfgs.push_back(simple_config(p, 0.5));
  }
  const std::vector<Outcome> tref_runs = run_simple_batch(d_cfgs);
  for (std::size_t i = 0; i < trefs.size(); ++i)
    std::printf("%.0f,%.4f,%.4f,%d\n", trefs[i], tref_runs[i].mean,
                tref_runs[i].sd, tref_runs[i].settle);
  checks.expect(tref_runs[0].settle <= tref_runs[2].settle,
                "D: smaller Tref converges no slower than larger Tref");
  checks.expect(std::abs(tref_runs[2].mean - 0.828) < 0.02,
                "D: slow reference still reaches the set point");

  // --- E: controller family under dynamic load ------------------------------
  std::printf("\n# E. controller family (MEDIUM, dynamic etf), phase-2 window\n");
  bench::print_header({"controller", "mean", "sd", "settle_after_step"});
  const std::vector<ExperimentResult> e_results =
      run_batch(std::vector<ExperimentConfig>{
          medium_dynamic_config(ControllerKind::kEucon),
          medium_dynamic_config(ControllerKind::kPid),
          medium_dynamic_config(ControllerKind::kOpen)});
  const Outcome eucon = medium_outcome(e_results[0]);
  const Outcome pid = medium_outcome(e_results[1]);
  const Outcome open = medium_outcome(e_results[2]);
  std::printf("EUCON,%.4f,%.4f,%d\n", eucon.mean, eucon.sd, eucon.settle);
  std::printf("PID,%.4f,%.4f,%d\n", pid.mean, pid.sd, pid.settle);
  std::printf("OPEN,%.4f,%.4f,%d\n", open.mean, open.sd, open.settle);
  checks.expect(std::abs(eucon.mean - 0.7286) < 0.02,
                "E: EUCON holds the set point through the load step");
  checks.expect(std::abs(open.mean - 0.7286) > 0.05,
                "E: OPEN misses the set point through the load step");
  checks.expect(eucon.settle >= 0, "E: EUCON re-settles after the step");

  // --- E2: the paper's central motivation, quantified ------------------------
  // Independent per-processor feedback control ([17], the §2 baseline)
  // against EUCON on a system where one processor hosts only a remote
  // subtask — the architecture has no actuator for it.
  {
    std::printf("\n# E2. MIMO vs independent per-processor control\n");
    rts::SystemSpec s;
    s.num_processors = 2;
    rts::TaskSpec t1;
    t1.name = "T1";
    t1.subtasks = {{0, 40.0}};
    t1.rate_min = 1.0 / 1200.0;
    t1.rate_max = 1.0 / 45.0;
    t1.initial_rate = 1.0 / 150.0;
    rts::TaskSpec t2;
    t2.name = "T2";
    t2.subtasks = {{0, 50.0}, {1, 20.0}};
    t2.rate_min = 1.0 / 1600.0;
    t2.rate_max = 1.0 / 70.0;
    t2.initial_rate = 1.0 / 220.0;
    s.tasks = {t1, t2};

    ExperimentConfig cfg;
    cfg.spec = s;
    cfg.set_points = linalg::Vector{0.8, 0.25};
    cfg.mpc = workloads::medium_controller_params();
    cfg.sim.etf = rts::EtfProfile::constant(1.0);
    cfg.sim.jitter = 0.1;
    cfg.sim.seed = 17;
    cfg.num_periods = 300;

    bench::print_header({"controller", "u_P1_mean", "u_P2_mean", "target_P1",
                         "target_P2"});
    std::vector<ExperimentConfig> e2_cfgs;
    cfg.controller = ControllerKind::kEucon;
    e2_cfgs.push_back(cfg);
    cfg.controller = ControllerKind::kUncoordinated;
    e2_cfgs.push_back(cfg);
    const std::vector<ExperimentResult> e2_results = run_batch(e2_cfgs);
    const ExperimentResult& mimo = e2_results[0];
    const ExperimentResult& ind = e2_results[1];
    const double mimo_u2 = metrics::utilization_stats(mimo, 1, 100).mean();
    const double ind_u2 = metrics::utilization_stats(ind, 1, 100).mean();
    std::printf("EUCON,%.4f,%.4f,0.8,0.25\n",
                metrics::utilization_stats(mimo, 0, 100).mean(), mimo_u2);
    std::printf("FCS-IND,%.4f,%.4f,0.8,0.25\n",
                metrics::utilization_stats(ind, 0, 100).mean(), ind_u2);
    checks.expect(std::abs(mimo_u2 - 0.25) < 0.02,
                  "E2: EUCON regulates the actuator-less processor through "
                  "the coupling");
    checks.expect(std::abs(ind_u2 - 0.25) > 0.05,
                  "E2: independent per-processor control leaves it "
                  "unregulated (the paper's central motivation)");
  }

  // --- G: fixed G = I vs on-line gain estimation -----------------------------
  std::printf("\n# G. adaptive gain estimation (SIMPLE, etf sweep)\n");
  bench::print_header({"etf", "fixed_mean", "fixed_sd", "adaptive_mean",
                       "adaptive_sd"});
  bool adaptive_always_smoother = true;
  double adaptive_sd_at_5 = 1.0, fixed_sd_at_5 = 0.0;
  const std::vector<double> g_etfs{0.5, 2.0, 5.0};
  std::vector<ExperimentConfig> g_cfgs;
  for (double etf : g_etfs) {
    ExperimentConfig cfg;
    cfg.spec = workloads::simple();
    cfg.mpc = workloads::simple_controller_params();
    cfg.sim.etf = rts::EtfProfile::constant(etf);
    cfg.sim.jitter = 0.1;
    cfg.sim.seed = 42;
    cfg.num_periods = 300;
    cfg.controller = ControllerKind::kEucon;
    g_cfgs.push_back(cfg);
    cfg.controller = ControllerKind::kAdaptive;
    g_cfgs.push_back(cfg);
  }
  const std::vector<ExperimentResult> g_results = run_batch(g_cfgs);
  for (std::size_t i = 0; i < g_etfs.size(); ++i) {
    const double etf = g_etfs[i];
    const auto fixed = metrics::acceptability(g_results[2 * i], 0);
    const auto adaptive = metrics::acceptability(g_results[2 * i + 1], 0);
    std::printf("%.1f,%.4f,%.4f,%.4f,%.4f\n", etf, fixed.mean, fixed.stddev,
                adaptive.mean, adaptive.stddev);
    if (etf >= 2.0 && adaptive.stddev > fixed.stddev)
      adaptive_always_smoother = false;
    if (etf == 5.0) {  // eucon-lint: allow(float-equality)
      adaptive_sd_at_5 = adaptive.stddev;
      fixed_sd_at_5 = fixed.stddev;
    }
  }
  checks.expect(adaptive_always_smoother,
                "G: gain estimation reduces the high-gain oscillation");
  checks.expect(adaptive_sd_at_5 < 0.6 * fixed_sd_at_5,
                "G: adaptive EUCON cuts the etf=5 oscillation to well under "
                "60% of fixed EUCON's");

  // --- F: feedback-lane delay -----------------------------------------------
  std::printf("\n# F. feedback-lane delay (SIMPLE, etf=0.5)\n");
  bench::print_header({"delay_units", "mean", "sd", "settle"});
  const std::vector<double> delays{0.0, 500.0, 1500.0};
  std::vector<ExperimentConfig> f_cfgs;
  for (double d : delays)
    f_cfgs.push_back(
        simple_config(workloads::simple_controller_params(), 0.5, d));
  const std::vector<Outcome> lane_runs = run_simple_batch(f_cfgs);
  for (std::size_t i = 0; i < delays.size(); ++i)
    std::printf("%.0f,%.4f,%.4f,%d\n", delays[i], lane_runs[i].mean,
                lane_runs[i].sd, lane_runs[i].settle);
  checks.expect(std::abs(lane_runs[1].mean - 0.828) < 0.02,
                "F: sub-period lane delay is tolerated");
  checks.expect(lane_runs[2].sd >= lane_runs[0].sd,
                "F: multi-period delay degrades smoothness (justifies the "
                "paper's zero-delay assumption for fast LANs)");

  return checks.finish("bench_ablation");
}
