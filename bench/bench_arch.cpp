// Scaling and architecture study beyond the paper's evaluation:
//
//   1. Centralized EUCON vs decentralized (DEUCON-style) control across
//      growing random systems — tracking quality and per-node problem
//      size. The paper motivates decentralization for "larger scale
//      systems" (§8); this bench quantifies the trade.
//   2. RMS vs EDF as the underlying scheduler: with EDF the schedulable
//      bound is 1.0, so set points can be raised while keeping deadline
//      misses near zero.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "eucon/eucon.h"

using namespace eucon;

namespace {

struct QualityRow {
  int processors, tasks;
  double cen_err, cen_sd, dec_err, dec_sd;
  std::size_t cen_vars, dec_vars;
};

struct SizeCase {
  int processors, tasks;
  std::uint64_t seed;
  rts::SystemSpec spec;
};

SizeCase make_case(int processors, int tasks, std::uint64_t seed) {
  workloads::RandomWorkloadParams wp;
  wp.num_processors = processors;
  wp.num_tasks = tasks;
  wp.min_chain = 1;
  wp.max_chain = 3;
  return {processors, tasks, seed, workloads::random_workload(wp, seed)};
}

ExperimentConfig size_config(const SizeCase& cs, bool decentralized) {
  ExperimentConfig cfg;
  cfg.spec = cs.spec;
  cfg.controller = decentralized ? ControllerKind::kDecentralized
                                 : ControllerKind::kEucon;
  cfg.mpc = workloads::medium_controller_params();
  cfg.sim.etf = rts::EtfProfile::constant(0.6);
  cfg.sim.jitter = 0.2;
  cfg.sim.seed = cs.seed;
  cfg.num_periods = 200;
  return cfg;
}

void worst_tracking(const ExperimentResult& res, int processors,
                    double* worst_err, double* worst_sd) {
  *worst_err = 0.0;
  *worst_sd = 0.0;
  for (std::size_t p = 0; p < static_cast<std::size_t>(processors); ++p) {
    const auto s = metrics::utilization_stats(res, p, 100);
    *worst_err = std::max(*worst_err, std::abs(s.mean() - res.set_points[p]));
    *worst_sd = std::max(*worst_sd, s.stddev());
  }
}

// Builds the quality row for one size from its (centralized, decentralized)
// result pair.
QualityRow make_row(const SizeCase& cs, const ExperimentResult& cen,
                    const ExperimentResult& dec) {
  const auto model = control::make_plant_model(cs.spec);
  QualityRow row{};
  row.processors = cs.processors;
  row.tasks = cs.tasks;
  worst_tracking(cen, cs.processors, &row.cen_err, &row.cen_sd);
  worst_tracking(dec, cs.processors, &row.dec_err, &row.dec_sd);
  control::DecentralizedMpcController probe(
      model, workloads::medium_controller_params(),
      cs.spec.initial_rate_vector());
  const auto horizon = static_cast<std::size_t>(
      workloads::medium_controller_params().control_horizon);
  row.dec_vars = probe.max_local_problem_size() * horizon;
  row.cen_vars = model.num_tasks() * horizon;
  return row;
}

}  // namespace

int main() {
  bench::ShapeChecks checks;

  std::printf("# Centralized vs decentralized across system size\n");
  bench::print_header({"procs", "tasks", "cen_worst_err", "cen_worst_sd",
                       "dec_worst_err", "dec_worst_sd", "cen_vars",
                       "dec_vars"});
  // All (size, architecture) runs are independent: one batch of 8 through
  // the parallel engine, results consumed in spec order.
  std::vector<SizeCase> cases;
  for (auto [n, m] : {std::pair{2, 6}, {4, 12}, {6, 18}, {8, 32}})
    cases.push_back(make_case(n, m, 1000 + static_cast<std::uint64_t>(n)));
  std::vector<ExperimentSpec> size_specs;
  size_specs.reserve(2 * cases.size());
  for (const auto& cs : cases) {
    size_specs.push_back(
        {"cen p" + std::to_string(cs.processors), size_config(cs, false)});
    size_specs.push_back(
        {"dec p" + std::to_string(cs.processors), size_config(cs, true)});
  }
  const std::vector<ExperimentResult> size_results = run_batch(size_specs);

  std::vector<QualityRow> rows;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    rows.push_back(
        make_row(cases[i], size_results[2 * i], size_results[2 * i + 1]));
    const auto& r = rows.back();
    bench::print_row({static_cast<double>(r.processors),
                      static_cast<double>(r.tasks), r.cen_err, r.cen_sd,
                      r.dec_err, r.dec_sd, static_cast<double>(r.cen_vars),
                      static_cast<double>(r.dec_vars)});
  }

  // The curated LARGE workload (8 processors, 56 subtasks): the "larger
  // scale" regime of §8, both architectures.
  {
    ExperimentConfig cfg;
    cfg.spec = workloads::large();
    cfg.mpc = workloads::medium_controller_params();
    cfg.sim.etf = rts::EtfProfile::constant(0.6);
    cfg.sim.jitter = 0.2;
    cfg.sim.seed = 3;
    cfg.num_periods = 200;
    QualityRow row{};
    row.processors = 8;
    row.tasks = static_cast<int>(cfg.spec.num_tasks());
    std::vector<ExperimentSpec> large_specs;
    cfg.controller = ControllerKind::kEucon;
    large_specs.push_back({"large cen", cfg});
    cfg.controller = ControllerKind::kDecentralized;
    large_specs.push_back({"large dec", cfg});
    const std::vector<ExperimentResult> large_results = run_batch(large_specs);
    worst_tracking(large_results[0], 8, &row.cen_err, &row.cen_sd);
    worst_tracking(large_results[1], 8, &row.dec_err, &row.dec_sd);
    std::printf("LARGE(curated): ");
    bench::print_row({8, static_cast<double>(row.tasks), row.cen_err,
                      row.cen_sd, row.dec_err, row.dec_sd, 0, 0});
    checks.expect(row.cen_err < 0.03 && row.cen_sd < 0.05,
                  "centralized EUCON acceptable on the curated LARGE system");
    checks.expect(row.dec_err < 0.06,
                  "decentralized tracks the curated LARGE system");
  }

  std::printf("\n");
  for (const auto& r : rows) {
    checks.expect(r.cen_err < 0.05,
                  "centralized tracks at " + std::to_string(r.processors) +
                      " processors / " + std::to_string(r.tasks) + " tasks");
    // Decentralization degrades tracking where the coupling is strong
    // (every node's neighborhood is the whole system in the 2-processor
    // case) but stays bounded — the DEUCON trade-off.
    checks.expect(r.dec_err < 0.12,
                  "decentralized stays bounded at " +
                      std::to_string(r.processors) + " processors / " +
                      std::to_string(r.tasks) + " tasks");
  }
  checks.expect(rows[1].dec_err < 0.05 && rows[3].dec_err < 0.08,
                "decentralized tracking tightens on larger, more loosely "
                "coupled systems");
  checks.expect(rows.back().dec_vars < rows.back().cen_vars,
                "decentralized local problems stay smaller than the "
                "centralized one at the largest size");

  // --- RMS vs EDF -----------------------------------------------------------
  std::printf("# Scheduler study on MEDIUM: RMS at the Liu-Layland bound vs "
              "EDF at a raised set point\n");
  bench::print_header({"policy", "set_point_P1", "mean_u_P1", "e2e_miss",
                       "subtask_miss"});
  struct SchedRow {
    double miss_sub;
    double mean;
  };
  SchedRow rms{}, edf{};
  std::vector<ExperimentSpec> sched_specs;
  for (auto policy : {rts::SchedulingPolicy::kRateMonotonic,
                      rts::SchedulingPolicy::kEdf}) {
    ExperimentConfig cfg;
    cfg.spec = workloads::medium();
    cfg.mpc = workloads::medium_controller_params();
    cfg.sim.etf = rts::EtfProfile::constant(0.7);
    cfg.sim.jitter = 0.2;
    cfg.sim.seed = 3;
    cfg.sim.policy = policy;
    cfg.num_periods = 200;
    const bool is_edf = policy == rts::SchedulingPolicy::kEdf;
    if (is_edf) {
      // EDF's schedulable bound is 1.0; run the processors hotter while
      // keeping headroom for the stochastic execution times.
      cfg.set_points = linalg::Vector(4, 0.90);
    }
    sched_specs.push_back({is_edf ? "EDF" : "RMS", cfg});
  }
  const std::vector<ExperimentResult> sched_results = run_batch(sched_specs);
  for (std::size_t i = 0; i < sched_results.size(); ++i) {
    const ExperimentResult& res = sched_results[i];
    const bool is_edf = i == 1;
    const auto s = metrics::utilization_stats(res, 0, 100);
    std::printf("%s,%.3f,%.4f,%.4f,%.4f\n", is_edf ? "EDF" : "RMS",
                res.set_points[0], s.mean(), res.deadlines.e2e_miss_ratio(),
                res.deadlines.subtask_miss_ratio());
    (is_edf ? edf : rms) = {res.deadlines.subtask_miss_ratio(), s.mean()};
  }
  checks.expect(edf.mean > rms.mean + 0.1,
                "EDF sustains a much higher utilization set point");
  checks.expect(edf.miss_sub < 0.05,
                "EDF keeps subtask misses low even at u = 0.90");

  return checks.finish("bench_arch");
}
