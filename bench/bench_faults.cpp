// Robustness demo (docs/robustness.md): the blackout_demo scenario — a
// 50-period lane-0 outage plus a 10-period controller blackout — run
// without degradation and under each watchdog policy. Prints the per-period
// utilization series side by side and shape-checks the acceptance claim:
// unbounded drift without the watchdog, bounded utilization with it.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "eucon/eucon.h"

using namespace eucon;

namespace {

const char* const kDemoPlanJson = R"({
  "seed": 7,
  "lane_outages": [{"lane": 0, "start": 5, "duration": 50}],
  "controller_blackouts": [{"start": 60, "duration": 10}]
})";

ExperimentConfig demo_config(faults::DegradePolicy policy, int stale_limit) {
  ExperimentConfig cfg;
  cfg.spec = workloads::medium();
  cfg.mpc = workloads::medium_controller_params();
  cfg.sim.etf = rts::EtfProfile::constant(0.8);
  cfg.sim.jitter = 0.1;
  cfg.sim.seed = 1;
  cfg.num_periods = 120;
  cfg.faults = faults::parse_fault_plan(kDemoPlanJson);
  cfg.degrade.policy = policy;
  cfg.degrade.stale_limit = stale_limit;
  return cfg;
}

double max_u0(const ExperimentResult& res) {
  double m = 0.0;
  for (const auto& rec : res.trace) m = std::max(m, rec.u[0]);
  return m;
}

}  // namespace

int main() {
  bench::ShapeChecks checks;

  const struct {
    const char* label;
    faults::DegradePolicy policy;
    int stale_limit;
  } runs[] = {
      {"none", faults::DegradePolicy::kNone, 0},
      {"hold-rates", faults::DegradePolicy::kHoldRates, 3},
      {"open-loop", faults::DegradePolicy::kOpenLoop, 3},
      {"decentralized", faults::DegradePolicy::kDecentralized, 3},
  };

  std::vector<ExperimentResult> results;
  for (const auto& r : runs)
    results.push_back(run_experiment(demo_config(r.policy, r.stale_limit)));

  std::printf("# Robustness demo: lane-0 outage k=5..54, blackout k=60..69\n");
  bench::print_header({"k", "u_P1_none", "u_P1_hold", "u_P1_open",
                       "u_P1_deucon", "set_P1"});
  for (std::size_t i = 0; i < results[0].trace.size(); ++i)
    bench::print_row({static_cast<double>(results[0].trace[i].k),
                      results[0].trace[i].u[0], results[1].trace[i].u[0],
                      results[2].trace[i].u[0], results[3].trace[i].u[0],
                      results[0].set_points[0]});
  std::printf("\n");

  // Without the watchdog the frozen lane-0 report drives P1 into
  // saturation and real deadline misses.
  checks.expect(max_u0(results[0]) > 0.99,
                "no degradation: P1 saturates during the lane outage");
  checks.expect(results[0].deadlines.e2e_miss_ratio() > 0.1,
                "no degradation: end-to-end deadlines are missed");

  for (std::size_t i = 1; i < 4; ++i) {
    const std::string label = runs[i].label;
    checks.expect(max_u0(results[i]) < 0.9,
                  label + ": P1 utilization stays bounded");
    bool all_acceptable = true;
    for (std::size_t p = 0; p < 4; ++p)
      all_acceptable &= metrics::acceptability(results[i], p).acceptable();
    checks.expect(all_acceptable, label + ": every processor acceptable");
    checks.expect(results[i].deadlines.e2e_miss_ratio() < 1e-12,
                  label + ": no end-to-end deadline misses");
    checks.expect(results[i].stale_drops == 1 && results[i].stale_restores == 1,
                  label + ": stale lane dropped once and restored once");
  }

  // Identical fault accounting across policies: the injected faults are a
  // function of (plan, seed), not of how the loop reacts to them.
  for (std::size_t i = 1; i < 4; ++i)
    checks.expect(results[i].forced_losses == results[0].forced_losses &&
                      results[i].blackout_periods ==
                          results[0].blackout_periods,
                  std::string(runs[i].label) +
                      ": same injected faults as the undegraded run");

  return checks.finish("bench_faults");
}
