// Figure 3: CPU utilization of SIMPLE over 300 sampling periods under
// (a) execution-time factor 0.5 — smooth convergence to the 0.828 set
// point on both processors — and (b) execution-time factor 7 — instability
// with severe oscillation.
#include <cstdio>

#include "bench_util.h"
#include "eucon/eucon.h"

using namespace eucon;

namespace {

ExperimentResult run_simple(double etf) {
  ExperimentConfig cfg;
  cfg.spec = workloads::simple();
  cfg.mpc = workloads::simple_controller_params();
  cfg.sim.etf = rts::EtfProfile::constant(etf);
  cfg.sim.jitter = 0.1;
  cfg.sim.seed = 42;
  cfg.num_periods = 300;
  return run_experiment(cfg);
}

}  // namespace

int main() {
  bench::ShapeChecks checks;

  std::printf("# Figure 3(a): etf = 0.5\n");
  bench::print_header({"k", "u_P1", "u_P2", "set_point"});
  const ExperimentResult a = run_simple(0.5);
  for (const auto& rec : a.trace)
    bench::print_row({static_cast<double>(rec.k), rec.u[0], rec.u[1],
                      a.set_points[0]});

  std::printf("\n# Figure 3(b): etf = 7\n");
  bench::print_header({"k", "u_P1", "u_P2", "set_point"});
  const ExperimentResult b = run_simple(7.0);
  for (const auto& rec : b.trace)
    bench::print_row({static_cast<double>(rec.k), rec.u[0], rec.u[1],
                      b.set_points[0]});

  std::printf("\n");
  // Shape of (a): starts underutilized, converges, stays in band.
  checks.expect(a.trace[0].u[0] < 0.6, "(a) starts underutilized");
  checks.expect(metrics::acceptability(a, 0).acceptable() &&
                    metrics::acceptability(a, 1).acceptable(),
                "(a) both processors converge to the set point (±0.02, σ<0.05)");
  const int settle = metrics::settling_time(a, 0, 0, 0.05, 10);
  checks.expect(settle >= 0 && settle <= 40,
                "(a) converges within ~40 sampling periods");

  // Shape of (b): saturated start, then severe oscillation; no convergence.
  checks.expect(b.trace[0].u[0] > 0.95, "(b) starts fully utilized");
  checks.expect(metrics::acceptability(b, 0).stddev > 0.05,
                "(b) severe oscillation on P1 (σ > 0.05)");
  checks.expect(!metrics::acceptability(b, 1).acceptable(),
                "(b) P2 fails the acceptability criterion");
  // Wide-amplitude swings once the initial overload backlog drains (the
  // paper's trace drops sharply and oscillates; ours oscillates between
  // ~0.55 and saturation — same instability, different transient depth).
  double min_u = 1.0, max_u = 0.0;
  for (const auto& rec : b.trace) {
    if (rec.k < 60) continue;
    min_u = std::min(min_u, rec.u[0]);
    max_u = std::max(max_u, rec.u[0]);
  }
  checks.expect(max_u - min_u > 0.35,
                "(b) sustained wide-amplitude oscillation after the backlog drains");

  return checks.finish("bench_fig3");
}
