// Figure 4: mean ± standard deviation of P1's utilization in SIMPLE as the
// execution-time factor sweeps 0.2..10 (statistics over [100Ts, 300Ts],
// like the paper).
//
// Two sweeps are printed: with Table 1's rate bounds as published (where
// the set point is infeasible below etf ≈ 0.414 — the documented paper
// inconsistency) and with the relaxed bounds that reproduce the claimed
// [0.2, 6.5] tracking range.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "common/check.h"
#include "eucon/eucon.h"

using namespace eucon;

namespace {

struct Point {
  double etf, mean, sd;
};

// The sweep points are independent runs — fanned across the batch engine
// (identical results to a serial loop; see run_batch's determinism
// contract).
std::vector<Point> sweep(const rts::SystemSpec& spec,
                         const std::vector<double>& etfs) {
  std::vector<ExperimentSpec> specs;
  specs.reserve(etfs.size());
  for (double etf : etfs) {
    ExperimentConfig cfg;
    cfg.spec = spec;
    cfg.mpc = workloads::simple_controller_params();
    cfg.sim.etf = rts::EtfProfile::constant(etf);
    cfg.sim.jitter = 0.1;
    cfg.sim.seed = 42;
    cfg.num_periods = 300;
    specs.push_back({"etf=" + std::to_string(etf), cfg});
  }
  const std::vector<ExperimentResult> results = run_batch(specs);
  std::vector<Point> out;
  out.reserve(etfs.size());
  for (std::size_t i = 0; i < etfs.size(); ++i) {
    const auto a = metrics::acceptability(results[i], 0);
    out.push_back({etfs[i], a.mean, a.stddev});
  }
  return out;
}

std::vector<double> etf_grid() {
  std::vector<double> g;
  for (double e = 0.2; e <= 3.01; e += 0.2) g.push_back(e);
  for (double e = 3.5; e <= 10.01; e += 0.5) g.push_back(e);
  return g;
}

const Point& at(const std::vector<Point>& pts, double etf) {
  for (const auto& p : pts)
    if (std::abs(p.etf - etf) < 1e-9) return p;
  EUCON_FAIL("etf grid point missing");
}

}  // namespace

int main() {
  bench::ShapeChecks checks;
  const double set_point = 2.0 * (std::sqrt(2.0) - 1.0);

  std::printf("# Figure 4: SIMPLE, Table-1 rate bounds (set point %.3f)\n",
              set_point);
  bench::print_header({"etf", "mean_u_P1", "stddev_u_P1", "set_point"});
  const auto table1 = sweep(workloads::simple(), etf_grid());
  for (const auto& p : table1)
    bench::print_row({p.etf, p.mean, p.sd, set_point});

  std::printf("\n# Figure 4 (relaxed rate bounds, reproduces the claimed 0.2+ range)\n");
  bench::print_header({"etf", "mean_u_P1", "stddev_u_P1", "set_point"});
  const auto relaxed =
      sweep(workloads::simple_relaxed(), {0.2, 0.3, 0.4, 0.6, 0.8, 1.0});
  for (const auto& p : relaxed)
    bench::print_row({p.etf, p.mean, p.sd, set_point});

  std::printf("\n");
  // Shape checks against the paper's Figure-4 claims.
  for (double e : {0.6, 1.0, 2.0}) {
    const auto& p = at(table1, e);
    checks.expect(std::abs(p.mean - set_point) <= 0.03,
                  "mean tracks the set point at etf=" + std::to_string(e));
  }
  // In the oscillatory-but-stable band the mean stays near the set point
  // even though sigma grows (paper: mean close to set point through 6.5).
  for (double e : {3.0, 5.0, 6.0}) {
    const auto& p = at(table1, e);
    checks.expect(std::abs(p.mean - set_point) <= 0.06,
                  "mean approximately held at etf=" + std::to_string(e));
  }
  checks.expect(at(table1, 1.0).sd < 0.05, "sigma < 0.05 at etf=1");
  checks.expect(at(table1, 2.0).sd < 0.05, "sigma < 0.05 at etf=2");
  checks.expect(at(table1, 5.0).sd > 0.05,
                "sigma exceeds 0.05 when execution times are underestimated (etf=5)");
  checks.expect(at(table1, 1.0).sd < at(table1, 3.0).sd &&
                    at(table1, 3.0).sd < at(table1, 7.0).sd,
                "oscillation grows with the execution-time factor");
  checks.expect(at(table1, 9.0).mean > at(table1, 7.0).mean &&
                    at(table1, 10.0).mean > at(table1, 8.0).mean,
                "mean deviates upward past the critical gain (paper: linear growth)");
  // The documented Table-1 inconsistency: at etf=0.2 the rates saturate.
  checks.expect(std::abs(at(table1, 0.2).mean - 0.4) < 0.05,
                "Table-1 bounds: utilization saturates at 2*etf for etf=0.2 (documented inconsistency)");
  // The relaxed variant reproduces the claimed tracking at 0.2.
  checks.expect(std::abs(at(relaxed, 0.2).mean - set_point) <= 0.02 &&
                    at(relaxed, 0.2).sd < 0.05,
                "relaxed bounds: acceptable at etf=0.2 (paper's claimed range)");

  return checks.finish("bench_fig4");
}
