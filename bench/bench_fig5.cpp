// Figure 5: MEDIUM, mean ± σ of P1's utilization vs execution-time factor
// for EUCON, against the expected (and simulated) utilization under OPEN.
//
// Paper claims reproduced: EUCON is acceptable for every etf in [0.1, 1]
// (at etf = 0.1 EUCON holds ~0.729 while OPEN sits at 0.073); OPEN
// under-/over-utilizes linearly in the estimation error; EUCON's
// oscillation grows once execution times are underestimated.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "common/check.h"
#include "eucon/eucon.h"

using namespace eucon;

namespace {

struct Row {
  double etf, eucon_mean, eucon_sd, open_expected, open_measured;
  double eucon_value, open_value;  // §3.1 application value (normalized rates)
};

}  // namespace

int main() {
  bench::ShapeChecks checks;

  const auto spec = workloads::medium();
  const auto model = control::make_plant_model(spec);
  control::OpenLoopController open_design(model, spec.initial_rate_vector());

  std::vector<Row> rows;
  std::vector<double> etfs;
  for (double e = 0.1; e <= 1.001; e += 0.15) etfs.push_back(e);
  for (double e = 1.5; e <= 6.001; e += 0.5) etfs.push_back(e);

  // Two runs per sweep point (EUCON and OPEN), all independent — one
  // batch of 2*|etfs| experiments through the parallel engine.
  std::vector<ExperimentSpec> specs;
  specs.reserve(2 * etfs.size());
  for (double etf : etfs) {
    ExperimentConfig cfg;
    cfg.spec = spec;
    cfg.mpc = workloads::medium_controller_params();
    cfg.sim.etf = rts::EtfProfile::constant(etf);
    cfg.sim.jitter = 0.2;
    cfg.sim.seed = 7;
    cfg.num_periods = 300;
    specs.push_back({"eucon etf=" + std::to_string(etf), cfg});
    cfg.controller = ControllerKind::kOpen;
    specs.push_back({"open etf=" + std::to_string(etf), cfg});
  }
  const std::vector<ExperimentResult> results = run_batch(specs);

  for (std::size_t i = 0; i < etfs.size(); ++i) {
    const double etf = etfs[i];
    const ExperimentResult& eucon_res = results[2 * i];
    const ExperimentResult& open_res = results[2 * i + 1];
    const auto ea = metrics::acceptability(eucon_res, 0);
    const auto oa = metrics::utilization_stats(open_res, 0, 100);

    rows.push_back({etf, ea.mean, ea.stddev,
                    open_design.expected_utilization(etf)[0], oa.mean(),
                    metrics::accrued_value(eucon_res, spec, 100),
                    metrics::accrued_value(open_res, spec, 100)});
  }

  std::printf("# Figure 5: MEDIUM, P1 (set point %.3f)\n", model.b[0]);
  bench::print_header({"etf", "eucon_mean", "eucon_sd", "open_expected",
                       "open_measured", "set_point", "eucon_value",
                       "open_value"});
  for (const auto& r : rows)
    bench::print_row({r.etf, r.eucon_mean, r.eucon_sd, r.open_expected,
                      r.open_measured, model.b[0], r.eucon_value,
                      r.open_value});

  std::printf("\n");
  auto at = [&](double etf) -> const Row& {
    for (const auto& r : rows)
      if (std::abs(r.etf - etf) < 1e-9) return r;
    EUCON_FAIL("missing etf row");
  };

  // EUCON acceptable across [0.1, 1].
  for (double e : {0.1, 0.55, 1.0}) {
    const Row& r = at(e);
    checks.expect(std::abs(r.eucon_mean - model.b[0]) <= 0.02 &&
                      r.eucon_sd < 0.05,
                  "EUCON acceptable at etf=" + std::to_string(e));
  }
  // The paper's headline contrast at etf = 0.1.
  checks.expect(std::abs(at(0.1).open_measured - 0.073) < 0.02,
                "OPEN utilization ~0.073 at etf=0.1 (paper quotes 0.073)");
  checks.expect(at(0.1).eucon_mean > 0.70,
                "EUCON holds ~0.729 at etf=0.1 where OPEN collapses");
  // OPEN scales linearly with etf until saturation.
  checks.expect(std::abs(at(0.55).open_measured - 0.55 * model.b[0]) < 0.05,
                "OPEN underutilizes proportionally (etf=0.55)");
  checks.expect(at(2.0).open_measured > 0.95,
                "OPEN overloads when execution times are underestimated (etf=2)");
  // Simulated OPEN matches the analytic expectation.
  double max_gap = 0.0;
  for (const auto& r : rows)
    max_gap = std::max(max_gap, std::abs(r.open_measured - r.open_expected));
  checks.expect(max_gap < 0.06,
                "measured OPEN utilization matches etf*B prediction");
  // EUCON oscillation grows with underestimation.
  checks.expect(at(1.0).eucon_sd < at(3.0).eucon_sd,
                "EUCON oscillation grows for etf > 1 (matches SIMPLE)");
  // §3.2: underutilization means lost application value — EUCON recovers
  // the value OPEN wastes under pessimistic estimates.
  checks.expect(at(0.1).eucon_value > 2.0 * at(0.1).open_value,
                "EUCON delivers >2x OPEN's application value at etf=0.1");

  return checks.finish("bench_fig5");
}
