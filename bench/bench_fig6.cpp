// Figure 6: MEDIUM under OPEN while execution times change dynamically
// (etf 0.5 -> 0.9 at 100Ts -> 0.33 at 200Ts). Open-loop rates never react,
// so the utilization fluctuates in lockstep with the load.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "eucon/eucon.h"

using namespace eucon;

int main() {
  bench::ShapeChecks checks;

  ExperimentConfig cfg;
  cfg.spec = workloads::medium();
  cfg.controller = ControllerKind::kOpen;
  cfg.sim.etf = rts::EtfProfile::steps(
      {{0.0, 0.5}, {100000.0, 0.9}, {200000.0, 0.33}});
  cfg.sim.jitter = 0.2;
  cfg.sim.seed = 7;
  cfg.num_periods = 300;
  const ExperimentResult res = run_experiment(cfg);

  std::printf("# Figure 6: MEDIUM under OPEN, dynamic execution times\n");
  bench::print_header({"k", "u_P1", "u_P2", "u_P3", "u_P4"});
  for (const auto& rec : res.trace)
    bench::print_row({static_cast<double>(rec.k), rec.u[0], rec.u[1],
                      rec.u[2], rec.u[3]});

  std::printf("\n");
  const double b1 = res.set_points[0];
  const double phase1 = metrics::utilization_stats(res, 0, 50, 100).mean();
  const double phase2 = metrics::utilization_stats(res, 0, 150, 200).mean();
  const double phase3 = metrics::utilization_stats(res, 0, 250, 300).mean();
  std::printf("phase means (P1): %.3f / %.3f / %.3f (set point %.3f)\n\n",
              phase1, phase2, phase3, b1);

  checks.expect(std::abs(phase1 - 0.5 * b1) < 0.05,
                "phase 1 sits at 0.5 x set point (etf=0.5)");
  checks.expect(std::abs(phase2 - 0.9 * b1) < 0.07,
                "phase 2 jumps to 0.9 x set point (etf=0.9)");
  checks.expect(std::abs(phase3 - 0.33 * b1) < 0.05,
                "phase 3 drops to 0.33 x set point (etf=0.33)");
  checks.expect(phase2 - phase3 > 0.3,
                "utilization fluctuates significantly across load changes");
  bool never_converges = true;
  for (std::size_t p = 0; p < 4; ++p)
    if (metrics::acceptability(res, p, 100).acceptable()) never_converges = false;
  checks.expect(never_converges,
                "OPEN never meets the acceptability criterion under dynamic load");

  return checks.finish("bench_fig6");
}
