// Figure 7: the same dynamic-load stress test as Figure 6, under EUCON.
// The controller re-converges to the set points within tens of sampling
// periods after each execution-time step.
#include <cstdio>

#include "bench_util.h"
#include "eucon/eucon.h"

using namespace eucon;

int main() {
  bench::ShapeChecks checks;

  ExperimentConfig cfg;
  cfg.spec = workloads::medium();
  cfg.mpc = workloads::medium_controller_params();
  cfg.sim.etf = rts::EtfProfile::steps(
      {{0.0, 0.5}, {100000.0, 0.9}, {200000.0, 0.33}});
  cfg.sim.jitter = 0.2;
  cfg.sim.seed = 7;
  cfg.num_periods = 300;
  const ExperimentResult res = run_experiment(cfg);

  std::printf("# Figure 7: MEDIUM under EUCON, dynamic execution times\n");
  bench::print_header({"k", "u_P1", "u_P2", "u_P3", "u_P4", "set_P1"});
  for (const auto& rec : res.trace)
    bench::print_row({static_cast<double>(rec.k), rec.u[0], rec.u[1],
                      rec.u[2], rec.u[3], res.set_points[0]});

  std::printf("\n");
  for (std::size_t p = 0; p < 4; ++p) {
    checks.expect(metrics::acceptability(res, p, 60, 100).acceptable(),
                  "P" + std::to_string(p + 1) + " settled before the first step");
    checks.expect(metrics::acceptability(res, p, 160, 200).acceptable(),
                  "P" + std::to_string(p + 1) + " re-converged after the +80% step");
    checks.expect(metrics::acceptability(res, p, 260, 300).acceptable(),
                  "P" + std::to_string(p + 1) + " re-converged after the -67% step");
  }
  const int settle_up = metrics::settling_time(res, 0, 100, 0.07, 10);
  checks.expect(settle_up >= 0 && settle_up <= 30,
                "re-convergence within ~20-30 Ts of the overload step (paper: ~20Ts)");
  const int settle_down = metrics::settling_time(res, 0, 200, 0.07, 10);
  checks.expect(settle_down >= settle_up,
                "settling is slower after the load drop (smaller gain, section 6.3)");

  return checks.finish("bench_fig7");
}
