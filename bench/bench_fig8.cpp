// Figure 8: task rates under EUCON during the dynamic-load run of
// Figure 7 (the paper plots tasks T1..T6).
#include <cstdio>

#include "bench_util.h"
#include "eucon/eucon.h"

using namespace eucon;

int main() {
  bench::ShapeChecks checks;

  ExperimentConfig cfg;
  cfg.spec = workloads::medium();
  cfg.mpc = workloads::medium_controller_params();
  cfg.sim.etf = rts::EtfProfile::steps(
      {{0.0, 0.5}, {100000.0, 0.9}, {200000.0, 0.33}});
  cfg.sim.jitter = 0.2;
  cfg.sim.seed = 7;
  cfg.num_periods = 300;
  const ExperimentResult res = run_experiment(cfg);

  std::printf("# Figure 8: task rates under EUCON (dynamic execution times)\n");
  bench::print_header({"k", "r_T1", "r_T2", "r_T3", "r_T4", "r_T5", "r_T6"});
  for (const auto& rec : res.trace)
    bench::print_row({static_cast<double>(rec.k), rec.rates[0], rec.rates[1],
                      rec.rates[2], rec.rates[3], rec.rates[4],
                      rec.rates[5]});

  std::printf("\n");
  // Rates move opposite to the load steps and respect the bounds.
  int tasks_down_at_step1 = 0, tasks_up_at_step2 = 0;
  for (std::size_t t = 0; t < 6; ++t) {
    const auto series = res.rate_series(t);
    if (series[140] < series[95]) ++tasks_down_at_step1;
    if (series[295] > series[140]) ++tasks_up_at_step2;
  }
  checks.expect(tasks_down_at_step1 >= 5,
                "rates decrease after the +80% execution-time step");
  checks.expect(tasks_up_at_step2 >= 5,
                "rates increase after the -67% execution-time step");

  const auto& spec = cfg.spec;
  bool within_bounds = true;
  for (const auto& rec : res.trace)
    for (std::size_t t = 0; t < spec.num_tasks(); ++t)
      if (rec.rates[t] < spec.tasks[t].rate_min - 1e-12 ||
          rec.rates[t] > spec.tasks[t].rate_max + 1e-12)
        within_bounds = false;
  checks.expect(within_bounds, "all rates stay inside [Rmin, Rmax] throughout");

  // Rates settle in each steady phase (no drift): compare two late samples.
  bool settled = true;
  for (std::size_t t = 0; t < 6; ++t) {
    const auto series = res.rate_series(t);
    if (std::abs(series[295] - series[270]) > 0.25 * series[295])
      settled = false;
  }
  checks.expect(settled, "rates settle within each steady phase");

  return checks.finish("bench_fig8");
}
