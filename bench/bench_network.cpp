// Links-as-processors study (paper §7.1's network-delay remark).
//
// Applies the transform to SIMPLE and MEDIUM, closes the EUCON loop over
// compute processors *and* links, and quantifies (a) that link utilization
// is controlled like CPU utilization, (b) the end-to-end response cost of
// explicit transmission times, and (c) that the compute processors still
// track their set points.
#include <cstdio>

#include "bench_util.h"
#include "eucon/eucon.h"

using namespace eucon;

int main() {
  bench::ShapeChecks checks;

  network::LinkModelParams params;
  params.transmission_time = 4.0;

  // --- SIMPLE with a modeled P1 -> P2 link ------------------------------
  const network::LinkedSystem simple_linked =
      network::with_network_links(workloads::simple(), params);
  std::printf("# SIMPLE with links: %d compute + %d link processors\n",
              simple_linked.num_compute, simple_linked.num_links);

  ExperimentConfig cfg;
  cfg.spec = simple_linked.spec;
  cfg.mpc = workloads::simple_controller_params();
  cfg.sim.etf = rts::EtfProfile::constant(0.5);
  cfg.sim.jitter = 0.1;
  cfg.sim.seed = 4;
  cfg.num_periods = 300;
  const ExperimentResult res = run_experiment(cfg);

  bench::print_header({"processor", "mean_u", "stddev", "set_point"});
  for (std::size_t p = 0; p < res.set_points.size(); ++p) {
    const auto s = metrics::utilization_stats(res, p, 100);
    bench::print_row({static_cast<double>(p), s.mean(), s.stddev(),
                      res.set_points[p]});
  }

  checks.expect(simple_linked.num_links == 1,
                "SIMPLE has exactly one inter-processor hop (T2: P1 -> P2)");
  checks.expect(metrics::acceptability(res, 0).acceptable() &&
                    metrics::acceptability(res, 1).acceptable(),
                "compute processors still track their set points");
  const auto link_stats = metrics::utilization_stats(
      res, static_cast<std::size_t>(simple_linked.link_between(0, 1)), 100);
  checks.expect(link_stats.max() < 1.0,
                "the link never saturates (congestion protection)");
  checks.expect(link_stats.mean() > 0.02 && link_stats.mean() < 0.5,
                "link carries T2's traffic at a controlled level");

  // --- Response-time cost ------------------------------------------------
  rts::Simulator plain(workloads::simple(), rts::SimOptions{});
  rts::Simulator linked_sim(simple_linked.spec, rts::SimOptions{});
  plain.run_until_units(30000.0);
  linked_sim.run_until_units(30000.0);
  const double plain_resp =
      plain.deadline_stats().task(1).response_time_units.mean();
  const double linked_resp =
      linked_sim.deadline_stats().task(1).response_time_units.mean();
  std::printf("\nT2 mean end-to-end response: %.2f (no links) vs %.2f "
              "(transmission modeled)\n", plain_resp, linked_resp);
  checks.expect(linked_resp > plain_resp,
                "explicit transmission time lengthens the end-to-end response");

  // --- MEDIUM scale ------------------------------------------------------
  const network::LinkedSystem med =
      network::with_network_links(workloads::medium(), params);
  std::printf("\nMEDIUM with links: %d compute + %d link processors, %zu "
              "subtasks\n", med.num_compute, med.num_links,
              med.spec.num_subtasks());
  ExperimentConfig mcfg;
  mcfg.spec = med.spec;
  mcfg.mpc = workloads::medium_controller_params();
  // The Q-weight knob from §6.1: compute processors carry the QoS, links
  // only need overload protection, so their tracking weight is reduced
  // (their u <= B constraint stays hard).
  mcfg.mpc.q = linalg::Vector(static_cast<std::size_t>(med.spec.num_processors), 1.0);
  for (int l = 0; l < med.num_links; ++l)
    mcfg.mpc.q[static_cast<std::size_t>(med.num_compute + l)] = 0.05;
  mcfg.sim.etf = rts::EtfProfile::constant(0.5);
  mcfg.sim.jitter = 0.2;
  mcfg.sim.seed = 7;
  mcfg.num_periods = 300;
  const ExperimentResult mres = run_experiment(mcfg);
  bool compute_ok = true;
  for (std::size_t p = 0; p < 4; ++p)
    compute_ok = compute_ok &&
                 metrics::acceptability(mres, p, 100, 0, 0.03, 0.05).acceptable();
  checks.expect(compute_ok,
                "MEDIUM compute processors acceptable with 5 links modeled");
  bool links_safe = true;
  for (int l = 0; l < med.num_links; ++l) {
    const auto s = metrics::utilization_stats(
        mres, static_cast<std::size_t>(med.num_compute + l), 100);
    if (s.max() >= 1.0) links_safe = false;
  }
  checks.expect(links_safe, "no MEDIUM link ever saturates");

  return checks.finish("bench_network");
}
