// Performance-trajectory harness.
//
// Times the paper's on-line cost centers (the MPC update, the constrained
// least-squares solve behind it, one closed-loop sampling period) plus the
// batch experiment engine, and emits the results as machine-readable
// BENCH_PERF.json (schema in docs/performance.md). Every section runs
// warmup iterations first and reports per-iteration latency percentiles
// (p50/p90/p99) rather than a bare mean, so one slow outlier (page fault,
// scheduler preemption) cannot masquerade as a regression — or hide one.
//
// The lsqlin sections double as the caching/warm-start acceptance check:
// `lsqlin_oneshot` re-factorizes C and rebuilds the Hessian on every call
// (the pre-optimization hot path, kept as `qp::lsqlin`), while
// `lsqlin_solver_warm` drives the cached `qp::LsqlinSolver` with a
// persistent warm-started working set on the same problem sequence.
//
// Usage: bench_perf [--smoke] [--json PATH]
//   --smoke      tiny iteration counts (the ctest gate)
//   --json PATH  where to write the JSON report (default BENCH_PERF.json)
//
// After writing the report the harness re-reads and validates it against
// the schema; a malformed report is a non-zero exit, so the ctest smoke
// run is a real gate on the file format.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "common/thread_pool.h"
#include "eucon/eucon.h"

using namespace eucon;

namespace {

using SteadyClock = std::chrono::steady_clock;

// ---------------------------------------------------------------------------
// Timing scaffolding
// ---------------------------------------------------------------------------

struct SectionResult {
  std::string name;
  std::size_t warmup = 0;
  std::size_t iterations = 0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
  double min_us = 0.0;
  double max_us = 0.0;
};

double percentile(const std::vector<double>& sorted, double q) {
  EUCON_REQUIRE(!sorted.empty(), "percentile of an empty sample set");
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

// Runs `fn` warmup times untimed, then `iters` times with per-iteration
// wall-clock capture.
template <typename F>
SectionResult time_section(const std::string& name, std::size_t warmup,
                           std::size_t iters, F&& fn) {
  EUCON_REQUIRE(iters > 0, "section needs at least one timed iteration");
  for (std::size_t i = 0; i < warmup; ++i) fn();
  std::vector<double> us;
  us.reserve(iters);
  for (std::size_t i = 0; i < iters; ++i) {
    const auto t0 = SteadyClock::now();
    fn();
    const auto t1 = SteadyClock::now();
    us.push_back(std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  std::sort(us.begin(), us.end());
  SectionResult r;
  r.name = name;
  r.warmup = warmup;
  r.iterations = iters;
  double sum = 0.0;
  for (double v : us) sum += v;
  r.mean_us = sum / static_cast<double>(us.size());
  r.p50_us = percentile(us, 0.50);
  r.p90_us = percentile(us, 0.90);
  r.p99_us = percentile(us, 0.99);
  r.min_us = us.front();
  r.max_us = us.back();
  std::printf("%-28s iters=%-5zu p50=%10.2fus p90=%10.2fus p99=%10.2fus "
              "mean=%10.2fus\n",
              r.name.c_str(), r.iterations, r.p50_us, r.p90_us, r.p99_us,
              r.mean_us);
  return r;
}

// Defeats dead-code elimination without google-benchmark.
volatile double g_sink = 0.0;

void sink(double v) { g_sink = g_sink + v; }

// ---------------------------------------------------------------------------
// Sections
// ---------------------------------------------------------------------------

// One controller update on MEDIUM (P=4, M=2); the measurement alternates
// the utilization sample so the active set keeps doing real work.
SectionResult bench_mpc_update(std::size_t warmup, std::size_t iters) {
  const auto spec = workloads::medium();
  const auto model = control::make_plant_model(spec);
  control::MpcController ctrl(model, workloads::medium_controller_params(),
                              spec.initial_rate_vector());
  linalg::Vector u(model.num_processors(), 0.5);
  bool high = false;
  return time_section("mpc_update_medium", warmup, iters, [&] {
    u[0] = high ? 0.6 : 0.4;
    high = !high;
    sink(ctrl.update(u)[0]);
  });
}

// The same MPC update with a live metrics registry attached: the delta to
// `mpc_update_medium` is the cost of the two scoped timers (`mpc.update`,
// `qp.solve`) firing for real — clock reads plus a map update under the
// registry mutex. `mpc_update_medium` itself stays un-instrumented and so
// keeps measuring the null-registry path (a pointer check per timer site),
// which is what the <5% regression gate in docs/observability.md is about.
SectionResult bench_mpc_update_observed(std::size_t warmup, std::size_t iters,
                                        obs::Registry& registry) {
  const auto spec = workloads::medium();
  const auto model = control::make_plant_model(spec);
  control::MpcController ctrl(model, workloads::medium_controller_params(),
                              spec.initial_rate_vector());
  ctrl.set_metrics_registry(&registry);
  linalg::Vector u(model.num_processors(), 0.5);
  bool high = false;
  return time_section("mpc_update_observed", warmup, iters, [&] {
    u[0] = high ? 0.6 : 0.4;
    high = !high;
    sink(ctrl.update(u)[0]);
  });
}

// The MPC-shaped constrained least-squares problem both lsqlin paths are
// timed on: the MEDIUM controller's own tracking matrix C and constraint
// template, with the target d perturbed every call the way a closed-loop
// run perturbs it.
struct LsqlinFixture {
  linalg::Matrix c;
  linalg::Matrix a;
  linalg::Vector b;
  std::vector<linalg::Vector> targets;  // cycled per call
  std::size_t next = 0;

  explicit LsqlinFixture(std::size_t num_targets, double target_scale = 0.4) {
    const auto spec = workloads::medium();
    const auto model = control::make_plant_model(spec);
    const auto params = workloads::medium_controller_params();
    const control::MpcMatrices mats = control::build_mpc_matrices(model, params);
    c = mats.c;
    // Rate bounds as A x <= b rows, the same encoding MpcController uses
    // for its constraint template.
    const std::size_t n = c.cols();
    a = linalg::Matrix(2 * n, n);
    b = linalg::Vector(2 * n);
    for (std::size_t j = 0; j < n; ++j) {
      a(j, j) = 1.0;
      b[j] = 0.5;
      a(n + j, j) = -1.0;
      b[n + j] = 0.5;
    }
    Rng rng(2026);
    targets.reserve(num_targets);
    for (std::size_t t = 0; t < num_targets; ++t) {
      linalg::Vector d(c.rows());
      for (std::size_t r = 0; r < d.size(); ++r)
        d[r] = rng.uniform(-target_scale, target_scale);
      targets.push_back(std::move(d));
    }
  }

  const linalg::Vector& next_target() {
    const linalg::Vector& d = targets[next];
    next = (next + 1) % targets.size();
    return d;
  }
};

// Pre-optimization hot path: qp::lsqlin() refactorizes C and rebuilds
// H = 2 C'C on every call.
SectionResult bench_lsqlin_oneshot(std::size_t warmup, std::size_t iters) {
  LsqlinFixture fx(16);
  qp::LsqlinProblem prob;
  prob.c = fx.c;
  prob.a = fx.a;
  prob.b = fx.b;
  return time_section("lsqlin_oneshot", warmup, iters, [&] {
    prob.d = fx.next_target();
    sink(qp::lsqlin(prob).residual_norm);
  });
}

// Post-optimization hot path: QR of C and the Hessian cached across calls,
// working set warm-started from the previous solve.
SectionResult bench_lsqlin_solver_warm(std::size_t warmup, std::size_t iters) {
  LsqlinFixture fx(16);
  qp::LsqlinSolver solver(fx.c);
  qp::WarmStart warm;
  return time_section("lsqlin_solver_warm", warmup, iters, [&] {
    const qp::LsqlinResult res =
        solver.solve(fx.next_target(), fx.a, fx.b, nullptr, {}, &warm);
    sink(res.residual_norm);
  });
}

// The active-set QP solve itself, fast path forced off: targets large
// enough that the unconstrained minimizer always violates the rate box, so
// every call runs qp::solve_qp against the cached Hessian with a warm
// working set. This is the section the persistent-workspace rewrite is
// gated on (docs/performance.md).
SectionResult bench_qp_solve_warm(std::size_t warmup, std::size_t iters) {
  LsqlinFixture fx(16, /*target_scale=*/3.0);
  qp::LsqlinSolver solver(fx.c);
  qp::WarmStart warm;
  bool saw_fast_path = false;
  SectionResult r = time_section("qp_solve_warm", warmup, iters, [&] {
    const qp::LsqlinResult res =
        solver.solve(fx.next_target(), fx.a, fx.b, nullptr, {}, &warm);
    saw_fast_path = saw_fast_path || res.fast_path;
    sink(res.residual_norm);
  });
  EUCON_REQUIRE(!saw_fast_path,
                "qp_solve_warm fixture failed to force the active-set path");
  return r;
}

// One full closed-loop sampling period of MEDIUM: simulate Ts, sample,
// control, actuate.
SectionResult bench_closed_loop(std::size_t warmup, std::size_t iters) {
  rts::SimOptions opts;
  opts.jitter = 0.2;
  const auto spec = workloads::medium();
  rts::Simulator sim(spec, opts);
  const auto model = control::make_plant_model(spec);
  control::MpcController ctrl(model, workloads::medium_controller_params(),
                              spec.initial_rate_vector());
  Ticks t = 0;
  const Ticks ts = units_to_ticks(1000.0);
  return time_section("closed_loop_period_medium", warmup, iters, [&] {
    t += ts;
    sim.run_until(t);
    const auto u = sim.sample_utilizations();
    sim.set_rates(ctrl.update(linalg::Vector(u)).data());
  });
}

// ---------------------------------------------------------------------------
// Batch engine throughput
// ---------------------------------------------------------------------------

struct BatchScalingPoint {
  std::size_t workers = 0;
  double runs_per_sec = 0.0;
};

struct BatchResult {
  std::size_t runs = 0;
  std::size_t workers = 0;  // worker count of the headline parallel pass
  double serial_runs_per_sec = 0.0;
  double parallel_runs_per_sec = 0.0;
  // Speedup claims are only honest when the machine can actually run
  // workers in parallel. On a 1-core box the pool measures queueing
  // overhead, not scaling, so `speedup` is withheld (JSON null) and
  // `speedup_claimed` is false — the check.sh --perf gate enforces this.
  bool speedup_claimed = false;
  double speedup = 0.0;  // meaningful only when speedup_claimed
  std::vector<BatchScalingPoint> scaling;  // pooled throughput per worker count
};

BatchResult bench_batch(std::size_t runs, int periods) {
  std::vector<ExperimentSpec> specs;
  specs.reserve(runs);
  for (std::size_t i = 0; i < runs; ++i) {
    ExperimentConfig cfg;
    cfg.spec = workloads::simple();
    cfg.mpc = workloads::simple_controller_params();
    cfg.num_periods = periods;
    cfg.sim.jitter = 0.1;
    cfg.sim.etf = rts::EtfProfile::constant(
        0.4 + 0.2 * static_cast<double>(i % 8));
    cfg.sim.seed = 100 + i;
    specs.push_back({"run" + std::to_string(i), cfg});
  }

  const std::size_t hw = ThreadPool::default_workers();
  BatchOptions serial;
  serial.serial = true;

  // One untimed serial pass as warmup (page-in, allocator steady state),
  // then a timed pass.
  (void)run_batch(specs, serial);
  const auto s0 = SteadyClock::now();
  (void)run_batch(specs, serial);
  const auto s1 = SteadyClock::now();
  const double serial_s = std::chrono::duration<double>(s1 - s0).count();

  BatchResult r;
  r.runs = runs;
  r.workers = hw;
  r.serial_runs_per_sec = static_cast<double>(runs) / serial_s;

  // Pooled throughput at 1, 2, 4, ... workers up to hardware_concurrency
  // (always including hardware_concurrency itself): the multi-core scaling
  // curve, not just one end point.
  std::vector<std::size_t> worker_counts;
  for (std::size_t w = 1; w < hw; w *= 2) worker_counts.push_back(w);
  worker_counts.push_back(hw);
  for (const std::size_t w : worker_counts) {
    BatchOptions pooled;
    pooled.num_workers = w;
    (void)run_batch(specs, pooled);  // warmup pass per worker count
    const auto t0 = SteadyClock::now();
    (void)run_batch(specs, pooled);
    const auto t1 = SteadyClock::now();
    const double pooled_s = std::chrono::duration<double>(t1 - t0).count();
    r.scaling.push_back({w, static_cast<double>(runs) / pooled_s});
  }
  r.parallel_runs_per_sec = r.scaling.back().runs_per_sec;

  r.speedup_claimed = hw > 1;
  if (r.speedup_claimed) {
    r.speedup = r.parallel_runs_per_sec /
                std::max(r.serial_runs_per_sec, 1e-12);
    std::printf("batch_engine                 runs=%zu workers=%zu "
                "serial=%.2f runs/s parallel=%.2f runs/s speedup=%.2fx\n",
                r.runs, r.workers, r.serial_runs_per_sec,
                r.parallel_runs_per_sec, r.speedup);
  } else {
    std::printf("batch_engine                 runs=%zu workers=%zu "
                "serial=%.2f runs/s parallel=%.2f runs/s "
                "speedup=withheld (1-core machine measures queueing "
                "overhead, not scaling)\n",
                r.runs, r.workers, r.serial_runs_per_sec,
                r.parallel_runs_per_sec);
  }
  for (const BatchScalingPoint& p : r.scaling)
    std::printf("  batch_scaling workers=%-3zu %.2f runs/s\n", p.workers,
                p.runs_per_sec);
  return r;
}

// ---------------------------------------------------------------------------
// Observability aggregates (docs/observability.md)
// ---------------------------------------------------------------------------

struct ObsReport {
  bool compiled_in = obs::kEnabled;
  double base_p50_us = 0.0;      // mpc_update_medium, null registry
  double observed_p50_us = 0.0;  // mpc_update_observed, live registry
  double overhead_pct = 0.0;     // (observed - base) / base * 100
  obs::TimerStats mpc_update;
  obs::TimerStats qp_solve;
};

ObsReport make_obs_report(const SectionResult& base,
                          const SectionResult& observed,
                          const obs::Registry& registry) {
  ObsReport r;
  r.base_p50_us = base.p50_us;
  r.observed_p50_us = observed.p50_us;
  r.overhead_pct =
      (observed.p50_us - base.p50_us) / std::max(base.p50_us, 1e-9) * 100.0;
  r.mpc_update = registry.timer("mpc.update");
  r.qp_solve = registry.timer("qp.solve");
  std::printf("obs registry overhead: %.2f%% (p50 %.2fus -> %.2fus), "
              "mpc.update timer count=%llu mean=%.2fus\n",
              r.overhead_pct, r.base_p50_us, r.observed_p50_us,
              static_cast<unsigned long long>(r.mpc_update.count),
              r.mpc_update.mean_us());
  return r;
}

// ---------------------------------------------------------------------------
// JSON emission + schema validation
// ---------------------------------------------------------------------------

std::string json_number(double v) {
  EUCON_REQUIRE(std::isfinite(v), "JSON report requires finite numbers");
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

void write_report(const std::string& path,
                  const std::vector<SectionResult>& sections,
                  const BatchResult& batch, const ObsReport& obs_report,
                  bool smoke) {
  std::ofstream out(path);
  EUCON_REQUIRE(out.good(), "cannot open JSON report path: " + path);
  out << "{\n";
  out << "  \"schema_version\": 2,\n";
  out << "  \"generated_by\": \"bench_perf\",\n";
  out << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  out << "  \"hardware_concurrency\": " << ThreadPool::default_workers()
      << ",\n";
  out << "  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < sections.size(); ++i) {
    const SectionResult& s = sections[i];
    out << "    {\n";
    out << "      \"name\": \"" << s.name << "\",\n";
    out << "      \"warmup_iterations\": " << s.warmup << ",\n";
    out << "      \"iterations\": " << s.iterations << ",\n";
    out << "      \"mean_us\": " << json_number(s.mean_us) << ",\n";
    out << "      \"p50_us\": " << json_number(s.p50_us) << ",\n";
    out << "      \"p90_us\": " << json_number(s.p90_us) << ",\n";
    out << "      \"p99_us\": " << json_number(s.p99_us) << ",\n";
    out << "      \"min_us\": " << json_number(s.min_us) << ",\n";
    out << "      \"max_us\": " << json_number(s.max_us) << "\n";
    out << "    }" << (i + 1 < sections.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"batch\": {\n";
  out << "    \"runs\": " << batch.runs << ",\n";
  out << "    \"workers\": " << batch.workers << ",\n";
  out << "    \"serial_runs_per_sec\": " << json_number(batch.serial_runs_per_sec)
      << ",\n";
  out << "    \"parallel_runs_per_sec\": "
      << json_number(batch.parallel_runs_per_sec) << ",\n";
  // The honesty contract: a 1-core run writes null, never a number — the
  // schema validator and check.sh --perf both reject a report that claims
  // a speedup it could not have measured.
  out << "    \"speedup_claimed\": "
      << (batch.speedup_claimed ? "true" : "false") << ",\n";
  if (batch.speedup_claimed)
    out << "    \"speedup\": " << json_number(batch.speedup) << "\n";
  else
    out << "    \"speedup\": null\n";
  out << "  },\n";
  out << "  \"batch_scaling\": [\n";
  for (std::size_t i = 0; i < batch.scaling.size(); ++i) {
    const BatchScalingPoint& p = batch.scaling[i];
    out << "    {\"workers\": " << p.workers << ", \"runs_per_sec\": "
        << json_number(p.runs_per_sec) << "}"
        << (i + 1 < batch.scaling.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"obs\": {\n";
  out << "    \"compiled_in\": " << (obs_report.compiled_in ? "true" : "false")
      << ",\n";
  out << "    \"mpc_update_p50_us\": " << json_number(obs_report.base_p50_us)
      << ",\n";
  out << "    \"mpc_update_observed_p50_us\": "
      << json_number(obs_report.observed_p50_us) << ",\n";
  out << "    \"registry_overhead_pct\": "
      << json_number(obs_report.overhead_pct) << ",\n";
  out << "    \"timer_mpc_update_count\": " << obs_report.mpc_update.count
      << ",\n";
  out << "    \"timer_mpc_update_mean_us\": "
      << json_number(obs_report.mpc_update.mean_us()) << ",\n";
  out << "    \"timer_qp_solve_count\": " << obs_report.qp_solve.count
      << ",\n";
  out << "    \"timer_qp_solve_mean_us\": "
      << json_number(obs_report.qp_solve.mean_us()) << "\n";
  out << "  }\n";
  out << "}\n";
  EUCON_REQUIRE(out.good(), "failed writing JSON report: " + path);
}

// Re-reads the emitted report and checks the schema; returns the number of
// violations (0 = valid).
int validate_report(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "schema: cannot reopen %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  bench::JsonReader reader(buf.str());
  try {
    reader.parse();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "schema: %s does not parse: %s\n", path.c_str(),
                 e.what());
    return 1;
  }

  int violations = 0;
  const auto need = [&](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "schema: %s\n", what);
      ++violations;
    }
  };
  need(reader.has_number("schema_version") &&
           reader.number("schema_version") > 1.5,
       "schema_version missing or < 2");
  need(reader.has_string("generated_by"), "generated_by missing");
  need(reader.has_bool("smoke"), "smoke flag missing");
  need(reader.has_number("hardware_concurrency") &&
           reader.number("hardware_concurrency") >= 1.0,
       "hardware_concurrency missing or < 1");

  std::size_t benches = 0;
  try {
    benches = reader.array_size("benchmarks");
  } catch (const std::exception&) {
    // handled by the need() below
  }
  need(benches >= 5, "benchmarks must hold at least the five core sections");
  for (std::size_t i = 0; i < benches; ++i) {
    const std::string p = "benchmarks[" + std::to_string(i) + "]";
    need(reader.has_string(p + ".name"), "benchmark entry lacks name");
    for (const char* key : {".warmup_iterations", ".iterations", ".mean_us",
                            ".p50_us", ".p90_us", ".p99_us", ".min_us",
                            ".max_us"}) {
      const std::string full = p + key;
      need(reader.has_number(full) && std::isfinite(reader.number(full)),
           (full + " missing or non-finite").c_str());
    }
    if (reader.has_number(p + ".p50_us") && reader.has_number(p + ".p99_us"))
      need(reader.number(p + ".p99_us") >= reader.number(p + ".p50_us"),
           "p99 below p50");
  }
  for (const char* key :
       {"batch.runs", "batch.workers", "batch.serial_runs_per_sec",
        "batch.parallel_runs_per_sec"}) {
    need(reader.has_number(key) && std::isfinite(reader.number(key)) &&
             reader.number(key) > 0.0,
         (std::string(key) + " missing or non-positive").c_str());
  }
  // The multi-core honesty rules: hardware_concurrency == 1 must publish
  // speedup as null (a 1-core pool run measures queueing overhead, not
  // scaling); > 1 must publish a real positive number. batch_scaling must
  // cover worker counts 1..hardware_concurrency.
  need(reader.has_bool("batch.speedup_claimed"),
       "batch.speedup_claimed missing");
  const bool multi_core = reader.has_number("hardware_concurrency") &&
                          reader.number("hardware_concurrency") > 1.5;
  if (multi_core) {
    need(reader.has_bool("batch.speedup_claimed") &&
             reader.bool_at("batch.speedup_claimed"),
         "multi-core run must claim a measured speedup");
    need(reader.has_number("batch.speedup") &&
             std::isfinite(reader.number("batch.speedup")) &&
             reader.number("batch.speedup") > 0.0,
         "batch.speedup missing or non-positive on a multi-core run");
  } else {
    need(reader.has_bool("batch.speedup_claimed") &&
             !reader.bool_at("batch.speedup_claimed"),
         "1-core run must not claim a speedup");
    need(reader.has_null("batch.speedup"),
         "batch.speedup must be null on a 1-core run");
  }
  std::size_t scaling_points = 0;
  try {
    scaling_points = reader.array_size("batch_scaling");
  } catch (const std::exception&) {
    // handled by the need() below
  }
  need(scaling_points >= 1, "batch_scaling must hold at least one point");
  for (std::size_t i = 0; i < scaling_points; ++i) {
    const std::string p = "batch_scaling[" + std::to_string(i) + "]";
    need(reader.has_number(p + ".workers") &&
             reader.number(p + ".workers") >= 1.0,
         (p + ".workers missing or < 1").c_str());
    need(reader.has_number(p + ".runs_per_sec") &&
             std::isfinite(reader.number(p + ".runs_per_sec")) &&
             reader.number(p + ".runs_per_sec") > 0.0,
         (p + ".runs_per_sec missing or non-positive").c_str());
  }
  need(reader.has_bool("obs.compiled_in"), "obs.compiled_in missing");
  for (const char* key :
       {"obs.mpc_update_p50_us", "obs.mpc_update_observed_p50_us",
        "obs.registry_overhead_pct", "obs.timer_mpc_update_count",
        "obs.timer_mpc_update_mean_us", "obs.timer_qp_solve_count",
        "obs.timer_qp_solve_mean_us"}) {
    need(reader.has_number(key) && std::isfinite(reader.number(key)),
         (std::string(key) + " missing or non-finite").c_str());
  }
  return violations;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_PERF.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_perf [--smoke] [--json PATH]\n");
      return 2;
    }
  }

  const std::size_t warmup = smoke ? 3 : 50;
  const std::size_t iters = smoke ? 12 : 400;
  const std::size_t loop_iters = smoke ? 8 : 120;
  const std::size_t batch_runs = smoke ? 4 : 12;
  const int batch_periods = smoke ? 25 : 120;

  std::printf("bench_perf: %s run, %zu hardware threads\n",
              smoke ? "smoke" : "full", ThreadPool::default_workers());

  std::vector<SectionResult> sections;
  sections.push_back(bench_mpc_update(warmup, iters));
  obs::Registry obs_registry;
  sections.push_back(bench_mpc_update_observed(warmup, iters, obs_registry));
  sections.push_back(bench_lsqlin_oneshot(warmup, iters));
  sections.push_back(bench_lsqlin_solver_warm(warmup, iters));
  sections.push_back(bench_qp_solve_warm(warmup, iters));
  sections.push_back(bench_closed_loop(smoke ? 2 : 10, loop_iters));
  const BatchResult batch = bench_batch(batch_runs, batch_periods);
  const ObsReport obs_report =
      make_obs_report(sections[0], sections[1], obs_registry);

  // The headline comparison for the caching/warm-start work.
  const double oneshot_p50 = sections[2].p50_us;
  const double cached_p50 = std::max(sections[3].p50_us, 1e-9);
  std::printf("lsqlin cached/warm vs one-shot: %.2fx faster (p50)\n",
              oneshot_p50 / cached_p50);

  write_report(json_path, sections, batch, obs_report, smoke);
  const int violations = validate_report(json_path);
  if (violations != 0) {
    std::fprintf(stderr, "bench_perf: %s failed schema validation\n",
                 json_path.c_str());
    return violations;
  }
  std::printf("bench_perf: wrote %s (schema valid)\n", json_path.c_str());
  return 0;
}
