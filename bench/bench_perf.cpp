// Microbenchmarks (google-benchmark): cost of the controller's on-line
// optimization (the paper notes lsqlin's polynomial cost in m·n·P·M and
// that the controller suits "small to medium scale systems"), simulator
// throughput, and the stability-analysis eigensolver.
#include <benchmark/benchmark.h>

#include "eucon/eucon.h"

using namespace eucon;

namespace {

// One controller update on a random workload with `tasks` tasks across 4
// processors, P=4 / M=2 (the MEDIUM controller settings).
void BM_MpcUpdateByTasks(benchmark::State& state) {
  workloads::RandomWorkloadParams p;
  p.num_processors = 4;
  p.num_tasks = static_cast<int>(state.range(0));
  const auto spec = workloads::random_workload(p, 42);
  const auto model = control::make_plant_model(spec);
  control::MpcController ctrl(model, workloads::medium_controller_params(),
                              spec.initial_rate_vector());
  linalg::Vector u(model.num_processors(), 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctrl.update(u));
    // Perturb so the active set keeps working.
    u[0] = u[0] > 0.5 ? 0.4 : 0.6;
  }
  state.SetLabel(std::to_string(spec.num_subtasks()) + " subtasks");
}
BENCHMARK(BM_MpcUpdateByTasks)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

// Horizon scaling at fixed workload size (the P·M term of the cost).
void BM_MpcUpdateByHorizon(benchmark::State& state) {
  const auto spec = workloads::medium();
  const auto model = control::make_plant_model(spec);
  control::MpcParams params = workloads::medium_controller_params();
  params.prediction_horizon = static_cast<int>(state.range(0));
  params.control_horizon = static_cast<int>(state.range(0)) / 2;
  control::MpcController ctrl(model, params, spec.initial_rate_vector());
  linalg::Vector u(model.num_processors(), 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctrl.update(u));
    u[0] = u[0] > 0.5 ? 0.4 : 0.6;
  }
}
BENCHMARK(BM_MpcUpdateByHorizon)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

// The standalone constrained least-squares solver on an MPC-shaped problem.
void BM_Lsqlin(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  linalg::Matrix c(2 * n, n);
  linalg::Vector d(2 * n);
  for (std::size_t r = 0; r < 2 * n; ++r) {
    d[r] = rng.uniform(-1.0, 1.0);
    for (std::size_t cc = 0; cc < n; ++cc) c(r, cc) = rng.uniform(0.0, 1.0);
  }
  qp::LsqlinProblem prob;
  prob.c = c;
  prob.d = d;
  prob.a = linalg::Matrix(0, n);
  prob.b = linalg::Vector(0);
  prob.lb = linalg::Vector(n, -0.5);
  prob.ub = linalg::Vector(n, 0.5);
  for (auto _ : state) benchmark::DoNotOptimize(qp::lsqlin(prob));
}
BENCHMARK(BM_Lsqlin)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

// Simulator throughput: one sampling period (1000 time units) of MEDIUM.
void BM_SimulateMediumPeriod(benchmark::State& state) {
  rts::SimOptions opts;
  opts.jitter = 0.2;
  rts::Simulator sim(workloads::medium(), opts);
  Ticks t = 0;
  const Ticks ts = units_to_ticks(1000.0);
  std::uint64_t jobs = 0;
  for (auto _ : state) {
    t += ts;
    sim.run_until(t);
    benchmark::DoNotOptimize(sim.sample_utilizations());
  }
  jobs = sim.jobs_released();
  state.SetItemsProcessed(static_cast<int64_t>(jobs));
  state.SetLabel("jobs/iteration ~" +
                 std::to_string(jobs / std::max<std::uint64_t>(
                                           1, state.iterations())));
}
BENCHMARK(BM_SimulateMediumPeriod);

// Full closed-loop period: simulate + sample + control + actuate.
void BM_ClosedLoopPeriod(benchmark::State& state) {
  rts::SimOptions opts;
  opts.jitter = 0.2;
  const auto spec = workloads::medium();
  rts::Simulator sim(spec, opts);
  const auto model = control::make_plant_model(spec);
  control::MpcController ctrl(model, workloads::medium_controller_params(),
                              spec.initial_rate_vector());
  Ticks t = 0;
  const Ticks ts = units_to_ticks(1000.0);
  for (auto _ : state) {
    t += ts;
    sim.run_until(t);
    const auto u = sim.sample_utilizations();
    sim.set_rates(ctrl.update(linalg::Vector(u)).data());
  }
}
BENCHMARK(BM_ClosedLoopPeriod);

// Eigenvalues of the closed-loop matrix (stability analysis inner loop).
void BM_ClosedLoopEigenvalues(benchmark::State& state) {
  workloads::RandomWorkloadParams p;
  p.num_processors = 4;
  p.num_tasks = static_cast<int>(state.range(0));
  const auto spec = workloads::random_workload(p, 3);
  control::StabilityAnalyzer an(control::make_plant_model(spec),
                                workloads::medium_controller_params());
  for (auto _ : state)
    benchmark::DoNotOptimize(an.spectral_radius_uniform(1.5));
}
BENCHMARK(BM_ClosedLoopEigenvalues)->Arg(8)->Arg(16)->Arg(32);

void BM_CriticalGainSearch(benchmark::State& state) {
  control::StabilityAnalyzer an(
      control::make_plant_model(workloads::simple()),
      workloads::simple_controller_params());
  for (auto _ : state)
    benchmark::DoNotOptimize(an.critical_uniform_gain());
}
BENCHMARK(BM_CriticalGainSearch);

}  // namespace

BENCHMARK_MAIN();
