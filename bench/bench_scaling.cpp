// Cluster-scale control-plane harness.
//
// The paper's §8 names "decentralized control architecture to handle
// large-scale systems" as future work; this bench drives the sharded
// hierarchical controller (control/hierarchical.h) over sparse chain
// workloads (workloads::chain_cluster) from 16 to 10k processors and
// reports the closed-loop period cost against n — controller update plus
// idealized plant step (control/sparse_model.h's SparseLinearPlant; the
// discrete-event simulator and the dense F both stop being viable orders
// of magnitude below 10k). Emits machine-readable BENCH_SCALING.json
// (schema in docs/performance.md), re-read and validated through
// bench::JsonReader before exiting, so the ctest smoke run is a real gate
// on the file format.
//
// The parity section closes the loop with both the sharded controller and
// the central MPC on square-F scenarios (tasks_per_processor = 1, so the
// steady-state rates at u = B are unique) at every n <= 128, and checks
// the shard-boundary reconciliation converges to the central fixpoint.
//
// Usage: bench_scaling [--smoke] [--json PATH]
//   --smoke      short settle/timing loops (the ctest gate)
//   --json PATH  where to write the JSON report (default BENCH_SCALING.json)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "eucon/eucon.h"

using namespace eucon;

namespace {

using SteadyClock = std::chrono::steady_clock;
using linalg::Vector;

constexpr int kProcessorCounts[] = {16, 128, 1000, 4000, 10000};
constexpr std::size_t kShardSize = 32;

control::MpcParams scale_params() {
  control::MpcParams p;  // the SIMPLE row: the smallest honest horizon
  p.prediction_horizon = 2;
  p.control_horizon = 1;
  p.tref_over_ts = 4.0;
  // The scaling scenarios pin b to an *interior* target b = F r* (see
  // pin_reachable_set_points), not the RMS schedulability bound, so the
  // hard u <= b rows model nothing here — and they can wedge the sharded
  // controller: a boundary row sitting exactly at b hard-blocks a
  // neighbor shard's only path to its own off-target row, an equilibrium
  // only a global trade-off (or soft tracking) escapes. Both controllers
  // run soft, so the parity comparison stays like-for-like.
  p.constraint_mode = control::ConstraintMode::kSoftOnly;
  return p;
}

workloads::ChainClusterParams cluster(int n, int tasks_per_processor) {
  workloads::ChainClusterParams params;
  params.num_processors = n;
  params.tasks_per_processor = tasks_per_processor;
  params.chain_length = 3;
  // A dominant home-processor subtask keeps F column-diagonally dominant:
  // well-conditioned (so u = b identifies the steady-state rates the parity
  // section compares) and weakly coupled across shards (so the staggered
  // Gauss–Seidel sweeps contract at a rate independent of the shard count).
  params.subtask_decay = 0.15;
  return params;
}

struct ScalePoint {
  int processors = 0;
  std::size_t tasks = 0;
  std::size_t nnz = 0;
  std::size_t shards = 0;
  std::size_t max_shard_vars = 0;
  std::size_t workspace_vars = 0;
  std::size_t workspace_cons = 0;
  double construct_ms = 0.0;
  std::size_t periods_timed = 0;
  double period_p50_us = 0.0;
  double period_mean_us = 0.0;
  double steady_err_max = 0.0;
};

struct ParityPoint {
  int processors = 0;
  double max_rate_gap_rel = 0.0;
  double util_err_hier = 0.0;
  double util_err_central = 0.0;
};

// The generated Liu–Layland set points are reachable per row but need not
// be *jointly* reachable: at cluster scale one rate vector must satisfy
// every coupled row at once, and some generated scenario always has a
// processor whose neighbors' demands pin its tasks away from its own b —
// every controller (the central MPC included) then parks at a weighted
// compromise. The scaling scenarios pin the set points to a known-interior
// target b := F r* instead (r* at fraction `t` of each rate range, scaled
// down if any row would exceed 0.9), so u = b is a true fixpoint and
// steady_err_max measures controller convergence, not workload
// feasibility.
control::SparsePlantModel pin_reachable_set_points(
    control::SparsePlantModel model) {
  const std::size_t n = model.num_processors();
  Vector u_lo(n, 0.0), u_hi(n, 0.0);
  for (std::size_t q = 0; q < n; ++q)
    for (std::size_t k = model.f.row_begin(q); k < model.f.row_end(q); ++k) {
      u_lo[q] += model.f.value(k) * model.rate_min[model.f.col_index(k)];
      u_hi[q] += model.f.value(k) * model.rate_max[model.f.col_index(k)];
    }
  double t = 0.6;
  for (std::size_t q = 0; q < n; ++q)
    if (u_hi[q] > 0.9 && u_hi[q] > u_lo[q])
      t = std::min(t, (0.9 - u_lo[q]) / (u_hi[q] - u_lo[q]));
  t = std::max(t, 0.05);
  for (std::size_t q = 0; q < n; ++q)
    model.b[q] = u_lo[q] + t * (u_hi[q] - u_lo[q]);
  return model;
}

double percentile(std::vector<double> samples, double q) {
  EUCON_REQUIRE(!samples.empty(), "percentile of an empty sample set");
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] + frac * (samples[hi] - samples[lo]);
}

// Closed loop at one size: settle to steady state, then time `timed`
// sampling periods (controller update + plant step) with one measurement
// jiggled per period so every shard keeps doing real control work.
ScalePoint run_point(int n, std::size_t settle, std::size_t timed) {
  const rts::SystemSpec spec =
      workloads::chain_cluster(cluster(n, 2), 40 + static_cast<std::uint64_t>(n));
  const Vector r0 = spec.initial_rate_vector();

  const auto c0 = SteadyClock::now();
  const control::SparsePlantModel model =
      pin_reachable_set_points(control::make_sparse_plant_model(spec));
  control::HierarchicalParams hier;
  hier.shard_size = kShardSize;
  control::HierarchicalMpcController ctrl(model, scale_params(), hier, r0);
  const auto c1 = SteadyClock::now();

  ScalePoint pt;
  pt.processors = n;
  pt.tasks = model.num_tasks();
  pt.nnz = model.f.nnz();
  pt.shards = ctrl.num_shards();
  pt.max_shard_vars = ctrl.max_shard_problem_size();
  const auto [ws_vars, ws_cons] = ctrl.workspace_capacity();
  pt.workspace_vars = ws_vars;
  pt.workspace_cons = ws_cons;
  pt.construct_ms =
      std::chrono::duration<double, std::milli>(c1 - c0).count();

  control::SparseLinearPlant plant(
      model, Vector(model.num_processors(), 1.0), r0);
  Vector u = plant.utilization();
  for (std::size_t k = 0; k < settle; ++k) u = plant.step(ctrl.update(u));
  for (std::size_t p = 0; p < u.size(); ++p)
    pt.steady_err_max = std::max(pt.steady_err_max, std::abs(u[p] - model.b[p]));

  std::vector<double> us;
  us.reserve(timed);
  for (std::size_t k = 0; k < timed; ++k) {
    // Disturb one processor off its set point (outside the timed region)
    // so the period's QPs see a moving target, as a live cluster would.
    u = plant.utilization();
    const std::size_t hot = k % u.size();
    u[hot] = std::clamp(
        model.b[hot] + 0.03 * static_cast<double>(k % 3 - 1), 0.0, 1.0);
    const auto t0 = SteadyClock::now();
    const Vector& rates = ctrl.update(u);
    plant.step(rates);
    const auto t1 = SteadyClock::now();
    us.push_back(std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  pt.periods_timed = timed;
  pt.period_p50_us = percentile(us, 0.50);
  double sum = 0.0;
  for (double v : us) sum += v;
  pt.period_mean_us = sum / static_cast<double>(us.size());

  std::printf("%6d,%7zu,%8zu,%6zu,%8zu,%12.2f,%14.2f,%14.2f,%12.4f\n", n,
              pt.tasks, pt.nnz, pt.shards, pt.max_shard_vars, pt.construct_ms,
              pt.period_p50_us, pt.period_mean_us, pt.steady_err_max);
  return pt;
}

// Sharded vs central MPC on a square-F scenario (unique steady-state
// rates): both run the same closed loop; the sharded controller must land
// on the central fixpoint despite every local MPC seeing only its slice
// of the plant through the staggered Gauss–Seidel sweeps.
ParityPoint run_parity(int n, std::size_t periods) {
  const rts::SystemSpec spec =
      workloads::chain_cluster(cluster(n, 1), 90 + static_cast<std::uint64_t>(n));
  const Vector r0 = spec.initial_rate_vector();
  const control::SparsePlantModel model =
      pin_reachable_set_points(control::make_sparse_plant_model(spec));
  const Vector gains(model.num_processors(), 1.0);

  control::HierarchicalParams hier;
  hier.shard_size = 8;  // forces several shards and real boundary rows
  control::HierarchicalMpcController sharded(model, scale_params(), hier, r0);
  control::SparseLinearPlant plant_s(model, gains, r0);
  Vector u_s = plant_s.utilization();
  for (std::size_t k = 0; k < periods; ++k)
    u_s = plant_s.step(sharded.update(u_s));
  const Vector r_s = sharded.update(u_s);

  control::MpcController central(model.to_dense(), scale_params(), r0);
  control::SparseLinearPlant plant_c(model, gains, r0);
  Vector u_c = plant_c.utilization();
  for (std::size_t k = 0; k < periods; ++k)
    u_c = plant_c.step(central.update(u_c));
  const Vector r_c = central.update(u_c);

  ParityPoint pt;
  pt.processors = n;
  for (std::size_t j = 0; j < r_s.size(); ++j)
    pt.max_rate_gap_rel = std::max(
        pt.max_rate_gap_rel, std::abs(r_s[j] - r_c[j]) / std::abs(r_c[j]));
  for (std::size_t p = 0; p < u_s.size(); ++p) {
    pt.util_err_hier =
        std::max(pt.util_err_hier, std::abs(u_s[p] - model.b[p]));
    pt.util_err_central =
        std::max(pt.util_err_central, std::abs(u_c[p] - model.b[p]));
  }
  std::printf("parity n=%-4d max_rate_gap_rel=%.5f util_err_hier=%.5f "
              "util_err_central=%.5f\n",
              n, pt.max_rate_gap_rel, pt.util_err_hier, pt.util_err_central);
  return pt;
}

// ---------------------------------------------------------------------------
// JSON emission + schema validation
// ---------------------------------------------------------------------------

std::string json_number(double v) {
  EUCON_REQUIRE(std::isfinite(v), "JSON report requires finite numbers");
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

void write_report(const std::string& path,
                  const std::vector<ScalePoint>& points,
                  const std::vector<ParityPoint>& parity, double blowup,
                  bool smoke) {
  std::ofstream out(path);
  EUCON_REQUIRE(out.good(), "cannot open JSON report path: " + path);
  out << "{\n";
  out << "  \"schema_version\": 1,\n";
  out << "  \"generated_by\": \"bench_scaling\",\n";
  out << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  out << "  \"shard_size\": " << kShardSize << ",\n";
  out << "  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ScalePoint& p = points[i];
    out << "    {\n";
    out << "      \"processors\": " << p.processors << ",\n";
    out << "      \"tasks\": " << p.tasks << ",\n";
    out << "      \"nnz\": " << p.nnz << ",\n";
    out << "      \"shards\": " << p.shards << ",\n";
    out << "      \"max_shard_vars\": " << p.max_shard_vars << ",\n";
    out << "      \"workspace_vars\": " << p.workspace_vars << ",\n";
    out << "      \"workspace_cons\": " << p.workspace_cons << ",\n";
    out << "      \"construct_ms\": " << json_number(p.construct_ms) << ",\n";
    out << "      \"periods_timed\": " << p.periods_timed << ",\n";
    out << "      \"period_p50_us\": " << json_number(p.period_p50_us) << ",\n";
    out << "      \"period_mean_us\": " << json_number(p.period_mean_us)
        << ",\n";
    out << "      \"steady_err_max\": " << json_number(p.steady_err_max)
        << "\n";
    out << "    }" << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"parity\": [\n";
  for (std::size_t i = 0; i < parity.size(); ++i) {
    const ParityPoint& p = parity[i];
    out << "    {\"processors\": " << p.processors
        << ", \"max_rate_gap_rel\": " << json_number(p.max_rate_gap_rel)
        << ", \"util_err_hier\": " << json_number(p.util_err_hier)
        << ", \"util_err_central\": " << json_number(p.util_err_central)
        << "}" << (i + 1 < parity.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"blowup_10k_vs_1k\": " << json_number(blowup) << "\n";
  out << "}\n";
  EUCON_REQUIRE(out.good(), "failed writing JSON report: " + path);
}

// Re-reads the emitted report and checks the schema; returns the number of
// violations (0 = valid). check.sh --scale runs the same checks against
// the checked-in BENCH_SCALING.json.
int validate_report(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "schema: cannot reopen %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  bench::JsonReader reader(buf.str());
  try {
    reader.parse();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "schema: %s does not parse: %s\n", path.c_str(),
                 e.what());
    return 1;
  }

  int violations = 0;
  const auto need = [&](bool ok, const std::string& what) {
    if (!ok) {
      std::fprintf(stderr, "schema: %s\n", what.c_str());
      ++violations;
    }
  };
  need(reader.has_number("schema_version") &&
           reader.number("schema_version") > 0.5,
       "schema_version missing or < 1");
  need(reader.has_string("generated_by"), "generated_by missing");
  need(reader.has_bool("smoke"), "smoke flag missing");
  need(reader.has_number("shard_size") && reader.number("shard_size") >= 1.0,
       "shard_size missing or < 1");

  std::size_t num_points = 0;
  try {
    num_points = reader.array_size("points");
  } catch (const std::exception&) {
    // handled by the need() below
  }
  const std::size_t expected =
      sizeof(kProcessorCounts) / sizeof(kProcessorCounts[0]);
  need(num_points == expected,
       "points must hold every processor count (16..10k)");
  for (std::size_t i = 0; i < num_points; ++i) {
    const std::string p = "points[" + std::to_string(i) + "]";
    if (i < expected)
      need(reader.has_number(p + ".processors") &&
               reader.number(p + ".processors") ==
                   static_cast<double>(kProcessorCounts[i]),
           p + ".processors must be " + std::to_string(kProcessorCounts[i]));
    for (const char* key :
         {".tasks", ".nnz", ".shards", ".max_shard_vars", ".workspace_vars",
          ".workspace_cons", ".construct_ms", ".periods_timed",
          ".period_p50_us", ".period_mean_us", ".steady_err_max"}) {
      const std::string full = p + key;
      need(reader.has_number(full) && std::isfinite(reader.number(full)),
           full + " missing or non-finite");
    }
    need(reader.has_number(p + ".period_p50_us") &&
             reader.number(p + ".period_p50_us") > 0.0,
         p + ".period_p50_us must be positive");
    need(reader.has_number(p + ".steady_err_max") &&
             reader.number(p + ".steady_err_max") < 0.02,
         p + ".steady_err_max must show a settled loop (< 0.02)");
  }

  std::size_t parity_points = 0;
  try {
    parity_points = reader.array_size("parity");
  } catch (const std::exception&) {
    // handled by the need() below
  }
  need(parity_points >= 2, "parity must cover every n <= 128 scenario");
  for (std::size_t i = 0; i < parity_points; ++i) {
    const std::string p = "parity[" + std::to_string(i) + "]";
    need(reader.has_number(p + ".processors") &&
             reader.number(p + ".processors") <= 128.0,
         p + " must be an n <= 128 scenario");
    need(reader.has_number(p + ".max_rate_gap_rel") &&
             reader.number(p + ".max_rate_gap_rel") < 0.02,
         p + ".max_rate_gap_rel must be within tolerance (< 0.02)");
    need(reader.has_number(p + ".util_err_hier") &&
             reader.number(p + ".util_err_hier") < 0.01,
         p + ".util_err_hier must be within tolerance (< 0.01)");
  }

  // The superlinear-blowup guard: shards are constant-size, so the period
  // cost must scale roughly with the shard count — 10x processors may not
  // buy 100x period cost.
  need(reader.has_number("blowup_10k_vs_1k") &&
           std::isfinite(reader.number("blowup_10k_vs_1k")) &&
           reader.number("blowup_10k_vs_1k") > 0.0 &&
           reader.number("blowup_10k_vs_1k") < 100.0,
       "blowup_10k_vs_1k missing or >= 100 (superlinear blowup)");
  return violations;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_SCALING.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_scaling [--smoke] [--json PATH]\n");
      return 2;
    }
  }

  const std::size_t settle = smoke ? 60 : 150;
  const std::size_t timed = smoke ? 8 : 40;
  const std::size_t parity_periods = smoke ? 250 : 400;

  bench::ShapeChecks checks;
  std::printf("# Hierarchical control plane: closed-loop period cost vs n "
              "(shard_size=%zu)\n",
              kShardSize);
  bench::print_header({"procs", "tasks", "nnz", "shards", "max_shard_vars",
                       "construct_ms", "period_p50_us", "period_mean_us",
                       "steady_err_max"});
  std::vector<ScalePoint> points;
  for (const int n : kProcessorCounts)
    points.push_back(run_point(n, settle, timed));

  for (const ScalePoint& p : points) {
    checks.expect(p.steady_err_max < 0.02,
                  "loop settles to the set points at n = " +
                      std::to_string(p.processors));
    checks.expect(p.workspace_vars == p.max_shard_vars,
                  "QP workspace sized to the largest shard at n = " +
                      std::to_string(p.processors));
  }
  checks.expect(points.back().shards ==
                    (10000 + kShardSize - 1) / kShardSize,
                "10k processors shard into ceil(n / shard_size) local MPCs");

  const double blowup =
      points[4].period_p50_us / std::max(points[2].period_p50_us, 1e-9);
  std::printf("period cost blowup 10k vs 1k: %.2fx\n", blowup);
  checks.expect(blowup < 100.0,
                "period cost grows sub-quadratically: 10x processors stays "
                "under 100x period cost");

  std::printf("# Sharded vs central MPC parity (square F, unique "
              "steady-state rates)\n");
  std::vector<ParityPoint> parity;
  for (const int n : {16, 32, 128})
    parity.push_back(run_parity(n, parity_periods));
  for (const ParityPoint& p : parity) {
    checks.expect(p.util_err_central < 0.01,
                  "central MPC settles at n = " + std::to_string(p.processors));
    checks.expect(p.util_err_hier < 0.01,
                  "sharded controller settles at n = " +
                      std::to_string(p.processors));
    checks.expect(p.max_rate_gap_rel < 0.02,
                  "sharded steady-state rates match the central MPC at n = " +
                      std::to_string(p.processors));
  }

  write_report(json_path, points, parity, blowup, smoke);
  const int violations = validate_report(json_path);
  if (violations != 0) {
    std::fprintf(stderr, "bench_scaling: %s failed schema validation\n",
                 json_path.c_str());
    return checks.finish("bench_scaling") + violations;
  }
  std::printf("bench_scaling: wrote %s (schema valid)\n", json_path.c_str());
  return checks.finish("bench_scaling");
}
