// §6.2 stability analysis example: the closed-loop stability region of the
// SIMPLE system under the paper's controller (P=2, M=1, Tref/Ts=4).
//
// The paper derives g < 5.95 analytically; its own simulations put the
// instability onset between 6.5 and 7 (Figure 4). Our analysis yields the
// closed form g* = 2/s̄ ≈ 6.51 (s̄ = mean reference-shape factor), which
// matches the paper's *empirical* threshold; see EXPERIMENTS.md for the
// discussion of the 5.95 discrepancy.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "eucon/eucon.h"

using namespace eucon;

int main() {
  bench::ShapeChecks checks;

  const auto model = control::make_plant_model(workloads::simple());
  const auto params = workloads::simple_controller_params();
  control::StabilityAnalyzer an(model, params);

  std::printf("# Spectral radius of the closed loop vs uniform gain (SIMPLE)\n");
  bench::print_header({"gain", "spectral_radius", "stable"});
  for (double g = 0.5; g <= 8.001; g += 0.5) {
    const double rho = an.spectral_radius_uniform(g);
    bench::print_row({g, rho, rho < 1.0 ? 1.0 : 0.0});
  }

  const double critical = an.critical_uniform_gain();
  const double sbar = ((1.0 - std::exp(-0.25)) + (1.0 - std::exp(-0.5))) / 2.0;
  std::printf("\ncritical uniform gain g* = %.4f (closed form 2/s_bar = %.4f; paper analysis: 5.95; paper empirical onset: 6.5-7)\n",
              critical, 2.0 / sbar);

  checks.expect(an.is_stable_uniform(1.0), "stable at nominal gain g=1");
  checks.expect(an.is_stable_uniform(5.9), "stable at g=5.9 (inside paper's region)");
  checks.expect(!an.is_stable_uniform(7.0), "unstable at g=7 (Figure 3b / 4)");
  checks.expect(std::abs(critical - 2.0 / sbar) < 0.05,
                "critical gain matches the closed form 2/s_bar");
  checks.expect(critical > 5.95 && critical < 7.0,
                "critical gain between the paper's analysis (5.95) and its empirical onset (7)");

  // Longer horizons must not destabilize (the paper's MPC-theory remark:
  // stable with short horizons => stable with longer ones).
  control::MpcParams longer = params;
  longer.prediction_horizon = 4;
  longer.control_horizon = 2;
  control::StabilityAnalyzer an_long(model, longer);
  checks.expect(an_long.is_stable_uniform(1.0),
                "still stable at g=1 with P=4, M=2");

  // MEDIUM with its production controller.
  control::StabilityAnalyzer an_med(
      control::make_plant_model(workloads::medium()),
      workloads::medium_controller_params());
  std::printf("\nMEDIUM critical uniform gain = %.4f\n",
              an_med.critical_uniform_gain());
  checks.expect(an_med.is_stable_uniform(1.0), "MEDIUM stable at g=1");
  checks.expect(an_med.is_stable_uniform(3.0), "MEDIUM stable at g=3");

  return checks.finish("bench_stability");
}
