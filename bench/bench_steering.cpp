// Adaptive-steering acceptance harness (docs/steering.md).
//
// Runs the controller_shootout scenario twice — once through the
// successive-elimination steering loop, once as the exhaustive fixed grid —
// and gates the claims the steering layer is sold on: the steered run must
// decide (a single surviving arm), its winner must match the exhaustive
// grid's, and it must spend at least 2x fewer replications doing so. Both
// runs are deterministic, so the gates are stable, not statistical.
//
// Usage: bench_steering [--smoke] [--json PATH]
//   --smoke      a two-arm scenario sized for the ctest gate (~1s)
//   --json PATH  where to write the JSON report (default BENCH_STEERING.json)
//
// After writing the report the harness re-reads it through the shared
// JsonReader and validates schema + internal consistency (the published
// savings must equal the replication ratio, winners_match must equal the
// actual string comparison), so the ctest smoke run is a real gate on the
// file format. Exit code = failed shape checks + schema violations.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "eucon/eucon.h"

using namespace eucon;

namespace {

using SteadyClock = std::chrono::steady_clock;

// The acceptance floor: steering must beat the fixed grid by at least this
// factor on the shootout scenario (ISSUE acceptance criterion).
constexpr double kSavingsFloor = 2.0;

// The checked-in shootout: one coupled random workload where per-processor
// alternatives cannot regulate remote-subtask-dominated processors, so the
// controller ranking has a real gap for the bounds to find.
scenario::Scenario shootout_scenario() {
  return scenario::load_scenario_file(std::string(EUCON_SCENARIO_DIR) +
                                      "/controller_shootout.json");
}

// ctest-sized variant: two arms with a large score gap (EUCON tracks the
// set points at half load, the open-loop baseline cannot), so elimination
// fires within a few rounds and the whole gate runs in about a second.
scenario::Scenario smoke_scenario() {
  return scenario::parse_scenario(R"({
    "name": "shootout-smoke",
    "seed": 7,
    "periods": 60,
    "replicas": 700,
    "controllers": ["eucon", "open"],
    "workloads": ["simple"],
    "etf": [0.5]
  })");
}

struct TimedReport {
  steer::SteeringReport report;
  double seconds = 0.0;
};

template <typename F>
TimedReport timed(F&& fn) {
  const auto t0 = SteadyClock::now();
  TimedReport out;
  out.report = fn();
  out.seconds = std::chrono::duration<double>(SteadyClock::now() - t0).count();
  return out;
}

std::string json_number(double v) {
  EUCON_REQUIRE(std::isfinite(v), "JSON report requires finite numbers");
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

void write_arm_array(std::ofstream& out, const char* indent,
                     const std::vector<steer::ArmOutcome>& arms) {
  for (std::size_t i = 0; i < arms.size(); ++i) {
    const steer::ArmOutcome& a = arms[i];
    out << indent << "{\"controller\": \"" << a.controller
        << "\", \"mean\": " << json_number(a.mean)
        << ", \"pulls\": " << a.pulls
        << ", \"eliminated_round\": " << a.eliminated_round << "}"
        << (i + 1 < arms.size() ? "," : "") << "\n";
  }
}

void write_report(const std::string& path, bool smoke,
                  const steer::SteeringOptions& options,
                  const TimedReport& steered, const TimedReport& grid) {
  const steer::SteeringReport& s = steered.report;
  const steer::SteeringReport& g = grid.report;
  std::ofstream out(path);
  EUCON_REQUIRE(out.good(), "cannot open JSON report path: " + path);
  out << "{\n";
  out << "  \"schema_version\": 1,\n";
  out << "  \"generated_by\": \"bench_steering\",\n";
  out << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  out << "  \"scenario\": \"" << s.scenario << "\",\n";
  out << "  \"delta\": " << json_number(options.bai.delta) << ",\n";
  out << "  \"bound\": \"" << steer::bound_kind_name(options.bai.bound)
      << "\",\n";
  out << "  \"reps_per_round\": " << options.reps_per_round << ",\n";
  out << "  \"savings_floor\": " << json_number(kSavingsFloor) << ",\n";
  out << "  \"winners_match\": " << (s.winner == g.winner ? "true" : "false")
      << ",\n";
  out << "  \"steering\": {\n";
  out << "    \"winner\": \"" << s.winner << "\",\n";
  out << "    \"decided\": " << (s.decided ? "true" : "false") << ",\n";
  out << "    \"rounds\": " << s.rounds << ",\n";
  out << "    \"replications\": " << s.total_replications << ",\n";
  out << "    \"replication_savings\": " << json_number(s.replication_savings)
      << ",\n";
  out << "    \"wall_seconds\": " << json_number(steered.seconds) << ",\n";
  out << "    \"arms\": [\n";
  write_arm_array(out, "      ", s.arms);
  out << "    ]\n";
  out << "  },\n";
  out << "  \"exhaustive\": {\n";
  out << "    \"winner\": \"" << g.winner << "\",\n";
  out << "    \"decided\": " << (g.decided ? "true" : "false") << ",\n";
  out << "    \"replications\": " << g.total_replications << ",\n";
  out << "    \"wall_seconds\": " << json_number(grid.seconds) << ",\n";
  out << "    \"arms\": [\n";
  write_arm_array(out, "      ", g.arms);
  out << "    ]\n";
  out << "  }\n";
  out << "}\n";
  EUCON_REQUIRE(out.good(), "failed writing JSON report: " + path);
}

// Re-reads the emitted report and checks schema + internal consistency;
// returns the number of violations (0 = valid).
int validate_report(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "schema: cannot reopen %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  bench::JsonReader reader(buf.str());
  try {
    reader.parse();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "schema: %s does not parse: %s\n", path.c_str(),
                 e.what());
    return 1;
  }

  int violations = 0;
  const auto need = [&](bool ok, const std::string& what) {
    if (!ok) {
      std::fprintf(stderr, "schema: %s\n", what.c_str());
      ++violations;
    }
  };
  need(reader.has_number("schema_version") &&
           reader.number("schema_version") >= 1.0,
       "schema_version missing or < 1");
  need(reader.has_string("generated_by") &&
           reader.string_at("generated_by") == "bench_steering",
       "generated_by missing or wrong");
  need(reader.has_bool("smoke"), "smoke flag missing");
  need(reader.has_string("scenario"), "scenario missing");
  need(reader.has_number("delta") && reader.number("delta") > 0.0 &&
           reader.number("delta") < 1.0,
       "delta missing or outside (0, 1)");
  need(reader.has_string("bound"), "bound missing");
  need(reader.has_number("savings_floor"), "savings_floor missing");
  need(reader.has_bool("winners_match"), "winners_match missing");
  for (const char* side : {"steering", "exhaustive"}) {
    const std::string p = side;
    need(reader.has_string(p + ".winner"), p + ".winner missing");
    need(reader.has_bool(p + ".decided"), p + ".decided missing");
    need(reader.has_number(p + ".replications") &&
             reader.number(p + ".replications") >= 1.0,
         p + ".replications missing or < 1");
    need(reader.has_number(p + ".wall_seconds") &&
             reader.number(p + ".wall_seconds") >= 0.0,
         p + ".wall_seconds missing or negative");
    std::size_t arms = 0;
    try {
      arms = reader.array_size(p + ".arms");
    } catch (const std::exception&) {
      // handled by the need() below
    }
    need(arms >= 2, p + ".arms must hold at least two controllers");
    for (std::size_t i = 0; i < arms; ++i) {
      const std::string a = p + ".arms[" + std::to_string(i) + "]";
      need(reader.has_string(a + ".controller"), a + ".controller missing");
      need(reader.has_number(a + ".mean") &&
               reader.number(a + ".mean") >= 0.0 &&
               reader.number(a + ".mean") <= 1.0,
           a + ".mean missing or outside [0, 1]");
      need(reader.has_number(a + ".pulls") &&
               reader.number(a + ".pulls") >= 1.0,
           a + ".pulls missing or < 1");
      need(reader.has_number(a + ".eliminated_round"),
           a + ".eliminated_round missing");
    }
  }
  // Internal consistency: the published numbers must agree with each other,
  // not just be well-typed.
  if (reader.has_number("steering.replications") &&
      reader.has_number("exhaustive.replications") &&
      reader.has_number("steering.replication_savings")) {
    // %.9g serialization rounds the ratio; compare at matching precision.
    const double ratio = reader.number("exhaustive.replications") /
                         reader.number("steering.replications");
    need(std::fabs(ratio - reader.number("steering.replication_savings")) <
             1e-6 * ratio,
         "replication_savings does not equal the replication ratio");
  } else {
    need(false, "steering.replication_savings missing");
  }
  if (reader.has_bool("winners_match") &&
      reader.has_string("steering.winner") &&
      reader.has_string("exhaustive.winner")) {
    need(reader.bool_at("winners_match") ==
             (reader.string_at("steering.winner") ==
              reader.string_at("exhaustive.winner")),
         "winners_match disagrees with the winner strings");
  }
  return violations;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_STEERING.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_steering [--smoke] [--json PATH]\n");
      return 2;
    }
  }

  const scenario::Scenario sc =
      smoke ? smoke_scenario() : shootout_scenario();
  steer::SteeringOptions options;
  options.reps_per_round = 25;

  std::printf("bench_steering: %s run, scenario %s (%zu arms, budget %zu "
              "pulls/arm)\n",
              smoke ? "smoke" : "full", sc.name.c_str(),
              sc.controllers.size(),
              sc.num_instances() * static_cast<std::size_t>(sc.replicas));

  obs::Registry registry;
  steer::SteeringOptions steer_options = options;
  steer_options.metrics = &registry;
  const TimedReport steered =
      timed([&] { return steer::run_steering(sc, steer_options); });
  const TimedReport grid =
      timed([&] { return steer::run_exhaustive(sc, options); });
  const steer::SteeringReport& s = steered.report;
  const steer::SteeringReport& g = grid.report;

  std::printf("steering:   winner=%-8s decided=%d rounds=%zu "
              "replications=%zu savings=%.2fx wall=%.2fs\n",
              s.winner.c_str(), s.decided ? 1 : 0, s.rounds,
              s.total_replications, s.replication_savings, steered.seconds);
  std::printf("exhaustive: winner=%-8s decided=%d replications=%zu "
              "wall=%.2fs\n",
              g.winner.c_str(), g.decided ? 1 : 0, g.total_replications,
              grid.seconds);
  for (const steer::ArmOutcome& a : s.arms)
    std::printf("  arm %-8s mean=%.4f pulls=%-5zu eliminated_round=%d\n",
                a.controller.c_str(), a.mean, a.pulls, a.eliminated_round);

  bench::ShapeChecks checks;
  checks.expect(s.decided,
                "steering decides on a single surviving controller");
  checks.expect(s.winner == g.winner,
                "steered winner matches the exhaustive grid");
  checks.expect(s.replication_savings >= kSavingsFloor,
                "replication savings clear the " +
                    std::string(json_number(kSavingsFloor)) + "x floor");
  checks.expect(s.total_replications < g.total_replications,
                "steering spends strictly fewer runs than the grid");
  checks.expect(g.decided,
                "exhaustive grid separates the winner (sanity on the gap)");
  const obs::Snapshot snap = registry.snapshot();
  checks.expect(snap.counters.at("steer.rounds") == s.rounds &&
                    snap.counters.at("steer.replications") ==
                        s.total_replications,
                "steer.* registry counters agree with the report");

  write_report(json_path, smoke, options, steered, grid);
  const int violations = validate_report(json_path);
  if (violations != 0)
    std::fprintf(stderr, "bench_steering: %s failed schema validation\n",
                 json_path.c_str());
  else
    std::printf("bench_steering: wrote %s (schema valid)\n",
                json_path.c_str());
  return checks.finish("bench_steering") + violations;
}
