// Tables 1 and 2 of the paper: the SIMPLE task parameters and the
// controller parameters, regenerated from the workload builders (with
// consistency checks), plus the derived quantities the experiments use
// (allocation matrix F and the Liu–Layland set points of eq. 13).
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "eucon/eucon.h"

using namespace eucon;

int main() {
  bench::ShapeChecks checks;

  std::printf("# Table 1: task parameters in SIMPLE\n");
  bench::print_header({"Tij", "Proc", "cij", "1/Rmax", "1/Rmin", "1/r(0)"});
  const rts::SystemSpec s = workloads::simple();
  for (std::size_t i = 0; i < s.num_tasks(); ++i) {
    const auto& t = s.tasks[i];
    for (std::size_t j = 0; j < t.subtasks.size(); ++j) {
      std::printf("T%zu%zu,P%d,%g,%g,%g,%g\n", i + 1, j + 1,
                  t.subtasks[j].processor + 1, t.subtasks[j].estimated_exec,
                  1.0 / t.rate_max, 1.0 / t.rate_min, 1.0 / t.initial_rate);
    }
  }
  checks.expect(s.num_tasks() == 3 && s.num_subtasks() == 4,
                "SIMPLE has 3 tasks / 4 subtasks");
  checks.expect(s.tasks[1].subtasks[0].processor == 0 &&
                    s.tasks[1].subtasks[1].processor == 1,
                "T2 spans P1 -> P2");

  std::printf("\n# Table 2: controller parameters\n");
  bench::print_header({"System", "P", "M", "Tref/Ts", "Ts"});
  const auto ps = workloads::simple_controller_params();
  const auto pm = workloads::medium_controller_params();
  std::printf("SIMPLE,%d,%d,%g,1000\n", ps.prediction_horizon,
              ps.control_horizon, ps.tref_over_ts);
  std::printf("MEDIUM,%d,%d,%g,1000\n", pm.prediction_horizon,
              pm.control_horizon, pm.tref_over_ts);
  checks.expect(ps.prediction_horizon == 2 && ps.control_horizon == 1,
                "SIMPLE controller P=2, M=1");
  checks.expect(pm.prediction_horizon == 4 && pm.control_horizon == 2,
                "MEDIUM controller P=4, M=2");

  std::printf("\n# Derived: subtask allocation matrix F (SIMPLE, paper section 5)\n");
  const auto model = control::make_plant_model(s);
  for (std::size_t r = 0; r < model.f.rows(); ++r) {
    std::vector<double> row;
    for (std::size_t c = 0; c < model.f.cols(); ++c) row.push_back(model.f(r, c));
    bench::print_row(row);
  }
  checks.expect(model.f(0, 0) == 35.0 && model.f(0, 1) == 35.0 &&  // eucon-lint: allow(float-equality)
                    model.f(1, 1) == 35.0 && model.f(1, 2) == 45.0,  // eucon-lint: allow(float-equality)
                "F matches [c11 c21 0; 0 c22 c31]");

  std::printf("\n# Derived: Liu-Layland set points (eq. 13)\n");
  bench::print_row(model.b.data());
  checks.expect(std::abs(model.b[0] - 0.828) < 5e-4,
                "SIMPLE set points = 0.828 (both processors host 2 subtasks)");

  const auto med = workloads::medium();
  const auto medb = med.liu_layland_set_points();
  std::printf("\n# Derived: MEDIUM set points\n");
  bench::print_row(medb.data());
  checks.expect(med.num_tasks() == 12 && med.num_subtasks() == 25,
                "MEDIUM has 12 tasks / 25 subtasks (8 end-to-end + 4 local)");
  checks.expect(std::abs(medb[0] - 0.729) < 5e-4,
                "MEDIUM P1 set point = 0.729 (quoted in paper section 7.2)");

  return checks.finish("bench_tables");
}
