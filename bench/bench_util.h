// Shared scaffolding for the figure/table reproduction benches.
//
// Every bench prints (a) the series the paper plots, as CSV on stdout, and
// (b) a PASS/FAIL summary of *shape* checks — the qualitative claims the
// paper makes about that figure. Exit code = number of failed checks.
// JsonReader is the shared schema-validation half: the report-emitting
// benches (bench_perf, bench_steering) re-read their own JSON output
// through it before exiting, so the ctest smoke runs are real gates on the
// file format.
#pragma once

#include <cctype>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/check.h"

namespace eucon::bench {

class ShapeChecks {
 public:
  void expect(bool ok, const std::string& what) {
    std::printf("[%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
    if (!ok) ++failures_;
    ++total_;
  }

  // Prints the summary and returns the exit code.
  int finish(const char* bench_name) const {
    std::printf("== %s: %d/%d shape checks passed ==\n", bench_name,
                total_ - failures_, total_);
    return failures_;
  }

 private:
  int failures_ = 0;
  int total_ = 0;
};

inline void print_row(const std::vector<double>& values) {
  bool first = true;
  for (double v : values) {
    std::printf(first ? "%.6g" : ",%.6g", v);
    first = false;
  }
  std::printf("\n");
}

inline void print_header(const std::vector<std::string>& cols) {
  bool first = true;
  for (const auto& c : cols) {
    std::printf(first ? "%s" : ",%s", c.c_str());
    first = false;
  }
  std::printf("\n");
}

// Minimal recursive-descent JSON reader — just enough structure to verify
// a bench report schema for real (the ctest smoke gates), not a general
// parser.
class JsonReader {
 public:
  explicit JsonReader(std::string text) : text_(std::move(text)) {}

  // Parses the whole input as one object and returns the flattened
  // key paths ("batch.speedup", "benchmarks[0].p50_us", ...) that hold a
  // number, plus object/array shape counts.
  void parse() {
    skip_ws();
    parse_value("");
    skip_ws();
    EUCON_REQUIRE(pos_ == text_.size(), "trailing bytes after JSON document");
  }

  bool has_number(const std::string& path) const {
    return numbers_.count(path) > 0;
  }
  double number(const std::string& path) const {
    const auto it = numbers_.find(path);
    EUCON_REQUIRE(it != numbers_.end(), "missing numeric key: " + path);
    return it->second;
  }
  bool has_string(const std::string& path) const {
    return strings_.count(path) > 0;
  }
  std::string string_at(const std::string& path) const {
    const auto it = strings_.find(path);
    EUCON_REQUIRE(it != strings_.end(), "missing string key: " + path);
    return it->second;
  }
  bool has_bool(const std::string& path) const {
    return bools_.count(path) > 0;
  }
  bool bool_at(const std::string& path) const {
    const auto it = bools_.find(path);
    EUCON_REQUIRE(it != bools_.end(), "missing bool key: " + path);
    return it->second;
  }
  bool has_null(const std::string& path) const {
    return nulls_.count(path) > 0;
  }
  std::size_t array_size(const std::string& path) const {
    const auto it = arrays_.find(path);
    EUCON_REQUIRE(it != arrays_.end(), "missing array key: " + path);
    return it->second;
  }

 private:
  void parse_value(const std::string& path) {
    skip_ws();
    EUCON_REQUIRE(pos_ < text_.size(), "unexpected end of JSON");
    const char c = text_[pos_];
    if (c == '{') {
      parse_object(path);
    } else if (c == '[') {
      parse_array(path);
    } else if (c == '"') {
      strings_[path] = parse_string();
    } else if (c == 't' || c == 'f') {
      parse_bool(path);
    } else if (c == 'n') {
      EUCON_REQUIRE(text_.compare(pos_, 4, "null") == 0,
                    "invalid JSON literal at byte " + std::to_string(pos_));
      nulls_.insert(path);
      pos_ += 4;
    } else {
      parse_number(path);
    }
  }

  void parse_object(const std::string& path) {
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return;
    }
    while (true) {
      skip_ws();
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      parse_value(path.empty() ? key : path + "." + key);
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return;
    }
  }

  void parse_array(const std::string& path) {
    expect('[');
    skip_ws();
    std::size_t count = 0;
    if (peek() == ']') {
      ++pos_;
      arrays_[path] = 0;
      return;
    }
    while (true) {
      parse_value(path + "[" + std::to_string(count) + "]");
      ++count;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      arrays_[path] = count;
      return;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string s;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      EUCON_REQUIRE(text_[pos_] != '\\',
                    "escape sequences not used by this schema");
      s += text_[pos_++];
    }
    expect('"');
    return s;
  }

  void parse_bool(const std::string& path) {
    if (text_.compare(pos_, 4, "true") == 0) {
      bools_[path] = true;
      pos_ += 4;
      return;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      bools_[path] = false;
      pos_ += 5;
      return;
    }
    EUCON_FAIL("invalid JSON literal at byte " + std::to_string(pos_));
  }

  void parse_number(const std::string& path) {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    EUCON_REQUIRE(pos_ > start,
                  "invalid JSON value at byte " + std::to_string(start));
    numbers_[path] = std::stod(text_.substr(start, pos_ - start));
  }

  char peek() const {
    EUCON_REQUIRE(pos_ < text_.size(), "unexpected end of JSON");
    return text_[pos_];
  }
  void expect(char c) {
    EUCON_REQUIRE(pos_ < text_.size() && text_[pos_] == c,
                  std::string("expected '") + c + "' at byte " +
                      std::to_string(pos_));
    ++pos_;
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0)
      ++pos_;
  }

  std::string text_;
  std::size_t pos_ = 0;
  std::map<std::string, double> numbers_;
  std::map<std::string, std::string> strings_;
  std::map<std::string, bool> bools_;
  std::set<std::string> nulls_;
  std::map<std::string, std::size_t> arrays_;
};

}  // namespace eucon::bench
