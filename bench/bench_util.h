// Shared scaffolding for the figure/table reproduction benches.
//
// Every bench prints (a) the series the paper plots, as CSV on stdout, and
// (b) a PASS/FAIL summary of *shape* checks — the qualitative claims the
// paper makes about that figure. Exit code = number of failed checks.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace eucon::bench {

class ShapeChecks {
 public:
  void expect(bool ok, const std::string& what) {
    std::printf("[%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
    if (!ok) ++failures_;
    ++total_;
  }

  // Prints the summary and returns the exit code.
  int finish(const char* bench_name) const {
    std::printf("== %s: %d/%d shape checks passed ==\n", bench_name,
                total_ - failures_, total_);
    return failures_;
  }

 private:
  int failures_ = 0;
  int total_ = 0;
};

inline void print_row(const std::vector<double>& values) {
  bool first = true;
  for (double v : values) {
    std::printf(first ? "%.6g" : ",%.6g", v);
    first = false;
  }
  std::printf("\n");
}

inline void print_header(const std::vector<std::string>& cols) {
  bool first = true;
  for (const auto& c : cols) {
    std::printf(first ? "%s" : ",%s", c.c_str());
    first = false;
  }
  std::printf("\n");
}

}  // namespace eucon::bench
