
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_stability.cpp" "bench/CMakeFiles/bench_stability.dir/bench_stability.cpp.o" "gcc" "bench/CMakeFiles/bench_stability.dir/bench_stability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eucon/CMakeFiles/eucon_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/eucon_control.dir/DependInfo.cmake"
  "/root/repo/build/src/rts/CMakeFiles/eucon_rts.dir/DependInfo.cmake"
  "/root/repo/build/src/qp/CMakeFiles/eucon_qp.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/eucon_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/eucon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
