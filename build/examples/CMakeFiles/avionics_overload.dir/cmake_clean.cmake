file(REMOVE_RECURSE
  "CMakeFiles/avionics_overload.dir/avionics_overload.cpp.o"
  "CMakeFiles/avionics_overload.dir/avionics_overload.cpp.o.d"
  "avionics_overload"
  "avionics_overload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avionics_overload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
