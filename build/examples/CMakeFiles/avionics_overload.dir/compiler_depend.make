# Empty compiler generated dependencies file for avionics_overload.
# This may be replaced when dependencies are built.
