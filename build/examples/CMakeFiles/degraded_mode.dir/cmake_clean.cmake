file(REMOVE_RECURSE
  "CMakeFiles/degraded_mode.dir/degraded_mode.cpp.o"
  "CMakeFiles/degraded_mode.dir/degraded_mode.cpp.o.d"
  "degraded_mode"
  "degraded_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/degraded_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
