# Empty dependencies file for degraded_mode.
# This may be replaced when dependencies are built.
