file(REMOVE_RECURSE
  "CMakeFiles/online_trading.dir/online_trading.cpp.o"
  "CMakeFiles/online_trading.dir/online_trading.cpp.o.d"
  "online_trading"
  "online_trading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_trading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
