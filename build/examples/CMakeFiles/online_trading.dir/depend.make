# Empty dependencies file for online_trading.
# This may be replaced when dependencies are built.
