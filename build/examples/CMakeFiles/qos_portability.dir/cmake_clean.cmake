file(REMOVE_RECURSE
  "CMakeFiles/qos_portability.dir/qos_portability.cpp.o"
  "CMakeFiles/qos_portability.dir/qos_portability.cpp.o.d"
  "qos_portability"
  "qos_portability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qos_portability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
