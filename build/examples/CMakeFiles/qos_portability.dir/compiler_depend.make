# Empty compiler generated dependencies file for qos_portability.
# This may be replaced when dependencies are built.
