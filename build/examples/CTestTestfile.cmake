# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;10;eucon_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_avionics_overload "/root/repo/build/examples/avionics_overload")
set_tests_properties(example_avionics_overload PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;11;eucon_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_qos_portability "/root/repo/build/examples/qos_portability")
set_tests_properties(example_qos_portability PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;12;eucon_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_online_trading "/root/repo/build/examples/online_trading")
set_tests_properties(example_online_trading PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;13;eucon_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_degraded_mode "/root/repo/build/examples/degraded_mode")
set_tests_properties(example_degraded_mode PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;14;eucon_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_capacity_planning "/root/repo/build/examples/capacity_planning")
set_tests_properties(example_capacity_planning PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;15;eucon_example;/root/repo/examples/CMakeLists.txt;0;")
