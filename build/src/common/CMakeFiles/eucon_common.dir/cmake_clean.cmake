file(REMOVE_RECURSE
  "CMakeFiles/eucon_common.dir/csv.cpp.o"
  "CMakeFiles/eucon_common.dir/csv.cpp.o.d"
  "CMakeFiles/eucon_common.dir/rng.cpp.o"
  "CMakeFiles/eucon_common.dir/rng.cpp.o.d"
  "CMakeFiles/eucon_common.dir/stats.cpp.o"
  "CMakeFiles/eucon_common.dir/stats.cpp.o.d"
  "libeucon_common.a"
  "libeucon_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eucon_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
