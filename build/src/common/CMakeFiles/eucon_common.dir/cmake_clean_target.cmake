file(REMOVE_RECURSE
  "libeucon_common.a"
)
