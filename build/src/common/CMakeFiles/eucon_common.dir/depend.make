# Empty dependencies file for eucon_common.
# This may be replaced when dependencies are built.
