
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/control/adaptive.cpp" "src/control/CMakeFiles/eucon_control.dir/adaptive.cpp.o" "gcc" "src/control/CMakeFiles/eucon_control.dir/adaptive.cpp.o.d"
  "/root/repo/src/control/admission.cpp" "src/control/CMakeFiles/eucon_control.dir/admission.cpp.o" "gcc" "src/control/CMakeFiles/eucon_control.dir/admission.cpp.o.d"
  "/root/repo/src/control/decentralized.cpp" "src/control/CMakeFiles/eucon_control.dir/decentralized.cpp.o" "gcc" "src/control/CMakeFiles/eucon_control.dir/decentralized.cpp.o.d"
  "/root/repo/src/control/diagnostics.cpp" "src/control/CMakeFiles/eucon_control.dir/diagnostics.cpp.o" "gcc" "src/control/CMakeFiles/eucon_control.dir/diagnostics.cpp.o.d"
  "/root/repo/src/control/gain_estimator.cpp" "src/control/CMakeFiles/eucon_control.dir/gain_estimator.cpp.o" "gcc" "src/control/CMakeFiles/eucon_control.dir/gain_estimator.cpp.o.d"
  "/root/repo/src/control/linear_plant.cpp" "src/control/CMakeFiles/eucon_control.dir/linear_plant.cpp.o" "gcc" "src/control/CMakeFiles/eucon_control.dir/linear_plant.cpp.o.d"
  "/root/repo/src/control/model.cpp" "src/control/CMakeFiles/eucon_control.dir/model.cpp.o" "gcc" "src/control/CMakeFiles/eucon_control.dir/model.cpp.o.d"
  "/root/repo/src/control/mpc.cpp" "src/control/CMakeFiles/eucon_control.dir/mpc.cpp.o" "gcc" "src/control/CMakeFiles/eucon_control.dir/mpc.cpp.o.d"
  "/root/repo/src/control/open_loop.cpp" "src/control/CMakeFiles/eucon_control.dir/open_loop.cpp.o" "gcc" "src/control/CMakeFiles/eucon_control.dir/open_loop.cpp.o.d"
  "/root/repo/src/control/pid.cpp" "src/control/CMakeFiles/eucon_control.dir/pid.cpp.o" "gcc" "src/control/CMakeFiles/eucon_control.dir/pid.cpp.o.d"
  "/root/repo/src/control/reallocation.cpp" "src/control/CMakeFiles/eucon_control.dir/reallocation.cpp.o" "gcc" "src/control/CMakeFiles/eucon_control.dir/reallocation.cpp.o.d"
  "/root/repo/src/control/stability.cpp" "src/control/CMakeFiles/eucon_control.dir/stability.cpp.o" "gcc" "src/control/CMakeFiles/eucon_control.dir/stability.cpp.o.d"
  "/root/repo/src/control/uncoordinated.cpp" "src/control/CMakeFiles/eucon_control.dir/uncoordinated.cpp.o" "gcc" "src/control/CMakeFiles/eucon_control.dir/uncoordinated.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/eucon_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/qp/CMakeFiles/eucon_qp.dir/DependInfo.cmake"
  "/root/repo/build/src/rts/CMakeFiles/eucon_rts.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/eucon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
