file(REMOVE_RECURSE
  "CMakeFiles/eucon_control.dir/adaptive.cpp.o"
  "CMakeFiles/eucon_control.dir/adaptive.cpp.o.d"
  "CMakeFiles/eucon_control.dir/admission.cpp.o"
  "CMakeFiles/eucon_control.dir/admission.cpp.o.d"
  "CMakeFiles/eucon_control.dir/decentralized.cpp.o"
  "CMakeFiles/eucon_control.dir/decentralized.cpp.o.d"
  "CMakeFiles/eucon_control.dir/diagnostics.cpp.o"
  "CMakeFiles/eucon_control.dir/diagnostics.cpp.o.d"
  "CMakeFiles/eucon_control.dir/gain_estimator.cpp.o"
  "CMakeFiles/eucon_control.dir/gain_estimator.cpp.o.d"
  "CMakeFiles/eucon_control.dir/linear_plant.cpp.o"
  "CMakeFiles/eucon_control.dir/linear_plant.cpp.o.d"
  "CMakeFiles/eucon_control.dir/model.cpp.o"
  "CMakeFiles/eucon_control.dir/model.cpp.o.d"
  "CMakeFiles/eucon_control.dir/mpc.cpp.o"
  "CMakeFiles/eucon_control.dir/mpc.cpp.o.d"
  "CMakeFiles/eucon_control.dir/open_loop.cpp.o"
  "CMakeFiles/eucon_control.dir/open_loop.cpp.o.d"
  "CMakeFiles/eucon_control.dir/pid.cpp.o"
  "CMakeFiles/eucon_control.dir/pid.cpp.o.d"
  "CMakeFiles/eucon_control.dir/reallocation.cpp.o"
  "CMakeFiles/eucon_control.dir/reallocation.cpp.o.d"
  "CMakeFiles/eucon_control.dir/stability.cpp.o"
  "CMakeFiles/eucon_control.dir/stability.cpp.o.d"
  "CMakeFiles/eucon_control.dir/uncoordinated.cpp.o"
  "CMakeFiles/eucon_control.dir/uncoordinated.cpp.o.d"
  "libeucon_control.a"
  "libeucon_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eucon_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
