file(REMOVE_RECURSE
  "libeucon_control.a"
)
