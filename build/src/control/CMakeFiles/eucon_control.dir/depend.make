# Empty dependencies file for eucon_control.
# This may be replaced when dependencies are built.
