
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eucon/experiment.cpp" "src/eucon/CMakeFiles/eucon_lib.dir/experiment.cpp.o" "gcc" "src/eucon/CMakeFiles/eucon_lib.dir/experiment.cpp.o.d"
  "/root/repo/src/eucon/feedback_lane.cpp" "src/eucon/CMakeFiles/eucon_lib.dir/feedback_lane.cpp.o" "gcc" "src/eucon/CMakeFiles/eucon_lib.dir/feedback_lane.cpp.o.d"
  "/root/repo/src/eucon/metrics.cpp" "src/eucon/CMakeFiles/eucon_lib.dir/metrics.cpp.o" "gcc" "src/eucon/CMakeFiles/eucon_lib.dir/metrics.cpp.o.d"
  "/root/repo/src/eucon/network.cpp" "src/eucon/CMakeFiles/eucon_lib.dir/network.cpp.o" "gcc" "src/eucon/CMakeFiles/eucon_lib.dir/network.cpp.o.d"
  "/root/repo/src/eucon/replication.cpp" "src/eucon/CMakeFiles/eucon_lib.dir/replication.cpp.o" "gcc" "src/eucon/CMakeFiles/eucon_lib.dir/replication.cpp.o.d"
  "/root/repo/src/eucon/report.cpp" "src/eucon/CMakeFiles/eucon_lib.dir/report.cpp.o" "gcc" "src/eucon/CMakeFiles/eucon_lib.dir/report.cpp.o.d"
  "/root/repo/src/eucon/workloads.cpp" "src/eucon/CMakeFiles/eucon_lib.dir/workloads.cpp.o" "gcc" "src/eucon/CMakeFiles/eucon_lib.dir/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/control/CMakeFiles/eucon_control.dir/DependInfo.cmake"
  "/root/repo/build/src/rts/CMakeFiles/eucon_rts.dir/DependInfo.cmake"
  "/root/repo/build/src/qp/CMakeFiles/eucon_qp.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/eucon_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/eucon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
