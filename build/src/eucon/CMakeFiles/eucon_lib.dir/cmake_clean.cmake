file(REMOVE_RECURSE
  "CMakeFiles/eucon_lib.dir/experiment.cpp.o"
  "CMakeFiles/eucon_lib.dir/experiment.cpp.o.d"
  "CMakeFiles/eucon_lib.dir/feedback_lane.cpp.o"
  "CMakeFiles/eucon_lib.dir/feedback_lane.cpp.o.d"
  "CMakeFiles/eucon_lib.dir/metrics.cpp.o"
  "CMakeFiles/eucon_lib.dir/metrics.cpp.o.d"
  "CMakeFiles/eucon_lib.dir/network.cpp.o"
  "CMakeFiles/eucon_lib.dir/network.cpp.o.d"
  "CMakeFiles/eucon_lib.dir/replication.cpp.o"
  "CMakeFiles/eucon_lib.dir/replication.cpp.o.d"
  "CMakeFiles/eucon_lib.dir/report.cpp.o"
  "CMakeFiles/eucon_lib.dir/report.cpp.o.d"
  "CMakeFiles/eucon_lib.dir/workloads.cpp.o"
  "CMakeFiles/eucon_lib.dir/workloads.cpp.o.d"
  "libeucon_lib.a"
  "libeucon_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eucon_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
