file(REMOVE_RECURSE
  "libeucon_lib.a"
)
