# Empty compiler generated dependencies file for eucon_lib.
# This may be replaced when dependencies are built.
