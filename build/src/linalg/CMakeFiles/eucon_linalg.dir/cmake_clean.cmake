file(REMOVE_RECURSE
  "CMakeFiles/eucon_linalg.dir/cholesky.cpp.o"
  "CMakeFiles/eucon_linalg.dir/cholesky.cpp.o.d"
  "CMakeFiles/eucon_linalg.dir/eig.cpp.o"
  "CMakeFiles/eucon_linalg.dir/eig.cpp.o.d"
  "CMakeFiles/eucon_linalg.dir/lu.cpp.o"
  "CMakeFiles/eucon_linalg.dir/lu.cpp.o.d"
  "CMakeFiles/eucon_linalg.dir/matrix.cpp.o"
  "CMakeFiles/eucon_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/eucon_linalg.dir/qr.cpp.o"
  "CMakeFiles/eucon_linalg.dir/qr.cpp.o.d"
  "CMakeFiles/eucon_linalg.dir/vector.cpp.o"
  "CMakeFiles/eucon_linalg.dir/vector.cpp.o.d"
  "libeucon_linalg.a"
  "libeucon_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eucon_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
