file(REMOVE_RECURSE
  "libeucon_linalg.a"
)
