# Empty compiler generated dependencies file for eucon_linalg.
# This may be replaced when dependencies are built.
