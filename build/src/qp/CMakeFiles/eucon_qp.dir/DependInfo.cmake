
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qp/active_set.cpp" "src/qp/CMakeFiles/eucon_qp.dir/active_set.cpp.o" "gcc" "src/qp/CMakeFiles/eucon_qp.dir/active_set.cpp.o.d"
  "/root/repo/src/qp/lsqlin.cpp" "src/qp/CMakeFiles/eucon_qp.dir/lsqlin.cpp.o" "gcc" "src/qp/CMakeFiles/eucon_qp.dir/lsqlin.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/eucon_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/eucon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
