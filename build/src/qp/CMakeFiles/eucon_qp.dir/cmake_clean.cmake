file(REMOVE_RECURSE
  "CMakeFiles/eucon_qp.dir/active_set.cpp.o"
  "CMakeFiles/eucon_qp.dir/active_set.cpp.o.d"
  "CMakeFiles/eucon_qp.dir/lsqlin.cpp.o"
  "CMakeFiles/eucon_qp.dir/lsqlin.cpp.o.d"
  "libeucon_qp.a"
  "libeucon_qp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eucon_qp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
