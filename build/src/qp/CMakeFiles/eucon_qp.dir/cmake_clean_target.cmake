file(REMOVE_RECURSE
  "libeucon_qp.a"
)
