# Empty dependencies file for eucon_qp.
# This may be replaced when dependencies are built.
