
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rts/analysis.cpp" "src/rts/CMakeFiles/eucon_rts.dir/analysis.cpp.o" "gcc" "src/rts/CMakeFiles/eucon_rts.dir/analysis.cpp.o.d"
  "/root/repo/src/rts/deadline_stats.cpp" "src/rts/CMakeFiles/eucon_rts.dir/deadline_stats.cpp.o" "gcc" "src/rts/CMakeFiles/eucon_rts.dir/deadline_stats.cpp.o.d"
  "/root/repo/src/rts/etf.cpp" "src/rts/CMakeFiles/eucon_rts.dir/etf.cpp.o" "gcc" "src/rts/CMakeFiles/eucon_rts.dir/etf.cpp.o.d"
  "/root/repo/src/rts/processor.cpp" "src/rts/CMakeFiles/eucon_rts.dir/processor.cpp.o" "gcc" "src/rts/CMakeFiles/eucon_rts.dir/processor.cpp.o.d"
  "/root/repo/src/rts/simulator.cpp" "src/rts/CMakeFiles/eucon_rts.dir/simulator.cpp.o" "gcc" "src/rts/CMakeFiles/eucon_rts.dir/simulator.cpp.o.d"
  "/root/repo/src/rts/spec.cpp" "src/rts/CMakeFiles/eucon_rts.dir/spec.cpp.o" "gcc" "src/rts/CMakeFiles/eucon_rts.dir/spec.cpp.o.d"
  "/root/repo/src/rts/spec_io.cpp" "src/rts/CMakeFiles/eucon_rts.dir/spec_io.cpp.o" "gcc" "src/rts/CMakeFiles/eucon_rts.dir/spec_io.cpp.o.d"
  "/root/repo/src/rts/trace.cpp" "src/rts/CMakeFiles/eucon_rts.dir/trace.cpp.o" "gcc" "src/rts/CMakeFiles/eucon_rts.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/eucon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/eucon_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
