file(REMOVE_RECURSE
  "CMakeFiles/eucon_rts.dir/analysis.cpp.o"
  "CMakeFiles/eucon_rts.dir/analysis.cpp.o.d"
  "CMakeFiles/eucon_rts.dir/deadline_stats.cpp.o"
  "CMakeFiles/eucon_rts.dir/deadline_stats.cpp.o.d"
  "CMakeFiles/eucon_rts.dir/etf.cpp.o"
  "CMakeFiles/eucon_rts.dir/etf.cpp.o.d"
  "CMakeFiles/eucon_rts.dir/processor.cpp.o"
  "CMakeFiles/eucon_rts.dir/processor.cpp.o.d"
  "CMakeFiles/eucon_rts.dir/simulator.cpp.o"
  "CMakeFiles/eucon_rts.dir/simulator.cpp.o.d"
  "CMakeFiles/eucon_rts.dir/spec.cpp.o"
  "CMakeFiles/eucon_rts.dir/spec.cpp.o.d"
  "CMakeFiles/eucon_rts.dir/spec_io.cpp.o"
  "CMakeFiles/eucon_rts.dir/spec_io.cpp.o.d"
  "CMakeFiles/eucon_rts.dir/trace.cpp.o"
  "CMakeFiles/eucon_rts.dir/trace.cpp.o.d"
  "libeucon_rts.a"
  "libeucon_rts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eucon_rts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
