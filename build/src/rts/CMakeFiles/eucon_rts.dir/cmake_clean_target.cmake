file(REMOVE_RECURSE
  "libeucon_rts.a"
)
