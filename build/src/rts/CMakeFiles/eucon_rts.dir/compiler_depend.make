# Empty compiler generated dependencies file for eucon_rts.
# This may be replaced when dependencies are built.
