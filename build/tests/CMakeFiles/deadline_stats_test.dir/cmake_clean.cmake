file(REMOVE_RECURSE
  "CMakeFiles/deadline_stats_test.dir/deadline_stats_test.cpp.o"
  "CMakeFiles/deadline_stats_test.dir/deadline_stats_test.cpp.o.d"
  "deadline_stats_test"
  "deadline_stats_test.pdb"
  "deadline_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadline_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
