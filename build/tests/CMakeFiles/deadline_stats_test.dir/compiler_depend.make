# Empty compiler generated dependencies file for deadline_stats_test.
# This may be replaced when dependencies are built.
