file(REMOVE_RECURSE
  "CMakeFiles/decentralized_test.dir/decentralized_test.cpp.o"
  "CMakeFiles/decentralized_test.dir/decentralized_test.cpp.o.d"
  "decentralized_test"
  "decentralized_test.pdb"
  "decentralized_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decentralized_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
