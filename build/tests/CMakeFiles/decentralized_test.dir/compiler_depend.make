# Empty compiler generated dependencies file for decentralized_test.
# This may be replaced when dependencies are built.
