file(REMOVE_RECURSE
  "CMakeFiles/eig_test.dir/eig_test.cpp.o"
  "CMakeFiles/eig_test.dir/eig_test.cpp.o.d"
  "eig_test"
  "eig_test.pdb"
  "eig_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eig_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
