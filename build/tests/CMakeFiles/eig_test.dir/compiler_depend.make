# Empty compiler generated dependencies file for eig_test.
# This may be replaced when dependencies are built.
