file(REMOVE_RECURSE
  "CMakeFiles/etf_test.dir/etf_test.cpp.o"
  "CMakeFiles/etf_test.dir/etf_test.cpp.o.d"
  "etf_test"
  "etf_test.pdb"
  "etf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
