# Empty compiler generated dependencies file for etf_test.
# This may be replaced when dependencies are built.
