file(REMOVE_RECURSE
  "CMakeFiles/exec_distribution_test.dir/exec_distribution_test.cpp.o"
  "CMakeFiles/exec_distribution_test.dir/exec_distribution_test.cpp.o.d"
  "exec_distribution_test"
  "exec_distribution_test.pdb"
  "exec_distribution_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_distribution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
