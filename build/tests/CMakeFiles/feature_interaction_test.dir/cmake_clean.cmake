file(REMOVE_RECURSE
  "CMakeFiles/feature_interaction_test.dir/feature_interaction_test.cpp.o"
  "CMakeFiles/feature_interaction_test.dir/feature_interaction_test.cpp.o.d"
  "feature_interaction_test"
  "feature_interaction_test.pdb"
  "feature_interaction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_interaction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
