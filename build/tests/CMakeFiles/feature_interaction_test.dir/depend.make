# Empty dependencies file for feature_interaction_test.
# This may be replaced when dependencies are built.
