file(REMOVE_RECURSE
  "CMakeFiles/feedback_lane_test.dir/feedback_lane_test.cpp.o"
  "CMakeFiles/feedback_lane_test.dir/feedback_lane_test.cpp.o.d"
  "feedback_lane_test"
  "feedback_lane_test.pdb"
  "feedback_lane_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feedback_lane_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
