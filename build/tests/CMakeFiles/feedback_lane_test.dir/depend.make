# Empty dependencies file for feedback_lane_test.
# This may be replaced when dependencies are built.
