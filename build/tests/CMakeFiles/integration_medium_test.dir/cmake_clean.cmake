file(REMOVE_RECURSE
  "CMakeFiles/integration_medium_test.dir/integration_medium_test.cpp.o"
  "CMakeFiles/integration_medium_test.dir/integration_medium_test.cpp.o.d"
  "integration_medium_test"
  "integration_medium_test.pdb"
  "integration_medium_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_medium_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
