file(REMOVE_RECURSE
  "CMakeFiles/integration_simple_test.dir/integration_simple_test.cpp.o"
  "CMakeFiles/integration_simple_test.dir/integration_simple_test.cpp.o.d"
  "integration_simple_test"
  "integration_simple_test.pdb"
  "integration_simple_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_simple_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
