# Empty compiler generated dependencies file for integration_simple_test.
# This may be replaced when dependencies are built.
