file(REMOVE_RECURSE
  "CMakeFiles/large_workload_test.dir/large_workload_test.cpp.o"
  "CMakeFiles/large_workload_test.dir/large_workload_test.cpp.o.d"
  "large_workload_test"
  "large_workload_test.pdb"
  "large_workload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/large_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
