# Empty compiler generated dependencies file for large_workload_test.
# This may be replaced when dependencies are built.
