file(REMOVE_RECURSE
  "CMakeFiles/linear_plant_test.dir/linear_plant_test.cpp.o"
  "CMakeFiles/linear_plant_test.dir/linear_plant_test.cpp.o.d"
  "linear_plant_test"
  "linear_plant_test.pdb"
  "linear_plant_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linear_plant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
