# Empty dependencies file for linear_plant_test.
# This may be replaced when dependencies are built.
