file(REMOVE_RECURSE
  "CMakeFiles/lsqlin_test.dir/lsqlin_test.cpp.o"
  "CMakeFiles/lsqlin_test.dir/lsqlin_test.cpp.o.d"
  "lsqlin_test"
  "lsqlin_test.pdb"
  "lsqlin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsqlin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
