# Empty dependencies file for lsqlin_test.
# This may be replaced when dependencies are built.
