file(REMOVE_RECURSE
  "CMakeFiles/open_loop_test.dir/open_loop_test.cpp.o"
  "CMakeFiles/open_loop_test.dir/open_loop_test.cpp.o.d"
  "open_loop_test"
  "open_loop_test.pdb"
  "open_loop_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/open_loop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
