file(REMOVE_RECURSE
  "CMakeFiles/overhead_value_test.dir/overhead_value_test.cpp.o"
  "CMakeFiles/overhead_value_test.dir/overhead_value_test.cpp.o.d"
  "overhead_value_test"
  "overhead_value_test.pdb"
  "overhead_value_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead_value_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
