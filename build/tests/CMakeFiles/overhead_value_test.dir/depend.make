# Empty dependencies file for overhead_value_test.
# This may be replaced when dependencies are built.
