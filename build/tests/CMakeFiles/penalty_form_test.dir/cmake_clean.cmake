file(REMOVE_RECURSE
  "CMakeFiles/penalty_form_test.dir/penalty_form_test.cpp.o"
  "CMakeFiles/penalty_form_test.dir/penalty_form_test.cpp.o.d"
  "penalty_form_test"
  "penalty_form_test.pdb"
  "penalty_form_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/penalty_form_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
