# Empty dependencies file for penalty_form_test.
# This may be replaced when dependencies are built.
