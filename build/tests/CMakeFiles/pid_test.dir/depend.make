# Empty dependencies file for pid_test.
# This may be replaced when dependencies are built.
