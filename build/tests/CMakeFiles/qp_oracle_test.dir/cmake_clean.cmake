file(REMOVE_RECURSE
  "CMakeFiles/qp_oracle_test.dir/qp_oracle_test.cpp.o"
  "CMakeFiles/qp_oracle_test.dir/qp_oracle_test.cpp.o.d"
  "qp_oracle_test"
  "qp_oracle_test.pdb"
  "qp_oracle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qp_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
