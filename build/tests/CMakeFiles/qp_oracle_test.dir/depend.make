# Empty dependencies file for qp_oracle_test.
# This may be replaced when dependencies are built.
