file(REMOVE_RECURSE
  "CMakeFiles/reallocation_test.dir/reallocation_test.cpp.o"
  "CMakeFiles/reallocation_test.dir/reallocation_test.cpp.o.d"
  "reallocation_test"
  "reallocation_test.pdb"
  "reallocation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reallocation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
