# Empty compiler generated dependencies file for reallocation_test.
# This may be replaced when dependencies are built.
