# Empty compiler generated dependencies file for spec_fuzz_test.
# This may be replaced when dependencies are built.
