file(REMOVE_RECURSE
  "CMakeFiles/ticks_test.dir/ticks_test.cpp.o"
  "CMakeFiles/ticks_test.dir/ticks_test.cpp.o.d"
  "ticks_test"
  "ticks_test.pdb"
  "ticks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ticks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
