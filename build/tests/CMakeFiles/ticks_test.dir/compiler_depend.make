# Empty compiler generated dependencies file for ticks_test.
# This may be replaced when dependencies are built.
