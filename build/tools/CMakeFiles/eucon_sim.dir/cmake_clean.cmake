file(REMOVE_RECURSE
  "CMakeFiles/eucon_sim.dir/eucon_sim.cpp.o"
  "CMakeFiles/eucon_sim.dir/eucon_sim.cpp.o.d"
  "eucon_sim"
  "eucon_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eucon_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
