# Empty compiler generated dependencies file for eucon_sim.
# This may be replaced when dependencies are built.
