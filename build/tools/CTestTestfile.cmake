# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_simple_summary "/root/repo/build/tools/eucon_sim" "--workload" "simple" "--etf" "0.5" "--periods" "60" "--quiet" "--summary")
set_tests_properties(cli_simple_summary PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_medium_dynamic "/root/repo/build/tools/eucon_sim" "--workload" "medium" "--controller" "adaptive" "--etf-steps" "0:0.5,30000:0.9" "--periods" "60" "--quiet" "--summary")
set_tests_properties(cli_medium_dynamic PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_diagnose "/root/repo/build/tools/eucon_sim" "--workload" "large" "--diagnose")
set_tests_properties(cli_diagnose PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_edf_policy "/root/repo/build/tools/eucon_sim" "--workload" "medium" "--policy" "edf" "--set-points" "0.9,0.9,0.9,0.9" "--periods" "40" "--quiet" "--summary")
set_tests_properties(cli_edf_policy PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rejects_bad_flag "/root/repo/build/tools/eucon_sim" "--no-such-flag")
set_tests_properties(cli_rejects_bad_flag PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
