// Overload protection in an avionics mission computer (paper §3.3).
//
// A surveillance pipeline (sensor -> tracker -> display), a weapons-release
// chain and local housekeeping tasks share three processors. Two events
// stress the system:
//
//   * at 80Ts the scene complexity doubles every execution time (etf 0.6
//     -> 1.2: think "number of potential targets in the camera images");
//   * at 160Ts the operator lowers P1's utilization set point from its RMS
//     bound to 0.60 in anticipation of a critical mission phase (§3.3's
//     online set-point change).
//
// EUCON absorbs both events by rate adaptation; the report shows the
// set points being re-acquired after each event.
//
//   ./avionics_overload
#include <cstdio>

#include "eucon/eucon.h"

using namespace eucon;

namespace {

rts::SystemSpec avionics_spec() {
  rts::SystemSpec s;
  s.num_processors = 3;
  auto task = [](std::string name, std::vector<rts::SubtaskSpec> subs,
                 double init_p) {
    rts::TaskSpec t;
    t.name = std::move(name);
    t.subtasks = std::move(subs);
    t.rate_min = 1.0 / 2000.0;
    t.rate_max = 1.0 / 15.0;
    t.initial_rate = 1.0 / init_p;
    return t;
  };
  // Sensor processing on P1 feeds tracking on P2 and display on P3.
  s.tasks.push_back(task("video_track", {{0, 18.0}, {1, 22.0}, {2, 12.0}}, 150.0));
  // Radar chain: P2 -> P1.
  s.tasks.push_back(task("radar_fusion", {{1, 16.0}, {0, 14.0}}, 180.0));
  // Weapons-release chain: P1 -> P3.
  s.tasks.push_back(task("weapons_rel", {{0, 12.0}, {2, 16.0}}, 200.0));
  // Local housekeeping.
  s.tasks.push_back(task("bit_monitor", {{0, 20.0}}, 250.0));
  s.tasks.push_back(task("nav_update", {{1, 24.0}}, 220.0));
  s.tasks.push_back(task("hud_refresh", {{2, 21.0}}, 240.0));
  s.validate();
  return s;
}

}  // namespace

int main() {
  ExperimentConfig cfg;
  cfg.spec = avionics_spec();
  cfg.mpc = workloads::medium_controller_params();
  cfg.sim.etf = rts::EtfProfile::steps({{0.0, 0.6}, {80000.0, 1.2}});
  cfg.sim.jitter = 0.15;
  cfg.sim.seed = 11;
  cfg.num_periods = 240;

  const linalg::Vector rms_bounds = cfg.spec.liu_layland_set_points();
  // The operator's set-point change at 160Ts: reserve headroom on P1.
  cfg.on_period = [&](int k, control::Controller& c) {
    if (k == 160) {
      linalg::Vector b = rms_bounds;
      b[0] = 0.60;
      dynamic_cast<control::MpcController&>(c).set_set_points(b);
      std::printf("-- period 160: operator lowers P1 set point to 0.60 --\n");
    }
  };

  const ExperimentResult res = run_experiment(cfg);

  std::printf("k    u(P1)   u(P2)   u(P3)\n");
  for (const auto& rec : res.trace) {
    if (rec.k % 8 != 0) continue;
    std::printf("%-4d %.4f  %.4f  %.4f\n", rec.k, rec.u[0], rec.u[1], rec.u[2]);
  }

  std::printf("\nRMS bounds: %.3f %.3f %.3f\n", rms_bounds[0], rms_bounds[1],
              rms_bounds[2]);
  auto report = [&](const char* label, std::size_t from, std::size_t to,
                    double p1_target) {
    const auto s1 = metrics::utilization_stats(res, 0, from, to);
    const auto s2 = metrics::utilization_stats(res, 1, from, to);
    const auto s3 = metrics::utilization_stats(res, 2, from, to);
    std::printf("%-34s P1 %.3f (target %.3f) | P2 %.3f | P3 %.3f\n", label,
                s1.mean(), p1_target, s2.mean(), s3.mean());
  };
  report("before the load surge [40,80):", 40, 80, rms_bounds[0]);
  report("after the surge, pre-change [120,160):", 120, 160, rms_bounds[0]);
  report("after the set-point change [200,240):", 200, 240, 0.60);
  std::printf("\ndeadline miss ratio (end-to-end): %.4f\n",
              res.deadlines.e2e_miss_ratio());
  std::printf("controller infeasible-fallbacks: %llu\n",
              static_cast<unsigned long long>(res.controller_fallbacks));
  return 0;
}
