// Capacity planning with the analysis tools: before deploying, check the
// plant structurally (diagnostics), compare scheduler choices analytically
// (Liu–Collard bounds vs EDF), then validate the chosen operating point in
// replicated closed-loop simulation with confidence intervals.
//
//   ./capacity_planning
#include <cstdio>

#include "eucon/eucon.h"

using namespace eucon;

int main() {
  const rts::SystemSpec app = workloads::medium();

  // 1. Structural pre-flight: is every processor steerable, every set
  //    point reachable inside the rate boxes?
  const auto model = control::make_plant_model(app);
  const auto diag = control::diagnose_plant(model);
  std::printf("--- plant diagnostics ---\n%s\n",
              control::to_string(diag).c_str());
  if (!diag.structurally_feasible()) {
    std::printf("aborting: fix the task set first\n");
    return 1;
  }

  // 2. Scheduler choice: how much utilization can each policy certify?
  const auto rms_bounds = app.liu_layland_set_points();
  std::printf("--- certifiable set points ---\n");
  std::printf("RMS (Liu-Layland): %.3f %.3f %.3f %.3f\n", rms_bounds[0],
              rms_bounds[1], rms_bounds[2], rms_bounds[3]);
  std::printf("EDF               : 1.000 each (we operate at 0.90 for "
              "stochastic headroom)\n\n");

  // 3. Validate both operating points in replicated simulation: 6 seeds,
  //    execution times 30%% above the estimates (etf 1.3) with ±20%% jitter.
  for (const bool use_edf : {false, true}) {
    ExperimentConfig cfg;
    cfg.spec = app;
    cfg.mpc = workloads::medium_controller_params();
    cfg.sim.etf = rts::EtfProfile::constant(1.3);
    cfg.sim.jitter = 0.2;
    cfg.num_periods = 250;
    if (use_edf) {
      cfg.sim.policy = rts::SchedulingPolicy::kEdf;
      cfg.set_points = linalg::Vector(4, 0.90);
    }
    const ReplicatedResult rep = run_replicated(cfg, 6, /*seed0=*/100, 120);

    std::printf("--- %s, 6 seeds ---\n", use_edf ? "EDF @ 0.90" : "RMS @ Liu-Layland");
    for (std::size_t p = 0; p < rep.per_processor.size(); ++p) {
      const auto& s = rep.per_processor[p];
      std::printf("P%zu: mean %.4f +- %.4f (95%% CI), sigma %.4f, "
                  "acceptable in %zu/%zu runs\n",
                  p + 1, s.mean_of_means, s.ci95_halfwidth, s.mean_of_stddevs,
                  s.acceptable_runs, s.replicas);
    }
    std::printf("mean subtask miss ratio: %.4f\n", rep.mean_subtask_miss);

    // Throughput value delivered (normalized rates, §3.1).
    ExperimentConfig one = cfg;
    one.sim.seed = 100;
    const double value =
        metrics::accrued_value(run_experiment(one), app, 120);
    std::printf("application value (normalized rate sum): %.2f / %zu\n\n",
                value, app.num_tasks());
  }

  std::printf("EDF certifies ~23%% more utilization per processor, which the\n"
              "controller converts into proportionally higher task rates —\n"
              "at the cost of dynamic-priority scheduling in the kernel.\n");
  return 0;
}
