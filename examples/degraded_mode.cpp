// Degraded-mode operation: rate adaptation + admission control together.
//
// A shipboard computing system pins its minimum task rates high (operators
// require a floor on sensor refresh), so when a damage-control scenario
// triples every execution time, rate adaptation alone cannot bring the
// processors back under their set points (the paper calls this case
// infeasible, §6.2, and suggests admission control as the next actuator).
//
// The AdmissionGovernor sheds the least-valuable tasks until EUCON can
// enforce the set points again, and re-admits them as the load recedes.
//
//   ./degraded_mode
#include <cstdio>

#include "eucon/eucon.h"

using namespace eucon;

namespace {

rts::SystemSpec shipboard() {
  rts::SystemSpec s;
  s.num_processors = 2;
  auto task = [](std::string name, std::vector<rts::SubtaskSpec> subs,
                 double init_p, double max_p) {
    rts::TaskSpec t;
    t.name = std::move(name);
    t.subtasks = std::move(subs);
    t.rate_min = 1.0 / max_p;  // deliberately high floors
    t.rate_max = 1.0 / 25.0;
    t.initial_rate = 1.0 / init_p;
    return t;
  };
  s.tasks.push_back(task("fire_control", {{0, 30.0}, {1, 25.0}}, 110.0, 240.0));
  s.tasks.push_back(task("nav_radar", {{1, 28.0}, {0, 22.0}}, 130.0, 260.0));
  s.tasks.push_back(task("damage_sensors", {{0, 26.0}}, 120.0, 250.0));
  s.tasks.push_back(task("crew_displays", {{1, 32.0}}, 140.0, 260.0));
  s.validate();
  return s;
}

}  // namespace

int main() {
  ExperimentConfig cfg;
  cfg.spec = shipboard();
  cfg.mpc = workloads::medium_controller_params();
  cfg.enable_admission_control = true;
  cfg.admission.patience = 4;
  cfg.admission.cooldown = 8;
  // Mission values: fire control and damage sensors are critical; crew
  // displays are the first to shed, nav radar the second.
  cfg.admission.task_values = {10.0, 3.0, 8.0, 1.0};
  // Damage scenario between 80Ts and 200Ts: execution times triple.
  cfg.sim.etf = rts::EtfProfile::steps({{0.0, 1.0}, {80000.0, 3.0}, {200000.0, 1.0}});
  cfg.sim.jitter = 0.15;
  cfg.sim.seed = 31;
  cfg.num_periods = 300;

  const ExperimentResult res = run_experiment(cfg);

  std::printf("k    u(P1)   u(P2)   enabled_tasks\n");
  for (const auto& rec : res.trace) {
    if (rec.k % 10 != 0) continue;
    std::printf("%-4d %.4f  %.4f  %d\n", rec.k, rec.u[0], rec.u[1],
                rec.enabled_tasks);
  }

  std::printf("\nset points: %.3f %.3f\n", res.set_points[0], res.set_points[1]);
  std::printf("suspensions: %llu, re-admissions: %llu\n",
              static_cast<unsigned long long>(res.admission_suspensions),
              static_cast<unsigned long long>(res.admission_readmissions));
  const auto crisis = metrics::utilization_stats(res, 0, 140, 200);
  const auto recovered = metrics::utilization_stats(res, 0, 260, 300);
  std::printf("P1 during the crisis [140,200): mean %.3f (shed tasks keep it "
              "under control)\n", crisis.mean());
  std::printf("P1 after recovery   [260,300): mean %.3f with all %d tasks "
              "re-admitted\n", recovered.mean(), res.trace.back().enabled_tasks);
  return 0;
}
