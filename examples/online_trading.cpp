// A multi-tier online trading cluster (the paper's E-business motivation).
//
// Requests traverse web -> application -> database tiers (an end-to-end
// chain per request class); demand swings over the trading day are modeled
// as a time-varying execution-time factor (morning calm, mid-day surge,
// closing frenzy, after-hours). The operator cares about overload
// protection: no tier may exceed its utilization set point, or response
// times blow up and the kernel starves (§3.3).
//
// The run compares EUCON with OPEN on per-phase utilization and deadline
// misses of the request classes.
//
//   ./online_trading
#include <cstdio>

#include "eucon/eucon.h"

using namespace eucon;

namespace {

rts::SystemSpec trading_cluster() {
  rts::SystemSpec s;
  s.num_processors = 3;  // P1 web, P2 app, P3 db
  auto task = [](std::string name, std::vector<rts::SubtaskSpec> subs,
                 double init_p) {
    rts::TaskSpec t;
    t.name = std::move(name);
    t.subtasks = std::move(subs);
    t.rate_min = 1.0 / 3000.0;
    t.rate_max = 1.0 / 10.0;
    t.initial_rate = 1.0 / init_p;
    return t;
  };
  // Request classes (batched request streams, one "task instance" = one
  // batch): quotes are light, orders touch every tier, settlement is
  // db-heavy, the portfolio view is app-heavy.
  s.tasks.push_back(task("quote_stream", {{0, 12.0}, {1, 9.0}}, 120.0));
  s.tasks.push_back(task("order_flow", {{0, 14.0}, {1, 18.0}, {2, 16.0}}, 200.0));
  s.tasks.push_back(task("settlement", {{1, 10.0}, {2, 24.0}}, 260.0));
  s.tasks.push_back(task("portfolio_view", {{0, 10.0}, {1, 20.0}}, 220.0));
  s.tasks.push_back(task("risk_check", {{2, 18.0}}, 240.0));
  s.tasks.push_back(task("session_gc", {{0, 15.0}}, 300.0));
  s.validate();
  return s;
}

rts::EtfProfile trading_day() {
  // Demand profile over 400 sampling periods.
  return rts::EtfProfile::steps({
      {0.0, 0.5},       // pre-open
      {80000.0, 1.0},   // morning
      {160000.0, 1.6},  // mid-day surge
      {260000.0, 2.2},  // closing frenzy
      {330000.0, 0.4},  // after hours
  });
}

void print_report(const char* name, const ExperimentResult& res) {
  std::printf("\n--- %s ---\n", name);
  std::printf("%-18s %-8s %-8s %-8s\n", "phase", "u(web)", "u(app)", "u(db)");
  const struct {
    const char* label;
    std::size_t from, to;
  } phases[] = {{"pre-open", 30, 80},     {"morning", 110, 160},
                {"mid-day surge", 190, 260}, {"closing frenzy", 290, 330},
                {"after hours", 360, 400}};
  for (const auto& ph : phases) {
    std::printf("%-18s %-8.3f %-8.3f %-8.3f\n", ph.label,
                metrics::utilization_stats(res, 0, ph.from, ph.to).mean(),
                metrics::utilization_stats(res, 1, ph.from, ph.to).mean(),
                metrics::utilization_stats(res, 2, ph.from, ph.to).mean());
  }
  std::printf("set points: %.3f %.3f %.3f\n", res.set_points[0],
              res.set_points[1], res.set_points[2]);
  std::printf("batch deadline miss ratio: %.4f\n",
              res.deadlines.e2e_miss_ratio());
  double saturated = 0, total = 0;
  for (const auto& rec : res.trace)
    for (double u : rec.u) {
      total += 1;
      if (u > 0.98) saturated += 1;
    }
  std::printf("tier-saturation ratio (u > 0.98): %.3f\n", saturated / total);
}

}  // namespace

int main() {
  for (ControllerKind kind : {ControllerKind::kOpen, ControllerKind::kEucon}) {
    ExperimentConfig cfg;
    cfg.spec = trading_cluster();
    cfg.controller = kind;
    cfg.mpc = workloads::medium_controller_params();
    cfg.sim.etf = trading_day();
    cfg.sim.jitter = 0.25;  // bursty per-request service times
    cfg.sim.seed = 2026;
    cfg.num_periods = 400;
    print_report(controller_kind_name(kind), run_experiment(cfg));
  }
  std::printf(
      "\nUnder OPEN the surge saturates the tiers (u -> 1, missed\n"
      "deadlines); EUCON sheds batch rate to hold every tier at its set\n"
      "point and restores throughput after hours.\n");
  return 0;
}
