// QoS portability (paper §3.3): deploy the *same* application, with the
// same design-time execution estimates, on three platforms of different
// speed — and keep the same utilization guarantees without manual tuning.
//
// Platform speed is modeled by the execution-time factor: on the slow
// platform every job takes 2x the estimate, on the fast one 0.4x. Under
// OPEN the designer's rates only fit the reference platform; under EUCON
// the rates self-tune until each platform runs at its RMS bound.
//
//   ./qos_portability
#include <cstdio>

#include "eucon/eucon.h"

using namespace eucon;

int main() {
  struct Platform {
    const char* name;
    double speed_factor;  // actual execution time / estimate
  };
  const Platform platforms[] = {
      {"legacy  (2.0x estimates)", 2.0},
      {"reference (1.0x)", 1.0},
      {"upgraded (0.4x estimates)", 0.4},
  };

  const rts::SystemSpec app = workloads::medium();
  const linalg::Vector bounds = app.liu_layland_set_points();
  std::printf("application: %zu tasks, %zu subtasks on %d processors\n",
              app.num_tasks(), app.num_subtasks(), app.num_processors);
  std::printf("utilization targets (RMS bounds): %.3f %.3f %.3f %.3f\n\n",
              bounds[0], bounds[1], bounds[2], bounds[3]);

  std::printf("%-28s %-6s %-22s %-22s %s\n", "platform", "ctl",
              "mean u(P1..P4)", "acceptable?", "task-1 rate");
  for (const auto& platform : platforms) {
    for (ControllerKind kind : {ControllerKind::kOpen, ControllerKind::kEucon}) {
      ExperimentConfig cfg;
      cfg.spec = app;
      cfg.controller = kind;
      cfg.mpc = workloads::medium_controller_params();
      cfg.sim.etf = rts::EtfProfile::constant(platform.speed_factor);
      cfg.sim.jitter = 0.2;
      cfg.sim.seed = 5;
      cfg.num_periods = 300;
      const ExperimentResult res = run_experiment(cfg);

      char us[64];
      std::snprintf(us, sizeof us, "%.2f %.2f %.2f %.2f",
                    metrics::utilization_stats(res, 0, 100).mean(),
                    metrics::utilization_stats(res, 1, 100).mean(),
                    metrics::utilization_stats(res, 2, 100).mean(),
                    metrics::utilization_stats(res, 3, 100).mean());
      std::printf("%-28s %-6s %-22s %-22s %.5f\n", platform.name,
                  controller_kind_name(kind), us,
                  metrics::all_acceptable(res) ? "yes" : "no",
                  res.trace.back().rates[0]);
    }
  }

  std::printf(
      "\nEUCON raises the rates on the fast platform (more value per task)\n"
      "and lowers them on the slow one (overload protection); OPEN only\n"
      "meets the targets on the platform it was tuned for.\n");
  return 0;
}
