// Quickstart: close the EUCON loop around the paper's SIMPLE workload.
//
// Builds the 3-task / 2-processor system of Table 1, runs 150 sampling
// periods with actual execution times at half their estimates (etf = 0.5),
// and shows the utilization converging to the RMS schedulable bound 0.828
// on both processors.
//
//   ./quickstart
#include <cstdio>

#include "eucon/eucon.h"

int main() {
  using namespace eucon;

  // 1. Describe the task set (or use your own rts::SystemSpec).
  ExperimentConfig cfg;
  cfg.spec = workloads::simple();

  // 2. Pick the controller: EUCON's MPC with the paper's Table-2 settings.
  cfg.controller = ControllerKind::kEucon;
  cfg.mpc = workloads::simple_controller_params();

  // 3. Describe the environment: execution times at half the design-time
  //    estimate, with ±10% per-job variation.
  cfg.sim.etf = rts::EtfProfile::constant(0.5);
  cfg.sim.jitter = 0.1;
  cfg.sim.seed = 1;
  cfg.num_periods = 150;

  // 4. Run the closed loop.
  const ExperimentResult result = run_experiment(cfg);

  // 5. Inspect the trace.
  std::printf("k    u(P1)   u(P2)   rate(T1)  rate(T2)  rate(T3)\n");
  for (const auto& rec : result.trace) {
    if (rec.k % 10 != 0 && rec.k > 5) continue;
    std::printf("%-4d %.4f  %.4f  %.6f  %.6f  %.6f\n", rec.k, rec.u[0],
                rec.u[1], rec.rates[0], rec.rates[1], rec.rates[2]);
  }

  std::printf("\nset points: %.4f %.4f\n", result.set_points[0],
              result.set_points[1]);
  for (std::size_t p = 0; p < 2; ++p) {
    const auto a = metrics::acceptability(result, p, 50);
    std::printf("P%zu steady state: mean %.4f, sigma %.4f -> %s\n", p + 1,
                a.mean, a.stddev, a.acceptable() ? "acceptable" : "NOT acceptable");
  }
  std::printf("end-to-end deadline miss ratio: %.4f\n",
              result.deadlines.e2e_miss_ratio());
  return 0;
}
