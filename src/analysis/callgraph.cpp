// Call-graph extraction: function discovery, body scanning (call sites +
// direct real-time violations), and conservative name resolution. See
// callgraph.h for the model and realtime_rules.cpp for the propagation.
#include "analysis/callgraph.h"

#include <algorithm>

namespace eucon::analysis {

namespace {

bool punct_is(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

const std::set<std::string>& control_keywords() {
  static const std::set<std::string> kSet = {
      "if",          "for",         "while",       "switch",
      "return",      "sizeof",      "catch",       "alignof",
      "alignas",     "decltype",    "noexcept",    "static_assert",
      "static_cast", "dynamic_cast", "reinterpret_cast", "const_cast",
      "typeid",      "co_await",    "co_return",   "co_yield",
      "and",         "or",          "not",         "assert",
      "defined",     "__attribute__"};
  return kSet;
}

// Trailer specifiers between ')' and the body/';' that carry no structure.
const std::set<std::string>& plain_specifiers() {
  static const std::set<std::string> kSet = {"const",    "override", "final",
                                             "mutable",  "volatile", "noexcept",
                                             "constexpr", "try"};
  return kSet;
}

struct Annotations {
  bool realtime = false;
  bool ok[kRtCategoryCount] = {false, false, false};
  std::vector<std::string> requires_args;  // EUCON_REQUIRES(...)
  std::vector<std::string> excludes_args;  // EUCON_EXCLUDES(...)
};

bool has_suffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool annotation_name(const std::string& text, Annotations& out) {
  if (text == "EUCON_REALTIME") {
    out.realtime = true;
  } else if (text == "EUCON_ALLOC_OK") {
    out.ok[static_cast<int>(RtCategory::kAlloc)] = true;
  } else if (text == "EUCON_BLOCK_OK") {
    out.ok[static_cast<int>(RtCategory::kBlock)] = true;
  } else if (text == "EUCON_NONDET_OK") {
    out.ok[static_cast<int>(RtCategory::kNondet)] = true;
  } else {
    return false;
  }
  return true;
}

// Other trailing macros whose (optional) parenthesized arguments must be
// skipped without ending head parsing (the thread-safety annotation set).
bool skippable_annotation(const std::string& text) {
  return text.rfind("EUCON_", 0) == 0;
}

// --- violation tables ------------------------------------------------------

// Free/namespace-qualified calls that allocate or free heap memory.
const std::set<std::string>& alloc_calls() {
  static const std::set<std::string> kSet = {
      "malloc", "calloc", "realloc", "aligned_alloc",
      "posix_memalign", "strdup", "free"};
  return kSet;
}

// Member calls that may (re)allocate the container's storage.
const std::set<std::string>& growth_members() {
  static const std::set<std::string> kSet = {
      "push_back", "emplace_back", "push_front", "emplace_front",
      "insert",    "emplace",      "resize",     "reserve",
      "append",    "shrink_to_fit"};
  return kSet;
}

// Types whose by-value construction owns heap storage. Flagged on
// declarations and temporaries; `Type&` / `Type*` uses are exempt.
const std::set<std::string>& alloc_types() {
  static const std::set<std::string> kSet = {
      "vector",        "string",        "deque",         "map",
      "set",           "multimap",      "multiset",      "unordered_map",
      "unordered_set", "ostringstream", "istringstream", "stringstream",
      "Vector",        "Matrix"};
  return kSet;
}

// Member calls that block the calling thread.
const std::set<std::string>& block_members() {
  static const std::set<std::string> kSet = {"lock",      "wait", "wait_for",
                                             "wait_until", "join", "flush"};
  return kSet;
}

// RAII lock types: construction acquires (and may contend on) a mutex.
const std::set<std::string>& lock_types() {
  static const std::set<std::string> kSet = {
      "lock_guard", "unique_lock", "scoped_lock", "shared_lock", "MutexLock"};
  return kSet;
}

// Blocking calls by name (sleeps, file/socket I/O).
const std::set<std::string>& block_calls() {
  static const std::set<std::string> kSet = {
      "sleep",   "usleep", "nanosleep", "sleep_for", "sleep_until",
      "fopen",   "fclose", "fread",     "fwrite",    "fprintf",
      "printf",  "fputs",  "puts",      "fflush",    "fscanf",
      "scanf",   "getline", "fsync",    "send",      "recv",
      "connect", "accept", "bind",      "listen",    "select",
      "poll",    "epoll_wait", "system", "popen"};
  return kSet;
}

// Identifiers whose mere presence means stream/file I/O.
const std::set<std::string>& block_idents() {
  static const std::set<std::string> kSet = {"cout", "cerr", "clog",
                                             "ifstream", "ofstream", "fstream"};
  return kSet;
}

// Nondeterminism sources, call form.
const std::set<std::string>& nondet_calls() {
  static const std::set<std::string> kSet = {
      "rand",      "srand",        "random",       "drand48",
      "lrand48",   "mrand48",      "rand_r",       "time",
      "clock",     "gettimeofday", "clock_gettime", "localtime",
      "gmtime",    "getenv",       "getpid"};
  return kSet;
}

// Nondeterminism sources, identifier form (clock/type mentions).
const std::set<std::string>& nondet_idents() {
  static const std::set<std::string> kSet = {
      "random_device", "steady_clock", "system_clock", "high_resolution_clock"};
  return kSet;
}

}  // namespace

const char* rt_rule_name(RtCategory c) {
  switch (c) {
    case RtCategory::kAlloc: return "allocation-in-realtime";
    case RtCategory::kBlock: return "blocking-in-realtime";
    case RtCategory::kNondet: return "nondeterminism-in-realtime";
  }
  return "allocation-in-realtime";
}

// ---------------------------------------------------------------------------
// Extraction: one forward pass with an explicit scope stack. Function
// bodies are scanned flat (lambdas and local classes attribute to the
// enclosing function) and then skipped, so definitions are only ever
// recognized at namespace/class scope.
class CallGraphExtractor {
 public:
  CallGraphExtractor(CallGraph& graph, const std::string& file,
                     const std::vector<Token>& code)
      : graph_(graph), file_(file), c_(code) {
    // common/mutex.h implements the lock primitives themselves; its bodies
    // (m_.lock(), cv_.wait(lock.lock_)) are the mechanism, not users of it,
    // so lock-fact extraction skips the file.
    lock_extract_ = !has_suffix(file, "common/mutex.h");
  }

  void run() {
    std::size_t i = 0;
    while (i < c_.size()) i = step(i);
  }

 private:
  struct Scope {
    std::string name;  // "" for anonymous namespace / extern "C" blocks
    bool is_class = false;
  };

  const Token& tok(std::size_t i) const { return c_[i]; }
  bool in_range(std::size_t i) const { return i < c_.size(); }

  // Index just past the group opened at `i` ('(', '{' or '<'); tolerant of
  // truncation. For '<' gives up (returns open+1) on tokens that cannot be
  // part of a template argument list, so comparison operators don't eat
  // the rest of the file.
  std::size_t skip_balanced(std::size_t i, const char* open,
                            const char* close) const {
    int depth = 0;
    std::size_t j = i;
    while (in_range(j)) {
      if (punct_is(c_[j], open)) {
        ++depth;
      } else if (punct_is(c_[j], close)) {
        if (--depth == 0) return j + 1;
      }
      ++j;
    }
    return j;
  }

  // If c_[i] is '<', returns the index past a plausible matching '>';
  // otherwise returns i. Bails out (returns i) on ';' '{' '}' — a '<' that
  // runs into those was a comparison, not a template argument list.
  std::size_t skip_angles(std::size_t i) const {
    if (!in_range(i) || !punct_is(c_[i], "<")) return i;
    int depth = 0;
    std::size_t j = i;
    while (in_range(j)) {
      const Token& t = c_[j];
      if (punct_is(t, "<")) {
        ++depth;
      } else if (punct_is(t, ">") || punct_is(t, ">>")) {
        depth -= (t.text == ">>") ? 2 : 1;
        if (depth <= 0) return j + 1;
      } else if (punct_is(t, ";") || punct_is(t, "{") || punct_is(t, "}")) {
        return i;  // was a comparison
      }
      ++j;
    }
    return i;
  }

  // Renders the argument list opened at `lparen` into name expressions: one
  // string per top-level comma-separated argument, concatenating its
  // identifier / '::' / '.' / '->' tokens ("progress.mu", "std::defer_lock").
  // A '!'-negated argument (negative capability) is dropped.
  std::vector<std::string> paren_name_args(std::size_t lparen) const {
    std::vector<std::string> out;
    if (!in_range(lparen) || !punct_is(c_[lparen], "(")) return out;
    int depth = 0;
    std::string cur;
    bool negated = false;
    for (std::size_t j = lparen; in_range(j); ++j) {
      const Token& t = c_[j];
      if (t.kind == TokenKind::kPunct) {
        if (t.text == "(") {
          ++depth;
          continue;
        }
        if (t.text == ")") {
          if (--depth == 0) {
            if (!negated && !cur.empty()) out.push_back(cur);
            break;
          }
          continue;
        }
        if (t.text == "," && depth == 1) {
          if (!negated && !cur.empty()) out.push_back(cur);
          cur.clear();
          negated = false;
          continue;
        }
        if (t.text == "!") negated = true;
        if (t.text == "." || t.text == "->" || t.text == "::") cur += t.text;
        continue;
      }
      if (t.kind == TokenKind::kIdentifier) cur += t.text;
    }
    return out;
  }

  std::string qualify(const std::string& name) const {
    std::string q;
    for (const Scope& s : scopes_) {
      if (s.name.empty()) continue;  // anonymous namespaces are transparent
      q += s.name;
      q += "::";
    }
    return q + name;
  }

  bool innermost_is_class() const {
    return !scopes_.empty() && scopes_.back().is_class;
  }

  // One step of the scope-level scan; returns the next index.
  std::size_t step(std::size_t i) {
    const Token& t = c_[i];
    if (t.kind == TokenKind::kDirective) return i + 1;
    if (t.kind == TokenKind::kIdentifier) {
      if (t.text == "namespace") return handle_namespace(i);
      if (t.text == "enum") return skip_enum(i);
      if ((t.text == "class" || t.text == "struct" || t.text == "union") &&
          !(i > 0 && (punct_is(c_[i - 1], "<") || punct_is(c_[i - 1], ","))))
        return handle_class(i);
      if (t.text == "using" || t.text == "typedef") return skip_to_semi(i);
      if (t.text == "extern" && in_range(i + 1) &&
          c_[i + 1].kind == TokenKind::kString && in_range(i + 2) &&
          punct_is(c_[i + 2], "{")) {
        scopes_.push_back({"", false});  // extern "C" { — transparent
        return i + 3;
      }
      if (t.text == "EUCON_ACQUIRED_BEFORE" && in_range(i + 1) &&
          punct_is(c_[i + 1], "(")) {
        handle_acquired_before(i);
        return skip_balanced(i + 1, "(", ")");
      }
      if (t.text == "function" && innermost_is_class() && in_range(i + 1) &&
          punct_is(c_[i + 1], "<")) {
        const std::size_t next = try_callback_field(i);
        if (next != i) return next;
      }
      if (in_range(i + 1) && punct_is(c_[i + 1], "(")) {
        const std::size_t next = try_function(i);
        if (next != i) return next;
      }
      if (t.text == "operator") {
        const std::size_t next = try_operator(i);
        if (next != i) return next;
      }
      if (innermost_is_class()) {
        const std::size_t next = try_member_field(i);
        if (next != i) return next;
      }
      return i + 1;
    }
    if (punct_is(t, "{")) return skip_balanced(i, "{", "}");  // initializer
    if (punct_is(t, "}")) {
      if (!scopes_.empty()) scopes_.pop_back();
      return i + 1;
    }
    return i + 1;
  }

  std::size_t handle_namespace(std::size_t i) {
    std::size_t j = i + 1;
    std::string name;
    while (in_range(j)) {
      if (c_[j].kind == TokenKind::kIdentifier) {
        if (!name.empty()) name += "::";
        name += c_[j].text;
        ++j;
      } else if (punct_is(c_[j], "::")) {
        ++j;
      } else {
        break;
      }
    }
    if (in_range(j) && punct_is(c_[j], "{")) {
      scopes_.push_back({name, false});
      return j + 1;
    }
    return skip_to_semi(i);  // namespace alias / using namespace
  }

  // class/struct/union: find the name (last identifier before ':' / '{',
  // ignoring attribute-macro argument lists and a trailing `final`), then
  // either push a class scope or skip a forward declaration.
  std::size_t handle_class(std::size_t i) {
    std::size_t j = i + 1;
    std::string name;
    bool saw_colon = false;
    while (in_range(j)) {
      const Token& t = c_[j];
      if (punct_is(t, ";")) return j + 1;  // forward declaration
      if (punct_is(t, "{")) break;
      if (punct_is(t, "(")) {
        j = skip_balanced(j, "(", ")");  // EUCON_CAPABILITY("...") etc.
        continue;
      }
      if (punct_is(t, "<")) {
        j = skip_angles(j);
        if (punct_is(c_[j], "<")) ++j;  // bail-out safety
        continue;
      }
      if (punct_is(t, ":")) saw_colon = true;
      if (t.kind == TokenKind::kIdentifier && !saw_colon &&
          t.text != "final" && t.text != "alignas")
        name = t.text;
      ++j;
    }
    if (!in_range(j)) return j;
    scopes_.push_back({name, true});
    return j + 1;
  }

  std::size_t skip_enum(std::size_t i) {
    std::size_t j = i + 1;
    while (in_range(j)) {
      if (punct_is(c_[j], ";")) return j + 1;
      if (punct_is(c_[j], "{")) {
        j = skip_balanced(j, "{", "}");
        if (in_range(j) && punct_is(c_[j], ";")) ++j;
        return j;
      }
      ++j;
    }
    return j;
  }

  std::size_t skip_to_semi(std::size_t i) {
    std::size_t j = i;
    while (in_range(j) && !punct_is(c_[j], ";")) {
      if (punct_is(c_[j], "{")) {
        j = skip_balanced(j, "{", "}");
        continue;
      }
      ++j;
    }
    return in_range(j) ? j + 1 : j;
  }

  // Can `i` start a declarator name chain, judged by what precedes it? An
  // expression context (`= f(...)`, `foo + bar(...)`) must not register a
  // function.
  bool valid_head_predecessor(std::size_t chain_start) const {
    if (chain_start == 0) return true;
    const Token& p = c_[chain_start - 1];
    if (p.kind == TokenKind::kIdentifier)
      return !control_keywords().count(p.text);
    if (p.kind == TokenKind::kPunct)
      return p.text == "*" || p.text == "&" || p.text == "&&" ||
             p.text == ">" || p.text == ";" || p.text == "{" ||
             p.text == "}" || p.text == ":" || p.text == ")";
    return p.kind == TokenKind::kDirective;
  }

  // `EUCON_ACQUIRED_BEFORE(...)` trailing a mutex member declaration:
  // `Mutex a_ EUCON_ACQUIRED_BEFORE(b_);` declares the ordering a_ < b_.
  // The member name is the identifier left of the macro, skipping over any
  // earlier `MACRO(...)` trailers; both sides qualify under the enclosing
  // class scope.
  void handle_acquired_before(std::size_t i) {
    if (i == 0) return;
    std::size_t j = i - 1;
    while (punct_is(c_[j], ")")) {
      int depth = 0;
      while (j > 0) {
        if (punct_is(c_[j], ")")) {
          ++depth;
        } else if (punct_is(c_[j], "(")) {
          if (--depth == 0) break;
        }
        --j;
      }
      if (j < 2) return;  // unbalanced or nothing left of the group
      j -= 2;             // past the preceding macro's name
    }
    if (c_[j].kind != TokenKind::kIdentifier) return;
    const std::string first = qualify(c_[j].text);
    for (const std::string& arg : paren_name_args(i + 1))
      graph_.declared_order_.push_back({first, qualify(arg), file_,
                                        c_[i].line});
  }

  // `Type name ;|=|{...}|EUCON_*` at class scope: a data-member
  // declaration. Records name -> type leaf for the typed member-call
  // narrowing in finalize(): `qp::QpWorkspace* ws_` records ws_ ->
  // QpWorkspace, `std::unique_ptr<MpcController> local` records the
  // pointee. Returns i when the shape doesn't match.
  std::size_t try_member_field(std::size_t i) {
    std::size_t j = i;
    while (in_range(j) && c_[j].kind == TokenKind::kIdentifier &&
           (c_[j].text == "const" || c_[j].text == "static" ||
            c_[j].text == "mutable" || c_[j].text == "constexpr" ||
            c_[j].text == "inline"))
      ++j;
    if (!in_range(j) || c_[j].kind != TokenKind::kIdentifier ||
        control_keywords().count(c_[j].text))
      return i;
    std::string leaf = c_[j].text;
    ++j;
    while (in_range(j + 1) && punct_is(c_[j], "::") &&
           c_[j + 1].kind == TokenKind::kIdentifier) {
      leaf = c_[j + 1].text;
      j += 2;
    }
    if (in_range(j) && punct_is(c_[j], "<")) {
      const std::size_t a = skip_angles(j);
      if (a == j) return i;
      if (leaf == "unique_ptr" || leaf == "shared_ptr") {
        // The pointee is what member calls dispatch on; take the last
        // identifier of its (possibly qualified) name.
        std::string inner;
        for (std::size_t x = j + 1; x + 1 < a; ++x)
          if (c_[x].kind == TokenKind::kIdentifier && c_[x].text != "const")
            inner = c_[x].text;
        if (inner.empty()) return i;
        leaf = inner;
      }
      j = a;
    }
    while (in_range(j) && (punct_is(c_[j], "*") || punct_is(c_[j], "&")))
      ++j;
    if (!in_range(j + 1) || c_[j].kind != TokenKind::kIdentifier ||
        control_keywords().count(c_[j].text))
      return i;
    const std::string fname = c_[j].text;
    const Token& after = c_[j + 1];
    const bool field_shape =
        punct_is(after, ";") || punct_is(after, "=") ||
        punct_is(after, "{") ||
        (after.kind == TokenKind::kIdentifier &&
         after.text.rfind("EUCON_", 0) == 0);
    if (!field_shape) return i;
    graph_.field_types_[fname].insert(leaf);
    // A std::function-typed field is also a user-suppliable callback for
    // the callback-under-lock rule (try_callback_field's shape, which this
    // parse now reaches first for qualified spellings).
    if (leaf == "function") graph_.callback_fields_.insert(fname);
    return j + 1;
  }

  // `function<...> name ;|=|EUCON_*` at class scope: a std::function-typed
  // field, i.e. a user-suppliable callback for the callback-under-lock
  // rule. Returns i when the shape doesn't match.
  std::size_t try_callback_field(std::size_t i) {
    const std::size_t a = skip_angles(i + 1);
    if (a == i + 1 || !in_range(a) || c_[a].kind != TokenKind::kIdentifier)
      return i;
    if (!in_range(a + 1)) return i;
    const Token& after = c_[a + 1];
    const bool field_shape =
        punct_is(after, ";") || punct_is(after, "=") ||
        (after.kind == TokenKind::kIdentifier &&
         after.text.rfind("EUCON_", 0) == 0);
    if (!field_shape) return i;
    graph_.callback_fields_.insert(c_[a].text);
    return a + 1;
  }

  // c_[i] is an identifier directly followed by '('. Try to parse a
  // function declaration/definition whose name chain ends at i; returns i
  // unchanged when this isn't one.
  std::size_t try_function(std::size_t i) {
    if (control_keywords().count(c_[i].text)) return i;
    // Walk left over `ident ::` pairs (and a destructor '~').
    std::size_t chain_start = i;
    std::string name = c_[i].text;
    while (chain_start >= 2 && punct_is(c_[chain_start - 1], "::") &&
           c_[chain_start - 2].kind == TokenKind::kIdentifier) {
      name = c_[chain_start - 2].text + "::" + name;
      chain_start -= 2;
    }
    if (chain_start >= 1 && punct_is(c_[chain_start - 1], "~")) {
      name = "~" + name;
      --chain_start;
    }
    if (!valid_head_predecessor(chain_start)) return i;
    return parse_head(i, i + 1, name);
  }

  // `operator` at scope level: `operator+(...)`, `operator()(...)`.
  std::size_t try_operator(std::size_t i) {
    std::size_t j = i + 1;
    std::string name = "operator";
    if (in_range(j + 1) && punct_is(c_[j], "(") && punct_is(c_[j + 1], ")")) {
      name += "()";
      j += 2;
    } else {
      while (in_range(j) && c_[j].kind == TokenKind::kPunct &&
             !punct_is(c_[j], "(")) {
        name += c_[j].text;
        ++j;
      }
    }
    if (!in_range(j) || !punct_is(c_[j], "(")) return i;
    if (!valid_head_predecessor(i)) return i;
    return parse_head(i, j, name);
  }

  // Records `Type [*&]* name` pairs from the parameter list opened at
  // `lparen` into the typed-receiver map, the same way class fields are
  // recorded: `const SparseMatrix& a` lets `a.value(k)` dispatch on
  // SparseMatrix instead of every class with a value() method. Called only
  // once the head is known to register as a function, so expression
  // parentheses never pollute the map.
  void record_param_types(std::size_t lparen) {
    std::size_t j = lparen + 1;
    const std::size_t close = skip_balanced(lparen, "(", ")");
    while (j + 1 < close) {
      while (j < close && c_[j].kind == TokenKind::kIdentifier &&
             (c_[j].text == "const" || c_[j].text == "volatile"))
        ++j;
      if (j >= close || c_[j].kind != TokenKind::kIdentifier ||
          control_keywords().count(c_[j].text))
        break;
      std::string leaf = c_[j].text;
      ++j;
      while (j + 1 < close && punct_is(c_[j], "::") &&
             c_[j + 1].kind == TokenKind::kIdentifier) {
        leaf = c_[j + 1].text;
        j += 2;
      }
      if (j < close && punct_is(c_[j], "<")) {
        const std::size_t a = skip_angles(j);
        if (a == j) break;
        if (leaf == "unique_ptr" || leaf == "shared_ptr") {
          std::string inner;
          for (std::size_t x = j + 1; x + 1 < a; ++x)
            if (c_[x].kind == TokenKind::kIdentifier &&
                c_[x].text != "const")
              inner = c_[x].text;
          if (inner.empty()) break;
          leaf = inner;
        }
        j = a;
      }
      while (j < close && (punct_is(c_[j], "*") || punct_is(c_[j], "&") ||
                           punct_is(c_[j], "&&")))
        ++j;
      if (j >= close || c_[j].kind != TokenKind::kIdentifier) {
        // Unnamed parameter (or a shape this lexer doesn't model): skip to
        // the next top-level comma.
      } else {
        graph_.field_types_[c_[j].text].insert(leaf);
        ++j;
      }
      int depth = 0;
      while (j < close) {
        if (punct_is(c_[j], "(") || punct_is(c_[j], "{")) ++depth;
        if (punct_is(c_[j], ")") || punct_is(c_[j], "}")) --depth;
        if (depth == 0 && punct_is(c_[j], ",")) {
          ++j;
          break;
        }
        ++j;
      }
    }
  }

  // Parses from the parameter list's '(' (at `lparen`) through the trailer
  // to a body or ';'. Registers the function and returns the index past it;
  // returns `name_idx` when the shape turns out not to be a function.
  std::size_t parse_head(std::size_t name_idx, std::size_t lparen,
                         const std::string& name) {
    std::size_t j = skip_balanced(lparen, "(", ")");
    Annotations ann;
    bool is_decl = false;
    while (in_range(j)) {
      const Token& t = c_[j];
      if (t.kind == TokenKind::kIdentifier) {
        if (plain_specifiers().count(t.text)) {
          ++j;
          if (t.text == "noexcept" && in_range(j) && punct_is(c_[j], "("))
            j = skip_balanced(j, "(", ")");
          continue;
        }
        if (annotation_name(t.text, ann) || skippable_annotation(t.text)) {
          const bool is_req = t.text == "EUCON_REQUIRES";
          const bool is_excl = t.text == "EUCON_EXCLUDES";
          ++j;
          if (in_range(j) && punct_is(c_[j], "(")) {
            if (is_req || is_excl) {
              std::vector<std::string>& dst =
                  is_req ? ann.requires_args : ann.excludes_args;
              for (std::string& a : paren_name_args(j))
                dst.push_back(std::move(a));
            }
            j = skip_balanced(j, "(", ")");
          }
          continue;
        }
        return name_idx;  // stray identifier: not a function head
      }
      if (punct_is(t, "&") || punct_is(t, "&&")) {  // ref-qualifier
        ++j;
        continue;
      }
      if (punct_is(t, "->")) {  // trailing return type
        ++j;
        while (in_range(j) && !punct_is(c_[j], "{") && !punct_is(c_[j], ";") &&
               !punct_is(c_[j], "=")) {
          if (punct_is(c_[j], "<")) {
            const std::size_t a = skip_angles(j);
            j = (a == j) ? j + 1 : a;
            continue;
          }
          if (punct_is(c_[j], "(")) {
            j = skip_balanced(j, "(", ")");
            continue;
          }
          ++j;
        }
        continue;
      }
      if (punct_is(t, "=")) {
        // = default / = delete / = 0 — a declaration either way.
        is_decl = true;
        j = skip_to_semi(j);
        break;
      }
      if (punct_is(t, ":")) {  // constructor member-init list
        j = skip_ctor_inits(j + 1);
        continue;
      }
      if (punct_is(t, "{")) {
        const std::size_t body_open = j;
        const std::size_t body_end = skip_balanced(j, "{", "}");
        record_param_types(lparen);
        register_function(name, name_idx, /*defined=*/true, ann, body_open + 1,
                          body_end > 0 ? body_end - 1 : body_open);
        return body_end;
      }
      if (punct_is(t, ";")) {
        is_decl = true;
        ++j;
        break;
      }
      return name_idx;  // unexpected shape: an expression, not a head
    }
    if (is_decl) {
      record_param_types(lparen);
      register_function(name, name_idx, /*defined=*/false, ann, 0, 0);
      return j;
    }
    return name_idx;
  }

  // After a ctor's ':' — groups of `qualified-name ( ... )` or
  // `qualified-name { ... }` separated by ','; the body '{' follows the
  // last group.
  std::size_t skip_ctor_inits(std::size_t j) {
    while (in_range(j)) {
      while (in_range(j) &&
             (c_[j].kind == TokenKind::kIdentifier || punct_is(c_[j], "::")))
        ++j;
      j = skip_angles(j);
      if (!in_range(j)) return j;
      if (punct_is(c_[j], "("))
        j = skip_balanced(j, "(", ")");
      else if (punct_is(c_[j], "{"))
        j = skip_balanced(j, "{", "}");
      else
        return j;
      if (in_range(j) && punct_is(c_[j], ",")) {
        ++j;
        continue;
      }
      return j;  // next token should be the body '{'
    }
    return j;
  }

  void register_function(const std::string& name, std::size_t name_idx,
                         bool defined, const Annotations& ann,
                         std::size_t body_begin, std::size_t body_end) {
    CgFunction fn;
    fn.qname = qualify(name);
    fn.file = file_;
    fn.line = c_[name_idx].line;
    fn.defined = defined;
    fn.is_method =
        innermost_is_class() || name.find("::") != std::string::npos;
    fn.realtime = ann.realtime;
    for (int k = 0; k < kRtCategoryCount; ++k) fn.ok[k] = ann.ok[k];
    if (lock_extract_) {
      fn.lock_requires = ann.requires_args;
      fn.lock_excludes = ann.excludes_args;
    }
    if (defined) scan_body(fn, body_begin, body_end);
    graph_.add_function(std::move(fn));
  }

  void add_violation(CgFunction& fn, RtCategory cat, const Token& at,
                     const std::string& what, const char* detail) {
    fn.violations.push_back({cat, what, detail, file_, at.line, at.col});
  }

  // Receiver expression of the member call whose name is at `k` (c_[k-1]
  // is '.' or '->'): the `ident (. | -> | ::) ...` chain to its left,
  // rendered as spelled ("mutex_", "progress.mu"). Empty when there is no
  // plain name chain (e.g. a call or index expression as receiver).
  std::string receiver_expr(std::size_t k, std::size_t begin) const {
    std::size_t s = k;
    while (s >= begin + 2 &&
           (punct_is(c_[s - 1], ".") || punct_is(c_[s - 1], "->") ||
            punct_is(c_[s - 1], "::")) &&
           c_[s - 2].kind == TokenKind::kIdentifier)
      s -= 2;
    std::string r;
    for (std::size_t j = s; j + 2 <= k; ++j) r += c_[j].text;
    return r;
  }

  // Flat scan of a body range for call sites, direct violations, and (when
  // lock_extract_) lexical held-lock tracking: RAII lock scopes release at
  // their closing brace, explicit lock()/try_lock() hold until unlock() or
  // the end of the body. The held set is attached to every call site,
  // acquisition, and blocking site; lockgraph.cpp qualifies the names and
  // propagates them along call edges.
  void scan_body(CgFunction& fn, std::size_t begin, std::size_t end) {
    std::vector<std::vector<std::string>> raii(1);  // per open brace
    std::vector<std::string> held;                  // acquisition order
    std::map<std::string, std::string> lock_vars;   // RAII var -> mutex

    const auto release = [&held](const std::string& mu) {
      for (std::size_t r = held.size(); r-- > 0;)
        if (held[r] == mu) {
          held.erase(held.begin() + static_cast<std::ptrdiff_t>(r));
          return;
        }
    };

    // RAII lock at `k`: `LockType <...>? name? ( mutex... )`. Registers the
    // acquisition(s) and schedules release at the enclosing brace.
    const auto raii_lock = [&](std::size_t k) {
      std::size_t j = k + 1;
      if (j < end && punct_is(c_[j], "<")) {
        const std::size_t a = skip_angles(j);
        if (a == j) return;
        j = a;
      }
      std::string var;
      if (j < end && c_[j].kind == TokenKind::kIdentifier) {
        var = c_[j].text;
        ++j;
      }
      if (j >= end || !punct_is(c_[j], "(")) return;
      bool deferred = false;
      std::vector<std::string> mutexes;
      for (std::string& a : paren_name_args(j)) {
        if (has_suffix(a, "defer_lock")) {
          deferred = true;
        } else if (!has_suffix(a, "adopt_lock") &&
                   !has_suffix(a, "try_to_lock")) {
          mutexes.push_back(std::move(a));
        }
      }
      for (const std::string& m : mutexes) {
        if (!deferred) {
          fn.acquires.push_back(
              {m, true, held, file_, c_[k].line, c_[k].col});
          held.push_back(m);
          raii.back().push_back(m);
        }
        if (!var.empty() && !lock_vars.count(var)) lock_vars[var] = m;
      }
    };

    // First argument of the call at `k` is a declared RAII lock variable —
    // the CondVar::wait(MutexLock&) / wait_for(MutexLock&, dur) shape,
    // which releases the mutex while blocked and is not a held-wait.
    const auto waits_through_lock = [&](std::size_t k) {
      return k + 2 < end && c_[k + 2].kind == TokenKind::kIdentifier &&
             lock_vars.count(c_[k + 2].text) > 0 && k + 3 < end &&
             (punct_is(c_[k + 3], ",") || punct_is(c_[k + 3], ")"));
    };

    const auto block_site = [&](const Token& t, const char* detail) {
      fn.block_sites.push_back(
          {t.text, detail, held, file_, t.line, t.col});
    };

    for (std::size_t k = begin; k < end && k < c_.size(); ++k) {
      const Token& t = c_[k];
      if (lock_extract_ && t.kind == TokenKind::kPunct) {
        if (t.text == "{") {
          raii.emplace_back();
        } else if (t.text == "}" && raii.size() > 1) {
          for (auto r = raii.back().rbegin(); r != raii.back().rend(); ++r)
            release(*r);
          raii.pop_back();
        }
        continue;
      }
      if (t.kind != TokenKind::kIdentifier) continue;
      const bool has_next = k + 1 < end;
      const bool next_is_call = has_next && punct_is(c_[k + 1], "(");
      const Token* prev = k > 0 ? &c_[k - 1] : nullptr;
      const bool after_member_op =
          prev != nullptr && (punct_is(*prev, ".") || punct_is(*prev, "->"));

      // --- lock facts (held sets must be current before anything below
      // copies them) ----------------------------------------------------
      if (lock_extract_) {
        if (lock_types().count(t.text)) {
          raii_lock(k);
        } else if (after_member_op && next_is_call &&
                   (t.text == "lock" || t.text == "unlock" ||
                    t.text == "try_lock")) {
          const std::string recv = receiver_expr(k, begin);
          if (!recv.empty()) {
            if (t.text == "unlock") {
              release(recv);
            } else {
              fn.acquires.push_back({recv, t.text == "lock", held, file_,
                                     t.line, t.col});
              held.push_back(recv);
            }
          }
        } else if (after_member_op && next_is_call &&
                   (t.text == "wait" || t.text == "wait_for" ||
                    t.text == "wait_until")) {
          if (!waits_through_lock(k))
            block_site(t, "blocks on a condition or future");
        } else if (after_member_op && next_is_call &&
                   (t.text == "join" || t.text == "flush")) {
          block_site(t, "blocks until pending work completes");
        } else if (!after_member_op && next_is_call &&
                   block_calls().count(t.text)) {
          block_site(t, "performs blocking I/O or sleeps");
        } else if (!after_member_op && block_idents().count(t.text)) {
          block_site(t, "performs stream I/O");
        }
      }

      // --- direct violations -------------------------------------------
      if (t.text == "new") {
        add_violation(fn, RtCategory::kAlloc, t, "new", "allocates");
        continue;
      }
      if (t.text == "delete") {
        if (prev == nullptr || !punct_is(*prev, "="))
          add_violation(fn, RtCategory::kAlloc, t, "delete",
                        "frees heap memory");
        continue;
      }
      if (t.text == "throw") {
        add_violation(fn, RtCategory::kBlock, t, "throw",
                      "unwinds with unbounded latency");
        continue;
      }
      if (next_is_call && alloc_calls().count(t.text)) {
        add_violation(fn, RtCategory::kAlloc, t, t.text,
                      "allocates/frees heap memory");
      } else if (after_member_op && next_is_call &&
                 growth_members().count(t.text)) {
        add_violation(fn, RtCategory::kAlloc, t, t.text,
                      "may grow container storage");
      } else if (!after_member_op && alloc_types().count(t.text) &&
                 allocating_type_use(k, end)) {
        add_violation(fn, RtCategory::kAlloc, t, t.text,
                      "constructs an allocating object");
      } else if (after_member_op && next_is_call &&
                 block_members().count(t.text)) {
        add_violation(fn, RtCategory::kBlock, t, t.text, "blocks");
      } else if (lock_types().count(t.text)) {
        add_violation(fn, RtCategory::kBlock, t, t.text,
                      "acquires a lock (may contend)");
      } else if (next_is_call && !after_member_op &&
                 block_calls().count(t.text)) {
        add_violation(fn, RtCategory::kBlock, t, t.text,
                      "performs blocking I/O or sleeps");
      } else if (!after_member_op && block_idents().count(t.text)) {
        add_violation(fn, RtCategory::kBlock, t, t.text, "performs stream I/O");
      } else if (next_is_call && !after_member_op &&
                 nondet_calls().count(t.text)) {
        add_violation(fn, RtCategory::kNondet, t, t.text,
                      "is a nondeterminism source");
      } else if (nondet_idents().count(t.text)) {
        add_violation(fn, RtCategory::kNondet, t, t.text,
                      "reads a wall clock / hardware entropy");
      }

      // --- call sites ---------------------------------------------------
      if (!next_is_call || control_keywords().count(t.text)) continue;
      std::size_t chain_start = k;
      std::string cname = t.text;
      while (chain_start >= begin + 2 && punct_is(c_[chain_start - 1], "::") &&
             c_[chain_start - 2].kind == TokenKind::kIdentifier) {
        cname = c_[chain_start - 2].text + "::" + cname;
        chain_start -= 2;
      }
      const Token* cprev = chain_start > 0 ? &c_[chain_start - 1] : nullptr;
      if (cprev != nullptr && (cprev->kind == TokenKind::kIdentifier ||
                               punct_is(*cprev, ">")))
        continue;  // `Type name(args)` declaration, not a call
      const bool member =
          cprev != nullptr &&
          (punct_is(*cprev, ".") || punct_is(*cprev, "->"));
      fn.calls.push_back({member ? t.text : cname, member,
                          member ? receiver_expr(k, begin) : std::string(),
                          t.line, t.col, held, {}});
    }
  }

  // Is the allocating-type identifier at `k` used as a by-value
  // declaration or temporary (vs. a reference/pointer/template argument)?
  bool allocating_type_use(std::size_t k, std::size_t end) const {
    std::size_t j = k + 1;
    if (j < end && punct_is(c_[j], "<")) {
      const std::size_t a = skip_angles(j);
      if (a == j) return false;  // comparison, not a template argument list
      j = a;
    }
    if (j >= end) return false;
    const Token& n = c_[j];
    if (n.kind == TokenKind::kPunct) {
      if (n.text == "(" || n.text == "{") return true;  // temporary
      return false;  // & * :: > , ) ; — reference, scope, template arg...
    }
    if (n.kind == TokenKind::kIdentifier) {
      if (control_keywords().count(n.text)) return false;
      if (j + 1 >= end) return false;
      const Token& after = c_[j + 1];
      return punct_is(after, "(") || punct_is(after, "{") ||
             punct_is(after, "=") || punct_is(after, ";") ||
             punct_is(after, "[") || punct_is(after, ":");
    }
    return false;
  }

  CallGraph& graph_;
  const std::string& file_;
  const std::vector<Token>& c_;
  std::vector<Scope> scopes_;
  bool lock_extract_ = true;
};

// ---------------------------------------------------------------------------

void CallGraph::add_file(const std::string& display_path,
                         const std::vector<Token>& code,
                         const std::map<std::size_t, std::set<std::string>>&
                             allowed) {
  if (finalized_) return;  // add_file after finalize() is ignored
  if (!files_.insert(display_path).second) return;
  if (!allowed.empty()) allowed_[display_path] = allowed;
  CallGraphExtractor(*this, display_path, code).run();
}

bool CallGraph::has_file(const std::string& display_path) const {
  return files_.count(display_path) > 0;
}

std::size_t CallGraph::add_function(CgFunction fn) {
  const auto it = by_qname_.find(fn.qname);
  if (it == by_qname_.end()) {
    const std::size_t idx = functions_.size();
    by_qname_[fn.qname] = idx;
    functions_.push_back(std::move(fn));
    return idx;
  }
  // Merge: overloads, or a declaration meeting its definition. Annotations
  // union; the (first) definition owns the location.
  CgFunction& dst = functions_[it->second];
  if (fn.defined && !dst.defined) {
    dst.file = fn.file;
    dst.line = fn.line;
  }
  dst.defined = dst.defined || fn.defined;
  dst.is_method = dst.is_method || fn.is_method;
  dst.realtime = dst.realtime || fn.realtime;
  for (int k = 0; k < kRtCategoryCount; ++k) dst.ok[k] = dst.ok[k] || fn.ok[k];
  dst.calls.insert(dst.calls.end(), fn.calls.begin(), fn.calls.end());
  for (const std::string& m : fn.lock_requires)
    if (std::find(dst.lock_requires.begin(), dst.lock_requires.end(), m) ==
        dst.lock_requires.end())
      dst.lock_requires.push_back(m);
  for (const std::string& m : fn.lock_excludes)
    if (std::find(dst.lock_excludes.begin(), dst.lock_excludes.end(), m) ==
        dst.lock_excludes.end())
      dst.lock_excludes.push_back(m);
  dst.acquires.insert(dst.acquires.end(), fn.acquires.begin(),
                      fn.acquires.end());
  dst.block_sites.insert(dst.block_sites.end(), fn.block_sites.begin(),
                         fn.block_sites.end());
  for (CgViolation& v : fn.violations) {
    const bool dup = std::any_of(
        dst.violations.begin(), dst.violations.end(), [&](const CgViolation& d) {
          return d.category == v.category && d.file == v.file &&
                 d.line == v.line && d.col == v.col && d.what == v.what;
        });
    if (!dup) dst.violations.push_back(std::move(v));
  }
  return it->second;
}

const CgFunction* CallGraph::find(const std::string& qname) const {
  const auto it = by_qname_.find(qname);
  return it == by_qname_.end() ? nullptr : &functions_[it->second];
}

namespace {

std::string last_component(const std::string& qname) {
  const std::size_t pos = qname.rfind("::");
  return pos == std::string::npos ? qname : qname.substr(pos + 2);
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

void CallGraph::finalize() {
  if (finalized_) return;
  finalized_ = true;

  std::map<std::string, std::vector<std::size_t>> methods_by_leaf;
  std::map<std::string, std::vector<std::size_t>> free_by_leaf;
  for (std::size_t idx = 0; idx < functions_.size(); ++idx) {
    const std::string leaf = last_component(functions_[idx].qname);
    (functions_[idx].is_method ? methods_by_leaf : free_by_leaf)[leaf]
        .push_back(idx);
  }

  for (std::size_t idx = 0; idx < functions_.size(); ++idx) {
    CgFunction& fn = functions_[idx];
    std::set<std::size_t> edges;
    std::set<std::string> unresolved;
    // The caller's enclosing scopes, longest first, for unqualified and
    // implicit-this lookup: "a::b::C::m" yields "a::b::C", "a::b", "a", "".
    std::vector<std::string> prefixes;
    {
      std::string q = fn.qname;
      for (;;) {
        const std::size_t pos = q.rfind("::");
        if (pos == std::string::npos) break;
        q = q.substr(0, pos);
        prefixes.push_back(q);
      }
      prefixes.push_back("");
    }
    for (CgCall& call : fn.calls) {
      bool resolved = false;
      std::set<std::size_t> targets;
      if (call.member) {
        // Method call through an object. When the receiver's last
        // component matches a recorded class-scope field, dispatch on the
        // declared type(s): resolve to this method name on exactly those
        // classes. `shard.local->update(...)` through a
        // `unique_ptr<MpcController> local` field reaches
        // MpcController::update alone instead of every `update` override
        // in the repo — which is what keeps an EUCON_REALTIME coordinator
        // from inheriting the violations of controllers it can never call.
        const auto hit = methods_by_leaf.find(call.name);
        if (hit != methods_by_leaf.end()) {
          const std::size_t cut = call.receiver.find_last_of(".>:");
          const std::string recv_leaf =
              cut == std::string::npos ? call.receiver
                                       : call.receiver.substr(cut + 1);
          const auto typed = recv_leaf.empty()
                                 ? field_types_.end()
                                 : field_types_.find(recv_leaf);
          if (typed != field_types_.end()) {
            for (const std::size_t t : hit->second) {
              const std::string& qn = functions_[t].qname;
              const std::size_t pos = qn.rfind("::");
              if (pos != std::string::npos &&
                  typed->second.count(last_component(qn.substr(0, pos)))) {
                targets.insert(t);
                resolved = true;
              }
            }
          }
          // No recorded type declares this method (or the receiver is not
          // a plain recorded field): every method with this name — an
          // over-approximation that can add edges but never drop one.
          if (!resolved) {
            targets.insert(hit->second.begin(), hit->second.end());
            resolved = true;
          }
        }
      }
      // Scope-walk: exact match of prefix::name, innermost scope first.
      // Covers plain calls, namespace-qualified calls seen from a sibling
      // namespace, and a method calling its own class's methods. Member
      // calls never take this path (or the free-function fallback below):
      // `obj.f()` must not bind cross-kind to a free `f` in an enclosing
      // scope — methods-by-leaf-name is their only resolution.
      for (const std::string& p : prefixes) {
        if (resolved || call.member) break;
        const std::string candidate =
            p.empty() ? call.name : p + "::" + call.name;
        const auto hit = by_qname_.find(candidate);
        if (hit != by_qname_.end()) {
          targets.insert(hit->second);
          resolved = true;
        }
      }
      if (!resolved && !call.member) {
        if (call.name.find("::") != std::string::npos) {
          // Qualified call: suffix match against every qualified name.
          const std::string suffix = "::" + call.name;
          for (const auto& [qname, target] : by_qname_) {
            if (ends_with(qname, suffix)) {
              targets.insert(target);
              resolved = true;
            }
          }
        } else {
          // Unqualified call: every free function with this name, plus
          // constructors (`T(...)` resolves to every `...::T::T`).
          const auto hit = free_by_leaf.find(call.name);
          if (hit != free_by_leaf.end()) {
            targets.insert(hit->second.begin(), hit->second.end());
            resolved = true;
          }
        }
      }
      if (!resolved) {
        const std::string leaf = last_component(call.name);
        const std::string ctor_suffix = "::" + leaf + "::" + leaf;
        for (const auto& [qname, target] : by_qname_) {
          if (ends_with(qname, ctor_suffix) || qname == leaf + "::" + leaf) {
            targets.insert(target);
            resolved = true;
          }
        }
      }
      if (!resolved) unresolved.insert(call.name);
      call.targets.assign(targets.begin(), targets.end());
      edges.insert(targets.begin(), targets.end());
    }
    fn.callees.assign(edges.begin(), edges.end());
    fn.unresolved.assign(unresolved.begin(), unresolved.end());
  }
}

}  // namespace eucon::analysis
