// Token-level call-graph extraction for eucon_lint's interprocedural rules.
//
// CallGraph consumes the token streams the lexer already produces (one
// add_file per translation unit or header; duplicate paths are ignored, so
// a header seen both standalone and as a .cpp companion is parsed once),
// extracts function definitions and annotated declarations with
// scope-qualified names, records their call sites (with the locks held
// lexically at each), their direct real-time violations, and their lock
// facts — RAII/explicit mutex acquisitions, blocking sites,
// EUCON_REQUIRES/EUCON_EXCLUDES preconditions, EUCON_ACQUIRED_BEFORE
// declarations, std::function callback fields — and, after finalize(),
// resolves call edges so check_realtime() can walk transitively from
// every EUCON_REALTIME root and check_locks() can run the lock rule
// family over the whole-repo lock graph (analysis/lockgraph.h).
//
// This is a lexer, not a compiler, so resolution is deliberately
// conservative and over-approximate:
//  - overloads share one node: a call to an overloaded name reaches every
//    overload;
//  - a member call through an object (`obj.f(...)`) first tries the
//    receiver's declared type: class-scope fields and function parameters
//    (`T x_;`, `T* x_;`, `unique_ptr<T> x_;`, `const T& x`) record
//    name -> type leaves, and a receiver whose last component matches one
//    resolves to `f` on exactly the recorded classes (union over every
//    same-named declaration repo-wide). When no recorded class declares
//    `f` — or the receiver is not a recorded name — the call falls back
//    to every method named `f`;
//  - calls through function pointers, macros (EUCON_REQUIRE, OBS_TIMED),
//    and names with no definition in the linted set stay unresolved — the
//    graph never invents an edge it cannot attribute;
//  - anonymous namespaces are transparent (their functions take the
//    enclosing scope's qualified name), which merges identically-named
//    file-local helpers across TUs — an over-approximation, never a miss.
//
// The real-time contract itself (EUCON_REALTIME and the EUCON_*_OK escape
// hatches) lives in common/annotations.h; the three rules and the
// propagation policy are implemented in realtime_rules.cpp.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/lexer.h"
#include "analysis/rules.h"

namespace eucon::analysis {

// The three real-time violation categories, in registry order.
enum class RtCategory { kAlloc = 0, kBlock = 1, kNondet = 2 };
inline constexpr int kRtCategoryCount = 3;

// Registry rule name for a category ("allocation-in-realtime", ...).
const char* rt_rule_name(RtCategory c);

// One direct (intra-function) violation, found while scanning a body.
struct CgViolation {
  RtCategory category = RtCategory::kAlloc;
  std::string what;    // offending token, e.g. "push_back", "throw"
  std::string detail;  // verb phrase for the diagnostic, e.g. "allocates"
  std::string file;
  std::size_t line = 0;
  std::size_t col = 0;
};

// One call site inside a function body, before resolution.
struct CgCall {
  std::string name;     // possibly qualified: "f", "linalg::multiply_into"
  bool member = false;  // obj.f(...) / obj->f(...) form
  // Member calls: the receiver chain as spelled ("shard.local", "solver_");
  // empty when the receiver isn't a plain name chain. Drives the
  // typed-field narrowing in finalize().
  std::string receiver;
  std::size_t line = 0;
  std::size_t col = 0;
  // Mutexes held at this call site (lexical tracking: RAII lock scopes and
  // explicit lock()/unlock()), as spelled in the body ("mutex_",
  // "progress.mu"), in acquisition order. Qualified by lockgraph.cpp.
  std::vector<std::string> held;
  // Per-call resolved targets (indices into functions()); finalize() fills
  // them alongside the merged per-function `callees` union.
  std::vector<std::size_t> targets;
};

// One mutex acquisition observed in a body: an RAII lock construction or an
// explicit lock()/try_lock() call.
struct CgAcquire {
  std::string mutex;  // spelled expression: "mutex_", "progress.mu"
  bool blocking = true;  // false for try_lock (cannot be the blocked party)
  std::vector<std::string> held_before;  // locally held at this point
  std::string file;
  std::size_t line = 0;
  std::size_t col = 0;
};

// One direct blocking primitive (wait/join/sleep/IO) with the locally held
// lock set at that point. CondVar::wait/wait_for through a MutexLock& are
// excepted at extraction time and never recorded here.
struct CgBlockSite {
  std::string what;    // offending token, e.g. "join", "sleep_for"
  std::string detail;  // verb phrase for the diagnostic
  std::vector<std::string> held;
  std::string file;
  std::size_t line = 0;
  std::size_t col = 0;
};

// One EUCON_ACQUIRED_BEFORE(...) declaration on a mutex member: `first`
// must be acquired before `second` whenever both are held. Names are
// scope-qualified at extraction time.
struct CgDeclaredOrder {
  std::string first;
  std::string second;
  std::string file;
  std::size_t line = 0;
};

// One function node. Declarations and definitions with the same qualified
// name merge (annotations union; the definition supplies body facts), as do
// all overloads of one name — see the header comment.
struct CgFunction {
  std::string qname;  // scope-qualified: "eucon::control::MpcController::update"
  std::string file;   // definition site when one exists, else declaration
  std::size_t line = 0;
  bool defined = false;    // a body was seen in some added file
  bool is_method = false;  // defined in class scope or via Class::name
  bool realtime = false;   // EUCON_REALTIME root
  bool ok[kRtCategoryCount] = {false, false, false};  // EUCON_*_OK hatches
  std::vector<CgCall> calls;            // raw call sites (body order)
  std::vector<CgViolation> violations;  // direct violations (body order)
  std::vector<std::size_t> callees;     // resolved edges, indices into
                                        // functions(); filled by finalize()
  std::vector<std::string> unresolved;  // distinct call names with no target
  // Lock facts for check_locks() (lockgraph.cpp / lock_rules.cpp).
  std::vector<std::string> lock_requires;  // EUCON_REQUIRES(...) arguments
  std::vector<std::string> lock_excludes;  // EUCON_EXCLUDES(...) arguments
  std::vector<CgAcquire> acquires;         // acquisition sites (body order)
  std::vector<CgBlockSite> block_sites;    // blocking sites (body order)
};

class CallGraph {
 public:
  // Parses one file's comment-stripped token stream into the graph.
  // `allowed` is the file's line -> suppressed-rules map (mined from the
  // usual eucon-lint suppression comments); it participates in
  // check_realtime() so line suppressions work for interprocedural
  // findings too. A display_path already added is ignored.
  void add_file(const std::string& display_path,
                const std::vector<Token>& code,
                const std::map<std::size_t, std::set<std::string>>& allowed);

  bool has_file(const std::string& display_path) const;

  // Resolves call edges. Call after the last add_file; add_file after
  // finalize() is an error (asserted in debug builds, ignored otherwise).
  void finalize();

  const std::vector<CgFunction>& functions() const { return functions_; }

  // Node lookup by exact qualified name (nullptr when absent).
  const CgFunction* find(const std::string& qname) const;

  // Runs the three realtime rules: walks from every EUCON_REALTIME root,
  // per category, stopping at EUCON_*_OK hatches, and returns one finding
  // per offending site with the full call chain in the message. Requires
  // finalize(). Implemented in realtime_rules.cpp.
  std::vector<Finding> check_realtime() const;

  // Runs the three lock rules (lock-order-inversion, blocking-while-locked,
  // callback-under-lock) over the interprocedural lock graph built from the
  // recorded lock facts. Requires finalize(). Implemented in lock_rules.cpp
  // on top of lockgraph.{h,cpp}.
  std::vector<Finding> check_locks() const;

  // std::function-typed class fields seen at class scope — candidate
  // user-supplied callbacks for the callback-under-lock rule.
  const std::set<std::string>& callback_fields() const {
    return callback_fields_;
  }

  // Scope-qualified EUCON_ACQUIRED_BEFORE declarations, in add order.
  const std::vector<CgDeclaredOrder>& declared_order() const {
    return declared_order_;
  }

  // Class-scope field and function-parameter declarations seen so far:
  // name -> declared class-type leaves (the pointee for smart-pointer
  // declarations). Unioned repo-wide; drives the typed member-call
  // narrowing.
  const std::map<std::string, std::set<std::string>>& field_types() const {
    return field_types_;
  }

 private:
  friend class CallGraphExtractor;

  // Appends or merges one extracted function; returns its index.
  std::size_t add_function(CgFunction fn);

  std::vector<CgFunction> functions_;
  std::map<std::string, std::size_t> by_qname_;
  std::set<std::string> files_;
  std::set<std::string> callback_fields_;
  std::map<std::string, std::set<std::string>> field_types_;
  std::vector<CgDeclaredOrder> declared_order_;
  // file -> line -> rules allowed on that line.
  std::map<std::string, std::map<std::size_t, std::set<std::string>>> allowed_;
  bool finalized_ = false;
};

}  // namespace eucon::analysis
