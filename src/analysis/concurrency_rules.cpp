// The concurrency rule family: compile-time-ish lock discipline and
// determinism hazards the batch engine (eucon/experiment run_batch) must
// stay free of. These rules read the same EUCON_* capability annotations
// (common/annotations.h) that clang's -Wthread-safety enforces, so the
// discipline is still checked — approximately, at token level — on
// GCC-only machines.
//
//   locked-field-access     EUCON_GUARDED_BY(m) fields only under m
//   detached-thread         no detach(), no raw std::thread outside
//                           common/thread_pool (and common/mutex.h)
//   blocking-in-callback    no .get()/wait()/sleep_for inside lambdas
//                           handed to ThreadPool::submit
//   nondeterministic-parallel  no static/thread_local RNG state, no
//                           std::random_device — determinism is a tested
//                           invariant (batch serial-vs-pool bit equality)
#include <set>
#include <string>
#include <vector>

#include "analysis/rules.h"

namespace eucon::analysis {

namespace {

bool ident_in(const Token& t, std::initializer_list<const char*> names) {
  if (t.kind != TokenKind::kIdentifier) return false;
  for (const char* n : names)
    if (t.text == n) return true;
  return false;
}

// Collects the identifiers inside the balanced paren group opening at
// `open` (which must index a "(" token). Returns the index of the closing
// ")" (or the last token). Identifiers preceded by "!" (negative
// capabilities, e.g. EUCON_REQUIRES(!mu)) are excluded.
std::size_t paren_identifiers(const std::vector<Token>& c, std::size_t open,
                              std::set<std::string>& out) {
  int depth = 0;
  std::size_t j = open;
  for (; j < c.size(); ++j) {
    if (is_punct(c[j], "(")) {
      ++depth;
      continue;
    }
    if (is_punct(c[j], ")")) {
      --depth;
      if (depth == 0) break;
      continue;
    }
    if (depth > 0 && c[j].kind == TokenKind::kIdentifier &&
        !(j > 0 && is_punct(c[j - 1], "!")))
      out.insert(c[j].text);
  }
  return j;
}

// Skips a template-argument group "<...>" starting at `i`; returns the
// index just past the closing ">". ">>" closes two levels.
std::size_t skip_angles(const std::vector<Token>& c, std::size_t i) {
  if (i >= c.size() || !is_punct(c[i], "<")) return i;
  int depth = 0;
  for (; i < c.size(); ++i) {
    if (is_punct(c[i], "<")) ++depth;
    if (is_punct(c[i], ">")) --depth;
    if (is_punct(c[i], ">>")) depth -= 2;
    if (depth <= 0) return i + 1;
  }
  return i;
}

constexpr const char* kLockRaii[] = {"lock_guard", "unique_lock",
                                     "scoped_lock", "MutexLock"};

bool is_lock_raii(const Token& t) {
  if (t.kind != TokenKind::kIdentifier) return false;
  for (const char* n : kLockRaii)
    if (t.text == n) return true;
  return false;
}

// --------------------------------------------------------------------------
// locked-field-access
// --------------------------------------------------------------------------

void check_locked_field_access(FileContext& ctx) {
  if (ctx.guarded_fields.empty()) return;
  const std::vector<Token>& c = ctx.code;

  std::set<std::string> known_mutexes;
  for (const auto& [field, mu] : ctx.guarded_fields) known_mutexes.insert(mu);

  // Stack of lexical scopes, each carrying the set of mutexes held when it
  // opened (RAII locks declared inside add to the current scope).
  std::vector<std::set<std::string>> held{{}};
  // Mutexes a function signature promised via EUCON_REQUIRES/EUCON_ACQUIRE;
  // seeds the next "{" (the body), cleared by ";" (a mere declaration).
  std::set<std::string> pending;

  for (std::size_t i = 0; i < c.size(); ++i) {
    const Token& t = c[i];
    if (is_punct(t, "{")) {
      std::set<std::string> scope = held.back();
      scope.insert(pending.begin(), pending.end());
      pending.clear();
      held.push_back(std::move(scope));
      continue;
    }
    if (is_punct(t, "}")) {
      if (held.size() > 1) held.pop_back();
      continue;
    }
    if (is_punct(t, ";")) {
      pending.clear();
      continue;
    }
    if (t.kind != TokenKind::kIdentifier) continue;

    if (t.text == "EUCON_REQUIRES" || t.text == "EUCON_ACQUIRE") {
      if (i + 1 < c.size() && is_punct(c[i + 1], "("))
        i = paren_identifiers(c, i + 1, pending);
      continue;
    }
    if (is_lock_raii(t)) {
      // <template-args>? <variable-name>? ( mutex, ... )
      std::size_t j = skip_angles(c, i + 1);
      if (j < c.size() && c[j].kind == TokenKind::kIdentifier) ++j;
      if (j < c.size() && is_punct(c[j], "(")) {
        std::set<std::string> args;
        i = paren_identifiers(c, j, args);
        held.back().insert(args.begin(), args.end());
      }
      continue;
    }
    // Direct mu.lock() / mu.unlock() calls on a known guarding mutex.
    if (known_mutexes.count(t.text) && i + 3 < c.size() &&
        (is_punct(c[i + 1], ".") || is_punct(c[i + 1], "->")) &&
        is_punct(c[i + 3], "(")) {
      if (is_identifier(c[i + 2], "lock")) {
        held.back().insert(t.text);
        i += 3;
        continue;
      }
      if (is_identifier(c[i + 2], "unlock")) {
        held.back().erase(t.text);
        i += 3;
        continue;
      }
    }
    // Out-of-class definition of a method annotated EUCON_REQUIRES in the
    // (companion) header: Class::method( — its body holds the mutexes.
    const auto req = ctx.required_mutexes.find(t.text);
    if (req != ctx.required_mutexes.end() && i > 0 &&
        is_punct(c[i - 1], "::") && i + 1 < c.size() &&
        is_punct(c[i + 1], "(")) {
      pending.insert(req->second.begin(), req->second.end());
      continue;
    }
    // Finally: is this a guarded field touched without its mutex?
    const auto guard = ctx.guarded_fields.find(t.text);
    if (guard == ctx.guarded_fields.end()) continue;
    if (i + 1 < c.size() &&
        ident_in(c[i + 1], {"EUCON_GUARDED_BY", "EUCON_PT_GUARDED_BY"}))
      continue;  // the declaration itself
    if (!held.back().count(guard->second))
      ctx.report(t.line, t.col, "locked-field-access",
                 "'" + t.text + "' is EUCON_GUARDED_BY(" + guard->second +
                     ") but this scope does not hold " + guard->second);
  }
}

// --------------------------------------------------------------------------
// detached-thread
// --------------------------------------------------------------------------

void check_detached_thread(FileContext& ctx) {
  if (ctx.thread_owner) return;
  const std::vector<Token>& c = ctx.code;
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (is_identifier(c[i], "std") && i + 2 < c.size() &&
        is_punct(c[i + 1], "::") &&
        ident_in(c[i + 2], {"thread", "jthread"})) {
      // std::thread::hardware_concurrency() and friends are fine; it is
      // the raw thread object (construction, members, containers of them)
      // that must stay inside common/thread_pool.
      const bool static_member =
          i + 3 < c.size() && is_punct(c[i + 3], "::");
      if (!static_member)
        ctx.report(c[i].line, c[i].col, "detached-thread",
                   "raw std::" + c[i + 2].text +
                       " outside common/thread_pool; use ThreadPool");
      continue;
    }
    if ((is_punct(c[i], ".") || is_punct(c[i], "->")) && i + 2 < c.size() &&
        is_identifier(c[i + 1], "detach") && is_punct(c[i + 2], "(")) {
      ctx.report(c[i + 1].line, c[i + 1].col, "detached-thread",
                 "detach() orphans the thread past all shutdown and "
                 "sanitizer coverage; join via ThreadPool instead");
      continue;
    }
    if (is_identifier(c[i], "pthread_create") && i + 1 < c.size() &&
        is_punct(c[i + 1], "("))
      ctx.report(c[i].line, c[i].col, "detached-thread",
                 "pthread_create outside common/thread_pool; use ThreadPool");
  }
}

// --------------------------------------------------------------------------
// blocking-in-callback
// --------------------------------------------------------------------------

void check_blocking_in_callback(FileContext& ctx) {
  const std::vector<Token>& c = ctx.code;
  for (std::size_t i = 0; i + 1 < c.size(); ++i) {
    if (!is_identifier(c[i], "submit") || !is_punct(c[i + 1], "(")) continue;
    // Scan the balanced argument list; anything inside a braced region in
    // there is a task body that will run on a pool worker.
    int parens = 1;
    int braces = 0;
    for (std::size_t j = i + 2; j < c.size() && parens > 0; ++j) {
      if (is_punct(c[j], "(")) ++parens;
      if (is_punct(c[j], ")")) --parens;
      if (is_punct(c[j], "{")) ++braces;
      if (is_punct(c[j], "}")) --braces;
      if (braces <= 0) continue;
      if ((is_punct(c[j], ".") || is_punct(c[j], "->")) && j + 2 < c.size() &&
          ident_in(c[j + 1], {"get", "wait", "wait_for", "wait_until"}) &&
          is_punct(c[j + 2], "("))
        ctx.report(c[j + 1].line, c[j + 1].col, "blocking-in-callback",
                   "." + c[j + 1].text +
                       "() inside a pooled task can deadlock the pool "
                       "(tasks must not block on other queued work)");
      if (ident_in(c[j], {"sleep_for", "sleep_until"}) && j + 1 < c.size() &&
          is_punct(c[j + 1], "("))
        ctx.report(c[j].line, c[j].col, "blocking-in-callback",
                   c[j].text +
                       " inside a pooled task stalls a worker; model delay "
                       "in simulation time instead");
    }
  }
}

// --------------------------------------------------------------------------
// nondeterministic-parallel
// --------------------------------------------------------------------------

constexpr const char* kRngTypes[] = {
    "Rng",          "mt19937",     "mt19937_64",           "minstd_rand",
    "minstd_rand0", "ranlux24",    "ranlux48",             "knuth_b",
    "random_device", "default_random_engine",
};

bool is_rng_type(const Token& t) {
  if (t.kind != TokenKind::kIdentifier) return false;
  for (const char* n : kRngTypes)
    if (t.text == n) return true;
  return false;
}

// Heuristic filter: after `static <RngType> name`, a "(" whose first token
// looks like a parameter type means a factory *function* declaration, not
// shared RNG state.
bool looks_like_function_params(const std::vector<Token>& c, std::size_t open) {
  if (open + 1 >= c.size()) return false;
  if (is_punct(c[open + 1], ")")) return true;  // no-arg declaration
  return ident_in(c[open + 1], {"std", "const", "int", "long", "unsigned",
                                "double", "float", "bool", "char", "auto",
                                "void", "size_t", "uint64_t", "uint32_t"});
}

void check_nondeterministic_parallel(FileContext& ctx) {
  const std::vector<Token>& c = ctx.code;
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (is_identifier(c[i], "random_device")) {
      ctx.report(c[i].line, c[i].col, "nondeterministic-parallel",
                 "std::random_device is nondeterministic; all randomness "
                 "must flow from seeded common/rng.h streams");
      continue;
    }
    if (!ident_in(c[i], {"static", "thread_local"})) continue;
    // Window-scan the declaration for an RNG type; const static state
    // cannot be mutated, so it is exempt.
    bool saw_const = false;
    for (std::size_t j = i + 1; j < c.size() && j < i + 8; ++j) {
      if (is_punct(c[j], ";") || is_punct(c[j], "=") || is_punct(c[j], "(") ||
          is_punct(c[j], "{"))
        break;
      if (is_identifier(c[j], "const")) saw_const = true;
      if (!is_rng_type(c[j])) continue;
      if (saw_const) break;
      // static Rng name(...) could be a factory declaration; peek.
      std::size_t k = j + 1;
      if (k < c.size() && is_punct(c[k], "<")) k = skip_angles(c, k);
      if (k < c.size() && c[k].kind == TokenKind::kIdentifier) ++k;
      if (k < c.size() && is_punct(c[k], "(") &&
          looks_like_function_params(c, k))
        break;
      ctx.report(c[j].line, c[j].col, "nondeterministic-parallel",
                 c[i].text + " " + c[j].text +
                     " is RNG state shared across pooled runs and breaks "
                     "batch determinism; derive per-run streams "
                     "(Rng::split / batch_run_seed)");
      break;
    }
  }
}

}  // namespace

void collect_lock_discipline(
    const std::vector<Token>& code,
    std::map<std::string, std::string>& guarded_fields,
    std::map<std::string, std::set<std::string>>& required_mutexes) {
  const std::vector<Token>& c = code;
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (ident_in(c[i], {"EUCON_GUARDED_BY", "EUCON_PT_GUARDED_BY"})) {
      if (i == 0 || c[i - 1].kind != TokenKind::kIdentifier) continue;
      if (i + 1 >= c.size() || !is_punct(c[i + 1], "(")) continue;
      std::set<std::string> args;
      paren_identifiers(c, i + 1, args);
      if (args.empty()) continue;
      // For a qualified guard (obj.mu) the mutex name is the last part.
      guarded_fields[c[i - 1].text] = *args.rbegin();
      continue;
    }
    if (is_identifier(c[i], "EUCON_REQUIRES")) {
      if (i + 1 >= c.size() || !is_punct(c[i + 1], "(")) continue;
      std::set<std::string> mutexes;
      paren_identifiers(c, i + 1, mutexes);
      if (mutexes.empty()) continue;
      // Walk back over trailing specifiers to the parameter list, then to
      // the method name: void name(...) const EUCON_REQUIRES(mu)
      std::size_t j = i;
      while (j > 0 &&
             ident_in(c[j - 1], {"const", "noexcept", "override", "final"}))
        --j;
      if (j == 0 || !is_punct(c[j - 1], ")")) continue;
      int depth = 0;
      std::size_t k = j - 1;
      for (;; --k) {
        if (is_punct(c[k], ")")) ++depth;
        if (is_punct(c[k], "(")) {
          --depth;
          if (depth == 0) break;
        }
        if (k == 0) break;
      }
      if (k == 0 || c[k - 1].kind != TokenKind::kIdentifier) continue;
      const auto& name = c[k - 1].text;
      required_mutexes[name].insert(mutexes.begin(), mutexes.end());
    }
  }
}

void run_concurrency_rules(FileContext& ctx) {
  check_locked_field_access(ctx);
  check_detached_thread(ctx);
  check_blocking_in_callback(ctx);
  check_nondeterministic_parallel(ctx);
}

}  // namespace eucon::analysis
