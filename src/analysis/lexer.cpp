#include "analysis/lexer.h"

#include <cctype>
#include <cstring>

namespace eucon::analysis {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool digit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

// Multi-character punctuators, longest first so maximal munch is a simple
// first-match scan.
constexpr const char* kPuncts[] = {
    "<<=", ">>=", "<=>", "->*", "...", "::", "->", "++", "--", "<<", ">>",
    "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=",
    "&=", "|=", "^=", "##", ".*",
};

// Scanner over the source with line/column bookkeeping.
struct Cursor {
  const std::string& src;
  std::size_t pos = 0;
  std::size_t line = 1;
  std::size_t col = 1;

  bool done() const { return pos >= src.size(); }
  char peek(std::size_t ahead = 0) const {
    return pos + ahead < src.size() ? src[pos + ahead] : '\0';
  }
  bool starts_with(const char* s) const {
    return src.compare(pos, std::strlen(s), s) == 0;
  }
  void advance() {
    if (src[pos] == '\n') {
      ++line;
      col = 1;
    } else {
      ++col;
    }
    ++pos;
  }
  void advance(std::size_t n) {
    for (std::size_t i = 0; i < n && !done(); ++i) advance();
  }
};

class Lexer {
 public:
  explicit Lexer(const std::string& source) : c_{source} {}

  std::vector<Token> run() {
    while (!c_.done()) {
      const char ch = c_.peek();
      if (ch == '\n') {
        line_fresh_ = true;
        c_.advance();
        continue;
      }
      if (ch == ' ' || ch == '\t' || ch == '\r' || ch == '\v' || ch == '\f') {
        c_.advance();
        continue;
      }
      if (ch == '\\' && c_.peek(1) == '\n') {  // line continuation
        c_.advance(2);
        continue;
      }
      if (ch == '/' && c_.peek(1) == '/') {
        lex_line_comment();
        continue;
      }
      if (ch == '/' && c_.peek(1) == '*') {
        lex_block_comment();
        continue;
      }
      if (ch == '#' && line_fresh_) {
        lex_directive();
        continue;
      }
      line_fresh_ = false;
      if (ch == '"') {
        lex_quoted('"', TokenKind::kString);
        continue;
      }
      if (ch == '\'') {
        lex_quoted('\'', TokenKind::kChar);
        continue;
      }
      if (digit(ch) || (ch == '.' && digit(c_.peek(1)))) {
        lex_number();
        continue;
      }
      if (ident_start(ch)) {
        lex_identifier_or_prefixed_literal();
        continue;
      }
      lex_punct();
    }
    return std::move(out_);
  }

 private:
  Token start_token(TokenKind kind) {
    Token t;
    t.kind = kind;
    t.line = c_.line;
    t.col = c_.col;
    t.depth = depth_;
    return t;
  }

  void take(Token& t) { t.text += c_.peek(); c_.advance(); }

  void lex_line_comment() {
    Token t = start_token(TokenKind::kComment);
    while (!c_.done() && c_.peek() != '\n') take(t);
    out_.push_back(std::move(t));
  }

  void lex_block_comment() {
    Token t = start_token(TokenKind::kComment);
    take(t);  // '/'
    take(t);  // '*'
    while (!c_.done()) {
      if (c_.peek() == '*' && c_.peek(1) == '/') {
        take(t);
        take(t);
        break;
      }
      take(t);
    }
    out_.push_back(std::move(t));
  }

  // Emits the directive head as one normalized token ("#pragma"); the rest
  // of the directive line is lexed as ordinary tokens, except an #include
  // header-name, which is consumed as a single string so a path like
  // <sys/socket.h> is never mislexed as operators and comments.
  void lex_directive() {
    Token t = start_token(TokenKind::kDirective);
    // Single-char assignment: GCC 12's -Wrestrict false-fires on the
    // operator=(const char*) memcpy path under ASan's inlining.
    t.text = '#';
    c_.advance();  // '#'
    while (!c_.done() && (c_.peek() == ' ' || c_.peek() == '\t')) c_.advance();
    while (!c_.done() && ident_char(c_.peek())) take(t);
    const bool include = t.text == "#include" || t.text == "#include_next";
    out_.push_back(std::move(t));
    line_fresh_ = false;
    if (!include) return;
    while (!c_.done() && (c_.peek() == ' ' || c_.peek() == '\t')) c_.advance();
    if (c_.peek() == '<') {
      Token name = start_token(TokenKind::kString);
      while (!c_.done() && c_.peek() != '>' && c_.peek() != '\n') take(name);
      if (c_.peek() == '>') take(name);
      out_.push_back(std::move(name));
    }
    // A quoted include is picked up by the normal string path.
  }

  void lex_quoted(char quote, TokenKind kind) {
    Token t = start_token(kind);
    take(t);  // opening quote
    while (!c_.done()) {
      const char ch = c_.peek();
      if (ch == '\\' && c_.peek(1) != '\0' && c_.peek(1) != '\n') {
        take(t);
        take(t);
        continue;
      }
      if (ch == quote) {
        take(t);
        break;
      }
      if (ch == '\n') break;  // unterminated: close at end of line
      take(t);
    }
    out_.push_back(std::move(t));
  }

  // R"delim( ... )delim" — no escape processing inside.
  void lex_raw_string(Token t) {
    take(t);  // opening '"'
    std::string delim;
    while (!c_.done() && c_.peek() != '(' && c_.peek() != '\n' &&
           delim.size() < 16) {
      delim += c_.peek();
      take(t);
    }
    if (c_.peek() != '(') {  // malformed; treat like a plain string
      out_.push_back(std::move(t));
      return;
    }
    take(t);  // '('
    const std::string closer = ")" + delim + "\"";
    while (!c_.done()) {
      if (c_.starts_with(closer.c_str())) {
        for (std::size_t i = 0; i < closer.size(); ++i) take(t);
        break;
      }
      take(t);
    }
    out_.push_back(std::move(t));
  }

  void lex_number() {
    Token t = start_token(TokenKind::kNumber);
    take(t);
    while (!c_.done()) {
      const char ch = c_.peek();
      if (ident_char(ch) || ch == '.') {
        take(t);
        continue;
      }
      // Digit separator: 1'000'000.
      if (ch == '\'' && ident_char(c_.peek(1))) {
        take(t);
        take(t);
        continue;
      }
      // Exponent signs: 1e-3, 0x1p+4.
      if ((ch == '+' || ch == '-') && !t.text.empty()) {
        const char prev = t.text.back();
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          take(t);
          continue;
        }
      }
      break;
    }
    out_.push_back(std::move(t));
  }

  void lex_identifier_or_prefixed_literal() {
    Token t = start_token(TokenKind::kIdentifier);
    while (!c_.done() && ident_char(c_.peek())) take(t);
    const std::string& id = t.text;
    const bool raw_prefix =
        id == "R" || id == "LR" || id == "uR" || id == "UR" || id == "u8R";
    const bool str_prefix = id == "L" || id == "u" || id == "U" || id == "u8";
    if (raw_prefix && c_.peek() == '"') {
      t.kind = TokenKind::kString;
      lex_raw_string(std::move(t));
      return;
    }
    if (str_prefix && (c_.peek() == '"' || c_.peek() == '\'')) {
      const char quote = c_.peek();
      const TokenKind kind =
          quote == '"' ? TokenKind::kString : TokenKind::kChar;
      Token lit = std::move(t);
      lit.kind = kind;
      take(lit);  // opening quote
      while (!c_.done()) {
        const char ch = c_.peek();
        if (ch == '\\' && c_.peek(1) != '\0' && c_.peek(1) != '\n') {
          take(lit);
          take(lit);
          continue;
        }
        if (ch == quote) {
          take(lit);
          break;
        }
        if (ch == '\n') break;
        take(lit);
      }
      out_.push_back(std::move(lit));
      return;
    }
    out_.push_back(std::move(t));
  }

  void lex_punct() {
    Token t = start_token(TokenKind::kPunct);
    for (const char* p : kPuncts) {
      if (c_.starts_with(p)) {
        const std::size_t n = std::strlen(p);
        for (std::size_t i = 0; i < n; ++i) take(t);
        out_.push_back(std::move(t));
        return;
      }
    }
    const char ch = c_.peek();
    if (ch == '{') {
      take(t);
      out_.push_back(std::move(t));
      ++depth_;
      return;
    }
    if (ch == '}') {
      if (depth_ > 0) --depth_;
      t.depth = depth_;  // a '}' reports the depth of its matching '{'
      take(t);
      out_.push_back(std::move(t));
      return;
    }
    take(t);
    out_.push_back(std::move(t));
  }

  Cursor c_;
  std::vector<Token> out_;
  int depth_ = 0;
  bool line_fresh_ = true;  // only whitespace seen since the last newline
};

}  // namespace

std::vector<Token> tokenize(const std::string& source) {
  return Lexer(source).run();
}

bool is_float_literal_text(const std::string& text) {
  if (text.empty() || !(digit(text[0]) || text[0] == '.')) return false;
  const bool hex =
      text.size() > 1 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X');
  if (hex) {
    for (char ch : text)
      if (ch == 'p' || ch == 'P') return true;
    return false;
  }
  for (char ch : text)
    if (ch == '.' || ch == 'e' || ch == 'E') return true;
  return false;
}

bool is_identifier(const Token& t, const char* text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

bool is_punct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

}  // namespace eucon::analysis
