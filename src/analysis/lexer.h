// A small C++ lexer for static-analysis rules (tools/eucon_lint).
//
// Produces a flat token stream with source positions and brace-nesting
// depth. Comments and string/char literals are real tokens, never raw
// text, so a rule that scans identifiers simply cannot fire on a keyword
// that only appears inside a comment or a literal — the false-positive
// class the v1 line scanner suffered from. Handled: line and block
// comments (multi-line), escaped and raw string literals (R"delim(...)"),
// char literals, pp-numbers with digit separators and exponents, maximal-
// munch punctuators, and preprocessor directives (with the #include
// header-name consumed as one literal so paths are never mislexed).
//
// The lexer never fails: unterminated literals and comments are closed at
// end of input. It does not run the preprocessor — tokens inside #if 0
// blocks and macro bodies are lexed like any other code.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace eucon::analysis {

enum class TokenKind {
  kIdentifier,  // identifiers and keywords alike
  kNumber,      // pp-number: 42, 1.5e-3, 0x1p4, 1'000'000, 2.0f
  kString,      // "..."-style literal (any prefix, raw or not), quotes kept
  kChar,        // '...' literal, quotes kept
  kPunct,       // operator/punctuator, longest match
  kComment,     // // or /* */, delimiters kept
  kDirective,   // preprocessor directive head, normalized: "#include"
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;
  std::size_t line = 1;  // 1-based
  std::size_t col = 1;   // 1-based byte offset within the line
  int depth = 0;         // {}-nesting depth; a '}' matches its '{'s depth
};

std::vector<Token> tokenize(const std::string& source);

// True for number-token text that is a floating literal: a decimal with a
// '.' or exponent, or a hex float (binary exponent 'p').
bool is_float_literal_text(const std::string& text);

// Convenience predicates used by the rules.
bool is_identifier(const Token& t, const char* text);
bool is_punct(const Token& t, const char* text);

}  // namespace eucon::analysis
