// The lock rule family: lock-order-inversion, blocking-while-locked,
// callback-under-lock.
//
// LockGraph (lockgraph.{h,cpp}) supplies the may-held-on-entry sets, the
// acquisition-order graph, and the chain rendering; this file turns them
// into findings:
//
//  - lock-order-inversion: a cycle in the acquisition graph (observed
//    acquisitions ∪ EUCON_ACQUIRED_BEFORE declarations) — every edge of the
//    cycle is rendered with its own acquisition chain from the root holder,
//    so a two-mutex inversion prints both paths. Calling a function whose
//    EUCON_EXCLUDES names a currently-held mutex is reported under the same
//    rule: the callee reserving the right to take the mutex while the
//    caller already holds it is a self-deadlock of length one.
//  - blocking-while-locked: a blocking primitive (wait/join/sleep/IO)
//    reached — directly or transitively — while some mutex may be held.
//    CondVar::wait/wait_for through a MutexLock& are excepted at extraction
//    time (they release the mutex while blocked); EUCON_BLOCK_OK on the
//    blocking function, or anywhere along the chain that propagated the
//    hold, is a trust boundary that silences the finding.
//  - callback-under-lock: a user-suppliable std::function field (mined from
//    class declarations) invoked while a mutex may be held — the classic
//    re-entrancy deadlock, since the callback can call back into the
//    component and re-acquire.
//
// Findings land on the offending site; line-level allow() suppression and
// cross-path dedup follow realtime_rules.cpp.
#include <algorithm>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "analysis/callgraph.h"
#include "analysis/lockgraph.h"

namespace eucon::analysis {

namespace {

constexpr const char* kOrderRule = "lock-order-inversion";
constexpr const char* kBlockRule = "blocking-while-locked";
constexpr const char* kCallbackRule = "callback-under-lock";

std::string quoted_list(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += ", ";
    out += "'" + n + "'";
  }
  return out;
}

}  // namespace

std::vector<Finding> CallGraph::check_locks() const {
  std::vector<Finding> findings;
  const LockGraph lg(*this);

  const auto suppressed = [this](const std::string& file, std::size_t line,
                                 const char* rule) {
    const auto file_it = allowed_.find(file);
    if (file_it == allowed_.end()) return false;
    const auto line_it = file_it->second.find(line);
    return line_it != file_it->second.end() && line_it->second.count(rule) > 0;
  };
  std::set<std::string> reported;
  const auto report = [&](const std::string& file, std::size_t line,
                          std::size_t col, const char* rule,
                          const std::string& message) {
    if (suppressed(file, line, rule)) return;
    const std::string key = std::string(rule) + '\x1f' + file + '\x1f' +
                            std::to_string(line) + '\x1f' +
                            std::to_string(col) + '\x1f' + message;
    if (!reported.insert(key).second) return;
    findings.push_back({file, line, col, rule, message});
  };

  // Deterministic iteration regardless of add_file order.
  std::vector<std::size_t> order(functions_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return functions_[a].qname < functions_[b].qname;
  });

  // --- lock-order-inversion: acquisition-graph cycles ---------------------
  for (const std::vector<const LgEdge*>& cycle : lg.cycles()) {
    // Anchor the finding on the first observed edge; a declared-only cycle
    // (contradictory EUCON_ACQUIRED_BEFORE annotations) anchors on the
    // first declaration.
    const LgEdge* anchor = nullptr;
    for (const LgEdge* e : cycle)
      if (!e->declared) {
        anchor = e;
        break;
      }
    if (anchor == nullptr) anchor = cycle.front();

    std::string ring = "'" + cycle.front()->first + "'";
    for (const LgEdge* e : cycle) ring += " -> '" + e->second + "'";
    std::string msg = "mutex acquisition cycle " + ring + ": ";
    bool first_leg = true;
    for (const LgEdge* e : cycle) {
      if (!first_leg) msg += "; ";
      first_leg = false;
      if (e->declared) {
        msg += "EUCON_ACQUIRED_BEFORE declares '" + e->first + "' before '" +
               e->second + "' (" + e->file + ":" + std::to_string(e->line) +
               ")";
      } else {
        msg += lg.hold_chain(e->fn, e->first) + " then acquires '" +
               e->second + "' (" + e->file + ":" + std::to_string(e->line) +
               ")";
      }
    }
    msg += "; pick one global order, document it with EUCON_ACQUIRED_BEFORE, "
           "or drop one of the locks";
    report(anchor->file, anchor->line, anchor->col, kOrderRule, msg);
  }

  // --- lock-order-inversion: EUCON_EXCLUDES violated ----------------------
  for (const std::size_t i : order) {
    const CgFunction& fn = functions_[i];
    for (const CgCall& call : fn.calls) {
      for (const std::size_t t : call.targets) {
        if (t == i) continue;
        const CgFunction& callee = functions_[t];
        if (callee.lock_excludes.empty()) continue;
        const std::vector<std::string> held = lg.effective_held(i, call.held);
        for (const std::string& raw : callee.lock_excludes) {
          const std::string m = LockGraph::qualify(callee, raw);
          if (std::find(held.begin(), held.end(), m) == held.end()) continue;
          report(fn.file, call.line, call.col, kOrderRule,
                 "'" + LockGraph::display(callee.qname) + "' EUCON_EXCLUDES '" +
                     m + "' but is reached with it held: " +
                     lg.hold_chain(i, m) + " -> calls " +
                     LockGraph::display(callee.qname) + " (line " +
                     std::to_string(call.line) +
                     "); release it before the call to avoid the "
                     "self-deadlock");
        }
      }
    }
  }

  // --- blocking-while-locked ---------------------------------------------
  constexpr int kBlockCat = static_cast<int>(RtCategory::kBlock);
  for (const std::size_t i : order) {
    const CgFunction& fn = functions_[i];
    if (fn.ok[kBlockCat]) continue;  // hatched: trusted to manage blocking
    for (const CgBlockSite& site : fn.block_sites) {
      std::vector<std::string> held = lg.effective_held(i, site.held);
      held.erase(std::remove_if(held.begin(), held.end(),
                                [&](const std::string& m) {
                                  return lg.hold_chain_hatched(i, m);
                                }),
                 held.end());
      if (held.empty()) continue;
      report(site.file, site.line, site.col, kBlockRule,
             "'" + site.what + "' " + site.detail + " while holding " +
                 quoted_list(held) + ": " + lg.hold_chain(i, held.front()) +
                 " -> '" + site.what + "' blocks (" + site.file + ":" +
                 std::to_string(site.line) +
                 "); release the lock first, wait through the MutexLock "
                 "(CondVar::wait/wait_for), or hatch with "
                 "EUCON_BLOCK_OK(\"why\")");
    }
  }

  // --- callback-under-lock -----------------------------------------------
  for (const std::size_t i : order) {
    const CgFunction& fn = functions_[i];
    for (const CgCall& call : fn.calls) {
      // A resolved call is a real function (the realtime/order analyses own
      // it); only an unresolved name matching a std::function field is a
      // user callback.
      if (!call.targets.empty()) continue;
      if (callback_fields_.count(call.name) == 0) continue;
      const std::vector<std::string> held = lg.effective_held(i, call.held);
      if (held.empty()) continue;
      report(fn.file, call.line, call.col, kCallbackRule,
             "user callback '" + call.name + "' invoked with " +
                 quoted_list(held) + " held: " + lg.hold_chain(i, held.front()) +
                 " -> invokes '" + call.name + "' (line " +
                 std::to_string(call.line) +
                 "); copy what it needs and invoke after releasing, or "
                 "document the contract and allow(callback-under-lock) the "
                 "line");
    }
  }

  return findings;
}

}  // namespace eucon::analysis
