// Lock-graph construction: mutex name qualification, the may-held-on-entry
// fixpoint, acquisition-order edges, cycle enumeration, and the chain
// rendering shared by the three lock rules. See lockgraph.h for the model.
#include "analysis/lockgraph.h"

#include <algorithm>
#include <numeric>

namespace eucon::analysis {

namespace {

// DFS step of the simple-cycle enumeration. Cycles are discovered from
// their lexicographically smallest node only (every other node on the path
// must compare greater), so each cycle is emitted exactly once and the
// output order is independent of edge insertion order.
void cycle_dfs(const std::map<std::string, std::vector<const LgEdge*>>& adj,
               const std::string& start, const std::string& cur,
               std::vector<const LgEdge*>& path,
               std::set<std::string>& on_path,
               std::vector<std::vector<const LgEdge*>>& out) {
  const auto it = adj.find(cur);
  if (it == adj.end()) return;
  for (const LgEdge* e : it->second) {
    if (e->second == start) {
      path.push_back(e);
      out.push_back(path);
      path.pop_back();
      continue;
    }
    if (e->second <= start || on_path.count(e->second)) continue;
    on_path.insert(e->second);
    path.push_back(e);
    cycle_dfs(adj, start, e->second, path, on_path, out);
    path.pop_back();
    on_path.erase(e->second);
  }
}

}  // namespace

std::string LockGraph::qualify(const CgFunction& fn, const std::string& raw) {
  if (raw.find('.') != std::string::npos ||
      raw.find("->") != std::string::npos)
    return fn.qname + "::" + raw;  // a local object's member: per-function
  if (raw.find("::") != std::string::npos) return raw;  // already qualified
  const std::size_t pos = fn.qname.rfind("::");
  if (pos == std::string::npos) return raw;
  return fn.qname.substr(0, pos) + "::" + raw;
}

std::string LockGraph::display(const std::string& qname) {
  std::size_t pos = qname.rfind("::");
  if (pos == std::string::npos || pos == 0) return qname;
  pos = qname.rfind("::", pos - 1);
  return pos == std::string::npos ? qname : qname.substr(pos + 2);
}

LockGraph::LockGraph(const CallGraph& graph) : g_(graph) {
  const std::vector<CgFunction>& fns = g_.functions();
  required_.resize(fns.size());
  entry_.resize(fns.size());
  for (std::size_t i = 0; i < fns.size(); ++i)
    for (const std::string& raw : fns[i].lock_requires)
      required_[i].push_back(qualify(fns[i], raw));

  // Qualified-name iteration order: the fixpoint's first-writer-wins
  // provenance (and thus every diagnostic chain) must not depend on
  // add_file order.
  std::vector<std::size_t> order(fns.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return fns[a].qname < fns[b].qname;
  });

  // May-held-on-entry fixpoint. A callee may be entered with everything the
  // caller holds at the call site: its own entry set, its EUCON_REQUIRES
  // preconditions, and the locks held lexically at the call. Self-edges are
  // skipped: the conservative member-leaf resolution routinely points
  // `x_.clear()` inside Registry::clear back at Registry::clear itself, and
  // a recursion-with-lock bug is the order analysis's job anyway.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const std::size_t i : order) {
      const CgFunction& fn = fns[i];
      for (const CgCall& call : fn.calls) {
        for (const std::size_t t : call.targets) {
          if (t == i) continue;
          std::map<std::string, LgEntryProv>& dst = entry_[t];
          const auto add = [&](const std::string& m, LgEntryProv::How how) {
            if (dst.emplace(m, LgEntryProv{i, call.line, how}).second)
              changed = true;
          };
          for (const std::string& raw : call.held)
            add(qualify(fn, raw), LgEntryProv::kLocal);
          for (const std::string& m : required_[i])
            add(m, LgEntryProv::kRequires);
          for (const auto& [m, prov] : entry_[i])
            add(m, LgEntryProv::kInherited);
        }
      }
    }
  }

  // Acquisition-order edges: each blocking acquisition of `second` while
  // `first` may be held contributes first-before-second. One representative
  // edge per pair, first writer (in qualified-name order) wins.
  std::set<std::pair<std::string, std::string>> seen;
  for (const std::size_t i : order) {
    const CgFunction& fn = fns[i];
    for (const CgAcquire& acq : fn.acquires) {
      if (!acq.blocking) continue;
      const std::string second = qualify(fn, acq.mutex);
      std::set<std::string> held;
      for (const std::string& raw : acq.held_before)
        held.insert(qualify(fn, raw));
      for (const std::string& m : required_[i]) held.insert(m);
      for (const auto& [m, prov] : entry_[i]) held.insert(m);
      for (const std::string& first : held) {
        if (first == second) continue;
        if (!seen.insert({first, second}).second) continue;
        edges_.push_back(
            {first, second, false, i, acq.file, acq.line, acq.col});
      }
    }
  }
  for (const CgDeclaredOrder& d : g_.declared_order()) {
    if (!seen.insert({d.first, d.second}).second) continue;
    edges_.push_back({d.first, d.second, true, 0, d.file, d.line, 0});
  }
}

std::vector<std::string> LockGraph::effective_held(
    std::size_t fn, const std::vector<std::string>& local_raw) const {
  std::set<std::string> out;
  for (const std::string& raw : local_raw)
    out.insert(qualify(g_.functions()[fn], raw));
  for (const std::string& m : required_[fn]) out.insert(m);
  for (const auto& [m, prov] : entry_[fn]) out.insert(m);
  return {out.begin(), out.end()};
}

std::vector<std::vector<const LgEdge*>> LockGraph::cycles() const {
  std::map<std::string, std::vector<const LgEdge*>> adj;
  for (const LgEdge& e : edges_) adj[e.first].push_back(&e);
  for (auto& [node, out] : adj)
    std::sort(out.begin(), out.end(), [](const LgEdge* a, const LgEdge* b) {
      return a->second < b->second;
    });
  std::vector<std::vector<const LgEdge*>> out;
  for (const auto& [start, unused] : adj) {
    std::vector<const LgEdge*> path;
    std::set<std::string> on_path = {start};
    cycle_dfs(adj, start, start, path, on_path, out);
  }
  return out;
}

std::string LockGraph::hold_chain(std::size_t fn,
                                  const std::string& mutex) const {
  const std::vector<CgFunction>& fns = g_.functions();
  struct Hop {
    std::size_t callee = 0;
    std::size_t line = 0;
  };
  std::vector<Hop> hops;  // innermost (fn-side) first
  std::set<std::size_t> seen = {fn};
  std::size_t cur = fn;
  std::string root;
  for (;;) {
    const CgFunction& f = fns[cur];
    const CgAcquire* local = nullptr;
    for (const CgAcquire& a : f.acquires) {
      if (qualify(f, a.mutex) == mutex) {
        local = &a;
        break;
      }
    }
    if (local != nullptr) {
      root = display(f.qname) + " acquires '" + mutex + "' (" + local->file +
             ":" + std::to_string(local->line) + ")";
      break;
    }
    if (std::find(required_[cur].begin(), required_[cur].end(), mutex) !=
        required_[cur].end()) {
      root = display(f.qname) + " EUCON_REQUIRES '" + mutex + "'";
      break;
    }
    const auto it = entry_[cur].find(mutex);
    if (it == entry_[cur].end()) {
      root = display(f.qname) + " holds '" + mutex + "'";
      break;
    }
    hops.push_back({cur, it->second.call_line});
    cur = it->second.from;
    if (!seen.insert(cur).second) {  // provenance loop: stop at the repeat
      root = display(fns[cur].qname) + " holds '" + mutex + "'";
      break;
    }
  }
  std::string out = root;
  for (auto it = hops.rbegin(); it != hops.rend(); ++it)
    out += " -> calls " + display(fns[it->callee].qname) + " (line " +
           std::to_string(it->line) + ")";
  return out;
}

bool LockGraph::hold_chain_hatched(std::size_t fn,
                                   const std::string& mutex) const {
  const std::vector<CgFunction>& fns = g_.functions();
  constexpr int kBlock = static_cast<int>(RtCategory::kBlock);
  std::set<std::size_t> seen;
  std::size_t cur = fn;
  while (seen.insert(cur).second) {
    if (fns[cur].ok[kBlock]) return true;
    const auto it = entry_[cur].find(mutex);
    if (it == entry_[cur].end()) return false;
    // A locally re-acquired mutex roots the chain here even if an entry
    // provenance also exists; prefer the shorter local chain.
    for (const CgAcquire& a : fns[cur].acquires)
      if (qualify(fns[cur], a.mutex) == mutex) return false;
    cur = it->second.from;
  }
  return false;
}

}  // namespace eucon::analysis
