// Interprocedural lock graph for eucon_lint's lock rule family.
//
// LockGraph is built over a finalized CallGraph from the lock facts the
// extractor recorded per function (RAII scopes, explicit lock()/unlock(),
// EUCON_REQUIRES preconditions, blocking sites). It computes:
//
//  - a may-held-on-entry set per function: the mutexes some caller can hold
//    while calling it, propagated to a fixpoint along the resolved call
//    edges with provenance (which caller, which call site) so diagnostics
//    can print the full chain from the acquiring root;
//  - the global mutex acquisition graph: one first-before-second edge per
//    blocking acquisition performed while another mutex is held (try_lock
//    acquisitions never appear as the blocked side), unioned with the
//    orderings declared via EUCON_ACQUIRED_BEFORE;
//  - simple cycles of that graph — each one a potential deadlock — plus the
//    chain rendering the rules in lock_rules.cpp embed in findings.
//
// Mutex identity is scope-qualified: a member or global name keys under the
// function's enclosing scope ("mutex_" in any eucon::ThreadPool method is
// eucon::ThreadPool::mutex_, so all methods of one class agree), while a
// dotted expression ("progress.mu") keys under the function itself — local
// lock objects in different functions never alias. Like the call graph
// itself this is conservative and over-approximate: extra edges are
// possible, dropped ones are not (within the lexer's view of the code).
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/callgraph.h"

namespace eucon::analysis {

// How a mutex came to be (possibly) held on entry to a function: the caller
// that propagated it and how that caller itself held it.
struct LgEntryProv {
  std::size_t from = 0;       // caller index into CallGraph::functions()
  std::size_t call_line = 0;  // call-site line in the caller
  enum How {
    kLocal,     // the caller acquired it in its own body
    kRequires,  // the caller declares it via EUCON_REQUIRES
    kInherited  // the caller was itself entered with it held
  } how = kLocal;
};

// One first-before-second edge of the mutex acquisition graph.
struct LgEdge {
  std::string first;
  std::string second;
  bool declared = false;  // EUCON_ACQUIRED_BEFORE vs observed in code
  // Provenance: for an observed edge, functions()[fn] acquires `second` at
  // file:line:col while holding `first`; for a declared edge, the
  // annotation's location (fn/col unused).
  std::size_t fn = 0;
  std::string file;
  std::size_t line = 0;
  std::size_t col = 0;
};

class LockGraph {
 public:
  // Builds entry sets, edges, and provenance. `graph` must be finalized.
  explicit LockGraph(const CallGraph& graph);

  // Scope-qualified identity for a mutex spelled `raw` inside `fn`; see the
  // header comment for the keying rules.
  static std::string qualify(const CgFunction& fn, const std::string& raw);

  // Diagnostic name: the last two qualified-name components.
  static std::string display(const std::string& qname);

  const std::map<std::string, LgEntryProv>& entry_held(std::size_t fn) const {
    return entry_[fn];
  }
  const std::vector<std::string>& required(std::size_t fn) const {
    return required_[fn];
  }

  // Everything possibly held at a point in `fn` where `local_raw` (spelled
  // names from the body) is held: entry set ∪ EUCON_REQUIRES ∪ local,
  // qualified, sorted, deduplicated.
  std::vector<std::string> effective_held(
      std::size_t fn, const std::vector<std::string>& local_raw) const;

  const std::vector<LgEdge>& edges() const { return edges_; }

  // Simple cycles of the acquisition graph, deterministic and deduplicated.
  // Each cycle is a closed edge sequence: cycle[i]->second ==
  // cycle[i+1]->first, wrapping at the end.
  std::vector<std::vector<const LgEdge*>> cycles() const;

  // Root-first narrative of how `mutex` (qualified) is held at `fn`:
  // "ThreadPool::enqueue acquires 'eucon::ThreadPool::mutex_'
  // (src/common/thread_pool.cpp:31) -> calls helper (line 34)".
  std::string hold_chain(std::size_t fn, const std::string& mutex) const;

  // True when the provenance chain of `mutex` at `fn` passes through an
  // EUCON_BLOCK_OK-hatched function (a trust boundary for the
  // blocking-while-locked rule; order edges ignore hatches).
  bool hold_chain_hatched(std::size_t fn, const std::string& mutex) const;

 private:
  const CallGraph& g_;
  std::vector<std::vector<std::string>> required_;        // qualified, per fn
  std::vector<std::map<std::string, LgEntryProv>> entry_;  // per fn
  std::vector<LgEdge> edges_;
};

}  // namespace eucon::analysis
