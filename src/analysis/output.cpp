#include "analysis/output.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace fs = std::filesystem;

namespace eucon::analysis {

namespace {

std::string trim(const std::string& s) {
  const std::size_t a = s.find_first_not_of(" \t\r");
  if (a == std::string::npos) return "";
  const std::size_t b = s.find_last_not_of(" \t\r");
  return s.substr(a, b - a + 1);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

}  // namespace

bool parse_baseline(const std::string& text, Baseline& out,
                    std::string& error) {
  std::istringstream in(text);
  std::string raw;
  std::size_t lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const std::string line = trim(raw);
    if (line.empty() || line[0] == '#') continue;
    // <filename>:<rule>[:<max-count>] — filename may not contain ':'.
    const std::size_t first = line.find(':');
    if (first == std::string::npos || first == 0) {
      error = "baseline line " + std::to_string(lineno) +
              ": expected <filename>:<rule>[:<max-count>]";
      return false;
    }
    BaselineEntry entry;
    entry.filename = trim(line.substr(0, first));
    std::string rest = line.substr(first + 1);
    const std::size_t second = rest.find(':');
    if (second != std::string::npos) {
      const std::string count = trim(rest.substr(second + 1));
      rest = rest.substr(0, second);
      char* end = nullptr;
      entry.max_count = std::strtol(count.c_str(), &end, 10);
      if (count.empty() || end == nullptr || *end != '\0' ||
          entry.max_count < 0) {
        error = "baseline line " + std::to_string(lineno) +
                ": bad max-count '" + count + "'";
        return false;
      }
    }
    entry.rule = trim(rest);
    if (!known_rule(entry.rule)) {
      error = "baseline line " + std::to_string(lineno) + ": unknown rule '" +
              entry.rule + "'";
      return false;
    }
    out.entries.push_back(std::move(entry));
  }
  return true;
}

bool load_baseline(const fs::path& path, Baseline& out, std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = "cannot open baseline file '" + path.string() + "'";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_baseline(buf.str(), out, error);
}

fs::path find_repo_root(const fs::path& start) {
  std::error_code ec;
  fs::path dir = fs::absolute(start, ec);
  if (ec) return {};
  dir = dir.lexically_normal();
  if (!fs::is_directory(dir, ec)) dir = dir.parent_path();
  for (; !dir.empty(); dir = dir.parent_path()) {
    if (fs::exists(dir / ".git", ec)) return dir;
    if (dir == dir.root_path()) break;
  }
  return {};
}

void normalize_paths(std::vector<Finding>& findings) {
  // Root discovery walks the filesystem once per distinct parent directory.
  std::map<std::string, fs::path> root_cache;
  for (Finding& f : findings) {
    std::error_code ec;
    fs::path abs = fs::absolute(fs::path(f.file), ec);
    if (ec) continue;
    abs = abs.lexically_normal();
    const std::string parent = abs.parent_path().string();
    auto it = root_cache.find(parent);
    if (it == root_cache.end())
      it = root_cache.emplace(parent, find_repo_root(abs.parent_path())).first;
    const fs::path& root = it->second;
    if (!root.empty()) {
      f.file = abs.lexically_relative(root).generic_string();
    } else {
      f.file = fs::path(f.file).lexically_normal().generic_string();
    }
  }
}

void sort_findings(std::vector<Finding>& findings) {
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     if (a.col != b.col) return a.col < b.col;
                     if (a.rule != b.rule) return a.rule < b.rule;
                     return a.message < b.message;
                   });
}

std::vector<Finding> apply_baseline(const std::vector<Finding>& findings,
                                    Baseline baseline,
                                    std::size_t& suppressed) {
  suppressed = 0;
  std::vector<Finding> kept;
  kept.reserve(findings.size());
  for (const Finding& f : findings) {
    const std::string base = fs::path(f.file).filename().string();
    const std::string full = fs::path(f.file).generic_string();
    bool absorbed = false;
    for (BaselineEntry& e : baseline.entries) {
      const bool by_path = e.filename.find('/') != std::string::npos;
      if ((by_path ? e.filename != full : e.filename != base) ||
          e.rule != f.rule)
        continue;
      if (e.max_count == 0) continue;  // exhausted
      if (e.max_count > 0) --e.max_count;
      absorbed = true;
      break;
    }
    if (absorbed) {
      ++suppressed;
    } else {
      kept.push_back(f);
    }
  }
  return kept;
}

std::string render_baseline(const std::vector<Finding>& findings) {
  std::map<std::pair<std::string, std::string>, long> counts;
  for (const Finding& f : findings)
    ++counts[{fs::path(f.file).filename().string(), f.rule}];
  std::ostringstream out;
  out << "# eucon_lint baseline: <filename>:<rule>:<max-count>\n"
      << "# Burn entries down to zero, then delete them.\n";
  for (const auto& [key, count] : counts)
    out << key.first << ":" << key.second << ":" << count << "\n";
  return out.str();
}

std::string render_text(const std::vector<Finding>& findings) {
  std::ostringstream out;
  for (const Finding& f : findings)
    out << f.file << ":" << f.line << ":" << f.col << ": [" << f.rule << "] "
        << f.message << "\n";
  return out.str();
}

std::string render_json(const std::vector<Finding>& findings,
                        std::size_t baseline_suppressed) {
  std::map<std::string, std::size_t> rule_counts;
  for (const Finding& f : findings) ++rule_counts[f.rule];
  std::ostringstream out;
  out << "{\n"
      << "  \"version\": 3,\n"
      << "  \"count\": " << findings.size() << ",\n"
      << "  \"baseline_suppressed\": " << baseline_suppressed << ",\n"
      << "  \"rule_counts\": {";
  bool first = true;
  for (const auto& [rule, count] : rule_counts) {
    out << (first ? "" : ", ") << "\"" << json_escape(rule)
        << "\": " << count;
    first = false;
  }
  out << "},\n"
      << "  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << (i == 0 ? "" : ",") << "\n    {\"file\": \"" << json_escape(f.file)
        << "\", \"line\": " << f.line << ", \"col\": " << f.col
        << ", \"rule\": \"" << json_escape(f.rule) << "\", \"message\": \""
        << json_escape(f.message) << "\"}";
  }
  out << (findings.empty() ? "" : "\n  ") << "]\n}\n";
  return out.str();
}

bool files_from_compile_commands(const fs::path& path,
                                 std::vector<fs::path>& out,
                                 std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = "cannot open '" + path.string() + "'";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  std::set<std::string> seen;
  const std::string key = "\"file\"";
  std::size_t pos = text.find(key);
  while (pos != std::string::npos) {
    // The opening quote of the value, past the ':' separator.
    const std::size_t q = text.find('"', pos + key.size());
    if (q == std::string::npos) break;
    const std::size_t end = text.find('"', q + 1);
    if (end == std::string::npos) break;
    const std::string file = text.substr(q + 1, end - q - 1);
    if (seen.insert(file).second) out.emplace_back(file);
    pos = text.find(key, end + 1);
  }
  return true;
}

}  // namespace eucon::analysis
