// Output and suppression-file machinery for eucon_lint: text/JSON finding
// rendering, the baseline burn-down file, and compile_commands.json file
// listing.
//
// Baseline format — one entry per line, '#' comments and blanks ignored:
//
//   <filename>:<rule>[:<max-count>]
//
// `filename` is either the file's basename (layout-independent) or — when
// it contains a '/' — a repo-root-relative path such as src/qp/lsqlin.cpp,
// matched against the finding's normalized path so same-named files in
// different directories can be baselined independently. `rule` must exist
// in the registry (a typo is a load error, not a silent no-op), and
// `max-count` caps how many findings the entry may absorb — omitted means
// unlimited. The repo gate ships an EMPTY baseline (tools/lint_baseline.txt);
// the file exists so a future regression can be ratcheted down deliberately
// instead of blocking unrelated work.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "analysis/rules.h"

namespace eucon::analysis {

struct BaselineEntry {
  // Basename, or (when it contains '/') a repo-root-relative path; matched
  // against each finding's file per the header comment.
  std::string filename;
  std::string rule;
  long max_count = -1;  // -1: unlimited
};

struct Baseline {
  std::vector<BaselineEntry> entries;
};

// Parses baseline text. Returns false and sets `error` (with a 1-based line
// number) on a malformed line or an unknown rule name.
bool parse_baseline(const std::string& text, Baseline& out, std::string& error);

// Loads a baseline file from disk; a missing file is an error.
bool load_baseline(const std::filesystem::path& path, Baseline& out,
                   std::string& error);

// Finds the enclosing repository root: the nearest ancestor of `start`
// (made absolute first) that contains a `.git` entry. Empty when none.
std::filesystem::path find_repo_root(const std::filesystem::path& start);

// Rewrites each finding's file to a repo-root-relative generic path ('/'
// separators) so reports and baselines are independent of the invocation
// directory: absolute paths and cwd-relative paths to the same file render
// identically. Each finding's root is discovered from its own location
// (cached per directory); findings outside any repository keep their
// original path, lexically normalized.
void normalize_paths(std::vector<Finding>& findings);

// Canonical finding order: path -> line -> col -> rule -> message. run_lint
// sorts before returning, but path normalization can reorder relative to
// the raw paths the sort saw — callers must re-sort after normalize_paths
// so multi-TU runs (e.g. over compile_commands.json, whose entry order is
// a build-system artifact) emit byte-identical reports.
void sort_findings(std::vector<Finding>& findings);

// Splits findings into kept (returned) and absorbed (counted); entries
// absorb findings in order until their max_count is exhausted. Entries
// containing '/' match the finding's full (normalized) path, other entries
// match its basename.
std::vector<Finding> apply_baseline(const std::vector<Finding>& findings,
                                    Baseline baseline,
                                    std::size_t& suppressed);

// Serializes findings as baseline text (one "<basename>:<rule>:<count>"
// line per file/rule pair, sorted) for --write-baseline.
std::string render_baseline(const std::vector<Finding>& findings);

// One "file:line:col: [rule] message" line per finding.
std::string render_text(const std::vector<Finding>& findings);

// The machine-readable gate format:
//   {"version": 3, "count": N, "baseline_suppressed": M,
//    "rule_counts": {"<rule>": K, ...}, "findings": [...]}
// rule_counts has one entry per rule with at least one finding, sorted by
// rule name, so per-family burn-downs can be tracked without re-deriving
// them from the findings array.
std::string render_json(const std::vector<Finding>& findings,
                        std::size_t baseline_suppressed);

// Extracts the distinct "file" entries from a compile_commands.json so the
// lint gate can target exactly what the build compiles. Minimal parser:
// handles the format CMake emits. Returns false + error if unreadable.
bool files_from_compile_commands(const std::filesystem::path& path,
                                 std::vector<std::filesystem::path>& out,
                                 std::string& error);

}  // namespace eucon::analysis
