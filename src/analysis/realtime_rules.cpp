// The real-time rule family: allocation-in-realtime, blocking-in-realtime,
// nondeterminism-in-realtime.
//
// CallGraphExtractor (callgraph.cpp) already recorded each function's
// direct violations; this file implements the propagation policy. For
// every EUCON_REALTIME root and every category, a breadth-first walk over
// the resolved call edges collects each reachable violation together with
// the call chain that reaches it. An EUCON_*_OK escape hatch on a function
// excuses that category for the function AND for everything reached
// through it (the hatch is a trust boundary, so the walk does not enter);
// a hatch on the root itself silences the whole category for that root.
//
// Findings land on the offending site (not the root), so a shared helper
// that several roots reach is reported once — the first root in qualified-
// name order claims it, and the usual line-level suppression comment on
// the offending line suppresses it exactly like any intra-function rule.
#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/callgraph.h"

namespace eucon::analysis {

namespace {

// Qualified names make good diagnostics but long chains; drop a shared
// leading namespace ("eucon::control::MpcController::update" renders as
// "MpcController::update") while keeping class context.
std::string display_name(const std::string& qname) {
  std::size_t pos = qname.rfind("::");
  if (pos == std::string::npos || pos == 0) return qname;
  pos = qname.rfind("::", pos - 1);
  return pos == std::string::npos ? qname : qname.substr(pos + 2);
}

}  // namespace

std::vector<Finding> CallGraph::check_realtime() const {
  std::vector<Finding> findings;

  // Roots in qualified-name order so output (and the cross-root dedup
  // winner) is deterministic regardless of add_file order.
  std::vector<std::size_t> roots;
  for (std::size_t i = 0; i < functions_.size(); ++i)
    if (functions_[i].realtime) roots.push_back(i);
  std::sort(roots.begin(), roots.end(), [&](std::size_t a, std::size_t b) {
    return functions_[a].qname < functions_[b].qname;
  });

  // (category, file, line, col, what) already reported by an earlier root.
  std::set<std::string> reported;

  for (const std::size_t root : roots) {
    for (int cat = 0; cat < kRtCategoryCount; ++cat) {
      const RtCategory category = static_cast<RtCategory>(cat);
      const std::string rule = rt_rule_name(category);
      if (functions_[root].ok[cat]) continue;  // hatched at the root

      // BFS with a parent map for chain reconstruction.
      std::map<std::size_t, std::size_t> parent;
      std::vector<std::size_t> queue = {root};
      std::set<std::size_t> visited = {root};
      for (std::size_t head = 0; head < queue.size(); ++head) {
        const std::size_t idx = queue[head];
        const CgFunction& fn = functions_[idx];

        for (const CgViolation& v : fn.violations) {
          if (v.category != category) continue;
          // Line-level allow() suppression, same semantics as
          // FileContext::report.
          const auto file_it = allowed_.find(v.file);
          if (file_it != allowed_.end()) {
            const auto line_it = file_it->second.find(v.line);
            if (line_it != file_it->second.end() &&
                line_it->second.count(rule))
              continue;
          }
          const std::string key = rule + '\x1f' + v.file + '\x1f' +
                                  std::to_string(v.line) + '\x1f' +
                                  std::to_string(v.col) + '\x1f' + v.what;
          if (!reported.insert(key).second) continue;

          std::string chain = display_name(fn.qname);
          for (std::size_t node = idx; node != root;) {
            node = parent.at(node);
            chain = display_name(functions_[node].qname) + " -> " + chain;
          }
          findings.push_back(
              {v.file, v.line, v.col, rule,
               "'" + v.what + "' " + v.detail + " on the EUCON_REALTIME path " +
                   chain + "; fix it, hatch the callee with EUCON_" +
                   (category == RtCategory::kAlloc
                        ? "ALLOC"
                        : category == RtCategory::kBlock ? "BLOCK" : "NONDET") +
                   "_OK(\"why\"), or allow(" + rule + ") the line"});
        }

        for (const std::size_t callee : fn.callees) {
          if (visited.count(callee)) continue;
          if (functions_[callee].ok[cat]) continue;  // trust boundary
          visited.insert(callee);
          parent[callee] = idx;
          queue.push_back(callee);
        }
      }
    }
  }
  return findings;
}

}  // namespace eucon::analysis
