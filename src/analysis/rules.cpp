#include "analysis/rules.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "analysis/callgraph.h"
#include "analysis/output.h"

namespace fs = std::filesystem;

namespace eucon::analysis {

namespace {

const std::vector<RuleInfo> kRegistry = {
    {"raw-assert", "use EUCON_ASSERT/EUCON_REQUIRE instead of assert()"},
    {"float-equality",
     "==/!= against a floating literal; compare with a tolerance"},
    {"banned-random", "std::rand/srand/time(nullptr); use common/rng.h streams"},
    {"using-namespace-header",
     "`using namespace` in a header leaks into every includer"},
    {"missing-pragma-once", "header lacks #pragma once"},
    {"raw-throw",
     "throw outside common/check.h; use EUCON_FAIL/EUCON_REQUIRE helpers"},
    {"narrowing-size-cast",
     "static_cast<int> of a size-like value; use eucon::narrow<int>"},
    {"locked-field-access",
     "EUCON_GUARDED_BY field touched in a scope that does not lock its mutex"},
    {"detached-thread",
     "std::thread::detach or raw std::thread outside common/thread_pool"},
    {"blocking-in-callback",
     "blocking call (.get()/wait()/sleep_for) inside a pooled task lambda"},
    {"nondeterministic-parallel",
     "shared/static RNG state or std::random_device; derive per-run streams"},
    {"allocation-in-realtime",
     "heap allocation reachable from an EUCON_REALTIME function"},
    {"blocking-in-realtime",
     "lock/wait/sleep/IO/throw reachable from an EUCON_REALTIME function"},
    {"nondeterminism-in-realtime",
     "rand/time/clock read reachable from an EUCON_REALTIME function"},
    {"lock-order-inversion",
     "cycle in the mutex acquisition graph (or EUCON_EXCLUDES violated); "
     "potential deadlock"},
    {"blocking-while-locked",
     "wait/join/sleep/IO reached with a mutex held (CondVar wait through "
     "the MutexLock excepted)"},
    {"callback-under-lock",
     "user-supplied std::function field invoked with a mutex held"},
};

// Parses one comment token's suppression markers — e.g.
// `eucon-lint: allow(raw-assert)` — into the per-line suppression map;
// unknown rule names become findings.
void parse_suppressions(const Token& comment, FileContext& ctx) {
  const std::string marker = "eucon-lint: allow(";
  std::size_t pos = comment.text.find(marker);
  while (pos != std::string::npos) {
    // The marker's line within a multi-line block comment.
    const std::size_t line =
        comment.line +
        static_cast<std::size_t>(
            std::count(comment.text.begin(),
                       comment.text.begin() +
                           static_cast<std::ptrdiff_t>(pos), '\n'));
    const std::size_t open = pos + marker.size();
    const std::size_t close = comment.text.find(')', open);
    if (close == std::string::npos) break;
    std::istringstream names(comment.text.substr(open, close - open));
    std::string name;
    while (std::getline(names, name, ',')) {
      name.erase(0, name.find_first_not_of(" \t"));
      name.erase(name.find_last_not_of(" \t") + 1);
      if (name.empty()) continue;
      if (known_rule(name)) {
        ctx.allowed[line].insert(name);
      } else {
        ctx.findings->push_back({ctx.file, line, comment.col,
                                 "unknown-suppression",
                                 "allow() names unknown rule '" + name + "'"});
      }
    }
    pos = comment.text.find(marker, close);
  }
}

bool header_ext(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp";
}

FileContext make_context(const std::string& display_path,
                         const std::string& content,
                         const std::string& companion_header,
                         std::vector<Finding>& findings) {
  const fs::path p(display_path);
  FileContext ctx;
  ctx.file = display_path;
  ctx.findings = &findings;
  ctx.header = header_ext(p);
  const std::string parent = p.parent_path().filename().string();
  ctx.check_header = p.filename() == "check.h" && parent == "common";
  ctx.thread_owner =
      parent == "common" &&
      (p.stem() == "thread_pool" || p.filename() == "mutex.h");

  ctx.tokens = tokenize(content);
  ctx.code.reserve(ctx.tokens.size());
  for (const Token& t : ctx.tokens) {
    if (t.kind == TokenKind::kComment) {
      parse_suppressions(t, ctx);
    } else {
      ctx.code.push_back(t);
    }
  }

  if (!companion_header.empty()) {
    std::vector<Token> header_code;
    for (Token& t : tokenize(companion_header))
      if (t.kind != TokenKind::kComment) header_code.push_back(std::move(t));
    collect_lock_discipline(header_code, ctx.guarded_fields,
                            ctx.required_mutexes);
  }
  collect_lock_discipline(ctx.code, ctx.guarded_fields, ctx.required_mutexes);
  return ctx;
}

bool should_skip_dir(const fs::path& dir) {
  const std::string name = dir.filename().string();
  return name == ".git" || name.rfind("build", 0) == 0 ||
         name == "lint_selftest";
}

bool lintable_file(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

void collect_files(const fs::path& root, std::vector<fs::path>& out) {
  if (fs::is_regular_file(root)) {
    if (lintable_file(root)) out.push_back(root);
    return;
  }
  if (!fs::is_directory(root)) return;
  std::vector<fs::path> entries;
  for (const auto& entry : fs::directory_iterator(root))
    entries.push_back(entry.path());
  std::sort(entries.begin(), entries.end());
  for (const fs::path& p : entries) {
    if (fs::is_directory(p)) {
      if (!should_skip_dir(p)) collect_files(p, out);
    } else if (lintable_file(p)) {
      out.push_back(p);
    }
  }
}

std::string read_file_or_empty(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return "";
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Feeds one already-built context into the interprocedural graph, plus the
// companion header's tokens when supplied. The companion's allow() comments
// are parsed silently (its own lint pass reports unknown-suppression when
// the header is linted as a file in its own right).
void feed_graph(CallGraph& graph, const FileContext& ctx,
                const std::string& companion_display,
                const std::string& companion_content) {
  graph.add_file(ctx.file, ctx.code, ctx.allowed);
  if (companion_content.empty() || graph.has_file(companion_display)) return;
  std::vector<Finding> scratch;
  FileContext hdr;
  hdr.file = companion_display;
  hdr.findings = &scratch;
  std::vector<Token> code;
  for (Token& t : tokenize(companion_content)) {
    if (t.kind == TokenKind::kComment)
      parse_suppressions(t, hdr);
    else
      code.push_back(std::move(t));
  }
  graph.add_file(companion_display, code, hdr.allowed);
}

// Finds the same-directory companion header of a .cpp, if any.
fs::path companion_path(const fs::path& path) {
  for (const char* ext : {".h", ".hpp"}) {
    fs::path sibling = path;
    sibling.replace_extension(ext);
    if (fs::exists(sibling)) return sibling;
  }
  return {};
}

// Lints one file into `findings` and feeds the shared call graph.
void lint_one(const fs::path& path, std::vector<Finding>& findings,
              CallGraph& graph) {
  std::ifstream probe(path);
  if (!probe) {
    findings.push_back({path.string(), 0, 0, "io-error", "cannot open file"});
    return;
  }
  std::string companion;
  fs::path companion_file;
  if (!header_ext(path)) {
    // A .cpp sees the lock discipline its same-directory header declares.
    companion_file = companion_path(path);
    if (!companion_file.empty()) companion = read_file_or_empty(companion_file);
  }
  FileContext ctx =
      make_context(path.string(), read_file_or_empty(path), companion,
                   findings);
  run_style_rules(ctx);
  run_concurrency_rules(ctx);
  feed_graph(graph, ctx, companion_file.string(), companion);
}

}  // namespace

const std::vector<RuleInfo>& rule_registry() { return kRegistry; }

bool known_rule(const std::string& name) {
  for (const RuleInfo& r : kRegistry)
    if (name == r.name) return true;
  return false;
}

void FileContext::report(std::size_t line, std::size_t col,
                         const std::string& rule, const std::string& message) {
  const auto it = allowed.find(line);
  if (it != allowed.end() && it->second.count(rule)) return;
  findings->push_back({file, line, col, rule, message});
}

std::vector<Finding> lint_source(const std::string& display_path,
                                 const std::string& content,
                                 const std::string& companion_header) {
  std::vector<Finding> findings;
  FileContext ctx =
      make_context(display_path, content, companion_header, findings);
  run_style_rules(ctx);
  run_concurrency_rules(ctx);
  // Single-TU interprocedural pass: the companion header contributes its
  // declarations/annotations to the graph under a synthesized .h path.
  CallGraph graph;
  fs::path companion_display(display_path);
  companion_display.replace_extension(".h");
  feed_graph(graph, ctx, companion_display.string(), companion_header);
  graph.finalize();
  std::vector<Finding> rt = graph.check_realtime();
  findings.insert(findings.end(), std::make_move_iterator(rt.begin()),
                  std::make_move_iterator(rt.end()));
  std::vector<Finding> lk = graph.check_locks();
  findings.insert(findings.end(), std::make_move_iterator(lk.begin()),
                  std::make_move_iterator(lk.end()));
  return findings;
}

std::vector<Finding> lint_file(const fs::path& path) {
  std::vector<Finding> findings;
  CallGraph graph;
  lint_one(path, findings, graph);
  graph.finalize();
  std::vector<Finding> rt = graph.check_realtime();
  findings.insert(findings.end(), std::make_move_iterator(rt.begin()),
                  std::make_move_iterator(rt.end()));
  std::vector<Finding> lk = graph.check_locks();
  findings.insert(findings.end(), std::make_move_iterator(lk.begin()),
                  std::make_move_iterator(lk.end()));
  return findings;
}

std::vector<Finding> run_lint(const std::vector<fs::path>& roots) {
  std::vector<fs::path> files;
  for (const fs::path& r : roots) collect_files(r, files);
  std::vector<Finding> findings;
  // One graph across every TU in the run: a violation in a helper defined
  // in another file is still attributed to the realtime root that reaches
  // it (multi-TU merging happens in CallGraph::add_function by qualified
  // name).
  CallGraph graph;
  for (const fs::path& f : files) lint_one(f, findings, graph);
  graph.finalize();
  std::vector<Finding> rt = graph.check_realtime();
  findings.insert(findings.end(), std::make_move_iterator(rt.begin()),
                  std::make_move_iterator(rt.end()));
  std::vector<Finding> lk = graph.check_locks();
  findings.insert(findings.end(), std::make_move_iterator(lk.begin()),
                  std::make_move_iterator(lk.end()));
  sort_findings(findings);
  return findings;
}

}  // namespace eucon::analysis
