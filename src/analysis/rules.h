// The eucon_lint rule engine: file contexts, the rule registry, and the
// lint entry points shared by the CLI (tools/eucon_lint.cpp) and the unit
// tests (which lint in-memory sources directly, no subprocess).
//
// Rules run over the token stream from analysis/lexer.h. Suppressions are
// parsed from comment tokens — `// eucon-lint: allow(raw-assert, raw-throw)`
// disables those rules for findings on the comment's line, and a
// suppression naming an unknown rule is itself a finding
// (unknown-suppression), so annotations cannot rot silently.
//
// Adding a rule: implement a `void rule(FileContext&)` in style_rules.cpp
// or concurrency_rules.cpp, report through FileContext::report (which
// applies suppressions), and register the name + description in
// rule_registry() in rules.cpp. docs/quality.md walks through an example.
#pragma once

#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/lexer.h"

namespace eucon::analysis {

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::size_t col = 0;
  std::string rule;
  std::string message;
};

struct RuleInfo {
  const char* name;
  const char* description;
};

// All rules, in reporting order. The registry is the single source of
// truth: --list-rules prints it, suppression and baseline validation check
// names against it.
const std::vector<RuleInfo>& rule_registry();
bool known_rule(const std::string& name);

// Everything a rule sees about one file.
struct FileContext {
  std::string file;  // display path, used verbatim in findings
  bool header = false;
  // common/check.h is the sanctioned home of throw/assert machinery; the
  // code-pattern rules skip it (missing-pragma-once still applies).
  bool check_header = false;
  // common/thread_pool.* and common/mutex.h own the raw threading
  // primitives; detached-thread does not apply to them.
  bool thread_owner = false;

  std::vector<Token> tokens;  // full stream, comments and directives included
  std::vector<Token> code;    // comments stripped (directives kept)

  // Header-declared lock discipline, visible to rules linting a .cpp file:
  // field -> guarding mutex from EUCON_GUARDED_BY, and method -> required
  // mutexes from EUCON_REQUIRES. Populated from this file and, for a .cpp,
  // from its same-directory companion header.
  std::map<std::string, std::string> guarded_fields;
  std::map<std::string, std::set<std::string>> required_mutexes;

  // Reports unless `rule` is allow()'d on `line`.
  void report(std::size_t line, std::size_t col, const std::string& rule,
              const std::string& message);

  std::vector<Finding>* findings = nullptr;
  std::map<std::size_t, std::set<std::string>> allowed;  // line -> rules
};

// The rule sets (style_rules.cpp / concurrency_rules.cpp).
void run_style_rules(FileContext& ctx);
void run_concurrency_rules(FileContext& ctx);

// Mines EUCON_GUARDED_BY / EUCON_REQUIRES declarations out of a token
// stream into the discipline maps (also used on a .cpp's companion header).
void collect_lock_discipline(
    const std::vector<Token>& code,
    std::map<std::string, std::string>& guarded_fields,
    std::map<std::string, std::set<std::string>>& required_mutexes);

// Lints one in-memory source. `display_path` drives the header/exemption
// flags exactly as an on-disk path would; `companion_header` optionally
// supplies the header text a .cpp's lock-discipline context is mined from.
std::vector<Finding> lint_source(const std::string& display_path,
                                 const std::string& content,
                                 const std::string& companion_header = "");

// Lints one file from disk (loading the companion header if present).
std::vector<Finding> lint_file(const std::filesystem::path& path);

// Walks the roots (files or directories; build*/.git/lint_selftest skipped),
// lints every .h/.hpp/.cpp/.cc, and returns findings sorted by position.
std::vector<Finding> run_lint(const std::vector<std::filesystem::path>& roots);

}  // namespace eucon::analysis
