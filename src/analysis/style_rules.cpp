// The original eucon_lint rule set, ported from the v1 line scanner onto
// the token stream. Comments and literals are distinct token kinds, so the
// in-comment / in-string false-positive class is gone by construction.
#include <string>
#include <vector>

#include "analysis/rules.h"

namespace eucon::analysis {

namespace {

bool ident_in(const Token& t, std::initializer_list<const char*> names) {
  if (t.kind != TokenKind::kIdentifier) return false;
  for (const char* n : names)
    if (t.text == n) return true;
  return false;
}

void check_raw_assert(FileContext& ctx) {
  const std::vector<Token>& c = ctx.code;
  for (std::size_t i = 0; i + 1 < c.size(); ++i) {
    if (is_identifier(c[i], "assert") && is_punct(c[i + 1], "("))
      ctx.report(c[i].line, c[i].col, "raw-assert",
                 "raw assert(); use EUCON_ASSERT (invariant) or "
                 "EUCON_REQUIRE (precondition)");
  }
}

void check_float_equality(FileContext& ctx) {
  const std::vector<Token>& c = ctx.code;
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (!is_punct(c[i], "==") && !is_punct(c[i], "!=")) continue;
    if (i > 0 && is_identifier(c[i - 1], "operator")) continue;

    const Token* lhs = i > 0 ? &c[i - 1] : nullptr;
    // A sign right of the operator binds to the literal: x == -1.0.
    const Token* rhs = nullptr;
    if (i + 1 < c.size()) {
      rhs = &c[i + 1];
      if ((is_punct(*rhs, "-") || is_punct(*rhs, "+")) && i + 2 < c.size())
        rhs = &c[i + 2];
    }
    const Token* lit = nullptr;
    if (lhs != nullptr && lhs->kind == TokenKind::kNumber &&
        is_float_literal_text(lhs->text))
      lit = lhs;
    else if (rhs != nullptr && rhs->kind == TokenKind::kNumber &&
             is_float_literal_text(rhs->text))
      lit = rhs;
    if (lit != nullptr)
      ctx.report(c[i].line, c[i].col, "float-equality",
                 "==/!= against floating literal '" + lit->text +
                     "'; compare with an explicit tolerance");
  }
}

void check_banned_random(FileContext& ctx) {
  const std::vector<Token>& c = ctx.code;
  for (std::size_t i = 0; i + 1 < c.size(); ++i) {
    if (ident_in(c[i], {"rand", "srand", "random_shuffle"}) &&
        is_punct(c[i + 1], "(")) {
      ctx.report(c[i].line, c[i].col, "banned-random",
                 "banned '" + c[i].text +
                     "'; all randomness must flow from common/rng.h");
      continue;
    }
    if (is_identifier(c[i], "time") && is_punct(c[i + 1], "(") &&
        i + 3 < c.size() &&
        (is_identifier(c[i + 2], "nullptr") ||
         is_identifier(c[i + 2], "NULL")) &&
        is_punct(c[i + 3], ")"))
      ctx.report(c[i].line, c[i].col, "banned-random",
                 "wall-clock seeding defeats reproducibility; take a seed "
                 "parameter instead");
  }
}

void check_using_namespace(FileContext& ctx) {
  const std::vector<Token>& c = ctx.code;
  for (std::size_t i = 0; i + 1 < c.size(); ++i) {
    if (is_identifier(c[i], "using") && is_identifier(c[i + 1], "namespace"))
      ctx.report(c[i].line, c[i].col, "using-namespace-header",
                 "`using namespace` in a header pollutes every includer");
  }
}

void check_pragma_once(FileContext& ctx) {
  const std::vector<Token>& c = ctx.code;
  for (std::size_t i = 0; i + 1 < c.size(); ++i) {
    if (c[i].kind == TokenKind::kDirective && c[i].text == "#pragma" &&
        is_identifier(c[i + 1], "once"))
      return;
  }
  ctx.report(1, 1, "missing-pragma-once", "header lacks #pragma once");
}

void check_raw_throw(FileContext& ctx) {
  for (const Token& t : ctx.code) {
    if (is_identifier(t, "throw"))
      ctx.report(t.line, t.col, "raw-throw",
                 "raw throw; raise via EUCON_REQUIRE/EUCON_ASSERT/"
                 "EUCON_FAIL so all errors share one shape");
  }
}

void check_narrowing_cast(FileContext& ctx) {
  const std::vector<Token>& c = ctx.code;
  for (std::size_t i = 0; i + 4 < c.size(); ++i) {
    if (!is_identifier(c[i], "static_cast") || !is_punct(c[i + 1], "<") ||
        !is_identifier(c[i + 2], "int") || !is_punct(c[i + 3], ">") ||
        !is_punct(c[i + 4], "("))
      continue;
    // Scan the balanced argument for size-like expressions.
    int depth = 1;
    bool size_like = false;
    for (std::size_t j = i + 5; j < c.size() && depth > 0; ++j) {
      if (is_punct(c[j], "(")) ++depth;
      if (is_punct(c[j], ")")) --depth;
      if (depth <= 0) break;
      if (is_identifier(c[j], "size_t")) size_like = true;
      if ((is_punct(c[j], ".") || is_punct(c[j], "->")) && j + 2 < c.size() &&
          ident_in(c[j + 1], {"size", "rows", "cols", "length"}) &&
          is_punct(c[j + 2], "("))
        size_like = true;
    }
    if (size_like)
      ctx.report(c[i].line, c[i].col, "narrowing-size-cast",
                 "static_cast<int> of size-like expression; use "
                 "eucon::narrow<int> (checked) instead");
  }
}

}  // namespace

void run_style_rules(FileContext& ctx) {
  if (ctx.header) check_pragma_once(ctx);
  if (ctx.check_header) return;
  check_raw_assert(ctx);
  check_float_equality(ctx);
  check_banned_random(ctx);
  check_raw_throw(ctx);
  check_narrowing_cast(ctx);
  if (ctx.header) check_using_namespace(ctx);
}

}  // namespace eucon::analysis
