// Clang thread-safety capability annotations, no-ops on other compilers.
//
// The macros mirror the attribute set documented in clang's Thread Safety
// Analysis guide, spelled EUCON_* so call sites read as project vocabulary.
// They attach compile-time lock discipline to declarations: which mutex
// guards a field, which capability a function requires, what a scoped lock
// acquires. Under clang the build presets add -Wthread-safety (and the
// default -Werror), so a guarded field touched without its mutex is a
// build break; under GCC every macro expands to nothing and the code is
// ordinary C++.
//
// libstdc++'s std::mutex/std::lock_guard carry no capability annotations,
// so the analysis cannot see through them — use eucon::Mutex and
// eucon::MutexLock (common/mutex.h), which wrap the std types and carry
// the attributes.
//
// tools/eucon_lint's locked-field-access rule reads the same annotations
// textually, so the discipline is also checked (approximately) on GCC-only
// setups and inside files clang never compiles (headers without a TU).
#pragma once

#if defined(__clang__)
#define EUCON_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define EUCON_THREAD_ANNOTATION(x)
#endif

// Type annotations.
#define EUCON_CAPABILITY(x) EUCON_THREAD_ANNOTATION(capability(x))
#define EUCON_SCOPED_CAPABILITY EUCON_THREAD_ANNOTATION(scoped_lockable)

// Data-member annotations.
#define EUCON_GUARDED_BY(x) EUCON_THREAD_ANNOTATION(guarded_by(x))
#define EUCON_PT_GUARDED_BY(x) EUCON_THREAD_ANNOTATION(pt_guarded_by(x))

// Function annotations.
#define EUCON_REQUIRES(...) \
  EUCON_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define EUCON_ACQUIRE(...) \
  EUCON_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define EUCON_RELEASE(...) \
  EUCON_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define EUCON_TRY_ACQUIRE(...) \
  EUCON_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define EUCON_EXCLUDES(...) EUCON_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
// Declares a global acquisition order between mutex members: a mutex
// annotated EUCON_ACQUIRED_BEFORE(other) must always be taken before
// `other` when both are held. clang checks it under -Wthread-safety-beta;
// tools/eucon_lint reads it textually and folds the declared edges into the
// whole-repo acquisition graph checked by rule lock-order-inversion.
// clang only accepts arguments naming members of the same class, so keep
// cross-class ordering contracts in comments plus the lint graph.
#define EUCON_ACQUIRED_BEFORE(...) \
  EUCON_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define EUCON_RETURN_CAPABILITY(x) EUCON_THREAD_ANNOTATION(lock_returned(x))
#define EUCON_NO_THREAD_SAFETY_ANALYSIS \
  EUCON_THREAD_ANNOTATION(no_thread_safety_analysis)

// ---------------------------------------------------------------------------
// Real-time-path contracts, read textually by tools/eucon_lint (v3). No
// compiler ever sees anything — every macro below expands to nothing.
// Placement is trailing: after the parameter list and cv/ref/override
// specifiers, before the body or the terminating ';'.
//
//   const Vector& update(const Vector& u) EUCON_REALTIME;
//   void add(std::string_view n) EUCON_REALTIME
//       EUCON_BLOCK_OK("one uncontended mutex per sample, by design");
//
// EUCON_REALTIME marks a function as a sampling-period hot-path root: the
// linter extracts the call graph and flags any allocation, blocking call,
// or nondeterminism source reachable from it (rules allocation-in-realtime,
// blocking-in-realtime, nondeterminism-in-realtime), printing the full call
// chain. The *_OK escape hatches acknowledge one category for a function
// and for everything reached through it; always pass a justification
// string. docs/quality.md documents the contract and when to hatch vs fix.
#define EUCON_REALTIME
#define EUCON_ALLOC_OK(...)
#define EUCON_BLOCK_OK(...)
#define EUCON_NONDET_OK(...)
