// Clang thread-safety capability annotations, no-ops on other compilers.
//
// The macros mirror the attribute set documented in clang's Thread Safety
// Analysis guide, spelled EUCON_* so call sites read as project vocabulary.
// They attach compile-time lock discipline to declarations: which mutex
// guards a field, which capability a function requires, what a scoped lock
// acquires. Under clang the build presets add -Wthread-safety (and the
// default -Werror), so a guarded field touched without its mutex is a
// build break; under GCC every macro expands to nothing and the code is
// ordinary C++.
//
// libstdc++'s std::mutex/std::lock_guard carry no capability annotations,
// so the analysis cannot see through them — use eucon::Mutex and
// eucon::MutexLock (common/mutex.h), which wrap the std types and carry
// the attributes.
//
// tools/eucon_lint's locked-field-access rule reads the same annotations
// textually, so the discipline is also checked (approximately) on GCC-only
// setups and inside files clang never compiles (headers without a TU).
#pragma once

#if defined(__clang__)
#define EUCON_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define EUCON_THREAD_ANNOTATION(x)
#endif

// Type annotations.
#define EUCON_CAPABILITY(x) EUCON_THREAD_ANNOTATION(capability(x))
#define EUCON_SCOPED_CAPABILITY EUCON_THREAD_ANNOTATION(scoped_lockable)

// Data-member annotations.
#define EUCON_GUARDED_BY(x) EUCON_THREAD_ANNOTATION(guarded_by(x))
#define EUCON_PT_GUARDED_BY(x) EUCON_THREAD_ANNOTATION(pt_guarded_by(x))

// Function annotations.
#define EUCON_REQUIRES(...) \
  EUCON_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define EUCON_ACQUIRE(...) \
  EUCON_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define EUCON_RELEASE(...) \
  EUCON_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define EUCON_TRY_ACQUIRE(...) \
  EUCON_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define EUCON_EXCLUDES(...) EUCON_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define EUCON_RETURN_CAPABILITY(x) EUCON_THREAD_ANNOTATION(lock_returned(x))
#define EUCON_NO_THREAD_SAFETY_ANALYSIS \
  EUCON_THREAD_ANNOTATION(no_thread_safety_analysis)
