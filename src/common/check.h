// Precondition / invariant checking macros and numeric guards.
//
// EUCON_REQUIRE is for preconditions on public APIs (misuse by the caller)
// and throws std::invalid_argument. EUCON_ASSERT is for internal invariants
// and throws std::logic_error; it stays enabled in release builds because
// every call site is far from any hot loop's inner body.
//
// EUCON_FAIL / EUCON_FAIL_INVALID are the only sanctioned way to raise an
// error outside these macros: every `throw` in the project lives in this
// header so exception types and messages stay uniform (and eucon_lint's
// raw-throw rule enforces it).
//
// EUCON_CHECK_FINITE_* are the numeric-guard layer: compiled in only when
// EUCON_NUMERIC_CHECKS is defined (cmake -DEUCON_NUMERIC_CHECKS=ON), they
// sweep operands/results of linalg and solver operations with std::isfinite
// and throw eucon::NumericError naming the first offending operation, entry
// and shape — so a NaN is pinpointed at its origin instead of surfacing in
// a report many sampling periods later. When the option is off every guard
// macro expands to ((void)0): arguments are not evaluated and no code is
// generated.
#pragma once

#include <cmath>
#include <cstddef>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace eucon {

// Thrown by the numeric-guard layer on the first non-finite value.
class NumericError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Checked narrowing conversion: static_cast that throws (via EUCON_ASSERT
// semantics) when the value does not survive the round trip. Use instead of
// raw static_cast<int>(x) on std::size_t quantities.
template <typename To, typename From>
constexpr To narrow(From value) {
  const To result = static_cast<To>(value);
  if (std::cmp_not_equal(result, value))
    throw std::logic_error("internal invariant violated: lossy narrowing conversion");
  return result;
}

}  // namespace eucon

namespace eucon::detail {

[[noreturn]] inline void throw_require(const char* cond, const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << "requirement failed: " << cond << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_assert(const char* cond, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "internal invariant violated: " << cond << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

[[noreturn]] inline void throw_runtime(const std::string& msg) {
  throw std::runtime_error(msg);
}

[[noreturn]] inline void throw_invalid(const std::string& msg) {
  throw std::invalid_argument(msg);
}

[[noreturn]] inline void throw_nonfinite(const char* op, std::size_t rows,
                                         std::size_t cols, std::size_t flat_index,
                                         double value) {
  std::ostringstream os;
  os << "non-finite value in " << op << ": ";
  if (rows == 1 && cols == 1) {
    os << "scalar";
  } else if (cols == 1) {
    os << "entry " << flat_index << " of " << rows << "-vector";
  } else {
    os << "entry (" << flat_index / cols << ',' << flat_index % cols << ") of "
       << rows << 'x' << cols << " matrix";
  }
  os << " is " << value;
  throw NumericError(os.str());
}

inline void check_finite_scalar(const char* op, double v) {
  if (!std::isfinite(v)) throw_nonfinite(op, 1, 1, 0, v);
}

inline void check_finite_range(const char* op, const double* data,
                               std::size_t rows, std::size_t cols) {
  const std::size_t n = rows * cols;
  for (std::size_t i = 0; i < n; ++i)
    if (!std::isfinite(data[i])) throw_nonfinite(op, rows, cols, i, data[i]);
}

}  // namespace eucon::detail

#define EUCON_REQUIRE(cond, msg)                                             \
  do {                                                                       \
    if (!(cond)) ::eucon::detail::throw_require(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)

#define EUCON_ASSERT(cond, msg)                                              \
  do {                                                                       \
    if (!(cond)) ::eucon::detail::throw_assert(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)

// Unconditional failures (data/config errors vs. caller misuse).
#define EUCON_FAIL(msg) ::eucon::detail::throw_runtime((msg))
#define EUCON_FAIL_INVALID(msg) ::eucon::detail::throw_invalid((msg))

// ---------------------------------------------------------------------------
// Numeric guards. EUCON_CHECK_FINITE_VEC / _MAT are duck-typed: any object
// with data()/size() (resp. data()/rows()/cols()) works, so linalg types
// never need to be visible here.
// ---------------------------------------------------------------------------
#ifdef EUCON_NUMERIC_CHECKS

namespace eucon {
inline constexpr bool kNumericChecksEnabled = true;
}

#define EUCON_CHECK_FINITE_SCALAR(op, v) \
  ::eucon::detail::check_finite_scalar((op), (v))
#define EUCON_CHECK_FINITE_RANGE(op, data, rows, cols) \
  ::eucon::detail::check_finite_range((op), (data), (rows), (cols))
#define EUCON_CHECK_FINITE_VEC(op, vec) \
  ::eucon::detail::check_finite_range((op), (vec).data().data(), (vec).size(), 1)
#define EUCON_CHECK_FINITE_MAT(op, mat)                                   \
  ::eucon::detail::check_finite_range((op), (mat).data().data(), (mat).rows(), \
                                      (mat).cols())

#else  // !EUCON_NUMERIC_CHECKS — guards compile to nothing.

namespace eucon {
inline constexpr bool kNumericChecksEnabled = false;
}

#define EUCON_CHECK_FINITE_SCALAR(op, v) ((void)0)
#define EUCON_CHECK_FINITE_RANGE(op, data, rows, cols) ((void)0)
#define EUCON_CHECK_FINITE_VEC(op, vec) ((void)0)
#define EUCON_CHECK_FINITE_MAT(op, mat) ((void)0)

#endif  // EUCON_NUMERIC_CHECKS
