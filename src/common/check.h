// Precondition / invariant checking macros.
//
// EUCON_REQUIRE is for preconditions on public APIs (misuse by the caller)
// and throws std::invalid_argument. EUCON_ASSERT is for internal invariants
// and throws std::logic_error; it stays enabled in release builds because
// every call site is far from any hot loop's inner body.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace eucon::detail {

[[noreturn]] inline void throw_require(const char* cond, const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << "requirement failed: " << cond << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_assert(const char* cond, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "internal invariant violated: " << cond << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace eucon::detail

#define EUCON_REQUIRE(cond, msg)                                             \
  do {                                                                       \
    if (!(cond)) ::eucon::detail::throw_require(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)

#define EUCON_ASSERT(cond, msg)                                              \
  do {                                                                       \
    if (!(cond)) ::eucon::detail::throw_assert(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)
