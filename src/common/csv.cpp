#include "common/csv.h"

#include <charconv>
#include <cstdio>

#include "common/check.h"

namespace eucon {

namespace {

std::string escape_cell(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

std::string CsvWriter::format_double(double v) {
  // Shortest representation that round-trips the exact double, so values
  // written to experiment CSVs survive a read-back bit-for-bit ("%.10g"
  // silently dropped up to 7 bits of mantissa).
  char buf[64];
#if defined(__cpp_lib_to_chars)
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  if (ec == std::errc()) return std::string(buf, ptr);
#endif
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void CsvWriter::write_header(const std::vector<std::string>& columns) {
  write_cells(columns);
}

void CsvWriter::write_row(const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(format_double(v));
  write_cells(cells);
}

void CsvWriter::write_cells(const std::vector<std::string>& cells) {
  bool first = true;
  for (const auto& cell : cells) {
    if (!first) *out_ << ',';
    *out_ << escape_cell(cell);
    first = false;
  }
  *out_ << '\n';
}

CsvFile::CsvFile(const std::string& path) : stream_(path), writer_(stream_) {
  EUCON_REQUIRE(stream_.good(), "cannot open CSV file: " + path);
}

}  // namespace eucon
