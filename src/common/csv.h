// Minimal CSV writer used by the figure-reproduction benches and examples.
#pragma once

#include <fstream>
#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace eucon {

// Writes rows to an std::ostream. Values are formatted with enough digits
// to round-trip; strings containing separators/quotes are quoted.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  void write_header(const std::vector<std::string>& columns);
  void write_row(const std::vector<double>& values);
  // Mixed row: already-formatted cells.
  void write_cells(const std::vector<std::string>& cells);

  static std::string format_double(double v);

 private:
  std::ostream* out_;
};

// Convenience owner: opens a file (throws on failure) and exposes a writer.
class CsvFile {
 public:
  explicit CsvFile(const std::string& path);
  CsvWriter& writer() { return writer_; }

 private:
  std::ofstream stream_;
  CsvWriter writer_;
};

}  // namespace eucon
