// Annotated mutex primitives for clang thread-safety analysis.
//
// libstdc++ ships std::mutex and its RAII helpers without capability
// annotations, which leaves -Wthread-safety blind to them. These thin
// wrappers restore visibility: Mutex is a capability, MutexLock is a
// scoped acquire/release, CondVar waits through a MutexLock. On GCC the
// annotations vanish and the wrappers compile down to the std types they
// hold — no extra state, no extra locking.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/annotations.h"

namespace eucon {

class CondVar;
class MutexLock;

class EUCON_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() EUCON_ACQUIRE() { m_.lock(); }
  void unlock() EUCON_RELEASE() { m_.unlock(); }
  bool try_lock() EUCON_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex m_;
};

// Scoped lock over a Mutex. Built on std::unique_lock so CondVar can
// release/reacquire it during waits; from the analysis's point of view the
// capability is held from construction to destruction (the temporary
// release inside a wait is invisible, the standard treatment).
class EUCON_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) EUCON_ACQUIRE(mu) : lock_(mu.m_) {}
  ~MutexLock() EUCON_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases `lock`'s mutex and blocks; the mutex is reacquired
  // before returning. Spurious wakeups happen: wait in a predicate loop.
  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  // Timed variant: releases, blocks for at most `timeout`, reacquires.
  // Returns std::cv_status::timeout when the deadline passed without a
  // notification. Same spurious-wakeup caveat as wait(): re-check the
  // predicate (and the clock) on every return.
  template <typename Rep, typename Period>
  std::cv_status wait_for(MutexLock& lock,
                          const std::chrono::duration<Rep, Period>& timeout) {
    return cv_.wait_for(lock.lock_, timeout);
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace eucon
