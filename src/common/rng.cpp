#include "common/rng.h"

#include "common/check.h"

namespace eucon {

std::uint64_t splitmix64_next(std::uint64_t& state) {
  state += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64_next(sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng Rng::split(std::uint64_t stream_id) const {
  // Mix the base seed with the stream id through SplitMix64 so adjacent
  // stream ids do not produce correlated generators.
  std::uint64_t sm = seed_ ^ (0xA5A5A5A55A5A5A5AULL + stream_id * 0x9E3779B97f4A7C15ULL);
  return Rng(splitmix64_next(sm));
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  EUCON_REQUIRE(lo <= hi, "uniform bounds inverted");
  return lo + (hi - lo) * next_double();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  EUCON_REQUIRE(lo <= hi, "uniform_int bounds inverted");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~std::uint64_t{0} / span) * span;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % span);
}

}  // namespace eucon
