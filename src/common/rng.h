// Deterministic pseudo-random number generation for simulations.
//
// xoshiro256++ seeded via SplitMix64. We implement our own generator rather
// than using std::mt19937 so that streams are cheap to split per subtask
// (each subtask gets an independent, reproducible stream derived from the
// experiment seed), and so results are identical across standard libraries.
#pragma once

#include <cstdint>

namespace eucon {

// SplitMix64: used for seeding and for deriving independent stream seeds.
std::uint64_t splitmix64_next(std::uint64_t& state);

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Derives an independent generator for substream `stream_id`.
  // Two distinct stream ids produce statistically independent sequences.
  Rng split(std::uint64_t stream_id) const;

  std::uint64_t next_u64();

  // Uniform in [0, 1).
  double next_double();

  // Uniform in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_;  // retained so split() can derive substreams
};

}  // namespace eucon
