#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace eucon {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::sample_variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

RunningStats stats_over(const std::vector<double>& series, std::size_t first,
                        std::size_t last) {
  EUCON_REQUIRE(first <= last && last <= series.size(), "bad stats window");
  RunningStats s;
  for (std::size_t i = first; i < last; ++i) s.add(series[i]);
  return s;
}

}  // namespace eucon
