// Streaming statistics accumulators.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace eucon {

// Welford running mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  // Population variance / standard deviation (matches how the paper
  // characterizes per-run utilization deviation).
  double variance() const { return n_ ? m2_ / static_cast<double>(n_) : 0.0; }
  double stddev() const;
  // Sample variance (n-1 denominator), for inference-style uses.
  double sample_variance() const;
  double min() const { return n_ ? min_ : std::numeric_limits<double>::quiet_NaN(); }
  double max() const { return n_ ? max_ : std::numeric_limits<double>::quiet_NaN(); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Stats over a slice [first, last) of a stored series.
RunningStats stats_over(const std::vector<double>& series, std::size_t first,
                        std::size_t last);

}  // namespace eucon
