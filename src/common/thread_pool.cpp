#include "common/thread_pool.h"

#include <algorithm>

#include "common/check.h"

namespace eucon {

std::size_t ThreadPool::default_workers() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t num_workers) {
  if (num_workers == 0) num_workers = default_workers();
  workers_.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    const MutexLock lock(mutex_);
    EUCON_REQUIRE(!stopping_,
                  "submit() on a ThreadPool that is shutting down");
    queue_.push(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) wake_.wait(lock);
      if (queue_.empty()) return;  // stopping_ and fully drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    // packaged_task delivers exceptions through the future; the invocation
    // itself never throws.
    task();
  }
}

}  // namespace eucon
