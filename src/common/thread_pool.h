// Fixed-size worker pool with exception-propagating futures.
//
// The pool exists for coarse-grained, independent work — whole experiment
// runs, not inner-loop parallelism — so the design favors simplicity over
// lock-free cleverness: one mutex-protected FIFO queue feeds all workers.
// submit() returns a std::future for the task's result; an exception thrown
// by the task is captured and rethrown from future::get() with its original
// type, so callers handle worker failures exactly like serial failures.
//
// Destruction drains the queue: every task submitted before the destructor
// runs is executed to completion, then the workers join. Tasks must
// therefore not block on work that is itself still queued behind them.
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"

namespace eucon {

class ThreadPool {
 public:
  // num_workers = 0 picks std::thread::hardware_concurrency() (at least 1).
  explicit ThreadPool(std::size_t num_workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_workers() const { return workers_.size(); }

  // Enqueues `fn` and returns the future for its result. The callable runs
  // exactly once on some worker; exceptions it throws are delivered through
  // the future. Safe to call from multiple threads — but never with the
  // pool's own lock held (EUCON_EXCLUDES: re-acquiring mutex_ here would
  // self-deadlock; the lint's lock-order rule enforces the contract on
  // every transitive caller).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>>
      EUCON_EXCLUDES(mutex_) {
    using R = std::invoke_result_t<std::decay_t<F>>;
    // packaged_task is move-only; std::function requires copyable targets,
    // so the task rides in a shared_ptr.
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    enqueue([task]() { (*task)(); });
    return future;
  }

  // The default worker count submit()/run_batch callers get for "use the
  // whole machine": hardware_concurrency, clamped to at least 1.
  static std::size_t default_workers();

 private:
  void worker_loop() EUCON_EXCLUDES(mutex_);
  // One atomic admission step: takes the lock, refuses (throws via the
  // project's check helpers) when the pool is shutting down, enqueues, and
  // notifies a worker. Keeping the shutdown check and the queue insert
  // under the same critical section means the check can never race the
  // destructor's stopping_ write — there is no unlocked path to stopping_.
  void enqueue(std::function<void()> task) EUCON_EXCLUDES(mutex_);

  mutable Mutex mutex_;
  CondVar wake_;
  std::queue<std::function<void()>> queue_ EUCON_GUARDED_BY(mutex_);
  std::vector<std::thread> workers_;
  bool stopping_ EUCON_GUARDED_BY(mutex_) = false;
};

}  // namespace eucon
