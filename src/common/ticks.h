// Integer time base for the real-time system simulator.
//
// The paper measures everything in abstract "time units" (Ts = 1000 time
// units, execution times of a few tens of units). We represent simulated
// time as a signed 64-bit count of *ticks*, with 10^6 ticks per time unit.
// An integer time base gives exact event ordering and exact busy-time
// accounting; doubles are used only at the boundary (rates, utilizations).
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace eucon {

using Ticks = std::int64_t;

// Number of ticks in one abstract "time unit" of the paper.
inline constexpr Ticks kTicksPerUnit = 1'000'000;

inline constexpr Ticks kNeverTicks = std::numeric_limits<Ticks>::max();

// Converts a duration in time units to ticks (round to nearest).
// Values are clamped to be non-negative; a zero duration is legal (an
// instantaneous event) but the simulator enforces positive execution times
// where required.
inline Ticks units_to_ticks(double units) {
  if (units <= 0.0) return 0;
  return static_cast<Ticks>(std::llround(units * static_cast<double>(kTicksPerUnit)));
}

inline double ticks_to_units(Ticks t) {
  return static_cast<double>(t) / static_cast<double>(kTicksPerUnit);
}

// Period (in ticks) of a task running at `rate` invocations per time unit.
inline Ticks rate_to_period_ticks(double rate) {
  return units_to_ticks(1.0 / rate);
}

}  // namespace eucon
