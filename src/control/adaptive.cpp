#include "control/adaptive.h"

namespace eucon::control {

using linalg::Vector;

AdaptiveMpcController::AdaptiveMpcController(PlantModel model,
                                             MpcParams params,
                                             Vector initial_rates,
                                             GainEstimatorParams est_params)
    : model_(std::move(model)),
      mpc_(model_, std::move(params), std::move(initial_rates)),
      estimator_(model_.num_processors(), est_params) {}

const Vector& AdaptiveMpcController::update(const Vector& u) {
  if (have_prev_) {
    // What the (unscaled) model said last period's move would do…
    const Vector predicted_db = model_.f * mpc_.last_applied_delta();
    // …versus what actually happened.
    const Vector measured_du = u - u_prev_;
    mpc_.set_gain_estimate(estimator_.update(predicted_db, measured_du));
  }
  u_prev_ = u;
  have_prev_ = true;
  return mpc_.update(u);
}

}  // namespace eucon::control
