// Adaptive (self-tuning) EUCON: the MPC controller with its G = I
// assumption replaced by on-line gain estimates.
//
// §6.3 of the paper analyses the cost of the fixed assumption: true gains
// above ~2 cause oscillation, above the critical gain divergence, and
// pessimistic estimates slow convergence. The follow-on EUCON literature
// addresses this with self-tuning; this controller composes the
// GainEstimator with the MpcController: each period it compares the
// utilization change it predicted against the one it measured, refreshes
// diag(ĝ), and rescales the prediction model — extending the stable
// operating range far past the fixed-model critical gain.
#pragma once

#include "control/controller.h"
#include "control/gain_estimator.h"
#include "control/mpc.h"

namespace eucon::control {

class AdaptiveMpcController final : public Controller {
 public:
  AdaptiveMpcController(PlantModel model, MpcParams params,
                        linalg::Vector initial_rates,
                        GainEstimatorParams estimator_params = {});

  const linalg::Vector& update(const linalg::Vector& u) override;
  std::string name() const override { return "EUCON-A"; }

  const linalg::Vector& gain_estimate() const { return estimator_.gains(); }
  const MpcController& inner() const { return mpc_; }

 private:
  PlantModel model_;
  MpcController mpc_;
  GainEstimator estimator_;
  linalg::Vector u_prev_;
  bool have_prev_ = false;
};

}  // namespace eucon::control
