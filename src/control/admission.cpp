#include "control/admission.h"

#include <algorithm>

#include "common/check.h"

namespace eucon::control {

using linalg::Vector;

AdmissionGovernor::AdmissionGovernor(PlantModel model, AdmissionParams params)
    : model_(std::move(model)),
      params_(std::move(params)),
      enabled_(model_.num_tasks(), true) {
  model_.validate();
  // The cooldown spaces consecutive actions; the first action only waits
  // for the patience streak.
  periods_since_action_ = params_.cooldown;
  EUCON_REQUIRE(params_.patience >= 1, "patience must be >= 1");
  EUCON_REQUIRE(params_.cooldown >= 0, "cooldown must be >= 0");
  EUCON_REQUIRE(params_.task_values.empty() ||
                    params_.task_values.size() == model_.num_tasks(),
                "task_values size mismatch");
}

double AdmissionGovernor::value_of(std::size_t task) const {
  if (!params_.task_values.empty()) return params_.task_values[task];
  // Default: earlier tasks are more important.
  return static_cast<double>(model_.num_tasks() - task);
}

bool AdmissionGovernor::rate_saturated(const Vector& rates,
                                       std::size_t task) const {
  return rates[task] <= model_.rate_min[task] * (1.0 + 1e-6);
}

const std::vector<bool>& AdmissionGovernor::update(const Vector& u,
                                                   const Vector& rates) {
  EUCON_REQUIRE(u.size() == model_.num_processors(), "utilization size mismatch");
  EUCON_REQUIRE(rates.size() == model_.num_tasks(), "rate size mismatch");
  ++periods_since_action_;

  // A processor is "stuck overloaded" when it exceeds its set point and
  // every enabled task contributing to it already runs at R_min.
  std::vector<std::size_t> stuck;
  for (std::size_t p = 0; p < model_.num_processors(); ++p) {
    if (u[p] <= model_.b[p] + params_.overload_tol) continue;
    bool all_saturated = true;
    bool any_enabled = false;
    for (std::size_t j = 0; j < model_.num_tasks(); ++j) {
      if (model_.f(p, j) == 0.0 || !enabled_[j]) continue;  // eucon-lint: allow(float-equality)
      any_enabled = true;
      if (!rate_saturated(rates, j)) all_saturated = false;
    }
    if (any_enabled && all_saturated) stuck.push_back(p);
  }

  if (!stuck.empty()) {
    ++saturated_streak_;
    if (saturated_streak_ >= params_.patience &&
        periods_since_action_ >= params_.cooldown) {
      // Suspend the least-valuable enabled task touching a stuck processor.
      int victim = -1;
      double worst_value = 0.0;
      for (std::size_t j = 0; j < model_.num_tasks(); ++j) {
        if (!enabled_[j]) continue;
        bool touches_stuck = false;
        for (std::size_t p : stuck)
          if (model_.f(p, j) > 0.0) touches_stuck = true;
        if (!touches_stuck) continue;
        if (victim < 0 || value_of(j) < worst_value) {
          victim = static_cast<int>(j);
          worst_value = value_of(j);
        }
      }
      // Never suspend the last enabled task.
      if (victim >= 0 &&
          std::count(enabled_.begin(), enabled_.end(), true) > 1) {
        enabled_[static_cast<std::size_t>(victim)] = false;
        ++suspensions_;
        saturated_streak_ = 0;
        periods_since_action_ = 0;
      }
    }
    return enabled_;
  }
  saturated_streak_ = 0;

  // Headroom everywhere: consider re-admitting the most valuable suspended
  // task whose *estimated* minimum-rate load fits under B - margin on every
  // processor it touches.
  if (periods_since_action_ >= params_.cooldown) {
    int candidate = -1;
    double best_value = 0.0;
    for (std::size_t j = 0; j < model_.num_tasks(); ++j) {
      if (enabled_[j]) continue;
      bool fits = true;
      for (std::size_t p = 0; p < model_.num_processors(); ++p) {
        if (model_.f(p, j) == 0.0) continue;  // eucon-lint: allow(float-equality)
        const double added = model_.f(p, j) * model_.rate_min[j];
        if (u[p] + added > model_.b[p] - params_.readmit_margin) fits = false;
      }
      if (!fits) continue;
      if (candidate < 0 || value_of(j) > best_value) {
        candidate = static_cast<int>(j);
        best_value = value_of(j);
      }
    }
    if (candidate >= 0) {
      enabled_[static_cast<std::size_t>(candidate)] = true;
      ++readmissions_;
      periods_since_action_ = 0;
    }
  }
  return enabled_;
}

std::size_t AdmissionGovernor::num_suspended() const {
  return static_cast<std::size_t>(
      std::count(enabled_.begin(), enabled_.end(), false));
}

}  // namespace eucon::control
