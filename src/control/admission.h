// Admission control: the paper's suggested escape hatch when rate
// adaptation alone cannot enforce the set points (§6.2: "the system may
// switch to a different control adaptation mechanism (e.g., admission
// control or task reallocation)"; §3.1 lists admission control among the
// adaptation mechanisms the framework can incorporate).
//
// The governor watches the loop: when a processor stays above its set
// point although every enabled task on it already runs at R_min (rate
// adaptation is saturated), it suspends the least-valuable involved task.
// When enough headroom accumulates it re-admits the most valuable
// suspended task whose estimated minimum load fits everywhere.
#pragma once

#include <cstdint>
#include <vector>

#include "control/model.h"
#include "linalg/vector.h"

namespace eucon::control {

struct AdmissionParams {
  // Consecutive saturated periods before a suspension.
  int patience = 5;
  // Re-admission requires u_p + (candidate's estimated load at R_min)
  // <= B_p - margin on every processor the candidate touches.
  double readmit_margin = 0.05;
  // Minimum periods between consecutive admission actions.
  int cooldown = 10;
  // Per-task value; higher = more important = suspended later, re-admitted
  // first. Empty = tasks are valued by index (earlier = more important),
  // matching the common convention of listing critical tasks first.
  std::vector<double> task_values;
  // Tolerance above B that counts as overload.
  double overload_tol = 0.02;
};

class AdmissionGovernor {
 public:
  AdmissionGovernor(PlantModel model, AdmissionParams params);

  // One governor step per sampling period. `u` is the measured utilization,
  // `rates` the currently applied task rates. Returns the enabled-task mask
  // to apply (to both the simulator and the controller).
  const std::vector<bool>& update(const linalg::Vector& u,
                                  const linalg::Vector& rates);

  const std::vector<bool>& enabled() const { return enabled_; }
  std::size_t num_suspended() const;
  std::uint64_t suspensions() const { return suspensions_; }
  std::uint64_t readmissions() const { return readmissions_; }

 private:
  bool rate_saturated(const linalg::Vector& rates, std::size_t task) const;
  double value_of(std::size_t task) const;

  PlantModel model_;
  AdmissionParams params_;
  std::vector<bool> enabled_;
  int saturated_streak_ = 0;
  int periods_since_action_ = 0;  // initialized to cooldown in the ctor
  std::uint64_t suspensions_ = 0;
  std::uint64_t readmissions_ = 0;
};

}  // namespace eucon::control
