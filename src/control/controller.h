// Common interface for utilization controllers (EUCON, OPEN, PID).
#pragma once

#include <string>

#include "linalg/vector.h"

namespace eucon::control {

class Controller {
 public:
  virtual ~Controller() = default;

  // Invoked at the end of every sampling period with the measured
  // utilization vector u(k); returns the task-rate vector r(k) to apply for
  // the next period. The reference stays valid until the next update() (it
  // aliases the controller's internal rate state) — copy it to keep it.
  virtual const linalg::Vector& update(const linalg::Vector& u) = 0;

  virtual std::string name() const = 0;
};

}  // namespace eucon::control
