#include "control/decentralized.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "control/topology.h"
#include "linalg/sparse.h"

namespace eucon::control {

using linalg::Matrix;
using linalg::Vector;

DecentralizedMpcController::DecentralizedMpcController(PlantModel model,
                                                       MpcParams params,
                                                       Vector initial_rates)
    : model_(std::move(model)), rates_(std::move(initial_rates)) {
  model_.validate();
  const std::size_t n = model_.num_processors();
  const std::size_t m = model_.num_tasks();
  EUCON_REQUIRE(rates_.size() == m, "initial rate vector size mismatch");
  rates_ = rates_.clamped(model_.rate_min, model_.rate_max);

  // Everything below reads F's nonzero structure: compress once, then
  // ownership, neighborhoods and the local sub-blocks are all O(nnz)
  // walks instead of dense O(n·m) column scans. F^T's rows are F's
  // columns — each task's processor list, ascending.
  const linalg::SparseMatrix fs = linalg::SparseMatrix::from_dense(model_.f);
  const linalg::SparseMatrix ft = fs.transposed();
  const OwnershipTopology topo = compute_ownership(fs);

  node_of_.assign(n, npos);
  // pos[q] = qi + 1 while processor q sits at node.neighbors[qi] — an O(1)
  // membership/position map reused (and cleared) across nodes.
  std::vector<std::size_t> pos(n, 0);
  for (std::size_t p = 0; p < n; ++p) {
    if (topo.owned[p].empty()) continue;
    Node node;
    node.processor = p;
    node.owned = topo.owned[p];
    // Neighborhood: p first, then every processor touched by an owned task
    // in discovery order — owned tasks ascending, processors ascending
    // within each task (exactly the order the dense scan produced).
    node.neighbors.push_back(p);
    pos[p] = 1;
    for (std::size_t j : node.owned) {
      for (std::size_t k = ft.row_begin(j); k < ft.row_end(j); ++k) {
        const std::size_t q = ft.col_index(k);
        if (pos[q] == 0) {
          node.neighbors.push_back(q);
          pos[q] = node.neighbors.size();
        }
      }
    }

    // Local plant: rows = neighborhood, columns = owned tasks, filled by
    // scattering each owned column through the position map (absent
    // entries stay zero).
    PlantModel local;
    local.f = Matrix(node.neighbors.size(), node.owned.size());
    local.b = Vector(node.neighbors.size());
    local.rate_min = Vector(node.owned.size());
    local.rate_max = Vector(node.owned.size());
    Vector local_rates(node.owned.size());
    for (std::size_t qi = 0; qi < node.neighbors.size(); ++qi)
      local.b[qi] = model_.b[node.neighbors[qi]];
    for (std::size_t ji = 0; ji < node.owned.size(); ++ji) {
      const std::size_t j = node.owned[ji];
      for (std::size_t k = ft.row_begin(j); k < ft.row_end(j); ++k)
        local.f(pos[ft.col_index(k)] - 1, ji) = ft.value(k);
      local.rate_min[ji] = model_.rate_min[j];
      local.rate_max[ji] = model_.rate_max[j];
      local_rates[ji] = rates_[j];
    }
    for (std::size_t q : node.neighbors) pos[q] = 0;

    node.u_scratch = Vector(node.neighbors.size());
    node.local = std::make_unique<MpcController>(std::move(local), params,
                                                 std::move(local_rates));
    node_of_[p] = nodes_.size();
    nodes_.push_back(std::move(node));
  }
  EUCON_ASSERT(!nodes_.empty(), "no local controllers constructed");
}

const Vector& DecentralizedMpcController::update(const Vector& u) {
  EUCON_REQUIRE(u.size() == model_.num_processors(),
                "utilization vector size mismatch");
  // Each node reads its neighborhood's utilization and commands its owned
  // tasks. Nodes act on the same measurement epoch (as they would in a
  // synchronized sampling period) and do not see each other's current
  // moves — the decentralized approximation. The gather buffer is owned by
  // the node and the local result is consumed in place: steady-state
  // periods never touch the heap (decentralized_alloc_test proves it).
  for (auto& node : nodes_) {
    for (std::size_t qi = 0; qi < node.neighbors.size(); ++qi)
      node.u_scratch[qi] = u[node.neighbors[qi]];
    const Vector& r_local = node.local->update(node.u_scratch);
    for (std::size_t ji = 0; ji < node.owned.size(); ++ji)
      rates_[node.owned[ji]] = r_local[ji];
  }
  return rates_;
}

const std::vector<std::size_t>& DecentralizedMpcController::owned_tasks(
    std::size_t p) const {
  EUCON_REQUIRE(p < node_of_.size(), "processor index out of range");
  EUCON_REQUIRE(node_of_[p] != npos, "processor owns no tasks");
  return nodes_[node_of_[p]].owned;
}

const std::vector<std::size_t>& DecentralizedMpcController::neighborhood(
    std::size_t p) const {
  EUCON_REQUIRE(p < node_of_.size(), "processor index out of range");
  EUCON_REQUIRE(node_of_[p] != npos, "processor owns no tasks");
  return nodes_[node_of_[p]].neighbors;
}

std::size_t DecentralizedMpcController::max_local_problem_size() const {
  std::size_t largest = 0;
  for (const auto& node : nodes_)
    largest = std::max(largest, node.owned.size());
  return largest;
}

}  // namespace eucon::control
