#include "control/decentralized.h"

#include <algorithm>

#include "common/check.h"

namespace eucon::control {

using linalg::Matrix;
using linalg::Vector;

DecentralizedMpcController::DecentralizedMpcController(PlantModel model,
                                                       MpcParams params,
                                                       Vector initial_rates)
    : model_(std::move(model)), rates_(std::move(initial_rates)) {
  model_.validate();
  const std::size_t n = model_.num_processors();
  const std::size_t m = model_.num_tasks();
  EUCON_REQUIRE(rates_.size() == m, "initial rate vector size mismatch");
  rates_ = rates_.clamped(model_.rate_min, model_.rate_max);

  // Ownership: a task belongs to the processor with the largest allocation
  // entry among those it touches — a deterministic stand-in for "the
  // processor of the first subtask", which the flattened F cannot recover.
  // (Builders that keep the spec around can instead construct per-node
  // models directly; for utilization control only F matters.)
  std::vector<std::vector<std::size_t>> owned(n);
  for (std::size_t j = 0; j < m; ++j) {
    std::size_t owner = 0;
    double best = -1.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (model_.f(i, j) > best) {
        best = model_.f(i, j);
        owner = i;
      }
    }
    EUCON_REQUIRE(best > 0.0, "task touches no processor");
    owned[owner].push_back(j);
  }

  node_of_.assign(n, static_cast<std::size_t>(-1));
  for (std::size_t p = 0; p < n; ++p) {
    if (owned[p].empty()) continue;
    Node node;
    node.processor = p;
    node.owned = owned[p];
    // Neighborhood: p first, then every processor touched by an owned task.
    node.neighbors.push_back(p);
    for (std::size_t j : node.owned) {
      for (std::size_t q = 0; q < n; ++q) {
        if (model_.f(q, j) > 0.0 &&
            std::find(node.neighbors.begin(), node.neighbors.end(), q) ==
                node.neighbors.end())
          node.neighbors.push_back(q);
      }
    }

    // Local plant: rows = neighborhood, columns = owned tasks.
    PlantModel local;
    local.f = Matrix(node.neighbors.size(), node.owned.size());
    local.b = Vector(node.neighbors.size());
    local.rate_min = Vector(node.owned.size());
    local.rate_max = Vector(node.owned.size());
    Vector local_rates(node.owned.size());
    for (std::size_t qi = 0; qi < node.neighbors.size(); ++qi) {
      local.b[qi] = model_.b[node.neighbors[qi]];
      for (std::size_t ji = 0; ji < node.owned.size(); ++ji)
        local.f(qi, ji) = model_.f(node.neighbors[qi], node.owned[ji]);
    }
    for (std::size_t ji = 0; ji < node.owned.size(); ++ji) {
      local.rate_min[ji] = model_.rate_min[node.owned[ji]];
      local.rate_max[ji] = model_.rate_max[node.owned[ji]];
      local_rates[ji] = rates_[node.owned[ji]];
    }
    node.local = std::make_unique<MpcController>(std::move(local), params,
                                                 std::move(local_rates));
    node_of_[p] = nodes_.size();
    nodes_.push_back(std::move(node));
  }
  EUCON_ASSERT(!nodes_.empty(), "no local controllers constructed");
}

const Vector& DecentralizedMpcController::update(const Vector& u) {
  EUCON_REQUIRE(u.size() == model_.num_processors(),
                "utilization vector size mismatch");
  // Each node reads its neighborhood's utilization and commands its owned
  // tasks. Nodes act on the same measurement epoch (as they would in a
  // synchronized sampling period) and do not see each other's current
  // moves — the decentralized approximation.
  for (auto& node : nodes_) {
    Vector u_local(node.neighbors.size());
    for (std::size_t qi = 0; qi < node.neighbors.size(); ++qi)
      u_local[qi] = u[node.neighbors[qi]];
    const Vector r_local = node.local->update(u_local);
    for (std::size_t ji = 0; ji < node.owned.size(); ++ji)
      rates_[node.owned[ji]] = r_local[ji];
  }
  return rates_;
}

const std::vector<std::size_t>& DecentralizedMpcController::owned_tasks(
    std::size_t p) const {
  EUCON_REQUIRE(p < node_of_.size() && node_of_[p] != static_cast<std::size_t>(-1),
                "processor owns no tasks");
  return nodes_[node_of_[p]].owned;
}

const std::vector<std::size_t>& DecentralizedMpcController::neighborhood(
    std::size_t p) const {
  EUCON_REQUIRE(p < node_of_.size() && node_of_[p] != static_cast<std::size_t>(-1),
                "processor owns no tasks");
  return nodes_[node_of_[p]].neighbors;
}

std::size_t DecentralizedMpcController::max_local_problem_size() const {
  std::size_t largest = 0;
  for (const auto& node : nodes_)
    largest = std::max(largest, node.owned.size());
  return largest;
}

}  // namespace eucon::control
