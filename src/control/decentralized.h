// Decentralized end-to-end utilization control.
//
// The paper's conclusion names "decentralized control architecture to
// handle large-scale systems" as future work; its published follow-on is
// DEUCON (Wang, Lu, Koutsoukos). This module implements that architecture
// in the same spirit:
//
//   * every task is OWNED by exactly one processor — the one with the
//     largest allocation entry in the task's F column, exact ties breaking
//     to the lowest processor index (the rule is stated once, in
//     control/topology.h, and shared with the hierarchical controller).
//     Ownership partitions the actuators, so no two controllers command
//     the same rate;
//   * each owning processor runs a LOCAL model predictive controller over
//     its neighborhood: itself plus the processors that share one of its
//     owned tasks. The local model is the corresponding sub-block of F;
//   * rates of tasks owned elsewhere are treated as constant over the
//     local horizon — their effect arrives through the next utilization
//     measurement (the feedback lanes of Figure 1, now peer-to-peer).
//
// Construction is sparsity-driven: F is compressed to CSR once and
// ownership, neighborhoods and the local F sub-blocks are all read off the
// nonzero structure in O(nnz), not O(n·m) dense scans. The per-period
// update is allocation-free: each node's neighborhood-utilization gather
// buffer lives in the node and the local result is consumed by reference.
//
// Compared with the centralized controller this trades optimality for
// per-node problem size: each node solves an O(|owned| · M) problem
// instead of O(m · M), and only neighborhood utilizations travel on the
// wire. bench_scaling quantifies both effects.
#pragma once

#include <memory>
#include <vector>

#include "control/controller.h"
#include "control/mpc.h"

namespace eucon::control {

class DecentralizedMpcController final : public Controller {
 public:
  DecentralizedMpcController(PlantModel model, MpcParams params,
                             linalg::Vector initial_rates);

  const linalg::Vector& update(const linalg::Vector& u) override EUCON_REALTIME;
  std::string name() const override { return "DEUCON"; }

  // Introspection for tests and benches.
  std::size_t num_local_controllers() const { return nodes_.size(); }
  // Tasks owned by processor p (indices into the global task list).
  const std::vector<std::size_t>& owned_tasks(std::size_t p) const;
  // Neighborhood of processor p (global processor indices; first is p).
  const std::vector<std::size_t>& neighborhood(std::size_t p) const;
  // Size of the largest local optimization (decision variables).
  std::size_t max_local_problem_size() const;

 private:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  struct Node {
    std::size_t processor;
    std::vector<std::size_t> owned;      // global task indices
    std::vector<std::size_t> neighbors;  // global processor indices
    linalg::Vector u_scratch;            // neighborhood-utilization gather
    std::unique_ptr<MpcController> local;
  };

  PlantModel model_;
  std::vector<Node> nodes_;           // one per processor owning >= 1 task
  std::vector<std::size_t> node_of_;  // processor -> index into nodes_ (or npos)
  linalg::Vector rates_;
};

}  // namespace eucon::control
