#include "control/diagnostics.h"

#include <sstream>

#include "linalg/lu.h"

namespace eucon::control {

PlantDiagnostics diagnose_plant(const PlantModel& model) {
  model.validate();
  PlantDiagnostics d;
  const std::size_t n = model.num_processors();
  const std::size_t m = model.num_tasks();

  d.rank = linalg::rank(model.f);
  d.full_row_rank = d.rank == n;

  for (std::size_t p = 0; p < n; ++p) {
    bool loaded = false;
    for (std::size_t j = 0; j < m; ++j)
      if (model.f(p, j) > 0.0) loaded = true;
    if (!loaded) d.unloaded_processors.push_back(static_cast<int>(p));
  }
  for (std::size_t j = 0; j < m; ++j) {
    bool effective = false;
    for (std::size_t p = 0; p < n; ++p)
      if (model.f(p, j) > 0.0) effective = true;
    if (!effective) d.ineffective_tasks.push_back(static_cast<int>(j));
  }

  d.min_estimated_utilization = model.f * model.rate_min;
  d.max_estimated_utilization = model.f * model.rate_max;
  for (std::size_t p = 0; p < n; ++p) {
    if (model.b[p] < d.min_estimated_utilization[p] - 1e-12)
      d.set_point_below_floor.push_back(static_cast<int>(p));
    if (model.b[p] > d.max_estimated_utilization[p] + 1e-12)
      d.set_point_above_ceiling.push_back(static_cast<int>(p));
  }
  return d;
}

std::string to_string(const PlantDiagnostics& d) {
  std::ostringstream os;
  os << "rank(F) = " << d.rank
     << (d.full_row_rank ? " (full row rank)" : " (ROW-RANK DEFICIENT)")
     << "\n";
  auto list = [&](const char* label, const std::vector<int>& v,
                  const char* index_prefix) {
    if (v.empty()) return;
    os << label;
    for (int i : v) os << ' ' << index_prefix << i + 1;
    os << "\n";
  };
  list("unloaded processors:", d.unloaded_processors, "P");
  list("ineffective tasks:", d.ineffective_tasks, "T");
  list("set point below reachable floor on:", d.set_point_below_floor, "P");
  list("set point above reachable ceiling on:", d.set_point_above_ceiling,
       "P");
  if (d.structurally_feasible() && d.full_row_rank)
    os << "OK: every set point reachable within the rate boxes\n";
  return os.str();
}

}  // namespace eucon::control
