// Pre-deployment plant diagnostics: structural checks a designer should
// run before trusting any controller with a task set.
//
// The paper assumes (§6.2) that the optimization is feasible — "there
// exists a set of task rates within their acceptable ranges that can make
// the utilization on every processor equal to its set point". This module
// verifies that assumption (at estimated execution times), plus the
// structural preconditions behind it:
//
//   * every processor carries at least one subtask (a zero row of F is
//     uncontrollable — nothing any controller does can move it);
//   * F has full row rank (otherwise some combination of processor
//     utilizations is invariant under every rate change, and arbitrary
//     set-point vectors are untrackable);
//   * each set point lies inside the envelope [F R_min, F R_max] of
//     estimated utilizations reachable within the rate boxes.
#pragma once

#include <string>
#include <vector>

#include "control/model.h"

namespace eucon::control {

struct PlantDiagnostics {
  std::size_t rank = 0;       // numerical rank of F
  bool full_row_rank = false;  // rank == n: all processors independently steerable

  std::vector<int> unloaded_processors;  // F row identically zero
  std::vector<int> ineffective_tasks;    // F column identically zero

  linalg::Vector min_estimated_utilization;  // F R_min
  linalg::Vector max_estimated_utilization;  // F R_max
  // Processors whose set point lies outside the reachable envelope (at
  // the paper's nominal gain G = I):
  std::vector<int> set_point_below_floor;  // B < F R_min: overloaded even at R_min
  std::vector<int> set_point_above_ceiling;  // B > F R_max: cannot be filled

  // True when every set point is reachable and every processor loaded.
  bool structurally_feasible() const {
    return unloaded_processors.empty() && set_point_below_floor.empty() &&
           set_point_above_ceiling.empty();
  }
};

PlantDiagnostics diagnose_plant(const PlantModel& model);

// Human-readable multi-line report ("OK" when nothing is wrong).
std::string to_string(const PlantDiagnostics& d);

}  // namespace eucon::control
