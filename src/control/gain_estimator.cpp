#include "control/gain_estimator.h"

#include <algorithm>

#include "common/check.h"

namespace eucon::control {

GainEstimator::GainEstimator(std::size_t num_processors,
                             GainEstimatorParams params)
    : params_(params),
      gains_(num_processors, params.initial_gain),
      covariance_(num_processors, params.initial_covariance) {
  EUCON_REQUIRE(num_processors > 0, "estimator needs processors");
  EUCON_REQUIRE(params_.forgetting > 0.0 && params_.forgetting <= 1.0,
                "forgetting factor must be in (0, 1]");
  EUCON_REQUIRE(params_.min_gain > 0.0 && params_.max_gain > params_.min_gain,
                "bad gain clamp range");
  EUCON_REQUIRE(params_.initial_covariance > 0.0, "covariance must be positive");
}

const linalg::Vector& GainEstimator::update(const linalg::Vector& predicted_db,
                                            const linalg::Vector& measured_du) {
  EUCON_REQUIRE(predicted_db.size() == gains_.size(), "db size mismatch");
  EUCON_REQUIRE(measured_du.size() == gains_.size(), "du size mismatch");
  bool any = false;
  for (std::size_t i = 0; i < gains_.size(); ++i) {
    const double phi = predicted_db[i];  // regressor
    if (std::abs(phi) < params_.excitation_threshold) continue;
    any = true;
    // Scalar RLS with forgetting: g += K (du - g phi).
    const double p = covariance_[i];
    const double k = p * phi / (params_.forgetting + phi * p * phi);
    const double innovation = measured_du[i] - gains_[i] * phi;
    gains_[i] = std::clamp(gains_[i] + k * innovation, params_.min_gain,
                           params_.max_gain);
    covariance_[i] = (p - k * phi * p) / params_.forgetting;
    // Keep the covariance from collapsing so slow gain drift stays
    // trackable (covariance resetting lite).
    covariance_[i] = std::clamp(covariance_[i], 1e-4, 1e6);
  }
  if (any) ++updates_;
  return gains_;
}

}  // namespace eucon::control
