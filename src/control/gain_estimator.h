// On-line estimation of the utilization gains G (paper eq. 4-5).
//
// EUCON's controller assumes G = I; §6.3 shows that when the true gains
// exceed ~2 the loop oscillates (and beyond ~6.5 diverges). The gains are
// observable, though: each sampling period relates the *predicted*
// utilization change Δb_i(k-1) = (F Δr(k-1))_i to the *measured* change
// Δu_i(k), with g_i their ratio. This estimator runs one scalar recursive
// least squares per processor with exponential forgetting, feeding the
// adaptive controller (AdaptiveMpcController) that scales its internal
// model by the estimate — the self-tuning direction the EUCON line of work
// developed after this paper.
#pragma once

#include "linalg/vector.h"

namespace eucon::control {

struct GainEstimatorParams {
  double forgetting = 0.96;   // RLS forgetting factor λ in (0, 1]
  double initial_gain = 1.0;  // the paper's G = I assumption
  // Updates are skipped when |Δb| is below this (pure measurement noise).
  double excitation_threshold = 1e-3;
  double min_gain = 0.05;  // clamp range for the estimate
  double max_gain = 20.0;
  // Large initial covariance = fast initial learning (the regressors, rate
  // changes mapped through F, are small numbers).
  double initial_covariance = 200.0;
};

class GainEstimator {
 public:
  GainEstimator(std::size_t num_processors, GainEstimatorParams params = {});

  // One step per sampling period: `predicted_db` is F Δr(k-1) (the change
  // the controller believed it commanded), `measured_du` is
  // u(k) - u(k-1). Returns the refreshed gain estimates.
  const linalg::Vector& update(const linalg::Vector& predicted_db,
                               const linalg::Vector& measured_du);

  const linalg::Vector& gains() const { return gains_; }
  std::size_t updates_applied() const { return updates_; }

 private:
  GainEstimatorParams params_;
  linalg::Vector gains_;
  linalg::Vector covariance_;  // per-processor scalar RLS covariance
  std::size_t updates_ = 0;
};

}  // namespace eucon::control
