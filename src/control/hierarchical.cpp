#include "control/hierarchical.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "control/topology.h"

namespace eucon::control {

using linalg::Matrix;
using linalg::Vector;

void HierarchicalParams::validate() const {
  EUCON_REQUIRE(shard_size >= 1, "shard size must be >= 1");
  EUCON_REQUIRE(coordination_gain > 0.0 && coordination_gain <= 1.0,
                "coordination gain must be in (0, 1]");
}

// Builds one sweep partition: processor p goes to shard (p + offset) /
// shard_size (offset 0 = the base partition; offset shard_size / 2 = the
// staggered one, whose first shard is half-sized so every base boundary
// falls in a staggered shard's interior).
std::vector<HierarchicalMpcController::Shard>
HierarchicalMpcController::build_partition(std::size_t offset,
                                           MpcParams params) {
  const std::size_t n = model_.num_processors();
  const std::size_t m = model_.num_tasks();
  const std::size_t num_shards =
      (n + offset + hier_.shard_size - 1) / hier_.shard_size;
  std::vector<Shard> shards(num_shards);

  // Tasks go to the shard of their owning processor (the shared
  // largest-entry / lowest-index rule); iterating tasks in order keeps
  // each shard's owned list ascending.
  const OwnershipTopology topo = compute_ownership(model_.f);
  for (std::size_t j = 0; j < m; ++j)
    shards[(topo.owner[j] + offset) / hier_.shard_size].owned.push_back(j);

  // Row totals Σ_j f(q,j): the denominators of the diagnostic shares.
  Vector row_total(n, 0.0);
  for (std::size_t q = 0; q < n; ++q)
    for (std::size_t k = model_.f.row_begin(q); k < model_.f.row_end(q); ++k)
      row_total[q] += model_.f.value(k);

  // pos[q] = qi + 1 while processor q sits at shard.rows[qi]; reused (and
  // cleared) across shards.
  std::vector<std::size_t> pos(n, 0);
  for (Shard& shard : shards) {
    // A shard whose processors own no tasks has nothing to actuate; it
    // keeps no local controller and update() skips it.
    if (shard.owned.empty()) continue;

    for (std::size_t j : shard.owned)
      for (std::size_t k = ft_.row_begin(j); k < ft_.row_end(j); ++k) {
        const std::size_t q = ft_.col_index(k);
        if (pos[q] == 0) {
          shard.rows.push_back(q);
          pos[q] = 1;
        }
      }
    std::sort(shard.rows.begin(), shard.rows.end());
    for (std::size_t qi = 0; qi < shard.rows.size(); ++qi)
      pos[shard.rows[qi]] = qi + 1;

    // Local plant: rows = observed processors, columns = owned tasks, both
    // ascending, scattered straight off the CSR columns (absent entries
    // stay zero). The share numerator rides along: share · row_total[q] =
    // Σ_{j owned here} f(q,j).
    PlantModel local;
    local.f = Matrix(shard.rows.size(), shard.owned.size());
    local.b = Vector(shard.rows.size());
    local.rate_min = Vector(shard.owned.size());
    local.rate_max = Vector(shard.owned.size());
    shard.share = Vector(shard.rows.size(), 0.0);
    Vector local_rates(shard.owned.size());
    for (std::size_t qi = 0; qi < shard.rows.size(); ++qi)
      local.b[qi] = model_.b[shard.rows[qi]];
    for (std::size_t ji = 0; ji < shard.owned.size(); ++ji) {
      const std::size_t j = shard.owned[ji];
      for (std::size_t k = ft_.row_begin(j); k < ft_.row_end(j); ++k) {
        const std::size_t qi = pos[ft_.col_index(k)] - 1;
        local.f(qi, ji) = ft_.value(k);
        shard.share[qi] += ft_.value(k);
      }
      local.rate_min[ji] = model_.rate_min[j];
      local.rate_max[ji] = model_.rate_max[j];
      local_rates[ji] = rates_[j];
    }
    for (std::size_t qi = 0; qi < shard.rows.size(); ++qi) {
      const double total = row_total[shard.rows[qi]];
      EUCON_ASSERT(total > 0.0 && shard.share[qi] > 0.0,
                   "observed row with no allocation");
      shard.share[qi] /= total;
    }
    for (std::size_t q : shard.rows) pos[q] = 0;

    shard.u_scratch = Vector(shard.rows.size());
    shard.r_scratch = Vector(shard.owned.size());
    // Every local MPC solves through the one shared workspace, reserved
    // growth-only as locals are built: capacity ends at the largest
    // shard's constraint template across both partitions, independent of
    // the shard count.
    shard.local = std::make_unique<MpcController>(
        std::move(local), params, std::move(local_rates), &shared_ws_);
  }
  EUCON_ASSERT(std::any_of(shards.begin(), shards.end(),
                           [](const Shard& s) { return s.local != nullptr; }),
               "no shard controllers constructed");
  return shards;
}

HierarchicalMpcController::HierarchicalMpcController(SparsePlantModel model,
                                                     MpcParams params,
                                                     HierarchicalParams hier,
                                                     Vector initial_rates)
    : model_(std::move(model)), hier_(hier), rates_(std::move(initial_rates)) {
  model_.validate();
  hier_.validate();
  const std::size_t n = model_.num_processors();
  EUCON_REQUIRE(rates_.size() == model_.num_tasks(),
                "initial rate vector size mismatch");
  rates_ = rates_.clamped(model_.rate_min, model_.rate_max);

  shard_of_.resize(n);
  for (std::size_t p = 0; p < n; ++p) shard_of_[p] = p / hier_.shard_size;

  // F^T's rows are F's columns — each task's processor list, ascending.
  // Kept as a member: the update sweep feeds each shard's rate moves
  // forward into the prediction through these rows.
  ft_ = model_.f.transposed();
  u_pred_ = Vector(n);

  partitions_.push_back(build_partition(0, params));
  // The staggered partition exists to break boundary wedges, so a base
  // partition without internal boundaries (one shard, or one-processor
  // shards where the offset degenerates) doesn't need it — and skipping
  // it keeps the single-shard case bit-identical to the central MPC.
  const std::size_t offset = hier_.shard_size / 2;
  if (partitions_.front().size() > 1 && offset > 0)
    partitions_.push_back(build_partition(offset, params));
}

const Vector& HierarchicalMpcController::update(const Vector& u) {
  EUCON_REQUIRE(u.size() == model_.num_processors(),
                "utilization vector size mismatch");
  // One Gauss–Seidel sweep over this period's partition (parity
  // alternates between the base and staggered layouts): shards solve in
  // index order against the prediction ũ, which starts at the measurement
  // and absorbs each shard's commanded rate moves through the nominal
  // plant (Δũ = F Δr, scattered off F^T's rows) before the next shard
  // solves. Each shard therefore attacks the residual error its
  // predecessors left — no double-actuation on boundary rows, and
  // corrections cross every shard boundary within the period. γ < 1 hands
  // each shard only part of the residual. All scratch is preallocated —
  // steady-state periods never touch the heap.
  const double gain = hier_.coordination_gain;
  std::vector<Shard>& shards = partitions_[period_ % partitions_.size()];
  ++period_;
  u_pred_ = u;
  for (Shard& shard : shards) {
    if (shard.local == nullptr) continue;
    for (std::size_t qi = 0; qi < shard.rows.size(); ++qi) {
      const std::size_t q = shard.rows[qi];
      // With γ = 1 the shard sees the prediction itself (written as such
      // to keep the single-shard case bit-identical to the central MPC);
      // otherwise the residual is scaled toward the set point.
      const double b = model_.b[q];
      const double virtual_u =
          gain == 1.0  // eucon-lint: allow(float-equality)
              ? u_pred_[q]
              : b - gain * (b - u_pred_[q]);
      shard.u_scratch[qi] = std::clamp(virtual_u, 0.0, 1.0);
    }
    // The other partition actuated the same tasks last period: bring this
    // local's rate belief r(k-1) back to the rates actually applied.
    for (std::size_t ji = 0; ji < shard.owned.size(); ++ji)
      shard.r_scratch[ji] = rates_[shard.owned[ji]];
    shard.local->sync_rates(shard.r_scratch);
    const Vector& r_local = shard.local->update(shard.u_scratch);
    for (std::size_t ji = 0; ji < shard.owned.size(); ++ji) {
      const std::size_t j = shard.owned[ji];
      const double dr = r_local[ji] - rates_[j];
      if (dr != 0.0)  // eucon-lint: allow(float-equality)
        for (std::size_t k = ft_.row_begin(j); k < ft_.row_end(j); ++k)
          u_pred_[ft_.col_index(k)] += ft_.value(k) * dr;
      rates_[j] = r_local[ji];
    }
  }
  return rates_;
}

std::size_t HierarchicalMpcController::shard_of_processor(std::size_t p) const {
  EUCON_REQUIRE(p < shard_of_.size(), "processor index out of range");
  return shard_of_[p];
}

const std::vector<std::size_t>& HierarchicalMpcController::shard_tasks(
    std::size_t s) const {
  EUCON_REQUIRE(s < num_shards(), "shard index out of range");
  return partitions_.front()[s].owned;
}

const std::vector<std::size_t>& HierarchicalMpcController::shard_rows(
    std::size_t s) const {
  EUCON_REQUIRE(s < num_shards(), "shard index out of range");
  return partitions_.front()[s].rows;
}

const Vector& HierarchicalMpcController::shard_row_shares(std::size_t s) const {
  EUCON_REQUIRE(s < num_shards(), "shard index out of range");
  return partitions_.front()[s].share;
}

std::size_t HierarchicalMpcController::max_shard_problem_size() const {
  std::size_t largest = 0;
  for (const std::vector<Shard>& partition : partitions_)
    for (const Shard& shard : partition)
      largest = std::max(largest, shard.owned.size());
  return largest;
}

std::pair<std::size_t, std::size_t>
HierarchicalMpcController::workspace_capacity() const {
  return {shared_ws_.max_vars(), shared_ws_.max_cons()};
}

}  // namespace eucon::control
