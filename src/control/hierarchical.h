// Hierarchical (sharded) end-to-end utilization control.
//
// The decentralized controller (control/decentralized.h) runs one local
// MPC per task-owning processor — right for peer-to-peer deployments, but
// at cluster scale (1k–10k processors) the per-node bookkeeping dominates
// and most "neighborhoods" are near-identical slices of the same chains.
// This module groups processors into contiguous SHARDS and runs one local
// MPC per shard under a lightweight coordinator:
//
//   * tasks are owned exactly as in the decentralized architecture (the
//     shared rule of control/topology.h: largest allocation entry, ties to
//     the lowest processor index); a task belongs to the shard containing
//     its owning processor, so shards partition the actuators;
//   * a shard's local model is the dense sub-block of the sparse F over
//     its ROWS (every processor its owned tasks touch — shard members and
//     boundary processors alike, ascending) and its COLUMNS (owned tasks,
//     ascending). The sub-block is read straight off the CSR structure;
//     the global dense F is never materialized;
//   * the COORDINATOR reconciles boundary processors that several shards
//     observe with one Gauss–Seidel sweep per period. Shards update in
//     index order against a PREDICTED utilization ũ that starts at the
//     measurement and absorbs each earlier shard's rate moves through the
//     nominal plant model (Δũ = F Δr, read off the CSR columns):
//
//         shard s sees   ũ_q ← b_q − γ · (b_q − ũ_q)   over its rows,
//
//     then ũ is advanced by the Δr it commanded before the next shard
//     solves. Every shard therefore works on the RESIDUAL error its
//     predecessors left — no double-actuation on boundary rows, and a
//     correction can propagate across every shard boundary within a
//     single period instead of one hop per period. u = b remains a
//     fixpoint (zero error commands zero moves, which leave the
//     prediction untouched), the same steady state the central MPC
//     settles to; γ < 1 damps how much of the residual each shard takes.
//     A single all-covering shard sees the raw measurement and reduces
//     the controller to the central MPC exactly;
//   * sweeps alternate between two STAGGERED partitions (the base one and
//     a copy with boundaries shifted by half a shard, odd periods using
//     the shifted one). A fixed partition can wedge against rate bounds:
//     a compensation chain that needs task α (shard A) and task β
//     (shard B) to move jointly stalls when each shard's half of the move
//     is individually unprofitable. Staggering makes every locally
//     coupled pair interior to one of the two partitions, so the sweep
//     escapes those blocked equilibria and lands on the central
//     fixpoint. Partitions share the actuators; each one's locals are
//     resynchronized (MpcController::sync_rates, allocation-free) with
//     the globally applied rates before they solve;
//   * every local MPC solves its QP through ONE shared workspace sized to
//     the largest shard (growth-only), so active-set scratch memory scales
//     with the shard size, not with n.
//
// The per-period update is allocation-free after construction
// (hierarchical steady-state allocation behaviour is covered with the
// decentralized controller's by decentralized_alloc_test's idiom);
// bench_scaling reports the period cost against n up to 10k processors.
#pragma once

#include <memory>
#include <vector>

#include "control/controller.h"
#include "control/mpc.h"
#include "control/sparse_model.h"
#include "qp/active_set.h"

namespace eucon::control {

struct HierarchicalParams {
  // Processors per shard (the last shard takes the remainder). One shard
  // spanning all processors reproduces the central MPC exactly.
  std::size_t shard_size = 32;
  // Coordination gain γ on the residual error each shard is handed during
  // the Gauss–Seidel sweep. 1 = every shard attacks the full remaining
  // error; < 1 damps per-shard actuation when the nominal-gain prediction
  // is untrustworthy (strongly time-varying plant gains).
  double coordination_gain = 1.0;

  void validate() const;
};

class HierarchicalMpcController final : public Controller {
 public:
  HierarchicalMpcController(SparsePlantModel model, MpcParams params,
                            HierarchicalParams hier,
                            linalg::Vector initial_rates);

  const linalg::Vector& update(const linalg::Vector& u) override EUCON_REALTIME;
  std::string name() const override { return "HIER"; }

  // Introspection for tests and benches. Shard-level accessors describe
  // the BASE partition; the staggered partition mirrors it with
  // boundaries shifted by shard_size / 2.
  std::size_t num_shards() const { return partitions_.front().size(); }
  std::size_t shard_of_processor(std::size_t p) const;
  // Tasks owned by shard s (global task indices, ascending).
  const std::vector<std::size_t>& shard_tasks(std::size_t s) const;
  // Rows shard s observes (global processor indices, ascending; includes
  // boundary processors outside the shard).
  const std::vector<std::size_t>& shard_rows(std::size_t s) const;
  // Shard s's allocation share of each of its rows (same order):
  // Σ_{j owned by s} f(q,j) / Σ_all j f(q,j). Shares sum to one over the
  // shards seeing a row; < 1 marks a boundary row. Diagnostic — the sweep
  // hands shards residuals, not share-scaled errors.
  const linalg::Vector& shard_row_shares(std::size_t s) const;
  // Decision variables of the largest local optimization.
  std::size_t max_shard_problem_size() const;
  // Capacity of the shared QP workspace (variables, constraint rows).
  std::pair<std::size_t, std::size_t> workspace_capacity() const;

 private:
  struct Shard {
    std::vector<std::size_t> owned;  // global task indices, ascending
    std::vector<std::size_t> rows;   // global processor indices, ascending
    linalg::Vector share;            // allocation share per local row
    linalg::Vector u_scratch;        // reconciled measurement buffer
    linalg::Vector r_scratch;        // rate resync gather buffer
    std::unique_ptr<MpcController> local;
  };

  std::vector<Shard> build_partition(std::size_t offset, MpcParams params);

  SparsePlantModel model_;
  HierarchicalParams hier_;
  // partitions_[0] is the base partition; partitions_[1], present unless
  // the base is a single all-covering shard (or shard_size == 1), has its
  // boundaries shifted by shard_size / 2. update() alternates.
  std::vector<std::vector<Shard>> partitions_;
  std::vector<std::size_t> shard_of_;  // processor -> base shard index
  linalg::SparseMatrix ft_;     // F^T: per-task processor lists (CSR rows)
  linalg::Vector u_pred_;       // sweep prediction, advanced shard by shard
  std::size_t period_ = 0;      // parity selects the sweep partition
  qp::QpWorkspace shared_ws_;   // one workspace for every local QP
  linalg::Vector rates_;
};

}  // namespace eucon::control
