#include "control/linear_plant.h"

#include <algorithm>

#include "common/check.h"

namespace eucon::control {

LinearPlant::LinearPlant(PlantModel model, linalg::Vector gains,
                         linalg::Vector initial_rates)
    : model_(std::move(model)),
      gains_(std::move(gains)),
      rates_prev_(std::move(initial_rates)),
      u_(model_.num_processors(), 0.0) {
  model_.validate();
  EUCON_REQUIRE(gains_.size() == model_.num_processors(), "gain size mismatch");
  EUCON_REQUIRE(rates_prev_.size() == model_.num_tasks(), "rate size mismatch");
  // Start at the utilization implied by the initial rates.
  const linalg::Vector b0 = model_.f * rates_prev_;
  for (std::size_t i = 0; i < u_.size(); ++i)
    u_[i] = std::clamp(gains_[i] * b0[i], 0.0, 1.0);
}

const linalg::Vector& LinearPlant::step(const linalg::Vector& rates) {
  EUCON_REQUIRE(rates.size() == model_.num_tasks(), "rate size mismatch");
  const linalg::Vector db = model_.f * (rates - rates_prev_);
  for (std::size_t i = 0; i < u_.size(); ++i)
    u_[i] = std::clamp(u_[i] + gains_[i] * db[i], 0.0, 1.0);
  rates_prev_ = rates;
  return u_;
}

}  // namespace eucon::control
