// The paper's difference-equation plant (eq. 5-6) in isolation:
//
//   u(k) = u(k-1) + G F Δr(k-1)
//
// This is the model the stability analysis reasons about. It lets tests
// and ablations exercise controllers against the idealized dynamics,
// separating control behavior from scheduling/measurement effects (the
// full event simulator covers those).
#pragma once

#include "control/model.h"
#include "linalg/vector.h"

namespace eucon::control {

class LinearPlant {
 public:
  // `gains` are the true utilization gains G (one per processor);
  // `initial_rates` seed the rate memory used to form Δr.
  LinearPlant(PlantModel model, linalg::Vector gains,
              linalg::Vector initial_rates);

  // Applies the rate vector r(k) and returns the resulting utilization
  // u(k+1) (saturated to [0, 1] like a real processor).
  const linalg::Vector& step(const linalg::Vector& rates);

  const linalg::Vector& utilization() const { return u_; }
  void set_utilization(const linalg::Vector& u) { u_ = u; }

 private:
  PlantModel model_;
  linalg::Vector gains_;
  linalg::Vector rates_prev_;
  linalg::Vector u_;
};

}  // namespace eucon::control
