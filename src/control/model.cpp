#include "control/model.h"

#include "common/check.h"

namespace eucon::control {

void PlantModel::validate() const {
  const std::size_t n = f.rows();
  const std::size_t m = f.cols();
  EUCON_REQUIRE(n > 0 && m > 0, "plant model needs processors and tasks");
  EUCON_REQUIRE(b.size() == n, "set-point vector size mismatch");
  EUCON_REQUIRE(rate_min.size() == m && rate_max.size() == m,
                "rate bound size mismatch");
  for (std::size_t i = 0; i < n; ++i)
    EUCON_REQUIRE(b[i] > 0.0 && b[i] <= 1.0, "set points must be in (0, 1]");
  for (std::size_t j = 0; j < m; ++j) {
    EUCON_REQUIRE(rate_min[j] > 0.0, "rate_min must be positive");
    EUCON_REQUIRE(rate_max[j] >= rate_min[j], "rate_max < rate_min");
  }
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < m; ++j)
      EUCON_REQUIRE(f(i, j) >= 0.0, "allocation matrix must be non-negative");
}

PlantModel make_plant_model(const rts::SystemSpec& spec,
                            const linalg::Vector& set_points) {
  spec.validate();
  PlantModel model;
  model.f = spec.allocation_matrix();
  model.b = set_points.empty() ? spec.liu_layland_set_points() : set_points;
  model.rate_min = spec.rate_min_vector();
  model.rate_max = spec.rate_max_vector();
  model.validate();
  return model;
}

}  // namespace eucon::control
