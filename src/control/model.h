// The dynamic model of end-to-end tasks (paper §5) as seen by controllers.
#pragma once

#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "rts/spec.h"

namespace eucon::control {

// Everything a utilization controller needs to know about the plant:
// the subtask allocation matrix F (eq. 6), the utilization set points B,
// and the rate actuator limits (constraint 2).
struct PlantModel {
  linalg::Matrix f;       // n×m
  linalg::Vector b;       // n set points
  linalg::Vector rate_min;  // m
  linalg::Vector rate_max;  // m

  std::size_t num_processors() const { return f.rows(); }
  std::size_t num_tasks() const { return f.cols(); }

  void validate() const;
};

// Builds the model from a task-set spec. When `set_points` is empty the
// Liu–Layland RMS bounds (paper eq. 13) are used — the paper's choice for
// guaranteeing end-to-end deadlines through subdeadline enforcement.
PlantModel make_plant_model(const rts::SystemSpec& spec,
                            const linalg::Vector& set_points = {});

}  // namespace eucon::control
