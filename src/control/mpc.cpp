#include "control/mpc.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace eucon::control {

using linalg::Matrix;
using linalg::Vector;

void MpcParams::validate(std::size_t n, std::size_t m) const {
  EUCON_REQUIRE(prediction_horizon >= 1, "prediction horizon must be >= 1");
  EUCON_REQUIRE(control_horizon >= 1 && control_horizon <= prediction_horizon,
                "control horizon must be in [1, P]");
  EUCON_REQUIRE(tref_over_ts > 0.0, "Tref/Ts must be positive");
  EUCON_REQUIRE(q.empty() || q.size() == n, "Q weight size mismatch");
  EUCON_REQUIRE(r.empty() || r.size() == m, "R weight size mismatch");
  for (std::size_t i = 0; i < q.size(); ++i)
    EUCON_REQUIRE(q[i] >= 0.0, "Q weights must be non-negative");
  for (std::size_t i = 0; i < r.size(); ++i)
    EUCON_REQUIRE(r[i] > 0.0, "R weights must be positive");
}

namespace {

Vector weights_or_ones(const Vector& w, std::size_t size) {
  return w.empty() ? Vector(size, 1.0) : w;
}

// S_i: the m×(mM) selector summing the first min(i, M) input blocks, i.e.
// r(k+i|k) - r(k-1) = S_i x for steps within the horizon.
Matrix selector(std::size_t m, int control_horizon, int i) {
  const int blocks = std::min(i, control_horizon);
  Matrix s(m, m * static_cast<std::size_t>(control_horizon));
  for (int blk = 0; blk < blocks; ++blk)
    for (std::size_t r = 0; r < m; ++r)
      s(r, static_cast<std::size_t>(blk) * m + r) = 1.0;
  return s;
}

}  // namespace

MpcMatrices build_mpc_matrices(const PlantModel& model, const MpcParams& params) {
  model.validate();
  const std::size_t n = model.num_processors();
  const std::size_t m = model.num_tasks();
  params.validate(n, m);

  const int p = params.prediction_horizon;
  const int mh = params.control_horizon;
  const Vector q = weights_or_ones(params.q, n);
  const Vector r = weights_or_ones(params.r, m);

  const std::size_t rows = n * static_cast<std::size_t>(p) +
                           m * static_cast<std::size_t>(mh);
  const std::size_t cols = m * static_cast<std::size_t>(mh);

  MpcMatrices mats;
  mats.c = Matrix(rows, cols);
  mats.du = Matrix(rows, n);
  mats.dr = Matrix(rows, m);

  // Tracking blocks: sqrt(Q) (F S_i x - (ref_i - u(k))) for i = 1..P, with
  // ref_i - u(k) = (1 - e^{-i/(Tref/Ts)}) (B - u(k))   (eq. 8).
  std::size_t row0 = 0;
  for (int i = 1; i <= p; ++i, row0 += n) {
    const Matrix fsi = model.f * selector(m, mh, i);
    const double shape = 1.0 - std::exp(-static_cast<double>(i) / params.tref_over_ts);
    for (std::size_t rr = 0; rr < n; ++rr) {
      const double sq = std::sqrt(q[rr]);
      for (std::size_t cc = 0; cc < cols; ++cc)
        mats.c(row0 + rr, cc) = sq * fsi(rr, cc);
      mats.du(row0 + rr, rr) = sq * shape;
    }
  }

  // Control-penalty blocks for i = 0..M-1. kDeltaRate penalizes
  // sqrt(R) Δr(k+i|k); kDeltaDeltaRate penalizes the successive difference
  // sqrt(R) (Δr(k+i|k) - Δr(k+i-1|k)), where for i = 0 the subtrahend is
  // the previously applied Δr(k-1), carried on the d side.
  for (int i = 0; i < mh; ++i, row0 += m) {
    for (std::size_t rr = 0; rr < m; ++rr) {
      const double sr = std::sqrt(r[rr]);
      mats.c(row0 + rr, static_cast<std::size_t>(i) * m + rr) = sr;
      if (params.penalty_form == PenaltyForm::kDeltaDeltaRate) {
        if (i > 0)
          mats.c(row0 + rr, static_cast<std::size_t>(i - 1) * m + rr) = -sr;
        else
          mats.dr(row0 + rr, rr) = sr;
      }
    }
  }
  EUCON_ASSERT(row0 == rows, "MPC matrix assembly row mismatch");
  return mats;
}

MpcController::MpcController(PlantModel model, MpcParams params,
                             Vector initial_rates,
                             qp::QpWorkspace* shared_workspace)
    : model_(std::move(model)),
      active_model_(model_),
      params_(std::move(params)),
      mats_(build_mpc_matrices(active_model_, params_)),
      solver_(mats_.c),
      enabled_(model_.num_tasks(), true),
      tracked_(model_.num_processors(), true),
      tracked_count_(model_.num_processors()),
      gain_estimate_(model_.num_processors(), 1.0),
      rates_(std::move(initial_rates)),
      dr_prev_(model_.num_tasks(), 0.0),
      shared_ws_(shared_workspace) {
  EUCON_REQUIRE(rates_.size() == model_.num_tasks(),
                "initial rate vector size mismatch");
  rates_ = rates_.clamped(model_.rate_min, model_.rate_max);
  rebuild_constraint_templates();
}

void MpcController::set_set_points(const Vector& b) {
  EUCON_REQUIRE(b.size() == model_.num_processors(), "set-point size mismatch");
  model_.b = b;
  model_.validate();
  active_model_.b = b;
}

void MpcController::rebuild_active_model() {
  // Untracked processors keep their du rows in build_mpc_matrices (sq·shape
  // entries), but their C tracking rows are all zero here, so the residual
  // on those rows is a constant — it shifts the cost, never the argmin. C
  // keeps full column rank through the control-penalty rows regardless.
  active_model_.f = model_.f;
  for (std::size_t i = 0; i < active_model_.f.rows(); ++i)
    for (std::size_t j = 0; j < active_model_.f.cols(); ++j)
      active_model_.f(i, j) = tracked_[i] && enabled_[j]
                                  ? gain_estimate_[i] * model_.f(i, j)
                                  : 0.0;
  mats_ = build_mpc_matrices(active_model_, params_);
  solver_.reset(mats_.c);
  rebuild_constraint_templates();
}

void MpcController::rebuild_constraint_templates() {
  const std::size_t n = active_model_.num_processors();
  const std::size_t m = active_model_.num_tasks();
  const int mh = params_.control_horizon;
  const std::size_t cols = m * static_cast<std::size_t>(mh);

  // Distinct utilization constraints exist only for i = 1..M: beyond the
  // control horizon the predicted utilization is constant (S_i = S_M).
  // Untracked processors get no utilization rows at all (row-skipping): a
  // zeroed-F row with a stale u > B on the right-hand side would make the
  // instance unconditionally infeasible.
  const std::size_t util_rows = tracked_count_ * static_cast<std::size_t>(mh);
  const std::size_t rate_rows = 2 * m * static_cast<std::size_t>(mh);

  a_full_ = Matrix(util_rows + rate_rows, cols);
  a_rates_ = Matrix(rate_rows, cols);
  x_zero_ = Vector(cols, 0.0);
  x_drop_ = Vector(cols, 0.0);

  std::size_t row0 = 0;
  for (int i = 1; i <= mh; ++i) {
    const Matrix fsi = active_model_.f * selector(m, mh, i);
    for (std::size_t rr = 0; rr < n; ++rr) {
      if (!tracked_[rr]) continue;
      for (std::size_t cc = 0; cc < cols; ++cc) a_full_(row0, cc) = fsi(rr, cc);
      ++row0;
    }
  }
  for (int i = 1; i <= mh; ++i, row0 += 2 * m) {
    const Matrix si = selector(m, mh, i);
    // r(k+i-1|k) <= R_max  and  -r(k+i-1|k) <= -R_min.
    a_full_.set_block(row0, 0, si);
    a_full_.set_block(row0 + m, 0, -1.0 * si);
    a_rates_.set_block(row0 - util_rows, 0, si);
    a_rates_.set_block(row0 - util_rows + m, 0, -1.0 * si);
  }
  EUCON_ASSERT(row0 == util_rows + rate_rows,
               "MPC constraint template row mismatch");

  // Size the QP workspace for the larger template here, off the hot path:
  // update() then solves either instance without allocating.
  active_workspace().reserve(cols, util_rows + rate_rows);

  // A model change invalidates the carried working sets. Reserving each to
  // its template's row count here keeps the post-solve working-set copy in
  // update() heap-free even the first time a new high-water count appears.
  warm_full_.working.clear();
  warm_full_.working.reserve(util_rows + rate_rows);
  warm_rates_.working.clear();
  warm_rates_.working.reserve(rate_rows);
}

void MpcController::set_shared_workspace(qp::QpWorkspace* ws) {
  shared_ws_ = ws;
  // Growth-only: reserving for this controller's larger template leaves any
  // capacity a bigger sibling already established untouched.
  active_workspace().reserve(a_full_.cols(), a_full_.rows());
}

void MpcController::set_enabled_tasks(const std::vector<bool>& enabled) {
  EUCON_REQUIRE(enabled.size() == model_.num_tasks(),
                "enabled-task mask size mismatch");
  EUCON_REQUIRE(std::find(enabled.begin(), enabled.end(), true) != enabled.end(),
                "at least one task must stay enabled");
  enabled_ = enabled;
  for (std::size_t j = 0; j < enabled_.size(); ++j)
    if (!enabled_[j]) dr_prev_[j] = 0.0;
  rebuild_active_model();
}

void MpcController::set_tracked_processors(const std::vector<bool>& tracked) {
  EUCON_REQUIRE(tracked.size() == model_.num_processors(),
                "tracked-processor mask size mismatch");
  EUCON_REQUIRE(std::find(tracked.begin(), tracked.end(), true) != tracked.end(),
                "at least one processor must stay tracked");
  if (tracked == tracked_) return;  // avoid invalidating warm starts
  tracked_ = tracked;
  tracked_count_ = static_cast<std::size_t>(
      std::count(tracked_.begin(), tracked_.end(), true));
  rebuild_active_model();
}

void MpcController::reset_rates(const linalg::Vector& rates) {
  EUCON_REQUIRE(rates.size() == model_.num_tasks(),
                "rate vector size mismatch");
  EUCON_CHECK_FINITE_VEC("MpcController::reset_rates input", rates);
  rates_ = rates.clamped(model_.rate_min, model_.rate_max);
  dr_prev_ = Vector(model_.num_tasks(), 0.0);
}

void MpcController::sync_rates(const linalg::Vector& rates) {
  EUCON_REQUIRE(rates.size() == model_.num_tasks(),
                "rate vector size mismatch");
  for (std::size_t j = 0; j < rates_.size(); ++j)
    rates_[j] =
        std::clamp(rates[j], model_.rate_min[j], model_.rate_max[j]);
}

void MpcController::set_allocation_matrix(const linalg::Matrix& f) {
  EUCON_REQUIRE(f.rows() == model_.num_processors() &&
                    f.cols() == model_.num_tasks(),
                "allocation matrix size mismatch");
  model_.f = f;
  model_.validate();
  rebuild_active_model();
}

void MpcController::set_gain_estimate(const linalg::Vector& gains) {
  EUCON_REQUIRE(gains.size() == model_.num_processors(),
                "gain estimate size mismatch");
  for (std::size_t i = 0; i < gains.size(); ++i)
    EUCON_REQUIRE(gains[i] > 0.0, "gain estimates must be positive");
  gain_estimate_ = gains;
  rebuild_active_model();
}

void MpcController::assemble_d(const Vector& u) {
  b_minus_u_ = active_model_.b;
  b_minus_u_ -= u;
  linalg::multiply_into(mats_.du, b_minus_u_, d_);
  linalg::multiply_into(mats_.dr, dr_prev_, d_tail_);
  d_ += d_tail_;
}

void MpcController::fill_constraint_rhs(const Vector& u, bool with_util_rows,
                                        Vector& b) const {
  const std::size_t n = active_model_.num_processors();
  const std::size_t m = active_model_.num_tasks();
  const int mh = params_.control_horizon;

  const std::size_t util_rows =
      with_util_rows ? tracked_count_ * static_cast<std::size_t>(mh) : 0;
  const std::size_t rate_rows = 2 * m * static_cast<std::size_t>(mh);
  // Steady-state no-op past the first period per template: the scratch only
  // regrows when the fallback toggles the utilization rows on or off.
  b.data().resize(util_rows + rate_rows);  // eucon-lint: allow(allocation-in-realtime)

  std::size_t row0 = 0;
  if (with_util_rows) {
    // Mirrors the row-skipping layout of rebuild_constraint_templates.
    for (int i = 1; i <= mh; ++i)
      for (std::size_t rr = 0; rr < n; ++rr)
        if (tracked_[rr]) b[row0++] = active_model_.b[rr] - u[rr];
  }
  for (int i = 1; i <= mh; ++i, row0 += 2 * m) {
    for (std::size_t rr = 0; rr < m; ++rr) {
      b[row0 + rr] = active_model_.rate_max[rr] - rates_[rr];
      b[row0 + m + rr] = rates_[rr] - active_model_.rate_min[rr];
    }
  }
}

const Vector& MpcController::update(const Vector& u) {
  EUCON_REQUIRE(u.size() == active_model_.num_processors(),
                "utilization vector size mismatch");
  EUCON_CHECK_FINITE_VEC("MpcController::update input u", u);
  OBS_TIMED(metrics_, "mpc.update");
  ++update_count_;
  const std::size_t m = active_model_.num_tasks();

  const bool want_util_rows =
      params_.constraint_mode == ConstraintMode::kHardWithFallback;

  assemble_d(u);

  // Feasible starting points (F >= 0 elementwise, so pushing every rate to
  // R_min minimizes every predicted utilization):
  //   x = 0                      feasible when u(k) <= B already;
  //   x = [R_min - r(k-1); 0; …] feasible whenever the problem is feasible.
  // x_zero_ stays all-zero; only x_drop_'s head changes period to period
  // (its tail past m was zeroed when the templates were rebuilt).
  const double tol = 1e-9;
  for (std::size_t j = 0; j < m; ++j) x_drop_[j] = active_model_.rate_min[j] - rates_[j];

  bool util_rows = want_util_rows;
  const Vector* x0 = nullptr;
  if (util_rows) {
    bool zero_ok = true, drop_ok = true;
    for (std::size_t i = 0; i < active_model_.num_processors(); ++i) {
      if (!tracked_[i]) continue;  // no util rows for untracked processors
      if (u[i] > active_model_.b[i] + tol) zero_ok = false;
      double u_drop = u[i];
      for (std::size_t j = 0; j < m; ++j) u_drop += active_model_.f(i, j) * x_drop_[j];
      if (u_drop > active_model_.b[i] + tol) drop_ok = false;
    }
    if (zero_ok) {
      x0 = &x_zero_;
    } else if (drop_ok) {
      x0 = &x_drop_;
    } else {
      // No rate vector can satisfy u <= B (paper §6.2: infeasible instance;
      // rate adaptation alone cannot reach the set points). Best effort:
      // drop the utilization rows and let the tracking term minimize the
      // overshoot.
      util_rows = false;
      ++fallback_count_;
    }
  }
  if (!util_rows) x0 = &x_zero_;

  fill_constraint_rhs(u, util_rows, b_scratch_);
  const Matrix& a = util_rows ? a_full_ : a_rates_;
  qp::WarmStart& warm = util_rows ? warm_full_ : warm_rates_;
  {
    OBS_TIMED(metrics_, "qp.solve");
    solver_.solve_into(d_, a, b_scratch_, x0, params_.solver, &warm,
                       active_workspace(), result_);
  }
  last_status_ = result_.status;
  last_iterations_ = result_.iterations;
  last_fast_path_ = result_.fast_path;
  last_used_fallback_ = want_util_rows && !util_rows;
  last_used_util_rows_ = util_rows;
  qp_iterations_total_ += result_.iterations < 0
                              ? 0u
                              : static_cast<std::uint64_t>(result_.iterations);
  if (result_.fast_path) ++fast_path_hits_;

  // Receding horizon: apply only Δr(k|k), clamped into the rate box.
  // Suspended tasks stay frozen. All in place: update() is EUCON_REALTIME,
  // so no temporaries.
  for (std::size_t j = 0; j < m; ++j) {
    const double dr = enabled_[j] ? result_.x[j] : 0.0;
    const double clamped = std::clamp(rates_[j] + dr, active_model_.rate_min[j],
                                      active_model_.rate_max[j]);
    dr_prev_[j] = clamped - rates_[j];
    rates_[j] = clamped;
  }
  EUCON_CHECK_FINITE_VEC("MpcController::update result rates", rates_);
  return rates_;
}

}  // namespace eucon::control
