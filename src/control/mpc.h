// The EUCON model predictive controller (paper §6).
//
// Each sampling period the controller minimizes the cost (eq. 7)
//
//   V(k) =  Σ_{i=1..P} ||u(k+i|k) - ref(k+i|k)||²_Q
//         + Σ_{i=0..M-1} ||Δr(k+i|k) - Δr(k+i-1|k)||²_R
//
// over the input trajectory x = [Δr(k|k); …; Δr(k+M-1|k)], subject to the
// utilization constraints u(k+i|k) <= B and the rate limits
// R_min <= r(k+i|k) <= R_max, using the approximate model (eq. 6, 9)
// u(k+i|k) = u(k) + F Σ_{j<=min(i,M)-1} Δr(k+j|k) and the exponential
// reference trajectory (eq. 8). Only Δr(k|k) is applied (receding horizon).
//
// The optimization is a constrained least-squares problem solved with the
// in-repo active-set lsqlin (the paper used MATLAB's).
#pragma once

#include <cstdint>

#include "common/annotations.h"
#include "control/controller.h"
#include "control/model.h"
#include "obs/registry.h"
#include "qp/lsqlin.h"

namespace eucon::control {

// The control-penalty term of the cost function. The paper's eq. (7)
// literally reads ||Δr(k+i|k) - Δr(k+i-1|k)||², but that form leaves the
// closed loop *marginally* stable in the null space of F (rates can ramp
// forever in directions that change no utilization) and contradicts the
// paper's own first-order closed-loop model u(k) = A u(k-1) + C (§6.2).
// The form consistent with that analysis — and with the published EUCON
// follow-ons (DEUCON, FC-ORB) — penalizes the rate change itself,
// ||Δr(k+i|k)||², which is the default here. The literal reading remains
// available for the ablation bench.
enum class PenaltyForm {
  kDeltaRate,       // ||Δr(k+i|k)||²   (default; matches §6.2's analysis)
  kDeltaDeltaRate,  // ||Δr(k+i|k) - Δr(k+i-1|k)||²  (eq. 7 verbatim)
};

enum class ConstraintMode {
  // Enforce u(k+i|k) <= B; when no feasible rate vector exists (e.g. severe
  // overload against R_min), retry without the utilization rows so the
  // tracking objective still pulls utilization down (best effort).
  kHardWithFallback,
  // Never add the utilization rows; rely on tracking alone. (Ablation.)
  kSoftOnly,
};

struct MpcParams {
  int prediction_horizon = 2;  // P
  int control_horizon = 1;     // M (<= P)
  double tref_over_ts = 4.0;   // reference-trajectory time constant (eq. 8)
  linalg::Vector q;            // per-processor tracking weights (empty = 1)
  linalg::Vector r;            // per-task control-penalty weights (empty = 1)
  PenaltyForm penalty_form = PenaltyForm::kDeltaRate;
  ConstraintMode constraint_mode = ConstraintMode::kHardWithFallback;
  qp::Options solver;

  void validate(std::size_t n, std::size_t m) const;
};

// The constant matrices of the quadratic program. d(k) is assembled per
// period as  d = du (B - u(k)) + dr Δr(k-1).
struct MpcMatrices {
  linalg::Matrix c;   // (nP + mM) × mM stacked least-squares matrix
  linalg::Matrix du;  // (nP + mM) × n
  linalg::Matrix dr;  // (nP + mM) × m
};

MpcMatrices build_mpc_matrices(const PlantModel& model, const MpcParams& params);

class MpcController final : public Controller {
 public:
  // `shared_workspace` (optional) routes the active-set QP through a
  // caller-owned workspace from the first solve on, and the private
  // workspace is never sized — see set_shared_workspace.
  MpcController(PlantModel model, MpcParams params,
                linalg::Vector initial_rates,
                qp::QpWorkspace* shared_workspace = nullptr);

  const linalg::Vector& update(const linalg::Vector& u) override EUCON_REALTIME;
  std::string name() const override { return "EUCON"; }

  const PlantModel& model() const { return model_; }
  const MpcParams& params() const { return params_; }
  linalg::Vector current_rates() const { return rates_; }

  // Allows online set-point changes (overload-protection use case, §3.3).
  void set_set_points(const linalg::Vector& b);

  // Marks tasks as suspended (admission control, §6.2): a suspended task's
  // allocation column is zeroed in the prediction model and its rate is
  // frozen, so the optimizer neither relies on it nor drifts it. Pass one
  // flag per task; all-true restores normal operation.
  void set_enabled_tasks(const std::vector<bool>& enabled);
  const std::vector<bool>& enabled_tasks() const { return enabled_; }

  // Drops processors from the tracked set (stale-lane degradation — see
  // eucon/faults.h and docs/robustness.md): an untracked processor's
  // allocation row is zeroed in the prediction model and its utilization
  // constraint rows are omitted from the QP, so a stale measurement can
  // neither attract the optimizer nor render the instance infeasible
  // (0·x <= B - u_stale would be unsatisfiable for u_stale > B). Pass one
  // flag per processor; all-true restores normal operation. At least one
  // processor must stay tracked.
  void set_tracked_processors(const std::vector<bool>& tracked);
  const std::vector<bool>& tracked_processors() const { return tracked_; }

  // Resynchronizes the controller's rate belief r(k-1) with externally
  // applied rates (watchdog recovery after a blackout handled by a backup
  // policy). Clamps into [R_min, R_max] and zeroes the carried Δr(k-1).
  void reset_rates(const linalg::Vector& rates);

  // Hot-path variant of reset_rates for coordinators that interleave
  // several controllers over the same actuators (hierarchical staggered
  // sweeps): clamps element-wise into the existing buffer — no
  // allocation — and keeps the carried Δr(k-1).
  void sync_rates(const linalg::Vector& rates) EUCON_REALTIME;

  // Replaces the allocation matrix after a task reallocation (§6.2): the
  // prediction model follows the new placement; rates and set points are
  // untouched.
  void set_allocation_matrix(const linalg::Matrix& f);

  // Installs utilization-gain estimates ĝ (one per processor): the
  // prediction model becomes u(k+1) = u(k) + diag(ĝ) F Δr(k), replacing
  // the paper's G = I assumption. Used by AdaptiveMpcController.
  void set_gain_estimate(const linalg::Vector& gains);
  const linalg::Vector& gain_estimate() const { return gain_estimate_; }

  // Δr(k-1) as actually applied — exposed so adaptive wrappers can form
  // the predicted utilization change F Δr(k-1) for gain estimation.
  const linalg::Vector& last_applied_delta() const { return dr_prev_; }

  // Diagnostics.
  qp::Status last_status() const { return last_status_; }
  std::uint64_t fallback_count() const { return fallback_count_; }
  std::uint64_t update_count() const { return update_count_; }

  // Per-period solver observability (the trace layer reads these right
  // after update()): active-set iterations of the last solve, whether the
  // cached-QR fast path short-circuited it, whether the utilization rows
  // were dropped (infeasible instance), and the final working set.
  int last_iterations() const { return last_iterations_; }
  bool last_fast_path() const { return last_fast_path_; }
  bool last_used_fallback() const { return last_used_fallback_; }
  const std::vector<std::size_t>& last_working_set() const {
    return last_used_util_rows_ ? warm_full_.working : warm_rates_.working;
  }
  std::uint64_t qp_iterations_total() const { return qp_iterations_total_; }
  std::uint64_t fast_path_hits() const { return fast_path_hits_; }

  // Attaches a metrics registry (null detaches): update() then records the
  // `mpc.update` / `qp.solve` scoped timers and nothing else changes. The
  // registry must outlive the controller or the next set call.
  void set_metrics_registry(obs::Registry* registry) { metrics_ = registry; }

  // Routes the active-set QP through a caller-owned workspace instead of
  // the controller's private one (null restores the private workspace).
  // The hierarchical controller shares one workspace — sized here to this
  // controller's larger constraint template, growth-only — across every
  // local MPC in a shard, so scratch memory scales with the largest local
  // problem instead of with controller count. The workspace must outlive
  // the controller or the next set call; sharing one workspace across
  // controllers updated concurrently is a data race.
  void set_shared_workspace(qp::QpWorkspace* ws);

 private:
  // Rebuilds the constraint-matrix templates (they depend only on the
  // active model, not on u or the current rates): `a_full_` carries the
  // u(k+i|k) <= B rows followed by the rate-bound rows; `a_rates_` the
  // rate-bound rows alone (the infeasible-instance fallback).
  void rebuild_constraint_templates();
  // Fills the per-period right-hand side for the chosen template in place.
  void fill_constraint_rhs(const linalg::Vector& u, bool with_util_rows,
                           linalg::Vector& b) const;
  // Assembles d(k) = du (B - u(k)) + dr Δr(k-1) into the d_ scratch.
  void assemble_d(const linalg::Vector& u);
  // Recomputes active_model_.f = diag(gain) * (mask-filtered F), the MPC
  // matrices, the solver's cached factorization and the constraint
  // templates.
  void rebuild_active_model();

  PlantModel model_;       // as configured
  PlantModel active_model_;  // with suspended tasks' columns zeroed
  MpcParams params_;
  MpcMatrices mats_;
  qp::LsqlinSolver solver_;  // caches the factorization of mats_.c
  std::vector<bool> enabled_;
  std::vector<bool> tracked_;      // per-processor; false = stale, ignored
  std::size_t tracked_count_ = 0;  // number of true flags in tracked_
  linalg::Vector gain_estimate_;  // per-processor; all-ones = paper's G = I
  linalg::Vector rates_;    // r(k-1), the currently applied rates
  linalg::Vector dr_prev_;  // Δr(k-1) actually applied
  qp::Status last_status_ = qp::Status::kOptimal;
  std::uint64_t fallback_count_ = 0;
  std::uint64_t update_count_ = 0;
  int last_iterations_ = 0;
  bool last_fast_path_ = false;
  bool last_used_fallback_ = false;
  bool last_used_util_rows_ = true;
  std::uint64_t qp_iterations_total_ = 0;
  std::uint64_t fast_path_hits_ = 0;
  obs::Registry* metrics_ = nullptr;  // non-owning; null = no metrics

  // Per-period scratch (sized in rebuild_constraint_templates) and the
  // receding-horizon warm starts, one per constraint template so working-set
  // indices never cross row layouts.
  linalg::Matrix a_full_;    // util rows + rate rows
  linalg::Matrix a_rates_;   // rate rows only
  linalg::Vector b_scratch_;
  linalg::Vector d_;
  linalg::Vector d_tail_;    // dr Δr(k-1) term
  linalg::Vector b_minus_u_;
  linalg::Vector x_zero_;    // all-zero warm start for the fallback retry
  linalg::Vector x_drop_;    // Δr = -r(k-1) "drop everything" feasibility probe
  qp::LsqlinResult result_;  // per-period solver result (x reused as scratch)
  qp::WarmStart warm_full_;
  qp::WarmStart warm_rates_;
  // Active-set QP scratch, reserved for the larger constraint template so a
  // period's solve — fast path miss included — never touches the heap.
  // `shared_ws_` (when set) substitutes a caller-owned workspace for the
  // private one on every solve.
  qp::QpWorkspace qp_ws_;
  qp::QpWorkspace* shared_ws_ = nullptr;  // non-owning; null = use qp_ws_

  qp::QpWorkspace& active_workspace() {
    return shared_ws_ != nullptr ? *shared_ws_ : qp_ws_;
  }
};

}  // namespace eucon::control
