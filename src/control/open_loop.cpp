#include "control/open_loop.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "qp/lsqlin.h"

namespace eucon::control {

using linalg::Matrix;
using linalg::Vector;

OpenLoopController::OpenLoopController(const PlantModel& model,
                                       Vector preferred_rates)
    : model_(model) {
  model_.validate();
  const std::size_t n = model_.num_processors();
  const std::size_t m = model_.num_tasks();
  EUCON_REQUIRE(preferred_rates.size() == m, "preferred rate size mismatch");

  // min ||F r - B||² + eps ||r - preferred||²  s.t.  R_min <= r <= R_max.
  // The eps term selects, among the exact solutions of the (typically
  // underdetermined) design equation B = F r', the one nearest the
  // preferred profile.
  const double eps = 1e-4;
  Matrix c(n + m, m);
  Vector d(n + m);
  c.set_block(0, 0, model_.f);
  for (std::size_t i = 0; i < n; ++i) d[i] = model_.b[i];
  for (std::size_t j = 0; j < m; ++j) {
    c(n + j, j) = std::sqrt(eps);
    d[n + j] = std::sqrt(eps) * preferred_rates[j];
  }

  qp::LsqlinProblem prob;
  prob.c = std::move(c);
  prob.d = std::move(d);
  prob.lb = model_.rate_min;
  prob.ub = model_.rate_max;

  const Vector x0 = preferred_rates.clamped(model_.rate_min, model_.rate_max);
  const auto res = qp::lsqlin(prob, &x0);
  EUCON_ASSERT(res.status == qp::Status::kOptimal,
               "open-loop design problem did not solve");
  rates_ = res.x.clamped(model_.rate_min, model_.rate_max);
}

const Vector& OpenLoopController::update(const Vector& /*u*/) { return rates_; }

Vector OpenLoopController::expected_utilization(double etf) const {
  Vector u = model_.f * rates_;
  for (std::size_t i = 0; i < u.size(); ++i) u[i] = std::min(1.0, etf * u[i]);
  return u;
}

}  // namespace eucon::control
