// OPEN: the open-loop baseline of the paper's evaluation (§7.1).
//
// A designer assigns fixed task rates from the *estimated* execution times
// so that B = F r'. The rates never react to measured utilization, so any
// estimation error (etf ≠ 1) translates directly into under- or
// over-utilization — the failure mode EUCON is built to remove.
#pragma once

#include "control/controller.h"
#include "control/model.h"

namespace eucon::control {

class OpenLoopController final : public Controller {
 public:
  // Solves min ||F r - B||² within the rate box once, at design time.
  // `preferred_rates` breaks ties among the (usually many) exact solutions
  // by staying close to the given profile; the task set's initial rates are
  // the natural choice.
  OpenLoopController(const PlantModel& model, linalg::Vector preferred_rates);

  const linalg::Vector& update(const linalg::Vector& u) override;
  std::string name() const override { return "OPEN"; }

  linalg::Vector rates() const { return rates_; }

  // The utilization OPEN is expected to produce at execution-time factor
  // `etf` (before saturating at 1): etf · F r'. Used by the Figure-5 bench.
  linalg::Vector expected_utilization(double etf) const;

 private:
  PlantModel model_;
  linalg::Vector rates_;
};

}  // namespace eucon::control
