#include "control/pid.h"

#include "common/check.h"
#include "linalg/lu.h"

namespace eucon::control {

using linalg::Matrix;
using linalg::Vector;

PidController::PidController(PlantModel model, PidParams params,
                             Vector initial_rates)
    : model_(std::move(model)),
      params_(params),
      ft_(model_.f.transposed()),
      ff_t_(model_.f * ft_),
      rates_(std::move(initial_rates)) {
  model_.validate();
  EUCON_REQUIRE(rates_.size() == model_.num_tasks(),
                "initial rate vector size mismatch");
  rates_ = rates_.clamped(model_.rate_min, model_.rate_max);
  // Regularize F F^T slightly so processors hosting no subtask (all-zero
  // rows of F) do not make the distribution step singular.
  for (std::size_t i = 0; i < ff_t_.rows(); ++i) ff_t_(i, i) += 1e-9;
}

const Vector& PidController::update(const Vector& u) {
  EUCON_REQUIRE(u.size() == model_.num_processors(),
                "utilization vector size mismatch");
  const Vector e = model_.b - u;

  // Incremental (velocity-form) PID: the *change* in the requested
  // utilization delta per processor.
  Vector db = params_.ki * e;
  if (have_prev_) db += params_.kp * (e - e_prev_);
  if (params_.kd != 0.0 && have_prev2_)  // eucon-lint: allow(float-equality)
    db += params_.kd * (e - 2.0 * e_prev_ + e_prev2_);

  // Minimum-norm Δr with F Δr = Δb:  Δr = F^T (F F^T)^{-1} Δb.
  const Vector y = linalg::solve(ff_t_, db);
  const Vector dr = ft_ * y;

  rates_ = (rates_ + dr).clamped(model_.rate_min, model_.rate_max);
  if (have_prev_) {
    e_prev2_ = e_prev_;
    have_prev2_ = true;
  }
  e_prev_ = e;
  have_prev_ = true;
  return rates_;
}

}  // namespace eucon::control
