// A PID baseline for the paper's §6.1 claim that single-loop PID control
// "cannot be easily extended to end-to-end utilization control".
//
// Each processor runs an incremental PID on its own utilization error and
// requests a utilization change Δb_i; the per-task rate changes are then
// obtained through the minimum-norm solution of F Δr = Δb (the best static
// decoupling available). Unlike EUCON this ignores the constraints and does
// no prediction, so with strong coupling or active rate limits it degrades
// — which is exactly what the ablation bench demonstrates.
#pragma once

#include "control/controller.h"
#include "control/model.h"
#include "linalg/matrix.h"

namespace eucon::control {

struct PidParams {
  double kp = 0.3;
  double ki = 0.2;
  double kd = 0.0;
};

class PidController final : public Controller {
 public:
  PidController(PlantModel model, PidParams params, linalg::Vector initial_rates);

  const linalg::Vector& update(const linalg::Vector& u) override;
  std::string name() const override { return "PID"; }

 private:
  PlantModel model_;
  PidParams params_;
  linalg::Matrix ft_;      // F^T
  linalg::Matrix ff_t_;    // F F^T (for the min-norm distribution)
  linalg::Vector rates_;
  linalg::Vector e_prev_;
  linalg::Vector e_prev2_;
  bool have_prev_ = false;
  bool have_prev2_ = false;
};

}  // namespace eucon::control
