#include "control/reallocation.h"

#include <algorithm>

#include "common/check.h"

namespace eucon::control {

using linalg::Vector;

ReallocationPlanner::ReallocationPlanner(rts::SystemSpec spec,
                                         Vector set_points,
                                         ReallocationParams params)
    : spec_(std::move(spec)),
      set_points_(std::move(set_points)),
      params_(params) {
  spec_.validate();
  EUCON_REQUIRE(set_points_.size() ==
                    static_cast<std::size_t>(spec_.num_processors),
                "set-point size mismatch");
  EUCON_REQUIRE(params_.patience >= 1, "patience must be >= 1");
  EUCON_REQUIRE(params_.cooldown >= 0, "cooldown must be >= 0");
  periods_since_move_ = params_.cooldown;
}

std::optional<Move> ReallocationPlanner::update(const Vector& u,
                                                const Vector& rates) {
  EUCON_REQUIRE(u.size() == static_cast<std::size_t>(spec_.num_processors),
                "utilization size mismatch");
  EUCON_REQUIRE(rates.size() == spec_.num_tasks(), "rate size mismatch");
  ++periods_since_move_;

  // Estimated utilization per processor at current rates (the designer's
  // view); the ratio u_p / est_p approximates the local gain, used to
  // convert a subtask's estimated share into an expected actual share.
  std::vector<double> est(static_cast<std::size_t>(spec_.num_processors), 0.0);
  for (std::size_t t = 0; t < spec_.num_tasks(); ++t)
    for (const auto& sub : spec_.tasks[t].subtasks)
      est[static_cast<std::size_t>(sub.processor)] +=
          sub.estimated_exec * rates[t];

  // Find a processor stuck overloaded with all contributing rates at R_min.
  int stuck = -1;
  for (std::size_t p = 0; p < est.size(); ++p) {
    if (u[p] <= set_points_[p] + params_.overload_tol) continue;
    bool all_saturated = true, any = false;
    for (std::size_t t = 0; t < spec_.num_tasks(); ++t) {
      bool on_p = false;
      for (const auto& sub : spec_.tasks[t].subtasks)
        if (static_cast<std::size_t>(sub.processor) == p) on_p = true;
      if (!on_p) continue;
      any = true;
      if (rates[t] > spec_.tasks[t].rate_min * (1.0 + 1e-6))
        all_saturated = false;
    }
    if (any && all_saturated) {
      stuck = static_cast<int>(p);
      break;
    }
  }

  if (stuck < 0) {
    saturated_streak_ = 0;
    return std::nullopt;
  }
  ++saturated_streak_;
  if (saturated_streak_ < params_.patience ||
      periods_since_move_ < params_.cooldown)
    return std::nullopt;

  // Candidate moves: any subtask on the stuck processor, to any processor
  // that stays *feasible* after the move. Measured headroom is the wrong
  // test — the controller deliberately fills every destination to its set
  // point with elastic (rate-compressible) load. Feasibility compares the
  // destination's incompressible floor (everything at R_min) plus the
  // incoming subtask's floor against the set point, converting estimated
  // loads to expected actual ones with the destination's apparent gain.
  const auto sp = static_cast<std::size_t>(stuck);
  const double gain_src = est[sp] > 1e-9 ? u[sp] / est[sp] : 1.0;
  std::vector<double> floor_est(est.size(), 0.0);
  for (std::size_t t = 0; t < spec_.num_tasks(); ++t)
    for (const auto& sub : spec_.tasks[t].subtasks)
      floor_est[static_cast<std::size_t>(sub.processor)] +=
          sub.estimated_exec * spec_.tasks[t].rate_min;

  std::optional<Move> best;
  double best_share = 0.0;
  for (std::size_t t = 0; t < spec_.num_tasks(); ++t) {
    const auto& subtasks = spec_.tasks[t].subtasks;
    for (std::size_t j = 0; j < subtasks.size(); ++j) {
      if (subtasks[j].processor != stuck) continue;
      const double share = subtasks[j].estimated_exec * rates[t] * gain_src;
      const double share_floor =
          subtasks[j].estimated_exec * spec_.tasks[t].rate_min;
      for (int q = 0; q < spec_.num_processors; ++q) {
        if (q == stuck) continue;
        const auto qp = static_cast<std::size_t>(q);
        const double gain_dst = est[qp] > 1e-9 ? u[qp] / est[qp] : gain_src;
        const double floor_after =
            (floor_est[qp] + share_floor) * std::max(gain_dst, gain_src);
        if (floor_after > set_points_[qp] - params_.headroom_margin) continue;
        if (share > best_share) {
          best_share = share;
          best = Move{static_cast<int>(t), static_cast<int>(j), stuck, q};
        }
      }
    }
  }
  if (!best) return std::nullopt;

  spec_.tasks[static_cast<std::size_t>(best->task)]
      .subtasks[static_cast<std::size_t>(best->subtask)]
      .processor = best->to;
  ++moves_;
  saturated_streak_ = 0;
  periods_since_move_ = 0;
  return best;
}

}  // namespace eucon::control
