// Task reallocation: the third adaptation mechanism of §6.2.
//
// When a processor stays above its set point with every contributing rate
// already at R_min, rate adaptation has nothing left. Instead of shedding
// load (admission control), the planner *moves* one subtask to a processor
// with headroom: cheaper for the application (nothing stops running) at
// the cost of a migration.
//
// The planner is pure decision logic: it observes (u, rates), tracks the
// evolving placement, and emits at most one Move per cooldown window. The
// caller applies the move to the simulator (Simulator::migrate_subtask)
// and to the controller (MpcController::set_allocation_matrix) — the
// experiment runner does both when reallocation is enabled.
#pragma once

#include <cstdint>
#include <optional>

#include "linalg/vector.h"
#include "rts/spec.h"

namespace eucon::control {

struct ReallocationParams {
  int patience = 5;          // saturated-overload periods before a move
  int cooldown = 15;         // min periods between moves
  double overload_tol = 0.02;
  // A move must leave the destination at u + estimated_share <= B - margin.
  double headroom_margin = 0.05;
};

struct Move {
  int task = -1;
  int subtask = -1;
  int from = -1;
  int to = -1;
};

class ReallocationPlanner {
 public:
  // `set_points` are the (fixed, user-chosen) utilization bounds — note
  // that migrating subtasks would change the Liu–Layland counts, so a
  // deployment using reallocation supplies explicit set points.
  ReallocationPlanner(rts::SystemSpec spec, linalg::Vector set_points,
                      ReallocationParams params = {});

  // One step per sampling period. Returns a move when one should be
  // executed now (the planner already updated its own placement copy).
  std::optional<Move> update(const linalg::Vector& u,
                             const linalg::Vector& rates);

  // The placement after all executed moves.
  const rts::SystemSpec& spec() const { return spec_; }
  linalg::Matrix allocation_matrix() const { return spec_.allocation_matrix(); }
  std::uint64_t moves_executed() const { return moves_; }

 private:
  rts::SystemSpec spec_;
  linalg::Vector set_points_;
  ReallocationParams params_;
  int saturated_streak_ = 0;
  int periods_since_move_ = 0;
  std::uint64_t moves_ = 0;
};

}  // namespace eucon::control
