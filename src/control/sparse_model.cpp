#include "control/sparse_model.h"

#include <algorithm>

#include "common/check.h"

namespace eucon::control {

using linalg::SparseMatrix;
using linalg::Vector;

void SparsePlantModel::validate() const {
  const std::size_t n = f.rows();
  const std::size_t m = f.cols();
  EUCON_REQUIRE(n > 0 && m > 0, "plant model needs processors and tasks");
  EUCON_REQUIRE(b.size() == n, "set-point vector size mismatch");
  EUCON_REQUIRE(rate_min.size() == m && rate_max.size() == m,
                "rate bound size mismatch");
  for (std::size_t i = 0; i < n; ++i)
    EUCON_REQUIRE(b[i] > 0.0 && b[i] <= 1.0, "set points must be in (0, 1]");
  for (std::size_t j = 0; j < m; ++j) {
    EUCON_REQUIRE(rate_min[j] > 0.0, "rate_min must be positive");
    EUCON_REQUIRE(rate_max[j] >= rate_min[j], "rate_max < rate_min");
  }
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t k = f.row_begin(r); k < f.row_end(r); ++k)
      EUCON_REQUIRE(f.value(k) >= 0.0, "allocation matrix must be non-negative");
}

PlantModel SparsePlantModel::to_dense() const {
  PlantModel dense;
  dense.f = f.to_dense();
  dense.b = b;
  dense.rate_min = rate_min;
  dense.rate_max = rate_max;
  dense.validate();
  return dense;
}

SparsePlantModel make_sparse_plant_model(const rts::SystemSpec& spec,
                                         const Vector& set_points) {
  spec.validate();
  const std::size_t n = static_cast<std::size_t>(spec.num_processors);
  const std::size_t m = spec.num_tasks();
  std::vector<linalg::Triplet> entries;
  entries.reserve(spec.num_subtasks());
  for (std::size_t j = 0; j < m; ++j)
    for (const rts::SubtaskSpec& sub : spec.tasks[j].subtasks)
      entries.push_back({static_cast<std::size_t>(sub.processor), j,
                         sub.estimated_exec});

  SparsePlantModel model;
  model.f = SparseMatrix::from_triplets(n, m, std::move(entries));
  model.b = set_points.empty() ? spec.liu_layland_set_points() : set_points;
  model.rate_min = spec.rate_min_vector();
  model.rate_max = spec.rate_max_vector();
  model.validate();
  return model;
}

SparsePlantModel sparsify(const PlantModel& model) {
  model.validate();
  SparsePlantModel sparse;
  sparse.f = SparseMatrix::from_dense(model.f);
  sparse.b = model.b;
  sparse.rate_min = model.rate_min;
  sparse.rate_max = model.rate_max;
  return sparse;
}

SparseLinearPlant::SparseLinearPlant(SparsePlantModel model, Vector gains,
                                     Vector initial_rates)
    : model_(std::move(model)),
      gains_(std::move(gains)),
      rates_prev_(std::move(initial_rates)),
      dr_(model_.num_tasks(), 0.0),
      du_(model_.num_processors(), 0.0),
      u_(model_.num_processors(), 0.0) {
  model_.validate();
  EUCON_REQUIRE(gains_.size() == model_.num_processors(),
                "gain vector size mismatch");
  EUCON_REQUIRE(rates_prev_.size() == model_.num_tasks(),
                "initial rate vector size mismatch");
  rates_prev_ = rates_prev_.clamped(model_.rate_min, model_.rate_max);
  // u(0) = G F r(0): the utilization the initial rates produce.
  linalg::multiply_into(model_.f, rates_prev_, u_);
  for (std::size_t i = 0; i < u_.size(); ++i)
    u_[i] = std::clamp(gains_[i] * u_[i], 0.0, 1.0);
}

const Vector& SparseLinearPlant::step(const Vector& rates) {
  EUCON_REQUIRE(rates.size() == model_.num_tasks(),
                "rate vector size mismatch");
  for (std::size_t j = 0; j < dr_.size(); ++j)
    dr_[j] = rates[j] - rates_prev_[j];
  linalg::multiply_into(model_.f, dr_, du_);
  for (std::size_t i = 0; i < u_.size(); ++i)
    u_[i] = std::clamp(u_[i] + gains_[i] * du_[i], 0.0, 1.0);
  for (std::size_t j = 0; j < dr_.size(); ++j) rates_prev_[j] = rates[j];
  EUCON_CHECK_FINITE_VEC("SparseLinearPlant::step result", u_);
  return u_;
}

void SparseLinearPlant::set_utilization(const Vector& u) {
  EUCON_REQUIRE(u.size() == u_.size(), "utilization vector size mismatch");
  u_ = u;
}

}  // namespace eucon::control
