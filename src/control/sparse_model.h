// The plant model with a sparse allocation matrix — the cluster-scale
// counterpart of control/model.h.
//
// The paper's F is n×m with f_pj = total execution time of task j's
// subtasks on processor p; task chains touch a handful of processors each,
// so F's density falls as 1/n. At 1k–10k processors the dense Matrix stops
// being viable (10k × 20k doubles = 1.6 GB of zeros); SparsePlantModel
// stores F in CSR and the hierarchical controller builds its per-shard
// dense sub-blocks straight from the CSR structure.
#pragma once

#include "control/model.h"
#include "linalg/sparse.h"
#include "linalg/vector.h"
#include "rts/spec.h"

namespace eucon::control {

struct SparsePlantModel {
  linalg::SparseMatrix f;   // n×m, CSR
  linalg::Vector b;         // n set points
  linalg::Vector rate_min;  // m
  linalg::Vector rate_max;  // m

  std::size_t num_processors() const { return f.rows(); }
  std::size_t num_tasks() const { return f.cols(); }

  void validate() const;

  // Dense view for small-n parity tests and the central-baseline paths.
  // Do not call at cluster scale — it materializes the n×m zeros.
  PlantModel to_dense() const;
};

// Builds the sparse model from a task-set spec without ever materializing
// the dense F (the sparse analogue of make_plant_model). Empty set_points
// = the Liu–Layland RMS bounds, as in the dense builder.
SparsePlantModel make_sparse_plant_model(const rts::SystemSpec& spec,
                                         const linalg::Vector& set_points = {});

// Compresses an existing dense model (small-n interop).
SparsePlantModel sparsify(const PlantModel& model);

// The difference-equation plant u(k) = u(k-1) + G F Δr(k-1) over a sparse
// F — the idealized dynamics the scaling bench closes the loop against,
// allocation-free per step once constructed.
class SparseLinearPlant {
 public:
  SparseLinearPlant(SparsePlantModel model, linalg::Vector gains,
                    linalg::Vector initial_rates);

  // Applies the rate vector r(k) and returns u(k+1), saturated to [0, 1].
  const linalg::Vector& step(const linalg::Vector& rates) EUCON_REALTIME;

  const linalg::Vector& utilization() const { return u_; }
  void set_utilization(const linalg::Vector& u);

 private:
  SparsePlantModel model_;
  linalg::Vector gains_;
  linalg::Vector rates_prev_;
  linalg::Vector dr_;     // scratch: r(k) - r(k-1)
  linalg::Vector du_;     // scratch: F Δr
  linalg::Vector u_;
};

}  // namespace eucon::control
