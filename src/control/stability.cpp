#include "control/stability.h"

#include "common/check.h"
#include "linalg/eig.h"
#include "linalg/qr.h"

namespace eucon::control {

using linalg::Matrix;
using linalg::Vector;

StabilityAnalyzer::StabilityAnalyzer(PlantModel model, MpcParams params)
    : model_(std::move(model)), params_(std::move(params)) {
  const MpcMatrices mats = build_mpc_matrices(model_, params_);
  const std::size_t n = model_.num_processors();
  const std::size_t m = model_.num_tasks();

  // Unconstrained optimum: x* = C⁺ (du (B-u) + dr Δr_prev); the applied
  // input is its first block, so K1 = E0 C⁺ du and K2 = E0 C⁺ dr.
  const linalg::Qr qr(mats.c);
  k1_ = Matrix(m, n);
  for (std::size_t j = 0; j < n; ++j) {
    const Vector x = qr.solve_least_squares(mats.du.col(j));
    for (std::size_t i = 0; i < m; ++i) k1_(i, j) = x[i];
  }
  k2_ = Matrix(m, m);
  for (std::size_t j = 0; j < m; ++j) {
    const Vector x = qr.solve_least_squares(mats.dr.col(j));
    for (std::size_t i = 0; i < m; ++i) k2_(i, j) = x[i];
  }
}

Matrix StabilityAnalyzer::closed_loop_matrix(const Vector& gains) const {
  const std::size_t n = model_.num_processors();
  const std::size_t m = model_.num_tasks();
  EUCON_REQUIRE(gains.size() == n, "gain vector size mismatch");

  const Matrix gf = Matrix::diagonal(gains) * model_.f;  // n×m
  const Matrix gfk1 = gf * k1_;                          // n×n
  const Matrix gfk2 = gf * k2_;                          // n×m

  Matrix a(n + m, n + m);
  a.set_block(0, 0, Matrix::identity(n) - gfk1);
  a.set_block(0, n, gfk2);
  a.set_block(n, 0, -1.0 * k1_);
  a.set_block(n, n, k2_);
  return a;
}

double StabilityAnalyzer::spectral_radius(const Vector& gains) const {
  return linalg::spectral_radius(closed_loop_matrix(gains));
}

double StabilityAnalyzer::spectral_radius_uniform(double gain) const {
  return spectral_radius(Vector(model_.num_processors(), gain));
}

bool StabilityAnalyzer::is_stable(const Vector& gains) const {
  return spectral_radius(gains) < 1.0;
}

bool StabilityAnalyzer::is_stable_uniform(double gain) const {
  return spectral_radius_uniform(gain) < 1.0;
}

double StabilityAnalyzer::critical_uniform_gain(double g_max, double coarse_step,
                                                double tol) const {
  EUCON_REQUIRE(g_max > 0.0 && coarse_step > 0.0 && tol > 0.0,
                "critical_uniform_gain parameters must be positive");
  double lo = 0.0;  // stable (the loop is trivially stable as g -> 0)
  double hi = g_max;
  bool found_unstable = false;
  for (double g = coarse_step; g <= g_max + 1e-12; g += coarse_step) {
    if (!is_stable_uniform(g)) {
      hi = g;
      found_unstable = true;
      break;
    }
    lo = g;
  }
  if (!found_unstable) return g_max;
  while (hi - lo > tol) {
    const double mid = 0.5 * (lo + hi);
    if (is_stable_uniform(mid))
      lo = mid;
    else
      hi = mid;
  }
  return 0.5 * (lo + hi);
}

}  // namespace eucon::control
