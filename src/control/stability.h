// Stability analysis of the closed loop (paper §6.2).
//
// With the constraints inactive, minimizing the MPC cost is linear least
// squares, so the control law is linear:
//
//   Δr(k) = K1 (B - u(k)) + K2 Δr(k-1).
//
// Substituting into the *true* plant u(k+1) = u(k) + G F Δr(k) and stacking
// z(k) = [u(k); Δr(k-1)] gives z(k+1) = A(G) z(k) + c with
//
//   A(G) = [ I - G F K1   G F K2 ]
//          [    -K1          K2  ].
//
// The closed loop is stable iff every eigenvalue of A(G) lies strictly
// inside the unit circle. For SIMPLE with the paper's controller settings
// this reproduces the published critical uniform gain of ≈ 5.95.
#pragma once

#include "control/model.h"
#include "control/mpc.h"
#include "linalg/matrix.h"

namespace eucon::control {

class StabilityAnalyzer {
 public:
  StabilityAnalyzer(PlantModel model, MpcParams params);

  // The unconstrained-MPC feedback gains.
  const linalg::Matrix& k1() const { return k1_; }  // m×n
  const linalg::Matrix& k2() const { return k2_; }  // m×m

  // Closed-loop matrix for per-processor utilization gains G = diag(gains).
  linalg::Matrix closed_loop_matrix(const linalg::Vector& gains) const;

  double spectral_radius(const linalg::Vector& gains) const;
  double spectral_radius_uniform(double gain) const;
  bool is_stable(const linalg::Vector& gains) const;
  bool is_stable_uniform(double gain) const;

  // Largest g* (within [0, g_max]) such that the loop is stable for the
  // uniform gain g ∈ (0, g*): coarse upward scan to bracket the loss of
  // stability, then bisection to `tol`. Returns g_max when no instability
  // is found in range.
  double critical_uniform_gain(double g_max = 20.0, double coarse_step = 0.25,
                               double tol = 1e-3) const;

 private:
  PlantModel model_;
  MpcParams params_;
  linalg::Matrix k1_;
  linalg::Matrix k2_;
};

}  // namespace eucon::control
