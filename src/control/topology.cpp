#include "control/topology.h"

#include "common/check.h"

namespace eucon::control {

OwnershipTopology compute_ownership(const linalg::SparseMatrix& f) {
  const std::size_t n = f.rows();
  const std::size_t m = f.cols();
  OwnershipTopology topo;
  topo.owner.assign(m, 0);
  topo.owned.assign(n, {});

  // F^T's rows are F's columns: each task's processor list, ascending. The
  // strict `>` comparison over ascending indices realizes the documented
  // lowest-index tie-break.
  const linalg::SparseMatrix ft = f.transposed();
  for (std::size_t j = 0; j < m; ++j) {
    double best = 0.0;
    std::size_t owner = n;  // sentinel: no positive entry seen
    for (std::size_t k = ft.row_begin(j); k < ft.row_end(j); ++k) {
      if (ft.value(k) > best) {
        best = ft.value(k);
        owner = ft.col_index(k);
      }
    }
    EUCON_REQUIRE(owner < n,
                  "task " + std::to_string(j) +
                      " touches no processor (all-zero allocation column)");
    topo.owner[j] = owner;
    topo.owned[owner].push_back(j);
  }
  return topo;
}

}  // namespace eucon::control
