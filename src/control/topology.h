// Task-ownership topology shared by the decentralized (per-processor) and
// hierarchical (per-shard) controllers.
//
// Ownership partitions the actuators: every task is commanded by exactly
// one controller, the one responsible for the processor that OWNS the
// task. The rule, stated once here so both architectures agree:
//
//   owner(j) = the processor with the largest allocation entry f(i, j);
//   exact ties break to the LOWEST processor index.
//
// This is a deterministic stand-in for "the processor of the first
// subtask", which the flattened F cannot recover. A task whose F column is
// all zero touches no processor and cannot be controlled — that is a model
// error, reported with the offending task index.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/sparse.h"

namespace eucon::control {

struct OwnershipTopology {
  std::vector<std::size_t> owner;  // task j -> owning processor
  std::vector<std::vector<std::size_t>> owned;  // processor -> owned tasks,
                                                // ascending task index
};

// Computes the ownership partition from the n×m allocation matrix in
// sparse form: O(nnz), no dense column scans. Throws (naming the task)
// when a column is all zero or holds no positive entry.
OwnershipTopology compute_ownership(const linalg::SparseMatrix& f);

}  // namespace eucon::control
