#include "control/uncoordinated.h"

#include <algorithm>

#include "common/check.h"

namespace eucon::control {

using linalg::Vector;

UncoordinatedFcsController::UncoordinatedFcsController(PlantModel model,
                                                       UncoordinatedParams params,
                                                       Vector initial_rates)
    : model_(std::move(model)),
      params_(params),
      rates_(std::move(initial_rates)),
      e_prev_(model_.num_processors(), 0.0) {
  model_.validate();
  EUCON_REQUIRE(rates_.size() == model_.num_tasks(), "rate size mismatch");
  rates_ = rates_.clamped(model_.rate_min, model_.rate_max);

  const std::size_t n = model_.num_processors();
  const std::size_t m = model_.num_tasks();
  root_.resize(m);
  local_exec_.resize(m);
  for (std::size_t j = 0; j < m; ++j) {
    std::size_t owner = 0;
    double best = -1.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (model_.f(i, j) > best) {
        best = model_.f(i, j);
        owner = i;
      }
    }
    EUCON_REQUIRE(best > 0.0, "task touches no processor");
    root_[j] = owner;
    local_exec_[j] = best;
  }
}

const Vector& UncoordinatedFcsController::update(const Vector& u) {
  EUCON_REQUIRE(u.size() == model_.num_processors(),
                "utilization vector size mismatch");
  const Vector e = model_.b - u;

  // Per-processor incremental PI on the local error only.
  Vector db(model_.num_processors());
  for (std::size_t p = 0; p < db.size(); ++p) {
    db[p] = params_.ki * e[p];
    if (have_prev_) db[p] += params_.kp * (e[p] - e_prev_[p]);
  }

  // Distribute each processor's requested utilization change equally over
  // the tasks rooted there, converting via the LOCAL execution time only —
  // the "independent tasks" assumption in action.
  std::vector<int> rooted_count(db.size(), 0);
  for (std::size_t j = 0; j < root_.size(); ++j) ++rooted_count[root_[j]];
  for (std::size_t j = 0; j < root_.size(); ++j) {
    const std::size_t p = root_[j];
    if (rooted_count[p] == 0) continue;
    const double dr =
        db[p] / (static_cast<double>(rooted_count[p]) * local_exec_[j]);
    rates_[j] = std::clamp(rates_[j] + dr, model_.rate_min[j],
                           model_.rate_max[j]);
  }
  e_prev_ = e;
  have_prev_ = true;
  return rates_;
}

}  // namespace eucon::control
