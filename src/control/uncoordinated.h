// The pre-EUCON baseline the paper argues against (§1-2): distributed
// feedback control scheduling that "assumed tasks on different processors
// were independent from each other" (the [17] approach).
//
// Each processor runs an isolated single-processor feedback controller
// (incremental PI on its own utilization error) and adjusts only the tasks
// ROOTED on it — using only the locally hosted execution time, as if the
// task had no subtasks elsewhere. The load a task imposes on *other*
// processors through its downstream subtasks is invisible to everyone:
// nobody models the coupling, so processors whose load is dominated by
// remote subtasks cannot be regulated.
//
// This controller exists to reproduce the paper's central motivation
// quantitatively (see bench_ablation section E2): on coupled workloads it
// fails exactly where the MIMO controller succeeds.
#pragma once

#include <vector>

#include "control/controller.h"
#include "control/model.h"

namespace eucon::control {

struct UncoordinatedParams {
  double kp = 0.3;
  double ki = 0.2;
};

class UncoordinatedFcsController final : public Controller {
 public:
  UncoordinatedFcsController(PlantModel model, UncoordinatedParams params,
                             linalg::Vector initial_rates);

  const linalg::Vector& update(const linalg::Vector& u) override;
  std::string name() const override { return "FCS-IND"; }

  // Which processor each task is rooted on (largest allocation share —
  // the same deterministic rule the decentralized controller uses).
  const std::vector<std::size_t>& roots() const { return root_; }

 private:
  PlantModel model_;
  UncoordinatedParams params_;
  std::vector<std::size_t> root_;       // task -> owning processor
  std::vector<double> local_exec_;      // task's c on its root processor
  linalg::Vector rates_;
  linalg::Vector e_prev_;
  bool have_prev_ = false;
};

}  // namespace eucon::control
