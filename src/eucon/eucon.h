// Umbrella header for the EUCON library.
//
// Quickstart:
//
//   #include "eucon/eucon.h"
//
//   eucon::ExperimentConfig cfg;
//   cfg.spec = eucon::workloads::simple();
//   cfg.mpc = eucon::workloads::simple_controller_params();
//   cfg.sim.etf = eucon::rts::EtfProfile::constant(0.5);
//   auto result = eucon::run_experiment(cfg);
//
// See README.md for the architecture overview and examples/ for complete
// programs.
#pragma once

#include "control/adaptive.h"
#include "control/admission.h"
#include "control/controller.h"
#include "control/gain_estimator.h"
#include "control/decentralized.h"
#include "control/diagnostics.h"
#include "control/hierarchical.h"
#include "control/linear_plant.h"
#include "control/model.h"
#include "control/mpc.h"
#include "control/sparse_model.h"
#include "control/topology.h"
#include "control/open_loop.h"
#include "control/pid.h"
#include "control/reallocation.h"
#include "control/stability.h"
#include "control/uncoordinated.h"
#include "eucon/experiment.h"
#include "eucon/faults.h"
#include "eucon/metrics.h"
#include "eucon/network.h"
#include "eucon/replication.h"
#include "eucon/report.h"
#include "eucon/scenario.h"
#include "eucon/steer.h"
#include "eucon/workloads.h"
#include "linalg/eig.h"
#include "linalg/matrix.h"
#include "linalg/sparse.h"
#include "linalg/vector.h"
#include "qp/lsqlin.h"
#include "rts/simulator.h"
#include "rts/spec.h"
#include "rts/trace.h"
