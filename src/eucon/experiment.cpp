#include "eucon/experiment.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <future>

#include "common/annotations.h"
#include "common/check.h"
#include "common/mutex.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "control/adaptive.h"
#include "control/decentralized.h"
#include "control/open_loop.h"
#include "eucon/feedback_lane.h"

namespace eucon {

const char* controller_kind_name(ControllerKind kind) {
  switch (kind) {
    case ControllerKind::kEucon:
      return "EUCON";
    case ControllerKind::kOpen:
      return "OPEN";
    case ControllerKind::kPid:
      return "PID";
    case ControllerKind::kDecentralized:
      return "DEUCON";
    case ControllerKind::kAdaptive:
      return "EUCON-A";
    case ControllerKind::kUncoordinated:
      return "FCS-IND";
    case ControllerKind::kHierarchical:
      return "HIER";
  }
  return "?";
}

std::unique_ptr<control::Controller> make_controller(
    const ExperimentConfig& config) {
  const control::PlantModel model =
      control::make_plant_model(config.spec, config.set_points);
  const linalg::Vector r0 = config.spec.initial_rate_vector();
  switch (config.controller) {
    case ControllerKind::kEucon:
      return std::make_unique<control::MpcController>(model, config.mpc, r0);
    case ControllerKind::kOpen:
      return std::make_unique<control::OpenLoopController>(model, r0);
    case ControllerKind::kPid:
      return std::make_unique<control::PidController>(model, config.pid, r0);
    case ControllerKind::kDecentralized:
      return std::make_unique<control::DecentralizedMpcController>(
          model, config.mpc, r0);
    case ControllerKind::kAdaptive:
      return std::make_unique<control::AdaptiveMpcController>(model,
                                                              config.mpc, r0);
    case ControllerKind::kUncoordinated:
      return std::make_unique<control::UncoordinatedFcsController>(
          model, config.fcs, r0);
    case ControllerKind::kHierarchical:
      return std::make_unique<control::HierarchicalMpcController>(
          control::sparsify(model), config.mpc, config.hier, r0);
  }
  EUCON_FAIL_INVALID("unknown controller kind");
}

namespace {

const char* qp_status_name(qp::Status status) {
  switch (status) {
    case qp::Status::kOptimal:
      return "optimal";
    case qp::Status::kInfeasible:
      return "infeasible";
    case qp::Status::kMaxIterations:
      return "max_iterations";
  }
  return "?";
}

}  // namespace

std::vector<double> ExperimentResult::utilization_series(
    std::size_t processor) const {
  std::vector<double> s;
  s.reserve(trace.size());
  for (const auto& rec : trace) s.push_back(rec.u.at(processor));
  return s;
}

std::vector<double> ExperimentResult::rate_series(std::size_t task) const {
  std::vector<double> s;
  s.reserve(trace.size());
  for (const auto& rec : trace) s.push_back(rec.rates.at(task));
  return s;
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  EUCON_REQUIRE(config.sampling_period > 0.0, "sampling period must be positive");
  EUCON_REQUIRE(config.num_periods > 0, "experiment needs at least one period");
  EUCON_REQUIRE(config.report_loss_probability >= 0.0 &&
                    config.report_loss_probability < 1.0,
                "report loss probability must be in [0, 1)");
  EUCON_REQUIRE(!config.enable_admission_control ||
                    config.controller == ControllerKind::kEucon,
                "admission control requires the EUCON controller");
  EUCON_REQUIRE(!config.enable_reallocation ||
                    config.controller == ControllerKind::kEucon,
                "task reallocation requires the EUCON controller");
  EUCON_REQUIRE(config.degrade.stale_limit >= 0,
                "stale_limit must be non-negative");
  EUCON_REQUIRE(!config.degrade.enabled() ||
                    config.controller == ControllerKind::kEucon,
                "degradation policies require the EUCON controller");
  EUCON_REQUIRE(config.lane_initial.empty() ||
                    config.lane_initial.size() ==
                        static_cast<std::size_t>(config.spec.num_processors),
                "lane_initial size mismatch");
  config.spec.validate();

  auto controller = make_controller(config);
  rts::Simulator sim(config.spec, config.sim);

  // OPEN assigns its designed rates from time zero; for the feedback
  // controllers this re-applies the (clamped) initial rates, a no-op.
  if (config.controller == ControllerKind::kOpen) {
    auto* open = dynamic_cast<control::OpenLoopController*>(controller.get());
    sim.set_rates(open->rates().data());
  }

  const control::PlantModel model =
      control::make_plant_model(config.spec, config.set_points);
  std::unique_ptr<control::AdmissionGovernor> governor;
  if (config.enable_admission_control) {
    governor = std::make_unique<control::AdmissionGovernor>(model,
                                                            config.admission);
  }
  std::unique_ptr<control::ReallocationPlanner> planner;
  if (config.enable_reallocation) {
    planner = std::make_unique<control::ReallocationPlanner>(
        config.spec, model.b, config.reallocation);
  }

  // Monitor -> controller channels (with optional loss injection); the
  // lanes' RNG stream is derived from the seed independently of the
  // execution-time jitter stream, keeping runs reproducible. Last-delivered
  // values start at the set points (or config.lane_initial) so a lost early
  // report reads as "on target", not as an idle processor.
  FeedbackLanes lanes(
      config.lane_initial.empty() ? model.b : config.lane_initial,
      config.report_loss_probability, config.sim.seed);

  // ---- Fault injection + degradation state (docs/robustness.md) ----
  const std::size_t n = static_cast<std::size_t>(config.spec.num_processors);
  const bool faults_on = !config.faults.empty();
  const bool faults_active = faults_on || config.degrade.enabled();
  std::unique_ptr<faults::FaultInjector> injector;
  if (faults_on)
    injector = std::make_unique<faults::FaultInjector>(config.faults, n,
                                                       config.sim.seed);
  // Actuation is modeled as one rate-command message per owning processor
  // per period (owner = host of the task's first subtask, the decentralized
  // architecture's convention); the plan can delay or drop those messages.
  std::vector<std::size_t> owner(config.spec.num_tasks(), 0);
  std::vector<unsigned char> owner_has(n, 0);
  if (faults_on) {
    for (std::size_t j = 0; j < owner.size(); ++j) {
      owner[j] = static_cast<std::size_t>(
          config.spec.tasks[j].subtasks.front().processor);
      owner_has[owner[j]] = 1;
    }
  }
  struct PendingCommand {
    int arrive_k;
    linalg::Vector rates;
  };
  std::deque<PendingCommand> in_flight;

  const Ticks ts = units_to_ticks(config.sampling_period);
  ExperimentResult result;
  result.set_points = model.b;
  result.trace.reserve(static_cast<std::size_t>(config.num_periods));

  std::vector<bool> enabled(config.spec.num_tasks(), true);

  // Degradation state: the rates actually at the plant (distinct from the
  // central controller's belief once actuation faults bite), the lazily
  // constructed blackout backup, and the MPC tracked set.
  linalg::Vector applied(sim.current_rates());
  std::unique_ptr<control::Controller> backup;
  bool was_blackout = false;
  std::vector<bool> tracked(n, true);
  std::uint64_t act_lost_total = 0, overload_total = 0, blackout_total = 0;
  std::uint64_t stale_drops = 0, stale_restores = 0;
  int max_stale_run = 0;

  // Observability taps (docs/observability.md). `metrics` and `sink` are
  // per-run views onto caller-owned objects; when EUCON_OBS is compiled out
  // the whole trace-assembly path below folds away and OBS_TIMED is a no-op.
  auto* mpc_diag = dynamic_cast<control::MpcController*>(controller.get());
  obs::Registry* const metrics = config.metrics;
  if (mpc_diag != nullptr) mpc_diag->set_metrics_registry(metrics);
  obs::Sink* sink = nullptr;
  std::vector<double> prev_rates;     // for Δr in the trace
  std::uint64_t prev_stalls = 0;      // for per-period stall deltas
  if constexpr (obs::kEnabled) {
    sink = config.trace_sink;
    if (sink != nullptr) {
      obs::RunInfo info;
      info.name = config.run_name;
      info.controller = controller_kind_name(config.controller);
      info.seed = config.sim.seed;
      info.num_periods = config.num_periods;
      info.num_processors =
          static_cast<std::size_t>(config.spec.num_processors);
      info.num_tasks = config.spec.num_tasks();
      info.set_points = model.b.data();
      sink->begin_run(info);
      prev_rates = sim.current_rates();
    }
  }

  for (int k = 1; k <= config.num_periods; ++k) {
    OBS_TIMED(metrics, "experiment.period");
    std::uint64_t overload_hits = 0;
    if (injector != nullptr) {
      // Faults for period k are drawn before simulating it, so an overload
      // spike lands inside the window it is scripted for.
      injector->begin_period(k);
      for (std::size_t p = 0; p < n; ++p) {
        const double extra = injector->overload_for(p);
        if (extra > 0.0) {
          sim.inject_overhead(static_cast<int>(p), extra);
          ++overload_hits;
        }
      }
      overload_total += overload_hits;
    }
    {
      OBS_TIMED(metrics, "sim.advance");
      sim.run_until(static_cast<Ticks>(k) * ts);
    }
    const std::vector<double> u = sim.sample_utilizations();

    // Deliver the reports over the (possibly lossy) feedback lanes.
    const linalg::Vector& u_seen = lanes.deliver(
        linalg::Vector(u),
        injector != nullptr ? &injector->lane_loss_mask() : nullptr);
    max_stale_run = std::max(max_stale_run, lanes.max_staleness());

    const bool blackout = injector != nullptr && injector->controller_down();
    if (blackout) ++blackout_total;

    // Staleness fallback: a lane whose report is stale_limit periods old is
    // dropped from the MPC's tracked set (its frozen measurement neither
    // attracts the optimizer nor constrains it) and restored by the next
    // delivery. An all-stale mask leaves the set unchanged — the MPC needs
    // at least one tracked processor.
    if (config.degrade.stale_limit > 0) {
      std::vector<bool> fresh(n, true);
      bool any_fresh = false;
      for (std::size_t p = 0; p < n; ++p) {
        fresh[p] = lanes.staleness()[p] < config.degrade.stale_limit;
        any_fresh = any_fresh || fresh[p];
      }
      if (any_fresh && fresh != tracked) {
        for (std::size_t p = 0; p < n; ++p) {
          if (tracked[p] && !fresh[p]) ++stale_drops;
          if (!tracked[p] && fresh[p]) ++stale_restores;
        }
        tracked = fresh;
        mpc_diag->set_tracked_processors(tracked);
      }
    }

    std::uint64_t act_lost_hits = 0;
    linalg::Vector rates;  // the central controller's belief this period
    if (!blackout) {
      if (was_blackout) {
        // Recovery: resynchronize the controller's rate belief with what
        // the backup policy actually applied, then retire the backup. Under
        // kNone/kHoldRates nothing moved, so nothing needs resyncing.
        if (config.degrade.policy == faults::DegradePolicy::kOpenLoop ||
            config.degrade.policy == faults::DegradePolicy::kDecentralized)
          mpc_diag->reset_rates(applied);
        backup.reset();
      }
      rates = controller->update(u_seen);
      if (!faults_on) {
        applied = rates;
        sim.set_rates(applied.data());
      } else {
        in_flight.push_back({k + config.faults.actuation_delay, rates});
      }
      if (config.controller_host >= 0 && config.controller_overhead > 0.0)
        sim.inject_overhead(config.controller_host, config.controller_overhead);
    } else {
      // Controller blackout: no central update, no co-hosted overhead, no
      // admission/reallocation adjuncts. The watchdog applies its policy.
      rates = applied;
      switch (config.degrade.policy) {
        case faults::DegradePolicy::kNone:
        case faults::DegradePolicy::kHoldRates:
          break;  // rates freeze; in-flight commands still arrive below
        case faults::DegradePolicy::kOpenLoop:
          if (backup == nullptr) {
            in_flight.clear();  // the backup owns the actuators now
            backup = std::make_unique<control::OpenLoopController>(
                model, config.spec.initial_rate_vector());
          }
          applied = backup->update(u_seen);
          sim.set_rates(applied.data());
          break;
        case faults::DegradePolicy::kDecentralized:
          if (backup == nullptr) {
            in_flight.clear();
            backup = std::make_unique<control::DecentralizedMpcController>(
                model, config.mpc, applied);
          }
          applied = backup->update(u_seen);
          sim.set_rates(applied.data());
          break;
      }
    }

    // Actuation arrivals: each queued command is one message per owning
    // processor, each subject to this period's actuation-loss draws. A
    // dropped message means the owner's tasks keep their previous rates
    // (the next period's command supersedes it — no retransmission).
    while (faults_on && !in_flight.empty() && in_flight.front().arrive_k <= k) {
      const PendingCommand cmd = std::move(in_flight.front());
      in_flight.pop_front();
      std::vector<unsigned char> lost(n, 0);
      for (std::size_t p = 0; p < n; ++p) {
        if (owner_has[p] != 0 && injector->actuation_lost(p)) {
          lost[p] = 1;
          ++act_lost_hits;
        }
      }
      for (std::size_t j = 0; j < owner.size(); ++j)
        if (lost[owner[j]] == 0) applied[j] = cmd.rates[j];
      sim.set_rates(applied.data());
    }
    act_lost_total += act_lost_hits;

    if (governor != nullptr && !blackout) {
      const std::vector<bool>& mask = governor->update(linalg::Vector(u), rates);
      if (mask != enabled) {
        enabled = mask;
        for (std::size_t t = 0; t < enabled.size(); ++t)
          sim.set_task_enabled(static_cast<int>(t), enabled[t]);
        dynamic_cast<control::MpcController&>(*controller)
            .set_enabled_tasks(enabled);
      }
    }
    if (planner != nullptr && !blackout) {
      if (const auto move = planner->update(linalg::Vector(u), rates)) {
        sim.migrate_subtask(move->task, move->subtask, move->to);
        dynamic_cast<control::MpcController&>(*controller)
            .set_allocation_matrix(planner->allocation_matrix());
        result.reallocations.push_back(*move);
      }
    }
    if (config.on_period && !blackout) config.on_period(k, *controller);

    SampleRecord rec;
    rec.k = k;
    rec.u = u;
    rec.rates = applied.data();
    rec.enabled_tasks = static_cast<int>(
        std::count(enabled.begin(), enabled.end(), true));
    result.trace.push_back(std::move(rec));

    if constexpr (obs::kEnabled) {
      if (sink != nullptr) {
        obs::PeriodRecord prec;
        prec.k = k;
        prec.time_units = sim.now_units();
        prec.u = u;
        prec.u_seen = u_seen.data();
        prec.rates = applied.data();
        prec.delta_r.resize(prec.rates.size());
        for (std::size_t j = 0; j < prec.rates.size(); ++j)
          prec.delta_r[j] = prec.rates[j] - prev_rates[j];
        prev_rates = prec.rates;
        prec.enabled_tasks = result.trace.back().enabled_tasks;
        prec.lost_reports = lanes.last_period_losses();
        const std::uint64_t stalls = sim.release_guard_stalls();
        prec.release_guard_stalls = stalls - prev_stalls;
        prev_stalls = stalls;
        if (mpc_diag != nullptr) {
          prec.qp_iterations = mpc_diag->last_iterations();
          prec.qp_fast_path = mpc_diag->last_fast_path();
          prec.qp_fallback = mpc_diag->last_used_fallback();
          prec.qp_status = qp_status_name(mpc_diag->last_status());
          prec.qp_active_set = mpc_diag->last_working_set();
        }
        if (faults_active) {
          prec.faults_active = true;
          prec.fault_mode = blackout ? "blackout" : "normal";
          prec.forced_losses =
              injector != nullptr ? injector->forced_losses_this_period() : 0;
          prec.actuation_lost = act_lost_hits;
          prec.overload_injections = overload_hits;
          prec.tracked_processors = static_cast<int>(
              std::count(tracked.begin(), tracked.end(), true));
          prec.staleness.assign(lanes.staleness().begin(),
                                lanes.staleness().end());
        }
        sink->period(prec);
      }
    }
    was_blackout = blackout;
  }

  result.lost_reports = lanes.lost_reports();
  result.forced_losses =
      injector != nullptr ? injector->forced_losses_total() : 0;
  result.actuation_lost_commands = act_lost_total;
  result.overload_injections = overload_total;
  result.blackout_periods = blackout_total;
  result.stale_drops = stale_drops;
  result.stale_restores = stale_restores;
  result.max_staleness = max_stale_run;
  result.deadlines = sim.deadline_stats();
  if (config.sim.enable_trace) result.trace_log = sim.trace();
  if (mpc_diag != nullptr)
    result.controller_fallbacks = mpc_diag->fallback_count();
  if (governor != nullptr) {
    result.admission_suspensions = governor->suspensions();
    result.admission_readmissions = governor->readmissions();
  }

  if constexpr (obs::kEnabled) {
    if (sink != nullptr) {
      obs::RunSummary summary;
      summary.periods = static_cast<std::uint64_t>(config.num_periods);
      summary.lost_reports = lanes.lost_reports();
      summary.controller_fallbacks = result.controller_fallbacks;
      summary.release_guard_stalls = sim.release_guard_stalls();
      summary.jobs_released = sim.jobs_released();
      if (mpc_diag != nullptr) {
        summary.qp_iterations_total = mpc_diag->qp_iterations_total();
        summary.qp_fast_path_hits = mpc_diag->fast_path_hits();
      }
      if (faults_active) {
        summary.faults_active = true;
        summary.forced_losses = result.forced_losses;
        summary.actuation_lost = act_lost_total;
        summary.overload_injections = overload_total;
        summary.blackout_periods = blackout_total;
        summary.stale_drops = stale_drops;
        summary.stale_restores = stale_restores;
        summary.max_staleness = max_stale_run;
      }
      sink->end_run(summary);
    }
  }
  if constexpr (obs::kEnabled) {
    if (metrics != nullptr) {
      metrics->add("experiment.runs");
      metrics->add("experiment.periods",
                   static_cast<std::uint64_t>(config.num_periods));
      metrics->add("experiment.lost_reports", lanes.lost_reports());
      metrics->add("sim.release_guard_stalls", sim.release_guard_stalls());
      metrics->add("sim.jobs_released", sim.jobs_released());
      std::uint64_t e2e_misses = 0;
      const rts::DeadlineStats& ds = sim.deadline_stats();
      for (std::size_t t = 0; t < ds.num_tasks(); ++t)
        e2e_misses += ds.task(t).e2e_misses;
      metrics->add("sim.e2e_deadline_misses", e2e_misses);
      if (mpc_diag != nullptr) {
        metrics->add("mpc.updates", mpc_diag->update_count());
        metrics->add("mpc.fallbacks", mpc_diag->fallback_count());
        metrics->add("mpc.qp_iterations", mpc_diag->qp_iterations_total());
        metrics->add("mpc.fast_path_hits", mpc_diag->fast_path_hits());
      }
      if (governor != nullptr) {
        metrics->add("admission.suspensions", governor->suspensions());
        metrics->add("admission.readmissions", governor->readmissions());
      }
      metrics->add("reallocation.moves", result.reallocations.size());
      if (faults_active) {
        metrics->add("faults.forced_losses", result.forced_losses);
        metrics->add("faults.actuation_lost", act_lost_total);
        metrics->add("faults.overload_injections", overload_total);
        metrics->add("faults.blackout_periods", blackout_total);
        metrics->add("faults.stale_drops", stale_drops);
        metrics->add("faults.stale_restores", stale_restores);
        metrics->set_gauge("faults.max_staleness",
                           static_cast<double>(max_stale_run));
      }
    }
  }
  return result;
}

std::string batch_trace_file_name(std::size_t run_index,
                                  const std::string& name) {
  char prefix[24];
  std::snprintf(prefix, sizeof(prefix), "run-%04zu", run_index);
  std::string file(prefix);
  if (!name.empty()) {
    file += '-';
    // Keep file names portable: anything outside [A-Za-z0-9._-] becomes '_'.
    for (const char c : name) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                      c == '-';
      file += ok ? c : '_';
    }
  }
  file += ".jsonl";
  return file;
}

std::uint64_t batch_run_seed(std::uint64_t seed_base, std::size_t run_index) {
  // SplitMix64 over (base, index): independent streams per run, stable
  // under any worker count or scheduling order.
  std::uint64_t state = seed_base + 0x9e3779b97f4a7c15ULL * (run_index + 1);
  return splitmix64_next(state);
}

std::vector<ExperimentResult> run_batch(const std::vector<ExperimentSpec>& specs,
                                        const BatchOptions& options) {
  std::vector<ExperimentResult> results(specs.size());
  if (specs.empty()) return results;

  // Materialize the per-run configs up front so seed derivation happens
  // exactly once, identically for the serial and the pooled path.
  std::vector<ExperimentConfig> configs;
  configs.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    configs.push_back(specs[i].config);
    if (options.derive_seeds)
      configs.back().sim.seed = batch_run_seed(options.seed_base, i);
    if (configs.back().run_name.empty())
      configs.back().run_name = specs[i].name;
    if (configs.back().metrics == nullptr)
      configs.back().metrics = options.metrics;
  }

  // Per-run trace files. Sinks are created up front (before any run starts)
  // so file assignment — and therefore every byte of every trace — depends
  // only on (run index, spec name), never on worker scheduling.
  std::vector<std::unique_ptr<obs::FileSink>> trace_sinks;
  if constexpr (obs::kEnabled) {
    if (!options.trace_dir.empty()) {
      std::filesystem::create_directories(options.trace_dir);
      trace_sinks.resize(configs.size());
      for (std::size_t i = 0; i < configs.size(); ++i) {
        if (configs[i].trace_sink != nullptr) continue;  // caller's sink wins
        const std::filesystem::path path =
            std::filesystem::path(options.trace_dir) /
            batch_trace_file_name(i, specs[i].name);
        trace_sinks[i] = std::make_unique<obs::FileSink>(path.string());
        configs[i].trace_sink = trace_sinks[i].get();
      }
    }
  }

  const std::size_t total = configs.size();
  if (options.serial) {
    for (std::size_t i = 0; i < configs.size(); ++i) {
      results[i] = run_experiment(configs[i]);
      if (options.on_progress) options.on_progress(i + 1, total);
    }
    return results;
  }

  // The only state shared between pooled runs: the progress counter, its
  // mutex, and the callback. Everything else is per-run (each task touches
  // only its own config and result slot; run_experiment builds its own
  // simulator, controller and RNG streams from the config).
  struct BatchProgress {
    Mutex mu;
    std::size_t completed EUCON_GUARDED_BY(mu) = 0;
  } progress;

  ThreadPool pool(options.num_workers);
  std::vector<std::future<void>> futures;
  futures.reserve(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    futures.push_back(
        pool.submit([&configs, &results, &options, &progress, total, i] {
          results[i] = run_experiment(configs[i]);
          if (options.on_progress) {
            // Holding mu across the callback serializes invocations and
            // makes the (completed, total) sequence strictly increasing —
            // that ordering IS the documented contract (experiment.h), so the
            // callback-under-lock hold is deliberate. The price: a callback
            // that blocks stalls every worker's progress report, and one
            // that re-enters run_batch on this pool deadlocks.
            const MutexLock lock(progress.mu);
            ++progress.completed;
            options.on_progress(progress.completed, total);  // eucon-lint: allow(callback-under-lock)
          }
        }));
  }
  // Wait for everything, then surface the first failure (in spec order) —
  // the pool must fully drain before `configs`/`results` can go away.
  for (auto& f : futures) f.wait();
  for (auto& f : futures) f.get();
  return results;
}

std::vector<ExperimentResult> run_batch(
    const std::vector<ExperimentConfig>& configs, const BatchOptions& options) {
  std::vector<ExperimentSpec> specs;
  specs.reserve(configs.size());
  for (const auto& cfg : configs) specs.push_back({std::string(), cfg});
  return run_batch(specs, options);
}

}  // namespace eucon
