// The closed-loop experiment runner: wires a utilization controller to the
// simulated DRE system exactly as in the paper's Figure 1 and records the
// per-period trace the evaluation figures are drawn from.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "control/admission.h"
#include "control/controller.h"
#include "control/hierarchical.h"
#include "control/reallocation.h"
#include "control/uncoordinated.h"
#include "control/mpc.h"
#include "control/pid.h"
#include "eucon/faults.h"
#include "linalg/vector.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "rts/deadline_stats.h"
#include "rts/simulator.h"
#include "rts/spec.h"

namespace eucon {

enum class ControllerKind {
  kEucon,          // centralized MPC (the paper)
  kOpen,           // open-loop baseline (§7.1)
  kPid,            // per-processor PID baseline (§6.1 ablation)
  kDecentralized,  // per-processor local MPCs (the paper's future work)
  kAdaptive,       // MPC with on-line gain estimation (self-tuning EUCON)
  kUncoordinated,  // independent per-processor FCS (the §2 strawman)
  kHierarchical,   // sharded local MPCs + boundary coordinator (cluster scale)
};

const char* controller_kind_name(ControllerKind kind);

struct ExperimentConfig {
  rts::SystemSpec spec;
  ControllerKind controller = ControllerKind::kEucon;
  control::MpcParams mpc;            // used by kEucon/kDecentralized/kAdaptive/kHierarchical
  control::PidParams pid;            // used by kPid
  control::UncoordinatedParams fcs;  // used by kUncoordinated
  control::HierarchicalParams hier;  // used by kHierarchical
  linalg::Vector set_points;         // empty = Liu–Layland bounds (eq. 13)
  double sampling_period = 1000.0;   // Ts, in time units (Table 2)
  int num_periods = 300;             // simulation length in sampling periods
  rts::SimOptions sim;               // seed, jitter, etf profile, lane delay

  // Probability that a processor's utilization report is lost in a given
  // sampling period (failure injection on the feedback lanes); the
  // controller then sees that processor's last delivered value.
  double report_loss_probability = 0.0;

  // What the lanes report before the first delivery: empty (default) means
  // the per-processor set points B_i — a lost early report then reads as
  // "on target" rather than "idle" (the cold-start phantom-idle bug, where
  // last-delivered started at 0 and a period-1 loss slammed rates toward
  // R_max on exactly the processor the controller knew least about). Size
  // must match the processor count when non-empty.
  linalg::Vector lane_initial;

  // Scripted fault injection beyond i.i.d. report loss (eucon/faults.h):
  // lane outage bursts, actuation loss/delay, overload spikes, controller
  // blackouts. Empty plan = nothing injected, zero hot-path cost.
  faults::FaultPlan faults;
  // Graceful degradation: the controller watchdog policy used during
  // blackouts and the per-lane staleness fallback. Policies other than
  // kNone (and stale_limit > 0) require ControllerKind::kEucon.
  faults::DegradeConfig degrade;

  // Admission control (§6.2's alternative adaptation mechanism). Only
  // meaningful with ControllerKind::kEucon: the governor suspends /
  // re-admits tasks in both the simulator and the controller model.
  bool enable_admission_control = false;
  control::AdmissionParams admission;

  // Task reallocation (§6.2's other adaptation mechanism). Only meaningful
  // with ControllerKind::kEucon; moves are applied to the simulator and
  // the controller's allocation matrix. The set points stay as configured
  // (a deployment using reallocation chooses them explicitly rather than
  // deriving them from the — now changing — per-processor subtask counts).
  bool enable_reallocation = false;
  control::ReallocationParams reallocation;

  // Controller placement (§4): when controller_host >= 0, every sampling
  // period injects `controller_overhead` time units of highest-priority
  // work on that processor — the controller "sharing a processor with some
  // applications". -1 models a dedicated controller processor (default).
  int controller_host = -1;
  double controller_overhead = 0.0;

  // Optional per-period hook, called after the controller update of period
  // k (1-based); can mutate the controller (e.g. change set points online).
  std::function<void(int k, control::Controller&)> on_period;

  // ---- Observability (docs/observability.md) ----
  // Label recorded in the trace header (run_batch fills it from the spec
  // name; the CLI from the workload/spec-file name).
  std::string run_name;
  // Structured per-period trace sink. Non-owning: the sink must outlive
  // the run, and must not be shared between concurrent runs (per-run
  // confinement, like FeedbackLanes). Null = tracing off; the disabled
  // path allocates nothing.
  obs::Sink* trace_sink = nullptr;
  // Counter/timer registry. Non-owning; a Registry is thread-safe, so one
  // instance may be shared by every run of a batch. Null = metrics off.
  obs::Registry* metrics = nullptr;
};

struct SampleRecord {
  int k = 0;                   // sampling-period index, 1-based
  std::vector<double> u;       // measured utilization per processor
  std::vector<double> rates;   // task rates applied for the next period
  int enabled_tasks = 0;       // tasks admitted during this period
};

struct ExperimentResult {
  std::vector<SampleRecord> trace;
  linalg::Vector set_points;
  rts::DeadlineStats deadlines{0};
  std::uint64_t controller_fallbacks = 0;  // EUCON infeasible-instance count
  std::uint64_t admission_suspensions = 0;
  std::uint64_t admission_readmissions = 0;
  std::uint64_t lost_reports = 0;  // injected feedback-lane losses
  std::vector<control::Move> reallocations;  // executed migrations, in order
  rts::TraceLog trace_log;  // populated when sim.enable_trace is set

  // Fault-injection / degradation accounting (all zero for clean runs).
  std::uint64_t forced_losses = 0;        // injector-forced lane losses
  std::uint64_t actuation_lost_commands = 0;
  std::uint64_t overload_injections = 0;
  std::uint64_t blackout_periods = 0;
  std::uint64_t stale_drops = 0;     // lanes dropped from the tracked set
  std::uint64_t stale_restores = 0;  // lanes restored after a fresh report
  int max_staleness = 0;             // worst consecutive-loss streak

  // Series of u_p(k) for processor p.
  std::vector<double> utilization_series(std::size_t processor) const;
  std::vector<double> rate_series(std::size_t task) const;
};

ExperimentResult run_experiment(const ExperimentConfig& config);

// Builds the controller an experiment would use (exposed for tests and
// benches that drive the pieces manually).
std::unique_ptr<control::Controller> make_controller(
    const ExperimentConfig& config);

// ---------------------------------------------------------------------------
// Batch engine: fans independent experiment runs across a worker pool.
// ---------------------------------------------------------------------------

// One run of a batch: a label (for reports/benches) plus the full config.
struct ExperimentSpec {
  std::string name;
  ExperimentConfig config;
};

struct BatchOptions {
  // Worker threads; 0 = one per hardware thread. A single worker still goes
  // through the pool (useful for pool-path testing).
  std::size_t num_workers = 0;
  // Run on the calling thread with no pool at all — the determinism
  // baseline the parallel path is checked against.
  bool serial = false;
  // When true, every run's sim.seed is overridden with an independent
  // stream derived from (seed_base, run index) via SplitMix64 — runs never
  // share RNG state, and the assignment does not depend on worker count or
  // scheduling order. When false (default) each config's own seed is used,
  // so existing single-run setups batch without behavior change.
  bool derive_seeds = false;
  std::uint64_t seed_base = 0;

  // Progress hook for long sweeps: called once per completed run with
  // (completed, total). Calls are serialized under an internal mutex, so
  // `completed` is strictly increasing, 1..total — but they arrive on
  // whichever worker finished the run, and the internal lock is held for
  // the duration of the call: keep the callback cheap, and never submit
  // more batch work from inside it.
  std::function<void(std::size_t completed, std::size_t total)> on_progress;

  // ---- Observability pass-through (docs/observability.md) ----
  // Shared counter/timer registry applied to every run whose config does
  // not already carry one. Thread-safe; totals accumulate across the whole
  // batch regardless of worker count.
  obs::Registry* metrics = nullptr;
  // When non-empty, every run without its own trace_sink writes a JSONL
  // trace to `<trace_dir>/run-NNNN[-name].jsonl` (the directory is
  // created). File assignment depends only on the run index and spec name,
  // so serial and pooled executions produce byte-identical files.
  std::string trace_dir;
};

// The trace file name run_batch assigns to run `run_index` (exposed so the
// determinism tests and sweep tooling can locate per-run traces).
std::string batch_trace_file_name(std::size_t run_index,
                                  const std::string& name);

// The seed the batch engine assigns to run `run_index` when derive_seeds is
// set (exposed so tests and benches can predict it).
std::uint64_t batch_run_seed(std::uint64_t seed_base, std::size_t run_index);

// Runs every spec and returns results in spec order. Runs are independent:
// each gets its own simulator, controller and RNG streams, so the parallel
// path is bit-identical to the serial path for the same specs. The first
// exception thrown by a run is rethrown here after all workers finish.
std::vector<ExperimentResult> run_batch(const std::vector<ExperimentSpec>& specs,
                                        const BatchOptions& options = {});

// Convenience overload for unnamed configs.
std::vector<ExperimentResult> run_batch(
    const std::vector<ExperimentConfig>& configs,
    const BatchOptions& options = {});

}  // namespace eucon
