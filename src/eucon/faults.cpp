#include "eucon/faults.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/check.h"

namespace eucon::faults {

double GilbertElliott::stationary_loss() const {
  if (!enabled()) return 0.0;
  const double denom = p_enter + p_exit;
  const double pi_bad = denom > 0.0 ? p_enter / denom : 1.0;
  return (1.0 - pi_bad) * loss_good + pi_bad * loss_bad;
}

bool FaultPlan::empty() const {
  return !lane_loss.enabled() && actuation_loss <= 0.0 &&
         actuation_delay == 0 && lane_outages.empty() &&
         actuation_outages.empty() && overload_spikes.empty() &&
         blackouts.empty();
}

namespace {

void require_probability(double p, const char* what) {
  EUCON_REQUIRE(p >= 0.0 && p <= 1.0,
                std::string(what) + " must be a probability in [0, 1]");
}

void require_window(int start, int duration, const char* what) {
  EUCON_REQUIRE(start >= 1,
                std::string(what) + " start must be a 1-based period index");
  EUCON_REQUIRE(duration >= 1,
                std::string(what) + " duration must be at least one period");
}

bool in_window(int k, int start, int duration) {
  return k >= start && k < start + duration;
}

}  // namespace

void FaultPlan::validate(int num_processors) const {
  EUCON_REQUIRE(num_processors > 0, "fault plan needs at least one processor");
  require_probability(lane_loss.p_enter, "gilbert_elliott.p_enter");
  require_probability(lane_loss.p_exit, "gilbert_elliott.p_exit");
  require_probability(lane_loss.loss_good, "gilbert_elliott.loss_good");
  require_probability(lane_loss.loss_bad, "gilbert_elliott.loss_bad");
  EUCON_REQUIRE(actuation_loss >= 0.0 && actuation_loss < 1.0,
                "actuation_loss must be in [0, 1)");
  EUCON_REQUIRE(actuation_delay >= 0,
                "actuation_delay must be a non-negative period count");
  for (const LaneOutage& o : lane_outages) {
    EUCON_REQUIRE(o.lane >= 0 && o.lane < num_processors,
                  "lane_outages lane out of range");
    require_window(o.start, o.duration, "lane_outages");
  }
  for (const ActuationOutage& o : actuation_outages) {
    EUCON_REQUIRE(o.processor >= 0 && o.processor < num_processors,
                  "actuation_outages processor out of range");
    require_window(o.start, o.duration, "actuation_outages");
  }
  for (const OverloadSpike& s : overload_spikes) {
    EUCON_REQUIRE(s.processor >= 0 && s.processor < num_processors,
                  "overload_spikes processor out of range");
    require_window(s.start, s.duration, "overload_spikes");
    EUCON_REQUIRE(s.exec_units > 0.0,
                  "overload_spikes exec must be positive time units");
  }
  for (const ControllerBlackout& b : blackouts)
    require_window(b.start, b.duration, "controller_blackouts");
}

// ---------------------------------------------------------------------------
// Plan parsing: a minimal recursive-descent JSON reader scoped to the plan
// schema (docs/robustness.md). Self-contained so the CLI needs no external
// JSON dependency; errors carry the byte offset for one-line diagnostics.
// ---------------------------------------------------------------------------

namespace {

struct JsonValue {
  enum class Kind { kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNumber;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> items;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    EUCON_FAIL_INVALID("fault plan JSON: " + what + " at byte " +
                       std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t len = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, len, lit) != 0) return false;
    pos_ += len;
    return true;
  }

  JsonValue value() {
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      v.string = string_body();
      return v;
    }
    if (consume_literal("true")) {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      v.boolean = false;
      return v;
    }
    return number();
  }

  std::string string_body() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          default: fail("unsupported string escape");
        }
      } else {
        out += c;
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      const bool numeric = (c >= '0' && c <= '9') || c == '.' || c == 'e' ||
                           c == 'E' || c == '-' || c == '+';
      if (!numeric) break;
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string tok = text_.substr(start, pos_ - start);
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    std::istringstream in(tok);
    in >> v.number;
    if (in.fail() || !in.eof() || !std::isfinite(v.number))
      fail("malformed number '" + tok + "'");
    return v;
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(value());
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string_body();
      expect(':');
      v.members.emplace_back(std::move(key), value());
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

[[noreturn]] void plan_error(const std::string& what) {
  EUCON_FAIL_INVALID("fault plan: " + what);
}

double as_number(const JsonValue& v, const std::string& key) {
  if (v.kind != JsonValue::Kind::kNumber) plan_error(key + " must be a number");
  return v.number;
}

int as_int(const JsonValue& v, const std::string& key) {
  const double d = as_number(v, key);
  const double rounded = std::floor(d + 0.5);
  if (std::abs(d - rounded) > 1e-9 || std::abs(d) > 1e15)
    plan_error(key + " must be an integer");
  return static_cast<int>(rounded);
}

std::uint64_t as_u64(const JsonValue& v, const std::string& key) {
  const double d = as_number(v, key);
  if (d < 0.0 || std::abs(d - std::floor(d + 0.5)) > 1e-9 || d > 1e15)
    plan_error(key + " must be a non-negative integer");
  return static_cast<std::uint64_t>(d + 0.5);
}

const std::vector<JsonValue>& as_array(const JsonValue& v,
                                       const std::string& key) {
  if (v.kind != JsonValue::Kind::kArray) plan_error(key + " must be an array");
  return v.items;
}

// Walks an object's members against a fixed key list via `handle(key,
// value) -> bool`; any unhandled key is an error so typos never silently
// disable a fault source.
template <typename Fn>
void for_each_member(const JsonValue& v, const std::string& what, Fn handle) {
  if (v.kind != JsonValue::Kind::kObject)
    plan_error(what + " must be an object");
  for (const auto& [key, value] : v.members) {
    if (!handle(key, value))
      plan_error("unknown key \"" + key + "\" in " + what);
  }
}

GilbertElliott parse_gilbert_elliott(const JsonValue& v) {
  GilbertElliott ge;
  // A configured block means "model on": loss_bad defaults to 1 and p_exit
  // to 1 (single-period bursts) unless overridden.
  for_each_member(v, "gilbert_elliott",
                  [&](const std::string& key, const JsonValue& val) {
                    if (key == "p_enter") ge.p_enter = as_number(val, key);
                    else if (key == "p_exit") ge.p_exit = as_number(val, key);
                    else if (key == "loss_good") ge.loss_good = as_number(val, key);
                    else if (key == "loss_bad") ge.loss_bad = as_number(val, key);
                    else return false;
                    return true;
                  });
  return ge;
}

}  // namespace

FaultPlan parse_fault_plan(const std::string& json) {
  JsonReader reader(json);
  const JsonValue root = reader.parse();
  FaultPlan plan;
  for_each_member(root, "plan", [&](const std::string& key, const JsonValue& v) {
    if (key == "seed") {
      plan.seed = as_u64(v, key);
    } else if (key == "gilbert_elliott") {
      plan.lane_loss = parse_gilbert_elliott(v);
    } else if (key == "actuation_loss") {
      plan.actuation_loss = as_number(v, key);
    } else if (key == "actuation_delay") {
      plan.actuation_delay = as_int(v, key);
    } else if (key == "lane_outages") {
      for (const JsonValue& item : as_array(v, key)) {
        LaneOutage o;
        for_each_member(item, "lane_outages entry",
                        [&](const std::string& k2, const JsonValue& v2) {
                          if (k2 == "lane") o.lane = as_int(v2, k2);
                          else if (k2 == "start") o.start = as_int(v2, k2);
                          else if (k2 == "duration") o.duration = as_int(v2, k2);
                          else return false;
                          return true;
                        });
        plan.lane_outages.push_back(o);
      }
    } else if (key == "actuation_outages") {
      for (const JsonValue& item : as_array(v, key)) {
        ActuationOutage o;
        for_each_member(item, "actuation_outages entry",
                        [&](const std::string& k2, const JsonValue& v2) {
                          if (k2 == "processor") o.processor = as_int(v2, k2);
                          else if (k2 == "start") o.start = as_int(v2, k2);
                          else if (k2 == "duration") o.duration = as_int(v2, k2);
                          else return false;
                          return true;
                        });
        plan.actuation_outages.push_back(o);
      }
    } else if (key == "overload_spikes") {
      for (const JsonValue& item : as_array(v, key)) {
        OverloadSpike s;
        for_each_member(item, "overload_spikes entry",
                        [&](const std::string& k2, const JsonValue& v2) {
                          if (k2 == "processor") s.processor = as_int(v2, k2);
                          else if (k2 == "start") s.start = as_int(v2, k2);
                          else if (k2 == "duration") s.duration = as_int(v2, k2);
                          else if (k2 == "exec") s.exec_units = as_number(v2, k2);
                          else return false;
                          return true;
                        });
        plan.overload_spikes.push_back(s);
      }
    } else if (key == "controller_blackouts") {
      for (const JsonValue& item : as_array(v, key)) {
        ControllerBlackout b;
        for_each_member(item, "controller_blackouts entry",
                        [&](const std::string& k2, const JsonValue& v2) {
                          if (k2 == "start") b.start = as_int(v2, k2);
                          else if (k2 == "duration") b.duration = as_int(v2, k2);
                          else return false;
                          return true;
                        });
        plan.blackouts.push_back(b);
      }
    } else {
      return false;
    }
    return true;
  });
  return plan;
}

FaultPlan load_fault_plan_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) EUCON_FAIL("cannot open fault plan: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_fault_plan(buf.str());
}

const char* degrade_policy_name(DegradePolicy policy) {
  switch (policy) {
    case DegradePolicy::kNone:
      return "none";
    case DegradePolicy::kHoldRates:
      return "hold-rates";
    case DegradePolicy::kOpenLoop:
      return "open-loop";
    case DegradePolicy::kDecentralized:
      return "decentralized";
  }
  return "?";
}

DegradePolicy parse_degrade_policy(const std::string& name) {
  if (name == "none") return DegradePolicy::kNone;
  if (name == "hold-rates") return DegradePolicy::kHoldRates;
  if (name == "open-loop") return DegradePolicy::kOpenLoop;
  if (name == "decentralized") return DegradePolicy::kDecentralized;
  EUCON_FAIL_INVALID("unknown degradation policy: " + name +
                     " (expected none, hold-rates, open-loop or decentralized)");
}

// ---------------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------------

namespace {

// Folds the plan seed into the run's sim seed so distinct runs of one plan
// (and distinct plans on one run seed) draw independent streams.
Rng fault_base_rng(const FaultPlan& plan, std::uint64_t run_seed) {
  std::uint64_t state = run_seed ^ (plan.seed * 0x9e3779b97f4a7c15ULL);
  return Rng(splitmix64_next(state));
}

}  // namespace

FaultInjector::FaultInjector(const FaultPlan& plan, std::size_t num_processors,
                             std::uint64_t run_seed)
    : plan_(plan),
      num_processors_(num_processors),
      ge_bad_(num_processors, 0),
      actuation_rng_(fault_base_rng(plan, run_seed).split(0xac70)),
      lane_lost_(num_processors, 0),
      actuation_lost_(num_processors, 0),
      overload_(num_processors, 0.0) {
  EUCON_REQUIRE(num_processors > 0, "fault injector needs processors");
  plan_.validate(eucon::narrow<int>(num_processors));
  const Rng base = fault_base_rng(plan, run_seed);
  lane_rng_.reserve(num_processors);
  for (std::size_t p = 0; p < num_processors; ++p)
    lane_rng_.push_back(base.split(0x6e01 + p));
}

void FaultInjector::begin_period(int k) {
  EUCON_REQUIRE(k == period_ + 1,
                "begin_period must be called once per period, in order");
  period_ = k;
  forced_this_period_ = 0;
  controller_down_ = false;
  for (const ControllerBlackout& b : plan_.blackouts)
    if (in_window(k, b.start, b.duration)) controller_down_ = true;

  for (std::size_t p = 0; p < num_processors_; ++p) {
    bool lost = false;
    if (plan_.lane_loss.enabled()) {
      // Fixed draw count per lane per period (one transition draw + one
      // loss draw) keeps the stream independent of the realized states.
      Rng& rng = lane_rng_[p];
      const double transition = rng.next_double();
      const double loss = rng.next_double();
      if (ge_bad_[p] != 0) {
        if (transition < plan_.lane_loss.p_exit) ge_bad_[p] = 0;
      } else {
        if (transition < plan_.lane_loss.p_enter) ge_bad_[p] = 1;
      }
      const double loss_prob = ge_bad_[p] != 0 ? plan_.lane_loss.loss_bad
                                               : plan_.lane_loss.loss_good;
      lost = loss < loss_prob;
    }
    for (const LaneOutage& o : plan_.lane_outages)
      if (static_cast<std::size_t>(o.lane) == p &&
          in_window(k, o.start, o.duration))
        lost = true;
    lane_lost_[p] = lost ? 1 : 0;
    if (lost) {
      ++forced_this_period_;
      ++forced_total_;
    }

    bool act_lost = false;
    if (plan_.actuation_loss > 0.0)
      act_lost = actuation_rng_.next_double() < plan_.actuation_loss;
    for (const ActuationOutage& o : plan_.actuation_outages)
      if (static_cast<std::size_t>(o.processor) == p &&
          in_window(k, o.start, o.duration))
        act_lost = true;
    actuation_lost_[p] = act_lost ? 1 : 0;

    double extra = 0.0;
    for (const OverloadSpike& s : plan_.overload_spikes)
      if (static_cast<std::size_t>(s.processor) == p &&
          in_window(k, s.start, s.duration))
        extra += s.exec_units;
    overload_[p] = extra;
  }
}

bool FaultInjector::actuation_lost(std::size_t processor) const {
  EUCON_REQUIRE(processor < num_processors_, "processor index out of range");
  return actuation_lost_[processor] != 0;
}

double FaultInjector::overload_for(std::size_t processor) const {
  EUCON_REQUIRE(processor < num_processors_, "processor index out of range");
  return overload_[processor];
}

}  // namespace eucon::faults
