// Fault injection and graceful degradation (the robustness pillar).
//
// The paper's evaluation only injects i.i.d. report loss on the feedback
// lanes (§7's loss experiments). Real DRE deployments fail in richer ways:
// lanes drop reports in *bursts* (a congested or flapping link), actuation
// messages are lost or arrive late, processors take overload spikes from
// outside the controlled task set, and the controller process itself can
// black out for whole sampling periods. This module scripts all of those
// deterministically — a FaultPlan is a pure value, a FaultInjector is a
// seeded state machine evaluated once per sampling period — so a faulted
// run is exactly as reproducible (byte-for-byte under the golden-trace
// suite and run_batch's serial-vs-pooled check) as a clean one.
//
// The degradation half (DegradeConfig) configures how run_experiment's
// controller watchdog reacts: during a controller blackout it can hold the
// last rates, fall back to the open-loop design rates, or hand control to
// per-processor decentralized backup MPCs; independently, lanes whose
// reports have been lost `stale_limit` periods in a row are dropped from
// the central MPC's tracked set (reusing the constraint machinery — see
// MpcController::set_tracked_processors) instead of letting the controller
// chase a phantom measurement. docs/robustness.md documents the plan
// schema, the policies and the staleness semantics.
//
// Thread contract: FaultPlan and DegradeConfig are immutable values, safe
// to share read-only across run_batch pool workers. A FaultInjector is
// per-run state like FeedbackLanes — thread-compatible, not thread-safe.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/rng.h"

namespace eucon::faults {

// Two-state Gilbert–Elliott loss model, applied per feedback lane: each
// sampling period the lane's chain moves good->bad with probability
// p_enter and bad->good with probability p_exit, and the report is lost
// with probability loss_good / loss_bad depending on the state. The
// stationary loss rate is
//   pi_bad = p_enter / (p_enter + p_exit),
//   E[loss] = (1 - pi_bad) * loss_good + pi_bad * loss_bad,
// which the statistics tests check against realized counts. p_enter = 0
// and loss_good = 0 (the defaults) disable the model entirely.
struct GilbertElliott {
  double p_enter = 0.0;    // P(good -> bad) per period
  double p_exit = 1.0;     // P(bad -> good) per period
  double loss_good = 0.0;  // report-loss probability in the good state
  double loss_bad = 1.0;   // report-loss probability in the bad state

  bool enabled() const { return p_enter > 0.0 || loss_good > 0.0; }
  // Stationary per-period loss probability of the chain.
  double stationary_loss() const;
};

// Scripted events. All windows are half-open period ranges
// [start, start + duration) over the 1-based sampling-period index k.
struct LaneOutage {
  int lane = 0;  // processor whose feedback lane is down
  int start = 1;
  int duration = 1;
};

struct ActuationOutage {
  int processor = 0;  // rate commands to tasks owned by this processor drop
  int start = 1;
  int duration = 1;
};

struct OverloadSpike {
  int processor = 0;
  int start = 1;
  int duration = 1;
  double exec_units = 0.0;  // extra highest-priority work injected per period
};

struct ControllerBlackout {
  int start = 1;
  int duration = 1;
};

// A deterministic, seedable schedule of faults for one run. Empty (the
// default) injects nothing and costs nothing on the experiment hot path.
struct FaultPlan {
  // Folded with the run's sim seed so the same plan on different seeds
  // draws independent streams, while (plan, seed) stays reproducible.
  std::uint64_t seed = 0;

  GilbertElliott lane_loss;  // per-lane bursty report loss

  // I.i.d. per-processor per-period loss of the actuation message carrying
  // that processor's owned-task rates (owner = host of the task's first
  // subtask, as in the decentralized architecture).
  double actuation_loss = 0.0;
  // Every actuation message arrives this many sampling periods late (0 =
  // the paper's assumption). Complements SimOptions::feedback_lane_delay,
  // which models sub-period latency in time units.
  int actuation_delay = 0;

  std::vector<LaneOutage> lane_outages;
  std::vector<ActuationOutage> actuation_outages;
  std::vector<OverloadSpike> overload_spikes;
  std::vector<ControllerBlackout> blackouts;

  // True when no fault source is configured at all.
  bool empty() const;
  // Throws std::invalid_argument on out-of-range probabilities, lane or
  // processor indices >= num_processors, or non-positive windows.
  void validate(int num_processors) const;
};

// Parses the JSON plan schema of docs/robustness.md (objects, arrays,
// numbers, strings, booleans — no comments). Unknown keys are an error so
// a typoed field never silently disables a fault. Throws
// std::invalid_argument with a one-line message on malformed input.
FaultPlan parse_fault_plan(const std::string& json);
// Reads `path` and parses it; throws std::runtime_error when unreadable.
FaultPlan load_fault_plan_file(const std::string& path);

// How the controller watchdog degrades when the central controller blacks
// out (see docs/robustness.md; all policies require ControllerKind::kEucon).
enum class DegradePolicy {
  kNone,       // no watchdog: rates freeze implicitly, staleness ignored
  kHoldRates,  // freeze the applied rates until the controller returns
  kOpenLoop,   // apply the open-loop design rates (OPEN's B = F r')
  kDecentralized,  // per-processor backup MPCs take over (DEUCON)
};

const char* degrade_policy_name(DegradePolicy policy);
// Accepts "none", "hold-rates", "open-loop", "decentralized"; throws
// std::invalid_argument otherwise.
DegradePolicy parse_degrade_policy(const std::string& name);

struct DegradeConfig {
  DegradePolicy policy = DegradePolicy::kNone;
  // After this many *consecutive* lost reports on a lane the processor is
  // dropped from the MPC's tracked set until a report arrives again
  // (0 disables the staleness fallback).
  int stale_limit = 0;

  bool enabled() const {
    return policy != DegradePolicy::kNone || stale_limit > 0;
  }
};

// Per-run fault state machine. begin_period(k) must be called exactly once
// per period with k = 1, 2, …; it advances the Gilbert–Elliott chains and
// draws the period's actuation losses, consuming a fixed number of RNG
// draws per period so the fault stream is independent of what the rest of
// the loop does with the answers.
class FaultInjector {
 public:
  FaultInjector(const FaultPlan& plan, std::size_t num_processors,
                std::uint64_t run_seed);

  // Runs once per sampling period on the control path: preallocated masks,
  // a fixed number of seeded-Rng draws, no heap traffic.
  void begin_period(int k) EUCON_REALTIME;

  // One flag per lane: report forcibly lost this period (Gilbert–Elliott
  // bad-state draw or a scripted LaneOutage window).
  const std::vector<unsigned char>& lane_loss_mask() const { return lane_lost_; }
  // Number of set flags in lane_loss_mask().
  std::uint64_t forced_losses_this_period() const { return forced_this_period_; }

  bool controller_down() const { return controller_down_; }
  bool actuation_lost(std::size_t processor) const;
  // Extra execution units to inject on `processor` this period (summed
  // over overlapping OverloadSpike windows; 0 almost always).
  double overload_for(std::size_t processor) const;

  // Monotone totals since construction.
  std::uint64_t forced_losses_total() const { return forced_total_; }

 private:
  const FaultPlan& plan_;  // non-owning; the plan must outlive the injector
  std::size_t num_processors_;
  int period_ = 0;
  std::vector<Rng> lane_rng_;         // one Gilbert–Elliott stream per lane
  std::vector<unsigned char> ge_bad_; // current chain state per lane
  Rng actuation_rng_;
  std::vector<unsigned char> lane_lost_;
  std::vector<unsigned char> actuation_lost_;
  std::vector<double> overload_;
  bool controller_down_ = false;
  std::uint64_t forced_this_period_ = 0;
  std::uint64_t forced_total_ = 0;
};

}  // namespace eucon::faults
