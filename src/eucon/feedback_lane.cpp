#include "eucon/feedback_lane.h"

#include "common/check.h"

namespace eucon {

FeedbackLanes::FeedbackLanes(std::size_t num_processors,
                             double loss_probability, std::uint64_t seed)
    : loss_probability_(loss_probability),
      rng_(Rng(seed).split(0x10557).next_u64()),
      last_(num_processors, 0.0) {
  EUCON_REQUIRE(num_processors > 0, "lanes need at least one processor");
  EUCON_REQUIRE(loss_probability >= 0.0 && loss_probability < 1.0,
                "loss probability must be in [0, 1)");
}

linalg::Vector FeedbackLanes::deliver(const linalg::Vector& measured) {
  EUCON_REQUIRE(measured.size() == last_.size(), "measurement size mismatch");
  linalg::Vector seen = measured;
  last_period_losses_ = 0;
  for (std::size_t p = 0; p < seen.size(); ++p) {
    if (loss_probability_ > 0.0 && rng_.next_double() < loss_probability_) {
      seen[p] = last_[p];
      ++lost_;
      ++last_period_losses_;
    } else {
      ++delivered_;
    }
  }
  last_ = seen;
  return seen;
}

}  // namespace eucon
