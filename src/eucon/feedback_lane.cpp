#include "eucon/feedback_lane.h"

#include <algorithm>

#include "common/check.h"

namespace eucon {

FeedbackLanes::FeedbackLanes(std::size_t num_processors,
                             double loss_probability, std::uint64_t seed)
    : FeedbackLanes(linalg::Vector(num_processors, 0.0), loss_probability,
                    seed) {}

FeedbackLanes::FeedbackLanes(const linalg::Vector& initial_seen,
                             double loss_probability, std::uint64_t seed)
    : loss_probability_(loss_probability),
      rng_(Rng(seed).split(0x10557).next_u64()),
      last_(initial_seen),
      staleness_(initial_seen.size(), 0) {
  EUCON_REQUIRE(initial_seen.size() > 0, "lanes need at least one processor");
  EUCON_REQUIRE(loss_probability >= 0.0 && loss_probability < 1.0,
                "loss probability must be in [0, 1)");
}

const linalg::Vector& FeedbackLanes::deliver(
    const linalg::Vector& measured, const std::vector<unsigned char>* forced) {
  EUCON_REQUIRE(measured.size() == last_.size(), "measurement size mismatch");
  EUCON_REQUIRE(forced == nullptr || forced->size() == last_.size(),
                "forced-loss mask size mismatch");
  // In place: a lost lane keeps its last delivered value, a live lane
  // overwrites it — no per-period temporary (deliver is EUCON_REALTIME).
  last_period_losses_ = 0;
  for (std::size_t p = 0; p < last_.size(); ++p) {
    bool lost = loss_probability_ > 0.0 && rng_.next_double() < loss_probability_;
    if (forced != nullptr && (*forced)[p] != 0) lost = true;
    if (lost) {
      ++lost_;
      ++last_period_losses_;
      ++staleness_[p];
    } else {
      last_[p] = measured[p];
      ++delivered_;
      staleness_[p] = 0;
    }
  }
  return last_;
}

int FeedbackLanes::max_staleness() const {
  int max = 0;
  for (const int s : staleness_) max = std::max(max, s);
  return max;
}

}  // namespace eucon
