// Feedback lanes: the monitor -> controller channels of Figure 1.
//
// The paper realizes them as one TCP connection per processor; here each
// lane models what that gives you operationally: in-order delivery, a
// possible outage (report loss — the controller keeps the last delivered
// measurement, TCP's effective behavior when a report misses the sampling
// deadline), and accounting. The actuation direction's latency is modeled
// separately by the simulator's feedback_lane_delay (rates arriving late).
//
// Thread contract: FeedbackLanes is thread-compatible, not thread-safe.
// Each simulation run owns its own instance (per-run confinement — there
// is no cross-run shared state, which is what keeps run_batch's pooled
// runs bit-identical to serial). Do not share an instance across pool
// workers; if a future design needs that, guard every member with an
// eucon::Mutex and annotate the fields EUCON_GUARDED_BY (see
// common/annotations.h and docs/quality.md).
#pragma once

#include <cstdint>
#include <vector>

#include "common/annotations.h"
#include "common/rng.h"
#include "linalg/vector.h"

namespace eucon {

class FeedbackLanes {
 public:
  // `loss_probability` applies independently per lane per period.
  // Last-delivered values start at 0 ("no load reported yet") — kept for
  // statistics tests that shadow the i.i.d. stream; run_experiment uses
  // the overload below so a lost first report reads as the set point, not
  // as an idle processor (the cold-start phantom-idle bug).
  FeedbackLanes(std::size_t num_processors, double loss_probability,
                std::uint64_t seed);
  // Same, but seeds the last-delivered values with `initial_seen`
  // (typically the per-processor set points B_i).
  FeedbackLanes(const linalg::Vector& initial_seen, double loss_probability,
                std::uint64_t seed);

  // Passes one period's measurements through the lanes: entries whose lane
  // drops this period are replaced by the lane's last delivered value.
  // `forced` (optional, one flag per lane) marks lanes whose report is
  // forcibly lost this period regardless of the i.i.d. draw — fault
  // injection (see eucon/faults.h). The i.i.d. draw is consumed *before*
  // the forced flag is applied so the random stream stays aligned with an
  // unfaulted shadow instance. The returned reference aliases the
  // last-delivered state and stays valid until the next deliver(). (The
  // lane's Rng is a seeded per-run counter stream — common/rng.h — so the
  // draw is deterministic and needs no EUCON_NONDET_OK hatch.)
  const linalg::Vector& deliver(const linalg::Vector& measured,
                                const std::vector<unsigned char>* forced =
                                    nullptr) EUCON_REALTIME;

  std::uint64_t lost_reports() const { return lost_; }
  std::uint64_t delivered_reports() const { return delivered_; }
  // Lanes that dropped their report in the most recent deliver() call (the
  // tracer records this per period; 0 before the first delivery).
  std::uint64_t last_period_losses() const { return last_period_losses_; }
  const linalg::Vector& last_delivered() const { return last_; }

  // Consecutive losses per lane (reset to 0 each time a report arrives).
  // The watchdog's staleness fallback keys off this (docs/robustness.md).
  const std::vector<int>& staleness() const { return staleness_; }
  int max_staleness() const;

 private:
  double loss_probability_;
  Rng rng_;
  linalg::Vector last_;
  std::vector<int> staleness_;
  std::uint64_t lost_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t last_period_losses_ = 0;
};

}  // namespace eucon
