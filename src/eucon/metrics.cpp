#include "eucon/metrics.h"

#include <cmath>

#include "common/check.h"

namespace eucon::metrics {

RunningStats utilization_stats(const ExperimentResult& result,
                               std::size_t processor, std::size_t from,
                               std::size_t to) {
  if (to == 0) to = result.trace.size();
  EUCON_REQUIRE(from < to && to <= result.trace.size(), "bad metrics window");
  RunningStats s;
  for (std::size_t i = from; i < to; ++i)
    s.add(result.trace[i].u.at(processor));
  return s;
}

Acceptability acceptability(const ExperimentResult& result,
                            std::size_t processor, std::size_t from,
                            std::size_t to, double mean_tol,
                            double stddev_limit) {
  const RunningStats s = utilization_stats(result, processor, from, to);
  Acceptability a;
  a.mean = s.mean();
  a.stddev = s.stddev();
  a.set_point = result.set_points.at(processor);
  a.mean_ok = std::abs(a.mean - a.set_point) <= mean_tol;
  a.stddev_ok = a.stddev < stddev_limit;
  return a;
}

bool all_acceptable(const ExperimentResult& result, std::size_t from,
                    std::size_t to) {
  for (std::size_t p = 0; p < result.set_points.size(); ++p)
    if (!acceptability(result, p, from, to).acceptable()) return false;
  return true;
}

double accrued_value(const ExperimentResult& result,
                     const rts::SystemSpec& spec, std::size_t from,
                     std::size_t to, const std::vector<double>& weights) {
  if (to == 0) to = result.trace.size();
  EUCON_REQUIRE(from < to && to <= result.trace.size(), "bad value window");
  EUCON_REQUIRE(weights.empty() || weights.size() == spec.num_tasks(),
                "weights size mismatch");
  double total = 0.0;
  for (std::size_t i = from; i < to; ++i) {
    for (std::size_t t = 0; t < spec.num_tasks(); ++t) {
      const auto& task = spec.tasks[t];
      const double span = task.rate_max - task.rate_min;
      const double normalized =
          span > 0.0
              ? (result.trace[i].rates.at(t) - task.rate_min) / span
              : 1.0;
      total += (weights.empty() ? 1.0 : weights[t]) * normalized;
    }
  }
  return total / static_cast<double>(to - from);
}

int settling_time(const ExperimentResult& result, std::size_t processor,
                  std::size_t event_k, double band, int hold) {
  EUCON_REQUIRE(event_k < result.trace.size(), "event outside trace");
  const double target = result.set_points.at(processor);
  int in_band = 0;
  for (std::size_t i = event_k; i < result.trace.size(); ++i) {
    if (std::abs(result.trace[i].u.at(processor) - target) <= band) {
      if (++in_band >= hold)
        return eucon::narrow<int>(i - static_cast<std::size_t>(hold - 1) - event_k);
    } else {
      in_band = 0;
    }
  }
  return -1;
}

}  // namespace eucon::metrics
