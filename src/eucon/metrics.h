// Evaluation metrics used throughout the paper's §7.
#pragma once

#include <cstddef>
#include <vector>

#include "common/stats.h"
#include "eucon/experiment.h"

namespace eucon::metrics {

// The paper's steady-state measurement window: sampling periods
// [100Ts, 300Ts], i.e. trace indices [100, 300) with 1-based k.
inline constexpr std::size_t kSteadyStateFrom = 100;

// Mean/σ of a processor's utilization over trace window [from, to) (k
// indices, 1-based; to = 0 means end of trace).
RunningStats utilization_stats(const ExperimentResult& result,
                               std::size_t processor, std::size_t from,
                               std::size_t to = 0);

// The paper's acceptability criterion (§7.1): |mean - set point| <= 0.02
// and σ < 0.05 over the window.
struct Acceptability {
  double mean = 0.0;
  double stddev = 0.0;
  double set_point = 0.0;
  bool mean_ok = false;
  bool stddev_ok = false;
  bool acceptable() const { return mean_ok && stddev_ok; }
};

Acceptability acceptability(const ExperimentResult& result,
                            std::size_t processor,
                            std::size_t from = kSteadyStateFrom,
                            std::size_t to = 0, double mean_tol = 0.02,
                            double stddev_limit = 0.05);

// True when every processor is acceptable over the window.
bool all_acceptable(const ExperimentResult& result,
                    std::size_t from = kSteadyStateFrom, std::size_t to = 0);

// Application value accrued over a trace window (§3.1-3.2: a task running
// at a higher rate contributes a higher value; underutilization therefore
// means lost value). Each task contributes its normalized rate
// (r - R_min)/(R_max - R_min) in [0, 1] per period, optionally weighted;
// the result is the window-averaged total. This quantifies the claim that
// OPEN's pessimistic rates "waste" value that EUCON recovers.
double accrued_value(const ExperimentResult& result,
                     const rts::SystemSpec& spec,
                     std::size_t from = kSteadyStateFrom, std::size_t to = 0,
                     const std::vector<double>& weights = {});

// Settling time after a disturbance at period `event_k`: the number of
// periods until the processor's utilization stays within `band` of its set
// point for `hold` consecutive periods. Returns -1 when it never settles.
int settling_time(const ExperimentResult& result, std::size_t processor,
                  std::size_t event_k, double band = 0.05, int hold = 10);

}  // namespace eucon::metrics
