#include "eucon/network.h"

#include "common/check.h"

namespace eucon::network {

int LinkedSystem::link_between(int from, int to) const {
  EUCON_REQUIRE(from >= 0 && from < num_compute && to >= 0 && to < num_compute,
                "link_between: processor out of range");
  return link_processor[static_cast<std::size_t>(from) *
                            static_cast<std::size_t>(num_compute) +
                        static_cast<std::size_t>(to)];
}

LinkedSystem with_network_links(const rts::SystemSpec& spec,
                                const LinkModelParams& params) {
  spec.validate();
  EUCON_REQUIRE(params.transmission_time > 0.0,
                "transmission time must be positive");

  LinkedSystem out;
  out.num_compute = spec.num_processors;
  const auto n = static_cast<std::size_t>(spec.num_processors);
  out.link_processor.assign(n * n, -1);

  // First pass: discover the links any chain actually crosses and assign
  // them processor indices after the compute processors.
  int next_link = spec.num_processors;
  for (const auto& task : spec.tasks) {
    for (std::size_t j = 1; j < task.subtasks.size(); ++j) {
      const int from = task.subtasks[j - 1].processor;
      const int to = task.subtasks[j].processor;
      if (from == to) continue;
      const std::size_t fwd = static_cast<std::size_t>(from) * n +
                              static_cast<std::size_t>(to);
      if (out.link_processor[fwd] >= 0) continue;
      out.link_processor[fwd] = next_link;
      if (!params.full_duplex) {
        const std::size_t rev = static_cast<std::size_t>(to) * n +
                                static_cast<std::size_t>(from);
        out.link_processor[rev] = next_link;
      }
      ++next_link;
    }
  }
  out.num_links = next_link - spec.num_processors;

  // Second pass: rebuild every chain with link subtasks on the hops.
  out.spec.num_processors = next_link;
  for (const auto& task : spec.tasks) {
    rts::TaskSpec t;
    t.name = task.name;
    t.rate_min = task.rate_min;
    t.rate_max = task.rate_max;
    t.initial_rate = task.initial_rate;
    t.subtasks.push_back(task.subtasks.front());
    for (std::size_t j = 1; j < task.subtasks.size(); ++j) {
      const int from = task.subtasks[j - 1].processor;
      const int to = task.subtasks[j].processor;
      if (from != to) {
        rts::SubtaskSpec link;
        link.processor = out.link_processor[static_cast<std::size_t>(from) * n +
                                            static_cast<std::size_t>(to)];
        EUCON_ASSERT(link.processor >= 0, "hop without a discovered link");
        link.estimated_exec = params.transmission_time;
        t.subtasks.push_back(link);
      }
      t.subtasks.push_back(task.subtasks[j]);
    }
    out.spec.tasks.push_back(std::move(t));
  }
  out.spec.validate();
  return out;
}

}  // namespace eucon::network
