// Modeling network delay by treating links as processors (paper §7.1).
//
// The paper ignores network delay in its simulations but names the classic
// remedy: "network delay can be handled by treating each network link as a
// processor". This transform applies it mechanically: wherever a task
// chain hops between two (compute) processors, a *link subtask* is
// inserted that executes on the processor modeling that link, with an
// estimated execution time equal to the message's transmission time.
//
// The transformed spec is an ordinary SystemSpec: EUCON then controls the
// links' utilization exactly like CPU utilization (preventing congestion),
// and link traversal time shows up in end-to-end responses.
//
// Thread contract: the transform is a pure function of its inputs and the
// returned LinkedSystem is immutable afterwards — safe to share read-only
// across run_batch pool workers, like every other per-run spec object.
#pragma once

#include <vector>

#include "rts/spec.h"

namespace eucon::network {

struct LinkModelParams {
  // Transmission time (in time units) for one message on a link. Applied
  // to every inserted link subtask.
  double transmission_time = 5.0;
  // When true, one link processor models each *direction* of each
  // (ordered) processor pair actually used by some chain; when false, one
  // per unordered pair (half-duplex bus).
  bool full_duplex = true;
};

struct LinkedSystem {
  rts::SystemSpec spec;     // compute processors first, link processors after
  int num_compute = 0;      // original processor count
  int num_links = 0;        // appended link processors
  // link_of[{from,to}] lookup: flattened as from * n + to -> link processor
  // index (or -1). Sized num_compute^2.
  std::vector<int> link_processor;

  int link_between(int from, int to) const;
};

// Builds the transformed system. Chains that stay on one processor are
// unchanged; every inter-processor hop gains a link subtask.
LinkedSystem with_network_links(const rts::SystemSpec& spec,
                                const LinkModelParams& params = {});

}  // namespace eucon::network
