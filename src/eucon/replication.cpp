#include "eucon/replication.h"

#include <cmath>

#include "common/check.h"
#include "common/stats.h"

namespace eucon {

ReplicatedResult run_replicated(const ExperimentConfig& config, int replicas,
                                std::uint64_t seed0, std::size_t from,
                                std::size_t to) {
  EUCON_REQUIRE(valid_replica_count(replicas),
                "replication needs at least two runs");
  const std::size_t n = static_cast<std::size_t>(config.spec.num_processors);

  std::vector<RunningStats> means(n), sds(n);
  std::vector<std::size_t> acceptable(n, 0);
  std::vector<double> min_mean(n, 1e9), max_mean(n, -1e9);
  RunningStats e2e, sub;

  for (int r = 0; r < replicas; ++r) {
    ExperimentConfig cfg = config;
    cfg.sim.seed = seed0 + static_cast<std::uint64_t>(r);
    const ExperimentResult res = run_experiment(cfg);
    for (std::size_t p = 0; p < n; ++p) {
      const auto a = metrics::acceptability(res, p, from, to);
      means[p].add(a.mean);
      sds[p].add(a.stddev);
      if (a.acceptable()) ++acceptable[p];
      min_mean[p] = std::min(min_mean[p], a.mean);
      max_mean[p] = std::max(max_mean[p], a.mean);
    }
    e2e.add(res.deadlines.e2e_miss_ratio());
    sub.add(res.deadlines.subtask_miss_ratio());
  }

  ReplicatedResult out;
  out.per_processor.resize(n);
  for (std::size_t p = 0; p < n; ++p) {
    auto& s = out.per_processor[p];
    s.replicas = static_cast<std::size_t>(replicas);
    s.mean_of_means = means[p].mean();
    // Normal approximation: 1.96 * s / sqrt(n) on the replica means.
    s.ci95_halfwidth = 1.96 * std::sqrt(means[p].sample_variance() /
                                        static_cast<double>(replicas));
    s.mean_of_stddevs = sds[p].mean();
    s.min_mean = min_mean[p];
    s.max_mean = max_mean[p];
    s.acceptable_runs = acceptable[p];
  }
  out.mean_e2e_miss = e2e.mean();
  out.mean_subtask_miss = sub.mean();
  return out;
}

}  // namespace eucon
