// Replicated experiments: the same configuration across independent seeds,
// with per-processor aggregate statistics and normal-approximation
// confidence intervals.
//
// The paper reports single runs; replication quantifies how much of any
// observed difference is seed noise (our EXPERIMENTS.md comparisons and
// the scaling bench use it for exactly that).
#pragma once

#include <vector>

#include "eucon/experiment.h"
#include "eucon/metrics.h"

namespace eucon {

struct ReplicatedStats {
  // Across replicas: distribution of the windowed mean utilization and of
  // the windowed standard deviation.
  double mean_of_means = 0.0;
  double ci95_halfwidth = 0.0;  // for mean_of_means
  double mean_of_stddevs = 0.0;
  double min_mean = 0.0;
  double max_mean = 0.0;
  std::size_t acceptable_runs = 0;  // paper criterion per replica
  std::size_t replicas = 0;
};

struct ReplicatedResult {
  std::vector<ReplicatedStats> per_processor;
  // Replica-level deadline miss ratios.
  double mean_e2e_miss = 0.0;
  double mean_subtask_miss = 0.0;
};

// Statistics over fewer than two replicas are meaningless (the CI half-width
// divides by replicas - 1). run_replicated EUCON_REQUIREs this; callers with
// user-supplied counts (tools/eucon_sim --replicas) should check first and
// report a friendly one-line error instead of the requirement's file:line.
inline bool valid_replica_count(int replicas) { return replicas >= 2; }

// Runs `replicas` copies of `config` with seeds seed0, seed0+1, … and
// aggregates the steady-state window [from, to) (to = 0 -> end of trace).
ReplicatedResult run_replicated(const ExperimentConfig& config, int replicas,
                                std::uint64_t seed0 = 1,
                                std::size_t from = metrics::kSteadyStateFrom,
                                std::size_t to = 0);

}  // namespace eucon
