#include "eucon/report.h"

#include <fstream>

#include "common/check.h"
#include "common/csv.h"
#include "eucon/metrics.h"

namespace eucon::report {

void write_utilization_csv(const ExperimentResult& result, std::ostream& out) {
  CsvWriter w(out);
  std::vector<std::string> header{"k"};
  for (std::size_t p = 0; p < result.set_points.size(); ++p)
    header.push_back("u_P" + std::to_string(p + 1));
  w.write_header(header);
  for (const auto& rec : result.trace) {
    std::vector<double> row{static_cast<double>(rec.k)};
    row.insert(row.end(), rec.u.begin(), rec.u.end());
    w.write_row(row);
  }
}

void write_rates_csv(const ExperimentResult& result,
                     const rts::SystemSpec& spec, std::ostream& out) {
  EUCON_REQUIRE(result.trace.empty() ||
                    result.trace.front().rates.size() == spec.num_tasks(),
                "spec does not match the result");
  CsvWriter w(out);
  std::vector<std::string> header{"k"};
  for (const auto& t : spec.tasks) header.push_back("r_" + t.name);
  w.write_header(header);
  for (const auto& rec : result.trace) {
    std::vector<double> row{static_cast<double>(rec.k)};
    row.insert(row.end(), rec.rates.begin(), rec.rates.end());
    w.write_row(row);
  }
}

void write_summary(const ExperimentResult& result, std::ostream& out,
                   std::size_t steady_from) {
  if (steady_from == 0) {
    steady_from = result.trace.size() > metrics::kSteadyStateFrom * 2
                      ? metrics::kSteadyStateFrom
                      : result.trace.size() / 3;
  }
  out << "periods: " << result.trace.size() << "\n";
  out << "steady-state window: [" << steady_from << ", "
      << result.trace.size() << ")\n";
  for (std::size_t p = 0; p < result.set_points.size(); ++p) {
    const auto a = metrics::acceptability(result, p, steady_from);
    out << "P" << p + 1 << ": mean " << a.mean << " sigma " << a.stddev
        << " set " << a.set_point << " -> "
        << (a.acceptable() ? "acceptable" : "NOT acceptable") << "\n";
  }
  out << "e2e deadline miss ratio: " << result.deadlines.e2e_miss_ratio()
      << "\n";
  out << "subtask deadline miss ratio: "
      << result.deadlines.subtask_miss_ratio() << "\n";
  out << "controller fallbacks: " << result.controller_fallbacks << "\n";
  out << "lost reports: " << result.lost_reports << "\n";
  if (result.admission_suspensions || result.admission_readmissions)
    out << "admission: " << result.admission_suspensions << " suspensions, "
        << result.admission_readmissions << " readmissions\n";
  if (!result.reallocations.empty()) {
    out << "reallocations:";
    for (const auto& m : result.reallocations)
      out << " T" << m.task + 1 << "." << m.subtask + 1 << ":P" << m.from + 1
          << "->P" << m.to + 1;
    out << "\n";
  }
}

void write_all(const ExperimentResult& result, const rts::SystemSpec& spec,
               const std::string& prefix) {
  const auto open = [](const std::string& path) {
    std::ofstream out(path);
    EUCON_REQUIRE(out.good(), "cannot open " + path);
    return out;
  };
  auto u = open(prefix + "_utilization.csv");
  write_utilization_csv(result, u);
  auto r = open(prefix + "_rates.csv");
  write_rates_csv(result, spec, r);
  auto s = open(prefix + "_summary.txt");
  write_summary(result, s);
}

}  // namespace eucon::report
