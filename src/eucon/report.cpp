#include "eucon/report.h"

#include <fstream>

#include "common/check.h"
#include "common/csv.h"
#include "eucon/metrics.h"

namespace eucon::report {

void write_utilization_csv(const ExperimentResult& result, std::ostream& out) {
  CsvWriter w(out);
  std::vector<std::string> header{"k"};
  for (std::size_t p = 0; p < result.set_points.size(); ++p)
    header.push_back("u_P" + std::to_string(p + 1));
  w.write_header(header);
  for (const auto& rec : result.trace) {
    std::vector<double> row{static_cast<double>(rec.k)};
    row.insert(row.end(), rec.u.begin(), rec.u.end());
    w.write_row(row);
  }
}

void write_rates_csv(const ExperimentResult& result,
                     const rts::SystemSpec& spec, std::ostream& out) {
  EUCON_REQUIRE(result.trace.empty() ||
                    result.trace.front().rates.size() == spec.num_tasks(),
                "spec does not match the result");
  CsvWriter w(out);
  std::vector<std::string> header{"k"};
  for (const auto& t : spec.tasks) header.push_back("r_" + t.name);
  w.write_header(header);
  for (const auto& rec : result.trace) {
    std::vector<double> row{static_cast<double>(rec.k)};
    row.insert(row.end(), rec.rates.begin(), rec.rates.end());
    w.write_row(row);
  }
}

void write_summary(const ExperimentResult& result, std::ostream& out,
                   std::size_t steady_from) {
  // Empty traces (a run aborted before its first sampling period) have no
  // steady-state window; RunningStats would hand back quiet-NaN min/max and
  // the NaN would flow silently into the summary, so skip explicitly.
  if (result.trace.empty()) {
    out << "periods: 0\n";
    out << "no samples recorded; per-processor statistics skipped\n";
    return;
  }
  if (steady_from == 0) {
    steady_from = result.trace.size() > metrics::kSteadyStateFrom * 2
                      ? metrics::kSteadyStateFrom
                      : result.trace.size() / 3;
  }
  EUCON_REQUIRE(steady_from < result.trace.size(),
                "steady-state window starts past the end of the trace");
  out << "periods: " << result.trace.size() << "\n";
  out << "steady-state window: [" << steady_from << ", "
      << result.trace.size() << ")\n";
  for (std::size_t p = 0; p < result.set_points.size(); ++p) {
    const auto a = metrics::acceptability(result, p, steady_from);
    out << "P" << p + 1 << ": mean " << a.mean << " sigma " << a.stddev
        << " set " << a.set_point << " -> "
        << (a.acceptable() ? "acceptable" : "NOT acceptable") << "\n";
  }
  out << "e2e deadline miss ratio: " << result.deadlines.e2e_miss_ratio()
      << "\n";
  out << "subtask deadline miss ratio: "
      << result.deadlines.subtask_miss_ratio() << "\n";
  for (std::size_t t = 0; t < result.deadlines.num_tasks(); ++t) {
    const RunningStats& rt = result.deadlines.task(t).response_time_units;
    // min()/max() are quiet-NaN on an empty window — a task that never
    // completed an instance gets an explicit note instead of NaN columns.
    if (rt.count() == 0) {
      out << "T" << t + 1 << " response time: no completed instances\n";
      continue;
    }
    out << "T" << t + 1 << " response time: min " << rt.min() << " mean "
        << rt.mean() << " max " << rt.max() << " (" << rt.count()
        << " instances)\n";
  }
  out << "controller fallbacks: " << result.controller_fallbacks << "\n";
  out << "lost reports: " << result.lost_reports << "\n";
  if (result.admission_suspensions || result.admission_readmissions)
    out << "admission: " << result.admission_suspensions << " suspensions, "
        << result.admission_readmissions << " readmissions\n";
  if (!result.reallocations.empty()) {
    out << "reallocations:";
    for (const auto& m : result.reallocations)
      out << " T" << m.task + 1 << "." << m.subtask + 1 << ":P" << m.from + 1
          << "->P" << m.to + 1;
    out << "\n";
  }
}

void write_all(const ExperimentResult& result, const rts::SystemSpec& spec,
               const std::string& prefix) {
  const auto open = [](const std::string& path) {
    std::ofstream out(path);
    EUCON_REQUIRE(out.good(), "cannot open " + path);
    return out;
  };
  auto u = open(prefix + "_utilization.csv");
  write_utilization_csv(result, u);
  auto r = open(prefix + "_rates.csv");
  write_rates_csv(result, spec, r);
  auto s = open(prefix + "_summary.txt");
  write_summary(result, s);
}

}  // namespace eucon::report
