// Result reporting: CSV exports and a text summary for ExperimentResult.
// Used by the CLI and the figure benches; stable column layouts so plots
// and downstream tooling don't chase the library.
#pragma once

#include <ostream>
#include <string>

#include "eucon/experiment.h"

namespace eucon::report {

// k,u_P1..u_Pn — one row per sampling period.
void write_utilization_csv(const ExperimentResult& result, std::ostream& out);

// k,r_<task name>... — one row per sampling period.
void write_rates_csv(const ExperimentResult& result,
                     const rts::SystemSpec& spec, std::ostream& out);

// Human-readable run summary (set points, steady-state stats per
// processor, deadline ratios, adaptation counters).
void write_summary(const ExperimentResult& result, std::ostream& out,
                   std::size_t steady_from = 0);

// Writes <prefix>_utilization.csv, <prefix>_rates.csv and
// <prefix>_summary.txt. Throws std::invalid_argument when a file cannot
// be opened.
void write_all(const ExperimentResult& result, const rts::SystemSpec& spec,
               const std::string& prefix);

}  // namespace eucon::report
