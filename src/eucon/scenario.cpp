#include "eucon/scenario.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/csv.h"
#include "common/rng.h"

namespace eucon::scenario {

namespace {

// Stream constant separating the random-workload generator seeds from the
// pull-seed stream derived from the same scenario seed.
constexpr std::uint64_t kRandomWorkloadStream = 0x5ce11a21;

const std::vector<std::string>& builtin_names() {
  static const std::vector<std::string> names = {"simple", "simple-relaxed",
                                                 "medium", "large"};
  return names;
}

bool is_builtin(const std::string& name) {
  for (const std::string& n : builtin_names())
    if (n == name) return true;
  return false;
}

rts::SystemSpec builtin_spec(const std::string& name) {
  if (name == "simple") return workloads::simple();
  if (name == "simple-relaxed") return workloads::simple_relaxed();
  if (name == "medium") return workloads::medium();
  if (name == "large") return workloads::large();
  EUCON_FAIL_INVALID("scenario: unknown workload \"" + name +
                     "\" (expected simple, simple-relaxed, medium or large)");
}

}  // namespace

std::size_t Scenario::num_workloads() const {
  return workload_names.size() + static_cast<std::size_t>(random.count);
}

std::size_t Scenario::num_instances() const {
  return num_workloads() * etf.size() * jitter.size() * loss.size() *
         distributions.size() * fault_plans.size();
}

void Scenario::validate() const {
  EUCON_REQUIRE(!controllers.empty(),
                "scenario needs at least one controller");
  EUCON_REQUIRE(periods >= 1, "scenario periods must be at least 1");
  EUCON_REQUIRE(sampling_period > 0.0,
                "scenario sampling_period must be positive");
  EUCON_REQUIRE(replicas >= 1, "scenario replicas must be at least 1");
  EUCON_REQUIRE(random.count >= 0,
                "scenario random_workloads.count must be non-negative");
  EUCON_REQUIRE(num_workloads() > 0,
                "scenario needs at least one workload (built-in or random)");
  for (const std::string& name : workload_names)
    if (!is_builtin(name))
      EUCON_FAIL_INVALID("scenario: unknown workload \"" + name + "\"");
  EUCON_REQUIRE(!etf.empty() && !jitter.empty() && !loss.empty() &&
                    !distributions.empty() && !fault_plans.empty(),
                "scenario axes must be non-empty (apply_defaults missing?)");
  for (const double g : etf)
    EUCON_REQUIRE(g > 0.0, "scenario etf values must be positive");
  for (const double j : jitter)
    EUCON_REQUIRE(j >= 0.0 && j < 1.0, "scenario jitter must be in [0, 1)");
  for (const double p : loss)
    EUCON_REQUIRE(p >= 0.0 && p < 1.0, "scenario loss must be in [0, 1)");
  // Every fault plan must be valid on every workload of the axis, so a bad
  // lane index fails at load time instead of mid-steering.
  for (std::size_t w = 0; w < num_workloads(); ++w) {
    const rts::SystemSpec spec = workload_spec(*this, w);
    for (const faults::FaultPlan& plan : fault_plans)
      plan.validate(spec.num_processors);
  }
}

rts::SystemSpec workload_spec(const Scenario& sc, std::size_t workload) {
  EUCON_REQUIRE(workload < sc.num_workloads(),
                "scenario workload index out of range");
  if (workload < sc.workload_names.size())
    return builtin_spec(sc.workload_names[workload]);
  const std::size_t r = workload - sc.workload_names.size();
  std::uint64_t state = sc.seed ^ (kRandomWorkloadStream + r);
  return workloads::random_workload(sc.random.params, splitmix64_next(state));
}

std::uint64_t pull_seed(std::uint64_t base, std::size_t pull_index) {
  std::uint64_t state =
      base ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(pull_index));
  return splitmix64_next(state);
}

std::size_t pull_instance(const Scenario& sc, std::size_t pull_index) {
  EUCON_REQUIRE(pull_index >= 1, "pull indices are 1-based");
  return (pull_index - 1) % sc.num_instances();
}

namespace {

// Decomposed instance-axis indices, row-major with the workload axis
// slowest and the fault-plan axis fastest.
struct InstanceCell {
  std::size_t workload = 0;
  std::size_t etf = 0;
  std::size_t jitter = 0;
  std::size_t loss = 0;
  std::size_t distribution = 0;
  std::size_t fault_plan = 0;
};

InstanceCell decompose(const Scenario& sc, std::size_t instance) {
  EUCON_REQUIRE(instance < sc.num_instances(),
                "scenario instance index out of range");
  InstanceCell cell;
  cell.fault_plan = instance % sc.fault_plans.size();
  instance /= sc.fault_plans.size();
  cell.distribution = instance % sc.distributions.size();
  instance /= sc.distributions.size();
  cell.loss = instance % sc.loss.size();
  instance /= sc.loss.size();
  cell.jitter = instance % sc.jitter.size();
  instance /= sc.jitter.size();
  cell.etf = instance % sc.etf.size();
  instance /= sc.etf.size();
  cell.workload = instance;
  return cell;
}

std::string workload_label(const Scenario& sc, std::size_t workload) {
  if (workload < sc.workload_names.size()) return sc.workload_names[workload];
  return "random" + std::to_string(workload - sc.workload_names.size());
}

}  // namespace

std::string instance_label(const Scenario& sc, std::size_t instance) {
  const InstanceCell cell = decompose(sc, instance);
  std::string label = workload_label(sc, cell.workload);
  label += "/etf" + CsvWriter::format_double(sc.etf[cell.etf]);
  label += "/j" + CsvWriter::format_double(sc.jitter[cell.jitter]);
  label += "/l" + CsvWriter::format_double(sc.loss[cell.loss]);
  label += "/";
  label += distribution_name(sc.distributions[cell.distribution]);
  label += "/f" + std::to_string(cell.fault_plan);
  return label;
}

ExperimentConfig instance_config(const Scenario& sc, std::size_t instance,
                                 ControllerKind controller,
                                 std::uint64_t seed) {
  const InstanceCell cell = decompose(sc, instance);
  ExperimentConfig cfg;
  cfg.spec = workload_spec(sc, cell.workload);
  const bool simple_family =
      cell.workload < sc.workload_names.size() &&
      (sc.workload_names[cell.workload] == "simple" ||
       sc.workload_names[cell.workload] == "simple-relaxed");
  cfg.mpc = simple_family ? workloads::simple_controller_params()
                          : workloads::medium_controller_params();
  cfg.controller = controller;
  cfg.sampling_period = sc.sampling_period;
  cfg.num_periods = sc.periods;
  cfg.sim.etf = rts::EtfProfile::constant(sc.etf[cell.etf]);
  cfg.sim.jitter = sc.jitter[cell.jitter];
  cfg.sim.exec_distribution = sc.distributions[cell.distribution];
  cfg.sim.seed = seed;
  cfg.report_loss_probability = sc.loss[cell.loss];
  cfg.faults = sc.fault_plans[cell.fault_plan];
  return cfg;
}

std::vector<ExperimentSpec> expand(const Scenario& sc) {
  sc.validate();
  const std::size_t instances = sc.num_instances();
  const std::size_t pulls =
      instances * static_cast<std::size_t>(sc.replicas);
  std::vector<ExperimentSpec> specs;
  specs.reserve(sc.controllers.size() * pulls);
  for (const ControllerKind controller : sc.controllers) {
    for (std::size_t t = 1; t <= pulls; ++t) {
      const std::size_t instance = pull_instance(sc, t);
      ExperimentSpec spec;
      spec.name = sc.name + "/" + controller_kind_name(controller) + "/" +
                  instance_label(sc, instance) + "#" +
                  std::to_string((t - 1) / instances);
      spec.config =
          instance_config(sc, instance, controller, pull_seed(sc.seed, t));
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

const char* distribution_name(rts::ExecDistribution distribution) {
  switch (distribution) {
    case rts::ExecDistribution::kUniform:
      return "uniform";
    case rts::ExecDistribution::kExponential:
      return "exponential";
    case rts::ExecDistribution::kBimodal:
      return "bimodal";
  }
  return "?";
}

rts::ExecDistribution parse_distribution(const std::string& name) {
  if (name == "uniform") return rts::ExecDistribution::kUniform;
  if (name == "exponential") return rts::ExecDistribution::kExponential;
  if (name == "bimodal") return rts::ExecDistribution::kBimodal;
  EUCON_FAIL_INVALID("scenario: unknown distribution \"" + name +
                     "\" (expected uniform, exponential or bimodal)");
}

ControllerKind parse_controller_kind(const std::string& name) {
  if (name == "eucon") return ControllerKind::kEucon;
  if (name == "open") return ControllerKind::kOpen;
  if (name == "pid") return ControllerKind::kPid;
  if (name == "deucon") return ControllerKind::kDecentralized;
  if (name == "adaptive") return ControllerKind::kAdaptive;
  if (name == "fcs-ind") return ControllerKind::kUncoordinated;
  if (name == "hier") return ControllerKind::kHierarchical;
  EUCON_FAIL_INVALID("scenario: unknown controller \"" + name +
                     "\" (expected eucon, open, pid, deucon, adaptive, "
                     "fcs-ind or hier)");
}

// ---------------------------------------------------------------------------
// Scenario parsing: the same dependency-free recursive-descent reader style
// as faults.cpp, with one addition — numbers keep their raw token text so
// embedded fault-plan objects can be re-rendered byte-faithfully and handed
// to faults::parse_fault_plan (one schema, one validator).
// ---------------------------------------------------------------------------

namespace {

struct JsonValue {
  enum class Kind { kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNumber;
  bool boolean = false;
  double number = 0.0;
  std::string number_text;  // raw token, for byte-faithful re-rendering
  std::string string;
  std::vector<JsonValue> items;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    EUCON_FAIL_INVALID("scenario JSON: " + what + " at byte " +
                       std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t len = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, len, lit) != 0) return false;
    pos_ += len;
    return true;
  }

  JsonValue value() {
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      v.string = string_body();
      return v;
    }
    if (consume_literal("true")) {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      v.boolean = false;
      return v;
    }
    return number();
  }

  std::string string_body() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          default: fail("unsupported string escape");
        }
      } else {
        out += c;
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      const bool numeric = (c >= '0' && c <= '9') || c == '.' || c == 'e' ||
                           c == 'E' || c == '-' || c == '+';
      if (!numeric) break;
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string tok = text_.substr(start, pos_ - start);
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number_text = tok;
    std::istringstream in(tok);
    in >> v.number;
    if (in.fail() || !in.eof() || !std::isfinite(v.number))
      fail("malformed number '" + tok + "'");
    return v;
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(value());
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string_body();
      expect(':');
      v.members.emplace_back(std::move(key), value());
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

[[noreturn]] void scenario_error(const std::string& what) {
  EUCON_FAIL_INVALID("scenario: " + what);
}

double as_number(const JsonValue& v, const std::string& key) {
  if (v.kind != JsonValue::Kind::kNumber)
    scenario_error(key + " must be a number");
  return v.number;
}

int as_int(const JsonValue& v, const std::string& key) {
  const double d = as_number(v, key);
  const double rounded = std::floor(d + 0.5);
  if (std::abs(d - rounded) > 1e-9 || std::abs(d) > 1e15)
    scenario_error(key + " must be an integer");
  return static_cast<int>(rounded);
}

std::uint64_t as_u64(const JsonValue& v, const std::string& key) {
  const double d = as_number(v, key);
  if (d < 0.0 || std::abs(d - std::floor(d + 0.5)) > 1e-9 || d > 1e15)
    scenario_error(key + " must be a non-negative integer");
  return static_cast<std::uint64_t>(d + 0.5);
}

const std::string& as_string(const JsonValue& v, const std::string& key) {
  if (v.kind != JsonValue::Kind::kString)
    scenario_error(key + " must be a string");
  return v.string;
}

const std::vector<JsonValue>& as_array(const JsonValue& v,
                                       const std::string& key) {
  if (v.kind != JsonValue::Kind::kArray)
    scenario_error(key + " must be an array");
  if (v.items.empty()) scenario_error(key + " must not be an empty array");
  return v.items;
}

std::vector<double> as_number_array(const JsonValue& v,
                                    const std::string& key) {
  std::vector<double> out;
  for (const JsonValue& item : as_array(v, key))
    out.push_back(as_number(item, key + " entry"));
  return out;
}

// Walks an object's members against a fixed key list via `handle(key,
// value) -> bool`; any unhandled key is an error so a typoed axis never
// silently collapses the grid.
template <typename Fn>
void for_each_member(const JsonValue& v, const std::string& what, Fn handle) {
  if (v.kind != JsonValue::Kind::kObject)
    scenario_error(what + " must be an object");
  for (const auto& [key, value] : v.members) {
    if (!handle(key, value))
      scenario_error("unknown key \"" + key + "\" in " + what);
  }
}

// Re-renders a parsed value as compact JSON. Number tokens are emitted
// verbatim, so the round trip through faults::parse_fault_plan sees exactly
// the bytes the scenario file carried.
void render_json(const JsonValue& v, std::string& out) {
  switch (v.kind) {
    case JsonValue::Kind::kBool:
      out += v.boolean ? "true" : "false";
      return;
    case JsonValue::Kind::kNumber:
      out += v.number_text;
      return;
    case JsonValue::Kind::kString:
      out += '"';
      for (const char c : v.string) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default: out += c;
        }
      }
      out += '"';
      return;
    case JsonValue::Kind::kArray:
      out += '[';
      for (std::size_t i = 0; i < v.items.size(); ++i) {
        if (i > 0) out += ',';
        render_json(v.items[i], out);
      }
      out += ']';
      return;
    case JsonValue::Kind::kObject:
      out += '{';
      for (std::size_t i = 0; i < v.members.size(); ++i) {
        if (i > 0) out += ',';
        out += '"';
        out += v.members[i].first;
        out += "\":";
        render_json(v.members[i].second, out);
      }
      out += '}';
      return;
  }
}

RandomFamily parse_random_family(const JsonValue& v) {
  RandomFamily family;
  for_each_member(
      v, "random_workloads", [&](const std::string& key, const JsonValue& val) {
        if (key == "count") family.count = as_int(val, key);
        else if (key == "processors")
          family.params.num_processors = as_int(val, key);
        else if (key == "tasks") family.params.num_tasks = as_int(val, key);
        else if (key == "min_chain") family.params.min_chain = as_int(val, key);
        else if (key == "max_chain") family.params.max_chain = as_int(val, key);
        else if (key == "min_exec") family.params.min_exec = as_number(val, key);
        else if (key == "max_exec") family.params.max_exec = as_number(val, key);
        else if (key == "min_period")
          family.params.min_period = as_number(val, key);
        else if (key == "max_period")
          family.params.max_period = as_number(val, key);
        else return false;
        return true;
      });
  return family;
}

}  // namespace

Scenario parse_scenario(const std::string& json) {
  JsonReader reader(json);
  const JsonValue root = reader.parse();
  Scenario sc;
  for_each_member(root, "scenario", [&](const std::string& key,
                                        const JsonValue& v) {
    if (key == "name") {
      sc.name = as_string(v, key);
    } else if (key == "seed") {
      sc.seed = as_u64(v, key);
    } else if (key == "periods") {
      sc.periods = as_int(v, key);
    } else if (key == "sampling_period") {
      sc.sampling_period = as_number(v, key);
    } else if (key == "replicas") {
      sc.replicas = as_int(v, key);
    } else if (key == "controllers") {
      for (const JsonValue& item : as_array(v, key))
        sc.controllers.push_back(
            parse_controller_kind(as_string(item, "controllers entry")));
    } else if (key == "workloads") {
      for (const JsonValue& item : as_array(v, key)) {
        const std::string& name = as_string(item, "workloads entry");
        if (!is_builtin(name))
          scenario_error("unknown workload \"" + name + "\"");
        sc.workload_names.push_back(name);
      }
    } else if (key == "random_workloads") {
      sc.random = parse_random_family(v);
    } else if (key == "etf") {
      sc.etf = as_number_array(v, key);
    } else if (key == "jitter") {
      sc.jitter = as_number_array(v, key);
    } else if (key == "loss") {
      sc.loss = as_number_array(v, key);
    } else if (key == "distributions") {
      for (const JsonValue& item : as_array(v, key))
        sc.distributions.push_back(
            parse_distribution(as_string(item, "distributions entry")));
    } else if (key == "fault_plans") {
      for (const JsonValue& item : as_array(v, key)) {
        if (item.kind != JsonValue::Kind::kObject)
          scenario_error("fault_plans entries must be objects");
        std::string rendered;
        render_json(item, rendered);
        sc.fault_plans.push_back(faults::parse_fault_plan(rendered));
      }
    } else {
      return false;
    }
    return true;
  });

  // Singleton defaults for the axes a minimal scenario leaves out.
  if (sc.workload_names.empty() && sc.random.count == 0)
    sc.workload_names.push_back("simple");
  if (sc.etf.empty()) sc.etf.push_back(1.0);
  if (sc.jitter.empty()) sc.jitter.push_back(0.1);
  if (sc.loss.empty()) sc.loss.push_back(0.0);
  if (sc.distributions.empty())
    sc.distributions.push_back(rts::ExecDistribution::kUniform);
  if (sc.fault_plans.empty()) sc.fault_plans.emplace_back();

  sc.validate();
  return sc;
}

Scenario load_scenario_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) EUCON_FAIL("cannot open scenario: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_scenario(buf.str());
}

}  // namespace eucon::scenario
