// Scenario DSL: declarative descriptions of experiment *families*.
//
// The paper's evaluation stops at two hand-built workloads under fixed seed
// grids. A Scenario describes a whole family instead: a cartesian grid of
// workloads (built-in and generated), execution-time factors, jitter
// half-widths, report-loss rates, execution-time shapes and fault plans,
// crossed with a set of controllers to compare. The grid expands into
// deterministic, seedable vectors of ExperimentSpec that run_batch (and the
// steering layer in eucon/steer.h) consume.
//
// The JSON schema (docs/steering.md) follows the fault-plan parser's
// contract: dependency-free recursive descent, unknown keys are an error so
// a typoed axis never silently collapses the grid, and parsing the same
// text twice yields identical scenarios — same expansion, same seeds,
// byte-for-byte the same downstream traces.
//
// Thread contract: Scenario is an immutable value after parsing; expansion
// helpers are pure functions of (scenario, indices).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "eucon/experiment.h"
#include "eucon/faults.h"
#include "eucon/workloads.h"
#include "rts/etf.h"
#include "rts/spec.h"

namespace eucon::scenario {

// A family of deterministically generated random task sets appended to the
// workload axis after the built-in names. count = 0 (default) disables it.
struct RandomFamily {
  int count = 0;
  workloads::RandomWorkloadParams params;
};

struct Scenario {
  std::string name;
  std::uint64_t seed = 1;          // base of every derived replication seed
  int periods = 120;               // sampling periods per run
  double sampling_period = 1000.0; // Ts in time units
  int replicas = 1;                // fixed-grid replications per cell

  // The comparison axis: controllers under test (>= 1 required).
  std::vector<ControllerKind> controllers;

  // Instance axes. Empty axes take the singleton defaults noted here, so a
  // minimal scenario is just {"name", "controllers"}.
  std::vector<std::string> workload_names;  // default {"simple"}
  RandomFamily random;                      // appended generated workloads
  std::vector<double> etf;                  // default {1.0}
  std::vector<double> jitter;               // default {0.1}
  std::vector<double> loss;                 // default {0.0}
  std::vector<rts::ExecDistribution> distributions;  // default {kUniform}
  std::vector<faults::FaultPlan> fault_plans;        // default {empty plan}

  // Number of workloads on the axis: built-ins plus the random family.
  std::size_t num_workloads() const;
  // Product of the instance-axis sizes (excludes controllers and replicas).
  std::size_t num_instances() const;
  // Throws std::invalid_argument on an ill-formed scenario (no controllers,
  // empty axes after defaults, bad probabilities, non-positive periods).
  void validate() const;
};

// Parses the JSON scenario schema (docs/steering.md). Unknown keys and
// ill-typed values are std::invalid_argument with a one-line message.
Scenario parse_scenario(const std::string& json);
// Reads `path` and parses it; throws std::runtime_error when unreadable.
Scenario load_scenario_file(const std::string& path);

const char* distribution_name(rts::ExecDistribution distribution);
// Accepts "uniform", "exponential", "bimodal"; throws otherwise.
rts::ExecDistribution parse_distribution(const std::string& name);
// Accepts the CLI controller spellings ("eucon", "open", "pid", "deucon",
// "adaptive", "fcs-ind"); throws std::invalid_argument otherwise.
ControllerKind parse_controller_kind(const std::string& name);

// The task set of workload-axis entry `workload` (0-based: built-ins in
// declaration order, then the random family). Pure and deterministic —
// random family members derive their generator seed from the scenario seed.
rts::SystemSpec workload_spec(const Scenario& sc, std::size_t workload);

// The seed of pull `pull_index` (1-based) under scenario seed `base`:
// independent SplitMix64 streams, shared by every arm so controller
// comparisons are paired (common random numbers).
std::uint64_t pull_seed(std::uint64_t base, std::size_t pull_index);

// The grid cell visited by pull `pull_index` (1-based): pulls cycle the
// instance grid round-robin, so equal pull counts always cover identical
// instance multisets across arms.
std::size_t pull_instance(const Scenario& sc, std::size_t pull_index);

// Human-readable label of instance `instance` (0-based), stable across
// calls: "<workload>/etf<..>/j<..>/l<..>/<dist>/f<..>" with constant-width
// axis indices.
std::string instance_label(const Scenario& sc, std::size_t instance);

// The full configuration of one run: instance `instance` (0-based) under
// `controller` with simulation seed `seed`. Pure function of its arguments.
ExperimentConfig instance_config(const Scenario& sc, std::size_t instance,
                                 ControllerKind controller,
                                 std::uint64_t seed);

// Expands the fixed grid: for every controller, pulls 1..instances*replicas
// in pull order (instance cycling + pull_seed), so an exhaustive run is
// exactly the never-eliminating steering schedule. Spec names encode
// "<scenario>/<controller>/<instance label>#<replica>".
std::vector<ExperimentSpec> expand(const Scenario& sc);

}  // namespace eucon::scenario
