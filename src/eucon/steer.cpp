#include "eucon/steer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/csv.h"
#include "eucon/metrics.h"

namespace eucon::steer {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Per-(arm, t) failure budget: delta_eff / (K t (t+1)). Sum over t of
// 1/(t(t+1)) telescopes to 1, so a union bound over arms and times spends
// exactly delta_eff in total — the radii are anytime valid.
double per_time_delta(double delta_eff, std::size_t num_arms, std::size_t t) {
  return delta_eff / (static_cast<double>(num_arms) * static_cast<double>(t) *
                      static_cast<double>(t + 1));
}

// Hoeffding radius for t samples in [0, 1] at confidence delta_t.
double hoeffding_radius_at(std::size_t t, double delta_t) {
  if (t == 0) return kInf;
  const double td = static_cast<double>(t);
  return std::sqrt(std::log(2.0 / delta_t) / (2.0 * td));
}

// Maurer–Pontil empirical-Bernstein radius: needs the sample variance, so
// it is undefined (infinite) below two samples.
double bernstein_radius_at(std::size_t t, double delta_t,
                           double sample_variance) {
  if (t < 2) return kInf;
  const double td = static_cast<double>(t);
  const double log_term = std::log(3.0 / delta_t);
  return std::sqrt(2.0 * sample_variance * log_term / td) +
         3.0 * log_term / td;
}

double bound_radius(const RunningStats& stats, std::size_t num_arms,
                    const BaiOptions& options) {
  const std::size_t t = stats.count();
  if (t == 0) return kInf;
  switch (options.bound) {
    case BoundKind::kHoeffding:
      return hoeffding_radius_at(
          t, per_time_delta(options.delta, num_arms, t));
    case BoundKind::kEmpiricalBernstein:
      return bernstein_radius_at(t,
                                 per_time_delta(options.delta, num_arms, t),
                                 stats.sample_variance());
    case BoundKind::kTightest: {
      // Half the budget to each bound; both then hold simultaneously, so
      // the smaller radius is valid at the full delta.
      const double half = options.delta / 2.0;
      return std::min(
          hoeffding_radius_at(t, per_time_delta(half, num_arms, t)),
          bernstein_radius_at(t, per_time_delta(half, num_arms, t),
                              stats.sample_variance()));
    }
  }
  EUCON_FAIL("unreachable bound kind");
}

// JSON string escaping for decision-log records (names come from scenario
// files, so quotes/backslashes/control bytes must survive).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Deterministic JSON number rendering; infinities (a pre-variance Bernstein
// radius) have no JSON spelling and render as null.
std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  return CsvWriter::format_double(v);
}

}  // namespace

const char* bound_kind_name(BoundKind bound) {
  switch (bound) {
    case BoundKind::kHoeffding: return "hoeffding";
    case BoundKind::kEmpiricalBernstein: return "bernstein";
    case BoundKind::kTightest: return "tightest";
  }
  EUCON_FAIL("unreachable bound kind");
}

BoundKind parse_bound_kind(const std::string& name) {
  if (name == "hoeffding") return BoundKind::kHoeffding;
  if (name == "bernstein") return BoundKind::kEmpiricalBernstein;
  if (name == "tightest") return BoundKind::kTightest;
  EUCON_FAIL_INVALID("unknown bound kind '" + name +
                     "' (expected hoeffding, bernstein or tightest)");
}

// ---------------------------------------------------------------------------
// SuccessiveElimination
// ---------------------------------------------------------------------------

SuccessiveElimination::SuccessiveElimination(std::size_t num_arms,
                                             const BaiOptions& options)
    : options_(options), arms_(num_arms), num_active_(num_arms) {
  EUCON_REQUIRE(num_arms >= 1, "need at least one arm");
  EUCON_REQUIRE(options.delta > 0.0 && options.delta < 1.0,
                "delta must lie in (0, 1)");
}

void SuccessiveElimination::add_sample(std::size_t arm, double value) {
  EUCON_REQUIRE(arm < arms_.size(), "arm index out of range");
  EUCON_REQUIRE(arms_[arm].eliminated_round < 0,
                "cannot sample an eliminated arm");
  EUCON_REQUIRE(value >= 0.0 && value <= 1.0,
                "rewards must lie in [0, 1] (the bounds assume it)");
  arms_[arm].stats.add(value);
}

void SuccessiveElimination::end_round() {
  // Equal pull counts across active arms keep comparisons paired (same
  // common-random-number schedule) and the union bound balanced.
  std::size_t pulls_seen = 0;
  bool first = true;
  for (const Arm& arm : arms_) {
    if (arm.eliminated_round >= 0) continue;
    if (first) {
      pulls_seen = arm.stats.count();
      first = false;
    } else {
      EUCON_REQUIRE(arm.stats.count() == pulls_seen,
                    "active arms must have equal pull counts at a barrier");
    }
  }
  EUCON_REQUIRE(pulls_seen >= 1, "end_round needs at least one pull per arm");

  ++rounds_;
  for (Arm& arm : arms_) {
    if (arm.eliminated_round >= 0) continue;
    arm.radius = radius_for(arm);
    arm.has_radius = true;
  }
  if (num_active_ <= 1) return;

  const std::size_t leader = best();
  const double leader_lower =
      arms_[leader].stats.mean() - arms_[leader].radius;
  for (std::size_t i = 0; i < arms_.size(); ++i) {
    if (i == leader || arms_[i].eliminated_round >= 0) continue;
    if (arms_[i].stats.mean() + arms_[i].radius < leader_lower) {
      arms_[i].eliminated_round = narrow<int>(rounds_);
      --num_active_;
    }
  }
}

bool SuccessiveElimination::active(std::size_t arm) const {
  EUCON_REQUIRE(arm < arms_.size(), "arm index out of range");
  return arms_[arm].eliminated_round < 0;
}

std::size_t SuccessiveElimination::best() const {
  std::size_t best_arm = arms_.size();
  double best_mean = -kInf;
  for (std::size_t i = 0; i < arms_.size(); ++i) {
    if (arms_[i].eliminated_round >= 0) continue;
    const double m = arms_[i].stats.mean();
    if (best_arm == arms_.size() || m > best_mean) {
      best_arm = i;
      best_mean = m;
    }
  }
  EUCON_ASSERT(best_arm < arms_.size(), "no active arm");
  return best_arm;
}

double SuccessiveElimination::mean(std::size_t arm) const {
  EUCON_REQUIRE(arm < arms_.size(), "arm index out of range");
  return arms_[arm].stats.mean();
}

double SuccessiveElimination::radius(std::size_t arm) const {
  EUCON_REQUIRE(arm < arms_.size(), "arm index out of range");
  if (!arms_[arm].has_radius) return kInf;
  return arms_[arm].radius;
}

std::size_t SuccessiveElimination::pulls(std::size_t arm) const {
  EUCON_REQUIRE(arm < arms_.size(), "arm index out of range");
  return arms_[arm].stats.count();
}

int SuccessiveElimination::eliminated_round(std::size_t arm) const {
  EUCON_REQUIRE(arm < arms_.size(), "arm index out of range");
  return arms_[arm].eliminated_round;
}

double SuccessiveElimination::hoeffding_radius(std::size_t arm) const {
  EUCON_REQUIRE(arm < arms_.size(), "arm index out of range");
  const std::size_t t = arms_[arm].stats.count();
  if (t == 0) return kInf;
  const double delta_eff = options_.bound == BoundKind::kTightest
                               ? options_.delta / 2.0
                               : options_.delta;
  return hoeffding_radius_at(t, per_time_delta(delta_eff, arms_.size(), t));
}

double SuccessiveElimination::radius_for(const Arm& arm) const {
  return bound_radius(arm.stats, arms_.size(), options_);
}

// ---------------------------------------------------------------------------
// Steering over run_batch
// ---------------------------------------------------------------------------

double run_score(const ExperimentResult& result) {
  if (result.trace.empty() || result.set_points.size() == 0) return 0.0;
  // Steady-state window: skip the transient, matching the eucon_sim summary
  // (full kSteadyStateFrom warm-up when the run is long enough).
  const std::size_t from = result.trace.size() > metrics::kSteadyStateFrom
                               ? metrics::kSteadyStateFrom
                               : result.trace.size() / 3;
  double deviation = 0.0;
  for (std::size_t p = 0; p < result.set_points.size(); ++p) {
    const RunningStats s = metrics::utilization_stats(result, p, from);
    deviation += std::abs(s.mean() - result.set_points[p]);
  }
  deviation /= static_cast<double>(result.set_points.size());
  const double tracking = std::clamp(1.0 - deviation / 0.2, 0.0, 1.0);
  const double deadline =
      std::clamp(1.0 - result.deadlines.e2e_miss_ratio(), 0.0, 1.0);
  return 0.5 * tracking + 0.5 * deadline;
}

namespace {

void log_line(std::ostream* log, const std::string& line) {
  if (log != nullptr) *log << line << '\n';
}

std::string arm_record(const std::string& controller,
                       const SuccessiveElimination& se, std::size_t arm) {
  std::ostringstream os;
  os << "{\"controller\":\"" << json_escape(controller)
     << "\",\"pulls\":" << se.pulls(arm)
     << ",\"mean\":" << json_number(se.mean(arm))
     << ",\"radius\":" << json_number(se.radius(arm))
     << ",\"active\":" << (se.active(arm) ? "true" : "false") << "}";
  return os.str();
}

std::string header_record(const scenario::Scenario& sc,
                          const SteeringOptions& options, std::size_t budget,
                          std::size_t max_rounds) {
  std::ostringstream os;
  os << "{\"event\":\"steering\",\"scenario\":\"" << json_escape(sc.name)
     << "\",\"bound\":\"" << bound_kind_name(options.bai.bound)
     << "\",\"delta\":" << json_number(options.bai.delta)
     << ",\"controllers\":[";
  for (std::size_t i = 0; i < sc.controllers.size(); ++i) {
    if (i > 0) os << ',';
    os << '"' << controller_kind_name(sc.controllers[i]) << '"';
  }
  os << "],\"instances\":" << sc.num_instances()
     << ",\"replicas\":" << sc.replicas << ",\"budget_per_arm\":" << budget
     << ",\"reps_per_round\":" << options.reps_per_round
     << ",\"max_rounds\":" << max_rounds << ",\"seed\":" << sc.seed << "}";
  return os.str();
}

}  // namespace

SteeringReport run_steering(const scenario::Scenario& sc,
                            const SteeringOptions& options) {
  sc.validate();
  const std::size_t num_arms = sc.controllers.size();
  EUCON_REQUIRE(num_arms >= 2,
                "steering needs at least two controllers to compare");
  EUCON_REQUIRE(options.reps_per_round >= 1, "reps_per_round must be >= 1");
  EUCON_REQUIRE(options.max_rounds >= 0, "max_rounds must be >= 0");

  const std::size_t instances = sc.num_instances();
  const std::size_t budget =
      instances * static_cast<std::size_t>(sc.replicas);
  const std::size_t reps =
      static_cast<std::size_t>(options.reps_per_round);
  // Default round budget: the fixed grid's per-arm spend. Steering may stop
  // earlier (decided) but never pulls one arm past what the exhaustive grid
  // would have given it.
  const std::size_t max_rounds =
      options.max_rounds > 0 ? static_cast<std::size_t>(options.max_rounds)
                             : (budget + reps - 1) / reps;

  log_line(options.decision_log,
           header_record(sc, options, budget, max_rounds));

  SuccessiveElimination se(num_arms, options.bai);
  std::size_t total_replications = 0;
  std::size_t pulls_done = 0;  // per-arm; equal across active arms
  for (std::size_t round = 1; round <= max_rounds && !se.decided(); ++round) {
    std::size_t reps_this = reps;
    if (options.max_rounds == 0)
      reps_this = std::min(reps, budget - pulls_done);
    if (reps_this == 0) break;

    // One run_batch call per round is the determinism barrier: results come
    // back in spec order and bit-identical serial vs pooled, so everything
    // decided below is a pure function of the scenario.
    std::vector<ExperimentSpec> specs;
    std::vector<std::size_t> spec_arm;
    specs.reserve(se.num_active() * reps_this);
    spec_arm.reserve(se.num_active() * reps_this);
    for (std::size_t arm = 0; arm < num_arms; ++arm) {
      if (!se.active(arm)) continue;
      for (std::size_t j = 0; j < reps_this; ++j) {
        const std::size_t t = pulls_done + j + 1;  // 1-based pull index
        const std::size_t instance = scenario::pull_instance(sc, t);
        ExperimentSpec spec;
        spec.name = sc.name + "/" +
                    controller_kind_name(sc.controllers[arm]) + "/" +
                    scenario::instance_label(sc, instance) + "#" +
                    std::to_string((t - 1) / instances);
        spec.config = scenario::instance_config(
            sc, instance, sc.controllers[arm],
            scenario::pull_seed(sc.seed, t));
        specs.push_back(std::move(spec));
        spec_arm.push_back(arm);
      }
    }

    BatchOptions batch;
    batch.num_workers = options.num_workers;
    batch.serial = options.serial;
    batch.metrics = options.metrics;
    const std::vector<ExperimentResult> results = run_batch(specs, batch);

    for (std::size_t i = 0; i < results.size(); ++i)
      se.add_sample(spec_arm[i], run_score(results[i]));
    total_replications += results.size();
    pulls_done += reps_this;
    se.end_round();

    if (options.decision_log != nullptr) {
      std::ostringstream os;
      os << "{\"event\":\"round\",\"round\":" << round
         << ",\"pulls_per_arm\":" << pulls_done << ",\"arms\":[";
      bool first = true;
      for (std::size_t arm = 0; arm < num_arms; ++arm) {
        // Arms pulled this round: active now, or eliminated at this barrier.
        if (!se.active(arm) &&
            se.eliminated_round(arm) != narrow<int>(se.rounds()))
          continue;
        if (!first) os << ',';
        first = false;
        os << arm_record(controller_kind_name(sc.controllers[arm]), se, arm);
      }
      os << "]}";
      log_line(options.decision_log, os.str());

      const std::size_t leader = se.best();
      for (std::size_t arm = 0; arm < num_arms; ++arm) {
        if (se.eliminated_round(arm) != narrow<int>(se.rounds())) continue;
        std::ostringstream es;
        es << "{\"event\":\"eliminate\",\"round\":" << round
           << ",\"controller\":\""
           << controller_kind_name(sc.controllers[arm])
           << "\",\"mean\":" << json_number(se.mean(arm))
           << ",\"radius\":" << json_number(se.radius(arm)) << ",\"best\":\""
           << controller_kind_name(sc.controllers[leader])
           << "\",\"best_mean\":" << json_number(se.mean(leader))
           << ",\"best_radius\":" << json_number(se.radius(leader)) << "}";
        log_line(options.decision_log, es.str());
      }
    }
  }

  SteeringReport report;
  report.scenario = sc.name;
  report.decided = se.decided();
  report.rounds = se.rounds();
  report.total_replications = total_replications;
  report.exhaustive_replications = num_arms * budget;
  report.replication_savings =
      total_replications == 0
          ? 0.0
          : static_cast<double>(report.exhaustive_replications) /
                static_cast<double>(total_replications);
  const std::size_t winner = se.best();
  report.winner = controller_kind_name(sc.controllers[winner]);
  report.arms.reserve(num_arms);
  for (std::size_t arm = 0; arm < num_arms; ++arm) {
    ArmOutcome outcome;
    outcome.controller = controller_kind_name(sc.controllers[arm]);
    outcome.mean = se.mean(arm);
    outcome.radius = se.radius(arm);
    outcome.pulls = se.pulls(arm);
    outcome.eliminated_round = se.eliminated_round(arm);
    report.arms.push_back(std::move(outcome));
  }

  if (options.metrics != nullptr) {
    options.metrics->add("steer.rounds", report.rounds);
    options.metrics->add("steer.replications", report.total_replications);
    options.metrics->add("steer.eliminations", num_arms - se.num_active());
    options.metrics->add("steer.decided", report.decided ? 1 : 0);
  }

  if (options.decision_log != nullptr) {
    std::ostringstream os;
    os << "{\"event\":\"decision\",\"winner\":\"" << report.winner
       << "\",\"decided\":" << (report.decided ? "true" : "false")
       << ",\"rounds\":" << report.rounds
       << ",\"replications\":" << report.total_replications
       << ",\"exhaustive\":" << report.exhaustive_replications
       << ",\"savings\":" << json_number(report.replication_savings) << "}";
    log_line(options.decision_log, os.str());
  }
  return report;
}

SteeringReport run_exhaustive(const scenario::Scenario& sc,
                              const SteeringOptions& options) {
  sc.validate();
  const std::size_t num_arms = sc.controllers.size();
  const std::size_t budget =
      sc.num_instances() * static_cast<std::size_t>(sc.replicas);

  const std::vector<ExperimentSpec> specs = scenario::expand(sc);
  BatchOptions batch;
  batch.num_workers = options.num_workers;
  batch.serial = options.serial;
  batch.metrics = options.metrics;
  const std::vector<ExperimentResult> results = run_batch(specs, batch);
  EUCON_ASSERT(results.size() == num_arms * budget,
               "expand() and run_batch() disagree on run count");

  SteeringReport report;
  report.scenario = sc.name;
  report.rounds = 1;
  report.total_replications = results.size();
  report.exhaustive_replications = results.size();
  report.replication_savings = 1.0;
  report.arms.reserve(num_arms);
  // expand() is controller-major: runs [arm * budget, (arm + 1) * budget).
  for (std::size_t arm = 0; arm < num_arms; ++arm) {
    RunningStats stats;
    for (std::size_t j = 0; j < budget; ++j)
      stats.add(run_score(results[arm * budget + j]));
    ArmOutcome outcome;
    outcome.controller = controller_kind_name(sc.controllers[arm]);
    outcome.mean = stats.mean();
    outcome.radius = bound_radius(stats, num_arms, options.bai);
    outcome.pulls = stats.count();
    report.arms.push_back(std::move(outcome));
  }

  std::size_t winner = 0;
  for (std::size_t arm = 1; arm < num_arms; ++arm)
    if (report.arms[arm].mean > report.arms[winner].mean) winner = arm;
  report.winner = report.arms[winner].controller;
  // "Decided" for the fixed grid means the winner's interval cleanly beats
  // every other arm's — the same evidence bar steering applies.
  report.decided = true;
  for (std::size_t arm = 0; arm < num_arms; ++arm) {
    if (arm == winner) continue;
    if (report.arms[winner].mean - report.arms[winner].radius <=
        report.arms[arm].mean + report.arms[arm].radius)
      report.decided = false;
  }
  return report;
}

}  // namespace eucon::steer
