// Sequential best-arm identification over the batch engine: adaptive
// experiment steering (docs/steering.md).
//
// The fixed-grid way to compare controllers is "run every controller on
// every scenario instance R times and compare the means" — most of those
// replications are spent on arms that were hopeless after the first dozen
// runs. This module adopts the sequential testing idiom of Monte-Carlo
// simulation engines (MAGPIE's simmer/bai stack is the exemplar): arms are
// the scenario's controllers, a pull is one run_experiment on the next
// (instance, seed) of a deterministic schedule shared by every arm (common
// random numbers), and successive elimination retires an arm as soon as its
// anytime-valid upper confidence bound falls below the best arm's lower
// bound. The survivors get the replication budget the losers no longer
// consume — typically identifying the winner in a fraction of the fixed
// grid's runs at the same failure probability delta.
//
// Determinism contract: elimination decisions happen only at round
// barriers, after a run_batch call whose results are in spec order and
// bit-identical serial vs pooled. The decision log is therefore
// byte-identical for any worker count — the adaptive layer extends, and is
// regression-tested under, the same contract as the batch engine
// (tests/steering_determinism_test.cpp, tests/golden/steer_demo.jsonl).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/stats.h"
#include "eucon/experiment.h"
#include "eucon/scenario.h"
#include "obs/registry.h"

namespace eucon::steer {

// Which anytime-valid confidence radius drives eliminations. Samples must
// lie in [0, 1] (run_score guarantees it); with per-(arm, t) failure budget
// delta_t = delta_eff / (K t (t+1)):
//   kHoeffding           sqrt(ln(2/delta_t) / (2 t))
//   kEmpiricalBernstein  sqrt(2 V_t ln(3/delta_t) / t) + 3 ln(3/delta_t) / t
//   kTightest            min of both, each at delta_eff = delta / 2
// Summing delta_t over all arms and times telescopes to delta_eff, so every
// bound holds simultaneously for all t — stopping any time is valid.
enum class BoundKind {
  kHoeffding,
  kEmpiricalBernstein,
  kTightest,
};

const char* bound_kind_name(BoundKind bound);
// Accepts "hoeffding", "bernstein", "tightest"; throws std::invalid_argument.
BoundKind parse_bound_kind(const std::string& name);

struct BaiOptions {
  double delta = 0.05;  // total failure probability, in (0, 1)
  BoundKind bound = BoundKind::kTightest;
};

// The experiment-agnostic successive-elimination core, exposed separately
// so the statistical-correctness suite (tests/steering_test.cpp) can drive
// it on synthetic arms with known means. Pull all active arms the same
// number of times, then call end_round(); elimination happens only there.
class SuccessiveElimination {
 public:
  SuccessiveElimination(std::size_t num_arms, const BaiOptions& options);

  // Adds one reward sample in [0, 1] for an active arm.
  void add_sample(std::size_t arm, double value);
  // Round barrier: recomputes every active arm's radius and eliminates each
  // arm whose upper bound lies strictly below the best arm's lower bound.
  // Requires equal pull counts (>= 1) across active arms.
  void end_round();

  std::size_t num_arms() const { return arms_.size(); }
  std::size_t num_active() const { return num_active_; }
  bool active(std::size_t arm) const;
  // True when a single arm remains.
  bool decided() const { return num_active_ == 1; }
  // The active arm with the highest empirical mean (lowest index on ties).
  std::size_t best() const;
  std::size_t rounds() const { return rounds_; }

  double mean(std::size_t arm) const;
  // The current confidence radius (+infinity before the first sample).
  double radius(std::size_t arm) const;
  double lower(std::size_t arm) const { return mean(arm) - radius(arm); }
  double upper(std::size_t arm) const { return mean(arm) + radius(arm); }
  std::size_t pulls(std::size_t arm) const;
  // Round at which the arm was eliminated, or -1 while it is active.
  int eliminated_round(std::size_t arm) const;

  // The Hoeffding component alone (ignoring the bound-kind selection) —
  // analytically monotone non-increasing in the pull count, which the
  // CI-width fuzz pins. +infinity before the first sample.
  double hoeffding_radius(std::size_t arm) const;

 private:
  struct Arm {
    RunningStats stats;
    double radius = 0.0;
    bool has_radius = false;  // false until the first end_round with pulls
    int eliminated_round = -1;
  };

  double radius_for(const Arm& arm) const;

  BaiOptions options_;
  std::vector<Arm> arms_;
  std::size_t num_active_ = 0;
  std::size_t rounds_ = 0;
};

// ---------------------------------------------------------------------------
// Steering over run_batch
// ---------------------------------------------------------------------------

struct SteeringOptions {
  BaiOptions bai;
  // Replications per active arm per round. Rounds are the determinism
  // barriers: larger rounds decide on more data per barrier, smaller rounds
  // eliminate sooner.
  int reps_per_round = 2;
  // Round budget; 0 derives it from the scenario's fixed-grid budget
  // (instances * replicas pulls per arm, the exhaustive grid's spend).
  int max_rounds = 0;

  // Batch execution (forwarded to run_batch): pooled by default.
  std::size_t num_workers = 0;
  bool serial = false;

  // Shared counter registry: steer.rounds, steer.replications,
  // steer.eliminations, steer.decided — plus everything the underlying
  // runs record. Null = metrics off.
  obs::Registry* metrics = nullptr;
  // JSONL decision log (docs/steering.md): one header record, one record
  // per round, one per elimination, one decision record. Byte-identical
  // serial vs pooled. Null = logging off.
  std::ostream* decision_log = nullptr;
};

struct ArmOutcome {
  std::string controller;
  double mean = 0.0;
  double radius = 0.0;
  std::size_t pulls = 0;
  int eliminated_round = -1;  // -1 = survived to the end
};

struct SteeringReport {
  std::string scenario;
  std::string winner;       // controller name of the best surviving arm
  bool decided = false;     // single survivor vs budget exhausted
  std::size_t rounds = 0;
  std::size_t total_replications = 0;       // runs actually executed
  std::size_t exhaustive_replications = 0;  // fixed-grid equivalent spend
  // exhaustive_replications / total_replications (>= 1 when steering wins).
  double replication_savings = 0.0;
  std::vector<ArmOutcome> arms;  // in scenario controller order
};

// The per-run reward in [0, 1] steering ranks controllers by: equal parts
// set-point tracking (mean absolute utilization deviation, full credit at 0
// and none at >= 0.2) and end-to-end deadline performance (1 - miss ratio).
double run_score(const ExperimentResult& result);

// Runs successive elimination over the scenario's controllers. Requires at
// least two controllers. Deterministic for a fixed (scenario, options.bai,
// reps_per_round, max_rounds) regardless of serial/num_workers.
SteeringReport run_steering(const scenario::Scenario& sc,
                            const SteeringOptions& options = {});

// The fixed-grid baseline: every controller runs the full instance x
// replica grid through one run_batch call; the report carries the same
// shape with every arm at the full budget. The winner cross-check in
// bench_steering compares this against run_steering.
SteeringReport run_exhaustive(const scenario::Scenario& sc,
                              const SteeringOptions& options = {});

}  // namespace eucon::steer
