#include "eucon/workloads.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"

namespace eucon::workloads {

using rts::SubtaskSpec;
using rts::SystemSpec;
using rts::TaskSpec;

namespace {

TaskSpec task(std::string name, std::vector<SubtaskSpec> subtasks,
              double max_period, double min_period, double initial_period) {
  TaskSpec t;
  t.name = std::move(name);
  t.subtasks = std::move(subtasks);
  t.rate_min = 1.0 / max_period;
  t.rate_max = 1.0 / min_period;
  t.initial_rate = 1.0 / initial_period;
  return t;
}

}  // namespace

SystemSpec simple() {
  // Paper Table 1 (periods given as 1/R):
  //   T11 on P1, c=35, 1/Rmax=35, 1/Rmin=700, 1/r(0)=60
  //   T21 on P1, c=35 } same task,   1/Rmax=35, 1/Rmin=700, 1/r(0)=90
  //   T22 on P2, c=35 }
  //   T31 on P2, c=45, 1/Rmax=45, 1/Rmin=900, 1/r(0)=100
  SystemSpec s;
  s.num_processors = 2;
  s.tasks.push_back(task("T1", {{0, 35.0}}, 700.0, 35.0, 60.0));
  s.tasks.push_back(task("T2", {{0, 35.0}, {1, 35.0}}, 700.0, 35.0, 90.0));
  s.tasks.push_back(task("T3", {{1, 45.0}}, 900.0, 45.0, 100.0));
  s.validate();
  return s;
}

SystemSpec simple_relaxed() {
  SystemSpec s = simple();
  for (auto& t : s.tasks) t.rate_max = 1.0 / 10.0;
  s.validate();
  return s;
}

SystemSpec medium() {
  // 8 end-to-end tasks + 4 local tasks on 4 processors; 25 subtasks with
  // per-processor counts {7, 6, 6, 6}. All tasks share the rate range
  // [1/3000, 1/20] and start at period 400 — wide enough that every
  // execution-time factor in [0.1, 6] admits a feasible rate assignment.
  // Execution times are kept small relative to Ts = 1000 so that many
  // instances of every subtask run per sampling window (§3.2's requirement
  // on the sampling period), keeping the utilization measurement noise low.
  SystemSpec s;
  s.num_processors = 4;
  const double max_p = 1500.0, min_p = 10.0, init_p = 200.0;
  s.tasks.push_back(task("T1", {{0, 15.0}, {1, 12.5}, {2, 10.0}}, max_p, min_p, init_p));
  s.tasks.push_back(task("T2", {{1, 14.0}, {2, 16.0}, {3, 12.5}}, max_p, min_p, init_p));
  s.tasks.push_back(task("T3", {{2, 12.0}, {3, 15.0}, {0, 13.0}}, max_p, min_p, init_p));
  s.tasks.push_back(task("T4", {{3, 17.5}, {0, 13.5}, {1, 11.0}}, max_p, min_p, init_p));
  s.tasks.push_back(task("T5", {{0, 11.0}, {1, 13.0}, {2, 15.0}}, max_p, min_p, init_p));
  s.tasks.push_back(task("T6", {{3, 20.0}, {0, 17.0}}, max_p, min_p, init_p));
  s.tasks.push_back(task("T7", {{1, 15.0}, {2, 14.0}}, max_p, min_p, init_p));
  s.tasks.push_back(task("T8", {{3, 13.0}, {1, 18.0}}, max_p, min_p, init_p));
  s.tasks.push_back(task("T9", {{0, 22.5}}, max_p, min_p, init_p));
  s.tasks.push_back(task("T10", {{0, 19.0}}, max_p, min_p, init_p));
  s.tasks.push_back(task("T11", {{2, 21.0}}, max_p, min_p, init_p));
  s.tasks.push_back(task("T12", {{3, 18.0}}, max_p, min_p, init_p));
  s.validate();
  EUCON_ASSERT(s.num_subtasks() == 25, "MEDIUM must have 25 subtasks");
  const auto counts = s.subtasks_per_processor();
  EUCON_ASSERT(counts[0] == 7 && counts[1] == 6 && counts[2] == 6 && counts[3] == 6,
               "MEDIUM subtask counts must be {7,6,6,6}");
  return s;
}

SystemSpec large() {
  SystemSpec s;
  s.num_processors = 8;
  const double max_p = 2000.0, min_p = 8.0, init_p = 160.0;
  // 16 end-to-end tasks: rings of length 3 and 2 walking the processors,
  // plus 8 local tasks (one per processor): 16*?: chains sum to 48
  // subtasks, locals add 8 -> 56 subtasks, 7 per processor.
  int proc = 0;
  for (int i = 0; i < 8; ++i) {  // eight 3-chains
    const int p0 = proc % 8, p1 = (proc + 1) % 8, p2 = (proc + 3) % 8;
    s.tasks.push_back(task("L" + std::to_string(i + 1),
                           {{p0, 10.0 + i}, {p1, 12.0 + (i % 3)},
                            {p2, 9.0 + (i % 4)}},
                           max_p, min_p, init_p));
    proc += 1;
  }
  for (int i = 0; i < 12; ++i) {  // twelve 2-chains
    const int p0 = (proc + i) % 8, p1 = (proc + i + 2) % 8;
    s.tasks.push_back(task("L" + std::to_string(9 + i),
                           {{p0, 11.0 + (i % 5)}, {p1, 10.0 + (i % 4)}},
                           max_p, min_p, init_p));
  }
  // Locals are only needed where the subtask count has not reached 7;
  // compute the deficit per processor and fill.
  auto counts = s.subtasks_per_processor();
  int local_id = 21;
  for (int p = 0; p < 8; ++p) {
    while (counts[static_cast<std::size_t>(p)] < 7) {
      s.tasks.push_back(task("L" + std::to_string(local_id++),
                             {{p, 14.0 + p}}, max_p, min_p, init_p));
      ++counts[static_cast<std::size_t>(p)];
    }
  }
  s.validate();
  return s;
}

control::MpcParams simple_controller_params() {
  control::MpcParams p;  // Table 2, SIMPLE row
  p.prediction_horizon = 2;
  p.control_horizon = 1;
  p.tref_over_ts = 4.0;
  return p;
}

control::MpcParams medium_controller_params() {
  control::MpcParams p;  // Table 2, MEDIUM row
  p.prediction_horizon = 4;
  p.control_horizon = 2;
  p.tref_over_ts = 4.0;
  return p;
}

SystemSpec random_workload(const RandomWorkloadParams& params,
                           std::uint64_t seed) {
  EUCON_REQUIRE(params.num_processors > 0 && params.num_tasks > 0,
                "random workload needs processors and tasks");
  EUCON_REQUIRE(params.min_chain >= 1 && params.max_chain >= params.min_chain,
                "bad chain length range");
  Rng rng(seed);
  SystemSpec s;
  s.num_processors = params.num_processors;
  for (int i = 0; i < params.num_tasks; ++i) {
    TaskSpec t;
    t.name = "R" + std::to_string(i + 1);
    const int chain =
        static_cast<int>(rng.uniform_int(params.min_chain, params.max_chain));
    // Walk across distinct processors where possible so chains actually
    // couple processors (like the paper's end-to-end tasks).
    int proc = static_cast<int>(rng.uniform_int(0, params.num_processors - 1));
    for (int j = 0; j < chain; ++j) {
      SubtaskSpec sub;
      sub.processor = proc;
      sub.estimated_exec = rng.uniform(params.min_exec, params.max_exec);
      t.subtasks.push_back(sub);
      if (params.num_processors > 1) {
        const int hop =
            static_cast<int>(rng.uniform_int(1, params.num_processors - 1));
        proc = (proc + hop) % params.num_processors;
      }
    }
    const double period = rng.uniform(params.min_period, params.max_period);
    t.initial_rate = 1.0 / period;
    t.rate_min = t.initial_rate / 8.0;
    t.rate_max = t.initial_rate * 8.0;
    s.tasks.push_back(std::move(t));
  }
  s.validate();
  return s;
}

SystemSpec chain_cluster(const ChainClusterParams& params,
                         std::uint64_t seed) {
  EUCON_REQUIRE(params.num_processors > 0, "chain cluster needs processors");
  EUCON_REQUIRE(params.tasks_per_processor >= 1,
                "chain cluster needs at least one task per processor");
  EUCON_REQUIRE(params.chain_length >= 1, "chain length must be >= 1");
  EUCON_REQUIRE(params.chain_length <= params.num_processors,
                "chain longer than the processor ring");
  EUCON_REQUIRE(params.subtask_decay > 0.0 && params.subtask_decay <= 1.0,
                "subtask_decay must be in (0, 1]");
  Rng rng(seed);
  SystemSpec s;
  s.num_processors = params.num_processors;
  const int m = params.num_processors * params.tasks_per_processor;
  s.tasks.reserve(static_cast<std::size_t>(m));
  for (int t = 0; t < m; ++t) {
    TaskSpec task;
    task.name = "C" + std::to_string(t + 1);
    const int p0 = t % params.num_processors;
    task.subtasks.reserve(static_cast<std::size_t>(params.chain_length));
    double scale = 1.0;
    for (int k = 0; k < params.chain_length; ++k) {
      SubtaskSpec sub;
      sub.processor = (p0 + k) % params.num_processors;
      sub.estimated_exec = scale * rng.uniform(params.min_exec, params.max_exec);
      scale *= params.subtask_decay;
      task.subtasks.push_back(sub);
    }
    const double period = rng.uniform(params.min_period, params.max_period);
    task.initial_rate = 1.0 / period;
    task.rate_min = task.initial_rate / 8.0;
    task.rate_max = task.initial_rate * 8.0;
    s.tasks.push_back(std::move(task));
  }
  s.validate();
  return s;
}

}  // namespace eucon::workloads
