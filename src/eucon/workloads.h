// The paper's workloads plus a random task-set generator.
#pragma once

#include <cstdint>

#include "control/mpc.h"
#include "rts/spec.h"

namespace eucon::workloads {

// SIMPLE (paper Table 1): 3 tasks, 4 subtasks, 2 processors. T2 spans both
// processors; B1 = B2 = 2(2^{1/2}-1) ≈ 0.828.
rts::SystemSpec simple();

// SIMPLE with widened maximum rates (1/R_max = 10 instead of c_ij).
//
// With Table 1 as printed, the set point is infeasible for etf < 0.414
// (even at maximal rates u1 = 2·etf < 0.828), although §7.2 reports
// set-point tracking from etf = 0.2. This variant reproduces the paper's
// claimed range; see DESIGN.md / EXPERIMENTS.md.
rts::SystemSpec simple_relaxed();

// MEDIUM (paper §7.1): 12 tasks (8 end-to-end + 4 local), 25 subtasks, 4
// processors, subtask counts {7,6,6,6} so the Liu–Layland bounds are
// {0.729, 0.735, 0.735, 0.735} — matching the 0.729 set point the paper
// quotes for P1. The paper never publishes the parameter table; this is a
// concrete instance consistent with every published constraint (rate
// ranges wide enough that etf ∈ [0.1, 6] stays feasible).
rts::SystemSpec medium();

// LARGE (beyond the paper): 8 processors, 24 tasks (16 end-to-end + 8
// local), 56 subtasks — the "larger scale" regime the paper defers to
// future work; used by the scaling studies of centralized vs
// decentralized control. Deterministically generated, ring-structured
// chains, rate ranges wide enough for etf ∈ [0.2, 4].
rts::SystemSpec large();

// Controller parameters from Table 2.
control::MpcParams simple_controller_params();  // P=2, M=1, Tref/Ts=4
control::MpcParams medium_controller_params();  // P=4, M=2, Tref/Ts=4

struct RandomWorkloadParams {
  int num_processors = 4;
  int num_tasks = 8;
  int min_chain = 1;
  int max_chain = 4;
  double min_exec = 10.0;
  double max_exec = 50.0;
  // Initial periods drawn uniformly in [min_period, max_period]; rate
  // bounds span [initial/8, initial*8] clipped to sane values.
  double min_period = 100.0;
  double max_period = 800.0;
};

// Deterministic pseudo-random task set (for property tests and the solver
// scaling bench).
rts::SystemSpec random_workload(const RandomWorkloadParams& params,
                                std::uint64_t seed);

struct ChainClusterParams {
  int num_processors = 1024;
  // m = num_processors * tasks_per_processor tasks; task t starts on
  // processor t mod n, so ownership spreads evenly.
  int tasks_per_processor = 2;
  // Subtasks per task, placed on consecutive processors (p0, p0+1, …
  // mod n): the chain topology keeps coupling local, so contiguous
  // processor shards see few boundary tasks.
  int chain_length = 3;
  double min_exec = 10.0;
  double max_exec = 50.0;
  // Subtask k's execution time is scaled by decay^k: 1.0 (default) draws
  // every subtask from [min_exec, max_exec]; values < 1 make the home
  // processor's subtask dominate its successors, which keeps F
  // column-diagonally dominant (well-conditioned, so u = b pins the rates)
  // and the cross-shard coupling weak enough for decentralized/hierarchical
  // controllers to contract fast. Must be in (0, 1].
  double subtask_decay = 1.0;
  // Initial periods drawn uniformly in [min_period, max_period]; rate
  // bounds span [initial/8, initial*8] as in random_workload.
  double min_period = 100.0;
  double max_period = 800.0;
};

// Cluster-scale chain workload for the sparse/hierarchical control plane:
// deterministic given the seed, F has chain_length nonzeros per column
// (density chain_length/n), and every processor hosts exactly
// tasks_per_processor · chain_length subtasks. Scales to 10k processors;
// pair with make_sparse_plant_model — the dense F does not fit at that n.
rts::SystemSpec chain_cluster(const ChainClusterParams& params,
                              std::uint64_t seed);

}  // namespace eucon::workloads
