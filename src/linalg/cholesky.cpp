#include "linalg/cholesky.h"

#include <cmath>

#include "common/check.h"

namespace eucon::linalg {

Cholesky::Cholesky(const Matrix& a) : n_(a.rows()), l_(n_, n_) {
  EUCON_REQUIRE(a.rows() == a.cols(), "Cholesky requires a square matrix");
  EUCON_CHECK_FINITE_MAT("Cholesky::Cholesky input", a);
  for (std::size_t j = 0; j < n_ && spd_; ++j) {
    double d = a(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= l_(j, k) * l_(j, k);
    if (d <= 0.0 || !std::isfinite(d)) {
      spd_ = false;
      break;
    }
    l_(j, j) = std::sqrt(d);
    for (std::size_t i = j + 1; i < n_; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l_(i, k) * l_(j, k);
      l_(i, j) = s / l_(j, j);
    }
  }
}

Vector Cholesky::solve(const Vector& b) const {
  EUCON_REQUIRE(b.size() == n_, "Cholesky solve size mismatch");
  if (!spd_) EUCON_FAIL("Cholesky::solve: matrix not SPD");
  Vector y(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    double acc = b[i];
    for (std::size_t j = 0; j < i; ++j) acc -= l_(i, j) * y[j];
    y[i] = acc / l_(i, i);
  }
  Vector x(n_);
  for (std::size_t ii = n_; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t j = ii + 1; j < n_; ++j) acc -= l_(j, ii) * x[j];
    x[ii] = acc / l_(ii, ii);
  }
  EUCON_CHECK_FINITE_VEC("Cholesky::solve result", x);
  return x;
}

Matrix Cholesky::l() const { return l_; }

}  // namespace eucon::linalg
