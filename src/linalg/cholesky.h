// Cholesky (LL^T) factorization of symmetric positive-definite matrices.
#pragma once

#include <cstddef>

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace eucon::linalg {

class Cholesky {
 public:
  // Factors a symmetric matrix; only the lower triangle is read.
  explicit Cholesky(const Matrix& a);

  // True when the matrix was numerically positive definite.
  bool positive_definite() const { return spd_; }

  // Solves A x = b. Throws std::runtime_error when not SPD.
  Vector solve(const Vector& b) const;

  Matrix l() const;

 private:
  std::size_t n_;
  Matrix l_;
  bool spd_ = true;
};

}  // namespace eucon::linalg
