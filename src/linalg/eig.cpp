#include "linalg/eig.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace eucon::linalg {

Matrix hessenberg(const Matrix& a) {
  EUCON_REQUIRE(a.rows() == a.cols(), "hessenberg requires a square matrix");
  const std::size_t n = a.rows();
  Matrix h = a;
  if (n < 3) return h;

  std::vector<double> v(n);
  for (std::size_t k = 0; k + 2 < n; ++k) {
    // Householder vector zeroing h(k+2..n-1, k).
    double norm = 0.0;
    for (std::size_t i = k + 1; i < n; ++i) norm += h(i, k) * h(i, k);
    norm = std::sqrt(norm);
    if (norm == 0.0) continue;  // eucon-lint: allow(float-equality)
    const double alpha = h(k + 1, k) >= 0 ? -norm : norm;
    double vtv = 0.0;
    for (std::size_t i = k + 1; i < n; ++i) v[i] = h(i, k);
    v[k + 1] -= alpha;
    for (std::size_t i = k + 1; i < n; ++i) vtv += v[i] * v[i];
    if (vtv == 0.0) continue;  // eucon-lint: allow(float-equality)
    const double beta = 2.0 / vtv;

    // H := P H P with P = I - beta v v^T (v supported on rows k+1..n-1).
    // Left multiply: rows k+1..n-1 of all columns.
    for (std::size_t j = 0; j < n; ++j) {
      double dot = 0.0;
      for (std::size_t i = k + 1; i < n; ++i) dot += v[i] * h(i, j);
      const double s = beta * dot;
      for (std::size_t i = k + 1; i < n; ++i) h(i, j) -= s * v[i];
    }
    // Right multiply: columns k+1..n-1 of all rows.
    for (std::size_t i = 0; i < n; ++i) {
      double dot = 0.0;
      for (std::size_t j = k + 1; j < n; ++j) dot += h(i, j) * v[j];
      const double s = beta * dot;
      for (std::size_t j = k + 1; j < n; ++j) h(i, j) -= s * v[j];
    }
    // Clean the column we just zeroed (numerically exact zeros).
    h(k + 1, k) = alpha;
    for (std::size_t i = k + 2; i < n; ++i) h(i, k) = 0.0;
  }
  return h;
}

namespace {

inline double sign_of(double a, double b) { return b >= 0 ? std::abs(a) : -std::abs(a); }

// EISPACK-style HQR on an upper Hessenberg matrix. Uses 1-based indexing
// internally (working copy padded by one row/column) to match the classic
// formulation exactly.
void hqr_eigenvalues(const Matrix& hess, std::vector<double>& wr,
                     std::vector<double>& wi) {
  const int n = eucon::narrow<int>(hess.rows());
  wr.assign(n + 1, 0.0);
  wi.assign(n + 1, 0.0);

  // 1-based working copy.
  std::vector<std::vector<double>> a(n + 1, std::vector<double>(n + 1, 0.0));
  for (int i = 1; i <= n; ++i)
    for (int j = 1; j <= n; ++j)
      a[i][j] = hess(static_cast<std::size_t>(i - 1), static_cast<std::size_t>(j - 1));

  double anorm = 0.0;
  for (int i = 1; i <= n; ++i)
    for (int j = std::max(i - 1, 1); j <= n; ++j) anorm += std::abs(a[i][j]);
  if (anorm == 0.0) return;  // zero matrix: all eigenvalues zero  eucon-lint: allow(float-equality)

  int nn = n;
  double t = 0.0;
  while (nn >= 1) {
    int its = 0;
    int l;
    do {
      for (l = nn; l >= 2; --l) {
        double s = std::abs(a[l - 1][l - 1]) + std::abs(a[l][l]);
        if (s == 0.0) s = anorm;  // eucon-lint: allow(float-equality)
        if (std::abs(a[l][l - 1]) + s == s) {
          a[l][l - 1] = 0.0;
          break;
        }
      }
      double x = a[nn][nn];
      if (l == nn) {  // one real eigenvalue found
        wr[nn] = x + t;
        wi[nn] = 0.0;
        --nn;
      } else {
        double y = a[nn - 1][nn - 1];
        double w = a[nn][nn - 1] * a[nn - 1][nn];
        if (l == nn - 1) {  // a 2x2 block resolves into two eigenvalues
          double p = 0.5 * (y - x);
          double q = p * p + w;
          double z = std::sqrt(std::abs(q));
          x += t;
          if (q >= 0.0) {  // real pair
            z = p + sign_of(z, p);
            wr[nn - 1] = wr[nn] = x + z;
            if (z != 0.0) wr[nn] = x - w / z;  // eucon-lint: allow(float-equality)
            wi[nn - 1] = wi[nn] = 0.0;
          } else {  // complex conjugate pair
            wr[nn - 1] = wr[nn] = x + p;
            wi[nn - 1] = -(wi[nn] = z);
          }
          nn -= 2;
        } else {  // no root yet: do a double QR sweep
          if (its == 60)
            EUCON_FAIL("eigenvalues: QR iteration did not converge");
          if (its == 10 || its == 20 || its == 30 || its == 40 || its == 50) {
            // Exceptional shift to break (rare) cycling.
            t += x;
            for (int i = 1; i <= nn; ++i) a[i][i] -= x;
            const double s = std::abs(a[nn][nn - 1]) + std::abs(a[nn - 1][nn - 2]);
            y = x = 0.75 * s;
            w = -0.4375 * s * s;
          }
          ++its;
          int m;
          double p = 0.0, q = 0.0, r = 0.0, z = 0.0;
          for (m = nn - 2; m >= l; --m) {
            z = a[m][m];
            const double rr = x - z;
            const double ss = y - z;
            p = (rr * ss - w) / a[m + 1][m] + a[m][m + 1];
            q = a[m + 1][m + 1] - z - rr - ss;
            r = a[m + 2][m + 1];
            const double scale = std::abs(p) + std::abs(q) + std::abs(r);
            if (scale != 0.0) {  // p = q = r = 0 would make 0/0 poison the shift  eucon-lint: allow(float-equality)
              p /= scale;
              q /= scale;
              r /= scale;
            }
            if (m == l) break;
            const double u = std::abs(a[m][m - 1]) * (std::abs(q) + std::abs(r));
            const double v =
                std::abs(p) * (std::abs(a[m - 1][m - 1]) + std::abs(z) +
                               std::abs(a[m + 1][m + 1]));
            if (u + v == v) break;
          }
          for (int i = m + 2; i <= nn; ++i) {
            a[i][i - 2] = 0.0;
            if (i != m + 2) a[i][i - 3] = 0.0;
          }
          for (int k = m; k <= nn - 1; ++k) {
            if (k != m) {
              p = a[k][k - 1];
              q = a[k + 1][k - 1];
              r = 0.0;
              if (k != nn - 1) r = a[k + 2][k - 1];
              x = std::abs(p) + std::abs(q) + std::abs(r);
              if (x != 0.0) {  // eucon-lint: allow(float-equality)
                p /= x;
                q /= x;
                r /= x;
              }
            }
            const double s = sign_of(std::sqrt(p * p + q * q + r * r), p);
            if (s == 0.0) continue;  // eucon-lint: allow(float-equality)
            if (k == m) {
              if (l != m) a[k][k - 1] = -a[k][k - 1];
            } else {
              a[k][k - 1] = -s * x;
            }
            p += s;
            x = p / s;
            y = q / s;
            z = r / s;
            q /= p;
            r /= p;
            for (int j = k; j <= nn; ++j) {  // row modification
              double pp = a[k][j] + q * a[k + 1][j];
              if (k != nn - 1) {
                pp += r * a[k + 2][j];
                a[k + 2][j] -= pp * z;
              }
              a[k + 1][j] -= pp * y;
              a[k][j] -= pp * x;
            }
            const int mmin = nn < k + 3 ? nn : k + 3;
            for (int i = l; i <= mmin; ++i) {  // column modification
              double pp = x * a[i][k] + y * a[i][k + 1];
              if (k != nn - 1) {
                pp += z * a[i][k + 2];
                a[i][k + 2] -= pp * r;
              }
              a[i][k + 1] -= pp * q;
              a[i][k] -= pp;
            }
          }
        }
      }
    } while (l < nn - 1 && nn >= 1);
  }
}

}  // namespace

std::vector<std::complex<double>> eigenvalues(const Matrix& a) {
  EUCON_REQUIRE(a.rows() == a.cols(), "eigenvalues requires a square matrix");
  EUCON_CHECK_FINITE_MAT("eigenvalues input", a);
  const std::size_t n = a.rows();
  std::vector<std::complex<double>> out;
  if (n == 0) return out;
  if (n == 1) return {std::complex<double>(a(0, 0), 0.0)};

  const Matrix h = hessenberg(a);
  std::vector<double> wr, wi;
  hqr_eigenvalues(h, wr, wi);
  EUCON_CHECK_FINITE_RANGE("eigenvalues result (real parts)", wr.data(), wr.size(), 1);
  EUCON_CHECK_FINITE_RANGE("eigenvalues result (imaginary parts)", wi.data(), wi.size(), 1);
  out.reserve(n);
  for (std::size_t i = 1; i <= n; ++i) out.emplace_back(wr[i], wi[i]);
  return out;
}

double spectral_radius(const Matrix& a) {
  double rho = 0.0;
  for (const auto& ev : eigenvalues(a)) rho = std::max(rho, std::abs(ev));
  return rho;
}

}  // namespace eucon::linalg
