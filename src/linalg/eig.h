// Eigenvalues of general real square matrices.
//
// Pipeline: Householder reduction to upper Hessenberg form, then the
// Francis implicit double-shift QR iteration (the classic EISPACK HQR
// algorithm). Only eigenvalues are computed — exactly what the EUCON
// stability analysis needs (spectral radius of the closed-loop matrix).
#pragma once

#include <complex>
#include <vector>

#include "linalg/matrix.h"

namespace eucon::linalg {

// Reduces `a` to upper Hessenberg form via Householder similarity
// transforms (same eigenvalues as `a`).
Matrix hessenberg(const Matrix& a);

// All eigenvalues of a general real square matrix. Complex eigenvalues
// appear in conjugate pairs. Throws std::runtime_error if the QR iteration
// fails to converge (pathological inputs; does not occur for the matrices
// arising in this library).
std::vector<std::complex<double>> eigenvalues(const Matrix& a);

// max_i |lambda_i|.
double spectral_radius(const Matrix& a);

}  // namespace eucon::linalg
