#include "linalg/lu.h"

#include <cmath>

#include "common/check.h"

namespace eucon::linalg {

namespace {
// Relative threshold below which a pivot is treated as zero.
constexpr double kPivotTol = 1e-13;

// Shared elimination core: factors `lu` in place, writes the permutation
// into piv[0..n), flips *sign per row swap when non-null. Returns false when
// a pivot is (numerically) zero — the loop still completes so determinant()
// stays meaningful, but solves must be refused.
bool lu_factor(Matrix& lu, std::size_t* piv, int* sign) {
  const std::size_t n = lu.rows();
  for (std::size_t i = 0; i < n; ++i) piv[i] = i;

  double scale = lu.norm_inf();
  if (scale == 0.0) scale = 1.0;  // eucon-lint: allow(float-equality)

  bool invertible = true;
  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: largest magnitude in column k at/below the diagonal.
    std::size_t pivot_row = k;
    double pivot_mag = std::abs(lu(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double mag = std::abs(lu(r, k));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = r;
      }
    }
    if (pivot_mag <= kPivotTol * scale) {
      invertible = false;
      continue;  // leave the (near-)zero pivot; solves will refuse
    }
    if (pivot_row != k) {
      double* rk = lu.row_ptr(k);
      double* rp = lu.row_ptr(pivot_row);
      for (std::size_t c = 0; c < n; ++c) std::swap(rk[c], rp[c]);
      std::swap(piv[k], piv[pivot_row]);
      if (sign != nullptr) *sign = -*sign;
    }
    const double inv_pivot = 1.0 / lu(k, k);
    const double* rk = lu.row_ptr(k);
    for (std::size_t r = k + 1; r < n; ++r) {
      double* rr = lu.row_ptr(r);
      const double m = rr[k] * inv_pivot;
      rr[k] = m;
      if (m == 0.0) continue;  // eucon-lint: allow(float-equality)
      for (std::size_t c = k + 1; c < n; ++c) rr[c] -= m * rk[c];
    }
  }
  return invertible;
}

}  // namespace

Lu::Lu(const Matrix& a) : n_(a.rows()), lu_(a), piv_(n_) {
  EUCON_REQUIRE(a.rows() == a.cols(), "LU requires a square matrix");
  EUCON_CHECK_FINITE_MAT("Lu::Lu input", a);
  invertible_ = lu_factor(lu_, piv_.data(), &sign_);
}

bool Lu::factor_into(Matrix& a, std::vector<std::size_t>& piv) {
  EUCON_REQUIRE(a.rows() == a.cols(), "LU requires a square matrix");
  EUCON_REQUIRE(piv.size() >= a.rows(), "factor_into pivot buffer too small");
  EUCON_CHECK_FINITE_MAT("Lu::factor_into input", a);
  return lu_factor(a, piv.data(), nullptr);
}

void Lu::solve_into(const Matrix& lu, const std::vector<std::size_t>& piv,
                    const Vector& b, Vector& x) {
  const std::size_t n = lu.rows();
  EUCON_REQUIRE(lu.cols() == n && b.size() == n && piv.size() >= n,
                "LU solve_into size mismatch");
  // Steady-state no-op: callers reuse `x` across solves.
  x.data().resize(n);  // eucon-lint: allow(allocation-in-realtime)
  // Forward substitution with permuted rhs (L has unit diagonal).
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = lu.row_ptr(i);
    double acc = b[piv[i]];
    for (std::size_t j = 0; j < i; ++j) acc -= row[j] * x[j];
    x[i] = acc;
  }
  // Back substitution.
  for (std::size_t ii = n; ii-- > 0;) {
    const double* row = lu.row_ptr(ii);
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= row[j] * x[j];
    x[ii] = acc / row[ii];
  }
  EUCON_CHECK_FINITE_VEC("Lu::solve_into result", x);
}

double Lu::determinant() const {
  double det = sign_;
  for (std::size_t i = 0; i < n_; ++i) det *= lu_(i, i);
  return det;
}

Vector Lu::solve(const Vector& b) const {
  EUCON_REQUIRE(b.size() == n_, "LU solve size mismatch");
  if (!invertible_) EUCON_FAIL("Lu::solve: singular matrix");
  Vector x(n_);
  solve_into(lu_, piv_, b, x);
  return x;
}

Matrix Lu::solve(const Matrix& b) const {
  EUCON_REQUIRE(b.rows() == n_, "LU solve size mismatch");
  Matrix x(n_, b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c) x.set_col(c, solve(b.col(c)));
  return x;
}

Matrix Lu::inverse() const { return solve(Matrix::identity(n_)); }

Vector solve(const Matrix& a, const Vector& b) { return Lu(a).solve(b); }
Matrix inverse(const Matrix& a) { return Lu(a).inverse(); }

std::size_t rank(const Matrix& a, double tol) {
  Matrix m = a;
  const std::size_t rows = m.rows(), cols = m.cols();
  double scale = 0.0;
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      scale = std::max(scale, std::abs(m(r, c)));
  if (scale == 0.0) return 0;  // eucon-lint: allow(float-equality)
  const double threshold = tol * scale;

  std::size_t rank_count = 0;
  std::size_t pivot_row = 0;
  for (std::size_t col = 0; col < cols && pivot_row < rows; ++col) {
    // Largest magnitude in this column at/below pivot_row.
    std::size_t best = pivot_row;
    for (std::size_t r = pivot_row + 1; r < rows; ++r)
      if (std::abs(m(r, col)) > std::abs(m(best, col))) best = r;
    if (std::abs(m(best, col)) <= threshold) continue;
    if (best != pivot_row)
      for (std::size_t c = col; c < cols; ++c)
        std::swap(m(pivot_row, c), m(best, c));
    const double inv = 1.0 / m(pivot_row, col);
    for (std::size_t r = pivot_row + 1; r < rows; ++r) {
      const double factor = m(r, col) * inv;
      if (factor == 0.0) continue;  // eucon-lint: allow(float-equality)
      for (std::size_t c = col; c < cols; ++c)
        m(r, c) -= factor * m(pivot_row, c);
    }
    ++pivot_row;
    ++rank_count;
  }
  return rank_count;
}

}  // namespace eucon::linalg
