#include "linalg/lu.h"

#include <cmath>

#include "common/check.h"

namespace eucon::linalg {

namespace {
// Relative threshold below which a pivot is treated as zero.
constexpr double kPivotTol = 1e-13;
}  // namespace

Lu::Lu(const Matrix& a) : n_(a.rows()), lu_(a), piv_(n_) {
  EUCON_REQUIRE(a.rows() == a.cols(), "LU requires a square matrix");
  EUCON_CHECK_FINITE_MAT("Lu::Lu input", a);
  for (std::size_t i = 0; i < n_; ++i) piv_[i] = i;

  double scale = lu_.norm_inf();
  if (scale == 0.0) scale = 1.0;  // eucon-lint: allow(float-equality)

  for (std::size_t k = 0; k < n_; ++k) {
    // Partial pivoting: largest magnitude in column k at/below the diagonal.
    std::size_t pivot_row = k;
    double pivot_mag = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n_; ++r) {
      const double mag = std::abs(lu_(r, k));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = r;
      }
    }
    if (pivot_mag <= kPivotTol * scale) {
      invertible_ = false;
      continue;  // leave the (near-)zero pivot; solve() will refuse
    }
    if (pivot_row != k) {
      for (std::size_t c = 0; c < n_; ++c)
        std::swap(lu_(k, c), lu_(pivot_row, c));
      std::swap(piv_[k], piv_[pivot_row]);
      sign_ = -sign_;
    }
    const double inv_pivot = 1.0 / lu_(k, k);
    for (std::size_t r = k + 1; r < n_; ++r) {
      const double m = lu_(r, k) * inv_pivot;
      lu_(r, k) = m;
      if (m == 0.0) continue;  // eucon-lint: allow(float-equality)
      for (std::size_t c = k + 1; c < n_; ++c) lu_(r, c) -= m * lu_(k, c);
    }
  }
}

double Lu::determinant() const {
  double det = sign_;
  for (std::size_t i = 0; i < n_; ++i) det *= lu_(i, i);
  return det;
}

Vector Lu::solve(const Vector& b) const {
  EUCON_REQUIRE(b.size() == n_, "LU solve size mismatch");
  if (!invertible_) EUCON_FAIL("Lu::solve: singular matrix");
  Vector x(n_);
  // Forward substitution with permuted rhs (L has unit diagonal).
  for (std::size_t i = 0; i < n_; ++i) {
    double acc = b[piv_[i]];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc;
  }
  // Back substitution.
  for (std::size_t ii = n_; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n_; ++j) acc -= lu_(ii, j) * x[j];
    x[ii] = acc / lu_(ii, ii);
  }
  EUCON_CHECK_FINITE_VEC("Lu::solve result", x);
  return x;
}

Matrix Lu::solve(const Matrix& b) const {
  EUCON_REQUIRE(b.rows() == n_, "LU solve size mismatch");
  Matrix x(n_, b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c) x.set_col(c, solve(b.col(c)));
  return x;
}

Matrix Lu::inverse() const { return solve(Matrix::identity(n_)); }

Vector solve(const Matrix& a, const Vector& b) { return Lu(a).solve(b); }
Matrix inverse(const Matrix& a) { return Lu(a).inverse(); }

std::size_t rank(const Matrix& a, double tol) {
  Matrix m = a;
  const std::size_t rows = m.rows(), cols = m.cols();
  double scale = 0.0;
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      scale = std::max(scale, std::abs(m(r, c)));
  if (scale == 0.0) return 0;  // eucon-lint: allow(float-equality)
  const double threshold = tol * scale;

  std::size_t rank_count = 0;
  std::size_t pivot_row = 0;
  for (std::size_t col = 0; col < cols && pivot_row < rows; ++col) {
    // Largest magnitude in this column at/below pivot_row.
    std::size_t best = pivot_row;
    for (std::size_t r = pivot_row + 1; r < rows; ++r)
      if (std::abs(m(r, col)) > std::abs(m(best, col))) best = r;
    if (std::abs(m(best, col)) <= threshold) continue;
    if (best != pivot_row)
      for (std::size_t c = col; c < cols; ++c)
        std::swap(m(pivot_row, c), m(best, c));
    const double inv = 1.0 / m(pivot_row, col);
    for (std::size_t r = pivot_row + 1; r < rows; ++r) {
      const double factor = m(r, col) * inv;
      if (factor == 0.0) continue;  // eucon-lint: allow(float-equality)
      for (std::size_t c = col; c < cols; ++c)
        m(r, c) -= factor * m(pivot_row, c);
    }
    ++pivot_row;
    ++rank_count;
  }
  return rank_count;
}

}  // namespace eucon::linalg
