// LU factorization with partial pivoting, for square systems (including the
// symmetric-indefinite KKT systems of the QP solver).
#pragma once

#include <cstddef>
#include <vector>

#include "common/annotations.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace eucon::linalg {

class Lu {
 public:
  // Factors a square matrix. Throws std::invalid_argument if not square.
  explicit Lu(const Matrix& a);

  // True when no pivot was (numerically) zero.
  bool invertible() const { return invertible_; }
  double determinant() const;

  // Solves A x = b. Throws std::runtime_error if the matrix is singular.
  Vector solve(const Vector& b) const;
  Matrix solve(const Matrix& b) const;

  Matrix inverse() const;

  // In-place variants for preallocated hot paths (the QP KKT solves).
  //
  // factor_into overwrites `a` with the packed L (unit diagonal) / U factors
  // and records the row permutation in the first a.rows() entries of `piv`
  // (which the caller must have sized at least that large). Returns false
  // when a pivot is (numerically) zero; the factors are then unusable for
  // solve_into. Performs no heap allocation.
  static bool factor_into(Matrix& a, std::vector<std::size_t>& piv)
      EUCON_REALTIME;

  // Solves (LU) x = b from factor_into's output (which must have returned
  // true). `x` is resized in place — a steady-state no-op when the caller
  // reuses it — and must not alias `b`.
  static void solve_into(const Matrix& lu, const std::vector<std::size_t>& piv,
                         const Vector& b, Vector& x) EUCON_REALTIME;

 private:
  std::size_t n_;
  Matrix lu_;                     // packed L (unit diagonal) and U
  std::vector<std::size_t> piv_;  // row permutation
  int sign_ = 1;
  bool invertible_ = true;
};

// One-shot helpers.
Vector solve(const Matrix& a, const Vector& b);
Matrix inverse(const Matrix& a);

// Numerical rank by Gaussian elimination with partial pivoting on any
// (rectangular) matrix; `tol` is relative to the largest entry.
std::size_t rank(const Matrix& a, double tol = 1e-10);

}  // namespace eucon::linalg
