// LU factorization with partial pivoting, for square systems (including the
// symmetric-indefinite KKT systems of the QP solver).
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace eucon::linalg {

class Lu {
 public:
  // Factors a square matrix. Throws std::invalid_argument if not square.
  explicit Lu(const Matrix& a);

  // True when no pivot was (numerically) zero.
  bool invertible() const { return invertible_; }
  double determinant() const;

  // Solves A x = b. Throws std::runtime_error if the matrix is singular.
  Vector solve(const Vector& b) const;
  Matrix solve(const Matrix& b) const;

  Matrix inverse() const;

 private:
  std::size_t n_;
  Matrix lu_;                     // packed L (unit diagonal) and U
  std::vector<std::size_t> piv_;  // row permutation
  int sign_ = 1;
  bool invertible_ = true;
};

// One-shot helpers.
Vector solve(const Matrix& a, const Vector& b);
Matrix inverse(const Matrix& a);

// Numerical rank by Gaussian elimination with partial pivoting on any
// (rectangular) matrix; `tol` is relative to the largest entry.
std::size_t rank(const Matrix& a, double tol = 1e-10);

}  // namespace eucon::linalg
