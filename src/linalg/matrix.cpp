#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace eucon::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    EUCON_REQUIRE(r.size() == cols_, "ragged initializer for Matrix");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diagonal(const Vector& d) {
  Matrix m(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  EUCON_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  EUCON_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
  return (*this)(r, c);
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  EUCON_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_, "matrix size mismatch in +=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  EUCON_CHECK_FINITE_MAT("Matrix::operator+=", *this);
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  EUCON_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_, "matrix size mismatch in -=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  EUCON_CHECK_FINITE_MAT("Matrix::operator-=", *this);
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& x : data_) x *= s;
  EUCON_CHECK_FINITE_MAT("Matrix::operator*=", *this);
  return *this;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Vector Matrix::row(std::size_t r) const {
  EUCON_REQUIRE(r < rows_, "row index out of range");
  Vector v(cols_);
  for (std::size_t c = 0; c < cols_; ++c) v[c] = (*this)(r, c);
  return v;
}

Vector Matrix::col(std::size_t c) const {
  EUCON_REQUIRE(c < cols_, "col index out of range");
  Vector v(rows_);
  for (std::size_t r = 0; r < rows_; ++r) v[r] = (*this)(r, c);
  return v;
}

void Matrix::set_row(std::size_t r, const Vector& v) {
  EUCON_REQUIRE(r < rows_ && v.size() == cols_, "bad set_row");
  for (std::size_t c = 0; c < cols_; ++c) (*this)(r, c) = v[c];
}

void Matrix::set_col(std::size_t c, const Vector& v) {
  EUCON_REQUIRE(c < cols_ && v.size() == rows_, "bad set_col");
  for (std::size_t r = 0; r < rows_; ++r) (*this)(r, c) = v[r];
}

void Matrix::set_block(std::size_t r0, std::size_t c0, const Matrix& b) {
  EUCON_REQUIRE(r0 + b.rows() <= rows_ && c0 + b.cols() <= cols_,
                "set_block out of range");
  // Both operands are row-major, so each block row is one contiguous copy.
  for (std::size_t r = 0; r < b.rows(); ++r) {
    const double* src = b.row_ptr(r);
    std::copy(src, src + b.cols(), row_ptr(r0 + r) + c0);
  }
}

void Matrix::reshape(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  // Steady-state no-op: scratch callers preallocate the maximum shape once.
  data_.resize(rows * cols);  // eucon-lint: allow(allocation-in-realtime)
}

void Matrix::fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

Matrix Matrix::block(std::size_t r0, std::size_t c0, std::size_t nrows,
                     std::size_t ncols) const {
  EUCON_REQUIRE(r0 + nrows <= rows_ && c0 + ncols <= cols_, "block out of range");
  Matrix b(nrows, ncols);
  for (std::size_t r = 0; r < nrows; ++r)
    for (std::size_t c = 0; c < ncols; ++c) b(r, c) = (*this)(r0 + r, c0 + c);
  return b;
}

double Matrix::norm_inf() const {
  double m = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) s += std::abs((*this)(r, c));
    m = std::max(m, s);
  }
  return m;
}

double Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (double x : data_) acc += x * x;
  return std::sqrt(acc);
}

std::string Matrix::to_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t r = 0; r < rows_; ++r) {
    if (r) os << "; ";
    for (std::size_t c = 0; c < cols_; ++c) {
      if (c) os << ' ';
      os << (*this)(r, c);
    }
  }
  os << ']';
  return os.str();
}

Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
Matrix operator*(double s, Matrix m) { return m *= s; }

Matrix operator*(const Matrix& a, const Matrix& b) {
  EUCON_REQUIRE(a.cols() == b.rows(), "matrix product size mismatch");
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;  // eucon-lint: allow(float-equality)
      for (std::size_t j = 0; j < b.cols(); ++j) c(i, j) += aik * b(k, j);
    }
  }
  EUCON_CHECK_FINITE_MAT("Matrix::operator*(Matrix, Matrix)", c);
  return c;
}

Vector operator*(const Matrix& a, const Vector& x) {
  EUCON_REQUIRE(a.cols() == x.size(), "matrix-vector size mismatch");
  Vector y(a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) acc += a(i, j) * x[j];
    y[i] = acc;
  }
  EUCON_CHECK_FINITE_VEC("Matrix::operator*(Matrix, Vector)", y);
  return y;
}

Vector transpose_times(const Matrix& a, const Vector& x) {
  EUCON_REQUIRE(a.rows() == x.size(), "transpose_times size mismatch");
  Vector y(a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;  // eucon-lint: allow(float-equality)
    for (std::size_t j = 0; j < a.cols(); ++j) y[j] += a(i, j) * xi;
  }
  EUCON_CHECK_FINITE_VEC("transpose_times", y);
  return y;
}

Matrix gram(const Matrix& a) {
  Matrix g(a.cols(), a.cols());
  for (std::size_t i = 0; i < a.cols(); ++i) {
    for (std::size_t j = i; j < a.cols(); ++j) {
      double acc = 0.0;
      for (std::size_t r = 0; r < a.rows(); ++r) acc += a(r, i) * a(r, j);
      g(i, j) = acc;
      g(j, i) = acc;
    }
  }
  EUCON_CHECK_FINITE_MAT("gram", g);
  return g;
}

void multiply_into(const Matrix& a, const Vector& x, Vector& out) {
  EUCON_REQUIRE(a.cols() == x.size(), "matrix-vector size mismatch");
  // Steady-state no-op: callers reuse `out` across periods.
  out.data().resize(a.rows());  // eucon-lint: allow(allocation-in-realtime)
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) acc += a(i, j) * x[j];
    out[i] = acc;
  }
  EUCON_CHECK_FINITE_VEC("multiply_into", out);
}

void transpose_times_into(const Matrix& a, const Vector& x, Vector& out) {
  EUCON_REQUIRE(a.rows() == x.size(), "transpose_times size mismatch");
  // Steady-state no-op reallocation-wise: assign only zero-fills in place
  // once `out` holds a.cols() elements.
  out.data().assign(a.cols(), 0.0);  // eucon-lint: allow(allocation-in-realtime)
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;  // eucon-lint: allow(float-equality)
    for (std::size_t j = 0; j < a.cols(); ++j) out[j] += a(i, j) * xi;
  }
  EUCON_CHECK_FINITE_VEC("transpose_times_into", out);
}

void gram_into(const Matrix& a, Matrix& out) {
  // Reshape only when the geometry changed (model rebuild, not per period).
  if (out.rows() != a.cols() || out.cols() != a.cols())
    out = Matrix(a.cols(), a.cols());  // eucon-lint: allow(allocation-in-realtime)
  for (std::size_t i = 0; i < a.cols(); ++i) {
    for (std::size_t j = i; j < a.cols(); ++j) {
      double acc = 0.0;
      for (std::size_t r = 0; r < a.rows(); ++r) acc += a(r, i) * a(r, j);
      out(i, j) = acc;
      out(j, i) = acc;
    }
  }
  EUCON_CHECK_FINITE_MAT("gram_into", out);
}

double row_dot(const Matrix& a, std::size_t r, const Vector& x) {
  EUCON_REQUIRE(r < a.rows() && a.cols() == x.size(), "row_dot size mismatch");
  const double* row = a.row_ptr(r);
  const double* xd = x.data().data();
  double acc = 0.0;
  for (std::size_t j = 0; j < a.cols(); ++j) acc += row[j] * xd[j];
  EUCON_CHECK_FINITE_SCALAR("row_dot", acc);
  return acc;
}

bool approx_equal(const Matrix& a, const Matrix& b, double tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c)
      if (std::abs(a(r, c) - b(r, c)) > tol) return false;
  return true;
}

Matrix vstack(const Matrix& a, const Matrix& b) {
  if (a.empty() && a.rows() == 0) {
    if (a.cols() == 0) return b;
  }
  if (b.rows() == 0) return a;
  if (a.rows() == 0) return b;
  EUCON_REQUIRE(a.cols() == b.cols(), "vstack column mismatch");
  Matrix out(a.rows() + b.rows(), a.cols());
  out.set_block(0, 0, a);
  out.set_block(a.rows(), 0, b);
  return out;
}

Matrix hstack(const Matrix& a, const Matrix& b) {
  if (b.cols() == 0) return a;
  if (a.cols() == 0) return b;
  EUCON_REQUIRE(a.rows() == b.rows(), "hstack row mismatch");
  Matrix out(a.rows(), a.cols() + b.cols());
  out.set_block(0, 0, a);
  out.set_block(0, a.cols(), b);
  return out;
}

}  // namespace eucon::linalg
