// Dense real matrix, row-major.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "linalg/vector.h"

namespace eucon::linalg {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}
  // Construction from nested initializer lists; all rows must have the
  // same length. Hatched for the realtime lint: constructing a Matrix IS
  // an allocation, and the use-site rule already flags every `Matrix(...)`
  // on an EUCON_REALTIME path — reporting the ctor's internals as well
  // would double-count the same event.
  Matrix(std::initializer_list<std::initializer_list<double>> rows)
      EUCON_ALLOC_OK("use-site rule owns Matrix-construction findings");

  static Matrix identity(std::size_t n);
  static Matrix diagonal(const Vector& d);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }
  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  // Row-major backing store (rows*cols entries).
  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  // Raw pointer to the start of row r (rows are contiguous).
  double* row_ptr(std::size_t r) { return data_.data() + r * cols_; }
  const double* row_ptr(std::size_t r) const { return data_.data() + r * cols_; }

  // Re-dimensions the matrix in place; contents become unspecified. Scratch
  // buffers constructed once at their maximum shape can be reshaped per use
  // without touching the heap (shrinking never releases capacity).
  void reshape(std::size_t rows, std::size_t cols) EUCON_REALTIME;
  // Sets every entry to `value`.
  void fill(double value) EUCON_REALTIME;

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s);

  Matrix transposed() const;

  Vector row(std::size_t r) const;
  Vector col(std::size_t c) const;
  void set_row(std::size_t r, const Vector& v);
  void set_col(std::size_t c, const Vector& v);

  // Copies `block` into this matrix with its top-left corner at (r0, c0).
  void set_block(std::size_t r0, std::size_t c0, const Matrix& block);
  Matrix block(std::size_t r0, std::size_t c0, std::size_t nrows,
               std::size_t ncols) const;

  double norm_inf() const;        // max row sum of |entries|
  double frobenius_norm() const;

  std::string to_string() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

Matrix operator+(Matrix lhs, const Matrix& rhs);
Matrix operator-(Matrix lhs, const Matrix& rhs);
Matrix operator*(double s, Matrix m);
Matrix operator*(const Matrix& a, const Matrix& b);
Vector operator*(const Matrix& a, const Vector& x);

// y = A^T x without forming the transpose.
Vector transpose_times(const Matrix& a, const Vector& x);
// A^T A (symmetric; computed directly).
Matrix gram(const Matrix& a);

// Scratch-buffer variants for per-period hot paths (MPC controller / QP):
// `out` is resized once and reused, so steady-state calls never touch the
// heap. Aliasing `out` with an input is not allowed.
void multiply_into(const Matrix& a, const Vector& x, Vector& out) EUCON_REALTIME;
void transpose_times_into(const Matrix& a, const Vector& x,
                          Vector& out) EUCON_REALTIME;
void gram_into(const Matrix& a, Matrix& out) EUCON_REALTIME;

// Dot product of row r of `a` with `x` as one contiguous kernel — the shared
// inner loop of constraint-violation checks and working-set admission.
double row_dot(const Matrix& a, std::size_t r, const Vector& x) EUCON_REALTIME;

bool approx_equal(const Matrix& a, const Matrix& b, double tol);

// Vertical stack: rows of `a` above rows of `b` (column counts must match;
// an empty matrix acts as the identity of stacking).
Matrix vstack(const Matrix& a, const Matrix& b);
Matrix hstack(const Matrix& a, const Matrix& b);

}  // namespace eucon::linalg
