#include "linalg/qr.h"

#include <cmath>

#include "common/check.h"

namespace eucon::linalg {

namespace {
constexpr double kRankTol = 1e-12;
}

Qr::Qr(const Matrix& a)
    : m_(a.rows()), n_(a.cols()), qr_(a), beta_(n_, 0.0), vk_head_(n_, 0.0) {
  EUCON_REQUIRE(m_ >= n_, "QR requires rows >= cols");
  EUCON_CHECK_FINITE_MAT("Qr::Qr input", a);
  double scale = qr_.frobenius_norm();
  if (scale == 0.0) scale = 1.0;  // eucon-lint: allow(float-equality)

  for (std::size_t k = 0; k < n_; ++k) {
    // Householder reflection zeroing column k below the diagonal.
    double norm = 0.0;
    for (std::size_t i = k; i < m_; ++i) norm += qr_(i, k) * qr_(i, k);
    norm = std::sqrt(norm);
    if (norm <= kRankTol * scale) {
      full_rank_ = false;
      continue;
    }
    const double alpha = qr_(k, k) >= 0 ? -norm : norm;
    const double vkk = qr_(k, k) - alpha;  // v = x - alpha*e1
    qr_(k, k) = alpha;                     // R(k,k)
    double vtv = vkk * vkk;
    for (std::size_t i = k + 1; i < m_; ++i) vtv += qr_(i, k) * qr_(i, k);
    if (vtv == 0.0) continue;  // eucon-lint: allow(float-equality)
    beta_[k] = 2.0 / vtv;
    vk_head_[k] = vkk;

    // Apply H = I - beta v v^T to the trailing columns. The tail of v stays
    // stored below the diagonal of column k.
    for (std::size_t j = k + 1; j < n_; ++j) {
      double dot = vkk * qr_(k, j);
      for (std::size_t i = k + 1; i < m_; ++i) dot += qr_(i, k) * qr_(i, j);
      const double s = beta_[k] * dot;
      qr_(k, j) -= s * vkk;
      for (std::size_t i = k + 1; i < m_; ++i) qr_(i, j) -= s * qr_(i, k);
    }
  }
}

Vector Qr::qt_times(const Vector& b) const {
  Vector y;
  qt_times_into(b, y);
  return y;
}

void Qr::qt_times_into(const Vector& b, Vector& y) const {
  EUCON_REQUIRE(b.size() == m_, "qt_times size mismatch");
  // Steady-state no-op: the caller reuses y across solves of one geometry.
  y.data().resize(m_);  // eucon-lint: allow(allocation-in-realtime)
  for (std::size_t i = 0; i < m_; ++i) y[i] = b[i];
  for (std::size_t k = 0; k < n_; ++k) {
    if (beta_[k] == 0.0) continue;  // eucon-lint: allow(float-equality)
    const double vkk = vk_head_[k];
    double dot = vkk * y[k];
    for (std::size_t i = k + 1; i < m_; ++i) dot += qr_(i, k) * y[i];
    const double s = beta_[k] * dot;
    y[k] -= s * vkk;
    for (std::size_t i = k + 1; i < m_; ++i) y[i] -= s * qr_(i, k);
  }
}

Matrix Qr::r() const {
  Matrix r(n_, n_);
  for (std::size_t i = 0; i < n_; ++i)
    for (std::size_t j = i; j < n_; ++j) r(i, j) = qr_(i, j);
  return r;
}

Vector Qr::solve_least_squares(const Vector& b) const {
  Vector y, x;
  solve_least_squares_into(b, y, x);
  return x;
}

void Qr::solve_least_squares_into(const Vector& b, Vector& y, Vector& x) const {
  if (!full_rank_)
    EUCON_FAIL("Qr::solve_least_squares: rank-deficient matrix");
  qt_times_into(b, y);
  // Steady-state no-op: the caller reuses x across solves of one geometry.
  x.data().resize(n_);  // eucon-lint: allow(allocation-in-realtime)
  for (std::size_t ii = n_; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t j = ii + 1; j < n_; ++j) acc -= qr_(ii, j) * x[j];
    x[ii] = acc / qr_(ii, ii);
  }
  EUCON_CHECK_FINITE_VEC("Qr::solve_least_squares result", x);
}

Vector least_squares(const Matrix& a, const Vector& b) {
  return Qr(a).solve_least_squares(b);
}

}  // namespace eucon::linalg
