// Householder QR factorization and least-squares solves.
#pragma once

#include <cstddef>
#include <vector>

#include "common/annotations.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace eucon::linalg {

// QR of an m×n matrix with m >= n (tall or square).
class Qr {
 public:
  explicit Qr(const Matrix& a);

  // True when R has no (numerically) zero diagonal entry, i.e. A has full
  // column rank.
  bool full_rank() const { return full_rank_; }

  // Minimizes ||A x - b||_2. Throws std::runtime_error when rank deficient.
  Vector solve_least_squares(const Vector& b) const;

  // Allocation-free variant for per-period callers: `y` is caller-owned
  // scratch (resized on first use, steady-state no-op after) and `x`
  // receives the solution. Aliasing b/y/x is not allowed.
  void solve_least_squares_into(const Vector& b, Vector& y,
                                Vector& x) const EUCON_REALTIME;

  // The upper-triangular factor (n×n).
  Matrix r() const;
  // Applies Q^T to a vector of length m.
  Vector qt_times(const Vector& b) const;
  // In-place Q^T b into caller-owned `y` (resized to length m on first use).
  void qt_times_into(const Vector& b, Vector& y) const EUCON_REALTIME;

 private:
  std::size_t m_, n_;
  Matrix qr_;                    // R on/above diagonal; Householder tails below
  std::vector<double> beta_;     // Householder scalars (0 for skipped columns)
  std::vector<double> vk_head_;  // head element of each Householder vector
  bool full_rank_ = true;
};

// One-shot least squares.
Vector least_squares(const Matrix& a, const Vector& b);

}  // namespace eucon::linalg
