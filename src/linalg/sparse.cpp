#include "linalg/sparse.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace eucon::linalg {

SparseMatrix SparseMatrix::from_triplets(std::size_t rows, std::size_t cols,
                                         std::vector<Triplet> entries) {
  for (const Triplet& t : entries)
    EUCON_REQUIRE(t.row < rows && t.col < cols,
                  "sparse triplet out of range: (" + std::to_string(t.row) +
                      ", " + std::to_string(t.col) + ") in " +
                      std::to_string(rows) + "x" + std::to_string(cols));
  std::sort(entries.begin(), entries.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);
  m.cols_idx_.reserve(entries.size());
  m.values_.reserve(entries.size());
  for (std::size_t k = 0; k < entries.size();) {
    const std::size_t r = entries[k].row;
    const std::size_t c = entries[k].col;
    double sum = 0.0;
    for (; k < entries.size() && entries[k].row == r && entries[k].col == c;
         ++k)
      sum += entries[k].value;
    m.cols_idx_.push_back(c);
    m.values_.push_back(sum);
    ++m.row_ptr_[r + 1];
  }
  for (std::size_t r = 0; r < rows; ++r) m.row_ptr_[r + 1] += m.row_ptr_[r];
  return m;
}

SparseMatrix SparseMatrix::from_dense(const Matrix& dense, double tol) {
  EUCON_REQUIRE(tol >= 0.0, "sparsification tolerance must be non-negative");
  SparseMatrix m;
  m.rows_ = dense.rows();
  m.cols_ = dense.cols();
  m.row_ptr_.assign(m.rows_ + 1, 0);
  for (std::size_t r = 0; r < m.rows_; ++r) {
    const double* row = dense.row_ptr(r);
    for (std::size_t c = 0; c < m.cols_; ++c) {
      if (std::abs(row[c]) > tol) {
        m.cols_idx_.push_back(c);
        m.values_.push_back(row[c]);
        ++m.row_ptr_[r + 1];
      }
    }
  }
  for (std::size_t r = 0; r < m.rows_; ++r) m.row_ptr_[r + 1] += m.row_ptr_[r];
  return m;
}

double SparseMatrix::at(std::size_t r, std::size_t c) const {
  EUCON_REQUIRE(r < rows_ && c < cols_, "sparse index out of range");
  const auto first = cols_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r]);
  const auto last = cols_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r + 1]);
  const auto it = std::lower_bound(first, last, c);
  if (it == last || *it != c) return 0.0;
  return values_[static_cast<std::size_t>(it - cols_idx_.begin())];
}

SparseMatrix SparseMatrix::transposed() const {
  SparseMatrix t;
  t.rows_ = cols_;
  t.cols_ = rows_;
  t.row_ptr_.assign(cols_ + 1, 0);
  for (const std::size_t c : cols_idx_) ++t.row_ptr_[c + 1];
  for (std::size_t r = 0; r < cols_; ++r) t.row_ptr_[r + 1] += t.row_ptr_[r];
  t.cols_idx_.resize(values_.size());
  t.values_.resize(values_.size());
  std::vector<std::size_t> next(t.row_ptr_.begin(), t.row_ptr_.end() - 1);
  // Walking the source rows in order writes each transposed row's entries
  // in ascending (source-row) order, preserving the CSR invariant.
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const std::size_t slot = next[cols_idx_[k]]++;
      t.cols_idx_[slot] = r;
      t.values_[slot] = values_[k];
    }
  }
  return t;
}

Matrix SparseMatrix::to_dense() const {
  Matrix dense(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      dense(r, cols_idx_[k]) = values_[k];
  return dense;
}

void multiply_into(const SparseMatrix& a, const Vector& x, Vector& out) {
  EUCON_REQUIRE(a.cols() == x.size(), "sparse matvec dimension mismatch");
  out.reshape(a.rows());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double acc = 0.0;
    for (std::size_t k = a.row_begin(r); k < a.row_end(r); ++k)
      acc += a.value(k) * x[a.col_index(k)];
    out[r] = acc;
  }
  EUCON_CHECK_FINITE_VEC("sparse multiply_into result", out);
}

void transpose_times_into(const SparseMatrix& a, const Vector& x, Vector& out) {
  EUCON_REQUIRE(a.rows() == x.size(),
                "sparse transpose_times dimension mismatch");
  out.reshape(a.cols());
  out.fill(0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;  // eucon-lint: allow(float-equality)
    for (std::size_t k = a.row_begin(r); k < a.row_end(r); ++k)
      out[a.col_index(k)] += a.value(k) * xr;
  }
  EUCON_CHECK_FINITE_VEC("sparse transpose_times_into result", out);
}

double row_dot(const SparseMatrix& a, std::size_t r, const Vector& x) {
  EUCON_REQUIRE(r < a.rows() && a.cols() == x.size(),
                "sparse row_dot dimension mismatch");
  double acc = 0.0;
  for (std::size_t k = a.row_begin(r); k < a.row_end(r); ++k)
    acc += a.value(k) * x[a.col_index(k)];
  return acc;
}

Vector operator*(const SparseMatrix& a, const Vector& x) {
  Vector out(a.rows());
  multiply_into(a, x, out);
  return out;
}

bool approx_equal(const SparseMatrix& a, const Matrix& b, double tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  return approx_equal(a.to_dense(), b, tol);
}

}  // namespace eucon::linalg
