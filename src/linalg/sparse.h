// Sparse real matrix, compressed sparse row (CSR).
//
// The cluster-scale control plane stores the subtask allocation matrix F
// this way: at n = 10k processors a dense n×m F is gigabytes of mostly
// zeros, while the task-chain structure keeps every column at chain-length
// nonzeros. The CSR kernels (multiply_into / transpose_times_into /
// row_dot) mirror the dense API in linalg/matrix.h name for name, so a
// caller can switch representations without rewriting its hot path.
//
// Invariants: within each row, column indices are strictly increasing;
// explicit zeros are allowed (from_triplets keeps whatever the builder
// sums to, from_dense drops entries with |v| <= tol).
#pragma once

#include <cstddef>
#include <vector>

#include "common/annotations.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace eucon::linalg {

// One (row, col, value) entry for from_triplets. Duplicate coordinates are
// summed, matching the usual sparse-assembly convention.
struct Triplet {
  std::size_t row = 0;
  std::size_t col = 0;
  double value = 0.0;
};

class SparseMatrix {
 public:
  SparseMatrix() = default;

  // Builds an r×c matrix from (row, col, value) entries; duplicates are
  // summed. Entries out of range throw.
  static SparseMatrix from_triplets(std::size_t rows, std::size_t cols,
                                    std::vector<Triplet> entries);

  // Compresses a dense matrix, dropping entries with |v| <= tol.
  static SparseMatrix from_dense(const Matrix& dense, double tol = 0.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return values_.size(); }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  // Entry lookup by binary search within the row: O(log nnz(row)). Returns
  // 0.0 for absent entries. This is the random-access path for tests and
  // construction-time code; hot loops iterate rows directly instead.
  double at(std::size_t r, std::size_t c) const;

  // CSR row iteration: entries of row r live at indices
  // [row_begin(r), row_end(r)) of col_index()/value().
  std::size_t row_begin(std::size_t r) const { return row_ptr_[r]; }
  std::size_t row_end(std::size_t r) const { return row_ptr_[r + 1]; }
  std::size_t row_nnz(std::size_t r) const {
    return row_ptr_[r + 1] - row_ptr_[r];
  }
  std::size_t col_index(std::size_t k) const { return cols_idx_[k]; }
  double value(std::size_t k) const { return values_[k]; }

  // The transpose as a new CSR matrix (O(nnz)). F^T gives per-task
  // processor lists — the column access the shard builders need.
  SparseMatrix transposed() const;

  Matrix to_dense() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_;   // rows_+1 entries (empty matrix: {0})
  std::vector<std::size_t> cols_idx_;  // nnz entries, ascending within a row
  std::vector<double> values_;         // nnz entries
};

// y = A x into caller-owned storage; O(nnz). Aliasing `out` with `x` is not
// allowed. Steady-state calls never touch the heap once `out` has capacity.
void multiply_into(const SparseMatrix& a, const Vector& x,
                   Vector& out) EUCON_REALTIME;

// y = A^T x without materializing the transpose; O(nnz).
void transpose_times_into(const SparseMatrix& a, const Vector& x,
                          Vector& out) EUCON_REALTIME;

// Dot product of row r of `a` with `x` — the sparse counterpart of the
// contiguous dense kernel.
double row_dot(const SparseMatrix& a, std::size_t r,
               const Vector& x) EUCON_REALTIME;

Vector operator*(const SparseMatrix& a, const Vector& x);

bool approx_equal(const SparseMatrix& a, const Matrix& b, double tol);

}  // namespace eucon::linalg
