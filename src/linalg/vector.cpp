#include "linalg/vector.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace eucon::linalg {

double& Vector::at(std::size_t i) {
  EUCON_REQUIRE(i < data_.size(), "vector index out of range");
  return data_[i];
}

double Vector::at(std::size_t i) const {
  EUCON_REQUIRE(i < data_.size(), "vector index out of range");
  return data_[i];
}

void Vector::reshape(std::size_t n) {
  // Steady-state no-op: scratch callers preallocate the maximum size once.
  data_.resize(n);  // eucon-lint: allow(allocation-in-realtime)
}

void Vector::fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

Vector& Vector::operator+=(const Vector& rhs) {
  EUCON_REQUIRE(size() == rhs.size(), "vector size mismatch in +=");
  for (std::size_t i = 0; i < size(); ++i) data_[i] += rhs.data_[i];
  EUCON_CHECK_FINITE_VEC("Vector::operator+=", *this);
  return *this;
}

Vector& Vector::operator-=(const Vector& rhs) {
  EUCON_REQUIRE(size() == rhs.size(), "vector size mismatch in -=");
  for (std::size_t i = 0; i < size(); ++i) data_[i] -= rhs.data_[i];
  EUCON_CHECK_FINITE_VEC("Vector::operator-=", *this);
  return *this;
}

Vector& Vector::operator*=(double s) {
  for (double& x : data_) x *= s;
  EUCON_CHECK_FINITE_VEC("Vector::operator*=", *this);
  return *this;
}

double Vector::dot(const Vector& rhs) const {
  EUCON_REQUIRE(size() == rhs.size(), "vector size mismatch in dot");
  double acc = 0.0;
  for (std::size_t i = 0; i < size(); ++i) acc += data_[i] * rhs.data_[i];
  EUCON_CHECK_FINITE_SCALAR("Vector::dot", acc);
  return acc;
}

double Vector::norm2() const { return std::sqrt(dot(*this)); }

double Vector::norm_inf() const {
  double m = 0.0;
  for (double x : data_) m = std::max(m, std::abs(x));
  return m;
}

double Vector::sum() const {
  double acc = 0.0;
  for (double x : data_) acc += x;
  return acc;
}

Vector Vector::clamped(const Vector& lo, const Vector& hi) const {
  EUCON_REQUIRE(size() == lo.size() && size() == hi.size(),
                "vector size mismatch in clamped");
  Vector out(size());
  for (std::size_t i = 0; i < size(); ++i)
    out[i] = std::clamp(data_[i], lo[i], hi[i]);
  return out;
}

std::string Vector::to_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < size(); ++i) {
    if (i) os << ", ";
    os << data_[i];
  }
  os << ']';
  return os.str();
}

Vector operator+(Vector lhs, const Vector& rhs) { return lhs += rhs; }
Vector operator-(Vector lhs, const Vector& rhs) { return lhs -= rhs; }
Vector operator*(double s, Vector v) { return v *= s; }
Vector operator*(Vector v, double s) { return v *= s; }
Vector operator-(Vector v) { return v *= -1.0; }

void add_scaled(Vector& y, double alpha, const Vector& x) {
  EUCON_REQUIRE(y.size() == x.size(), "vector size mismatch in add_scaled");
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += alpha * x[i];
  EUCON_CHECK_FINITE_VEC("add_scaled", y);
}

bool approx_equal(const Vector& a, const Vector& b, double tol) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (std::abs(a[i] - b[i]) > tol) return false;
  return true;
}

}  // namespace eucon::linalg
