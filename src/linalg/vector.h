// Dense real vector.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/annotations.h"

namespace eucon::linalg {

class Vector {
 public:
  Vector() = default;
  explicit Vector(std::size_t n, double fill = 0.0) : data_(n, fill) {}
  Vector(std::initializer_list<double> values) : data_(values) {}
  explicit Vector(std::vector<double> values) : data_(std::move(values)) {}

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator[](std::size_t i) { return data_[i]; }
  double operator[](std::size_t i) const { return data_[i]; }
  // Bounds-checked access.
  double& at(std::size_t i);
  double at(std::size_t i) const;

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  // Re-dimensions in place; contents become unspecified. Scratch vectors
  // constructed once at their maximum size can be reshaped per use without
  // touching the heap (shrinking never releases capacity).
  void reshape(std::size_t n) EUCON_REALTIME;
  // Sets every entry to `value`.
  void fill(double value) EUCON_REALTIME;

  Vector& operator+=(const Vector& rhs);
  Vector& operator-=(const Vector& rhs);
  Vector& operator*=(double s);

  double dot(const Vector& rhs) const;
  double norm2() const;      // Euclidean norm
  double norm_inf() const;   // max |x_i|
  double sum() const;

  // Elementwise clamp into [lo, hi] (vectors of the same size).
  Vector clamped(const Vector& lo, const Vector& hi) const;

  std::string to_string() const;

 private:
  std::vector<double> data_;
};

Vector operator+(Vector lhs, const Vector& rhs);
Vector operator-(Vector lhs, const Vector& rhs);
Vector operator*(double s, Vector v);
Vector operator*(Vector v, double s);
Vector operator-(Vector v);

// True iff |a_i - b_i| <= tol for all i (sizes must match).
bool approx_equal(const Vector& a, const Vector& b, double tol);

// y += alpha * x without materializing the scaled temporary (hot-path axpy).
void add_scaled(Vector& y, double alpha, const Vector& x) EUCON_REALTIME;

}  // namespace eucon::linalg
