#include "obs/registry.h"

#include <algorithm>

namespace eucon::obs {

void Registry::add(std::string_view name, std::uint64_t delta) {
  const MutexLock lock(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) {
    it->second += delta;
  } else {
    counters_.emplace(std::string(name), delta);
  }
}

std::uint64_t Registry::counter(std::string_view name) const {
  const MutexLock lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void Registry::set_gauge(std::string_view name, double value) {
  const MutexLock lock(mu_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) {
    it->second = value;
  } else {
    gauges_.emplace(std::string(name), value);
  }
}

double Registry::gauge(std::string_view name) const {
  const MutexLock lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

void Registry::record_duration_ns(std::string_view name, std::uint64_t ns) {
  const MutexLock lock(mu_);
  const auto it = timers_.find(name);
  if (it != timers_.end()) {
    TimerStats& t = it->second;
    ++t.count;
    t.total_ns += ns;
    t.min_ns = std::min(t.min_ns, ns);
    t.max_ns = std::max(t.max_ns, ns);
  } else {
    timers_.emplace(std::string(name), TimerStats{1, ns, ns, ns});
  }
}

TimerStats Registry::timer(std::string_view name) const {
  const MutexLock lock(mu_);
  const auto it = timers_.find(name);
  return it == timers_.end() ? TimerStats{} : it->second;
}

Snapshot Registry::snapshot() const {
  const MutexLock lock(mu_);
  Snapshot snap;
  snap.counters.insert(counters_.begin(), counters_.end());
  snap.gauges.insert(gauges_.begin(), gauges_.end());
  snap.timers.insert(timers_.begin(), timers_.end());
  return snap;
}

void Registry::clear() {
  const MutexLock lock(mu_);
  // Assignment instead of .clear(): a member .clear() call resolves
  // conservatively to every clear() method in the lint's call graph, which
  // would drag mu_ into unrelated classes' may-held sets while it is held
  // here. Assignment has the same effect and no call edge.
  counters_ = {};
  gauges_ = {};
  timers_ = {};
}

}  // namespace eucon::obs
