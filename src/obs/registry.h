// Counter / gauge / timer registry — the metrics half of the observability
// layer (docs/observability.md).
//
// A Registry is a named bag of monotone counters, last-value gauges, and
// duration accumulators. It is thread-safe by construction (one internal
// eucon::Mutex, every map annotated EUCON_GUARDED_BY), so a single instance
// can be shared across run_batch workers: each run adds its tallies and the
// caller reads one consistent snapshot at the end.
//
// Naming rules (enforced socially, documented in docs/observability.md):
// lowercase `<area>.<noun>` with `_` inside words — e.g.
// `experiment.lost_reports`, `mpc.qp_iterations`, `sim.release_guard_stalls`.
// Counters count events (monotone), gauges hold the last written value,
// timers accumulate wall-clock durations recorded in nanoseconds.
//
// Cost model: every operation is one mutex acquisition plus one map lookup —
// fine at per-sampling-period granularity, and exactly zero when the caller
// holds no Registry (every instrumentation site is behind a null check, and
// the OBS_TIMED macro compiles to nothing under -DEUCON_OBS=OFF).
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/annotations.h"
#include "common/mutex.h"

namespace eucon::obs {

// True when the observability layer is compiled in (the default). With
// cmake -DEUCON_OBS=OFF every emission site is discarded at compile time;
// tests that need traces skip themselves via this flag.
#if defined(EUCON_OBS_DISABLED)
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

// Aggregate of the duration samples recorded under one timer name.
struct TimerStats {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;

  double mean_us() const {
    return count == 0 ? 0.0
                      : static_cast<double>(total_ns) /
                            (1000.0 * static_cast<double>(count));
  }
};

// A point-in-time copy of everything a Registry holds, with deterministic
// (sorted) iteration order for reports and tests.
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, TimerStats> timers;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // The three mutating entry points run on EUCON_REALTIME paths (the
  // controller's per-period instrumentation). Both hatches are deliberate,
  // documented costs, not oversights: the internal eucon::Mutex is
  // uncontended-fast and held for one map operation (see the cost model
  // above), and the map node allocation happens only the first time a name
  // is seen — steady-state increments hit an existing node.

  // Every entry point also carries EUCON_EXCLUDES(mu_): calling a Registry
  // method while already holding its lock (possible only from inside this
  // class) would self-deadlock, and the lint's lock rules flag any
  // transitive caller that tries.

  // Counters: monotone event tallies.
  void add(std::string_view name, std::uint64_t delta = 1) EUCON_REALTIME
      EUCON_EXCLUDES(mu_)
          EUCON_BLOCK_OK("one uncontended map-op mutex hold")
              EUCON_ALLOC_OK("map node allocated on first use of a name only");
  std::uint64_t counter(std::string_view name) const EUCON_EXCLUDES(mu_);

  // Gauges: last written value wins (also across threads; a gauge shared
  // between workers records *some* last value, use counters for totals).
  void set_gauge(std::string_view name, double value) EUCON_REALTIME
      EUCON_EXCLUDES(mu_)
          EUCON_BLOCK_OK("one uncontended map-op mutex hold")
              EUCON_ALLOC_OK("map node allocated on first use of a name only");
  double gauge(std::string_view name) const
      EUCON_EXCLUDES(mu_);  // 0.0 when never written

  // Timers: one duration sample per call.
  void record_duration_ns(std::string_view name, std::uint64_t ns)
      EUCON_REALTIME EUCON_EXCLUDES(mu_)
          EUCON_BLOCK_OK("one uncontended map-op mutex hold")
              EUCON_ALLOC_OK("map node allocated on first use of a name only");
  TimerStats timer(std::string_view name) const
      EUCON_EXCLUDES(mu_);  // zeroed when never written

  Snapshot snapshot() const EUCON_EXCLUDES(mu_);

  // Drops every counter/gauge/timer (between bench sections). The hatch
  // mirrors the mutating entry points above: one uncontended mutex hold.
  // (The realtime call graph also reaches this node conservatively through
  // any `x.clear()` member call, e.g. on a std::vector.)
  void clear() EUCON_EXCLUDES(mu_)
      EUCON_BLOCK_OK("one uncontended map-op mutex hold");

 private:
  mutable Mutex mu_;
  std::map<std::string, std::uint64_t, std::less<>> counters_
      EUCON_GUARDED_BY(mu_);
  std::map<std::string, double, std::less<>> gauges_ EUCON_GUARDED_BY(mu_);
  std::map<std::string, TimerStats, std::less<>> timers_ EUCON_GUARDED_BY(mu_);
};

// RAII wall-clock timer: records the scope's duration under `name` at
// destruction. A null registry skips the clock reads entirely, so an
// un-instrumented hot path pays two pointer tests and nothing else.
class ScopedTimer {
 public:
  ScopedTimer(Registry* registry, const char* name)
      : registry_(registry), name_(name) {
    if (registry_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  // The destructor sits at the end of every OBS_TIMED scope on the control
  // path; the steady_clock read is the timer's entire point (it measures
  // wall time, it does not steer the simulation), hence the hatch.
  ~ScopedTimer() EUCON_REALTIME
      EUCON_NONDET_OK("steady_clock read is the measurement itself") {
    if (registry_ != nullptr) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
      registry_->record_duration_ns(name_, ns < 0 ? 0u
                                                  : static_cast<std::uint64_t>(ns));
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Registry* registry_;
  const char* name_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace eucon::obs

// Scoped-timer instrumentation point. `registry` is an obs::Registry*
// (null = disabled); `name` a string literal. Compiles to nothing when the
// observability layer is configured out.
#if defined(EUCON_OBS_DISABLED)
#define OBS_TIMED(registry, name) ((void)0)
#else
#define OBS_TIMED_CONCAT2(a, b) a##b
#define OBS_TIMED_CONCAT(a, b) OBS_TIMED_CONCAT2(a, b)
#define OBS_TIMED(registry, name)                                     \
  const ::eucon::obs::ScopedTimer OBS_TIMED_CONCAT(obs_scoped_timer_, \
                                                   __LINE__)((registry), (name))
#endif
