#include "obs/trace.h"

#include "common/check.h"
#include "common/csv.h"

namespace eucon::obs {

namespace {

// JSON string escaping for the few names that can carry user text (run
// labels, spec-file names). The schema never emits control characters
// itself.
void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

// Doubles use the shortest round-trip form (shared with the CSV layer) so
// trace bytes are a pure function of the simulated values.
void append_double(std::string& out, double v) {
  out += CsvWriter::format_double(v);
}

void append_double_array(std::string& out, const std::vector<double>& values) {
  out += '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ',';
    append_double(out, values[i]);
  }
  out += ']';
}

void append_index_array(std::string& out,
                        const std::vector<std::size_t>& values) {
  out += '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(values[i]);
  }
  out += ']';
}

}  // namespace

std::string to_jsonl(const RunInfo& info) {
  std::string line = "{\"type\":\"run\",\"name\":";
  append_json_string(line, info.name);
  line += ",\"controller\":";
  append_json_string(line, info.controller);
  line += ",\"seed\":" + std::to_string(info.seed);
  line += ",\"periods\":" + std::to_string(info.num_periods);
  line += ",\"processors\":" + std::to_string(info.num_processors);
  line += ",\"tasks\":" + std::to_string(info.num_tasks);
  line += ",\"set_points\":";
  append_double_array(line, info.set_points);
  line += '}';
  return line;
}

std::string to_jsonl(const PeriodRecord& rec) {
  std::string line = "{\"type\":\"period\",\"k\":" + std::to_string(rec.k);
  line += ",\"t\":";
  append_double(line, rec.time_units);
  line += ",\"u\":";
  append_double_array(line, rec.u);
  line += ",\"u_seen\":";
  append_double_array(line, rec.u_seen);
  line += ",\"r\":";
  append_double_array(line, rec.rates);
  line += ",\"dr\":";
  append_double_array(line, rec.delta_r);
  line += ",\"enabled\":" + std::to_string(rec.enabled_tasks);
  line += ",\"lost\":" + std::to_string(rec.lost_reports);
  line += ",\"stalls\":" + std::to_string(rec.release_guard_stalls);
  if (rec.qp_iterations >= 0) {
    line += ",\"qp\":{\"iters\":" + std::to_string(rec.qp_iterations);
    line += ",\"fast_path\":";
    line += rec.qp_fast_path ? "true" : "false";
    line += ",\"fallback\":";
    line += rec.qp_fallback ? "true" : "false";
    line += ",\"status\":";
    append_json_string(line, rec.qp_status);
    line += ",\"active\":";
    append_index_array(line, rec.qp_active_set);
    line += '}';
  }
  if (rec.faults_active) {
    line += ",\"faults\":{\"mode\":";
    append_json_string(line, rec.fault_mode);
    line += ",\"forced\":" + std::to_string(rec.forced_losses);
    line += ",\"act_lost\":" + std::to_string(rec.actuation_lost);
    line += ",\"overload\":" + std::to_string(rec.overload_injections);
    line += ",\"tracked\":" + std::to_string(rec.tracked_processors);
    line += ",\"stale\":";
    append_index_array(line, rec.staleness);
    line += '}';
  }
  line += '}';
  return line;
}

std::string to_jsonl(const RunSummary& summary) {
  std::string line =
      "{\"type\":\"summary\",\"periods\":" + std::to_string(summary.periods);
  line += ",\"lost\":" + std::to_string(summary.lost_reports);
  line += ",\"fallbacks\":" + std::to_string(summary.controller_fallbacks);
  line += ",\"qp_iters\":" + std::to_string(summary.qp_iterations_total);
  line += ",\"fast_path_hits\":" + std::to_string(summary.qp_fast_path_hits);
  line += ",\"stalls\":" + std::to_string(summary.release_guard_stalls);
  line += ",\"jobs_released\":" + std::to_string(summary.jobs_released);
  if (summary.faults_active) {
    line += ",\"faults\":{\"forced\":" + std::to_string(summary.forced_losses);
    line += ",\"act_lost\":" + std::to_string(summary.actuation_lost);
    line += ",\"overload\":" + std::to_string(summary.overload_injections);
    line += ",\"blackout\":" + std::to_string(summary.blackout_periods);
    line += ",\"stale_drops\":" + std::to_string(summary.stale_drops);
    line += ",\"stale_restores\":" + std::to_string(summary.stale_restores);
    line += ",\"max_stale\":" + std::to_string(summary.max_staleness);
    line += '}';
  }
  line += '}';
  return line;
}

Sink::~Sink() = default;

void MemorySink::begin_run(const RunInfo& info) { info_ = info; }

void MemorySink::period(const PeriodRecord& rec) { records_.push_back(rec); }

void MemorySink::end_run(const RunSummary& summary) {
  summary_ = summary;
  finished_ = true;
}

void JsonlSink::begin_run(const RunInfo& info) {
  *out_ << to_jsonl(info) << '\n';
}

void JsonlSink::period(const PeriodRecord& rec) {
  *out_ << to_jsonl(rec) << '\n';
}

void JsonlSink::end_run(const RunSummary& summary) {
  *out_ << to_jsonl(summary) << '\n';
  out_->flush();
}

FileSink::FileSink(const std::string& path)
    : path_(path), out_(path, std::ios::trunc), jsonl_(out_) {
  if (!out_.good()) EUCON_FAIL("cannot open trace file: " + path);
}

void FileSink::begin_run(const RunInfo& info) { jsonl_.begin_run(info); }

void FileSink::period(const PeriodRecord& rec) { jsonl_.period(rec); }

void FileSink::end_run(const RunSummary& summary) {
  jsonl_.end_run(summary);
  if (!out_.good()) EUCON_FAIL("failed writing trace file: " + path_);
}

}  // namespace eucon::obs
