// Structured per-period event tracing — the trajectory half of the
// observability layer (docs/observability.md).
//
// One experiment run emits a header record, one record per sampling
// period, and a totals record, through an ObsSink. The JSONL encoding is
// deterministic byte for byte (keys in fixed order, doubles printed with
// the shortest round-trip form CsvWriter::format_double uses), which is
// what makes the golden-trace regression suite (tests/golden/) and the
// serial-vs-pooled determinism test possible.
//
// Thread contract: a Sink instance is per-run state, like FeedbackLanes —
// thread-compatible, not thread-safe. run_batch gives every run its own
// FileSink; nothing is shared between workers.
#pragma once

#include <cstdint>
#include <fstream>
#include <ostream>
#include <string>
#include <vector>

namespace eucon::obs {

// Identifies a run at the head of its trace.
struct RunInfo {
  std::string name;        // batch label / CLI workload ("" when unnamed)
  std::string controller;  // controller_kind_name() of the run
  std::uint64_t seed = 0;
  int num_periods = 0;
  std::size_t num_processors = 0;
  std::size_t num_tasks = 0;
  std::vector<double> set_points;
};

// Everything the closed loop knows about one sampling period. QP fields
// hold their defaults (iterations -1) for controllers without a QP.
struct PeriodRecord {
  int k = 0;               // sampling-period index, 1-based
  double time_units = 0.0; // simulation clock at the sample, time units
  std::vector<double> u;       // measured utilization per processor
  std::vector<double> u_seen;  // after the (possibly lossy) feedback lanes
  std::vector<double> rates;   // rates applied for the next period
  std::vector<double> delta_r; // rate change actually applied this period
  int enabled_tasks = 0;
  std::uint64_t lost_reports = 0;          // lane losses this period
  std::uint64_t release_guard_stalls = 0;  // deferred releases this period
  int qp_iterations = -1;      // active-set iterations (-1: no QP controller)
  bool qp_fast_path = false;   // cached-QR unconstrained minimizer accepted
  bool qp_fallback = false;    // infeasible instance: util rows dropped
  std::string qp_status;       // "optimal" | "infeasible" | "max_iterations"
  std::vector<std::size_t> qp_active_set;  // final working-set row indices

  // Fault-injection fields (eucon/faults.h). Emitted only when
  // faults_active is set, so unfaulted traces — including the pre-existing
  // golden files — keep their exact bytes.
  bool faults_active = false;
  std::string fault_mode;                  // "normal" | "blackout"
  std::uint64_t forced_losses = 0;         // injector-forced lane losses
  std::uint64_t actuation_lost = 0;        // rate commands dropped this period
  std::uint64_t overload_injections = 0;   // overload spikes applied
  int tracked_processors = 0;              // size of the MPC tracked set
  std::vector<std::size_t> staleness;      // consecutive losses per lane
};

// Monotone totals at the end of a run; the invariant tests check these
// against the sum of the per-period records.
struct RunSummary {
  std::uint64_t periods = 0;
  std::uint64_t lost_reports = 0;
  std::uint64_t controller_fallbacks = 0;
  std::uint64_t qp_iterations_total = 0;
  std::uint64_t qp_fast_path_hits = 0;
  std::uint64_t release_guard_stalls = 0;
  std::uint64_t jobs_released = 0;

  // Fault totals; emitted only when faults_active is set (see PeriodRecord).
  bool faults_active = false;
  std::uint64_t forced_losses = 0;
  std::uint64_t actuation_lost = 0;
  std::uint64_t overload_injections = 0;
  std::uint64_t blackout_periods = 0;
  std::uint64_t stale_drops = 0;     // processors dropped from the tracked set
  std::uint64_t stale_restores = 0;  // processors restored after a report
  int max_staleness = 0;             // worst consecutive-loss streak of the run
};

// The JSONL encoders, exposed so tests can render records exactly as the
// file sink does. Each returns one line without the trailing newline.
std::string to_jsonl(const RunInfo& info);
std::string to_jsonl(const PeriodRecord& rec);
std::string to_jsonl(const RunSummary& summary);

// Receives one run's trace. Implementations must tolerate begin/end being
// called exactly once each, in order, around the period records.
class Sink {
 public:
  virtual ~Sink();
  virtual void begin_run(const RunInfo& info) = 0;
  virtual void period(const PeriodRecord& rec) = 0;
  virtual void end_run(const RunSummary& summary) = 0;
};

// Discards everything (useful to exercise the instrumented path without
// retaining output).
class NullSink final : public Sink {
 public:
  void begin_run(const RunInfo&) override {}
  void period(const PeriodRecord&) override {}
  void end_run(const RunSummary&) override {}
};

// Keeps the structured records in memory for programmatic inspection (the
// invariant fuzz tests read these).
class MemorySink final : public Sink {
 public:
  void begin_run(const RunInfo& info) override;
  void period(const PeriodRecord& rec) override;
  void end_run(const RunSummary& summary) override;

  const RunInfo& info() const { return info_; }
  const std::vector<PeriodRecord>& records() const { return records_; }
  const RunSummary& summary() const { return summary_; }
  bool finished() const { return finished_; }

 private:
  RunInfo info_;
  std::vector<PeriodRecord> records_;
  RunSummary summary_;
  bool finished_ = false;
};

// Streams JSONL to a caller-owned std::ostream.
class JsonlSink : public Sink {
 public:
  explicit JsonlSink(std::ostream& out) : out_(&out) {}

  void begin_run(const RunInfo& info) override;
  void period(const PeriodRecord& rec) override;
  void end_run(const RunSummary& summary) override;

 private:
  std::ostream* out_;
};

// Owns the output file (created/truncated on construction, flushed on
// end_run; throws std::runtime_error when the path cannot be written).
class FileSink final : public Sink {
 public:
  explicit FileSink(const std::string& path);

  void begin_run(const RunInfo& info) override;
  void period(const PeriodRecord& rec) override;
  void end_run(const RunSummary& summary) override;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
  JsonlSink jsonl_;
};

}  // namespace eucon::obs
