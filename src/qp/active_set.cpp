#include "qp/active_set.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "linalg/lu.h"

namespace eucon::qp {

namespace {

using linalg::Lu;
using linalg::Matrix;
using linalg::Vector;

// 0.5 x'Hx + f'x without materializing H x (`hx` is caller scratch).
double objective_value(const Matrix& h, const Vector& f, const Vector& x,
                       Vector& hx) {
  linalg::multiply_into(h, x, hx);
  return 0.5 * x.dot(hx) + f.dot(x);
}

// Solves the equality-constrained subproblem
//   min 0.5 (x+p)'H(x+p) + f'(x+p)   s.t.  a_i p = 0 for i in working set
// via the KKT system, assembled at its live dimension n + wcount inside the
// workspace's max-dimension storage and factored in place. On success the
// step is in ws.p and the multipliers in ws.lambda. Returns false when the
// KKT matrix is singular (the working-set rows are linearly dependent).
bool solve_eqp_into(const Matrix& a, std::size_t n, std::size_t wcount,
                    QpWorkspace& ws) EUCON_REALTIME {
  const std::size_t live = n + wcount;
  ws.kkt.reshape(live, live);
  // Top-left H block: one contiguous copy per row, zero-filled border tail.
  for (std::size_t r = 0; r < n; ++r) {
    const double* src = ws.h_reg.row_ptr(r);
    double* dst = ws.kkt.row_ptr(r);
    std::copy(src, src + n, dst);
    std::fill(dst + n, dst + live, 0.0);
  }
  // Constraint borders: row n+k and column n+k both carry a_{working[k]}.
  for (std::size_t k = 0; k < wcount; ++k) {
    const double* arow = a.row_ptr(ws.working[k]);
    double* krow = ws.kkt.row_ptr(n + k);
    std::copy(arow, arow + n, krow);
    std::fill(krow + n, krow + live, 0.0);
    for (std::size_t j = 0; j < n; ++j) ws.kkt(j, n + k) = arow[j];
  }
  ws.rhs.reshape(live);
  for (std::size_t j = 0; j < n; ++j) ws.rhs[j] = -ws.g[j];
  for (std::size_t k = 0; k < wcount; ++k) ws.rhs[n + k] = 0.0;

  if (!Lu::factor_into(ws.kkt, ws.piv)) return false;
  Lu::solve_into(ws.kkt, ws.piv, ws.rhs, ws.sol);
  ws.p.reshape(n);
  ws.lambda.reshape(wcount);
  for (std::size_t j = 0; j < n; ++j) ws.p[j] = ws.sol[j];
  for (std::size_t k = 0; k < wcount; ++k) ws.lambda[k] = ws.sol[n + k];
  return true;
}

void phase1_impl(const Matrix& a, const Vector& b, const Options& opts,
                 QpWorkspace& ws, Result& out) EUCON_REALTIME;

// The solver core. Identical contract to solve_qp_into but without the
// workspace-capacity precondition check, so the phase-1 recursion can run
// the auxiliary problem (vars + cons variables, 2*cons constraints) in the
// same workspace: its buffers are reserved for exactly that worst case, and
// the recursion cannot nest further because the auxiliary call always has a
// starting point.
void solve_qp_impl(const Matrix& h_in, const Vector& f, const Matrix& a,
                   const Vector& b, const Vector* x0, const Options& opts,
                   WarmStart* warm, QpWorkspace& ws,
                   Result& out) EUCON_REALTIME {
  const std::size_t n = f.size();
  const std::size_t m = a.rows();
  EUCON_REQUIRE(h_in.rows() == n && h_in.cols() == n, "H size mismatch");
  EUCON_REQUIRE(a.rows() == b.size(), "A/b size mismatch");
  EUCON_REQUIRE(a.rows() == 0 || a.cols() == n, "A column count mismatch");
  EUCON_CHECK_FINITE_MAT("solve_qp input H", h_in);
  EUCON_CHECK_FINITE_VEC("solve_qp input f", f);
  EUCON_CHECK_FINITE_MAT("solve_qp input A", a);
  EUCON_CHECK_FINITE_VEC("solve_qp input b", b);

  out.status = Status::kMaxIterations;
  out.iterations = 0;
  out.objective = 0.0;

  // Starting point.
  if (x0 != nullptr) {
    EUCON_REQUIRE(x0->size() == n, "x0 size mismatch");
    EUCON_REQUIRE(max_violation(a, b, *x0) <= 1e2 * opts.constraint_tol + 1e-12,
                  "x0 is not feasible");
    out.x = *x0;
  } else if (m == 0) {
    out.x.reshape(n);
    out.x.fill(0.0);
  } else {
    phase1_impl(a, b, opts, ws, out);
    if (out.status != Status::kOptimal) {
      out.status = Status::kInfeasible;
      return;
    }
    out.status = Status::kMaxIterations;
  }
  const int phase1_iters = out.iterations;

  // Regularize H so every KKT system with independent rows is nonsingular.
  ws.h_reg.reshape(n, n);
  std::copy(h_in.data().begin(), h_in.data().end(), ws.h_reg.data().begin());
  for (std::size_t i = 0; i < n; ++i) ws.h_reg(i, i) += opts.regularization;

  // Active-set iteration. A warm start seeds the working set with the
  // previous solve's active constraints — but only those actually active at
  // the starting point, since holding a slack constraint as an equality
  // would let the solver terminate at a point violating complementary
  // slackness. The working set lives in the fixed-capacity ws.working
  // buffer (live prefix of length wcount) with ws.in_working membership
  // flags replacing linear searches.
  std::size_t wcount = 0;
  std::fill(ws.in_working.begin(), ws.in_working.begin() + m,
            static_cast<unsigned char>(0));
  if (warm != nullptr) {
    for (std::size_t i : warm->working) {
      if (i >= m) continue;
      if (ws.in_working[i]) continue;
      const double a_x = linalg::row_dot(a, i, out.x);
      if (std::abs(a_x - b[i]) <=
          1e2 * opts.constraint_tol * (1.0 + std::abs(b[i]))) {
        ws.working[wcount++] = i;
        ws.in_working[i] = 1;
      }
    }
  }

  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    out.iterations = phase1_iters + iter + 1;
    linalg::multiply_into(ws.h_reg, out.x, ws.g);
    ws.g += f;
    if (!solve_eqp_into(a, n, wcount, ws)) {
      // Dependent working set (can happen right after adding a blocking
      // constraint parallel to existing ones): drop the newest member.
      EUCON_ASSERT(wcount > 0, "singular KKT with empty working set");
      --wcount;
      ws.in_working[ws.working[wcount]] = 0;
      continue;
    }

    if (ws.p.norm_inf() <= opts.step_tol * (1.0 + out.x.norm_inf())) {
      // Stationary on the working set: check multipliers.
      int most_negative = -1;
      double worst = -opts.multiplier_tol * (1.0 + ws.lambda.norm_inf());
      for (std::size_t k = 0; k < wcount; ++k) {
        if (ws.lambda[k] < worst) {
          worst = ws.lambda[k];
          most_negative = eucon::narrow<int>(k);
        }
      }
      if (most_negative < 0) {
        out.status = Status::kOptimal;
        out.objective = objective_value(h_in, f, out.x, ws.g);
        if (warm != nullptr)
          warm->working.assign(ws.working.begin(),
                               ws.working.begin() + wcount);
        EUCON_CHECK_FINITE_VEC("solve_qp result", out.x);
        return;
      }
      const std::size_t drop = static_cast<std::size_t>(most_negative);
      ws.in_working[ws.working[drop]] = 0;
      for (std::size_t k = drop; k + 1 < wcount; ++k)
        ws.working[k] = ws.working[k + 1];
      --wcount;
      continue;
    }

    // Line search toward x + p, blocked by inactive constraints. Rows
    // already in the working set are skipped before their dots are
    // computed (they satisfy a_i'p = 0 by construction, so they can
    // never block); each surviving row is a contiguous row_dot.
    double alpha = 1.0;
    int blocking = -1;
    for (std::size_t i = 0; i < m; ++i) {
      if (ws.in_working[i]) continue;
      const double a_p = linalg::row_dot(a, i, ws.p);
      if (a_p <= 1e-13) continue;  // moving away or parallel
      const double a_x = linalg::row_dot(a, i, out.x);
      const double room = std::max(0.0, b[i] - a_x);
      const double step = room / a_p;
      if (step < alpha) {
        alpha = step;
        blocking = eucon::narrow<int>(i);
      }
    }

    if (alpha > 0.0) linalg::add_scaled(out.x, alpha, ws.p);
    if (blocking >= 0) {
      ws.working[wcount++] = static_cast<std::size_t>(blocking);
      ws.in_working[static_cast<std::size_t>(blocking)] = 1;
    }
  }

  out.status = Status::kMaxIterations;
  out.objective = objective_value(h_in, f, out.x, ws.g);
  // Write the final working set back even on the iteration-limit exit: a
  // stale warm start would re-seed the next period from a set that no
  // longer matches the returned iterate.
  if (warm != nullptr)
    warm->working.assign(ws.working.begin(), ws.working.begin() + wcount);
  EUCON_CHECK_FINITE_VEC("solve_qp result", out.x);
}

// Phase-1: finds x with A x <= b by solving the auxiliary QP over z = [x; s]
//   min 0.5*eps*||x||^2 + 0.5*||s||^2
//   s.t. A x - s <= b,  -s <= 0
// (x = 0, s_i = max(0, -b_i)) is always feasible; at the optimum s is the
// (least-squares) constraint violation, which is 0 iff Ax <= b is feasible.
// Built in the workspace's aux buffers and solved through the same scratch
// as the outer problem (which has not started iterating yet). Writes the
// point, status, and auxiliary iteration count into `out`.
void phase1_impl(const Matrix& a, const Vector& b, const Options& opts,
                 QpWorkspace& ws, Result& out) {
  const std::size_t n = a.cols();
  const std::size_t m = a.rows();
  out.objective = 0.0;
  if (m == 0) {
    out.x.reshape(n);
    out.x.fill(0.0);
    out.status = Status::kOptimal;
    out.iterations = 0;
    return;
  }

  const double eps = 1e-8;
  const std::size_t naux = n + m;
  ws.aux_h.reshape(naux, naux);
  ws.aux_h.fill(0.0);
  for (std::size_t j = 0; j < n; ++j) ws.aux_h(j, j) = eps;
  for (std::size_t i = 0; i < m; ++i) ws.aux_h(n + i, n + i) = 1.0;
  ws.aux_f.reshape(naux);
  ws.aux_f.fill(0.0);

  ws.aux_a.reshape(2 * m, naux);
  ws.aux_a.fill(0.0);
  ws.aux_b.reshape(2 * m);
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = a.row_ptr(i);
    std::copy(arow, arow + n, ws.aux_a.row_ptr(i));
    ws.aux_a(i, n + i) = -1.0;
    ws.aux_b[i] = b[i];
    ws.aux_a(m + i, n + i) = -1.0;
    ws.aux_b[m + i] = 0.0;
  }
  ws.aux_z0.reshape(naux);
  ws.aux_z0.fill(0.0);
  for (std::size_t i = 0; i < m; ++i) ws.aux_z0[n + i] = std::max(0.0, -b[i]);

  Options aux_opts = opts;
  aux_opts.max_iterations = std::max(opts.max_iterations, 2000);
  solve_qp_impl(ws.aux_h, ws.aux_f, ws.aux_a, ws.aux_b, &ws.aux_z0, aux_opts,
                nullptr, ws, ws.aux_result);

  out.x.reshape(n);
  for (std::size_t j = 0; j < n; ++j) out.x[j] = ws.aux_result.x[j];
  out.iterations = ws.aux_result.iterations;
  const double viol = max_violation(a, b, out.x);
  // The auxiliary problem shrinks but never exactly zeroes tiny violations
  // (eps-regularized); accept anything within a loose multiple of the
  // feasibility tolerance.
  out.status = viol <= 1e3 * opts.constraint_tol ? Status::kOptimal
                                                 : Status::kInfeasible;
}

}  // namespace

void QpWorkspace::reserve(std::size_t vars, std::size_t cons) {
  if (vars <= max_vars_ && cons <= max_cons_) return;
  max_vars_ = std::max(max_vars_, vars);
  max_cons_ = std::max(max_cons_, cons);
  // Worst case across the outer problem and its phase-1 auxiliary problem
  // (vars + cons variables, 2*cons constraints, so KKT systems of dimension
  // up to vars + 3*cons when every auxiliary constraint goes active).
  const std::size_t nmax = max_vars_ + max_cons_;
  const std::size_t mmax = 2 * max_cons_;
  const std::size_t kmax = nmax + mmax;
  h_reg = linalg::Matrix(nmax, nmax);
  kkt = linalg::Matrix(kmax, kmax);
  rhs = linalg::Vector(kmax);
  sol = linalg::Vector(kmax);
  g = linalg::Vector(nmax);
  p = linalg::Vector(nmax);
  lambda = linalg::Vector(mmax);
  working.assign(mmax, 0);
  in_working.assign(mmax, 0);
  piv.assign(kmax, 0);
  aux_h = linalg::Matrix(nmax, nmax);
  aux_a = linalg::Matrix(mmax, nmax);
  aux_f = linalg::Vector(nmax);
  aux_b = linalg::Vector(mmax);
  aux_z0 = linalg::Vector(nmax);
  aux_result.x = linalg::Vector(nmax);
}

double max_violation(const Matrix& a, const Vector& b, const Vector& x) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    worst = std::max(worst, linalg::row_dot(a, i, x) - b[i]);
  return worst;
}

void solve_qp_into(const Matrix& h, const Vector& f, const Matrix& a,
                   const Vector& b, const Vector* x0, const Options& opts,
                   WarmStart* warm, QpWorkspace& ws, Result& out) {
  EUCON_REQUIRE(f.size() <= ws.max_vars() && a.rows() <= ws.max_cons(),
                "QpWorkspace too small; reserve(vars, cons) first");
  solve_qp_impl(h, f, a, b, x0, opts, warm, ws, out);
}

Result solve_qp(const Matrix& h, const Vector& f, const Matrix& a,
                const Vector& b, const Vector* x0, const Options& opts,
                WarmStart* warm) {
  QpWorkspace ws;
  ws.reserve(f.size(), a.rows());
  Result out;
  solve_qp_impl(h, f, a, b, x0, opts, warm, ws, out);
  return out;
}

Result find_feasible_point(const Matrix& a, const Vector& b,
                           const Options& opts) {
  QpWorkspace ws;
  ws.reserve(a.cols(), a.rows());
  Result out;
  phase1_impl(a, b, opts, ws, out);
  return out;
}

}  // namespace eucon::qp
