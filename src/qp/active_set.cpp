#include "qp/active_set.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "linalg/lu.h"

namespace eucon::qp {

namespace {

using linalg::Lu;
using linalg::Matrix;
using linalg::Vector;

double objective_value(const Matrix& h, const Vector& f, const Vector& x) {
  return 0.5 * x.dot(h * x) + f.dot(x);
}

// Solves the equality-constrained subproblem
//   min 0.5 (x+p)'H(x+p) + f'(x+p)   s.t.  a_i p = 0 for i in working set
// via the KKT system. Returns false when the KKT matrix is singular (the
// working-set rows are linearly dependent).
bool solve_eqp(const Matrix& h, const Vector& g /* = Hx + f */, const Matrix& a,
               const std::vector<std::size_t>& working, Vector& p,
               Vector& lambda) {
  const std::size_t n = h.rows();
  const std::size_t w = working.size();
  Matrix kkt(n + w, n + w);
  kkt.set_block(0, 0, h);
  for (std::size_t k = 0; k < w; ++k) {
    for (std::size_t j = 0; j < n; ++j) {
      const double v = a(working[k], j);
      kkt(n + k, j) = v;
      kkt(j, n + k) = v;
    }
  }
  Vector rhs(n + w);
  for (std::size_t j = 0; j < n; ++j) rhs[j] = -g[j];

  Lu lu(kkt);
  if (!lu.invertible()) return false;
  const Vector sol = lu.solve(rhs);
  p = Vector(n);
  lambda = Vector(w);
  for (std::size_t j = 0; j < n; ++j) p[j] = sol[j];
  for (std::size_t k = 0; k < w; ++k) lambda[k] = sol[n + k];
  return true;
}

}  // namespace

double max_violation(const Matrix& a, const Vector& b, const Vector& x) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double lhs = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) lhs += a(i, j) * x[j];
    worst = std::max(worst, lhs - b[i]);
  }
  return worst;
}

Result solve_qp(const Matrix& h_in, const Vector& f, const Matrix& a,
                const Vector& b, const Vector* x0, const Options& opts,
                WarmStart* warm) {
  const std::size_t n = f.size();
  EUCON_REQUIRE(h_in.rows() == n && h_in.cols() == n, "H size mismatch");
  EUCON_REQUIRE(a.rows() == b.size(), "A/b size mismatch");
  EUCON_REQUIRE(a.rows() == 0 || a.cols() == n, "A column count mismatch");
  EUCON_CHECK_FINITE_MAT("solve_qp input H", h_in);
  EUCON_CHECK_FINITE_VEC("solve_qp input f", f);
  EUCON_CHECK_FINITE_MAT("solve_qp input A", a);
  EUCON_CHECK_FINITE_VEC("solve_qp input b", b);

  // Regularize H so every KKT system with independent rows is nonsingular.
  Matrix h = h_in;
  for (std::size_t i = 0; i < n; ++i) h(i, i) += opts.regularization;

  Result res;
  // Starting point.
  if (x0 != nullptr) {
    EUCON_REQUIRE(x0->size() == n, "x0 size mismatch");
    EUCON_REQUIRE(max_violation(a, b, *x0) <= 1e2 * opts.constraint_tol + 1e-12,
                  "x0 is not feasible");
    res.x = *x0;
  } else if (a.rows() == 0) {
    res.x = Vector(n);
  } else {
    Result phase1 = find_feasible_point(a, b, opts);
    if (phase1.status != Status::kOptimal) {
      phase1.status = Status::kInfeasible;
      return phase1;
    }
    res.x = phase1.x;
  }

  // Active-set iteration. A warm start seeds the working set with the
  // previous solve's active constraints — but only those actually active at
  // the starting point, since holding a slack constraint as an equality
  // would let the solver terminate at a point violating complementary
  // slackness.
  std::vector<std::size_t> working;  // indices of constraints held active
  if (warm != nullptr) {
    for (std::size_t i : warm->working) {
      if (i >= a.rows()) continue;
      if (std::find(working.begin(), working.end(), i) != working.end())
        continue;
      double a_x = 0.0;
      for (std::size_t j = 0; j < n; ++j) a_x += a(i, j) * res.x[j];
      if (std::abs(a_x - b[i]) <= 1e2 * opts.constraint_tol * (1.0 + std::abs(b[i])))
        working.push_back(i);
    }
  }
  Vector p, lambda;
  Vector g(n);  // gradient scratch, reused across iterations
  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    res.iterations = iter + 1;
    multiply_into(h, res.x, g);
    g += f;
    if (!solve_eqp(h, g, a, working, p, lambda)) {
      // Dependent working set (can happen right after adding a blocking
      // constraint parallel to existing ones): drop the newest member.
      EUCON_ASSERT(!working.empty(), "singular KKT with empty working set");
      working.pop_back();
      continue;
    }

    if (p.norm_inf() <= opts.step_tol * (1.0 + res.x.norm_inf())) {
      // Stationary on the working set: check multipliers.
      int most_negative = -1;
      double worst = -opts.multiplier_tol * (1.0 + lambda.norm_inf());
      for (std::size_t k = 0; k < working.size(); ++k) {
        if (lambda[k] < worst) {
          worst = lambda[k];
          most_negative = eucon::narrow<int>(k);
        }
      }
      if (most_negative < 0) {
        res.status = Status::kOptimal;
        res.objective = objective_value(h_in, f, res.x);
        if (warm != nullptr) warm->working = working;
        EUCON_CHECK_FINITE_VEC("solve_qp result", res.x);
        return res;
      }
      working.erase(working.begin() + most_negative);
      continue;
    }

    // Line search toward x + p, blocked by inactive constraints.
    double alpha = 1.0;
    int blocking = -1;
    for (std::size_t i = 0; i < a.rows(); ++i) {
      if (std::find(working.begin(), working.end(), i) != working.end())
        continue;
      double a_p = 0.0, a_x = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        a_p += a(i, j) * p[j];
        a_x += a(i, j) * res.x[j];
      }
      if (a_p <= 1e-13) continue;  // moving away or parallel
      const double room = std::max(0.0, b[i] - a_x);
      const double step = room / a_p;
      if (step < alpha) {
        alpha = step;
        blocking = eucon::narrow<int>(i);
      }
    }

    if (alpha > 0.0) linalg::add_scaled(res.x, alpha, p);
    if (blocking >= 0) working.push_back(static_cast<std::size_t>(blocking));
  }

  res.status = Status::kMaxIterations;
  res.objective = objective_value(h_in, f, res.x);
  EUCON_CHECK_FINITE_VEC("solve_qp result", res.x);
  return res;
}

Result find_feasible_point(const Matrix& a, const Vector& b,
                           const Options& opts) {
  const std::size_t n = a.cols();
  const std::size_t m = a.rows();
  Result out;
  if (m == 0) {
    out.x = Vector(n);
    out.status = Status::kOptimal;
    return out;
  }

  // Auxiliary QP over z = [x; s]:
  //   min 0.5*eps*||x||^2 + 0.5*||s||^2
  //   s.t. A x - s <= b,  -s <= 0
  // (x = 0, s_i = max(0, -b_i)) is always feasible; at the optimum s is the
  // (least-squares) constraint violation, which is 0 iff Ax <= b is feasible.
  const double eps = 1e-8;
  Matrix h(n + m, n + m);
  for (std::size_t j = 0; j < n; ++j) h(j, j) = eps;
  for (std::size_t i = 0; i < m; ++i) h(n + i, n + i) = 1.0;
  Vector f(n + m);

  Matrix aa(2 * m, n + m);
  Vector bb(2 * m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) aa(i, j) = a(i, j);
    aa(i, n + i) = -1.0;
    bb[i] = b[i];
    aa(m + i, n + i) = -1.0;
    bb[m + i] = 0.0;
  }
  Vector z0(n + m);
  for (std::size_t i = 0; i < m; ++i) z0[n + i] = std::max(0.0, -b[i]);

  Options aux = opts;
  aux.max_iterations = std::max(opts.max_iterations, 2000);
  const Result aux_res = solve_qp(h, f, aa, bb, &z0, aux);

  Vector x(n);
  for (std::size_t j = 0; j < n; ++j) x[j] = aux_res.x[j];
  out.x = x;
  out.iterations = aux_res.iterations;
  const double viol = max_violation(a, b, x);
  // The auxiliary problem shrinks but never exactly zeroes tiny violations
  // (eps-regularized); accept anything within a loose multiple of the
  // feasibility tolerance.
  out.status = viol <= 1e3 * opts.constraint_tol ? Status::kOptimal
                                                 : Status::kInfeasible;
  return out;
}

}  // namespace eucon::qp
