// Convex quadratic programming via the primal active-set method.
//
// Solves   min_x  0.5 x'Hx + f'x   subject to   A x <= b
// with H symmetric positive semidefinite (a small diagonal regularization
// keeps the KKT systems well posed). This is the same algorithm family
// (active set, Gill–Murray–Wright) that MATLAB's lsqlin used at the time of
// the paper.
//
// The working-set subproblems are solved through the full KKT system with
// LU; problem sizes in EUCON are small (tens of variables/constraints), so
// robustness is preferred over factorization updates. All per-iteration
// state lives in a caller-owned QpWorkspace sized by the maximum problem
// shape, so a steady-state solve performs zero heap allocations.
#pragma once

#include <cstddef>
#include <vector>

#include "common/annotations.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace eucon::qp {

struct Options {
  int max_iterations = 1000;
  double constraint_tol = 1e-9;   // feasibility tolerance on A x <= b
  // Dual tolerance for optimality, relative to the multiplier magnitudes.
  double multiplier_tol = 1e-8;
  // A step p with ||p||_inf <= step_tol * (1 + ||x||_inf) counts as zero
  // (KKT solves leave round-off noise in p at the optimum).
  double step_tol = 1e-8;
  double regularization = 1e-9;   // added to diag(H)
};

enum class Status {
  kOptimal,        // KKT-optimal point found
  kInfeasible,     // constraints have no solution (phase-1 failed)
  kMaxIterations,  // iteration limit; x is the best feasible iterate
};

struct Result {
  linalg::Vector x;
  Status status = Status::kMaxIterations;
  // Total active-set iterations, including any phase-1 feasibility solve.
  int iterations = 0;
  double objective = 0.0;  // 0.5 x'Hx + f'x at the returned x
};

// Carries the active working set from one solve to the next. A sequence of
// closely-related QPs (the MPC's receding-horizon instances) tends to keep
// the same constraints active; seeding the working set from the previous
// period's solution skips the iterations that would rediscover it. On
// entry, indices are kept only where the constraint is actually active at
// the starting point (anything else would break complementary slackness);
// on exit the final working set is written back — on every exit path, so a
// kMaxIterations result still leaves the warm start consistent with the
// returned iterate. An empty set is always a valid (cold) start.
struct WarmStart {
  std::vector<std::size_t> working;
};

// Persistent scratch for solve_qp_into. Every buffer is preallocated to the
// maximum shape reserve() has seen — including the phase-1 auxiliary problem
// over z = [x; s], which has vars + cons variables and 2*cons constraints —
// so a solve within those bounds never touches the heap. reserve() is
// growth-only; call it at setup / model-rebuild time, off the realtime path.
//
// The underscore-free members are solver internals: owned by solve_qp_into,
// valid only during a solve, and not part of the public surface.
struct QpWorkspace {
  QpWorkspace() = default;

  // Sizes the workspace for problems with up to `vars` variables and `cons`
  // inequality constraints (phase-1 headroom included). Growth-only.
  void reserve(std::size_t vars, std::size_t cons);

  std::size_t max_vars() const { return max_vars_; }
  std::size_t max_cons() const { return max_cons_; }

  std::size_t max_vars_ = 0;
  std::size_t max_cons_ = 0;

  // Main-loop scratch (live dimensions set per solve / per iteration).
  linalg::Matrix h_reg;   // regularized Hessian copy, n×n live
  linalg::Matrix kkt;     // KKT system, (n+w)×(n+w) live
  linalg::Vector rhs;     // KKT right-hand side
  linalg::Vector sol;     // KKT solution [p; lambda]
  linalg::Vector g;       // gradient H x + f (and objective scratch)
  linalg::Vector p;       // step
  linalg::Vector lambda;  // working-set multipliers
  std::vector<std::size_t> working;     // fixed-capacity index buffer; the
                                        // live prefix is the working set
  std::vector<unsigned char> in_working;  // per-constraint membership flags
  std::vector<std::size_t> piv;         // LU row permutation

  // Phase-1 scratch: the auxiliary problem and its result.
  linalg::Matrix aux_h;
  linalg::Matrix aux_a;
  linalg::Vector aux_f;
  linalg::Vector aux_b;
  linalg::Vector aux_z0;
  Result aux_result;
};

// Solves the QP into caller-owned storage. If `x0` is non-null it must be
// feasible (within constraint_tol) and is used as the starting point;
// otherwise an internal phase-1 problem computes a feasible start (or proves
// infeasibility). A may have zero rows (unconstrained problem). `ws` must
// have been reserved for at least (f.size(), a.rows()); `out.x` is reused as
// scratch across calls, so repeated solves of same-shaped problems perform
// no heap allocation at all.
void solve_qp_into(const linalg::Matrix& h, const linalg::Vector& f,
                   const linalg::Matrix& a, const linalg::Vector& b,
                   const linalg::Vector* x0, const Options& opts,
                   WarmStart* warm, QpWorkspace& ws, Result& out)
    EUCON_REALTIME;

// One-shot convenience wrapper: allocates a workspace per call.
Result solve_qp(const linalg::Matrix& h, const linalg::Vector& f,
                const linalg::Matrix& a, const linalg::Vector& b,
                const linalg::Vector* x0 = nullptr, const Options& opts = {},
                WarmStart* warm = nullptr);

// Finds any x with A x <= b (phase-1). Status is kOptimal on success with
// the point in `x`, kInfeasible otherwise.
Result find_feasible_point(const linalg::Matrix& a, const linalg::Vector& b,
                           const Options& opts = {});

// Maximum violation max_i (a_i x - b_i), or 0 when A has no rows.
double max_violation(const linalg::Matrix& a, const linalg::Vector& b,
                     const linalg::Vector& x);

}  // namespace eucon::qp
