// Convex quadratic programming via the primal active-set method.
//
// Solves   min_x  0.5 x'Hx + f'x   subject to   A x <= b
// with H symmetric positive semidefinite (a small diagonal regularization
// keeps the KKT systems well posed). This is the same algorithm family
// (active set, Gill–Murray–Wright) that MATLAB's lsqlin used at the time of
// the paper.
//
// The working-set subproblems are solved through the full KKT system with
// LU; problem sizes in EUCON are small (tens of variables/constraints), so
// robustness is preferred over factorization updates.
#pragma once

#include <cstddef>
#include <vector>

#include "common/annotations.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace eucon::qp {

struct Options {
  int max_iterations = 1000;
  double constraint_tol = 1e-9;   // feasibility tolerance on A x <= b
  // Dual tolerance for optimality, relative to the multiplier magnitudes.
  double multiplier_tol = 1e-8;
  // A step p with ||p||_inf <= step_tol * (1 + ||x||_inf) counts as zero
  // (KKT solves leave round-off noise in p at the optimum).
  double step_tol = 1e-8;
  double regularization = 1e-9;   // added to diag(H)
};

enum class Status {
  kOptimal,        // KKT-optimal point found
  kInfeasible,     // constraints have no solution (phase-1 failed)
  kMaxIterations,  // iteration limit; x is the best feasible iterate
};

struct Result {
  linalg::Vector x;
  Status status = Status::kMaxIterations;
  int iterations = 0;
  double objective = 0.0;  // 0.5 x'Hx + f'x at the returned x
};

// Carries the active working set from one solve to the next. A sequence of
// closely-related QPs (the MPC's receding-horizon instances) tends to keep
// the same constraints active; seeding the working set from the previous
// period's solution skips the iterations that would rediscover it. On
// entry, indices are kept only where the constraint is actually active at
// the starting point (anything else would break complementary slackness);
// on exit the final working set is written back. An empty set is always a
// valid (cold) start.
struct WarmStart {
  std::vector<std::size_t> working;
};

// Solves the QP. If `x0` is non-null it must be feasible (within
// constraint_tol) and is used as the starting point; otherwise an internal
// phase-1 problem computes a feasible start (or proves infeasibility).
// A may have zero rows (unconstrained problem).
//
// Hatched for the realtime lint: the active-set iteration allocates KKT
// workspaces sized by the working set, which changes shape between
// iterations. It runs on the EUCON_REALTIME path only when the cached-QR
// fast path misses (a transient, not the steady state); eliminating its
// allocations needs a workspace-reuse rewrite tracked in ROADMAP.md.
Result solve_qp(const linalg::Matrix& h, const linalg::Vector& f,
                const linalg::Matrix& a, const linalg::Vector& b,
                const linalg::Vector* x0 = nullptr, const Options& opts = {},
                WarmStart* warm = nullptr)
    EUCON_ALLOC_OK("KKT workspaces resize with the working set; QP path is off the steady state");

// Finds any x with A x <= b (phase-1). Status is kOptimal on success with
// the point in `x`, kInfeasible otherwise.
Result find_feasible_point(const linalg::Matrix& a, const linalg::Vector& b,
                           const Options& opts = {});

// Maximum violation max_i (a_i x - b_i), or 0 when A has no rows.
double max_violation(const linalg::Matrix& a, const linalg::Vector& b,
                     const linalg::Vector& x);

}  // namespace eucon::qp
