#include "qp/lsqlin.h"

#include "common/check.h"

namespace eucon::qp {

using linalg::Matrix;
using linalg::Vector;

LsqlinResult lsqlin(const LsqlinProblem& prob, const Vector* x0,
                    const Options& opts) {
  const std::size_t n = prob.c.cols();
  EUCON_REQUIRE(prob.c.rows() == prob.d.size(), "lsqlin: C/d size mismatch");
  EUCON_REQUIRE(prob.lb.empty() || prob.lb.size() == n, "lsqlin: lb size");
  EUCON_REQUIRE(prob.ub.empty() || prob.ub.size() == n, "lsqlin: ub size");
  EUCON_CHECK_FINITE_MAT("lsqlin input C", prob.c);
  EUCON_CHECK_FINITE_VEC("lsqlin input d", prob.d);

  // 0.5 x'Hx + f'x with H = 2 C'C, f = -2 C'd reproduces ||Cx-d||^2 up to
  // the constant d'd.
  Matrix h = linalg::gram(prob.c);
  h *= 2.0;
  Vector f = linalg::transpose_times(prob.c, prob.d);
  f *= -2.0;

  // Fold the box constraints into the inequality system.
  std::size_t extra = 0;
  if (!prob.lb.empty()) extra += n;
  if (!prob.ub.empty()) extra += n;
  Matrix a(prob.a.rows() + extra, n);
  Vector b(prob.a.rows() + extra);
  if (prob.a.rows() > 0) {
    EUCON_REQUIRE(prob.a.cols() == n, "lsqlin: A column mismatch");
    a.set_block(0, 0, prob.a);
    for (std::size_t i = 0; i < prob.a.rows(); ++i) b[i] = prob.b[i];
  }
  std::size_t row = prob.a.rows();
  if (!prob.ub.empty()) {
    for (std::size_t j = 0; j < n; ++j, ++row) {
      a(row, j) = 1.0;
      b[row] = prob.ub[j];
    }
  }
  if (!prob.lb.empty()) {
    for (std::size_t j = 0; j < n; ++j, ++row) {
      a(row, j) = -1.0;
      b[row] = -prob.lb[j];
    }
  }

  const Result qp_res = solve_qp(h, f, a, b, x0, opts);
  LsqlinResult out;
  out.x = qp_res.x;
  out.status = qp_res.status;
  out.iterations = qp_res.iterations;
  if (!out.x.empty()) {
    const Vector r = prob.c * out.x - prob.d;
    out.residual_norm = r.norm2();
  }
  EUCON_CHECK_FINITE_VEC("lsqlin result", out.x);
  return out;
}

LsqlinSolver::LsqlinSolver(linalg::Matrix c)
    : c_(std::move(c)), qr_(c_), h_(linalg::gram(c_)) {
  h_ *= 2.0;
}

void LsqlinSolver::reset(linalg::Matrix c) {
  c_ = std::move(c);
  qr_ = linalg::Qr(c_);
  linalg::gram_into(c_, h_);
  h_ *= 2.0;
}

LsqlinResult LsqlinSolver::solve(const Vector& d, const Matrix& a,
                                 const Vector& b, const Vector* x0,
                                 const Options& opts, WarmStart* warm) {
  ws_.reserve(c_.cols(), a.rows());  // growth-only; no-op across same shapes
  LsqlinResult out;
  solve_into(d, a, b, x0, opts, warm, ws_, out);
  return out;
}

void LsqlinSolver::solve_into(const Vector& d, const Matrix& a,
                              const Vector& b, const Vector* x0,
                              const Options& opts, WarmStart* warm,
                              QpWorkspace& ws, LsqlinResult& out) {
  EUCON_REQUIRE(d.size() == c_.rows(), "LsqlinSolver: C/d size mismatch");
  EUCON_REQUIRE(a.rows() == b.size(), "LsqlinSolver: A/b size mismatch");
  EUCON_REQUIRE(a.rows() == 0 || a.cols() == c_.cols(),
                "LsqlinSolver: A column mismatch");
  EUCON_CHECK_FINITE_VEC("LsqlinSolver input d", d);

  // Fast path: the unconstrained minimizer from the cached QR. Feasible ⇒
  // optimal (the constrained optimum can never beat the unconstrained one).
  // solve_least_squares_into reuses out.x and the y_ scratch, so the
  // steady-state period performs no heap allocation at all.
  if (qr_.full_rank()) {
    qr_.solve_least_squares_into(d, y_, out.x);
    if (max_violation(a, b, out.x) <= opts.constraint_tol) {
      out.status = Status::kOptimal;
      out.iterations = 0;
      out.fast_path = true;
      multiply_into(c_, out.x, resid_);
      resid_ -= d;
      out.residual_norm = resid_.norm2();
      // The working set at an interior optimum is empty; hand that to the
      // next solve rather than a stale set.
      if (warm != nullptr) warm->working.clear();
      return;
    }
  }

  linalg::transpose_times_into(c_, d, f_);
  f_ *= -2.0;
  solve_qp_into(h_, f_, a, b, x0, opts, warm, ws, qp_scratch_);
  out.x = qp_scratch_.x;
  out.status = qp_scratch_.status;
  out.iterations = qp_scratch_.iterations;
  out.fast_path = false;
  if (!out.x.empty()) {
    multiply_into(c_, out.x, resid_);
    resid_ -= d;
    out.residual_norm = resid_.norm2();
  } else {
    out.residual_norm = 0.0;  // don't carry a stale norm across reuses
  }
  EUCON_CHECK_FINITE_VEC("LsqlinSolver result", out.x);
}

}  // namespace eucon::qp
