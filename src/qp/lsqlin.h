// Constrained linear least squares, MATLAB-lsqlin style:
//
//   min_x ||C x - d||_2^2   subject to   A x <= b,  lb <= x <= ub.
//
// This is the solver the EUCON controller calls every sampling period (the
// paper uses MATLAB's lsqlin; this is our from-scratch replacement built on
// the active-set QP).
#pragma once

#include "qp/active_set.h"

namespace eucon::qp {

struct LsqlinProblem {
  linalg::Matrix c;
  linalg::Vector d;
  linalg::Matrix a;   // may have 0 rows
  linalg::Vector b;
  linalg::Vector lb;  // empty = unbounded below
  linalg::Vector ub;  // empty = unbounded above
};

struct LsqlinResult {
  linalg::Vector x;
  Status status = Status::kMaxIterations;
  int iterations = 0;
  double residual_norm = 0.0;  // ||C x - d||_2 at the solution
};

// Solves the problem. `x0`, when given, must satisfy all constraints and is
// used as the active-set starting point.
LsqlinResult lsqlin(const LsqlinProblem& prob,
                    const linalg::Vector* x0 = nullptr,
                    const Options& opts = {});

}  // namespace eucon::qp
