// Constrained linear least squares, MATLAB-lsqlin style:
//
//   min_x ||C x - d||_2^2   subject to   A x <= b,  lb <= x <= ub.
//
// This is the solver the EUCON controller calls every sampling period (the
// paper uses MATLAB's lsqlin; this is our from-scratch replacement built on
// the active-set QP).
#pragma once

#include "common/annotations.h"
#include "linalg/qr.h"
#include "qp/active_set.h"

namespace eucon::qp {

struct LsqlinProblem {
  linalg::Matrix c;
  linalg::Vector d;
  linalg::Matrix a;   // may have 0 rows
  linalg::Vector b;
  linalg::Vector lb;  // empty = unbounded below
  linalg::Vector ub;  // empty = unbounded above
};

struct LsqlinResult {
  linalg::Vector x;
  Status status = Status::kMaxIterations;
  int iterations = 0;
  double residual_norm = 0.0;  // ||C x - d||_2 at the solution
  // True when LsqlinSolver accepted the cached-QR unconstrained minimizer
  // without running the active-set QP (always false for one-shot lsqlin()).
  bool fast_path = false;
};

// Solves the problem. `x0`, when given, must satisfy all constraints and is
// used as the active-set starting point.
LsqlinResult lsqlin(const LsqlinProblem& prob,
                    const linalg::Vector* x0 = nullptr,
                    const Options& opts = {});

// Repeated-solve variant for the controller hot path: min ||C x - d||_2^2
// s.t. A x <= b, where C is fixed across many solves but d/A/b change every
// sampling period. The constructor factorizes C once — Householder QR for
// the unconstrained fast path, plus the QP Hessian H = 2 C'C — instead of
// lsqlin()'s per-call Gram product and matrix copy. Box constraints are not
// folded here; callers encode them as rows of A (the MPC constraint builder
// already does).
//
// Per solve:
//   1. If the cached-QR unconstrained minimizer satisfies A x <= b it is
//      returned directly (0 active-set iterations) — the common steady-state
//      case for the MPC once utilization has converged.
//   2. Otherwise the active-set QP runs with the cached Hessian; `warm`
//      (optional) carries the working set between consecutive solves.
class LsqlinSolver {
 public:
  explicit LsqlinSolver(linalg::Matrix c);

  // Re-factorizes for a new C (model / allocation / gain change).
  void reset(linalg::Matrix c);

  const linalg::Matrix& c() const { return c_; }

  // `x0`, when given, must satisfy A x <= b and seeds the active set.
  LsqlinResult solve(const linalg::Vector& d, const linalg::Matrix& a,
                     const linalg::Vector& b,
                     const linalg::Vector* x0 = nullptr,
                     const Options& opts = {}, WarmStart* warm = nullptr);

  // Allocation-free variant for per-period callers: writes into a
  // caller-owned result whose x is reused as scratch across solves. Both
  // the cached-QR fast path and the active-set QP path perform zero heap
  // allocations in steady state — the QP runs entirely inside `ws`, which
  // the caller owns and must have reserved for (c.cols(), a.rows()).
  void solve_into(const linalg::Vector& d, const linalg::Matrix& a,
                  const linalg::Vector& b, const linalg::Vector* x0,
                  const Options& opts, WarmStart* warm, QpWorkspace& ws,
                  LsqlinResult& out) EUCON_REALTIME;

 private:
  linalg::Matrix c_;
  linalg::Qr qr_;      // cached factorization of C
  linalg::Matrix h_;   // cached 2 C'C (the QP Hessian)
  linalg::Vector f_;   // scratch: -2 C'd
  linalg::Vector resid_;  // scratch: C x - d
  linalg::Vector y_;      // scratch: Q^T d for the fast path
  Result qp_scratch_;  // persistent QP result, x reused across solves
  QpWorkspace ws_;     // workspace for the solve() convenience overload
};

}  // namespace eucon::qp
