#include "rts/analysis.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace eucon::rts {

double liu_layland_bound(int n) {
  EUCON_REQUIRE(n >= 1, "bound needs at least one task");
  const double nn = n;
  return nn * (std::pow(2.0, 1.0 / nn) - 1.0);
}

double total_utilization(const std::vector<PeriodicLoad>& loads) {
  double u = 0.0;
  for (const auto& l : loads) {
    EUCON_REQUIRE(l.exec > 0.0 && l.period > 0.0, "loads must be positive");
    u += l.exec / l.period;
  }
  return u;
}

bool hyperbolic_check(const std::vector<PeriodicLoad>& loads) {
  double prod = 1.0;
  for (const auto& l : loads) {
    EUCON_REQUIRE(l.exec > 0.0 && l.period > 0.0, "loads must be positive");
    prod *= l.exec / l.period + 1.0;
  }
  return prod <= 2.0 + 1e-12;
}

bool edf_schedulable(const std::vector<PeriodicLoad>& loads) {
  return total_utilization(loads) <= 1.0 + 1e-12;
}

std::vector<std::optional<double>> rms_response_times(
    const std::vector<PeriodicLoad>& loads) {
  const std::size_t n = loads.size();
  // Priority order: shorter period first; stable to keep input order among
  // equals (matching the simulator's task-id tie-break for equal periods).
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return loads[a].period < loads[b].period;
                   });

  std::vector<std::optional<double>> result(n);
  for (std::size_t rank = 0; rank < n; ++rank) {
    const PeriodicLoad& me = loads[order[rank]];
    EUCON_REQUIRE(me.exec > 0.0 && me.period > 0.0, "loads must be positive");
    // Fixed-point iteration: R = C + sum_{hp} ceil(R / T_j) C_j.
    double r = me.exec;
    for (int iter = 0; iter < 1000; ++iter) {
      double next = me.exec;
      for (std::size_t h = 0; h < rank; ++h) {
        const PeriodicLoad& hp = loads[order[h]];
        next += std::ceil(r / hp.period - 1e-12) * hp.exec;
      }
      if (next > me.period + 1e-9) {
        r = -1.0;  // unschedulable
        break;
      }
      if (std::abs(next - r) < 1e-9) {
        r = next;
        break;
      }
      r = next;
    }
    if (r >= 0.0) result[order[rank]] = r;
  }
  return result;
}

bool rms_schedulable(const std::vector<PeriodicLoad>& loads) {
  for (const auto& r : rms_response_times(loads))
    if (!r.has_value()) return false;
  return true;
}

}  // namespace eucon::rts
