// Classical fixed-priority schedulability analysis, used to cross-check
// the simulator against theory and to pick utilization set points.
//
// The paper's end-to-end scheduling approach (§3.3) guarantees subtask
// deadlines by keeping each processor under a schedulable utilization
// bound; this module provides those bounds (Liu–Layland, the hyperbolic
// refinement, EDF) and exact worst-case response-time analysis (RTA) for
// synchronous periodic task sets under preemptive fixed-priority
// scheduling.
#pragma once

#include <optional>
#include <vector>

namespace eucon::rts {

// One priority-ordered periodic "job source" on one processor: execution
// time and period in the same (arbitrary) unit, deadline = period.
struct PeriodicLoad {
  double exec = 0.0;
  double period = 0.0;
};

// Liu–Layland bound n(2^{1/n} - 1) (paper eq. 13).
double liu_layland_bound(int n);

// Hyperbolic bound (Bini–Buttazzo): the set is RMS-schedulable if
// prod(U_i + 1) <= 2. Sharper than Liu–Layland.
bool hyperbolic_check(const std::vector<PeriodicLoad>& loads);

// Total utilization of a load set.
double total_utilization(const std::vector<PeriodicLoad>& loads);

// EDF: schedulable iff total utilization <= 1 (implicit deadlines).
bool edf_schedulable(const std::vector<PeriodicLoad>& loads);

// Exact RTA for preemptive rate-monotonic fixed priorities (deadline =
// period): worst-case response time of each load, or nullopt if the
// iteration exceeds the period (that load is unschedulable).
// Loads may be passed in any order; RMS priorities (shorter period first,
// FIFO between equal periods in input order) are applied internally.
std::vector<std::optional<double>> rms_response_times(
    const std::vector<PeriodicLoad>& loads);

// True when every load's worst-case response time fits in its period.
bool rms_schedulable(const std::vector<PeriodicLoad>& loads);

}  // namespace eucon::rts
