#include "rts/deadline_stats.h"

#include "common/check.h"

namespace eucon::rts {

void DeadlineStats::on_instance_released(int task) {
  ++per_task_.at(static_cast<std::size_t>(task)).instances_released;
}

void DeadlineStats::on_subtask_completed(int task, Ticks completion,
                                         Ticks sub_deadline) {
  auto& c = per_task_.at(static_cast<std::size_t>(task));
  ++c.subtask_jobs_completed;
  if (completion > sub_deadline) ++c.subtask_misses;
}

void DeadlineStats::on_instance_completed(int task, Ticks completion,
                                          Ticks abs_deadline,
                                          Ticks instance_release) {
  auto& c = per_task_.at(static_cast<std::size_t>(task));
  ++c.instances_completed;
  if (completion > abs_deadline) ++c.e2e_misses;
  c.response_time_units.add(ticks_to_units(completion - instance_release));
}

double DeadlineStats::e2e_miss_ratio() const {
  std::uint64_t completed = 0, missed = 0;
  for (const auto& c : per_task_) {
    completed += c.instances_completed;
    missed += c.e2e_misses;
  }
  return completed ? static_cast<double>(missed) / static_cast<double>(completed)
                   : 0.0;
}

double DeadlineStats::subtask_miss_ratio() const {
  std::uint64_t completed = 0, missed = 0;
  for (const auto& c : per_task_) {
    completed += c.subtask_jobs_completed;
    missed += c.subtask_misses;
  }
  return completed ? static_cast<double>(missed) / static_cast<double>(completed)
                   : 0.0;
}

std::uint64_t DeadlineStats::total_completed_instances() const {
  std::uint64_t completed = 0;
  for (const auto& c : per_task_) completed += c.instances_completed;
  return completed;
}

}  // namespace eucon::rts
