// Deadline accounting for end-to-end tasks (soft deadlines, paper §3.1).
//
// Each task instance carries an end-to-end deadline d_i = n_i / r_i(at
// release); each subtask job carries a subdeadline equal to its period
// (paper §7.1's even deadline division). Deadlines are soft: misses are
// counted, never enforced.
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "common/ticks.h"

namespace eucon::rts {

struct TaskDeadlineCounters {
  std::uint64_t instances_released = 0;
  std::uint64_t instances_completed = 0;
  std::uint64_t e2e_misses = 0;
  std::uint64_t subtask_jobs_completed = 0;
  std::uint64_t subtask_misses = 0;
  RunningStats response_time_units;  // end-to-end response times
};

class DeadlineStats {
 public:
  explicit DeadlineStats(std::size_t num_tasks) : per_task_(num_tasks) {}

  void on_instance_released(int task);
  void on_subtask_completed(int task, Ticks completion, Ticks sub_deadline);
  void on_instance_completed(int task, Ticks completion, Ticks abs_deadline,
                             Ticks instance_release);

  const TaskDeadlineCounters& task(std::size_t i) const { return per_task_[i]; }
  std::size_t num_tasks() const { return per_task_.size(); }

  // Fraction of completed instances that missed their end-to-end deadline
  // (0 when nothing completed).
  double e2e_miss_ratio() const;
  double subtask_miss_ratio() const;
  std::uint64_t total_completed_instances() const;

 private:
  std::vector<TaskDeadlineCounters> per_task_;
};

}  // namespace eucon::rts
