#include "rts/etf.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace eucon::rts {

EtfProfile EtfProfile::constant(double factor) {
  EUCON_REQUIRE(factor > 0.0, "execution-time factor must be positive");
  EtfProfile p;
  p.steps_.push_back({0, factor});
  return p;
}

EtfProfile EtfProfile::steps(std::vector<std::pair<double, double>> steps) {
  EUCON_REQUIRE(!steps.empty(), "etf profile needs at least one step");
  EUCON_REQUIRE(steps.front().first == 0.0, "etf profile must start at time 0");  // eucon-lint: allow(float-equality)
  EtfProfile p;
  Ticks prev = -1;
  for (const auto& [time_units, factor] : steps) {
    EUCON_REQUIRE(factor > 0.0, "execution-time factor must be positive");
    const Ticks start = units_to_ticks(time_units);
    EUCON_REQUIRE(start > prev, "etf profile steps must be strictly increasing");
    prev = start;
    p.steps_.push_back({start, factor});
  }
  return p;
}

double EtfProfile::factor_at(Ticks t) const {
  // Last step whose start is <= t.
  double f = steps_.front().factor;
  for (const auto& s : steps_) {
    if (s.start <= t)
      f = s.factor;
    else
      break;
  }
  return f;
}

void ExecModelParams::validate() const {
  EUCON_REQUIRE(jitter >= 0.0 && jitter < 1.0, "jitter must be in [0, 1)");
  if (distribution == ExecDistribution::kBimodal) {
    EUCON_REQUIRE(burst_prob > 0.0 && burst_prob < 1.0,
                  "burst_prob must be in (0, 1)");
    EUCON_REQUIRE(burst_factor > 1.0, "burst_factor must exceed 1");
    EUCON_REQUIRE(burst_prob * burst_factor < 1.0,
                  "burst_prob * burst_factor must stay below 1 (unit mean)");
  }
}

ExecutionTimeModel::ExecutionTimeModel(EtfProfile profile,
                                       ExecModelParams params, Rng rng)
    : profile_(std::move(profile)), params_(params), rng_(rng) {
  params_.validate();
}

ExecutionTimeModel::ExecutionTimeModel(EtfProfile profile, double jitter,
                                       Rng rng)
    : ExecutionTimeModel(
          std::move(profile),
          [&] {
            ExecModelParams p;
            p.jitter = jitter;
            return p;
          }(),
          rng) {}

double ExecutionTimeModel::multiplier() {
  switch (params_.distribution) {
    case ExecDistribution::kUniform:
      return params_.jitter == 0.0  // eucon-lint: allow(float-equality)
                 ? 1.0
                 : rng_.uniform(1.0 - params_.jitter, 1.0 + params_.jitter);
    case ExecDistribution::kExponential: {
      // Inverse transform; guard the open interval to avoid -log(0).
      const double u = std::max(rng_.next_double(), 1e-12);
      return -std::log(u);
    }
    case ExecDistribution::kBimodal: {
      if (rng_.next_double() < params_.burst_prob) return params_.burst_factor;
      return (1.0 - params_.burst_prob * params_.burst_factor) /
             (1.0 - params_.burst_prob);
    }
  }
  return 1.0;
}

Ticks ExecutionTimeModel::sample(double estimated_exec, Ticks t) {
  const double factor = profile_.factor_at(t);
  const Ticks exec = units_to_ticks(estimated_exec * factor * multiplier());
  return std::max<Ticks>(exec, 1);
}

}  // namespace eucon::rts
