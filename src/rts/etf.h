// Execution-time modeling (paper §7.1).
//
// Every subtask has a design-time estimate c_ij. The *actual* execution
// time of each job is  c_ij × etf(t) × J  where etf(t) is the (possibly
// time-varying) execution-time factor and J is a unit-mean uniform jitter
// on [1 - jitter, 1 + jitter]. With jitter = 0 execution times are exactly
// etf(t)·c_ij, which is how the SIMPLE experiments are described; MEDIUM
// uses "a uniform random distribution".
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/ticks.h"

namespace eucon::rts {

// Piecewise-constant execution-time-factor schedule.
class EtfProfile {
 public:
  // Constant factor for the whole run.
  static EtfProfile constant(double factor);
  // Steps: (start time in time units, factor), strictly increasing times;
  // the first step must start at 0.
  static EtfProfile steps(std::vector<std::pair<double, double>> steps);

  double factor_at(Ticks t) const;

 private:
  struct Step {
    Ticks start;
    double factor;
  };
  std::vector<Step> steps_;
};

// Shape of the per-job variation multiplier (always unit mean, so etf
// stays exactly the ratio of average actual to estimated execution time).
enum class ExecDistribution {
  kUniform,      // U[1 - jitter, 1 + jitter] (the default; MEDIUM's model)
  kExponential,  // Exp(1): memoryless service times (server workloads)
  kBimodal,      // mostly nominal, occasional bursts of burst_factor
};

struct ExecModelParams {
  ExecDistribution distribution = ExecDistribution::kUniform;
  // kUniform: half-width of the band, in [0, 1). Ignored by the others.
  double jitter = 0.0;
  // kBimodal: with probability burst_prob the multiplier is burst_factor;
  // otherwise it is (1 - burst_prob*burst_factor)/(1 - burst_prob), which
  // keeps the mean at exactly 1. Requires burst_prob*burst_factor < 1.
  double burst_prob = 0.1;
  double burst_factor = 3.0;

  void validate() const;
};

// Samples actual execution times for jobs.
class ExecutionTimeModel {
 public:
  ExecutionTimeModel(EtfProfile profile, ExecModelParams params, Rng rng);
  // Convenience: uniform distribution with the given jitter.
  ExecutionTimeModel(EtfProfile profile, double jitter, Rng rng);

  // Actual execution time (ticks, >= 1) for a job of a subtask whose
  // estimate is `estimated_exec` time units, released at time `t`.
  Ticks sample(double estimated_exec, Ticks t);

  double factor_at(Ticks t) const { return profile_.factor_at(t); }

 private:
  double multiplier();

  EtfProfile profile_;
  ExecModelParams params_;
  Rng rng_;
};

}  // namespace eucon::rts
