// Discrete-event core: event records and the time-ordered queue.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "common/ticks.h"

namespace eucon::rts {

enum class EventKind {
  kTaskRelease,     // periodic release of a task's first subtask
  kSubtaskRelease,  // release-guarded release of a downstream subtask
  kCompletion,      // a processor's running job may have finished
  kRateChange,      // the rate modulators apply a pending rate vector
};

struct Event {
  Ticks time = 0;
  std::uint64_t seq = 0;  // creation order; breaks ties at equal times
  EventKind kind = EventKind::kTaskRelease;
  // Payload (interpretation depends on kind):
  int task = -1;          // kTaskRelease / kSubtaskRelease
  int subtask = -1;       // kSubtaskRelease
  int processor = -1;     // kCompletion
  std::uint64_t gen = 0;  // kTaskRelease / kCompletion staleness check
  std::size_t payload = 0;  // kRateChange: index of the pending rate vector
};

struct EventAfter {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

// Min-queue on (time, seq). Events created earlier are processed earlier at
// equal timestamps, preserving causal order.
class EventQueue {
 public:
  void push(Event e) {
    e.seq = next_seq_++;
    queue_.push(e);
  }
  bool empty() const { return queue_.empty(); }
  const Event& top() const { return queue_.top(); }
  Event pop() {
    Event e = queue_.top();
    queue_.pop();
    return e;
  }
  std::size_t size() const { return queue_.size(); }

 private:
  std::priority_queue<Event, std::vector<Event>, EventAfter> queue_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace eucon::rts
