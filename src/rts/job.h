// A job: one invocation of one subtask.
#pragma once

#include <cstdint>

#include "common/ticks.h"

namespace eucon::rts {

struct Job {
  std::uint64_t id = 0;
  int task = 0;
  int subtask = 0;             // index within the task's chain
  std::uint64_t instance = 0;  // task-instance number (shared along the chain)

  Ticks instance_release = 0;  // release time of the instance's first subtask
  Ticks abs_deadline = 0;      // end-to-end absolute deadline of the instance
  Ticks sub_deadline = 0;      // this subtask's absolute subdeadline
  Ticks release_time = 0;

  Ticks exec_total = 0;  // sampled actual execution demand
  Ticks remaining = 0;   // demand not yet executed

  // Scheduling state (maintained by the Processor).
  // RMS: the task's current period. EDF: the absolute subdeadline.
  // Smaller = higher priority in both cases.
  Ticks priority_key = 0;
  std::uint64_t enqueue_seq = 0;  // FIFO tie-break within equal priorities
  bool started = false;           // has executed at least once (trace labels)
};

}  // namespace eucon::rts
