#include "rts/processor.h"

#include <algorithm>

#include "common/check.h"

namespace eucon::rts {

bool Processor::ByPriority::operator()(const Job* a, const Job* b) const {
  if (a->priority_key != b->priority_key) return a->priority_key > b->priority_key;
  if (a->task != b->task) return a->task > b->task;
  if (a->subtask != b->subtask) return a->subtask > b->subtask;
  return a->enqueue_seq > b->enqueue_seq;
}

Processor::Processor(int id, EventQueue* queue, TraceLog* trace)
    : id_(id), queue_(queue), trace_(trace) {
  EUCON_REQUIRE(queue != nullptr, "processor needs an event queue");
}

void Processor::trace_event(TraceKind kind, const Job& job, Ticks now) {
  if (trace_ == nullptr) return;
  TraceRecord rec;
  rec.time = now;
  rec.kind = kind;
  rec.job_id = job.id;
  rec.task = job.task;
  rec.subtask = job.subtask;
  rec.processor = id_;
  trace_->record(rec);
}

void Processor::account_until(Ticks now) {
  EUCON_ASSERT(now >= last_account_, "time moved backwards in accounting");
  if (running_ != nullptr) {
    const Ticks executed = std::min(now - last_account_, running_->remaining);
    running_->remaining -= executed;
    window_busy_ += executed;
    total_busy_ += executed;
  }
  last_account_ = now;
}

Ticks Processor::take_window_busy() {
  const Ticks busy = window_busy_;
  window_busy_ = 0;
  return busy;
}

void Processor::schedule_completion(Ticks now) {
  Event e;
  e.time = now + running_->remaining;
  e.kind = EventKind::kCompletion;
  e.processor = id_;
  e.gen = ++gen_;
  queue_->push(e);
}

void Processor::dispatch(Ticks now) {
  // A running job with no demand left has finished *at this instant*; its
  // completion event (same tick, scheduled with the current generation) is
  // still pending in the queue. Leave it in place so completion is recorded
  // at the true finish time instead of preempting a finished job.
  if (running_ != nullptr && running_->remaining == 0) return;

  // Preempt only on *strictly* higher priority: within an equal priority
  // level the scheduler is non-preemptive (the tie-break keys order the
  // ready queue but never evict a running job).
  if (running_ != nullptr && !ready_.empty() &&
      ready_.front()->priority_key < running_->priority_key) {
    trace_event(TraceKind::kPreempt, *running_, now);
    ready_.push_back(running_);
    std::push_heap(ready_.begin(), ready_.end(), ByPriority{});
    running_ = nullptr;
  }
  if (running_ == nullptr && !ready_.empty()) {
    std::pop_heap(ready_.begin(), ready_.end(), ByPriority{});
    running_ = ready_.back();
    ready_.pop_back();
    trace_event(running_->started ? TraceKind::kResume : TraceKind::kStart,
                *running_, now);
    running_->started = true;
    schedule_completion(now);
  }
}

void Processor::enqueue(Job* job, Ticks now) {
  EUCON_REQUIRE(job != nullptr && job->remaining > 0, "enqueue needs a live job");
  account_until(now);
  job->enqueue_seq = next_enqueue_seq_++;
  trace_event(TraceKind::kRelease, *job, now);
  ready_.push_back(job);
  std::push_heap(ready_.begin(), ready_.end(), ByPriority{});
  dispatch(now);
}

Job* Processor::on_completion_event(std::uint64_t gen, Ticks now) {
  if (gen != gen_ || running_ == nullptr) return nullptr;  // stale
  account_until(now);
  EUCON_ASSERT(running_->remaining == 0,
               "current completion event fired before the job finished");
  Job* done = running_;
  trace_event(TraceKind::kCompletion, *done, now);
  running_ = nullptr;
  dispatch(now);
  return done;
}

void Processor::reprioritize(const std::function<Ticks(const Job&)>& key,
                             Ticks now) {
  account_until(now);
  for (Job* j : ready_) j->priority_key = key(*j);
  std::make_heap(ready_.begin(), ready_.end(), ByPriority{});
  if (running_ != nullptr) running_->priority_key = key(*running_);
  dispatch(now);
}

}  // namespace eucon::rts
