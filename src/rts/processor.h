// A single processor with a preemptive fixed-priority (RMS) scheduler and
// exact busy-time accounting.
//
// Priorities are rate monotonic: a job's priority key is its task's current
// period in ticks (smaller period = higher priority). Keys are snapshots;
// when the rate modulator changes task rates the simulator calls
// reprioritize() to refresh every queued job and re-evaluate preemption.
//
// Completion events are scheduled optimistically and validated by a
// generation counter: whenever a (new) job starts or resumes, a completion
// event carrying the current generation is emitted; any previously emitted
// event becomes stale.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/ticks.h"
#include "rts/event.h"
#include "rts/job.h"
#include "rts/trace.h"

namespace eucon::rts {

class Processor {
 public:
  // `trace` may be null (tracing disabled).
  Processor(int id, EventQueue* queue, TraceLog* trace = nullptr);

  // Adds a released job to the ready set, preempting if it outranks the
  // running job. The caller retains ownership of the job.
  void enqueue(Job* job, Ticks now);

  // Handles a completion event. Returns the completed job when the event is
  // current and the running job has exhausted its demand, nullptr when the
  // event is stale.
  Job* on_completion_event(std::uint64_t gen, Ticks now);

  // Refreshes every queued job's priority key via `key` and re-evaluates
  // preemption (called after a rate change).
  void reprioritize(const std::function<Ticks(const Job&)>& key, Ticks now);

  // Advances busy-time accounting up to `now` (idempotent).
  void account_until(Ticks now);

  // Busy ticks accumulated since the previous call (the utilization monitor
  // reads this once per sampling period). Callers should account_until()
  // the window edge first.
  Ticks take_window_busy();

  bool busy() const { return running_ != nullptr; }
  std::size_t ready_count() const { return ready_.size(); }
  Ticks total_busy() const { return total_busy_; }
  int id() const { return id_; }

 private:
  struct ByPriority {
    // Min-heap: true when a ranks *after* b.
    bool operator()(const Job* a, const Job* b) const;
  };

  void dispatch(Ticks now);
  void schedule_completion(Ticks now);
  void trace_event(TraceKind kind, const Job& job, Ticks now);

  int id_;
  EventQueue* queue_;
  TraceLog* trace_;
  std::vector<Job*> ready_;  // heap (ByPriority)
  Job* running_ = nullptr;
  Ticks last_account_ = 0;
  Ticks window_busy_ = 0;
  Ticks total_busy_ = 0;
  std::uint64_t gen_ = 0;
  std::uint64_t next_enqueue_seq_ = 0;
};

}  // namespace eucon::rts
