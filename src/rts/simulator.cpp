#include "rts/simulator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace eucon::rts {

Simulator::Simulator(SystemSpec spec, SimOptions options)
    : spec_(std::move(spec)),
      options_(std::move(options)),
      deadline_stats_(spec_.num_tasks()) {
  spec_.validate();
  EUCON_REQUIRE(options_.feedback_lane_delay >= 0.0,
                "feedback-lane delay must be non-negative");

  processors_.reserve(static_cast<std::size_t>(spec_.num_processors));
  for (int p = 0; p < spec_.num_processors; ++p)
    processors_.emplace_back(p, &queue_,
                             options_.enable_trace ? &trace_ : nullptr);

  const std::size_t m = spec_.num_tasks();
  rates_.resize(m);
  period_ticks_.resize(m);
  release_gen_.assign(m, 0);
  next_instance_.assign(m, 0);
  task_enabled_.assign(m, true);
  subtask_base_.resize(m);

  Rng base(options_.seed);
  std::size_t flat = 0;
  for (std::size_t i = 0; i < m; ++i) {
    rates_[i] = spec_.tasks[i].initial_rate;
    period_ticks_[i] = rate_to_period_ticks(rates_[i]);
    subtask_base_[i] = flat;
    const auto& subtasks = spec_.tasks[i].subtasks;
    double exec_sum = 0.0;
    for (const auto& sub : subtasks) exec_sum += sub.estimated_exec;
    ExecModelParams exec_params;
    exec_params.distribution = options_.exec_distribution;
    exec_params.jitter = options_.jitter;
    exec_params.burst_prob = options_.burst_prob;
    exec_params.burst_factor = options_.burst_factor;
    for (std::size_t j = 0; j < subtasks.size(); ++j, ++flat) {
      exec_models_.push_back(std::make_unique<ExecutionTimeModel>(
          options_.etf, exec_params, base.split(flat)));
      deadline_fraction_.push_back(
          options_.subdeadline_policy == SubdeadlinePolicy::kEvenByCount
              ? 1.0 / static_cast<double>(subtasks.size())
              : subtasks[j].estimated_exec / exec_sum);
    }
  }
  last_release_.assign(flat, kNeverTicks);
  pending_.resize(flat);

  // Initial releases: every task starts at time 0 (the paper's runs start
  // with all tasks active at their initial rates).
  for (std::size_t i = 0; i < m; ++i) {
    Event e;
    e.time = 0;
    e.kind = EventKind::kTaskRelease;
    e.task = static_cast<int>(i);
    e.gen = 0;
    queue_.push(e);
  }
}

Simulator::~Simulator() = default;

int Simulator::subtask_index(int task, int subtask) const {
  return eucon::narrow<int>(subtask_base_[static_cast<std::size_t>(task)] +
                            static_cast<std::size_t>(subtask));
}

void Simulator::run_until(Ticks t) {
  EUCON_REQUIRE(t >= now_, "run_until cannot move backwards");
  while (!queue_.empty() && queue_.top().time < t) {
    const Event e = queue_.pop();
    EUCON_ASSERT(e.time >= now_, "event queue produced an out-of-order event");
    now_ = e.time;
    handle(e);
  }
  now_ = t;
}

void Simulator::handle(const Event& e) {
  switch (e.kind) {
    case EventKind::kTaskRelease:
      on_task_release(e);
      break;
    case EventKind::kSubtaskRelease:
      on_subtask_release(e);
      break;
    case EventKind::kCompletion:
      on_completion(e);
      break;
    case EventKind::kRateChange:
      on_rate_change(e);
      break;
  }
}

Job* Simulator::make_job(int task, int subtask, std::uint64_t instance,
                         Ticks instance_release, Ticks abs_deadline,
                         Ticks release_time) {
  const std::size_t flat = static_cast<std::size_t>(subtask_index(task, subtask));
  const auto& sspec =
      spec_.tasks[static_cast<std::size_t>(task)].subtasks[static_cast<std::size_t>(subtask)];

  auto job = std::make_unique<Job>();
  job->id = next_job_id_++;
  job->task = task;
  job->subtask = subtask;
  job->instance = instance;
  job->instance_release = instance_release;
  job->abs_deadline = abs_deadline;
  // Subdeadline: this subtask's share of d_i = n_i / r_i, from the release
  // (even division makes this exactly one period, paper §7.1).
  const auto ni = static_cast<double>(
      spec_.tasks[static_cast<std::size_t>(task)].subtasks.size());
  job->sub_deadline =
      release_time + static_cast<Ticks>(std::llround(
                         deadline_fraction_[flat] * ni *
                         static_cast<double>(period_ticks(task))));
  job->release_time = release_time;
  job->exec_total = exec_models_[flat]->sample(sspec.estimated_exec, release_time);
  job->remaining = job->exec_total;
  job->priority_key = priority_key_for(*job);

  Job* raw = job.get();
  jobs_.emplace(raw->id, std::move(job));
  processors_[static_cast<std::size_t>(sspec.processor)].enqueue(raw, now_);
  return raw;
}

Ticks Simulator::priority_key_for(const Job& job) const {
  return options_.policy == SchedulingPolicy::kRateMonotonic
             ? period_ticks(job.task)
             : job.sub_deadline;
}

void Simulator::schedule_task_release(int task, Ticks not_before) {
  const auto t = static_cast<std::size_t>(task);
  const std::size_t flat0 = subtask_base_[t];
  Event rel;
  rel.time = last_release_[flat0] == kNeverTicks
                 ? not_before
                 : std::max(not_before, last_release_[flat0] + period_ticks_[t]);
  rel.kind = EventKind::kTaskRelease;
  rel.task = task;
  rel.gen = release_gen_[t];
  queue_.push(rel);
}

void Simulator::set_task_enabled(int task, bool enabled) {
  EUCON_REQUIRE(task >= 0 && static_cast<std::size_t>(task) < spec_.num_tasks(),
                "unknown task");
  const auto t = static_cast<std::size_t>(task);
  if (task_enabled_[t] == enabled) return;
  task_enabled_[t] = enabled;
  ++release_gen_[t];  // cancels the pending release either way
  if (enabled) schedule_task_release(task, now_);
}

void Simulator::migrate_subtask(int task, int subtask, int new_processor) {
  EUCON_REQUIRE(task >= 0 && static_cast<std::size_t>(task) < spec_.num_tasks(),
                "unknown task");
  auto& subtasks = spec_.tasks[static_cast<std::size_t>(task)].subtasks;
  EUCON_REQUIRE(subtask >= 0 &&
                    static_cast<std::size_t>(subtask) < subtasks.size(),
                "unknown subtask");
  EUCON_REQUIRE(new_processor >= 0 && new_processor < spec_.num_processors,
                "unknown processor");
  subtasks[static_cast<std::size_t>(subtask)].processor = new_processor;
}

bool Simulator::task_enabled(int task) const {
  EUCON_REQUIRE(task >= 0 && static_cast<std::size_t>(task) < spec_.num_tasks(),
                "unknown task");
  return task_enabled_[static_cast<std::size_t>(task)];
}

void Simulator::on_task_release(const Event& e) {
  const auto t = static_cast<std::size_t>(e.task);
  if (e.gen != release_gen_[t]) return;  // superseded by a rate change
  if (!task_enabled_[t]) return;         // suspended by admission control

  const std::uint64_t instance = next_instance_[t]++;
  const auto ni = static_cast<Ticks>(spec_.tasks[t].subtasks.size());
  const Ticks abs_deadline = now_ + ni * period_ticks(e.task);

  deadline_stats_.on_instance_released(e.task);
  last_release_[subtask_base_[t]] = now_;
  make_job(e.task, 0, instance, now_, abs_deadline, now_);

  Event next;
  next.time = now_ + period_ticks(e.task);
  next.kind = EventKind::kTaskRelease;
  next.task = e.task;
  next.gen = e.gen;
  queue_.push(next);
}

void Simulator::on_subtask_release(const Event& e) {
  const auto flat = static_cast<std::size_t>(subtask_index(e.task, e.subtask));
  EUCON_ASSERT(!pending_[flat].empty(), "subtask release without pending entry");
  const PendingRelease pr = pending_[flat].front();
  pending_[flat].pop_front();
  make_job(e.task, e.subtask, pr.instance, pr.instance_release, pr.abs_deadline,
           now_);
}

void Simulator::inject_overhead(int processor, double exec_units) {
  EUCON_REQUIRE(processor >= 0 && processor < spec_.num_processors,
                "unknown processor");
  EUCON_REQUIRE(exec_units > 0.0, "overhead must be positive");
  auto job = std::make_unique<Job>();
  job->id = next_job_id_++;
  job->task = -1;  // marks overhead: no deadline stats, no chain
  job->subtask = -1;
  job->release_time = now_;
  job->exec_total = std::max<Ticks>(units_to_ticks(exec_units), 1);
  job->remaining = job->exec_total;
  job->priority_key = 0;  // outranks every application job
  Job* raw = job.get();
  jobs_.emplace(raw->id, std::move(job));
  processors_[static_cast<std::size_t>(processor)].enqueue(raw, now_);
}

void Simulator::on_completion(const Event& e) {
  auto& proc = processors_[static_cast<std::size_t>(e.processor)];
  Job* job = proc.on_completion_event(e.gen, now_);
  if (job == nullptr) return;  // stale event
  if (job->task < 0) {         // injected overhead: account only
    jobs_.erase(job->id);
    return;
  }

  deadline_stats_.on_subtask_completed(job->task, now_, job->sub_deadline);

  const auto t = static_cast<std::size_t>(job->task);
  const auto next_sub = static_cast<std::size_t>(job->subtask) + 1;
  if (next_sub < spec_.tasks[t].subtasks.size()) {
    // Release guard (Sun & Liu): the successor is released when its
    // predecessor has completed AND at least one period has elapsed since
    // the successor's previous release — keeping the subtask periodic.
    const auto flat =
        static_cast<std::size_t>(subtask_index(job->task, static_cast<int>(next_sub)));
    const Ticks guarded =
        last_release_[flat] == kNeverTicks
            ? now_
            : std::max(now_, last_release_[flat] + period_ticks(job->task));
    if (guarded > now_) ++release_guard_stalls_;
    last_release_[flat] = guarded;
    pending_[flat].push_back({job->instance, job->instance_release, job->abs_deadline});

    Event rel;
    rel.time = guarded;
    rel.kind = EventKind::kSubtaskRelease;
    rel.task = job->task;
    rel.subtask = static_cast<int>(next_sub);
    queue_.push(rel);
  } else {
    deadline_stats_.on_instance_completed(job->task, now_, job->abs_deadline,
                                          job->instance_release);
  }
  jobs_.erase(job->id);
}

void Simulator::on_rate_change(const Event& e) {
  const std::vector<double>& requested = pending_rate_sets_.at(e.payload);
  for (std::size_t i = 0; i < spec_.num_tasks(); ++i) {
    const auto& task = spec_.tasks[i];
    const double clamped =
        std::clamp(requested[i], task.rate_min, task.rate_max);
    rates_[i] = clamped;
    period_ticks_[i] = rate_to_period_ticks(clamped);
    // Re-anchor the task's periodic release on the new period, respecting
    // the separation already established by the previous release.
    ++release_gen_[i];
    if (task_enabled_[i]) schedule_task_release(static_cast<int>(i), now_);
  }
  // RMS priorities follow the new periods. EDF keys are absolute
  // subdeadlines of already-released jobs and do not change.
  if (options_.policy == SchedulingPolicy::kRateMonotonic) {
    for (auto& proc : processors_) {
      proc.reprioritize(
          [this](const Job& j) {
            // Injected overhead jobs (task < 0) keep their key: they have no
            // period and already outrank every application job.
            return j.task < 0 ? j.priority_key : period_ticks(j.task);
          },
          now_);
    }
  }
}

std::vector<double> Simulator::sample_utilizations() {
  EUCON_REQUIRE(now_ > sample_window_start_,
                "sampling window is empty; run the simulator first");
  const double window = static_cast<double>(now_ - sample_window_start_);
  std::vector<double> u;
  u.reserve(processors_.size());
  for (auto& proc : processors_) {
    proc.account_until(now_);
    u.push_back(static_cast<double>(proc.take_window_busy()) / window);
  }
  sample_window_start_ = now_;
  return u;
}

void Simulator::set_rates(const std::vector<double>& rates) {
  EUCON_REQUIRE(rates.size() == spec_.num_tasks(),
                "set_rates needs one rate per task");
  pending_rate_sets_.push_back(rates);
  Event e;
  e.time = now_ + units_to_ticks(options_.feedback_lane_delay);
  e.kind = EventKind::kRateChange;
  e.payload = pending_rate_sets_.size() - 1;
  queue_.push(e);
}

double Simulator::execution_time_factor_now() const {
  return options_.etf.factor_at(now_);
}

}  // namespace eucon::rts
