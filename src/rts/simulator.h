// Event-driven simulator of a distributed real-time system running
// end-to-end tasks (the "DRE System" box of the paper's Figure 1).
//
// Per processor: preemptive rate-monotonic scheduling. Across processors:
// the release-guard synchronization protocol enforces precedence while
// keeping every subtask periodic at its task's current rate. Utilization
// monitors integrate exact busy time per sampling window; rate modulators
// apply controller outputs (optionally after a feedback-lane delay).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/ticks.h"
#include "rts/deadline_stats.h"
#include "rts/etf.h"
#include "rts/event.h"
#include "rts/job.h"
#include "rts/processor.h"
#include "rts/spec.h"
#include "rts/trace.h"

namespace eucon::rts {

// Per-processor scheduling policy.
enum class SchedulingPolicy {
  kRateMonotonic,  // fixed priority by current task period (the paper)
  kEdf,            // dynamic priority by absolute subdeadline
};

// How a task's end-to-end deadline d_i = n_i / r_i is divided into
// subdeadlines (paper §7.1 uses the even division; [7] proposes others).
enum class SubdeadlinePolicy {
  kEvenByCount,          // each subtask gets d_i / n_i (= one period)
  kProportionalToExec,   // subtask j gets d_i * c_ij / sum_l c_il
};

struct SimOptions {
  std::uint64_t seed = 1;
  // Half-width of the unit-mean uniform execution-time jitter. 0 makes
  // execution times deterministic (= etf(t) * c_ij). Only used with
  // ExecDistribution::kUniform.
  double jitter = 0.0;
  // Shape of the per-job variation (kUniform by default); kExponential and
  // kBimodal configure heavier-tailed service times via `exec_params`.
  ExecDistribution exec_distribution = ExecDistribution::kUniform;
  double burst_prob = 0.1;    // kBimodal
  double burst_factor = 3.0;  // kBimodal
  EtfProfile etf = EtfProfile::constant(1.0);
  // One-way delay of the feedback lanes in time units: rate vectors handed
  // to set_rates() become effective after this delay. The paper assumes 0.
  double feedback_lane_delay = 0.0;
  SchedulingPolicy policy = SchedulingPolicy::kRateMonotonic;
  SubdeadlinePolicy subdeadline_policy = SubdeadlinePolicy::kEvenByCount;
  // Record every scheduling decision (release/start/preempt/resume/
  // completion) in an in-memory trace, readable via Simulator::trace().
  bool enable_trace = false;
};

class Simulator {
 public:
  Simulator(SystemSpec spec, SimOptions options);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Processes all events strictly before `t` (ticks), then advances the
  // clock to `t`. `t` must not be in the past.
  void run_until(Ticks t);
  void run_until_units(double t_units) { run_until(units_to_ticks(t_units)); }

  // Utilization of each processor over the window since the previous call
  // (busy time / window length); resets the window. Call at sampling-period
  // boundaries after run_until(boundary).
  std::vector<double> sample_utilizations();

  // Requests new task rates. They are clamped to each task's
  // [rate_min, rate_max] and take effect after the feedback-lane delay:
  // priorities are refreshed and each task's next release is rescheduled
  // against its release guard. Must contain one rate per task.
  void set_rates(const std::vector<double>& rates);

  Ticks now() const { return now_; }
  double now_units() const { return ticks_to_units(now_); }
  const SystemSpec& spec() const { return spec_; }
  std::vector<double> current_rates() const { return rates_; }
  const DeadlineStats& deadline_stats() const { return deadline_stats_; }
  double execution_time_factor_now() const;

  // The execution trace (empty unless SimOptions::enable_trace).
  const TraceLog& trace() const { return trace_; }

  // Suspends / resumes a task (admission-control actuator, §6.2): a
  // suspended task releases no new instances; in-flight jobs finish.
  void set_task_enabled(int task, bool enabled);
  bool task_enabled(int task) const;

  // Moves a subtask to another processor (task-reallocation actuator,
  // §6.2): jobs released from now on run on `new_processor`; in-flight
  // jobs finish where they started. Timing state (release guard, rates)
  // is unaffected.
  void migrate_subtask(int task, int subtask, int new_processor);

  // Injects a burst of highest-priority work on a processor at the current
  // time (priority key 0 outranks every task under both policies). Models
  // the controller's own execution when it shares a processor with
  // applications (§4), or any other OS/middleware overhead. The burst is
  // accounted in that processor's utilization like any job.
  void inject_overhead(int processor, double exec_units);

  // Number of jobs released so far / still in flight (diagnostics).
  std::uint64_t jobs_released() const { return next_job_id_; }
  std::size_t jobs_in_flight() const { return jobs_.size(); }

  // Times the release guard deferred a successor subtask past its
  // predecessor's completion (the guard's "not before one period since the
  // previous release" arm fired). Cumulative; the tracer records per-period
  // deltas.
  std::uint64_t release_guard_stalls() const { return release_guard_stalls_; }

 private:
  struct PendingRelease {  // release-guard queue entry for one subtask
    std::uint64_t instance;
    Ticks instance_release;
    Ticks abs_deadline;
  };

  void handle(const Event& e);
  void on_task_release(const Event& e);
  void on_subtask_release(const Event& e);
  void on_completion(const Event& e);
  void on_rate_change(const Event& e);

  Job* make_job(int task, int subtask, std::uint64_t instance,
                Ticks instance_release, Ticks abs_deadline, Ticks release_time);
  void complete_job(Job* job, Ticks now);
  Ticks period_ticks(int task) const { return period_ticks_[static_cast<std::size_t>(task)]; }
  int subtask_index(int task, int subtask) const;
  Ticks priority_key_for(const Job& job) const;
  void schedule_task_release(int task, Ticks not_before);

  SystemSpec spec_;
  SimOptions options_;
  Ticks sample_window_start_ = 0;
  Ticks now_ = 0;

  EventQueue queue_;
  std::vector<Processor> processors_;
  std::vector<std::unique_ptr<ExecutionTimeModel>> exec_models_;  // per subtask
  DeadlineStats deadline_stats_;

  // Per-task state.
  std::vector<double> rates_;
  std::vector<Ticks> period_ticks_;
  std::vector<std::uint64_t> release_gen_;
  std::vector<std::uint64_t> next_instance_;
  std::vector<bool> task_enabled_;

  // Per-subtask state (flattened; see subtask_index).
  std::vector<Ticks> last_release_;          // kNeverTicks until first release
  std::vector<std::deque<PendingRelease>> pending_;  // release-guard FIFO
  std::vector<std::size_t> subtask_base_;    // task -> first flat index
  std::vector<double> deadline_fraction_;    // share of d_i per subtask

  TraceLog trace_;

  // Rate vectors waiting for their kRateChange event.
  std::vector<std::vector<double>> pending_rate_sets_;

  std::unordered_map<std::uint64_t, std::unique_ptr<Job>> jobs_;
  std::uint64_t next_job_id_ = 0;
  std::uint64_t release_guard_stalls_ = 0;
};

}  // namespace eucon::rts
