#include "rts/spec.h"

#include <cmath>

#include "common/check.h"

namespace eucon::rts {

void SystemSpec::validate() const {
  EUCON_REQUIRE(num_processors > 0, "system needs at least one processor");
  EUCON_REQUIRE(!tasks.empty(), "system needs at least one task");
  for (const auto& t : tasks) {
    EUCON_REQUIRE(!t.subtasks.empty(), "task '" + t.name + "' has no subtasks");
    EUCON_REQUIRE(t.rate_min > 0.0, "task '" + t.name + "' needs rate_min > 0");
    EUCON_REQUIRE(t.rate_max >= t.rate_min,
                  "task '" + t.name + "' has rate_max < rate_min");
    EUCON_REQUIRE(t.initial_rate >= t.rate_min && t.initial_rate <= t.rate_max,
                  "task '" + t.name + "' initial rate outside [rate_min, rate_max]");
    for (const auto& s : t.subtasks) {
      EUCON_REQUIRE(s.processor >= 0 && s.processor < num_processors,
                    "task '" + t.name + "' subtask on unknown processor");
      EUCON_REQUIRE(s.estimated_exec > 0.0,
                    "task '" + t.name + "' subtask needs estimated_exec > 0");
    }
  }
}

std::size_t SystemSpec::num_subtasks() const {
  std::size_t n = 0;
  for (const auto& t : tasks) n += t.subtasks.size();
  return n;
}

std::vector<int> SystemSpec::subtasks_per_processor() const {
  std::vector<int> counts(static_cast<std::size_t>(num_processors), 0);
  for (const auto& t : tasks)
    for (const auto& s : t.subtasks) ++counts[static_cast<std::size_t>(s.processor)];
  return counts;
}

linalg::Matrix SystemSpec::allocation_matrix() const {
  linalg::Matrix f(static_cast<std::size_t>(num_processors), tasks.size());
  for (std::size_t j = 0; j < tasks.size(); ++j)
    for (const auto& s : tasks[j].subtasks)
      f(static_cast<std::size_t>(s.processor), j) += s.estimated_exec;
  return f;
}

linalg::Vector SystemSpec::liu_layland_set_points() const {
  const auto counts = subtasks_per_processor();
  linalg::Vector b(counts.size());
  for (std::size_t p = 0; p < counts.size(); ++p) {
    const double m = counts[p];
    b[p] = counts[p] == 0 ? 1.0 : m * (std::pow(2.0, 1.0 / m) - 1.0);
  }
  return b;
}

linalg::Vector SystemSpec::rate_min_vector() const {
  linalg::Vector v(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) v[i] = tasks[i].rate_min;
  return v;
}

linalg::Vector SystemSpec::rate_max_vector() const {
  linalg::Vector v(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) v[i] = tasks[i].rate_max;
  return v;
}

linalg::Vector SystemSpec::initial_rate_vector() const {
  linalg::Vector v(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) v[i] = tasks[i].initial_rate;
  return v;
}

}  // namespace eucon::rts
