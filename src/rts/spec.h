// The flexible end-to-end task model of the paper (§3.1).
//
// A system is m periodic end-to-end tasks on n processors. Task T_i is a
// chain of subtasks T_i1 … T_in_i, each allocated to a processor, with
// precedence between consecutive subtasks. All subtasks of a task run at
// the task's (adjustable) rate.
#pragma once

#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace eucon::rts {

struct SubtaskSpec {
  int processor = 0;            // index of the hosting processor
  double estimated_exec = 0.0;  // c_ij, design-time estimate in time units
};

struct TaskSpec {
  std::string name;
  std::vector<SubtaskSpec> subtasks;  // the chain, in precedence order
  double rate_min = 0.0;              // R_min,i (invocations per time unit)
  double rate_max = 0.0;              // R_max,i
  double initial_rate = 0.0;          // r_i(0)
};

struct SystemSpec {
  int num_processors = 0;
  std::vector<TaskSpec> tasks;

  // Throws std::invalid_argument when the spec is malformed (empty chains,
  // processor indices out of range, inverted or out-of-range rate bounds,
  // non-positive execution times).
  void validate() const;

  std::size_t num_tasks() const { return tasks.size(); }
  std::size_t num_subtasks() const;
  std::vector<int> subtasks_per_processor() const;

  // The subtask allocation matrix F (paper eq. 6): n×m, with
  // f_pj = sum of estimated execution times of task j's subtasks on
  // processor p (a task may visit a processor more than once).
  linalg::Matrix allocation_matrix() const;

  // Per-processor RMS schedulable utilization bound (paper eq. 13):
  // B_p = m_p (2^{1/m_p} - 1) where m_p is the subtask count on P_p.
  // Processors hosting no subtask get bound 1.0.
  linalg::Vector liu_layland_set_points() const;

  linalg::Vector rate_min_vector() const;
  linalg::Vector rate_max_vector() const;
  linalg::Vector initial_rate_vector() const;
};

}  // namespace eucon::rts
