#include "rts/spec_io.h"

#include <fstream>
#include <sstream>

#include "common/check.h"

namespace eucon::rts {

namespace {

[[noreturn]] void parse_error(int line, const std::string& what) {
  EUCON_FAIL_INVALID("spec parse error at line " + std::to_string(line) + ": " +
                     what);
}

double parse_positive(const std::string& token, int line, const char* what) {
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(token, &consumed);
  } catch (const std::exception&) {
    parse_error(line, std::string("expected a number for ") + what);
  }
  if (consumed != token.size() || value <= 0.0)
    parse_error(line, std::string("expected a positive number for ") + what);
  return value;
}

}  // namespace

SystemSpec load_spec(std::istream& in) {
  SystemSpec spec;
  bool have_processors = false;
  std::string line;
  int line_no = 0;

  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments and surrounding whitespace.
    if (const auto hash = line.find('#'); hash != std::string::npos)
      line.erase(hash);
    std::istringstream tokens(line);
    std::string keyword;
    if (!(tokens >> keyword)) continue;  // blank line

    if (keyword == "processors") {
      std::string count;
      if (!(tokens >> count)) parse_error(line_no, "processors needs a count");
      spec.num_processors =
          static_cast<int>(parse_positive(count, line_no, "processor count"));
      have_processors = true;
    } else if (keyword == "task") {
      TaskSpec task;
      if (!(tokens >> task.name)) parse_error(line_no, "task needs a name");
      double max_period = 0.0, min_period = 0.0, initial_period = 0.0;
      std::string key, value;
      while (tokens >> key >> value) {
        if (key == "max_period")
          max_period = parse_positive(value, line_no, "max_period");
        else if (key == "min_period")
          min_period = parse_positive(value, line_no, "min_period");
        else if (key == "initial_period")
          initial_period = parse_positive(value, line_no, "initial_period");
        else
          parse_error(line_no, "unknown task attribute '" + key + "'");
      }
      if (max_period == 0.0 || min_period == 0.0 || initial_period == 0.0)  // eucon-lint: allow(float-equality)
        parse_error(line_no,
                    "task needs max_period, min_period and initial_period");
      task.rate_min = 1.0 / max_period;
      task.rate_max = 1.0 / min_period;
      task.initial_rate = 1.0 / initial_period;
      spec.tasks.push_back(std::move(task));
    } else if (keyword == "subtask") {
      if (spec.tasks.empty())
        parse_error(line_no, "subtask before any task");
      std::string proc, exec;
      if (!(tokens >> proc >> exec))
        parse_error(line_no, "subtask needs <processor> <execution time>");
      SubtaskSpec sub;
      try {
        sub.processor = std::stoi(proc);
      } catch (const std::exception&) {
        parse_error(line_no, "bad processor index");
      }
      sub.estimated_exec = parse_positive(exec, line_no, "execution time");
      spec.tasks.back().subtasks.push_back(sub);
    } else {
      parse_error(line_no, "unknown keyword '" + keyword + "'");
    }
  }

  if (!have_processors)
    EUCON_FAIL_INVALID("spec parse error: missing 'processors' line");
  spec.validate();
  return spec;
}

SystemSpec load_spec_file(const std::string& path) {
  std::ifstream in(path);
  EUCON_REQUIRE(in.good(), "cannot open spec file: " + path);
  return load_spec(in);
}

void save_spec(const SystemSpec& spec, std::ostream& out) {
  spec.validate();
  out << "processors " << spec.num_processors << "\n";
  for (const auto& task : spec.tasks) {
    out << "task " << task.name << " max_period " << 1.0 / task.rate_min
        << " min_period " << 1.0 / task.rate_max << " initial_period "
        << 1.0 / task.initial_rate << "\n";
    for (const auto& sub : task.subtasks)
      out << "  subtask " << sub.processor << " " << sub.estimated_exec
          << "\n";
  }
}

}  // namespace eucon::rts
