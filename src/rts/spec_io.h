// Plain-text task-set format: load and save SystemSpec.
//
// The format mirrors the paper's Table 1 (periods rather than rates):
//
//   # comment / blank lines ignored
//   processors 2
//   task T1 max_period 700 min_period 35 initial_period 60
//     subtask 0 35
//   task T2 max_period 700 min_period 35 initial_period 90
//     subtask 0 35
//     subtask 1 35
//
// `max_period` = 1/R_min, `min_period` = 1/R_max, `initial_period` =
// 1/r(0); `subtask <processor-index> <estimated execution time>` lines
// belong to the most recent task. The loader validates the result and
// throws std::invalid_argument with a line number on malformed input.
#pragma once

#include <istream>
#include <ostream>
#include <string>

#include "rts/spec.h"

namespace eucon::rts {

SystemSpec load_spec(std::istream& in);
SystemSpec load_spec_file(const std::string& path);

void save_spec(const SystemSpec& spec, std::ostream& out);

}  // namespace eucon::rts
