#include "rts/trace.h"

#include <unordered_map>

#include "common/check.h"
#include "common/csv.h"

namespace eucon::rts {

const char* trace_kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kRelease:
      return "release";
    case TraceKind::kStart:
      return "start";
    case TraceKind::kPreempt:
      return "preempt";
    case TraceKind::kResume:
      return "resume";
    case TraceKind::kCompletion:
      return "completion";
  }
  return "?";
}

void write_trace_csv(const TraceLog& log, std::ostream& out) {
  CsvWriter w(out);
  w.write_header({"time_units", "kind", "job", "task", "subtask", "processor"});
  for (const auto& r : log.records()) {
    w.write_cells({CsvWriter::format_double(ticks_to_units(r.time)),
                   trace_kind_name(r.kind), std::to_string(r.job_id),
                   std::to_string(r.task), std::to_string(r.subtask),
                   std::to_string(r.processor)});
  }
}

void write_slices_csv(const std::vector<ExecutionSlice>& slices,
                      std::ostream& out) {
  CsvWriter w(out);
  w.write_header({"processor", "task", "subtask", "job", "begin_units",
                  "end_units"});
  for (const auto& s : slices) {
    w.write_cells({std::to_string(s.processor), std::to_string(s.task),
                   std::to_string(s.subtask), std::to_string(s.job_id),
                   CsvWriter::format_double(ticks_to_units(s.begin)),
                   CsvWriter::format_double(ticks_to_units(s.end))});
  }
}

std::vector<ExecutionSlice> reconstruct_slices(const TraceLog& log) {
  std::vector<ExecutionSlice> slices;
  // job id -> the running slice opened by kStart/kResume.
  std::unordered_map<std::uint64_t, ExecutionSlice> open;

  for (const auto& rec : log.records()) {
    switch (rec.kind) {
      case TraceKind::kRelease:
        break;
      case TraceKind::kStart:
      case TraceKind::kResume: {
        EUCON_REQUIRE(open.find(rec.job_id) == open.end(),
                      "trace: job started while already running");
        ExecutionSlice s;
        s.begin = rec.time;
        s.job_id = rec.job_id;
        s.task = rec.task;
        s.subtask = rec.subtask;
        s.processor = rec.processor;
        open.emplace(rec.job_id, s);
        break;
      }
      case TraceKind::kPreempt:
      case TraceKind::kCompletion: {
        auto it = open.find(rec.job_id);
        EUCON_REQUIRE(it != open.end(),
                      "trace: job stopped without a matching start");
        ExecutionSlice s = it->second;
        open.erase(it);
        s.end = rec.time;
        EUCON_REQUIRE(s.end >= s.begin, "trace: negative slice");
        if (s.end > s.begin) slices.push_back(s);
        break;
      }
    }
  }
  EUCON_REQUIRE(open.empty(), "trace: jobs still running at end of trace");
  return slices;
}

}  // namespace eucon::rts
