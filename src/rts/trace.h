// Execution tracing: a per-event record of scheduling decisions.
//
// The simulator (optionally) reports every job release, start, preemption,
// resume and completion. Traces serve three purposes: debugging, Gantt
// exports, and — most importantly — the schedule-validity property tests
// (no two jobs executing concurrently on one processor, work conservation,
// no execution before release).
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "common/ticks.h"

namespace eucon::rts {

enum class TraceKind {
  kRelease,     // job became ready on its processor
  kStart,       // job began executing (first dispatch)
  kPreempt,     // job was preempted by a higher-priority job
  kResume,      // job resumed after preemption
  kCompletion,  // job finished its demand
};

struct TraceRecord {
  Ticks time = 0;
  TraceKind kind = TraceKind::kRelease;
  std::uint64_t job_id = 0;
  int task = -1;
  int subtask = -1;
  int processor = -1;
};

// Append-only in-memory trace sink.
class TraceLog {
 public:
  void record(const TraceRecord& rec) { records_.push_back(rec); }
  const std::vector<TraceRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  void clear() { records_.clear(); }

 private:
  std::vector<TraceRecord> records_;
};

// A contiguous interval during which one job ran uninterrupted.
struct ExecutionSlice {
  Ticks begin = 0;
  Ticks end = 0;
  std::uint64_t job_id = 0;
  int task = -1;
  int subtask = -1;
  int processor = -1;
};

// Reconstructs per-processor execution slices from a trace (start/resume
// paired with preempt/completion). Throws std::invalid_argument on
// malformed traces.
std::vector<ExecutionSlice> reconstruct_slices(const TraceLog& log);

// Writes the raw trace as CSV (time_units,kind,job,task,subtask,processor)
// — loadable by any plotting tool for Gantt charts.
void write_trace_csv(const TraceLog& log, std::ostream& out);

// Writes reconstructed execution slices as CSV
// (processor,task,subtask,job,begin_units,end_units).
void write_slices_csv(const std::vector<ExecutionSlice>& slices,
                      std::ostream& out);

const char* trace_kind_name(TraceKind kind);

}  // namespace eucon::rts
