// On-line gain estimation and the adaptive (self-tuning) controller.
#include <gtest/gtest.h>

#include "control/adaptive.h"
#include "control/linear_plant.h"
#include "eucon/eucon.h"

namespace eucon::control {
namespace {

using linalg::Vector;

TEST(GainEstimatorTest, StartsAtUnity) {
  GainEstimator est(3);
  for (double g : est.gains().data()) EXPECT_DOUBLE_EQ(g, 1.0);
  EXPECT_EQ(est.updates_applied(), 0u);
}

TEST(GainEstimatorTest, ConvergesToTrueGainOnCleanData) {
  GainEstimator est(2);
  Rng rng(5);
  const double g_true[2] = {3.0, 0.4};
  for (int k = 0; k < 150; ++k) {
    Vector db{rng.uniform(-0.1, 0.1), rng.uniform(-0.1, 0.1)};
    Vector du{g_true[0] * db[0], g_true[1] * db[1]};
    est.update(db, du);
  }
  EXPECT_NEAR(est.gains()[0], 3.0, 0.05);
  EXPECT_NEAR(est.gains()[1], 0.4, 0.05);
}

TEST(GainEstimatorTest, ConvergesUnderMeasurementNoise) {
  GainEstimator est(1);
  Rng rng(7);
  for (int k = 0; k < 400; ++k) {
    const double db = rng.uniform(-0.1, 0.1);
    const double du = 2.5 * db + rng.uniform(-0.01, 0.01);
    est.update(Vector{db}, Vector{du});
  }
  EXPECT_NEAR(est.gains()[0], 2.5, 0.2);
}

TEST(GainEstimatorTest, SkipsUnexcitedUpdates) {
  GainEstimator est(1);
  est.update(Vector{1e-9}, Vector{0.5});  // no excitation: ignore
  EXPECT_DOUBLE_EQ(est.gains()[0], 1.0);
  EXPECT_EQ(est.updates_applied(), 0u);
}

TEST(GainEstimatorTest, TracksDriftingGain) {
  GainEstimatorParams p;
  p.forgetting = 0.9;
  GainEstimator est(1, p);
  Rng rng(9);
  for (int k = 0; k < 200; ++k)  // first regime: g = 1
    est.update(Vector{rng.uniform(0.02, 0.1)}, Vector{1.0 * rng.uniform(0.02, 0.1)});
  for (int k = 0; k < 200; ++k) {  // second regime: g = 4
    const double db = rng.uniform(0.02, 0.1);
    est.update(Vector{db}, Vector{4.0 * db});
  }
  EXPECT_NEAR(est.gains()[0], 4.0, 0.3);
}

TEST(GainEstimatorTest, ClampsToConfiguredRange) {
  GainEstimatorParams p;
  p.max_gain = 5.0;
  GainEstimator est(1, p);
  for (int k = 0; k < 50; ++k) est.update(Vector{0.1}, Vector{5.0});  // g ~ 50
  EXPECT_LE(est.gains()[0], 5.0);
}

TEST(GainEstimatorTest, RejectsBadParams) {
  GainEstimatorParams p;
  p.forgetting = 0.0;
  EXPECT_THROW(GainEstimator(1, p), std::invalid_argument);
  p = GainEstimatorParams{};
  p.min_gain = 2.0;
  p.max_gain = 1.0;
  EXPECT_THROW(GainEstimator(1, p), std::invalid_argument);
}

TEST(MpcGainEstimateTest, ScalesThePredictionModel) {
  const PlantModel model = make_plant_model(workloads::simple());
  MpcController ctrl(model, workloads::simple_controller_params(),
                     workloads::simple().initial_rate_vector());
  ctrl.set_gain_estimate(Vector{2.0, 2.0});
  // With ĝ = g the loop behaves like the nominal (g = 1) case: converges
  // fast and smoothly on a plant with true gain 2.
  LinearPlant plant(model, Vector{2.0, 2.0},
                    workloads::simple().initial_rate_vector());
  Vector u = plant.utilization();
  for (int k = 0; k < 60; ++k) u = plant.step(ctrl.update(u));
  EXPECT_NEAR(u[0], model.b[0], 2e-3);
  EXPECT_THROW(ctrl.set_gain_estimate(Vector{1.0}), std::invalid_argument);
  EXPECT_THROW(ctrl.set_gain_estimate(Vector{0.0, 1.0}), std::invalid_argument);
}

TEST(AdaptiveMpcTest, StableBeyondFixedModelCriticalGain) {
  // True gain 8 > 6.5: fixed EUCON diverges (MpcControllerTest covers
  // that); the adaptive controller learns ĝ ≈ 8 and settles.
  PlantModel model = make_plant_model(workloads::simple());
  for (std::size_t j = 0; j < model.num_tasks(); ++j) {
    model.rate_min[j] = 1e-9;
    model.rate_max[j] = 10.0;
  }
  const Vector r0 = workloads::simple().initial_rate_vector();
  AdaptiveMpcController ctrl(model, workloads::simple_controller_params(), r0);
  LinearPlant plant(model, Vector{8.0, 8.0}, r0);
  plant.set_utilization(Vector{0.4, 0.4});
  Vector u = plant.utilization();
  for (int k = 0; k < 200; ++k) u = plant.step(ctrl.update(u));
  EXPECT_NEAR(u[0], model.b[0], 0.01);
  // The estimator learns only while the loop is excited: it raises ĝ far
  // enough that the effective gain g/ĝ enters the stable region, then the
  // excitation (rate changes) dies out and the estimate freezes.
  EXPECT_GT(ctrl.gain_estimate()[0], 2.0);
  EXPECT_LT(8.0 / ctrl.gain_estimate()[0], 6.0);
}

TEST(AdaptiveMpcTest, MatchesFixedControllerAtNominalGain) {
  const PlantModel model = make_plant_model(workloads::simple());
  const Vector r0 = workloads::simple().initial_rate_vector();
  AdaptiveMpcController ctrl(model, workloads::simple_controller_params(), r0);
  LinearPlant plant(model, Vector{1.0, 1.0}, r0);
  Vector u = plant.utilization();
  for (int k = 0; k < 80; ++k) u = plant.step(ctrl.update(u));
  EXPECT_NEAR(u[0], model.b[0], 2e-3);
  EXPECT_NEAR(ctrl.gain_estimate()[0], 1.0, 0.2);
}

TEST(AdaptiveMpcTest, FullSimulationSmoothWhereFixedOscillates) {
  // etf = 5 on the real simulator: fixed EUCON shows sigma ~0.13 (see
  // bench_fig4); adaptive EUCON stays much smoother.
  ExperimentConfig cfg;
  cfg.spec = workloads::simple();
  cfg.mpc = workloads::simple_controller_params();
  cfg.sim.etf = rts::EtfProfile::constant(5.0);
  cfg.sim.jitter = 0.1;
  cfg.sim.seed = 42;
  cfg.num_periods = 300;

  cfg.controller = ControllerKind::kEucon;
  const double sd_fixed =
      metrics::acceptability(run_experiment(cfg), 0).stddev;
  cfg.controller = ControllerKind::kAdaptive;
  const auto adaptive = run_experiment(cfg);
  const auto a = metrics::acceptability(adaptive, 0);
  EXPECT_LT(a.stddev, 0.6 * sd_fixed);
  EXPECT_NEAR(a.mean, 0.828, 0.04);
}

TEST(AdaptiveMpcTest, TracksTimeVaryingLoad) {
  ExperimentConfig cfg;
  cfg.spec = workloads::medium();
  cfg.controller = ControllerKind::kAdaptive;
  cfg.mpc = workloads::medium_controller_params();
  cfg.sim.etf = rts::EtfProfile::steps(
      {{0.0, 0.5}, {100000.0, 0.9}, {200000.0, 0.33}});
  cfg.sim.jitter = 0.2;
  cfg.sim.seed = 7;
  cfg.num_periods = 300;
  const ExperimentResult res = run_experiment(cfg);
  for (std::size_t p = 0; p < 4; ++p)
    EXPECT_TRUE(metrics::acceptability(res, p, 260, 300).acceptable())
        << "P" << p + 1;
}

}  // namespace
}  // namespace eucon::control
