#include "control/admission.h"

#include <gtest/gtest.h>

#include "eucon/experiment.h"
#include "eucon/metrics.h"
#include "eucon/workloads.h"

namespace eucon::control {
namespace {

using linalg::Vector;

PlantModel simple_model() { return make_plant_model(workloads::simple()); }

TEST(AdmissionGovernorTest, StartsWithAllEnabled) {
  AdmissionGovernor gov(simple_model(), AdmissionParams{});
  EXPECT_EQ(gov.num_suspended(), 0u);
  for (bool e : gov.enabled()) EXPECT_TRUE(e);
}

TEST(AdmissionGovernorTest, NoActionWhileRatesHaveSlack) {
  const PlantModel model = simple_model();
  AdmissionGovernor gov(model, AdmissionParams{});
  // Overloaded, but rates are mid-range: rate adaptation should handle it.
  const Vector u{1.0, 1.0};
  const Vector rates = workloads::simple().initial_rate_vector();
  for (int k = 0; k < 50; ++k) gov.update(u, rates);
  EXPECT_EQ(gov.num_suspended(), 0u);
}

TEST(AdmissionGovernorTest, SuspendsWhenSaturatedOverloadPersists) {
  const PlantModel model = simple_model();
  AdmissionParams params;
  params.patience = 5;
  AdmissionGovernor gov(model, params);
  const Vector u{1.0, 1.0};
  const Vector rates = model.rate_min;  // rate adaptation exhausted
  for (int k = 0; k < 4; ++k) {
    gov.update(u, rates);
    EXPECT_EQ(gov.num_suspended(), 0u) << "before patience expires";
  }
  gov.update(u, rates);
  EXPECT_EQ(gov.num_suspended(), 1u);
  // Default values: later tasks are less important -> T3 suspended first.
  EXPECT_TRUE(gov.enabled()[0]);
  EXPECT_TRUE(gov.enabled()[1]);
  EXPECT_FALSE(gov.enabled()[2]);
}

TEST(AdmissionGovernorTest, CooldownSpacesSuspensions) {
  const PlantModel model = simple_model();
  AdmissionParams params;
  params.patience = 1;
  params.cooldown = 10;
  AdmissionGovernor gov(model, params);
  const Vector u{1.0, 1.0};
  const Vector rates = model.rate_min;
  int suspended_after_15 = 0;
  for (int k = 0; k < 15; ++k) {
    gov.update(u, rates);
    suspended_after_15 = static_cast<int>(gov.num_suspended());
  }
  EXPECT_LE(suspended_after_15, 2);  // at most one action per 10 periods
}

TEST(AdmissionGovernorTest, NeverSuspendsLastTask) {
  const PlantModel model = simple_model();
  AdmissionParams params;
  params.patience = 1;
  params.cooldown = 0;
  AdmissionGovernor gov(model, params);
  const Vector u{1.0, 1.0};
  const Vector rates = model.rate_min;
  for (int k = 0; k < 100; ++k) gov.update(u, rates);
  EXPECT_LT(gov.num_suspended(), model.num_tasks());
}

TEST(AdmissionGovernorTest, ReadmitsWhenHeadroomReturns) {
  const PlantModel model = simple_model();
  AdmissionParams params;
  params.patience = 1;
  params.cooldown = 0;
  AdmissionGovernor gov(model, params);
  const Vector rates = model.rate_min;
  gov.update(Vector{1.0, 1.0}, rates);  // suspend one
  ASSERT_EQ(gov.num_suspended(), 1u);
  // Deep underload: estimated load of the candidate at R_min fits.
  gov.update(Vector{0.2, 0.2}, rates);
  EXPECT_EQ(gov.num_suspended(), 0u);
  EXPECT_EQ(gov.readmissions(), 1u);
}

TEST(AdmissionGovernorTest, RespectsTaskValues) {
  const PlantModel model = simple_model();
  AdmissionParams params;
  params.patience = 1;
  params.cooldown = 0;
  params.task_values = {0.1, 5.0, 3.0};  // T1 least valuable
  AdmissionGovernor gov(model, params);
  gov.update(Vector{1.0, 1.0}, model.rate_min);
  EXPECT_FALSE(gov.enabled()[0]);
  EXPECT_TRUE(gov.enabled()[1]);
  EXPECT_TRUE(gov.enabled()[2]);
}

TEST(AdmissionGovernorTest, RejectsBadParams) {
  AdmissionParams params;
  params.patience = 0;
  EXPECT_THROW(AdmissionGovernor(simple_model(), params),
               std::invalid_argument);
  params = AdmissionParams{};
  params.task_values = {1.0};  // wrong size
  EXPECT_THROW(AdmissionGovernor(simple_model(), params),
               std::invalid_argument);
}

// Integration: extreme overload that rate adaptation cannot absorb (R_min
// too high) — the governor sheds tasks until the set points are reachable,
// then re-admits after the load drops.
TEST(AdmissionIntegrationTest, ShedsAndRestoresLoad) {
  ExperimentConfig cfg;
  cfg.spec = workloads::simple();
  // Narrow the rate range so etf = 4 is infeasible by rate adaptation:
  // lowest estimated utilization = 2 * 35/250 = 0.28 -> at etf 4: 1.12 > B.
  for (auto& t : cfg.spec.tasks) {
    t.rate_min = 1.0 / 250.0;
    t.initial_rate = 1.0 / 100.0;
  }
  cfg.mpc = workloads::simple_controller_params();
  cfg.enable_admission_control = true;
  cfg.admission.patience = 3;
  cfg.admission.cooldown = 5;
  cfg.sim.etf = rts::EtfProfile::steps({{0.0, 4.0}, {150000.0, 0.5}});
  cfg.sim.jitter = 0.1;
  cfg.sim.seed = 9;
  cfg.num_periods = 300;

  const ExperimentResult res = run_experiment(cfg);
  EXPECT_GE(res.admission_suspensions, 1u);
  EXPECT_GE(res.admission_readmissions, 1u);
  // During the overload phase at least one task was shed...
  int min_enabled = 99;
  for (const auto& rec : res.trace)
    if (rec.k >= 20 && rec.k <= 150) min_enabled = std::min(min_enabled, rec.enabled_tasks);
  EXPECT_LT(min_enabled, 3);
  // ...and after the load drop the full task set is back.
  EXPECT_EQ(res.trace.back().enabled_tasks, 3);
  // With shedding, the overloaded phase ends below saturation.
  const auto phase1 = metrics::utilization_stats(res, 0, 80, 150);
  EXPECT_LT(phase1.mean(), 0.99);
}

TEST(AdmissionIntegrationTest, RequiresEuconController) {
  ExperimentConfig cfg;
  cfg.spec = workloads::simple();
  cfg.controller = ControllerKind::kOpen;
  cfg.enable_admission_control = true;
  EXPECT_THROW(run_experiment(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace eucon::control
