// Schedulability analysis, and its agreement with the event simulator.
#include "rts/analysis.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "rts/simulator.h"

namespace eucon::rts {
namespace {

TEST(BoundsTest, LiuLaylandValues) {
  EXPECT_DOUBLE_EQ(liu_layland_bound(1), 1.0);
  EXPECT_NEAR(liu_layland_bound(2), 0.8284, 1e-4);
  EXPECT_NEAR(liu_layland_bound(3), 0.7798, 1e-4);
  // n -> inf: ln 2.
  EXPECT_NEAR(liu_layland_bound(100000), std::log(2.0), 1e-4);
  EXPECT_THROW(liu_layland_bound(0), std::invalid_argument);
}

TEST(BoundsTest, HyperbolicSharperThanLiuLayland) {
  // Two tasks at u = 0.43 each: total 0.86 > LL bound 0.828 but
  // (1.43)^2 = 2.0449 > 2 -> hyperbolic also rejects. Use 0.41 + 0.42:
  // (1.41)(1.42) = 2.0022 > 2 rejects; 0.40 + 0.42: 1.4*1.42 = 1.988 <= 2
  // accepts although total 0.82 ~ at the LL bound.
  std::vector<PeriodicLoad> accept{{4.0, 10.0}, {8.4, 20.0}};  // 0.40 + 0.42
  EXPECT_TRUE(hyperbolic_check(accept));
  std::vector<PeriodicLoad> reject{{4.1, 10.0}, {8.4, 20.0}};  // 0.41 + 0.42
  EXPECT_FALSE(hyperbolic_check(reject));
}

TEST(BoundsTest, EdfBoundIsOne) {
  std::vector<PeriodicLoad> ok{{5.0, 10.0}, {5.0, 10.0}};  // exactly 1.0
  EXPECT_TRUE(edf_schedulable(ok));
  std::vector<PeriodicLoad> over{{5.1, 10.0}, {5.0, 10.0}};
  EXPECT_FALSE(edf_schedulable(over));
}

TEST(RtaTest, SingleTaskResponseIsExecution) {
  const auto r = rms_response_times({{3.0, 10.0}});
  ASSERT_TRUE(r[0].has_value());
  EXPECT_DOUBLE_EQ(*r[0], 3.0);
}

TEST(RtaTest, TextbookTwoTask) {
  // T1: C=2, T=5; T2: C=4, T=14. R1 = 2; R2 solves R = 4 + ceil(R/5)*2:
  // 4 -> 6 -> 8 -> 8 (T1 runs [0,2) and [5,7); T2 finishes at 8).
  const auto r = rms_response_times({{2.0, 5.0}, {4.0, 14.0}});
  ASSERT_TRUE(r[0].has_value());
  ASSERT_TRUE(r[1].has_value());
  EXPECT_DOUBLE_EQ(*r[0], 2.0);
  EXPECT_DOUBLE_EQ(*r[1], 8.0);
}

TEST(RtaTest, ClassicUnschedulablePair) {
  // C1=2,T1=5; C2=4,T2=7: u = 0.971. RMS cannot schedule it (EDF can).
  const auto r = rms_response_times({{2.0, 5.0}, {4.0, 7.0}});
  EXPECT_TRUE(r[0].has_value());
  EXPECT_FALSE(r[1].has_value());
  EXPECT_FALSE(rms_schedulable({{2.0, 5.0}, {4.0, 7.0}}));
  EXPECT_TRUE(edf_schedulable({{2.0, 5.0}, {4.0, 7.0}}));
}

TEST(RtaTest, InputOrderIrrelevant) {
  const auto a = rms_response_times({{2.0, 5.0}, {4.0, 14.0}});
  const auto b = rms_response_times({{4.0, 14.0}, {2.0, 5.0}});
  EXPECT_DOUBLE_EQ(*a[0], *b[1]);
  EXPECT_DOUBLE_EQ(*a[1], *b[0]);
}

TEST(RtaTest, FullUtilizationHarmonicSet) {
  // Harmonic periods reach u = 1 under RMS: C=1,T=2; C=2,T=4.
  EXPECT_TRUE(rms_schedulable({{1.0, 2.0}, {2.0, 4.0}}));
}

// Property: whenever RTA says schedulable, the deterministic simulator
// never misses a subtask deadline; whenever RTA proves a task
// unschedulable at its critical instant, the simulator (synchronous
// release at t = 0 is the critical instant) misses.
class RtaVsSimulator : public ::testing::TestWithParam<int> {};

TEST_P(RtaVsSimulator, AnalysisPredictsSimulation) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 17 + 3);
  // Random independent single-subtask tasks on one processor.
  const int n = 2 + GetParam() % 3;
  SystemSpec spec;
  spec.num_processors = 1;
  std::vector<PeriodicLoad> loads;
  for (int i = 0; i < n; ++i) {
    const double period = rng.uniform(40.0, 400.0);
    const double exec = period * rng.uniform(0.1, 0.45);
    TaskSpec t;
    t.name = "T" + std::to_string(i);
    t.subtasks = {{0, exec}};
    t.initial_rate = 1.0 / period;
    t.rate_min = t.initial_rate / 100.0;
    t.rate_max = t.initial_rate;
    spec.tasks.push_back(t);
    loads.push_back({exec, period});
  }
  spec.validate();

  Simulator sim(spec, SimOptions{});  // deterministic, etf = 1
  sim.run_until_units(50000.0);
  const double miss = sim.deadline_stats().subtask_miss_ratio();

  if (rms_schedulable(loads)) {
    EXPECT_DOUBLE_EQ(miss, 0.0) << "analysis says schedulable";
  } else {
    EXPECT_GT(miss, 0.0) << "analysis says unschedulable from t=0";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RtaVsSimulator, ::testing::Range(1, 31));

// Observed worst responses never exceed the analytic worst case
// (deterministic execution times, deadline = period).
TEST(RtaVsSimulatorTest, ObservedResponseBoundedByAnalysis) {
  SystemSpec spec;
  spec.num_processors = 1;
  const std::vector<PeriodicLoad> loads{{2.0, 5.0}, {4.0, 14.0}};
  for (std::size_t i = 0; i < loads.size(); ++i) {
    TaskSpec t;
    t.name = "T" + std::to_string(i);
    t.subtasks = {{0, loads[i].exec}};
    t.initial_rate = 1.0 / loads[i].period;
    t.rate_min = t.initial_rate / 10.0;
    t.rate_max = t.initial_rate;
    spec.tasks.push_back(t);
  }
  Simulator sim(spec, SimOptions{});
  sim.run_until_units(20000.0);
  const auto rta = rms_response_times(loads);
  for (std::size_t i = 0; i < loads.size(); ++i) {
    const double observed_worst =
        sim.deadline_stats().task(i).response_time_units.max();
    EXPECT_LE(observed_worst, *rta[i] + 1e-6) << "task " << i;
  }
  // And the critical instant (synchronous start) attains the bound.
  EXPECT_NEAR(sim.deadline_stats().task(1).response_time_units.max(),
              *rta[1], 1e-6);
}

}  // namespace
}  // namespace eucon::rts
