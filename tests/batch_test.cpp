// The batch experiment engine: serial/parallel determinism, seed
// derivation, and failure propagation.
#include "eucon/experiment.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <set>
#include <stdexcept>

#include "eucon/metrics.h"
#include "eucon/workloads.h"

namespace eucon {
namespace {

ExperimentConfig small_config(double etf, std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.spec = workloads::simple();
  cfg.mpc = workloads::simple_controller_params();
  cfg.sim.etf = rts::EtfProfile::constant(etf);
  cfg.sim.jitter = 0.1;
  cfg.sim.seed = seed;
  cfg.num_periods = 40;
  return cfg;
}

std::vector<ExperimentSpec> small_grid() {
  std::vector<ExperimentSpec> specs;
  int i = 0;
  for (double etf : {0.4, 0.5, 0.8, 1.2, 2.0, 3.0}) {
    specs.push_back({"etf" + std::to_string(i),
                     small_config(etf, 42 + static_cast<std::uint64_t>(i))});
    ++i;
  }
  return specs;
}

// Bit-identical comparison of two results: every sample of every series
// must match exactly, not within a tolerance — the parallel engine must not
// perturb the computation in any way.
void expect_bit_identical(const ExperimentResult& a, const ExperimentResult& b) {
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t k = 0; k < a.trace.size(); ++k) {
    ASSERT_EQ(a.trace[k].u, b.trace[k].u) << "period " << k;
    ASSERT_EQ(a.trace[k].rates, b.trace[k].rates) << "period " << k;
    ASSERT_EQ(a.trace[k].enabled_tasks, b.trace[k].enabled_tasks);
  }
  EXPECT_EQ(a.set_points.data(), b.set_points.data());
  EXPECT_EQ(a.controller_fallbacks, b.controller_fallbacks);
  EXPECT_EQ(a.lost_reports, b.lost_reports);
  EXPECT_EQ(a.deadlines.e2e_miss_ratio(), b.deadlines.e2e_miss_ratio());
  EXPECT_EQ(a.deadlines.subtask_miss_ratio(), b.deadlines.subtask_miss_ratio());
}

TEST(BatchTest, ParallelMatchesSerialBitIdentical) {
  const auto specs = small_grid();

  BatchOptions serial;
  serial.serial = true;
  const auto base = run_batch(specs, serial);

  BatchOptions pooled;
  pooled.num_workers = 4;
  const auto par = run_batch(specs, pooled);

  ASSERT_EQ(base.size(), specs.size());
  ASSERT_EQ(par.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i)
    expect_bit_identical(base[i], par[i]);
}

TEST(BatchTest, SingleWorkerPoolMatchesSerial) {
  const auto specs = small_grid();
  BatchOptions serial;
  serial.serial = true;
  BatchOptions one;
  one.num_workers = 1;
  const auto a = run_batch(specs, serial);
  const auto b = run_batch(specs, one);
  for (std::size_t i = 0; i < specs.size(); ++i)
    expect_bit_identical(a[i], b[i]);
}

TEST(BatchTest, BatchMatchesDirectRunExperiment) {
  const auto specs = small_grid();
  BatchOptions pooled;
  pooled.num_workers = 2;
  const auto batch = run_batch(specs, pooled);
  for (std::size_t i = 0; i < specs.size(); ++i)
    expect_bit_identical(run_experiment(specs[i].config), batch[i]);
}

TEST(BatchTest, DerivedSeedsAreDistinctAndStable) {
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < 256; ++i)
    seeds.insert(batch_run_seed(7, i));
  EXPECT_EQ(seeds.size(), 256u);
  // Stable across calls (documented contract: benches can predict seeds).
  EXPECT_EQ(batch_run_seed(7, 3), batch_run_seed(7, 3));
  EXPECT_NE(batch_run_seed(7, 3), batch_run_seed(8, 3));
}

TEST(BatchTest, DeriveSeedsOverridesConfigSeeds) {
  // Two specs with the *same* config (same seed): with derive_seeds the
  // engine must hand them different streams, and the result must equal a
  // direct run with the derived seed plugged in.
  std::vector<ExperimentSpec> specs{{"a", small_config(0.5, 1)},
                                    {"b", small_config(0.5, 1)}};
  BatchOptions opts;
  opts.derive_seeds = true;
  opts.seed_base = 99;
  opts.num_workers = 2;
  const auto results = run_batch(specs, opts);

  auto direct0 = specs[0].config;
  direct0.sim.seed = batch_run_seed(99, 0);
  expect_bit_identical(run_experiment(direct0), results[0]);

  bool any_diff = false;
  for (std::size_t k = 0; k < results[0].trace.size(); ++k)
    if (results[0].trace[k].u != results[1].trace[k].u) any_diff = true;
  EXPECT_TRUE(any_diff) << "derived seeds produced identical jitter streams";
}

TEST(BatchTest, EmptyBatchIsFine) {
  EXPECT_TRUE(run_batch(std::vector<ExperimentSpec>{}).empty());
}

TEST(BatchTest, RunFailurePropagatesFirstInSpecOrder) {
  auto bad = small_config(0.5, 1);
  bad.num_periods = 0;  // rejected by run_experiment's preconditions
  std::vector<ExperimentSpec> specs{{"ok", small_config(0.5, 1)},
                                    {"bad", bad},
                                    {"ok2", small_config(0.6, 2)}};
  BatchOptions opts;
  opts.num_workers = 2;
  EXPECT_THROW(run_batch(specs, opts), std::invalid_argument);
}

TEST(BatchTest, ProgressCallbackCountsEveryRunExactlyOnce) {
  const auto specs = small_grid();
  BatchOptions opts;
  opts.num_workers = 3;
  // Calls are serialized under the engine's internal mutex, so appending
  // without extra synchronization is safe and the sequence must be exactly
  // 1..N with a constant total.
  std::vector<std::size_t> completed;
  std::vector<std::size_t> totals;
  opts.on_progress = [&](std::size_t done, std::size_t total) {
    completed.push_back(done);
    totals.push_back(total);
  };
  const auto results = run_batch(specs, opts);
  ASSERT_EQ(results.size(), specs.size());
  ASSERT_EQ(completed.size(), specs.size());
  for (std::size_t i = 0; i < completed.size(); ++i) {
    EXPECT_EQ(completed[i], i + 1);
    EXPECT_EQ(totals[i], specs.size());
  }
}

TEST(BatchTest, ProgressCallbackFiresOnSerialPathToo) {
  const auto specs = small_grid();
  BatchOptions opts;
  opts.serial = true;
  std::vector<std::size_t> completed;
  opts.on_progress = [&](std::size_t done, std::size_t) {
    completed.push_back(done);
  };
  (void)run_batch(specs, opts);
  ASSERT_EQ(completed.size(), specs.size());
  for (std::size_t i = 0; i < completed.size(); ++i)
    EXPECT_EQ(completed[i], i + 1);
}

TEST(BatchTest, ProgressCallbackDoesNotPerturbResults) {
  const auto specs = small_grid();
  BatchOptions plain;
  plain.num_workers = 2;
  BatchOptions with_progress;
  with_progress.num_workers = 2;
  with_progress.on_progress = [](std::size_t, std::size_t) {};
  const auto a = run_batch(specs, plain);
  const auto b = run_batch(specs, with_progress);
  for (std::size_t i = 0; i < specs.size(); ++i)
    expect_bit_identical(a[i], b[i]);
}

TEST(BatchTest, ConfigVectorOverload) {
  std::vector<ExperimentConfig> configs{small_config(0.5, 1),
                                        small_config(0.8, 2)};
  const auto results = run_batch(configs);
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) EXPECT_EQ(r.trace.size(), 40u);
}

}  // namespace
}  // namespace eucon
