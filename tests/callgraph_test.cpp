// Unit tests for the interprocedural call-graph extractor
// (src/analysis/callgraph.h): qualified-name extraction, overload and
// declaration/definition merging, the conservative resolution rules
// (methods via objects, qualified calls, constructors, function pointers),
// and multi-TU merging. Sources are tokenized in memory — no files.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/callgraph.h"
#include "analysis/lexer.h"

namespace ea = eucon::analysis;

namespace {

// Tokenizes each (path, source) pair, strips comments, and builds a
// finalized graph — the same shape rules.cpp feeds from real files.
ea::CallGraph build(
    const std::vector<std::pair<std::string, std::string>>& files) {
  ea::CallGraph g;
  for (const auto& [path, src] : files) {
    std::vector<ea::Token> code;
    for (ea::Token& t : ea::tokenize(src))
      if (t.kind != ea::TokenKind::kComment) code.push_back(std::move(t));
    g.add_file(path, code, {});
  }
  g.finalize();
  return g;
}

std::set<std::string> callee_names(const ea::CallGraph& g,
                                   const std::string& qname) {
  const ea::CgFunction* fn = g.find(qname);
  EXPECT_NE(fn, nullptr) << qname;
  std::set<std::string> out;
  if (fn == nullptr) return out;
  for (const std::size_t idx : fn->callees)
    out.insert(g.functions()[idx].qname);
  return out;
}

TEST(CallGraphTest, ExtractsQualifiedNamesAcrossScopes) {
  const ea::CallGraph g = build({{"a.cpp",
                                  "namespace outer::inner {\n"
                                  "void free_fn() {}\n"
                                  "class Widget {\n"
                                  " public:\n"
                                  "  void poke() { free_fn(); }\n"
                                  "};\n"
                                  "}  // namespace outer::inner\n"}});
  EXPECT_NE(g.find("outer::inner::free_fn"), nullptr);
  const ea::CgFunction* poke = g.find("outer::inner::Widget::poke");
  ASSERT_NE(poke, nullptr);
  EXPECT_TRUE(poke->is_method);
  EXPECT_TRUE(poke->defined);
  EXPECT_EQ(callee_names(g, "outer::inner::Widget::poke"),
            (std::set<std::string>{"outer::inner::free_fn"}));
}

TEST(CallGraphTest, OverloadsShareOneNode) {
  const ea::CallGraph g = build({{"a.cpp",
                                  "void f(int a) {}\n"
                                  "void f(double a) {}\n"
                                  "void g() { f(1); }\n"}});
  // Both overloads merged into ::f, so the call reaches every overload.
  const ea::CgFunction* f = g.find("f");
  ASSERT_NE(f, nullptr);
  EXPECT_TRUE(f->defined);
  EXPECT_EQ(callee_names(g, "g"), (std::set<std::string>{"f"}));
}

TEST(CallGraphTest, QualifiedCallResolvesThroughNamespaces) {
  const ea::CallGraph g = build({{"a.cpp",
                                  "namespace lib { void helper() {} }\n"
                                  "namespace app {\n"
                                  "void run() { lib::helper(); }\n"
                                  "}\n"}});
  EXPECT_EQ(callee_names(g, "app::run"),
            (std::set<std::string>{"lib::helper"}));
}

TEST(CallGraphTest, MethodCallThroughObjectResolvesToMethodsByLeafName) {
  const ea::CallGraph g = build({{"a.cpp",
                                  "class Engine {\n"
                                  " public:\n"
                                  "  void start() {}\n"
                                  "};\n"
                                  "void drive(Engine& e) { e.start(); }\n"}});
  EXPECT_EQ(callee_names(g, "drive"),
            (std::set<std::string>{"Engine::start"}));
}

TEST(CallGraphTest, TypedFieldReceiverNarrowsMemberResolution) {
  // Two unrelated classes both define update(); a call through a field of
  // declared type (smart pointer or raw) must reach only that class's
  // method, not every override in the repo.
  const ea::CallGraph g = build(
      {{"a.cpp",
        "class Engine {\n"
        " public:\n"
        "  void update() {}\n"
        "};\n"
        "class Radio {\n"
        " public:\n"
        "  void update() {}\n"
        "};\n"
        "class Car {\n"
        " public:\n"
        "  void drive() { engine_->update(); dash.radio->update(); }\n"
        " private:\n"
        "  struct Dash { std::unique_ptr<Radio> radio; };\n"
        "  Engine* engine_;\n"
        "  Dash dash;\n"
        "};\n"}});
  const ea::CgFunction* drive = g.find("Car::drive");
  ASSERT_NE(drive, nullptr);
  ASSERT_EQ(drive->calls.size(), 2u);
  EXPECT_EQ(drive->calls[0].receiver, "engine_");
  EXPECT_EQ(drive->calls[1].receiver, "dash.radio");
  EXPECT_EQ(callee_names(g, "Car::drive"),
            (std::set<std::string>{"Engine::update", "Radio::update"}));
}

TEST(CallGraphTest, TypedParameterReceiverNarrowsMemberResolution) {
  // Function parameters record receiver types the same way fields do:
  // `a.value(k)` through `const Sparse& a` must not reach Reader::value.
  const ea::CallGraph g =
      build({{"a.cpp",
              "class Sparse { public: double value(int k) { return 0; } };\n"
              "class Reader { public: double value() { return 0; } };\n"
              "double sum(const Sparse& a) { return a.value(0); }\n"}});
  EXPECT_EQ(callee_names(g, "sum"),
            (std::set<std::string>{"Sparse::value"}));
}

TEST(CallGraphTest, UntypedReceiverKeepsAllMethodsFallback) {
  // A receiver that is not a plain recorded name chain (here: a call
  // expression) must keep the conservative every-method resolution.
  const ea::CallGraph g = build({{"a.cpp",
                                  "class A { public: void poke() {} };\n"
                                  "class B { public: void poke() {} };\n"
                                  "A* pick();\n"
                                  "void f() { pick()->poke(); }\n"}});
  EXPECT_EQ(callee_names(g, "f"),
            (std::set<std::string>{"A::poke", "B::poke", "pick"}));
}

TEST(CallGraphTest, MemberCallNeverBindsToFreeFunction) {
  // `.solve(` must not resolve to a free function named solve — the member
  // fallback is methods-only (over-approximate, never cross-kind).
  const ea::CallGraph g = build({{"a.cpp",
                                  "void solve() {}\n"
                                  "struct Opaque;\n"
                                  "void run(Opaque& s) { s.solve(); }\n"}});
  const ea::CgFunction* run = g.find("run");
  ASSERT_NE(run, nullptr);
  EXPECT_TRUE(run->callees.empty());
  EXPECT_EQ(run->unresolved, std::vector<std::string>{"solve"});
}

TEST(CallGraphTest, FunctionPointersAndMacrosStayUnresolved) {
  const ea::CallGraph g = build({{"a.cpp",
                                  "void run(void (*cb)()) {\n"
                                  "  cb();\n"
                                  "  SOME_MACRO(1, 2);\n"
                                  "}\n"}});
  const ea::CgFunction* run = g.find("run");
  ASSERT_NE(run, nullptr);
  EXPECT_TRUE(run->callees.empty());
  // Both names were seen as call-shaped but have no definition — the graph
  // records them as unresolved instead of inventing edges.
  const std::set<std::string> unresolved(run->unresolved.begin(),
                                         run->unresolved.end());
  EXPECT_TRUE(unresolved.count("cb"));
  EXPECT_TRUE(unresolved.count("SOME_MACRO"));
}

TEST(CallGraphTest, MultiTuMergeUnionsAnnotationsAndDefinition) {
  const ea::CallGraph g =
      build({{"widget.h",
              "class Widget {\n"
              " public:\n"
              "  void tick() EUCON_REALTIME;\n"
              "};\n"},
             {"widget.cpp",
              "void Widget::tick() { helper(); }\n"
              "void helper() {}\n"}});
  const ea::CgFunction* tick = g.find("Widget::tick");
  ASSERT_NE(tick, nullptr);
  // Annotation came from the header, the body from the .cpp — one node.
  EXPECT_TRUE(tick->realtime);
  EXPECT_TRUE(tick->defined);
  EXPECT_TRUE(tick->is_method);
  EXPECT_EQ(callee_names(g, "Widget::tick"),
            (std::set<std::string>{"helper"}));
}

TEST(CallGraphTest, EscapeHatchesParseFromDeclarations) {
  const ea::CallGraph g =
      build({{"a.h",
              "void a() EUCON_ALLOC_OK(\"why\");\n"
              "void b() EUCON_BLOCK_OK(\"why\");\n"
              "void c() EUCON_NONDET_OK(\"why\");\n"}});
  ASSERT_NE(g.find("a"), nullptr);
  EXPECT_TRUE(g.find("a")->ok[static_cast<int>(ea::RtCategory::kAlloc)]);
  EXPECT_FALSE(g.find("a")->ok[static_cast<int>(ea::RtCategory::kBlock)]);
  EXPECT_TRUE(g.find("b")->ok[static_cast<int>(ea::RtCategory::kBlock)]);
  EXPECT_TRUE(g.find("c")->ok[static_cast<int>(ea::RtCategory::kNondet)]);
}

TEST(CallGraphTest, ConstructorCallsAndInitListsHandled) {
  const ea::CallGraph g = build({{"a.cpp",
                                  "class Gauge {\n"
                                  " public:\n"
                                  "  Gauge(int v) : v_(v) { calibrate(); }\n"
                                  "  void calibrate() {}\n"
                                  " private:\n"
                                  "  int v_;\n"
                                  "};\n"
                                  "void make() { Gauge g(3); }\n"}});
  // The ctor parsed past its init list and found the body call.
  EXPECT_EQ(callee_names(g, "Gauge::Gauge"),
            (std::set<std::string>{"Gauge::calibrate"}));
}

TEST(CallGraphTest, AnonymousNamespaceIsTransparent) {
  const ea::CallGraph g = build({{"a.cpp",
                                  "namespace app {\n"
                                  "namespace {\n"
                                  "void local_helper() {}\n"
                                  "}  // namespace\n"
                                  "void entry() { local_helper(); }\n"
                                  "}  // namespace app\n"}});
  // The helper takes the enclosing scope's qualified name.
  EXPECT_NE(g.find("app::local_helper"), nullptr);
  EXPECT_EQ(callee_names(g, "app::entry"),
            (std::set<std::string>{"app::local_helper"}));
}

TEST(CallGraphTest, DuplicateAddFileIgnored) {
  ea::CallGraph g;
  std::vector<ea::Token> code;
  for (ea::Token& t : ea::tokenize("void f() {}\n"))
    if (t.kind != ea::TokenKind::kComment) code.push_back(std::move(t));
  g.add_file("a.cpp", code, {});
  EXPECT_TRUE(g.has_file("a.cpp"));
  g.add_file("a.cpp", code, {});  // must not duplicate ::f
  g.finalize();
  std::size_t count = 0;
  for (const ea::CgFunction& fn : g.functions())
    if (fn.qname == "f") ++count;
  EXPECT_EQ(count, 1u);
}

}  // namespace
