// EUCON_REQUIRE / EUCON_ASSERT / EUCON_FAIL semantics, message formatting,
// eucon::narrow, and the numeric-guard macros in their *disabled* mode (the
// enabled mode lives in numeric_guard_test.cpp, which compiles with
// EUCON_NUMERIC_CHECKS defined).
#include "common/check.h"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <string>

namespace {

TEST(CheckTest, RequirePassesOnTrueCondition) {
  EXPECT_NO_THROW(EUCON_REQUIRE(1 + 1 == 2, "arithmetic"));
}

TEST(CheckTest, RequireThrowsInvalidArgument) {
  EXPECT_THROW(EUCON_REQUIRE(false, "nope"), std::invalid_argument);
}

TEST(CheckTest, RequireMessageNamesConditionFileAndDetail) {
  try {
    EUCON_REQUIRE(2 < 1, "two is not less than one");
    FAIL() << "EUCON_REQUIRE did not throw";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("requirement failed"), std::string::npos) << msg;
    EXPECT_NE(msg.find("2 < 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("check_test.cpp"), std::string::npos) << msg;
    EXPECT_NE(msg.find("two is not less than one"), std::string::npos) << msg;
  }
}

TEST(CheckTest, RequireEmptyDetailOmitsSeparator) {
  try {
    EUCON_REQUIRE(false, "");
    FAIL() << "EUCON_REQUIRE did not throw";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_EQ(msg.find("—"), std::string::npos) << msg;
  }
}

TEST(CheckTest, AssertThrowsLogicError) {
  EXPECT_THROW(EUCON_ASSERT(false, "invariant"), std::logic_error);
  EXPECT_NO_THROW(EUCON_ASSERT(true, "invariant"));
}

TEST(CheckTest, AssertMessageSaysInvariantViolated) {
  try {
    EUCON_ASSERT(0 == 1, "broken");
    FAIL() << "EUCON_ASSERT did not throw";
  } catch (const std::logic_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("internal invariant violated"), std::string::npos) << msg;
    EXPECT_NE(msg.find("broken"), std::string::npos) << msg;
  }
}

TEST(CheckTest, AssertConditionOnlyEvaluatedOnce) {
  int calls = 0;
  EUCON_ASSERT(++calls > 0, "side effect");
  EXPECT_EQ(calls, 1);
}

TEST(CheckTest, FailThrowsRuntimeErrorWithExactMessage) {
  try {
    EUCON_FAIL("solver exploded");
    FAIL() << "EUCON_FAIL did not throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "solver exploded");
  }
}

TEST(CheckTest, FailInvalidThrowsInvalidArgument) {
  EXPECT_THROW(EUCON_FAIL_INVALID("bad input"), std::invalid_argument);
}

TEST(CheckTest, NarrowRoundTripsInRangeValues) {
  EXPECT_EQ(eucon::narrow<int>(std::size_t{42}), 42);
  EXPECT_EQ(eucon::narrow<int>(std::size_t{0}), 0);
  EXPECT_EQ(eucon::narrow<std::size_t>(7), std::size_t{7});
}

TEST(CheckTest, NarrowThrowsOnLossyConversion) {
  const std::size_t too_big =
      static_cast<std::size_t>(std::numeric_limits<int>::max()) + 1;
  EXPECT_THROW(eucon::narrow<int>(too_big), std::logic_error);
  EXPECT_THROW(eucon::narrow<std::size_t>(-1), std::logic_error);
}

#ifndef EUCON_NUMERIC_CHECKS

// In the default build the numeric guards must compile to nothing: the
// argument expressions are not even evaluated, so a poisoned operand
// costs zero cycles and never throws.
TEST(NumericGuardDisabledTest, ScalarGuardDoesNotEvaluateArguments) {
  int evaluations = 0;
  [[maybe_unused]] auto poison = [&evaluations] {
    ++evaluations;
    return std::numeric_limits<double>::quiet_NaN();
  };
  EXPECT_NO_THROW(EUCON_CHECK_FINITE_SCALAR("off-mode", poison()));
  EXPECT_EQ(evaluations, 0);
}

TEST(NumericGuardDisabledTest, RangeGuardDoesNotEvaluateArguments) {
  int evaluations = 0;
  [[maybe_unused]] auto data = [&evaluations]() -> const double* {
    ++evaluations;
    return nullptr;  // would crash if the guard dereferenced it
  };
  EXPECT_NO_THROW(EUCON_CHECK_FINITE_RANGE("off-mode", data(), 3, 3));
  EXPECT_EQ(evaluations, 0);
}

TEST(NumericGuardDisabledTest, EnabledFlagReportsOff) {
  EXPECT_FALSE(eucon::kNumericChecksEnabled);
}

#endif  // !EUCON_NUMERIC_CHECKS

}  // namespace
