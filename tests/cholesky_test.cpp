#include "linalg/cholesky.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace eucon::linalg {
namespace {

// Random SPD matrix: A = B'B + I.
Matrix random_spd(std::size_t n, Rng& rng) {
  Matrix b(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) b(r, c) = rng.uniform(-1.0, 1.0);
  Matrix a = gram(b);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 1.0;
  return a;
}

TEST(CholeskyTest, FactorsKnownMatrix) {
  Matrix a{{4.0, 2.0}, {2.0, 5.0}};
  Cholesky chol(a);
  ASSERT_TRUE(chol.positive_definite());
  const Matrix l = chol.l();
  EXPECT_NEAR(l(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(l(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(l(1, 1), 2.0, 1e-12);
  EXPECT_TRUE(approx_equal(l * l.transposed(), a, 1e-12));
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix a{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3 and -1
  Cholesky chol(a);
  EXPECT_FALSE(chol.positive_definite());
  EXPECT_THROW(chol.solve(Vector{1.0, 1.0}), std::runtime_error);
}

TEST(CholeskyTest, RejectsNonSquare) {
  EXPECT_THROW(Cholesky(Matrix(2, 3)), std::invalid_argument);
}

class CholeskyRandom : public ::testing::TestWithParam<int> {};

TEST_P(CholeskyRandom, SolveRecoversPlantedSolution) {
  const auto n = static_cast<std::size_t>(GetParam());
  Rng rng(17 + GetParam());
  const Matrix a = random_spd(n, rng);
  Vector x_true(n);
  for (std::size_t i = 0; i < n; ++i) x_true[i] = rng.uniform(-2.0, 2.0);
  Cholesky chol(a);
  ASSERT_TRUE(chol.positive_definite());
  const Vector x = chol.solve(a * x_true);
  EXPECT_TRUE(approx_equal(x, x_true, 1e-8));
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskyRandom,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

}  // namespace
}  // namespace eucon::linalg
