#include "common/csv.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>

namespace eucon {
namespace {

TEST(CsvTest, HeaderAndRows) {
  std::ostringstream out;
  CsvWriter w(out);
  w.write_header({"k", "u1", "u2"});
  w.write_row({1.0, 0.5, 0.25});
  EXPECT_EQ(out.str(), "k,u1,u2\n1,0.5,0.25\n");
}

TEST(CsvTest, QuotesCellsWithCommas) {
  std::ostringstream out;
  CsvWriter w(out);
  w.write_cells({"a,b", "plain"});
  EXPECT_EQ(out.str(), "\"a,b\",plain\n");
}

TEST(CsvTest, EscapesEmbeddedQuotes) {
  std::ostringstream out;
  CsvWriter w(out);
  w.write_cells({"say \"hi\""});
  EXPECT_EQ(out.str(), "\"say \"\"hi\"\"\"\n");
}

TEST(CsvTest, DoubleFormattingRoundTrips) {
  EXPECT_EQ(CsvWriter::format_double(0.8284271247), "0.8284271247");
  EXPECT_EQ(CsvWriter::format_double(-2.0), "-2");
}

TEST(CsvTest, DoubleFormattingRoundTripsExactly) {
  // format_double must emit a string that parses back to the identical
  // bits, including values %.10g visibly truncates (0.1's nearest double,
  // 1/3, sqrt(2)-based set points) and extreme magnitudes.
  const double values[] = {0.1,
                           1.0 / 3.0,
                           2.0 * (std::sqrt(2.0) - 1.0),
                           3.141592653589793,
                           -123456.789012345,
                           1e-300,
                           1e300,
                           std::numeric_limits<double>::max(),
                           std::numeric_limits<double>::min(),
                           0.0};
  for (double v : values) {
    const std::string s = CsvWriter::format_double(v);
    EXPECT_EQ(std::stod(s), v) << "failed to round-trip through \"" << s
                               << "\"";
  }
}

TEST(CsvTest, DoubleFormattingIsShortest) {
  // Shortest-round-trip output: no padding digits on exactly representable
  // values, full precision only where needed.
  EXPECT_EQ(CsvWriter::format_double(0.1), "0.1");
  EXPECT_EQ(CsvWriter::format_double(0.25), "0.25");
  EXPECT_EQ(CsvWriter::format_double(100.0), "100");
  EXPECT_EQ(CsvWriter::format_double(1.0 / 3.0), "0.3333333333333333");
}

TEST(CsvTest, FileWriterRejectsBadPath) {
  EXPECT_THROW(CsvFile("/nonexistent_dir_xyz/file.csv"), std::invalid_argument);
}

TEST(CsvTest, FileWriterWrites) {
  const std::string path = ::testing::TempDir() + "/csv_test_out.csv";
  {
    CsvFile f(path);
    f.writer().write_header({"a"});
    f.writer().write_row({1.5});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a");
  std::getline(in, line);
  EXPECT_EQ(line, "1.5");
}

}  // namespace
}  // namespace eucon
