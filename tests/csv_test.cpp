#include "common/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace eucon {
namespace {

TEST(CsvTest, HeaderAndRows) {
  std::ostringstream out;
  CsvWriter w(out);
  w.write_header({"k", "u1", "u2"});
  w.write_row({1.0, 0.5, 0.25});
  EXPECT_EQ(out.str(), "k,u1,u2\n1,0.5,0.25\n");
}

TEST(CsvTest, QuotesCellsWithCommas) {
  std::ostringstream out;
  CsvWriter w(out);
  w.write_cells({"a,b", "plain"});
  EXPECT_EQ(out.str(), "\"a,b\",plain\n");
}

TEST(CsvTest, EscapesEmbeddedQuotes) {
  std::ostringstream out;
  CsvWriter w(out);
  w.write_cells({"say \"hi\""});
  EXPECT_EQ(out.str(), "\"say \"\"hi\"\"\"\n");
}

TEST(CsvTest, DoubleFormattingRoundTrips) {
  EXPECT_EQ(CsvWriter::format_double(0.8284271247), "0.8284271247");
  EXPECT_EQ(CsvWriter::format_double(-2.0), "-2");
}

TEST(CsvTest, FileWriterRejectsBadPath) {
  EXPECT_THROW(CsvFile("/nonexistent_dir_xyz/file.csv"), std::invalid_argument);
}

TEST(CsvTest, FileWriterWrites) {
  const std::string path = ::testing::TempDir() + "/csv_test_out.csv";
  {
    CsvFile f(path);
    f.writer().write_header({"a"});
    f.writer().write_row({1.5});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a");
  std::getline(in, line);
  EXPECT_EQ(line, "1.5");
}

}  // namespace
}  // namespace eucon
