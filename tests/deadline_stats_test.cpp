#include "rts/deadline_stats.h"

#include <gtest/gtest.h>

namespace eucon::rts {
namespace {

TEST(DeadlineStatsTest, StartsEmpty) {
  DeadlineStats s(2);
  EXPECT_EQ(s.num_tasks(), 2u);
  EXPECT_DOUBLE_EQ(s.e2e_miss_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(s.subtask_miss_ratio(), 0.0);
  EXPECT_EQ(s.total_completed_instances(), 0u);
}

TEST(DeadlineStatsTest, CountsReleasesAndCompletions) {
  DeadlineStats s(1);
  s.on_instance_released(0);
  s.on_instance_released(0);
  s.on_instance_completed(0, 100, 200, 0);  // met
  EXPECT_EQ(s.task(0).instances_released, 2u);
  EXPECT_EQ(s.task(0).instances_completed, 1u);
  EXPECT_EQ(s.task(0).e2e_misses, 0u);
}

TEST(DeadlineStatsTest, DetectsE2eMiss) {
  DeadlineStats s(1);
  s.on_instance_completed(0, 300, 200, 0);  // completion after deadline
  EXPECT_EQ(s.task(0).e2e_misses, 1u);
  EXPECT_DOUBLE_EQ(s.e2e_miss_ratio(), 1.0);
}

TEST(DeadlineStatsTest, CompletionAtDeadlineIsNotAMiss) {
  DeadlineStats s(1);
  s.on_instance_completed(0, 200, 200, 0);
  EXPECT_EQ(s.task(0).e2e_misses, 0u);
}

TEST(DeadlineStatsTest, SubtaskMissRatio) {
  DeadlineStats s(1);
  s.on_subtask_completed(0, 50, 100);   // met
  s.on_subtask_completed(0, 150, 100);  // missed
  EXPECT_DOUBLE_EQ(s.subtask_miss_ratio(), 0.5);
}

TEST(DeadlineStatsTest, ResponseTimesAggregated) {
  DeadlineStats s(1);
  s.on_instance_completed(0, 2 * kTicksPerUnit, 10 * kTicksPerUnit, 0);
  s.on_instance_completed(0, 4 * kTicksPerUnit, 10 * kTicksPerUnit, 0);
  EXPECT_DOUBLE_EQ(s.task(0).response_time_units.mean(), 3.0);
}

TEST(DeadlineStatsTest, AggregatesAcrossTasks) {
  DeadlineStats s(2);
  s.on_instance_completed(0, 10, 20, 0);  // met
  s.on_instance_completed(1, 30, 20, 0);  // missed
  EXPECT_DOUBLE_EQ(s.e2e_miss_ratio(), 0.5);
  EXPECT_EQ(s.total_completed_instances(), 2u);
}

TEST(DeadlineStatsTest, UnknownTaskThrows) {
  DeadlineStats s(1);
  EXPECT_THROW(s.on_instance_released(3), std::out_of_range);
}

}  // namespace
}  // namespace eucon::rts
