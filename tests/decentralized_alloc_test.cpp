// Proves the allocation-free steady-state contract of the decentralized
// and hierarchical update paths: once construction and a warm-up stretch
// have grown every buffer (node gather scratch, QP workspace, warm-start
// working sets) to its high-water mark, a sampling period's update() —
// neighborhood gather, local MPC solves, rate scatter included — touches
// the heap exactly zero times.
//
// The proof instrument is a replacement global operator new in this TU
// (same idiom as qp_alloc_test; it stays a separate binary so the hook
// never colors another test's measurements).
#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "control/decentralized.h"
#include "control/hierarchical.h"
#include "control/model.h"
#include "control/sparse_model.h"
#include "eucon/workloads.h"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::size_t> g_allocs{0};

void* counted_alloc(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed))
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  // Allocation failure in a unit test is unrecoverable; abort instead of
  // throwing so this TU stays clear of the raw-throw rule.
  if (p == nullptr) std::abort();
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace eucon::control {
namespace {

using linalg::Vector;

struct CountScope {
  CountScope() {
    g_allocs.store(0);
    g_counting.store(true);
  }
  ~CountScope() { g_counting.store(false); }
  static std::size_t count() { return g_allocs.load(); }
};

// Jiggle one measurement around its set point so every counted update does
// real control work (nonzero error, moving optimum) without the test side
// touching the heap.
void perturb(Vector& u, const Vector& b, int k) {
  u[0] = b[0] + 0.02 * static_cast<double>(k % 3 - 1);
}

TEST(DecentralizedAllocTest, UpdateIsAllocationFreeAfterWarmup) {
  const PlantModel model = make_plant_model(workloads::medium());
  const Vector r0 = workloads::medium().initial_rate_vector();
  DecentralizedMpcController ctrl(
      model, workloads::medium_controller_params(), r0);

  Vector u = model.b;  // start on target, then jiggle around it
  // Warm-up walks the same perturbation cycle the counted phase uses, so
  // every working-set size and scratch capacity has already been seen.
  for (int k = 0; k < 40; ++k) {
    perturb(u, model.b, k);
    ctrl.update(u);
  }

  {
    const CountScope scope;
    for (int k = 0; k < 50; ++k) {
      perturb(u, model.b, k);
      ctrl.update(u);
    }
  }
  EXPECT_EQ(CountScope::count(), 0u);
}

TEST(DecentralizedAllocTest, HierarchicalUpdateIsAllocationFreeAfterWarmup) {
  workloads::ChainClusterParams params;
  params.num_processors = 32;
  params.tasks_per_processor = 2;
  params.chain_length = 3;
  const rts::SystemSpec spec = workloads::chain_cluster(params, 17);
  const SparsePlantModel model = make_sparse_plant_model(spec);
  MpcParams mpc;
  mpc.prediction_horizon = 2;
  mpc.control_horizon = 1;
  HierarchicalParams hier;
  hier.shard_size = 8;
  HierarchicalMpcController ctrl(model, mpc, hier,
                                 spec.initial_rate_vector());

  Vector u = model.b;
  for (int k = 0; k < 40; ++k) {
    perturb(u, model.b, k);
    ctrl.update(u);
  }

  {
    const CountScope scope;
    for (int k = 0; k < 50; ++k) {
      perturb(u, model.b, k);
      ctrl.update(u);
    }
  }
  EXPECT_EQ(CountScope::count(), 0u);
}

}  // namespace
}  // namespace eucon::control
