#include "control/decentralized.h"

#include <gtest/gtest.h>

#include "control/linear_plant.h"
#include "eucon/experiment.h"
#include "eucon/metrics.h"
#include "eucon/workloads.h"

namespace eucon::control {
namespace {

using linalg::Vector;

TEST(DecentralizedTest, PartitionsOwnershipCompletely) {
  const PlantModel model = make_plant_model(workloads::medium());
  DecentralizedMpcController ctrl(model, workloads::medium_controller_params(),
                                  workloads::medium().initial_rate_vector());
  // Every task owned exactly once.
  std::vector<int> owners(model.num_tasks(), 0);
  for (std::size_t p = 0; p < model.num_processors(); ++p) {
    for (std::size_t j : ctrl.owned_tasks(p)) ++owners[j];
  }
  for (std::size_t j = 0; j < model.num_tasks(); ++j)
    EXPECT_EQ(owners[j], 1) << "task " << j;
}

TEST(DecentralizedTest, NeighborhoodsCoverCoupledProcessors) {
  const PlantModel model = make_plant_model(workloads::medium());
  DecentralizedMpcController ctrl(model, workloads::medium_controller_params(),
                                  workloads::medium().initial_rate_vector());
  for (std::size_t p = 0; p < model.num_processors(); ++p) {
    const auto& nb = ctrl.neighborhood(p);
    EXPECT_EQ(nb.front(), p);  // self first
    // Every processor a locally owned task touches is in the neighborhood.
    for (std::size_t j : ctrl.owned_tasks(p))
      for (std::size_t q = 0; q < model.num_processors(); ++q)
        if (model.f(q, j) > 0.0) {
          EXPECT_NE(std::find(nb.begin(), nb.end(), q), nb.end());
        }
  }
}

TEST(DecentralizedTest, LocalProblemsAreSmallerThanCentralized) {
  const PlantModel model = make_plant_model(workloads::medium());
  DecentralizedMpcController ctrl(model, workloads::medium_controller_params(),
                                  workloads::medium().initial_rate_vector());
  EXPECT_GE(ctrl.num_local_controllers(), 2u);
  EXPECT_LT(ctrl.max_local_problem_size(), model.num_tasks());
}

TEST(DecentralizedTest, ConvergesOnLinearPlantSimple) {
  const PlantModel model = make_plant_model(workloads::simple());
  const Vector r0 = workloads::simple().initial_rate_vector();
  DecentralizedMpcController ctrl(model, workloads::simple_controller_params(), r0);
  LinearPlant plant(model, Vector{1.0, 1.0}, r0);
  Vector u = plant.utilization();
  for (int k = 0; k < 150; ++k) u = plant.step(ctrl.update(u));
  EXPECT_NEAR(u[0], model.b[0], 0.01);
  EXPECT_NEAR(u[1], model.b[1], 0.01);
}

TEST(DecentralizedTest, ConvergesOnLinearPlantMedium) {
  const PlantModel model = make_plant_model(workloads::medium());
  const Vector r0 = workloads::medium().initial_rate_vector();
  DecentralizedMpcController ctrl(model, workloads::medium_controller_params(), r0);
  LinearPlant plant(model, Vector(4, 0.7), r0);
  Vector u = plant.utilization();
  for (int k = 0; k < 250; ++k) u = plant.step(ctrl.update(u));
  for (std::size_t p = 0; p < 4; ++p)
    EXPECT_NEAR(u[p], model.b[p], 0.02) << "P" << p + 1;
}

TEST(DecentralizedTest, FullSimulationAcceptableOnMedium) {
  ExperimentConfig cfg;
  cfg.spec = workloads::medium();
  cfg.controller = ControllerKind::kDecentralized;
  cfg.mpc = workloads::medium_controller_params();
  cfg.sim.etf = rts::EtfProfile::constant(0.5);
  cfg.sim.jitter = 0.2;
  cfg.sim.seed = 7;
  cfg.num_periods = 300;
  const ExperimentResult res = run_experiment(cfg);
  for (std::size_t p = 0; p < 4; ++p) {
    const auto a = metrics::acceptability(res, p);
    EXPECT_TRUE(a.acceptable())
        << "P" << p + 1 << " mean " << a.mean << " sd " << a.stddev;
  }
}

TEST(DecentralizedTest, TracksDynamicLoadLikeCentralized) {
  ExperimentConfig cfg;
  cfg.spec = workloads::medium();
  cfg.mpc = workloads::medium_controller_params();
  cfg.sim.etf = rts::EtfProfile::steps(
      {{0.0, 0.5}, {100000.0, 0.9}, {200000.0, 0.33}});
  cfg.sim.jitter = 0.2;
  cfg.sim.seed = 7;
  cfg.num_periods = 300;

  cfg.controller = ControllerKind::kDecentralized;
  const ExperimentResult dec = run_experiment(cfg);
  cfg.controller = ControllerKind::kEucon;
  const ExperimentResult cen = run_experiment(cfg);

  // The decentralized approximation costs a little tracking quality in the
  // high-gain phase (each node ignores its peers' concurrent moves): allow
  // a slightly wider mean band than the centralized criterion, but demand
  // bounded oscillation and closeness to the centralized result.
  for (std::size_t p = 0; p < 4; ++p) {
    const auto a = metrics::acceptability(dec, p, 160, 200, 0.035, 0.05);
    EXPECT_TRUE(a.acceptable())
        << "decentralized P" << p + 1 << " after the load step: mean "
        << a.mean << " sd " << a.stddev;
  }
  const double gap =
      std::abs(metrics::acceptability(dec, 0, 160, 200).mean -
               metrics::acceptability(cen, 0, 160, 200).mean);
  EXPECT_LT(gap, 0.03);
}

TEST(DecentralizedTest, SplitsOutOfRangeFromOwnerlessDiagnostics) {
  // 2 processors, 1 task owned by P0: P1 is a valid index that owns
  // nothing, 7 is caller misuse — the two must be distinguishable.
  PlantModel model;
  model.f = linalg::Matrix{{2.0}, {1.0}};
  model.b = Vector{0.8, 0.8};
  model.rate_min = Vector{0.001};
  model.rate_max = Vector{0.1};
  DecentralizedMpcController ctrl(model, workloads::simple_controller_params(),
                                  Vector{0.01});
  try {
    ctrl.owned_tasks(7);
    FAIL() << "out-of-range index must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("out of range"), std::string::npos)
        << e.what();
  }
  try {
    ctrl.neighborhood(1);
    FAIL() << "ownerless processor must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("owns no tasks"), std::string::npos)
        << e.what();
  }
}

TEST(DecentralizedTest, OwnershipTieBreaksToLowestProcessorIndex) {
  // Task 0 ties across P1 and P2 (P0 holds a smaller entry): the
  // documented rule assigns it to P1, deterministically.
  PlantModel model;
  model.f = linalg::Matrix{{1.0, 0.0}, {5.0, 2.0}, {5.0, 0.0}};
  model.b = Vector{0.8, 0.8, 0.8};
  model.rate_min = Vector{0.001, 0.001};
  model.rate_max = Vector{0.1, 0.1};
  DecentralizedMpcController ctrl(model, workloads::simple_controller_params(),
                                  Vector{0.01, 0.01});
  ASSERT_EQ(ctrl.owned_tasks(1).size(), 2u);
  EXPECT_THROW(ctrl.owned_tasks(2), std::invalid_argument);
}

TEST(DecentralizedTest, AllZeroAllocationColumnNamesTheTask) {
  PlantModel model;
  model.f = linalg::Matrix{{2.0, 0.0}, {1.0, 0.0}};
  model.b = Vector{0.8, 0.8};
  model.rate_min = Vector{0.001, 0.001};
  model.rate_max = Vector{0.1, 0.1};
  try {
    DecentralizedMpcController ctrl(
        model, workloads::simple_controller_params(), Vector{0.01, 0.01});
    FAIL() << "all-zero column must be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("task 1"), std::string::npos)
        << e.what();
  }
}

TEST(DecentralizedTest, RejectsBadSizes) {
  const PlantModel model = make_plant_model(workloads::simple());
  EXPECT_THROW(
      DecentralizedMpcController(model, workloads::simple_controller_params(),
                                 Vector{0.01}),
      std::invalid_argument);
  DecentralizedMpcController ctrl(model, workloads::simple_controller_params(),
                                  workloads::simple().initial_rate_vector());
  EXPECT_THROW(ctrl.update(Vector{0.5}), std::invalid_argument);
  EXPECT_THROW(ctrl.owned_tasks(99), std::invalid_argument);
}

}  // namespace
}  // namespace eucon::control
