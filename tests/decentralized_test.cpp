#include "control/decentralized.h"

#include <gtest/gtest.h>

#include "control/linear_plant.h"
#include "eucon/experiment.h"
#include "eucon/metrics.h"
#include "eucon/workloads.h"

namespace eucon::control {
namespace {

using linalg::Vector;

TEST(DecentralizedTest, PartitionsOwnershipCompletely) {
  const PlantModel model = make_plant_model(workloads::medium());
  DecentralizedMpcController ctrl(model, workloads::medium_controller_params(),
                                  workloads::medium().initial_rate_vector());
  // Every task owned exactly once.
  std::vector<int> owners(model.num_tasks(), 0);
  for (std::size_t p = 0; p < model.num_processors(); ++p) {
    for (std::size_t j : ctrl.owned_tasks(p)) ++owners[j];
  }
  for (std::size_t j = 0; j < model.num_tasks(); ++j)
    EXPECT_EQ(owners[j], 1) << "task " << j;
}

TEST(DecentralizedTest, NeighborhoodsCoverCoupledProcessors) {
  const PlantModel model = make_plant_model(workloads::medium());
  DecentralizedMpcController ctrl(model, workloads::medium_controller_params(),
                                  workloads::medium().initial_rate_vector());
  for (std::size_t p = 0; p < model.num_processors(); ++p) {
    const auto& nb = ctrl.neighborhood(p);
    EXPECT_EQ(nb.front(), p);  // self first
    // Every processor a locally owned task touches is in the neighborhood.
    for (std::size_t j : ctrl.owned_tasks(p))
      for (std::size_t q = 0; q < model.num_processors(); ++q)
        if (model.f(q, j) > 0.0) {
          EXPECT_NE(std::find(nb.begin(), nb.end(), q), nb.end());
        }
  }
}

TEST(DecentralizedTest, LocalProblemsAreSmallerThanCentralized) {
  const PlantModel model = make_plant_model(workloads::medium());
  DecentralizedMpcController ctrl(model, workloads::medium_controller_params(),
                                  workloads::medium().initial_rate_vector());
  EXPECT_GE(ctrl.num_local_controllers(), 2u);
  EXPECT_LT(ctrl.max_local_problem_size(), model.num_tasks());
}

TEST(DecentralizedTest, ConvergesOnLinearPlantSimple) {
  const PlantModel model = make_plant_model(workloads::simple());
  const Vector r0 = workloads::simple().initial_rate_vector();
  DecentralizedMpcController ctrl(model, workloads::simple_controller_params(), r0);
  LinearPlant plant(model, Vector{1.0, 1.0}, r0);
  Vector u = plant.utilization();
  for (int k = 0; k < 150; ++k) u = plant.step(ctrl.update(u));
  EXPECT_NEAR(u[0], model.b[0], 0.01);
  EXPECT_NEAR(u[1], model.b[1], 0.01);
}

TEST(DecentralizedTest, ConvergesOnLinearPlantMedium) {
  const PlantModel model = make_plant_model(workloads::medium());
  const Vector r0 = workloads::medium().initial_rate_vector();
  DecentralizedMpcController ctrl(model, workloads::medium_controller_params(), r0);
  LinearPlant plant(model, Vector(4, 0.7), r0);
  Vector u = plant.utilization();
  for (int k = 0; k < 250; ++k) u = plant.step(ctrl.update(u));
  for (std::size_t p = 0; p < 4; ++p)
    EXPECT_NEAR(u[p], model.b[p], 0.02) << "P" << p + 1;
}

TEST(DecentralizedTest, FullSimulationAcceptableOnMedium) {
  ExperimentConfig cfg;
  cfg.spec = workloads::medium();
  cfg.controller = ControllerKind::kDecentralized;
  cfg.mpc = workloads::medium_controller_params();
  cfg.sim.etf = rts::EtfProfile::constant(0.5);
  cfg.sim.jitter = 0.2;
  cfg.sim.seed = 7;
  cfg.num_periods = 300;
  const ExperimentResult res = run_experiment(cfg);
  for (std::size_t p = 0; p < 4; ++p) {
    const auto a = metrics::acceptability(res, p);
    EXPECT_TRUE(a.acceptable())
        << "P" << p + 1 << " mean " << a.mean << " sd " << a.stddev;
  }
}

TEST(DecentralizedTest, TracksDynamicLoadLikeCentralized) {
  ExperimentConfig cfg;
  cfg.spec = workloads::medium();
  cfg.mpc = workloads::medium_controller_params();
  cfg.sim.etf = rts::EtfProfile::steps(
      {{0.0, 0.5}, {100000.0, 0.9}, {200000.0, 0.33}});
  cfg.sim.jitter = 0.2;
  cfg.sim.seed = 7;
  cfg.num_periods = 300;

  cfg.controller = ControllerKind::kDecentralized;
  const ExperimentResult dec = run_experiment(cfg);
  cfg.controller = ControllerKind::kEucon;
  const ExperimentResult cen = run_experiment(cfg);

  // The decentralized approximation costs a little tracking quality in the
  // high-gain phase (each node ignores its peers' concurrent moves): allow
  // a slightly wider mean band than the centralized criterion, but demand
  // bounded oscillation and closeness to the centralized result.
  for (std::size_t p = 0; p < 4; ++p) {
    const auto a = metrics::acceptability(dec, p, 160, 200, 0.035, 0.05);
    EXPECT_TRUE(a.acceptable())
        << "decentralized P" << p + 1 << " after the load step: mean "
        << a.mean << " sd " << a.stddev;
  }
  const double gap =
      std::abs(metrics::acceptability(dec, 0, 160, 200).mean -
               metrics::acceptability(cen, 0, 160, 200).mean);
  EXPECT_LT(gap, 0.03);
}

TEST(DecentralizedTest, RejectsBadSizes) {
  const PlantModel model = make_plant_model(workloads::simple());
  EXPECT_THROW(
      DecentralizedMpcController(model, workloads::simple_controller_params(),
                                 Vector{0.01}),
      std::invalid_argument);
  DecentralizedMpcController ctrl(model, workloads::simple_controller_params(),
                                  workloads::simple().initial_rate_vector());
  EXPECT_THROW(ctrl.update(Vector{0.5}), std::invalid_argument);
  EXPECT_THROW(ctrl.owned_tasks(99), std::invalid_argument);
}

}  // namespace
}  // namespace eucon::control
