// Graceful degradation: the controller-blackout watchdog, the per-lane
// staleness fallback into the MPC tracked set, the acceptance demo scenario
// (docs/robustness.md), and the observability contract for faulted runs —
// counters equal trace-derived totals, and a faulted run under run_batch is
// byte-identical between the serial and the pooled path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "eucon/eucon.h"

namespace eucon {
namespace {

// The checked-in examples/fault_plans/blackout_demo.json scenario: lane 0
// goes dark from period 5 for 50 periods, the controller blacks out at
// period 60 for 10. Inlined so the test does not depend on the working
// directory.
const char* const kDemoPlanJson = R"({
  "seed": 7,
  "lane_outages": [{"lane": 0, "start": 5, "duration": 50}],
  "controller_blackouts": [{"start": 60, "duration": 10}]
})";

ExperimentConfig demo_config() {
  ExperimentConfig cfg;
  cfg.spec = workloads::medium();
  cfg.mpc = workloads::medium_controller_params();
  cfg.sim.etf = rts::EtfProfile::constant(0.8);
  cfg.sim.jitter = 0.1;
  cfg.sim.seed = 1;
  cfg.num_periods = 120;
  cfg.faults = faults::parse_fault_plan(kDemoPlanJson);
  return cfg;
}

// Max measured utilization of `processor` over 1-based periods [from, to].
double max_u(const ExperimentResult& res, std::size_t processor, int from,
             int to) {
  double m = 0.0;
  for (const SampleRecord& rec : res.trace)
    if (rec.k >= from && rec.k <= to) m = std::max(m, rec.u[processor]);
  return m;
}

TEST(DegradationTest, DemoScenarioDriftsWithoutDegradation) {
  const ExperimentResult res = run_experiment(demo_config());

  // The frozen lane-0 report reads below the set point forever, so the
  // MPC's integral action ramps every lane-0 task until the processor
  // saturates — the unbounded drift the watchdog exists to stop.
  EXPECT_GT(max_u(res, 0, 25, 54), 0.99);
  EXPECT_GT(res.deadlines.e2e_miss_ratio(), 0.1);
  EXPECT_GT(res.controller_fallbacks, 0u);

  // Fault accounting: 50 outage periods on one lane, a 10-period blackout,
  // and no degradation machinery engaged.
  EXPECT_EQ(res.forced_losses, 50u);
  EXPECT_EQ(res.blackout_periods, 10u);
  EXPECT_EQ(res.max_staleness, 50);
  EXPECT_EQ(res.stale_drops, 0u);
  EXPECT_EQ(res.stale_restores, 0u);
}

TEST(DegradationTest, DemoScenarioBoundedUnderDegradation) {
  const faults::DegradePolicy policies[] = {
      faults::DegradePolicy::kHoldRates, faults::DegradePolicy::kOpenLoop,
      faults::DegradePolicy::kDecentralized};
  for (faults::DegradePolicy policy : policies) {
    ExperimentConfig cfg = demo_config();
    cfg.degrade.policy = policy;
    cfg.degrade.stale_limit = 3;
    const ExperimentResult res = run_experiment(cfg);
    const char* name = faults::degrade_policy_name(policy);

    // Bounded: no processor saturates at any point, every processor meets
    // the paper's acceptability criterion, and no end-to-end deadline is
    // missed — under the exact faults that drove the undegraded run to
    // 100% utilization and >10% misses.
    EXPECT_LT(max_u(res, 0, 1, cfg.num_periods), 0.9) << name;
    for (std::size_t p = 0; p < 4; ++p) {
      const auto a = metrics::acceptability(res, p);
      EXPECT_TRUE(a.acceptable())
          << name << " P" << p + 1 << " mean " << a.mean;
    }
    EXPECT_DOUBLE_EQ(res.deadlines.e2e_miss_ratio(), 0.0) << name;

    // The stale lane is dropped once, restored once when its outage ends.
    EXPECT_EQ(res.forced_losses, 50u) << name;
    EXPECT_EQ(res.blackout_periods, 10u) << name;
    EXPECT_EQ(res.stale_drops, 1u) << name;
    EXPECT_EQ(res.stale_restores, 1u) << name;
    EXPECT_EQ(res.max_staleness, 50) << name;
  }
}

TEST(DegradationTest, WatchdogEngagesAndRecovers) {
  ExperimentConfig cfg;
  cfg.spec = workloads::simple();
  cfg.mpc = workloads::simple_controller_params();
  cfg.sim.etf = rts::EtfProfile::constant(0.5);
  cfg.sim.jitter = 0.1;
  cfg.sim.seed = 42;
  cfg.num_periods = 30;
  cfg.faults.lane_outages.push_back({1, 10, 5});  // lane 1 down, k = 10..14
  cfg.degrade.stale_limit = 2;

  std::ostringstream out;
  obs::JsonlSink sink(out);
  if (obs::kEnabled) cfg.trace_sink = &sink;
  const ExperimentResult res = run_experiment(cfg);

  // Staleness hits the limit at k = 11 (second consecutive loss), so the
  // lane leaves the tracked set for k = 11..14 and returns with the first
  // delivery at k = 15: one drop, one restore, worst streak 5.
  EXPECT_EQ(res.stale_drops, 1u);
  EXPECT_EQ(res.stale_restores, 1u);
  EXPECT_EQ(res.max_staleness, 5);
  EXPECT_EQ(res.forced_losses, 5u);
  EXPECT_EQ(res.blackout_periods, 0u);

  if (obs::kEnabled) {
    int dropped_periods = 0;
    std::istringstream lines(out.str());
    std::string line;
    while (std::getline(lines, line))
      if (line.find("\"tracked\":1") != std::string::npos) ++dropped_periods;
    EXPECT_EQ(dropped_periods, 4);
  }
}

TEST(DegradationTest, DegradeRequiresEuconController) {
  ExperimentConfig cfg;
  cfg.spec = workloads::simple();
  cfg.controller = ControllerKind::kPid;
  cfg.degrade.policy = faults::DegradePolicy::kHoldRates;
  cfg.num_periods = 5;
  EXPECT_THROW((void)run_experiment(cfg), std::invalid_argument);
}

TEST(DegradationTest, TotalActuationOutageFreezesRates) {
  // With every owning processor's command channel down for the whole run,
  // no rate command ever reaches the plant: applied rates stay at the
  // initial design rates even though the controller keeps computing.
  ExperimentConfig cfg;
  cfg.spec = workloads::simple();
  cfg.mpc = workloads::simple_controller_params();
  cfg.sim.etf = rts::EtfProfile::constant(0.5);
  cfg.sim.seed = 11;
  cfg.num_periods = 40;
  for (int p = 0; p < cfg.spec.num_processors; ++p)
    cfg.faults.actuation_outages.push_back({p, 1, cfg.num_periods});
  const ExperimentResult res = run_experiment(cfg);

  const linalg::Vector r0 = cfg.spec.initial_rate_vector();
  for (const SampleRecord& rec : res.trace)
    for (std::size_t j = 0; j < rec.rates.size(); ++j)
      ASSERT_DOUBLE_EQ(rec.rates[j], r0[j]) << "k=" << rec.k;
  EXPECT_GT(res.actuation_lost_commands, 0u);
}

TEST(DegradationTest, ActuationDelayPostponesFirstCommand) {
  // With delay d, the command computed at period k lands at period k + d:
  // the applied rates stay at the initial design rates for the first d
  // periods, then follow the controller's schedule shifted by d.
  ExperimentConfig base;
  base.spec = workloads::simple();
  base.mpc = workloads::simple_controller_params();
  base.sim.etf = rts::EtfProfile::constant(0.5);
  base.sim.seed = 11;
  base.sim.jitter = 0.0;  // same measurements regardless of rate history
  base.num_periods = 6;

  ExperimentConfig delayed = base;
  delayed.faults.actuation_delay = 3;
  // An empty plan skips the actuation pipeline entirely; keep it non-empty.
  delayed.faults.actuation_outages.push_back({0, 1000, 1});
  const ExperimentResult res = run_experiment(delayed);

  const linalg::Vector r0 = base.spec.initial_rate_vector();
  for (int k = 1; k <= 3; ++k)
    for (std::size_t j = 0; j < r0.size(); ++j)
      ASSERT_DOUBLE_EQ(res.trace[k - 1].rates[j], r0[j]) << "k=" << k;
  // From k = 4 on, commands arrive (three periods late) and move the rates.
  EXPECT_NE(res.trace[3].rates, res.trace[0].rates);
}

// ---------------------------------------------------------------------------
// Observability contract for faulted runs.
// ---------------------------------------------------------------------------

// Extracts the integer following `key` (e.g. "\"forced\":") in `line`;
// returns 0 when absent.
std::uint64_t extract_u64(const std::string& line, const std::string& key) {
  const std::size_t at = line.find(key);
  if (at == std::string::npos) return 0;
  return std::strtoull(line.c_str() + at + key.size(), nullptr, 10);
}

TEST(DegradationTest, CountersMatchTraceDerivedTotals) {
  if (!obs::kEnabled) GTEST_SKIP() << "observability compiled out";
  ExperimentConfig cfg = demo_config();
  cfg.degrade.policy = faults::DegradePolicy::kHoldRates;
  cfg.degrade.stale_limit = 3;
  cfg.faults.actuation_loss = 0.1;
  cfg.faults.actuation_delay = 1;
  cfg.faults.overload_spikes.push_back({1, 80, 5, 30.0});

  std::ostringstream out;
  obs::JsonlSink sink(out);
  cfg.trace_sink = &sink;
  obs::Registry metrics;
  cfg.metrics = &metrics;
  const ExperimentResult res = run_experiment(cfg);

  // Re-derive every total from the per-period trace blocks alone.
  std::uint64_t forced = 0, act_lost = 0, overload = 0, blackouts = 0;
  std::uint64_t drops = 0, restores = 0;
  int prev_tracked = static_cast<int>(cfg.spec.num_processors);
  std::istringstream lines(out.str());
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find("\"faults\":{\"mode\":") == std::string::npos) continue;
    forced += extract_u64(line, "\"forced\":");
    act_lost += extract_u64(line, "\"act_lost\":");
    overload += extract_u64(line, "\"overload\":");
    if (line.find("\"mode\":\"blackout\"") != std::string::npos) ++blackouts;
    const int tracked =
        static_cast<int>(extract_u64(line, "\"tracked\":"));
    if (tracked < prev_tracked) drops += prev_tracked - tracked;
    if (tracked > prev_tracked) restores += tracked - prev_tracked;
    prev_tracked = tracked;
  }

  // Trace totals == result fields == registry counters, exactly.
  EXPECT_EQ(forced, res.forced_losses);
  EXPECT_EQ(act_lost, res.actuation_lost_commands);
  EXPECT_EQ(overload, res.overload_injections);
  EXPECT_EQ(blackouts, res.blackout_periods);
  EXPECT_EQ(drops, res.stale_drops);
  EXPECT_EQ(restores, res.stale_restores);

  const obs::Snapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.counters.at("faults.forced_losses"), forced);
  EXPECT_EQ(snap.counters.at("faults.actuation_lost"), act_lost);
  EXPECT_EQ(snap.counters.at("faults.overload_injections"), overload);
  EXPECT_EQ(snap.counters.at("faults.blackout_periods"), blackouts);
  EXPECT_EQ(snap.counters.at("faults.stale_drops"), drops);
  EXPECT_EQ(snap.counters.at("faults.stale_restores"), restores);
  EXPECT_EQ(snap.gauges.at("faults.max_staleness"),
            static_cast<double>(res.max_staleness));

  // And the injected faults actually exercised every source.
  EXPECT_GT(forced, 0u);
  EXPECT_GT(act_lost, 0u);
  EXPECT_EQ(overload, 5u);
  EXPECT_EQ(blackouts, 10u);
}

// ---------------------------------------------------------------------------
// Determinism of faulted runs.
// ---------------------------------------------------------------------------

std::vector<ExperimentSpec> faulted_batch_specs() {
  std::vector<ExperimentSpec> specs;

  ExperimentConfig bursty;
  bursty.spec = workloads::simple();
  bursty.mpc = workloads::simple_controller_params();
  bursty.sim.etf = rts::EtfProfile::constant(0.6);
  bursty.sim.jitter = 0.15;
  bursty.sim.seed = 2000;
  bursty.num_periods = 25;
  bursty.report_loss_probability = 0.1;
  bursty.faults.lane_loss = {0.1, 0.4, 0.02, 0.9};
  specs.push_back({"faulted-bursty", bursty});

  ExperimentConfig blackout = bursty;
  blackout.sim.seed = 2001;
  blackout.report_loss_probability = 0.0;
  blackout.faults = {};
  blackout.faults.lane_outages.push_back({0, 3, 8});
  blackout.faults.blackouts.push_back({12, 4});
  blackout.degrade.policy = faults::DegradePolicy::kDecentralized;
  blackout.degrade.stale_limit = 2;
  specs.push_back({"faulted-blackout", blackout});

  ExperimentConfig actuation = bursty;
  actuation.sim.seed = 2002;
  actuation.faults = {};
  actuation.faults.actuation_loss = 0.3;
  actuation.faults.actuation_delay = 2;
  actuation.faults.overload_spikes.push_back({1, 5, 3, 20.0});
  specs.push_back({"faulted-actuation", actuation});

  return specs;
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(DegradationTest, FaultedBatchSerialAndPooledAreByteIdentical) {
  if (!obs::kEnabled) GTEST_SKIP() << "observability compiled out";
  const std::vector<ExperimentSpec> specs = faulted_batch_specs();
  const std::filesystem::path base =
      std::filesystem::path(::testing::TempDir()) / "eucon_fault_det";
  const std::filesystem::path serial_dir = base / "serial";
  const std::filesystem::path pooled_dir = base / "pooled";
  std::filesystem::remove_all(base);

  BatchOptions serial;
  serial.serial = true;
  serial.trace_dir = serial_dir.string();
  obs::Registry serial_metrics;
  serial.metrics = &serial_metrics;
  (void)run_batch(specs, serial);

  BatchOptions pooled;
  pooled.num_workers = 2;
  pooled.trace_dir = pooled_dir.string();
  obs::Registry pooled_metrics;
  pooled.metrics = &pooled_metrics;
  (void)run_batch(specs, pooled);

  for (std::size_t i = 0; i < specs.size(); ++i) {
    const std::string file = batch_trace_file_name(i, specs[i].name);
    const std::string a = read_file(serial_dir / file);
    const std::string b = read_file(pooled_dir / file);
    ASSERT_FALSE(a.empty()) << file;
    EXPECT_EQ(a, b) << "serial and pooled traces differ for " << file;
  }
  EXPECT_EQ(serial_metrics.snapshot().counters,
            pooled_metrics.snapshot().counters);
  // The faulted specs really did inject faults through the pooled path.
  EXPECT_GT(pooled_metrics.counter("faults.forced_losses"), 0u);

  std::filesystem::remove_all(base);
}

TEST(DegradationTest, FaultedRunIsReproducible) {
  ExperimentConfig cfg = demo_config();
  cfg.degrade.policy = faults::DegradePolicy::kOpenLoop;
  cfg.degrade.stale_limit = 3;
  const ExperimentResult a = run_experiment(cfg);
  const ExperimentResult b = run_experiment(cfg);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].u, b.trace[i].u);
    EXPECT_EQ(a.trace[i].rates, b.trace[i].rates);
  }
  EXPECT_EQ(a.forced_losses, b.forced_losses);
  EXPECT_EQ(a.actuation_lost_commands, b.actuation_lost_commands);
}

}  // namespace
}  // namespace eucon
