#include "control/diagnostics.h"

#include <gtest/gtest.h>

#include "eucon/workloads.h"
#include "linalg/lu.h"

namespace eucon::control {
namespace {

TEST(RankTest, BasicCases) {
  EXPECT_EQ(linalg::rank(linalg::Matrix::identity(4)), 4u);
  EXPECT_EQ(linalg::rank(linalg::Matrix(3, 3)), 0u);
  // Rank-1: outer-product-like rows.
  linalg::Matrix r1{{1.0, 2.0, 3.0}, {2.0, 4.0, 6.0}, {-1.0, -2.0, -3.0}};
  EXPECT_EQ(linalg::rank(r1), 1u);
  // Rectangular.
  linalg::Matrix wide{{1.0, 0.0, 1.0}, {0.0, 1.0, 1.0}};
  EXPECT_EQ(linalg::rank(wide), 2u);
  linalg::Matrix tall{{1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}};
  EXPECT_EQ(linalg::rank(tall), 1u);
}

TEST(RankTest, NearDependentRowsBelowTolerance) {
  linalg::Matrix m{{1.0, 1.0}, {1.0, 1.0 + 1e-14}};
  EXPECT_EQ(linalg::rank(m), 1u);       // default tol 1e-10
  EXPECT_EQ(linalg::rank(m, 1e-16), 2u);  // tighter tol sees the difference
}

TEST(DiagnosticsTest, HealthyWorkloadsPass) {
  for (const auto& spec : {workloads::simple(), workloads::medium()}) {
    const PlantDiagnostics d = diagnose_plant(make_plant_model(spec));
    EXPECT_TRUE(d.full_row_rank);
    EXPECT_TRUE(d.unloaded_processors.empty());
    EXPECT_TRUE(d.ineffective_tasks.empty());
    EXPECT_NE(to_string(d).find("OK"), std::string::npos);
  }
}

TEST(DiagnosticsTest, DetectsTable1Infeasibility) {
  // The documented paper inconsistency, caught statically: at etf = 1 the
  // SIMPLE set points are reachable, so the builtin passes — but scaling
  // the estimates to emulate etf = 0.2 (i.e. shrinking the effective F)
  // puts B above the ceiling.
  PlantModel model = make_plant_model(workloads::simple());
  model.f *= 0.2;  // effective execution times at etf = 0.2
  const PlantDiagnostics d = diagnose_plant(model);
  EXPECT_FALSE(d.set_point_above_ceiling.empty());
  EXPECT_FALSE(d.structurally_feasible());
  EXPECT_NE(to_string(d).find("ceiling"), std::string::npos);
}

TEST(DiagnosticsTest, DetectsSetPointBelowFloor) {
  PlantModel model = make_plant_model(workloads::simple());
  // Raise the rate floors so even R_min overloads the processors.
  for (std::size_t j = 0; j < model.num_tasks(); ++j)
    model.rate_min[j] = model.rate_max[j] * 0.9;
  const PlantDiagnostics d = diagnose_plant(model);
  EXPECT_FALSE(d.set_point_below_floor.empty());
}

TEST(DiagnosticsTest, DetectsUnloadedProcessor) {
  rts::SystemSpec s = workloads::simple();
  s.num_processors = 3;  // P3 hosts nothing
  const PlantDiagnostics d = diagnose_plant(make_plant_model(s));
  ASSERT_EQ(d.unloaded_processors.size(), 1u);
  EXPECT_EQ(d.unloaded_processors[0], 2);
  EXPECT_FALSE(d.full_row_rank);
  EXPECT_FALSE(d.structurally_feasible());
  EXPECT_NE(to_string(d).find("P3"), std::string::npos);
}

TEST(DiagnosticsTest, DetectsRowRankDeficiency) {
  // Two processors loaded identically by the same tasks: rank 1.
  PlantModel model;
  model.f = linalg::Matrix{{10.0, 20.0}, {10.0, 20.0}};
  model.b = linalg::Vector{0.5, 0.7};  // untrackable pair
  model.rate_min = linalg::Vector{0.001, 0.001};
  model.rate_max = linalg::Vector{0.05, 0.05};
  const PlantDiagnostics d = diagnose_plant(model);
  EXPECT_EQ(d.rank, 1u);
  EXPECT_FALSE(d.full_row_rank);
}

TEST(DiagnosticsTest, EnvelopeValuesExact) {
  const PlantModel model = make_plant_model(workloads::simple());
  const PlantDiagnostics d = diagnose_plant(model);
  // P1 floor: (35 + 35) / 700 = 0.1; ceiling: (35 + 35)/35 = 2.0.
  EXPECT_NEAR(d.min_estimated_utilization[0], 0.1, 1e-12);
  EXPECT_NEAR(d.max_estimated_utilization[0], 2.0, 1e-12);
}

}  // namespace
}  // namespace eucon::control
