// EDF scheduling policy and subdeadline-assignment strategies.
#include <gtest/gtest.h>

#include "rts/simulator.h"

namespace eucon::rts {
namespace {

// Classic RMS-vs-EDF separator: two tasks, total utilization ≈ 0.97 —
// above the Liu–Layland bound (0.828) but below 1. EDF schedules it with
// zero misses; RMS misses deadlines of the longer-period task.
SystemSpec two_task_097() {
  SystemSpec s;
  s.num_processors = 1;
  TaskSpec t1;
  t1.name = "T1";
  t1.subtasks = {{0, 2.0}};
  t1.rate_min = 1.0 / 500.0;
  t1.rate_max = 1.0 / 2.0;
  t1.initial_rate = 1.0 / 5.0;  // c=2, p=5 -> u = 0.4
  TaskSpec t2 = t1;
  t2.name = "T2";
  t2.subtasks = {{0, 4.0}};
  t2.rate_max = 1.0 / 4.0;
  t2.initial_rate = 1.0 / 7.0;  // c=4, p=7 -> u = 0.571
  s.tasks = {t1, t2};
  return s;
}

TEST(EdfTest, EdfSchedulesWhatRmsCannot) {
  SimOptions rms;
  rms.policy = SchedulingPolicy::kRateMonotonic;
  Simulator sim_rms(two_task_097(), rms);
  sim_rms.run_until_units(10000.0);

  SimOptions edf;
  edf.policy = SchedulingPolicy::kEdf;
  Simulator sim_edf(two_task_097(), edf);
  sim_edf.run_until_units(10000.0);

  EXPECT_GT(sim_rms.deadline_stats().subtask_miss_ratio(), 0.05)
      << "RMS must miss above the Liu-Layland bound";
  EXPECT_DOUBLE_EQ(sim_edf.deadline_stats().subtask_miss_ratio(), 0.0)
      << "EDF is optimal up to u = 1";
  // Both policies do the same amount of work.
  EXPECT_NEAR(sim_rms.deadline_stats().total_completed_instances(),
              sim_edf.deadline_stats().total_completed_instances(), 5);
}

TEST(EdfTest, BothPoliciesMeetDeadlinesUnderLiuLayland) {
  // u = 0.4 + 0.2 = 0.6 < 0.828: both must be clean.
  SystemSpec s = two_task_097();
  s.tasks[1].initial_rate = 1.0 / 20.0;  // c=4, p=20 -> u = 0.2
  for (auto policy : {SchedulingPolicy::kRateMonotonic, SchedulingPolicy::kEdf}) {
    SimOptions opts;
    opts.policy = policy;
    Simulator sim(s, opts);
    sim.run_until_units(10000.0);
    EXPECT_DOUBLE_EQ(sim.deadline_stats().subtask_miss_ratio(), 0.0);
  }
}

TEST(EdfTest, UtilizationIndependentOfPolicy) {
  // Work conservation: the measured utilization is a property of the
  // demand, not the ordering.
  for (auto policy : {SchedulingPolicy::kRateMonotonic, SchedulingPolicy::kEdf}) {
    SimOptions opts;
    opts.policy = policy;
    Simulator sim(two_task_097(), opts);
    sim.run_until_units(10000.0);
    EXPECT_NEAR(sim.sample_utilizations()[0], 0.4 + 4.0 / 7.0, 0.01);
  }
}

TEST(EdfTest, EdfSurvivesRateChanges) {
  SimOptions opts;
  opts.policy = SchedulingPolicy::kEdf;
  Simulator sim(two_task_097(), opts);
  sim.run_until_units(2000.0);
  (void)sim.sample_utilizations();
  sim.set_rates({1.0 / 10.0, 1.0 / 14.0});  // halve both rates
  sim.run_until_units(4000.0);
  EXPECT_NEAR(sim.sample_utilizations()[0], 0.2 + 4.0 / 14.0, 0.02);
  EXPECT_DOUBLE_EQ(sim.deadline_stats().e2e_miss_ratio(), 0.0);
}

// Subdeadline assignment: the same deterministic schedule judged by the
// two division policies. A chain (c1 = 60 on P1, c2 = 10 on P2), period
// 100, deadline 200: the even division grants the second subtask 100, the
// proportional division only 200 * 10/70 ≈ 28.6. An interfering
// higher-priority local task on P2 pushes some of the chain's responses
// past 28.6 — misses under proportional, clean under even.
TEST(SubdeadlineTest, PoliciesJudgeTheSameScheduleDifferently) {
  SystemSpec s;
  s.num_processors = 2;
  TaskSpec chain;
  chain.name = "chain";
  chain.subtasks = {{0, 60.0}, {1, 10.0}};
  chain.rate_min = 1.0 / 1000.0;
  chain.rate_max = 1.0 / 60.0;
  chain.initial_rate = 1.0 / 100.0;
  TaskSpec interferer;
  interferer.name = "interferer";
  interferer.subtasks = {{1, 20.0}};
  interferer.rate_min = 1.0 / 1000.0;
  interferer.rate_max = 1.0 / 20.0;
  interferer.initial_rate = 1.0 / 40.0;  // higher RMS priority than the chain
  s.tasks = {chain, interferer};

  SimOptions even;
  even.subdeadline_policy = SubdeadlinePolicy::kEvenByCount;
  Simulator sim_even(s, even);
  sim_even.run_until_units(20000.0);

  SimOptions prop;
  prop.subdeadline_policy = SubdeadlinePolicy::kProportionalToExec;
  Simulator sim_prop(s, prop);
  sim_prop.run_until_units(20000.0);

  EXPECT_DOUBLE_EQ(sim_even.deadline_stats().subtask_miss_ratio(), 0.0)
      << "even: every response fits in a full period";
  EXPECT_GT(sim_prop.deadline_stats().subtask_miss_ratio(), 0.05)
      << "proportional: interference pushes c2's response past its 28.6 share";
  // The schedule itself is identical — same completions either way.
  EXPECT_EQ(sim_even.deadline_stats().total_completed_instances(),
            sim_prop.deadline_stats().total_completed_instances());
}

TEST(SubdeadlineTest, EvenDivisionEqualsOnePeriod) {
  // With the even policy the subdeadline equals the period, so a
  // single-subtask task misses exactly when its response exceeds the
  // period: c = 50 at etf 1.2 -> 60 > period 55.
  SystemSpec s;
  s.num_processors = 1;
  TaskSpec t;
  t.name = "solo";
  t.subtasks = {{0, 50.0}};
  t.rate_min = 1.0 / 1000.0;
  t.rate_max = 1.0 / 50.0;
  t.initial_rate = 1.0 / 55.0;
  s.tasks = {t};
  SimOptions opts;
  opts.etf = EtfProfile::constant(1.2);
  Simulator sim(s, opts);
  sim.run_until_units(5000.0);
  EXPECT_GT(sim.deadline_stats().subtask_miss_ratio(), 0.9);

  opts.etf = EtfProfile::constant(0.9);  // 45 < 55: all met
  Simulator sim_ok(s, opts);
  sim_ok.run_until_units(5000.0);
  EXPECT_DOUBLE_EQ(sim_ok.deadline_stats().subtask_miss_ratio(), 0.0);
}

}  // namespace
}  // namespace eucon::rts
