// Edge-case hardening across the numerical substrate.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/cholesky.h"
#include "linalg/eig.h"
#include "linalg/lu.h"
#include "linalg/qr.h"
#include "qp/lsqlin.h"

namespace eucon {
namespace {

using linalg::Matrix;
using linalg::Vector;

TEST(LinalgEdgeTest, OneByOneSystems) {
  EXPECT_DOUBLE_EQ(linalg::Lu(Matrix{{4.0}}).solve(Vector{8.0})[0], 2.0);
  EXPECT_FALSE(linalg::Lu(Matrix{{0.0}}).invertible());
  EXPECT_DOUBLE_EQ(linalg::least_squares(Matrix{{2.0}}, Vector{6.0})[0], 3.0);
  linalg::Cholesky chol(Matrix{{9.0}});
  ASSERT_TRUE(chol.positive_definite());
  EXPECT_DOUBLE_EQ(chol.solve(Vector{3.0})[0], 1.0 / 3.0);
}

TEST(LinalgEdgeTest, EmptyMatrixOperations) {
  const Matrix empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(Matrix::identity(0).rows(), 0u);
  EXPECT_EQ(linalg::eigenvalues(Matrix(0, 0)).size(), 0u);
}

TEST(LinalgEdgeTest, SingleColumnLeastSquares) {
  // Projection onto one column: x = (a'b)/(a'a).
  Matrix a{{1.0}, {2.0}, {2.0}};
  Vector b{3.0, 1.0, 2.0};
  const Vector x = linalg::least_squares(a, b);
  EXPECT_NEAR(x[0], (3.0 + 2.0 + 4.0) / 9.0, 1e-12);
}

TEST(LinalgEdgeTest, SymmetricMatricesHaveRealEigenvalues) {
  Rng rng(21);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 2 + static_cast<std::size_t>(trial % 5);
    Matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i; j < n; ++j) {
        a(i, j) = rng.uniform(-2.0, 2.0);
        a(j, i) = a(i, j);
      }
    for (const auto& ev : linalg::eigenvalues(a))
      EXPECT_NEAR(ev.imag(), 0.0, 1e-7) << "trial " << trial;
  }
}

TEST(LinalgEdgeTest, NearSingularStillSolvesAccurately) {
  // Hilbert 4x4: condition ~1.5e4 — well within double precision.
  Matrix h(4, 4);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      h(i, j) = 1.0 / static_cast<double>(i + j + 1);
  Vector x_true{1.0, -1.0, 2.0, 0.5};
  const Vector x = linalg::Lu(h).solve(h * x_true);
  EXPECT_TRUE(linalg::approx_equal(x, x_true, 1e-7));
}

TEST(QpEdgeTest, IterationLimitReportsStatus) {
  qp::Options opts;
  opts.max_iterations = 1;
  Matrix h{{2.0, 0.0}, {0.0, 2.0}};
  Vector f{-6.0, -6.0};
  Matrix a{{1.0, 0.0}, {0.0, 1.0}};
  Vector b{1.0, 1.0};
  const qp::Result r = qp::solve_qp(h, f, a, b, nullptr, opts);
  // One iteration cannot finish this (needs to add two constraints).
  EXPECT_EQ(r.status, qp::Status::kMaxIterations);
  // The iterate is still feasible.
  EXPECT_LE(qp::max_violation(a, b, r.x), 1e-9);
}

TEST(QpEdgeTest, SingularHessianHandledByRegularization) {
  // H = 0 (pure linear objective) on a box: optimum at a vertex.
  Matrix h(2, 2);
  Vector f{-1.0, -1.0};
  Matrix a{{1.0, 0.0}, {0.0, 1.0}, {-1.0, 0.0}, {0.0, -1.0}};
  Vector b{1.0, 1.0, 0.0, 0.0};
  const qp::Result r = qp::solve_qp(h, f, a, b);
  ASSERT_EQ(r.status, qp::Status::kOptimal);
  EXPECT_NEAR(r.x[0], 1.0, 1e-5);
  EXPECT_NEAR(r.x[1], 1.0, 1e-5);
}

TEST(QpEdgeTest, EmptyConstraintSystem) {
  const qp::Result r = qp::find_feasible_point(Matrix(0, 3), Vector(0));
  ASSERT_EQ(r.status, qp::Status::kOptimal);
  EXPECT_EQ(r.x.size(), 3u);
}

TEST(QpEdgeTest, TightEqualityLikeBox) {
  // lb == ub pins the variable exactly.
  qp::LsqlinProblem prob;
  prob.c = Matrix::identity(2);
  prob.d = Vector{5.0, 5.0};
  prob.a = Matrix(0, 2);
  prob.b = Vector(0);
  prob.lb = Vector{1.0, -3.0};
  prob.ub = Vector{1.0, 3.0};
  const auto res = qp::lsqlin(prob);
  ASSERT_EQ(res.status, qp::Status::kOptimal);
  EXPECT_NEAR(res.x[0], 1.0, 1e-7);
  EXPECT_NEAR(res.x[1], 3.0, 1e-7);
}

TEST(QpEdgeTest, MixedGeneralAndBoxConstraints) {
  // min ||x - (4,4)||^2, x1 + x2 <= 4, 0 <= x <= 3 -> x = (2, 2).
  qp::LsqlinProblem prob;
  prob.c = Matrix::identity(2);
  prob.d = Vector{4.0, 4.0};
  prob.a = Matrix{{1.0, 1.0}};
  prob.b = Vector{4.0};
  prob.lb = Vector{0.0, 0.0};
  prob.ub = Vector{3.0, 3.0};
  const auto res = qp::lsqlin(prob);
  ASSERT_EQ(res.status, qp::Status::kOptimal);
  EXPECT_NEAR(res.x[0], 2.0, 1e-6);
  EXPECT_NEAR(res.x[1], 2.0, 1e-6);
}

TEST(QpEdgeTest, LargeScaleRandomBoxStillOptimal) {
  Rng rng(33);
  const std::size_t n = 40;
  Matrix h(n, n);
  Vector f(n);
  for (std::size_t i = 0; i < n; ++i) {
    h(i, i) = rng.uniform(1.0, 3.0);
    f[i] = rng.uniform(-4.0, 4.0);
  }
  Matrix a(2 * n, n);
  Vector b(2 * n, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = 1.0;
    a(n + i, i) = -1.0;
  }
  const qp::Result r = qp::solve_qp(h, f, a, b);
  ASSERT_EQ(r.status, qp::Status::kOptimal);
  for (std::size_t i = 0; i < n; ++i) {
    const double expected = std::clamp(-f[i] / h(i, i), -1.0, 1.0);
    EXPECT_NEAR(r.x[i], expected, 1e-6) << i;
  }
}

}  // namespace
}  // namespace eucon
