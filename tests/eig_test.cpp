#include "linalg/eig.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "linalg/lu.h"

namespace eucon::linalg {
namespace {

std::vector<double> sorted_real_parts(const std::vector<std::complex<double>>& ev) {
  std::vector<double> re;
  for (const auto& e : ev) re.push_back(e.real());
  std::sort(re.begin(), re.end());
  return re;
}

TEST(EigTest, DiagonalMatrix) {
  const auto ev = eigenvalues(Matrix::diagonal(Vector{3.0, -1.0, 2.0}));
  const auto re = sorted_real_parts(ev);
  ASSERT_EQ(re.size(), 3u);
  EXPECT_NEAR(re[0], -1.0, 1e-10);
  EXPECT_NEAR(re[1], 2.0, 1e-10);
  EXPECT_NEAR(re[2], 3.0, 1e-10);
  for (const auto& e : ev) EXPECT_NEAR(e.imag(), 0.0, 1e-10);
}

TEST(EigTest, TwoByTwoComplexPair) {
  // Rotation-like matrix: eigenvalues cos θ ± i sin θ.
  const double theta = 0.7;
  Matrix a{{std::cos(theta), -std::sin(theta)},
           {std::sin(theta), std::cos(theta)}};
  const auto ev = eigenvalues(a);
  ASSERT_EQ(ev.size(), 2u);
  for (const auto& e : ev) {
    EXPECT_NEAR(e.real(), std::cos(theta), 1e-10);
    EXPECT_NEAR(std::abs(e.imag()), std::sin(theta), 1e-10);
  }
  EXPECT_NEAR(spectral_radius(a), 1.0, 1e-10);
}

TEST(EigTest, UpperTriangularEigenvaluesAreDiagonal) {
  Matrix a{{1.0, 5.0, -2.0}, {0.0, -3.0, 7.0}, {0.0, 0.0, 0.5}};
  const auto re = sorted_real_parts(eigenvalues(a));
  EXPECT_NEAR(re[0], -3.0, 1e-9);
  EXPECT_NEAR(re[1], 0.5, 1e-9);
  EXPECT_NEAR(re[2], 1.0, 1e-9);
}

TEST(EigTest, CompanionMatrixKnownRoots) {
  // Companion of (x-1)(x-2)(x-3) = x^3 - 6x^2 + 11x - 6.
  Matrix a{{6.0, -11.0, 6.0}, {1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}};
  const auto re = sorted_real_parts(eigenvalues(a));
  EXPECT_NEAR(re[0], 1.0, 1e-8);
  EXPECT_NEAR(re[1], 2.0, 1e-8);
  EXPECT_NEAR(re[2], 3.0, 1e-8);
}

TEST(EigTest, ZeroMatrix) {
  const auto ev = eigenvalues(Matrix(4, 4));
  for (const auto& e : ev) EXPECT_NEAR(std::abs(e), 0.0, 1e-12);
  EXPECT_NEAR(spectral_radius(Matrix(4, 4)), 0.0, 1e-12);
}

TEST(EigTest, OneByOne) {
  const auto ev = eigenvalues(Matrix{{-2.5}});
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_DOUBLE_EQ(ev[0].real(), -2.5);
}

TEST(EigTest, HessenbergPreservesEigenvalues) {
  Rng rng(3);
  Matrix a(5, 5);
  for (std::size_t r = 0; r < 5; ++r)
    for (std::size_t c = 0; c < 5; ++c) a(r, c) = rng.uniform(-2.0, 2.0);
  const Matrix h = hessenberg(a);
  // Hessenberg structure: zero below the first subdiagonal.
  for (std::size_t r = 2; r < 5; ++r)
    for (std::size_t c = 0; c + 1 < r; ++c) EXPECT_NEAR(h(r, c), 0.0, 1e-12);
  // Similarity: traces and determinants match.
  double tr_a = 0, tr_h = 0;
  for (std::size_t i = 0; i < 5; ++i) {
    tr_a += a(i, i);
    tr_h += h(i, i);
  }
  EXPECT_NEAR(tr_a, tr_h, 1e-9);
  EXPECT_NEAR(Lu(a).determinant(), Lu(h).determinant(), 1e-7);
}

// Property sweep: for random matrices the eigenvalue multiset must satisfy
// sum = trace and product = determinant.
class EigRandom : public ::testing::TestWithParam<int> {};

TEST_P(EigRandom, TraceAndDeterminantInvariants) {
  const auto n = static_cast<std::size_t>(GetParam() % 100);
  Rng rng(1000 + GetParam());
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-2.0, 2.0);

  const auto ev = eigenvalues(a);
  ASSERT_EQ(ev.size(), n);

  std::complex<double> sum = 0.0, prod = 1.0;
  for (const auto& e : ev) {
    sum += e;
    prod *= e;
  }
  double trace = 0.0;
  for (std::size_t i = 0; i < n; ++i) trace += a(i, i);

  EXPECT_NEAR(sum.real(), trace, 1e-6 * (1.0 + std::abs(trace)));
  EXPECT_NEAR(sum.imag(), 0.0, 1e-6);
  const double det = Lu(a).determinant();
  EXPECT_NEAR(prod.real(), det, 1e-5 * (1.0 + std::abs(det)));
  EXPECT_NEAR(prod.imag(), 0.0, 1e-5 * (1.0 + std::abs(det)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigRandom,
                         ::testing::Values(102, 203, 304, 405, 506, 607, 708,
                                           809, 910, 1011, 1012, 1013));

TEST(EigTest, SpectralRadiusOfContractionBelowOne) {
  Matrix a{{0.5, 0.2}, {0.1, 0.4}};
  EXPECT_LT(spectral_radius(a), 1.0);
}

}  // namespace
}  // namespace eucon::linalg
