#include "rts/etf.h"

#include <gtest/gtest.h>

#include "common/stats.h"

namespace eucon::rts {
namespace {

TEST(EtfProfileTest, ConstantProfile) {
  const EtfProfile p = EtfProfile::constant(0.5);
  EXPECT_DOUBLE_EQ(p.factor_at(0), 0.5);
  EXPECT_DOUBLE_EQ(p.factor_at(units_to_ticks(1e6)), 0.5);
}

TEST(EtfProfileTest, StepsSelectByTime) {
  // The paper's Experiment II profile: 0.5, then 0.9 at 100Ts, 0.33 at 200Ts.
  const EtfProfile p = EtfProfile::steps(
      {{0.0, 0.5}, {100000.0, 0.9}, {200000.0, 0.33}});
  EXPECT_DOUBLE_EQ(p.factor_at(0), 0.5);
  EXPECT_DOUBLE_EQ(p.factor_at(units_to_ticks(99999.0)), 0.5);
  EXPECT_DOUBLE_EQ(p.factor_at(units_to_ticks(100000.0)), 0.9);
  EXPECT_DOUBLE_EQ(p.factor_at(units_to_ticks(150000.0)), 0.9);
  EXPECT_DOUBLE_EQ(p.factor_at(units_to_ticks(200000.0)), 0.33);
  EXPECT_DOUBLE_EQ(p.factor_at(units_to_ticks(300000.0)), 0.33);
}

TEST(EtfProfileTest, RejectsBadProfiles) {
  EXPECT_THROW(EtfProfile::constant(0.0), std::invalid_argument);
  EXPECT_THROW(EtfProfile::constant(-1.0), std::invalid_argument);
  EXPECT_THROW(EtfProfile::steps({}), std::invalid_argument);
  EXPECT_THROW(EtfProfile::steps({{5.0, 1.0}}), std::invalid_argument);  // no t=0
  EXPECT_THROW(EtfProfile::steps({{0.0, 1.0}, {0.0, 2.0}}),
               std::invalid_argument);  // not increasing
  EXPECT_THROW(EtfProfile::steps({{0.0, 1.0}, {10.0, -2.0}}),
               std::invalid_argument);
}

TEST(ExecTimeModelTest, DeterministicWithoutJitter) {
  ExecutionTimeModel m(EtfProfile::constant(0.5), 0.0, Rng(1));
  EXPECT_EQ(m.sample(35.0, 0), units_to_ticks(17.5));
  EXPECT_EQ(m.sample(35.0, 12345), units_to_ticks(17.5));
}

TEST(ExecTimeModelTest, FollowsProfileSteps) {
  ExecutionTimeModel m(
      EtfProfile::steps({{0.0, 1.0}, {100.0, 2.0}}), 0.0, Rng(1));
  EXPECT_EQ(m.sample(10.0, units_to_ticks(50.0)), units_to_ticks(10.0));
  EXPECT_EQ(m.sample(10.0, units_to_ticks(150.0)), units_to_ticks(20.0));
}

TEST(ExecTimeModelTest, JitterStaysInBandAndHasUnitMean) {
  const double jitter = 0.2;
  ExecutionTimeModel m(EtfProfile::constant(1.0), jitter, Rng(3));
  RunningStats s;
  const double c = 40.0;
  for (int i = 0; i < 20000; ++i) {
    const Ticks t = m.sample(c, 0);
    const double units = ticks_to_units(t);
    EXPECT_GE(units, c * (1.0 - jitter) - 1e-6);
    EXPECT_LE(units, c * (1.0 + jitter) + 1e-6);
    s.add(units);
  }
  EXPECT_NEAR(s.mean(), c, 0.1);  // unit-mean multiplier
}

TEST(ExecTimeModelTest, NeverReturnsZero) {
  ExecutionTimeModel m(EtfProfile::constant(1e-9), 0.0, Rng(1));
  EXPECT_GE(m.sample(1e-9, 0), 1);
}

TEST(ExecTimeModelTest, RejectsBadJitter) {
  EXPECT_THROW(ExecutionTimeModel(EtfProfile::constant(1.0), -0.1, Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(ExecutionTimeModel(EtfProfile::constant(1.0), 1.0, Rng(1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace eucon::rts
