#include "rts/event.h"

#include <gtest/gtest.h>

namespace eucon::rts {
namespace {

Event at(Ticks t, EventKind kind = EventKind::kTaskRelease) {
  Event e;
  e.time = t;
  e.kind = kind;
  return e;
}

TEST(EventQueueTest, OrdersByTime) {
  EventQueue q;
  q.push(at(30));
  q.push(at(10));
  q.push(at(20));
  EXPECT_EQ(q.pop().time, 10);
  EXPECT_EQ(q.pop().time, 20);
  EXPECT_EQ(q.pop().time, 30);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, FifoAtEqualTimes) {
  EventQueue q;
  Event a = at(5);
  a.task = 1;
  Event b = at(5);
  b.task = 2;
  Event c = at(5);
  c.task = 3;
  q.push(a);
  q.push(b);
  q.push(c);
  EXPECT_EQ(q.pop().task, 1);
  EXPECT_EQ(q.pop().task, 2);
  EXPECT_EQ(q.pop().task, 3);
}

TEST(EventQueueTest, InterleavedPushPopPreservesCausality) {
  EventQueue q;
  q.push(at(10));
  const Event first = q.pop();
  EXPECT_EQ(first.time, 10);
  // An event created while processing time 10 for the same instant must
  // come out after previously queued time-10 events.
  Event earlier = at(10);
  earlier.task = 7;
  q.push(earlier);
  Event later = at(10);
  later.task = 8;
  q.push(later);
  EXPECT_EQ(q.pop().task, 7);
  EXPECT_EQ(q.pop().task, 8);
}

TEST(EventQueueTest, SizeTracksContents) {
  EventQueue q;
  EXPECT_EQ(q.size(), 0u);
  q.push(at(1));
  q.push(at(2));
  EXPECT_EQ(q.size(), 2u);
  (void)q.pop();
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, PayloadSurvives) {
  EventQueue q;
  Event e = at(42, EventKind::kCompletion);
  e.processor = 3;
  e.gen = 17;
  q.push(e);
  const Event out = q.pop();
  EXPECT_EQ(out.kind, EventKind::kCompletion);
  EXPECT_EQ(out.processor, 3);
  EXPECT_EQ(out.gen, 17u);
}

}  // namespace
}  // namespace eucon::rts
