// Execution-time distribution shapes beyond the uniform default.
#include <gtest/gtest.h>

#include "common/stats.h"
#include "eucon/eucon.h"
#include "rts/etf.h"

namespace eucon::rts {
namespace {

ExecModelParams params_for(ExecDistribution dist) {
  ExecModelParams p;
  p.distribution = dist;
  p.jitter = 0.2;
  return p;
}

TEST(ExecDistributionTest, AllShapesHaveUnitMean) {
  for (auto dist : {ExecDistribution::kUniform, ExecDistribution::kExponential,
                    ExecDistribution::kBimodal}) {
    ExecutionTimeModel m(EtfProfile::constant(1.0), params_for(dist), Rng(3));
    RunningStats s;
    const double c = 50.0;
    for (int i = 0; i < 60000; ++i) s.add(ticks_to_units(m.sample(c, 0)));
    EXPECT_NEAR(s.mean(), c, c * 0.02) << "distribution " << static_cast<int>(dist);
  }
}

TEST(ExecDistributionTest, ExponentialHasHeavierTail) {
  ExecutionTimeModel uni(EtfProfile::constant(1.0),
                         params_for(ExecDistribution::kUniform), Rng(5));
  ExecutionTimeModel expo(EtfProfile::constant(1.0),
                          params_for(ExecDistribution::kExponential), Rng(5));
  const double c = 10.0;
  double uni_max = 0, expo_max = 0;
  for (int i = 0; i < 20000; ++i) {
    uni_max = std::max(uni_max, ticks_to_units(uni.sample(c, 0)));
    expo_max = std::max(expo_max, ticks_to_units(expo.sample(c, 0)));
  }
  EXPECT_LE(uni_max, c * 1.2 + 1e-9);  // bounded band
  EXPECT_GT(expo_max, c * 3.0);        // unbounded tail shows up
}

TEST(ExecDistributionTest, BimodalHitsExactlyTwoValues) {
  ExecModelParams p = params_for(ExecDistribution::kBimodal);
  p.burst_prob = 0.2;
  p.burst_factor = 2.0;
  ExecutionTimeModel m(EtfProfile::constant(1.0), p, Rng(7));
  const double c = 30.0;
  const double nominal = c * (1.0 - 0.2 * 2.0) / 0.8;  // 22.5
  int bursts = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    const double v = ticks_to_units(m.sample(c, 0));
    if (std::abs(v - 60.0) < 1e-6)
      ++bursts;
    else
      EXPECT_NEAR(v, nominal, 1e-6);
  }
  EXPECT_NEAR(static_cast<double>(bursts) / trials, 0.2, 0.02);
}

TEST(ExecDistributionTest, BimodalParamsValidated) {
  ExecModelParams p = params_for(ExecDistribution::kBimodal);
  p.burst_prob = 0.5;
  p.burst_factor = 3.0;  // 1.5 >= 1: cannot keep unit mean
  EXPECT_THROW(ExecutionTimeModel(EtfProfile::constant(1.0), p, Rng(1)),
               std::invalid_argument);
  p.burst_factor = 0.5;  // must exceed 1
  EXPECT_THROW(ExecutionTimeModel(EtfProfile::constant(1.0), p, Rng(1)),
               std::invalid_argument);
}

TEST(ExecDistributionTest, EuconStillControlsBurstyWorkloads) {
  // Heavy-tailed service times raise the utilization measurement noise
  // (sigma ~0.08); the hard u <= B constraint reacts to every upward
  // excursion, so the mean settles conservatively *below* the set point —
  // overload protection holds, at a modest utilization cost.
  ExperimentConfig cfg;
  cfg.spec = workloads::medium();
  cfg.mpc = workloads::medium_controller_params();
  cfg.sim.etf = rts::EtfProfile::constant(0.5);
  cfg.sim.exec_distribution = ExecDistribution::kExponential;
  cfg.sim.seed = 11;
  cfg.num_periods = 300;
  const ExperimentResult res = run_experiment(cfg);
  for (std::size_t p = 0; p < 4; ++p) {
    const auto a = metrics::acceptability(res, p, 100);
    EXPECT_LE(a.mean, a.set_point + 0.02)
        << "P" << p + 1 << ": overload protection must hold";
    EXPECT_GE(a.mean, a.set_point - 0.08)
        << "P" << p + 1 << ": conservatism stays bounded";
    EXPECT_LT(a.stddev, 0.12) << "P" << p + 1;
  }
}

}  // namespace
}  // namespace eucon::rts
