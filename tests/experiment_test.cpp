#include "eucon/experiment.h"

#include <gtest/gtest.h>

#include "eucon/workloads.h"

namespace eucon {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.spec = workloads::simple();
  cfg.mpc = workloads::simple_controller_params();
  cfg.num_periods = 30;
  cfg.sim.etf = rts::EtfProfile::constant(0.5);
  return cfg;
}

TEST(ExperimentTest, TraceHasOneRecordPerPeriod) {
  const ExperimentResult res = run_experiment(small_config());
  ASSERT_EQ(res.trace.size(), 30u);
  EXPECT_EQ(res.trace.front().k, 1);
  EXPECT_EQ(res.trace.back().k, 30);
  EXPECT_EQ(res.trace[0].u.size(), 2u);
  EXPECT_EQ(res.trace[0].rates.size(), 3u);
}

TEST(ExperimentTest, SetPointsRecorded) {
  const ExperimentResult res = run_experiment(small_config());
  ASSERT_EQ(res.set_points.size(), 2u);
  EXPECT_NEAR(res.set_points[0], 0.828, 5e-4);
}

TEST(ExperimentTest, SeriesAccessors) {
  const ExperimentResult res = run_experiment(small_config());
  EXPECT_EQ(res.utilization_series(0).size(), 30u);
  EXPECT_EQ(res.rate_series(2).size(), 30u);
  EXPECT_DOUBLE_EQ(res.utilization_series(1)[4], res.trace[4].u[1]);
}

TEST(ExperimentTest, DeterministicForSameConfig) {
  const ExperimentResult a = run_experiment(small_config());
  const ExperimentResult b = run_experiment(small_config());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].u, b.trace[i].u);
    EXPECT_EQ(a.trace[i].rates, b.trace[i].rates);
  }
}

TEST(ExperimentTest, OpenControllerKeepsConstantRates) {
  ExperimentConfig cfg = small_config();
  cfg.controller = ControllerKind::kOpen;
  const ExperimentResult res = run_experiment(cfg);
  for (const auto& rec : res.trace)
    EXPECT_EQ(rec.rates, res.trace.front().rates);
}

TEST(ExperimentTest, PidControllerRuns) {
  ExperimentConfig cfg = small_config();
  cfg.controller = ControllerKind::kPid;
  cfg.num_periods = 100;
  const ExperimentResult res = run_experiment(cfg);
  // PI action should get close to the set point at nominal-ish gain.
  EXPECT_NEAR(res.trace.back().u[0], 0.828, 0.1);
}

TEST(ExperimentTest, HookObservesEveryPeriod) {
  ExperimentConfig cfg = small_config();
  int calls = 0;
  cfg.on_period = [&](int k, control::Controller& c) {
    ++calls;
    EXPECT_EQ(c.name(), "EUCON");
    EXPECT_GE(k, 1);
    EXPECT_LE(k, 30);
  };
  (void)run_experiment(cfg);
  EXPECT_EQ(calls, 30);
}

TEST(ExperimentTest, HookCanChangeSetPointsOnline) {
  ExperimentConfig cfg = small_config();
  cfg.num_periods = 120;
  cfg.on_period = [](int k, control::Controller& c) {
    if (k == 60)
      dynamic_cast<control::MpcController&>(c).set_set_points(
          linalg::Vector{0.5, 0.5});
  };
  const ExperimentResult res = run_experiment(cfg);
  EXPECT_NEAR(res.trace[55].u[0], 0.828, 0.05);  // before the change
  EXPECT_NEAR(res.trace[119].u[0], 0.5, 0.05);   // after it settles
}

TEST(ExperimentTest, ControllerKindNames) {
  EXPECT_STREQ(controller_kind_name(ControllerKind::kEucon), "EUCON");
  EXPECT_STREQ(controller_kind_name(ControllerKind::kOpen), "OPEN");
  EXPECT_STREQ(controller_kind_name(ControllerKind::kPid), "PID");
}

TEST(ExperimentTest, RejectsBadConfig) {
  ExperimentConfig cfg = small_config();
  cfg.num_periods = 0;
  EXPECT_THROW(run_experiment(cfg), std::invalid_argument);
  cfg = small_config();
  cfg.sampling_period = 0.0;
  EXPECT_THROW(run_experiment(cfg), std::invalid_argument);
}

TEST(ExperimentTest, CustomSetPoints) {
  ExperimentConfig cfg = small_config();
  cfg.set_points = linalg::Vector{0.6, 0.7};
  cfg.num_periods = 100;
  const ExperimentResult res = run_experiment(cfg);
  EXPECT_NEAR(res.trace.back().u[0], 0.6, 0.05);
  EXPECT_NEAR(res.trace.back().u[1], 0.7, 0.05);
}

}  // namespace
}  // namespace eucon
