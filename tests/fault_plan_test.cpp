// FaultPlan schema: the JSON parser, plan validation, and the FaultInjector
// state machine (scripted windows, determinism, draw-count discipline).
#include "eucon/faults.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace eucon::faults {
namespace {

TEST(FaultPlanTest, EmptyObjectIsEmptyPlan) {
  const FaultPlan plan = parse_fault_plan("{}");
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.seed, 0u);
  EXPECT_EQ(plan.actuation_delay, 0);
  EXPECT_FALSE(plan.lane_loss.enabled());
}

TEST(FaultPlanTest, ParsesFullSchema) {
  const FaultPlan plan = parse_fault_plan(R"({
    "seed": 7,
    "gilbert_elliott": {"p_enter": 0.05, "p_exit": 0.3,
                        "loss_good": 0.01, "loss_bad": 0.9},
    "actuation_loss": 0.1,
    "actuation_delay": 2,
    "lane_outages": [{"lane": 0, "start": 5, "duration": 50}],
    "actuation_outages": [{"processor": 1, "start": 20, "duration": 5}],
    "overload_spikes": [{"processor": 0, "start": 30, "duration": 10,
                         "exec": 50.0}],
    "controller_blackouts": [{"start": 60, "duration": 10}]
  })");
  EXPECT_FALSE(plan.empty());
  EXPECT_EQ(plan.seed, 7u);
  EXPECT_TRUE(plan.lane_loss.enabled());
  EXPECT_DOUBLE_EQ(plan.lane_loss.p_enter, 0.05);
  EXPECT_DOUBLE_EQ(plan.lane_loss.p_exit, 0.3);
  EXPECT_DOUBLE_EQ(plan.lane_loss.loss_good, 0.01);
  EXPECT_DOUBLE_EQ(plan.lane_loss.loss_bad, 0.9);
  EXPECT_DOUBLE_EQ(plan.actuation_loss, 0.1);
  EXPECT_EQ(plan.actuation_delay, 2);
  ASSERT_EQ(plan.lane_outages.size(), 1u);
  EXPECT_EQ(plan.lane_outages[0].lane, 0);
  EXPECT_EQ(plan.lane_outages[0].start, 5);
  EXPECT_EQ(plan.lane_outages[0].duration, 50);
  ASSERT_EQ(plan.actuation_outages.size(), 1u);
  EXPECT_EQ(plan.actuation_outages[0].processor, 1);
  ASSERT_EQ(plan.overload_spikes.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.overload_spikes[0].exec_units, 50.0);
  ASSERT_EQ(plan.blackouts.size(), 1u);
  EXPECT_EQ(plan.blackouts[0].start, 60);
  EXPECT_EQ(plan.blackouts[0].duration, 10);
  plan.validate(2);  // must not throw for a 2-processor system
}

TEST(FaultPlanTest, UnknownKeysRejected) {
  // A typoed field must never silently disable a fault source.
  EXPECT_THROW(parse_fault_plan(R"({"sed": 7})"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan(R"({"gilbert_elliott": {"p_entr": 0.1}})"),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_plan(R"({"lane_outages": [{"lan": 0}]})"),
               std::invalid_argument);
  EXPECT_THROW(
      parse_fault_plan(R"({"controller_blackouts": [{"begin": 3}]})"),
      std::invalid_argument);
}

TEST(FaultPlanTest, MalformedJsonRejected) {
  EXPECT_THROW(parse_fault_plan(""), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("["), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("{"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan(R"({"seed": })"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan(R"({"seed" 7})"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan(R"({"seed": 7} trailing)"),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_plan(R"({"seed": "unterminated)"),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_plan(R"({"seed": nan})"), std::invalid_argument);
}

TEST(FaultPlanTest, ValidateRejectsOutOfRange) {
  FaultPlan plan;
  plan.lane_loss.p_enter = 1.5;
  EXPECT_THROW(plan.validate(2), std::invalid_argument);

  plan = FaultPlan{};
  plan.actuation_loss = 1.0;  // must stay < 1: a command must eventually land
  EXPECT_THROW(plan.validate(2), std::invalid_argument);

  plan = FaultPlan{};
  plan.actuation_delay = -1;
  EXPECT_THROW(plan.validate(2), std::invalid_argument);

  plan = FaultPlan{};
  plan.lane_outages.push_back({2, 1, 1});  // lane index out of range
  EXPECT_THROW(plan.validate(2), std::invalid_argument);

  plan = FaultPlan{};
  plan.lane_outages.push_back({0, 0, 1});  // periods are 1-based
  EXPECT_THROW(plan.validate(2), std::invalid_argument);

  plan = FaultPlan{};
  plan.blackouts.push_back({1, 0});  // empty window
  EXPECT_THROW(plan.validate(2), std::invalid_argument);

  plan = FaultPlan{};
  plan.overload_spikes.push_back({0, 1, 1, 0.0});  // no-op spike
  EXPECT_THROW(plan.validate(2), std::invalid_argument);
}

TEST(FaultPlanTest, StationaryLossClosedForm) {
  GilbertElliott ge;
  ge.p_enter = 0.05;
  ge.p_exit = 0.25;
  ge.loss_good = 0.02;
  ge.loss_bad = 0.8;
  const double pi_bad = 0.05 / 0.3;
  EXPECT_NEAR(ge.stationary_loss(),
              (1.0 - pi_bad) * 0.02 + pi_bad * 0.8, 1e-12);
  // Disabled model never loses.
  EXPECT_DOUBLE_EQ(GilbertElliott{}.stationary_loss(), 0.0);
}

TEST(FaultPlanTest, DegradePolicyNamesRoundTrip) {
  const DegradePolicy all[] = {DegradePolicy::kNone, DegradePolicy::kHoldRates,
                               DegradePolicy::kOpenLoop,
                               DegradePolicy::kDecentralized};
  for (DegradePolicy p : all) {
    EXPECT_EQ(parse_degrade_policy(degrade_policy_name(p)), p);
  }
  EXPECT_THROW(parse_degrade_policy("hold"), std::invalid_argument);
  EXPECT_THROW(parse_degrade_policy(""), std::invalid_argument);
}

TEST(FaultPlanTest, InjectorHonorsScriptedWindows) {
  FaultPlan plan;
  plan.lane_outages.push_back({1, 3, 2});       // lane 1 down at k = 3, 4
  plan.actuation_outages.push_back({0, 2, 1});  // processor 0 at k = 2
  plan.overload_spikes.push_back({0, 4, 2, 10.0});
  plan.overload_spikes.push_back({0, 5, 1, 5.0});  // overlaps at k = 5
  plan.blackouts.push_back({5, 1});
  FaultInjector inj(plan, 2, 1);

  for (int k = 1; k <= 6; ++k) {
    inj.begin_period(k);
    const bool lane1_down = k == 3 || k == 4;
    EXPECT_EQ(inj.lane_loss_mask()[1] != 0, lane1_down) << "k=" << k;
    EXPECT_EQ(inj.lane_loss_mask()[0], 0) << "k=" << k;
    EXPECT_EQ(inj.forced_losses_this_period(), lane1_down ? 1u : 0u);
    EXPECT_EQ(inj.actuation_lost(0), k == 2) << "k=" << k;
    EXPECT_FALSE(inj.actuation_lost(1));
    const double overload = k == 4 ? 10.0 : (k == 5 ? 15.0 : 0.0);
    EXPECT_DOUBLE_EQ(inj.overload_for(0), overload) << "k=" << k;
    EXPECT_DOUBLE_EQ(inj.overload_for(1), 0.0);
    EXPECT_EQ(inj.controller_down(), k == 5) << "k=" << k;
  }
  EXPECT_EQ(inj.forced_losses_total(), 2u);
}

TEST(FaultPlanTest, InjectorIsDeterministicPerSeed) {
  FaultPlan plan;
  plan.lane_loss.p_enter = 0.1;
  plan.lane_loss.p_exit = 0.3;
  plan.lane_loss.loss_good = 0.05;
  plan.lane_loss.loss_bad = 0.9;
  plan.actuation_loss = 0.2;

  FaultInjector a(plan, 3, 42), b(plan, 3, 42), c(plan, 3, 43);
  bool any_difference_from_c = false;
  for (int k = 1; k <= 200; ++k) {
    a.begin_period(k);
    b.begin_period(k);
    c.begin_period(k);
    EXPECT_EQ(a.lane_loss_mask(), b.lane_loss_mask()) << "k=" << k;
    for (std::size_t p = 0; p < 3; ++p) {
      EXPECT_EQ(a.actuation_lost(p), b.actuation_lost(p));
    }
    if (a.lane_loss_mask() != c.lane_loss_mask()) any_difference_from_c = true;
  }
  EXPECT_EQ(a.forced_losses_total(), b.forced_losses_total());
  // A different run seed must draw a different stream.
  EXPECT_TRUE(any_difference_from_c);
}

TEST(FaultPlanTest, InjectorRequiresSequentialPeriods) {
  const FaultPlan plan;
  FaultInjector inj(plan, 2, 1);
  EXPECT_THROW(inj.begin_period(2), std::invalid_argument);
  inj.begin_period(1);
  EXPECT_THROW(inj.begin_period(1), std::invalid_argument);
  EXPECT_THROW(inj.begin_period(3), std::invalid_argument);
  inj.begin_period(2);
}

TEST(FaultPlanTest, LoadFileErrorsAreFriendly) {
  EXPECT_THROW(load_fault_plan_file("/nonexistent/plan.json"),
               std::runtime_error);
}

}  // namespace
}  // namespace eucon::faults
