// Failure injection: lossy feedback lanes and task suspension.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "eucon/eucon.h"
#include "eucon/feedback_lane.h"

namespace eucon {
namespace {

ExperimentConfig base_config() {
  ExperimentConfig cfg;
  cfg.spec = workloads::simple();
  cfg.mpc = workloads::simple_controller_params();
  cfg.sim.etf = rts::EtfProfile::constant(0.5);
  cfg.sim.jitter = 0.1;
  cfg.sim.seed = 42;
  cfg.num_periods = 300;
  return cfg;
}

TEST(FaultsTest, NoLossByDefault) {
  const ExperimentResult res = run_experiment(base_config());
  EXPECT_EQ(res.lost_reports, 0u);
}

TEST(FaultsTest, LossCountMatchesProbability) {
  ExperimentConfig cfg = base_config();
  cfg.report_loss_probability = 0.2;
  const ExperimentResult res = run_experiment(cfg);

  // The lanes' RNG stream depends only on (seed, loss probability) and each
  // deliver() consumes exactly one draw per processor, so a shadow instance
  // fed the same number of periods predicts the loss count exactly — no
  // statistical tolerance needed.
  FeedbackLanes shadow(2, cfg.report_loss_probability, cfg.sim.seed);
  const linalg::Vector probe(2, 0.5);
  for (int k = 0; k < cfg.num_periods; ++k) (void)shadow.deliver(probe);
  EXPECT_EQ(res.lost_reports, shadow.lost_reports());

  // And the realized count must be statistically sane for Binomial(600,
  // 0.2): mean 120, sigma = sqrt(600 * 0.2 * 0.8) ~= 9.8; a 6-sigma band
  // (~59) only fails on a broken RNG, never on an unlucky seed.
  const double n = 2.0 * static_cast<double>(cfg.num_periods);
  const double p = cfg.report_loss_probability;
  const double sigma = std::sqrt(n * p * (1.0 - p));
  EXPECT_NEAR(static_cast<double>(res.lost_reports), n * p, 6.0 * sigma);
}

TEST(FaultsTest, EuconToleratesModerateReportLoss) {
  ExperimentConfig cfg = base_config();
  cfg.report_loss_probability = 0.2;
  const ExperimentResult res = run_experiment(cfg);
  for (std::size_t p = 0; p < 2; ++p) {
    const auto a = metrics::acceptability(res, p);
    EXPECT_TRUE(a.acceptable())
        << "P" << p + 1 << " mean " << a.mean << " sd " << a.stddev;
  }
}

TEST(FaultsTest, HeavyLossDegradesButDoesNotDiverge) {
  ExperimentConfig cfg = base_config();
  cfg.report_loss_probability = 0.6;
  const ExperimentResult res = run_experiment(cfg);
  const auto a = metrics::utilization_stats(res, 0, 100);
  // Still hovering near the set point even with 60% of reports dropped
  // (stale measurements slow the loop but do not destabilize it at g<1).
  EXPECT_NEAR(a.mean(), 0.828, 0.08);
}

TEST(FaultsTest, LossIsDeterministicPerSeed) {
  ExperimentConfig cfg = base_config();
  cfg.report_loss_probability = 0.3;
  const ExperimentResult a = run_experiment(cfg);
  const ExperimentResult b = run_experiment(cfg);
  EXPECT_EQ(a.lost_reports, b.lost_reports);
  for (std::size_t i = 0; i < a.trace.size(); ++i)
    EXPECT_EQ(a.trace[i].u, b.trace[i].u);
}

TEST(FaultsTest, InvalidProbabilityRejected) {
  ExperimentConfig cfg = base_config();
  cfg.report_loss_probability = 1.0;
  EXPECT_THROW(run_experiment(cfg), std::invalid_argument);
  cfg.report_loss_probability = -0.1;
  EXPECT_THROW(run_experiment(cfg), std::invalid_argument);
}

TEST(FaultsTest, TaskSuspensionStopsReleases) {
  rts::Simulator sim(workloads::simple(), rts::SimOptions{});
  sim.run_until_units(5000.0);
  const auto released_before = sim.deadline_stats().task(2).instances_released;
  sim.set_task_enabled(2, false);
  EXPECT_FALSE(sim.task_enabled(2));
  sim.run_until_units(15000.0);
  const auto released_after = sim.deadline_stats().task(2).instances_released;
  EXPECT_LE(released_after, released_before + 1);  // nothing new releases
  // Other tasks unaffected.
  EXPECT_GT(sim.deadline_stats().task(0).instances_released,
            released_before * 2);
}

TEST(FaultsTest, TaskResumeRestartsReleases) {
  rts::Simulator sim(workloads::simple(), rts::SimOptions{});
  sim.run_until_units(2000.0);
  sim.set_task_enabled(0, false);
  sim.run_until_units(4000.0);
  const auto during = sim.deadline_stats().task(0).instances_released;
  sim.set_task_enabled(0, true);
  EXPECT_TRUE(sim.task_enabled(0));
  sim.run_until_units(8000.0);
  EXPECT_GT(sim.deadline_stats().task(0).instances_released, during + 10);
}

TEST(FaultsTest, SuspensionLowersUtilization) {
  rts::Simulator sim(workloads::simple(), rts::SimOptions{});
  sim.run_until_units(5000.0);
  const double before = sim.sample_utilizations()[0];
  sim.set_task_enabled(0, false);  // T1 contributes 35/60 of P1's load
  sim.run_until_units(10000.0);
  const double after = sim.sample_utilizations()[0];
  EXPECT_LT(after, before - 0.3);
}

TEST(FaultsTest, UnknownTaskIndexRejected) {
  rts::Simulator sim(workloads::simple(), rts::SimOptions{});
  EXPECT_THROW(sim.set_task_enabled(5, false), std::invalid_argument);
  EXPECT_THROW(sim.task_enabled(-1), std::invalid_argument);
}

TEST(FaultsTest, GilbertElliottMatchesStationaryLossClosedForm) {
  faults::FaultPlan plan;
  plan.lane_loss = {0.05, 0.25, 0.02, 0.8};
  const std::size_t lanes = 4;
  const int periods = 5000;
  faults::FaultInjector inj(plan, lanes, 99);
  for (int k = 1; k <= periods; ++k) inj.begin_period(k);

  const double n = static_cast<double>(lanes) * periods;
  const double p = plan.lane_loss.stationary_loss();
  EXPECT_NEAR(p, 0.15, 1e-12);  // (5/6)*0.02 + (1/6)*0.8
  // The chain correlates successive periods (lag-one correlation
  // rho = 1 - p_enter - p_exit > 0 here), which inflates the binomial
  // variance by at most (1 + rho) / (1 - rho); a 6-sigma band on that
  // upper bound only fails on a broken chain, never on an unlucky seed.
  const double rho = 1.0 - plan.lane_loss.p_enter - plan.lane_loss.p_exit;
  const double sigma =
      std::sqrt(n * p * (1.0 - p) * (1.0 + rho) / (1.0 - rho));
  EXPECT_NEAR(static_cast<double>(inj.forced_losses_total()), n * p,
              6.0 * sigma);
}

TEST(FaultsTest, ScriptedOutageForcesExactLossCount) {
  ExperimentConfig cfg = base_config();
  cfg.faults.lane_outages.push_back({0, 5, 10});  // lane 0 down, k = 5..14
  const ExperimentResult res = run_experiment(cfg);
  EXPECT_EQ(res.forced_losses, 10u);
  EXPECT_EQ(res.lost_reports, 10u);  // no i.i.d. loss on top
  EXPECT_EQ(res.max_staleness, 10);
}

TEST(FaultsTest, ColdStartLossHoldsRatesAtSetPoint) {
  // Regression for the cold-start phantom-idle bug: losing every report in
  // the very first period must not move the rates. The lanes now seed
  // "last delivered" with the set points, so a period-1 loss reads as "on
  // target" and the MPC commands no change.
  ExperimentConfig cfg = base_config();
  cfg.num_periods = 3;
  for (int p = 0; p < cfg.spec.num_processors; ++p)
    cfg.faults.lane_outages.push_back({p, 1, 1});
  const ExperimentResult res = run_experiment(cfg);

  const linalg::Vector r0 = cfg.spec.initial_rate_vector();
  double delta = 0.0;
  for (std::size_t j = 0; j < r0.size(); ++j)
    delta = std::max(delta, std::abs(res.trace[0].rates[j] - r0[j]));
  EXPECT_LT(delta, 1e-9);

  // The old initialization (last delivered = 0) reported phantom-idle
  // processors and slammed the rates upward — keep that failure mode
  // pinned via the lane_initial override.
  ExperimentConfig old = cfg;
  old.lane_initial =
      linalg::Vector(static_cast<std::size_t>(cfg.spec.num_processors), 0.0);
  const ExperimentResult bug = run_experiment(old);
  double raised = 0.0;
  for (std::size_t j = 0; j < r0.size(); ++j)
    raised = std::max(raised, bug.trace[0].rates[j] - r0[j]);
  EXPECT_GT(raised, 1e-3);
}

}  // namespace
}  // namespace eucon
