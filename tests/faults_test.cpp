// Failure injection: lossy feedback lanes and task suspension.
#include <gtest/gtest.h>

#include <cmath>

#include "eucon/eucon.h"
#include "eucon/feedback_lane.h"

namespace eucon {
namespace {

ExperimentConfig base_config() {
  ExperimentConfig cfg;
  cfg.spec = workloads::simple();
  cfg.mpc = workloads::simple_controller_params();
  cfg.sim.etf = rts::EtfProfile::constant(0.5);
  cfg.sim.jitter = 0.1;
  cfg.sim.seed = 42;
  cfg.num_periods = 300;
  return cfg;
}

TEST(FaultsTest, NoLossByDefault) {
  const ExperimentResult res = run_experiment(base_config());
  EXPECT_EQ(res.lost_reports, 0u);
}

TEST(FaultsTest, LossCountMatchesProbability) {
  ExperimentConfig cfg = base_config();
  cfg.report_loss_probability = 0.2;
  const ExperimentResult res = run_experiment(cfg);

  // The lanes' RNG stream depends only on (seed, loss probability) and each
  // deliver() consumes exactly one draw per processor, so a shadow instance
  // fed the same number of periods predicts the loss count exactly — no
  // statistical tolerance needed.
  FeedbackLanes shadow(2, cfg.report_loss_probability, cfg.sim.seed);
  const linalg::Vector probe(2, 0.5);
  for (int k = 0; k < cfg.num_periods; ++k) (void)shadow.deliver(probe);
  EXPECT_EQ(res.lost_reports, shadow.lost_reports());

  // And the realized count must be statistically sane for Binomial(600,
  // 0.2): mean 120, sigma = sqrt(600 * 0.2 * 0.8) ~= 9.8; a 6-sigma band
  // (~59) only fails on a broken RNG, never on an unlucky seed.
  const double n = 2.0 * static_cast<double>(cfg.num_periods);
  const double p = cfg.report_loss_probability;
  const double sigma = std::sqrt(n * p * (1.0 - p));
  EXPECT_NEAR(static_cast<double>(res.lost_reports), n * p, 6.0 * sigma);
}

TEST(FaultsTest, EuconToleratesModerateReportLoss) {
  ExperimentConfig cfg = base_config();
  cfg.report_loss_probability = 0.2;
  const ExperimentResult res = run_experiment(cfg);
  for (std::size_t p = 0; p < 2; ++p) {
    const auto a = metrics::acceptability(res, p);
    EXPECT_TRUE(a.acceptable())
        << "P" << p + 1 << " mean " << a.mean << " sd " << a.stddev;
  }
}

TEST(FaultsTest, HeavyLossDegradesButDoesNotDiverge) {
  ExperimentConfig cfg = base_config();
  cfg.report_loss_probability = 0.6;
  const ExperimentResult res = run_experiment(cfg);
  const auto a = metrics::utilization_stats(res, 0, 100);
  // Still hovering near the set point even with 60% of reports dropped
  // (stale measurements slow the loop but do not destabilize it at g<1).
  EXPECT_NEAR(a.mean(), 0.828, 0.08);
}

TEST(FaultsTest, LossIsDeterministicPerSeed) {
  ExperimentConfig cfg = base_config();
  cfg.report_loss_probability = 0.3;
  const ExperimentResult a = run_experiment(cfg);
  const ExperimentResult b = run_experiment(cfg);
  EXPECT_EQ(a.lost_reports, b.lost_reports);
  for (std::size_t i = 0; i < a.trace.size(); ++i)
    EXPECT_EQ(a.trace[i].u, b.trace[i].u);
}

TEST(FaultsTest, InvalidProbabilityRejected) {
  ExperimentConfig cfg = base_config();
  cfg.report_loss_probability = 1.0;
  EXPECT_THROW(run_experiment(cfg), std::invalid_argument);
  cfg.report_loss_probability = -0.1;
  EXPECT_THROW(run_experiment(cfg), std::invalid_argument);
}

TEST(FaultsTest, TaskSuspensionStopsReleases) {
  rts::Simulator sim(workloads::simple(), rts::SimOptions{});
  sim.run_until_units(5000.0);
  const auto released_before = sim.deadline_stats().task(2).instances_released;
  sim.set_task_enabled(2, false);
  EXPECT_FALSE(sim.task_enabled(2));
  sim.run_until_units(15000.0);
  const auto released_after = sim.deadline_stats().task(2).instances_released;
  EXPECT_LE(released_after, released_before + 1);  // nothing new releases
  // Other tasks unaffected.
  EXPECT_GT(sim.deadline_stats().task(0).instances_released,
            released_before * 2);
}

TEST(FaultsTest, TaskResumeRestartsReleases) {
  rts::Simulator sim(workloads::simple(), rts::SimOptions{});
  sim.run_until_units(2000.0);
  sim.set_task_enabled(0, false);
  sim.run_until_units(4000.0);
  const auto during = sim.deadline_stats().task(0).instances_released;
  sim.set_task_enabled(0, true);
  EXPECT_TRUE(sim.task_enabled(0));
  sim.run_until_units(8000.0);
  EXPECT_GT(sim.deadline_stats().task(0).instances_released, during + 10);
}

TEST(FaultsTest, SuspensionLowersUtilization) {
  rts::Simulator sim(workloads::simple(), rts::SimOptions{});
  sim.run_until_units(5000.0);
  const double before = sim.sample_utilizations()[0];
  sim.set_task_enabled(0, false);  // T1 contributes 35/60 of P1's load
  sim.run_until_units(10000.0);
  const double after = sim.sample_utilizations()[0];
  EXPECT_LT(after, before - 0.3);
}

TEST(FaultsTest, UnknownTaskIndexRejected) {
  rts::Simulator sim(workloads::simple(), rts::SimOptions{});
  EXPECT_THROW(sim.set_task_enabled(5, false), std::invalid_argument);
  EXPECT_THROW(sim.task_enabled(-1), std::invalid_argument);
}

}  // namespace
}  // namespace eucon
