// Interactions between simulator features that are individually tested
// elsewhere: EDF × migration, tracing × suspension, EDF × proportional
// subdeadlines × dynamic rates, overhead × trace, links × EDF.
#include <gtest/gtest.h>

#include <map>

#include "eucon/eucon.h"

namespace eucon::rts {
namespace {

SystemSpec two_proc_chain() {
  SystemSpec s;
  s.num_processors = 2;
  TaskSpec chain;
  chain.name = "chain";
  chain.subtasks = {{0, 20.0}, {1, 30.0}};
  chain.rate_min = 1.0 / 2000.0;
  chain.rate_max = 1.0 / 60.0;
  chain.initial_rate = 1.0 / 120.0;
  TaskSpec local;
  local.name = "local";
  local.subtasks = {{0, 25.0}};
  local.rate_min = 1.0 / 2000.0;
  local.rate_max = 1.0 / 50.0;
  local.initial_rate = 1.0 / 100.0;
  s.tasks = {chain, local};
  return s;
}

TEST(FeatureInteractionTest, EdfSurvivesMigration) {
  SimOptions opts;
  opts.policy = SchedulingPolicy::kEdf;
  Simulator sim(two_proc_chain(), opts);
  sim.run_until_units(5000.0);
  (void)sim.sample_utilizations();
  sim.migrate_subtask(0, 1, 0);  // chain's 2nd subtask joins P1
  sim.run_until_units(6000.0);
  (void)sim.sample_utilizations();
  sim.run_until_units(12000.0);
  const auto u = sim.sample_utilizations();
  // All load now on P1: 20/120 + 30/120 + 25/100 ≈ 0.667; P2 idle.
  EXPECT_NEAR(u[0], 20.0 / 120 + 30.0 / 120 + 25.0 / 100, 0.02);
  EXPECT_NEAR(u[1], 0.0, 1e-9);
  // Post-migration schedule remains deadline-clean (EDF, u < 1).
  EXPECT_DOUBLE_EQ(sim.deadline_stats().subtask_miss_ratio(), 0.0);
}

TEST(FeatureInteractionTest, TraceReflectsSuspension) {
  SimOptions opts;
  opts.enable_trace = true;
  Simulator sim(two_proc_chain(), opts);
  sim.run_until_units(3000.0);
  sim.set_task_enabled(1, false);
  sim.run_until_units(9000.0);
  // No release records for the suspended task after the suspension time.
  const Ticks cut = units_to_ticks(3100.0);
  for (const auto& r : sim.trace().records()) {
    if (r.kind != TraceKind::kRelease) continue;
    if (r.task == 1) {
      EXPECT_LE(r.time, cut);
    }
  }
}

TEST(FeatureInteractionTest, EdfProportionalSubdeadlinesAndRateChanges) {
  SimOptions opts;
  opts.policy = SchedulingPolicy::kEdf;
  opts.subdeadline_policy = SubdeadlinePolicy::kProportionalToExec;
  Simulator sim(two_proc_chain(), opts);
  sim.run_until_units(4000.0);
  (void)sim.sample_utilizations();
  sim.set_rates({1.0 / 80.0, 1.0 / 70.0});
  sim.run_until_units(5000.0);
  (void)sim.sample_utilizations();
  sim.run_until_units(10000.0);
  const auto u = sim.sample_utilizations();
  EXPECT_NEAR(u[0], 20.0 / 80 + 25.0 / 70, 0.02);
  EXPECT_NEAR(u[1], 30.0 / 80, 0.02);
  EXPECT_DOUBLE_EQ(sim.deadline_stats().subtask_miss_ratio(), 0.0);
}

TEST(FeatureInteractionTest, OverheadAppearsInTrace) {
  SimOptions opts;
  opts.enable_trace = true;
  Simulator sim(two_proc_chain(), opts);
  sim.run_until_units(1000.0);
  sim.inject_overhead(0, 50.0);
  sim.run_until_units(2000.0);
  bool saw_overhead = false;
  for (const auto& r : sim.trace().records())
    if (r.task == -1 && r.kind == TraceKind::kCompletion) saw_overhead = true;
  EXPECT_TRUE(saw_overhead);
}

TEST(FeatureInteractionTest, LinkedSystemUnderEdf) {
  network::LinkModelParams params;
  params.transmission_time = 5.0;
  const auto linked = network::with_network_links(two_proc_chain(), params);
  SimOptions opts;
  opts.policy = SchedulingPolicy::kEdf;
  Simulator sim(linked.spec, opts);
  sim.run_until_units(12000.0);
  const auto u = sim.sample_utilizations();
  // The link carries one 5-unit message per chain period.
  const int link = linked.link_between(0, 1);
  EXPECT_NEAR(u[static_cast<std::size_t>(link)], 5.0 / 120, 0.01);
  EXPECT_DOUBLE_EQ(sim.deadline_stats().subtask_miss_ratio(), 0.0);
}

TEST(FeatureInteractionTest, SuspendResumeKeepsGuardSeparation) {
  SimOptions opts;
  opts.enable_trace = true;
  Simulator sim(two_proc_chain(), opts);
  sim.run_until_units(2000.0);
  sim.set_task_enabled(0, false);
  sim.run_until_units(2500.0);
  sim.set_task_enabled(0, true);
  sim.run_until_units(8000.0);
  // Consecutive releases of the chain's first subtask never violate the
  // minimum separation of one period (release guard across suspension).
  const Ticks period = rate_to_period_ticks(1.0 / 120.0);
  std::map<int, Ticks> last_release;
  for (const auto& r : sim.trace().records()) {
    if (r.kind != TraceKind::kRelease || r.task != 0 || r.subtask != 0)
      continue;
    auto it = last_release.find(r.task);
    if (it != last_release.end()) {
      EXPECT_GE(r.time - it->second, period - 1) << "guard separation";
    }
    last_release[r.task] = r.time;
  }
}

}  // namespace
}  // namespace eucon::rts
