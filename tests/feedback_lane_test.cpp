#include "eucon/feedback_lane.h"

#include <gtest/gtest.h>

namespace eucon {
namespace {

using linalg::Vector;

TEST(FeedbackLanesTest, LosslessPassesThrough) {
  FeedbackLanes lanes(3, 0.0, 1);
  const Vector u{0.1, 0.2, 0.3};
  EXPECT_TRUE(linalg::approx_equal(lanes.deliver(u), u, 0.0));
  EXPECT_EQ(lanes.lost_reports(), 0u);
  EXPECT_EQ(lanes.delivered_reports(), 3u);
}

TEST(FeedbackLanesTest, LossRepeatsLastDelivered) {
  FeedbackLanes lanes(1, 0.999999, 2);  // drops essentially everything
  const Vector first = lanes.deliver(Vector{0.5});
  // Whatever the first outcome, subsequent losses must repeat it.
  const Vector second = lanes.deliver(Vector{0.9});
  if (lanes.lost_reports() >= 2) {
    EXPECT_DOUBLE_EQ(second[0], first[0]);
  }
}

TEST(FeedbackLanesTest, InitialLossReportsZero) {
  // Before anything was delivered, a lost report reads as "no load".
  FeedbackLanes lanes(1, 0.999999, 3);
  const Vector seen = lanes.deliver(Vector{0.7});
  if (lanes.lost_reports() == 1) {
    EXPECT_DOUBLE_EQ(seen[0], 0.0);
  }
}

TEST(FeedbackLanesTest, LossRateMatchesProbability) {
  FeedbackLanes lanes(4, 0.25, 7);
  for (int k = 0; k < 2000; ++k) (void)lanes.deliver(Vector{0.1, 0.2, 0.3, 0.4});
  const double ratio =
      static_cast<double>(lanes.lost_reports()) /
      static_cast<double>(lanes.lost_reports() + lanes.delivered_reports());
  EXPECT_NEAR(ratio, 0.25, 0.02);
}

TEST(FeedbackLanesTest, DeterministicPerSeed) {
  FeedbackLanes a(2, 0.5, 11), b(2, 0.5, 11);
  for (int k = 0; k < 50; ++k) {
    const Vector u{0.01 * k, 0.02 * k};
    EXPECT_TRUE(linalg::approx_equal(a.deliver(u), b.deliver(u), 0.0));
  }
  EXPECT_EQ(a.lost_reports(), b.lost_reports());
}

TEST(FeedbackLanesTest, InitialSeenReportsSetPointOnEarlyLoss) {
  // The cold-start fix: seeded with the set points, a lost first report
  // reads as "on target" instead of "idle" (see docs/robustness.md).
  FeedbackLanes lanes(Vector{0.58, 0.73}, 0.0, 3);
  std::vector<unsigned char> forced = {1, 1};
  const Vector seen = lanes.deliver(Vector{0.2, 0.9}, &forced);
  EXPECT_DOUBLE_EQ(seen[0], 0.58);
  EXPECT_DOUBLE_EQ(seen[1], 0.73);
  EXPECT_EQ(lanes.lost_reports(), 2u);
}

TEST(FeedbackLanesTest, StalenessCountsConsecutiveLosses) {
  FeedbackLanes lanes(2, 0.0, 5);
  std::vector<unsigned char> lose_first = {1, 0};
  ASSERT_EQ(lanes.staleness(), (std::vector<int>{0, 0}));
  (void)lanes.deliver(Vector{0.1, 0.2}, &lose_first);
  (void)lanes.deliver(Vector{0.3, 0.4}, &lose_first);
  EXPECT_EQ(lanes.staleness(), (std::vector<int>{2, 0}));
  EXPECT_EQ(lanes.max_staleness(), 2);
  (void)lanes.deliver(Vector{0.5, 0.6});  // delivery resets the streak
  EXPECT_EQ(lanes.staleness(), (std::vector<int>{0, 0}));
  EXPECT_EQ(lanes.max_staleness(), 0);
}

TEST(FeedbackLanesTest, ForcedMaskDoesNotShiftIidStream) {
  // The i.i.d. draw is consumed before the forced flag is applied, so a
  // shadow instance with the same seed and no forcing sees the identical
  // loss outcomes on every unforced (lane, period).
  FeedbackLanes forced_lanes(2, 0.3, 17), shadow(2, 0.3, 17);
  const Vector u{0.4, 0.6};
  for (int k = 0; k < 200; ++k) {
    std::vector<unsigned char> forced = {
        static_cast<unsigned char>(k % 7 == 0), 0};
    std::vector<int> before = forced_lanes.staleness();
    std::vector<int> shadow_before = shadow.staleness();
    (void)forced_lanes.deliver(u, &forced);
    (void)shadow.deliver(u);
    for (std::size_t p = 0; p < 2; ++p) {
      if (forced[p] != 0) continue;
      const bool lost = forced_lanes.staleness()[p] > before[p];
      const bool shadow_lost = shadow.staleness()[p] > shadow_before[p];
      EXPECT_EQ(lost, shadow_lost) << "k=" << k << " lane " << p;
    }
  }
}

TEST(FeedbackLanesTest, RejectsBadArguments) {
  EXPECT_THROW(FeedbackLanes(0, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(FeedbackLanes(2, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(FeedbackLanes(2, -0.1, 1), std::invalid_argument);
  FeedbackLanes lanes(2, 0.0, 1);
  EXPECT_THROW(lanes.deliver(Vector{0.5}), std::invalid_argument);
}

}  // namespace
}  // namespace eucon
