// Hierarchical (sharded) controller: shard construction invariants, the
// coordinator's boundary reconciliation, and parity with the central MPC —
// a single all-covering shard must reproduce it exactly, and sharded runs
// must settle to the same steady state on every small-n scenario.
#include "control/hierarchical.h"

#include <gtest/gtest.h>

#include <cmath>

#include "control/linear_plant.h"
#include "control/sparse_model.h"
#include "control/topology.h"
#include "eucon/experiment.h"
#include "eucon/workloads.h"

namespace eucon::control {
namespace {

using linalg::Vector;

MpcParams cluster_params() {
  MpcParams p;
  p.prediction_horizon = 2;
  p.control_horizon = 1;
  p.tref_over_ts = 4.0;
  return p;
}

workloads::ChainClusterParams chain_params(int n) {
  workloads::ChainClusterParams params;
  params.num_processors = n;
  params.tasks_per_processor = 2;
  params.chain_length = 3;
  return params;
}

TEST(HierarchicalTest, ShardsPartitionTasksAndCoverRows) {
  const rts::SystemSpec spec = workloads::chain_cluster(chain_params(64), 3);
  const SparsePlantModel model = make_sparse_plant_model(spec);
  HierarchicalParams hier;
  hier.shard_size = 16;
  HierarchicalMpcController ctrl(model, cluster_params(), hier,
                                 spec.initial_rate_vector());
  ASSERT_EQ(ctrl.num_shards(), 4u);

  std::vector<int> owned_count(model.num_tasks(), 0);
  for (std::size_t s = 0; s < ctrl.num_shards(); ++s)
    for (std::size_t j : ctrl.shard_tasks(s)) ++owned_count[j];
  for (std::size_t j = 0; j < model.num_tasks(); ++j)
    EXPECT_EQ(owned_count[j], 1) << "task " << j;

  // Shard tasks follow the shared ownership rule, and every row a shard's
  // tasks touch is observed by that shard.
  const OwnershipTopology topo = compute_ownership(model.f);
  for (std::size_t s = 0; s < ctrl.num_shards(); ++s) {
    const auto& rows = ctrl.shard_rows(s);
    for (std::size_t j : ctrl.shard_tasks(s)) {
      EXPECT_EQ(ctrl.shard_of_processor(topo.owner[j]), s);
      for (std::size_t q = 0; q < model.num_processors(); ++q)
        if (model.f.at(q, j) > 0.0) {
          EXPECT_TRUE(std::find(rows.begin(), rows.end(), q) != rows.end())
              << "shard " << s << " misses row " << q;
        }
    }
  }
}

TEST(HierarchicalTest, BoundarySharesSumToOnePerRow) {
  const rts::SystemSpec spec = workloads::chain_cluster(chain_params(64), 5);
  const SparsePlantModel model = make_sparse_plant_model(spec);
  HierarchicalParams hier;
  hier.shard_size = 8;
  HierarchicalMpcController ctrl(model, cluster_params(), hier,
                                 spec.initial_rate_vector());
  Vector total(model.num_processors(), 0.0);
  bool any_boundary = false;
  for (std::size_t s = 0; s < ctrl.num_shards(); ++s) {
    const auto& rows = ctrl.shard_rows(s);
    const Vector& share = ctrl.shard_row_shares(s);
    for (std::size_t qi = 0; qi < rows.size(); ++qi) {
      EXPECT_GT(share[qi], 0.0);
      EXPECT_LE(share[qi], 1.0 + 1e-12);
      if (share[qi] < 1.0 - 1e-12) any_boundary = true;
      total[rows[qi]] += share[qi];
    }
  }
  EXPECT_TRUE(any_boundary) << "chain workload must produce boundary rows";
  for (std::size_t q = 0; q < total.size(); ++q)
    EXPECT_NEAR(total[q], 1.0, 1e-12) << "row " << q;
}

TEST(HierarchicalTest, SingleShardReproducesCentralMpcExactly) {
  // One shard covering every processor: the local model is the full model
  // (chain workloads touch every processor, so rows and columns come out
  // in identity order), the coordinator shares are all 1, and the
  // controller must follow the central MPC bit for bit.
  const rts::SystemSpec spec = workloads::chain_cluster(chain_params(16), 7);
  const SparsePlantModel model = make_sparse_plant_model(spec);
  const Vector r0 = spec.initial_rate_vector();
  HierarchicalParams hier;
  hier.shard_size = 16;
  HierarchicalMpcController sharded(model, cluster_params(), hier, r0);
  ASSERT_EQ(sharded.num_shards(), 1u);
  MpcController central(model.to_dense(), cluster_params(), r0);

  SparseLinearPlant plant(model, Vector(model.num_processors(), 1.0), r0);
  Vector u = plant.utilization();
  for (int k = 0; k < 40; ++k) {
    const Vector& r_sharded = sharded.update(u);
    const Vector& r_central = central.update(u);
    for (std::size_t j = 0; j < r_sharded.size(); ++j)
      ASSERT_EQ(r_sharded[j], r_central[j]) << "period " << k << " task " << j;
    u = plant.step(r_sharded);
  }
}

TEST(HierarchicalTest, ShardedConvergesToCentralFixpointOnSmallClusters) {
  // Shard-boundary reconciliation: on every n <= 128 chain scenario the
  // sharded controller must settle to the same steady-state utilization
  // the central MPC reaches — u = b on every processor (the plant's gains
  // make the set points reachable), despite every local MPC seeing only
  // its slice of the plant through the staggered Gauss–Seidel sweeps.
  for (const int n : {16, 32, 128}) {
    const rts::SystemSpec spec = workloads::chain_cluster(chain_params(n), 21);
    const SparsePlantModel model = make_sparse_plant_model(spec);
    const Vector r0 = spec.initial_rate_vector();
    const Vector gains(model.num_processors(), 1.0);

    HierarchicalParams hier;
    hier.shard_size = 8;  // forces many shards and real boundary traffic
    HierarchicalMpcController sharded(model, cluster_params(), hier, r0);
    SparseLinearPlant plant_s(model, gains, r0);
    Vector u_s = plant_s.utilization();
    for (int k = 0; k < 200; ++k) u_s = plant_s.step(sharded.update(u_s));

    MpcController central(model.to_dense(), cluster_params(), r0);
    SparseLinearPlant plant_c(model, gains, r0);
    Vector u_c = plant_c.utilization();
    for (int k = 0; k < 200; ++k) u_c = plant_c.step(central.update(u_c));

    for (std::size_t p = 0; p < model.num_processors(); ++p) {
      EXPECT_NEAR(u_c[p], model.b[p], 0.005) << "central n=" << n << " P" << p;
      EXPECT_NEAR(u_s[p], model.b[p], 0.005) << "sharded n=" << n << " P" << p;
      EXPECT_NEAR(u_s[p], u_c[p], 0.005) << "parity n=" << n << " P" << p;
    }
  }
}

TEST(HierarchicalTest, CoordinationGainDampsBoundaryActuation) {
  const rts::SystemSpec spec = workloads::chain_cluster(chain_params(32), 9);
  const SparsePlantModel model = make_sparse_plant_model(spec);
  const Vector r0 = spec.initial_rate_vector();
  HierarchicalParams hier;
  hier.shard_size = 8;
  hier.coordination_gain = 0.5;
  HierarchicalMpcController ctrl(model, cluster_params(), hier, r0);
  // Damped coordination still converges to the same fixpoint, just slower.
  SparseLinearPlant plant(model, Vector(model.num_processors(), 1.0), r0);
  Vector u = plant.utilization();
  for (int k = 0; k < 200; ++k) u = plant.step(ctrl.update(u));
  for (std::size_t p = 0; p < model.num_processors(); ++p)
    EXPECT_NEAR(u[p], model.b[p], 0.005) << "P" << p;
}

TEST(HierarchicalTest, SharedWorkspaceSizesToLargestShard) {
  const rts::SystemSpec spec = workloads::chain_cluster(chain_params(64), 13);
  const SparsePlantModel model = make_sparse_plant_model(spec);
  HierarchicalParams hier;
  hier.shard_size = 16;
  HierarchicalMpcController ctrl(model, cluster_params(), hier,
                                 spec.initial_rate_vector());
  const auto [vars, cons] = ctrl.workspace_capacity();
  // Largest shard: |owned| * M decision variables — far below the m * M a
  // per-cluster workspace would hold.
  EXPECT_EQ(vars, ctrl.max_shard_problem_size());
  EXPECT_LT(vars, model.num_tasks());
  EXPECT_GT(cons, 0u);
}

TEST(HierarchicalTest, RunsUnderTheExperimentHarness) {
  ExperimentConfig cfg;
  cfg.spec = workloads::medium();
  cfg.controller = ControllerKind::kHierarchical;
  cfg.mpc = workloads::medium_controller_params();
  cfg.hier.shard_size = 2;
  cfg.sim.etf = rts::EtfProfile::constant(0.5);
  cfg.sim.jitter = 0.2;
  cfg.sim.seed = 7;
  cfg.num_periods = 200;
  const ExperimentResult res = run_experiment(cfg);
  ASSERT_EQ(res.trace.size(), 200u);
  const linalg::Vector b = make_plant_model(cfg.spec).b;
  for (std::size_t p = 0; p < 4; ++p) {
    double mean = 0.0;
    for (int k = 150; k < 200; ++k) mean += res.trace[static_cast<std::size_t>(k)].u[p];
    mean /= 50.0;
    EXPECT_NEAR(mean, b[p], 0.05) << "P" << p;
  }
}

TEST(HierarchicalTest, SerialAndPooledBatchesAreByteIdentical) {
  // The sharded controller must keep run_batch's determinism contract:
  // pooled execution produces the same traces as serial, bit for bit.
  std::vector<ExperimentSpec> specs;
  for (int i = 0; i < 4; ++i) {
    ExperimentSpec s;
    s.name = "hier-" + std::to_string(i);
    s.config.spec = workloads::medium();
    s.config.controller = ControllerKind::kHierarchical;
    s.config.mpc = workloads::medium_controller_params();
    s.config.hier.shard_size = 1 + static_cast<std::size_t>(i);
    s.config.sim.etf = rts::EtfProfile::constant(0.4 + 0.1 * i);
    s.config.sim.seed = 100 + static_cast<std::uint64_t>(i);
    s.config.num_periods = 60;
    specs.push_back(std::move(s));
  }
  BatchOptions serial;
  serial.serial = true;
  BatchOptions pooled;
  pooled.num_workers = 4;
  const auto a = run_batch(specs, serial);
  const auto b = run_batch(specs, pooled);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].trace.size(), b[i].trace.size());
    for (std::size_t k = 0; k < a[i].trace.size(); ++k) {
      EXPECT_EQ(a[i].trace[k].u, b[i].trace[k].u);
      EXPECT_EQ(a[i].trace[k].rates, b[i].trace[k].rates);
    }
  }
}

TEST(HierarchicalTest, RejectsBadConfig) {
  const SparsePlantModel model = make_sparse_plant_model(workloads::simple());
  const Vector r0 = workloads::simple().initial_rate_vector();
  HierarchicalParams bad;
  bad.shard_size = 0;
  EXPECT_THROW(HierarchicalMpcController(model, cluster_params(), bad, r0),
               std::invalid_argument);
  bad.shard_size = 4;
  bad.coordination_gain = 0.0;
  EXPECT_THROW(HierarchicalMpcController(model, cluster_params(), bad, r0),
               std::invalid_argument);
  HierarchicalParams ok;
  HierarchicalMpcController ctrl(model, cluster_params(), ok, r0);
  EXPECT_THROW(ctrl.update(Vector{0.5}), std::invalid_argument);
  EXPECT_THROW(ctrl.shard_tasks(99), std::invalid_argument);
  EXPECT_THROW(ctrl.shard_of_processor(99), std::invalid_argument);
}

}  // namespace
}  // namespace eucon::control
