// End-to-end reproduction checks on the MEDIUM workload (paper §7.2-7.3,
// Figures 5-8).
#include <gtest/gtest.h>

#include "eucon/eucon.h"

namespace eucon {
namespace {

ExperimentConfig medium_config(double etf, int periods = 300) {
  ExperimentConfig cfg;
  cfg.spec = workloads::medium();
  cfg.mpc = workloads::medium_controller_params();
  cfg.sim.etf = rts::EtfProfile::constant(etf);
  cfg.sim.jitter = 0.2;  // "uniform random distribution" of exec times
  cfg.sim.seed = 7;
  cfg.num_periods = periods;
  return cfg;
}

// The paper's Experiment-II profile: 0.5, then +80% at 100Ts, then a 67%
// drop at 200Ts.
rts::EtfProfile dynamic_profile() {
  return rts::EtfProfile::steps({{0.0, 0.5}, {100000.0, 0.9}, {200000.0, 0.33}});
}

// Figure 5: EUCON holds the set point across etf in [0.1, 1] on all four
// processors (OPEN would sit at etf * B).
class MediumSteadyEtf : public ::testing::TestWithParam<double> {};

TEST_P(MediumSteadyEtf, AcceptableUtilization) {
  const double etf = GetParam();
  const ExperimentResult res = run_experiment(medium_config(etf));
  for (std::size_t p = 0; p < 4; ++p) {
    const auto a = metrics::acceptability(res, p);
    EXPECT_TRUE(a.acceptable())
        << "etf=" << etf << " P" << p + 1 << " mean=" << a.mean
        << " sd=" << a.stddev << " set=" << a.set_point;
  }
}

INSTANTIATE_TEST_SUITE_P(EtfRange, MediumSteadyEtf,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 1.0));

TEST(IntegrationMedium, OscillationGrowsWhenUnderestimated) {
  const double sd_half = metrics::acceptability(run_experiment(medium_config(0.5)), 0).stddev;
  const double sd_three = metrics::acceptability(run_experiment(medium_config(3.0)), 0).stddev;
  EXPECT_LT(sd_half, 0.05);
  EXPECT_GT(sd_three, sd_half);
}

TEST(IntegrationMedium, OpenUnderutilizesWhenOverestimated) {
  // The paper: at etf = 0.1, OPEN's utilization is 0.073 vs EUCON's 0.729.
  ExperimentConfig cfg = medium_config(0.1);
  cfg.controller = ControllerKind::kOpen;
  const ExperimentResult res = run_experiment(cfg);
  const auto a = metrics::utilization_stats(res, 0, 100);
  EXPECT_NEAR(a.mean(), 0.073, 0.02);
}

TEST(IntegrationMedium, OpenOverloadsWhenUnderestimated) {
  ExperimentConfig cfg = medium_config(2.0);
  cfg.controller = ControllerKind::kOpen;
  const ExperimentResult res = run_experiment(cfg);
  // Demand 2 * 0.73 saturates the CPUs.
  EXPECT_GT(metrics::utilization_stats(res, 0, 100).mean(), 0.95);
}

// Figures 6 vs 7: under the dynamic profile OPEN swings with the load
// while EUCON re-converges after each change.
TEST(IntegrationMedium, Fig6OpenFluctuatesWithDynamicLoad) {
  ExperimentConfig cfg = medium_config(0.5);
  cfg.controller = ControllerKind::kOpen;
  cfg.sim.etf = dynamic_profile();
  const ExperimentResult res = run_experiment(cfg);
  const double phase1 = metrics::utilization_stats(res, 0, 50, 100).mean();
  const double phase2 = metrics::utilization_stats(res, 0, 150, 200).mean();
  const double phase3 = metrics::utilization_stats(res, 0, 250, 300).mean();
  // Means scale with the etf steps 0.5 -> 0.9 -> 0.33.
  EXPECT_NEAR(phase2 / phase1, 0.9 / 0.5, 0.15);
  EXPECT_NEAR(phase3 / phase1, 0.33 / 0.5, 0.15);
}

TEST(IntegrationMedium, Fig7EuconReconvergesAfterLoadChanges) {
  ExperimentConfig cfg = medium_config(0.5);
  cfg.sim.etf = dynamic_profile();
  const ExperimentResult res = run_experiment(cfg);
  // Settled in each phase tail.
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_TRUE(metrics::acceptability(res, p, 60, 100).acceptable())
        << "phase 1, P" << p + 1;
    EXPECT_TRUE(metrics::acceptability(res, p, 160, 200).acceptable())
        << "phase 2, P" << p + 1;
    EXPECT_TRUE(metrics::acceptability(res, p, 260, 300).acceptable())
        << "phase 3, P" << p + 1;
  }
  // Re-convergence within ~20 sampling periods of the +80% step at 100Ts
  // (paper: "within 20Ts").
  const int settle = metrics::settling_time(res, 0, 100, 0.07, 10);
  ASSERT_GE(settle, 0);
  EXPECT_LE(settle, 30);
}

TEST(IntegrationMedium, Fig8RatesAdaptInTheRightDirection) {
  ExperimentConfig cfg = medium_config(0.5);
  cfg.sim.etf = dynamic_profile();
  const ExperimentResult res = run_experiment(cfg);
  // Rates drop after the exec-time increase at 100Ts, rise after the drop
  // at 200Ts.
  for (std::size_t task : {std::size_t{0}, std::size_t{5}}) {
    const auto rates = res.rate_series(task);
    const double before = rates[95];
    const double overloaded = rates[140];
    const double relieved = rates[295];
    EXPECT_LT(overloaded, before) << "task " << task;
    EXPECT_GT(relieved, overloaded) << "task " << task;
  }
}

TEST(IntegrationMedium, SettlingSlowerAfterDownStepThanUpStep) {
  // §7.3: the settling after 200Ts (smaller gain) is slower than after
  // 100Ts (larger gain).
  ExperimentConfig cfg = medium_config(0.5);
  cfg.sim.etf = dynamic_profile();
  const ExperimentResult res = run_experiment(cfg);
  const int settle_up = metrics::settling_time(res, 0, 100, 0.07, 5);
  const int settle_down = metrics::settling_time(res, 0, 200, 0.07, 5);
  ASSERT_GE(settle_up, 0);
  ASSERT_GE(settle_down, 0);
  EXPECT_GE(settle_down, settle_up);
}

}  // namespace
}  // namespace eucon
