// End-to-end reproduction checks on the SIMPLE workload (paper §7.2,
// Figures 3 and 4): full event-driven simulator + MPC controller.
#include <gtest/gtest.h>

#include "eucon/eucon.h"

namespace eucon {
namespace {

ExperimentConfig simple_config(double etf, int periods = 300) {
  ExperimentConfig cfg;
  cfg.spec = workloads::simple();
  cfg.mpc = workloads::simple_controller_params();
  cfg.sim.etf = rts::EtfProfile::constant(etf);
  cfg.sim.jitter = 0.1;
  cfg.sim.seed = 42;
  cfg.num_periods = periods;
  return cfg;
}

// Figure 3(a): etf = 0.5 — both processors converge to the 0.828 set point.
TEST(IntegrationSimple, Fig3aConvergesAtEtfHalf) {
  const ExperimentResult res = run_experiment(simple_config(0.5));
  for (std::size_t p = 0; p < 2; ++p) {
    const auto a = metrics::acceptability(res, p);
    EXPECT_TRUE(a.acceptable())
        << "P" << p + 1 << " mean=" << a.mean << " sd=" << a.stddev;
  }
  // The transient starts underutilized and rises (rates increase).
  EXPECT_LT(res.trace[0].u[0], 0.6);
  EXPECT_GT(res.trace[40].u[0], 0.75);
}

// Figure 3(b): etf = 7 — beyond the critical gain, no convergence.
TEST(IntegrationSimple, Fig3bUnstableAtEtfSeven) {
  const ExperimentResult res = run_experiment(simple_config(7.0));
  bool acceptable = true;
  for (std::size_t p = 0; p < 2; ++p)
    acceptable = acceptable && metrics::acceptability(res, p).acceptable();
  EXPECT_FALSE(acceptable);
  // Oscillation: large standard deviation on P1.
  EXPECT_GT(metrics::acceptability(res, 0).stddev, 0.05);
}

// Figure 4's key shape: acceptable performance for moderate etf, rising
// deviation as execution times are underestimated, divergence at 7+.
TEST(IntegrationSimple, Fig4DeviationGrowsWithEtf) {
  const double sd1 = metrics::acceptability(run_experiment(simple_config(1.0)), 0).stddev;
  const double sd3 = metrics::acceptability(run_experiment(simple_config(3.0)), 0).stddev;
  const double sd7 = metrics::acceptability(run_experiment(simple_config(7.0)), 0).stddev;
  EXPECT_LT(sd1, 0.05);
  EXPECT_LT(sd3, 0.10);  // growing but still bounded oscillation
  EXPECT_GT(sd7, 0.10);  // clearly oscillating
  EXPECT_LT(sd1, sd3);
  EXPECT_LT(sd3, sd7);
}

// Pessimistic estimation (etf < 1) must NOT underutilize the CPU — the key
// difference from open-loop scheduling (§6.3).
TEST(IntegrationSimple, PessimisticEstimatesDoNotUnderutilize) {
  for (double etf : {0.5, 0.8}) {
    const ExperimentResult res = run_experiment(simple_config(etf));
    const auto a = metrics::acceptability(res, 0);
    EXPECT_TRUE(a.acceptable()) << "etf " << etf;
    EXPECT_GT(a.mean, 0.80) << "etf " << etf;
  }
}

// With Table 1's rate caps (1/Rmax = c_ij), etf below ~0.414 saturates the
// rates: utilization tops out at 2*etf on P1 (the paper inconsistency
// documented in DESIGN.md).
TEST(IntegrationSimple, RateSaturationBelowFeasibleEtf) {
  const ExperimentResult res = run_experiment(simple_config(0.2));
  const auto a = metrics::acceptability(res, 0);
  EXPECT_NEAR(a.mean, 0.4, 0.03);  // 2 * 0.2, not the 0.828 set point
  // Rates parked at their caps.
  const auto rates = res.trace.back().rates;
  EXPECT_NEAR(rates[0], 1.0 / 35.0, 1e-6);
}

// The relaxed variant reproduces the paper's claimed tracking at etf = 0.2.
TEST(IntegrationSimple, RelaxedBoundsTrackAtEtfPointTwo) {
  ExperimentConfig cfg = simple_config(0.2);
  cfg.spec = workloads::simple_relaxed();
  const ExperimentResult res = run_experiment(cfg);
  EXPECT_TRUE(metrics::acceptability(res, 0).acceptable());
  EXPECT_TRUE(metrics::acceptability(res, 1).acceptable());
}

// OPEN at etf != 1 misses the set point in proportion to the estimation
// error (Figure 5's message, demonstrated on SIMPLE).
TEST(IntegrationSimple, OpenLoopTracksOnlyAtNominalEtf) {
  ExperimentConfig cfg = simple_config(1.0);
  cfg.controller = ControllerKind::kOpen;
  const auto nominal = metrics::acceptability(run_experiment(cfg), 0);
  EXPECT_NEAR(nominal.mean, 0.828, 0.05);

  cfg = simple_config(0.5);
  cfg.controller = ControllerKind::kOpen;
  const auto under = metrics::acceptability(run_experiment(cfg), 0);
  EXPECT_NEAR(under.mean, 0.414, 0.05);  // half the set point
  EXPECT_FALSE(under.acceptable());
}

// EUCON keeps every processor's utilization no higher than its set point
// on average (the convergence guarantee of §3.2).
TEST(IntegrationSimple, UtilizationConvergesBelowOrAtSetPoint) {
  for (double etf : {0.5, 1.0, 2.0}) {
    const ExperimentResult res = run_experiment(simple_config(etf));
    for (std::size_t p = 0; p < 2; ++p) {
      const auto s = metrics::utilization_stats(res, p, 100);
      EXPECT_LE(s.mean(), res.set_points[p] + 0.02)
          << "etf " << etf << " P" << p + 1;
    }
  }
}

// Deadline guarantee: when utilization tracks the Liu–Layland bound from
// below (etf = 0.5's smooth convergence), subtask deadline misses are rare.
TEST(IntegrationSimple, SubtaskMissesLowAtModerateLoad) {
  const ExperimentResult res = run_experiment(simple_config(0.5));
  EXPECT_LT(res.deadlines.subtask_miss_ratio(), 0.05);
}

}  // namespace
}  // namespace eucon
