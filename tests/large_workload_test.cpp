// The LARGE workload: structure, diagnostics, and closed-loop control at
// the "larger scale" the paper defers to future work.
#include <gtest/gtest.h>

#include "eucon/eucon.h"

namespace eucon::workloads {
namespace {

TEST(LargeWorkloadTest, Structure) {
  const rts::SystemSpec s = large();
  EXPECT_EQ(s.num_processors, 8);
  EXPECT_EQ(s.num_subtasks(), 56u);
  const auto counts = s.subtasks_per_processor();
  for (int p = 0; p < 8; ++p) EXPECT_EQ(counts[static_cast<std::size_t>(p)], 7);
  int e2e = 0;
  for (const auto& t : s.tasks)
    if (t.subtasks.size() > 1) ++e2e;
  EXPECT_GE(e2e, 16);
}

TEST(LargeWorkloadTest, DiagnosticsClean) {
  const auto d = control::diagnose_plant(control::make_plant_model(large()));
  EXPECT_TRUE(d.full_row_rank);
  EXPECT_TRUE(d.structurally_feasible());
}

TEST(LargeWorkloadTest, SetPointsFollowLiuLayland) {
  const auto b = large().liu_layland_set_points();
  for (std::size_t p = 0; p < 8; ++p)
    EXPECT_NEAR(b[p], 7.0 * (std::pow(2.0, 1.0 / 7.0) - 1.0), 1e-12);
}

TEST(LargeWorkloadTest, CentralizedEuconControlsIt) {
  ExperimentConfig cfg;
  cfg.spec = large();
  cfg.mpc = workloads::medium_controller_params();
  cfg.sim.etf = rts::EtfProfile::constant(0.6);
  cfg.sim.jitter = 0.2;
  cfg.sim.seed = 3;
  cfg.num_periods = 200;
  const ExperimentResult res = run_experiment(cfg);
  for (std::size_t p = 0; p < 8; ++p) {
    const auto a = metrics::acceptability(res, p, 100, 0, 0.03, 0.05);
    EXPECT_TRUE(a.acceptable())
        << "P" << p + 1 << " mean " << a.mean << " sd " << a.stddev;
  }
}

TEST(LargeWorkloadTest, DecentralizedHandlesItWithSmallLocalProblems) {
  const auto model = control::make_plant_model(large());
  control::DecentralizedMpcController ctrl(
      model, workloads::medium_controller_params(),
      large().initial_rate_vector());
  EXPECT_EQ(ctrl.num_local_controllers(), 8u);
  EXPECT_LE(ctrl.max_local_problem_size(), 6u);  // vs 28 tasks centralized

  ExperimentConfig cfg;
  cfg.spec = large();
  cfg.controller = ControllerKind::kDecentralized;
  cfg.mpc = workloads::medium_controller_params();
  cfg.sim.etf = rts::EtfProfile::constant(0.6);
  cfg.sim.jitter = 0.2;
  cfg.sim.seed = 3;
  cfg.num_periods = 200;
  const ExperimentResult res = run_experiment(cfg);
  for (std::size_t p = 0; p < 8; ++p) {
    const auto a = metrics::acceptability(res, p, 120, 0, 0.05, 0.06);
    EXPECT_TRUE(a.acceptable())
        << "P" << p + 1 << " mean " << a.mean << " sd " << a.stddev;
  }
}

}  // namespace
}  // namespace eucon::workloads
