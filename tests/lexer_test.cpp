// Unit tests for the eucon_lint token lexer (src/analysis/lexer.h): token
// classification, source positions, literal handling, and the properties
// the rule engine leans on (comments/strings are never code; '}' reports
// its matching depth).
#include "analysis/lexer.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ea = eucon::analysis;

namespace {

std::vector<ea::Token> code_only(const std::string& src) {
  std::vector<ea::Token> out;
  for (const ea::Token& t : ea::tokenize(src))
    if (t.kind != ea::TokenKind::kComment) out.push_back(t);
  return out;
}

TEST(LexerTest, ClassifiesBasicTokenKinds) {
  const auto toks = ea::tokenize("int x = 42; // done");
  ASSERT_EQ(toks.size(), 6u);
  EXPECT_EQ(toks[0].kind, ea::TokenKind::kIdentifier);
  EXPECT_EQ(toks[0].text, "int");
  EXPECT_EQ(toks[1].text, "x");
  EXPECT_EQ(toks[2].kind, ea::TokenKind::kPunct);
  EXPECT_EQ(toks[3].kind, ea::TokenKind::kNumber);
  EXPECT_EQ(toks[4].text, ";");
  EXPECT_EQ(toks[5].kind, ea::TokenKind::kComment);
  EXPECT_EQ(toks[5].text, "// done");
}

TEST(LexerTest, TracksLineAndColumn) {
  const auto toks = ea::tokenize("a\n  bb\n\tccc");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].line, 1u);
  EXPECT_EQ(toks[0].col, 1u);
  EXPECT_EQ(toks[1].line, 2u);
  EXPECT_EQ(toks[1].col, 3u);
  EXPECT_EQ(toks[2].line, 3u);
  EXPECT_EQ(toks[2].col, 2u);
}

TEST(LexerTest, CommentsSwallowCodeLikeText) {
  const auto toks = code_only("x; // assert(1) == 0.5\n/* throw; */ y;");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0].text, "x");
  EXPECT_EQ(toks[2].text, "y");
}

TEST(LexerTest, MultiLineBlockCommentKeepsStartLine) {
  const auto toks = ea::tokenize("/* one\ntwo\nthree */ after");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].kind, ea::TokenKind::kComment);
  EXPECT_EQ(toks[0].line, 1u);
  EXPECT_EQ(toks[1].text, "after");
  EXPECT_EQ(toks[1].line, 3u);
}

TEST(LexerTest, StringsAreSingleTokensWithEscapes) {
  const auto toks = ea::tokenize(R"(const char* s = "a \" b // c";)");
  ASSERT_EQ(toks.size(), 7u);
  EXPECT_EQ(toks[5].kind, ea::TokenKind::kString);
  EXPECT_EQ(toks[5].text, "\"a \\\" b // c\"");
}

TEST(LexerTest, RawStringsSpanLinesWithoutEscapes) {
  const auto toks = ea::tokenize("auto s = R\"x(line \" one\nrand())x\"; z");
  ASSERT_EQ(toks.size(), 6u);
  EXPECT_EQ(toks[3].kind, ea::TokenKind::kString);
  EXPECT_EQ(toks[3].text, "R\"x(line \" one\nrand())x\"");
  EXPECT_EQ(toks[5].text, "z");
  EXPECT_EQ(toks[5].line, 2u);
}

TEST(LexerTest, PrefixedLiteralsAreLiterals) {
  const auto toks = ea::tokenize("auto a = u8\"hi\"; auto b = L'x';");
  EXPECT_EQ(toks[3].kind, ea::TokenKind::kString);
  EXPECT_EQ(toks[3].text, "u8\"hi\"");
  EXPECT_EQ(toks[8].kind, ea::TokenKind::kChar);
  EXPECT_EQ(toks[8].text, "L'x'");
}

TEST(LexerTest, CombinedPrefixRawStringAndHexSeparators) {
  // u8R combines an encoding prefix with a raw delimiter; the call-shaped
  // text inside must not leak tokens (the realtime rules would otherwise
  // see a phantom malloc() on a hot path). Hex separators stay one number.
  const auto toks =
      ea::tokenize("auto s = u8R\"(malloc(0))\"; auto m = 0xFF'FF;");
  ASSERT_EQ(toks.size(), 10u);
  EXPECT_EQ(toks[3].kind, ea::TokenKind::kString);
  EXPECT_EQ(toks[3].text, "u8R\"(malloc(0))\"");
  EXPECT_EQ(toks[8].kind, ea::TokenKind::kNumber);
  EXPECT_EQ(toks[8].text, "0xFF'FF");
}

TEST(LexerTest, DirectivesAreNormalizedAndIncludePathsAreStrings) {
  const auto toks = ea::tokenize("#  pragma once\n#include <sys/socket.h>\n");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0].kind, ea::TokenKind::kDirective);
  EXPECT_EQ(toks[0].text, "#pragma");
  EXPECT_EQ(toks[1].text, "once");
  EXPECT_EQ(toks[2].text, "#include");
  EXPECT_EQ(toks[3].kind, ea::TokenKind::kString);
  EXPECT_EQ(toks[3].text, "<sys/socket.h>");
}

TEST(LexerTest, HashMidLineIsNotADirective) {
  const auto toks = ea::tokenize("int a = 1; #");
  EXPECT_EQ(toks.back().kind, ea::TokenKind::kPunct);
}

TEST(LexerTest, NumbersHandleSeparatorsAndExponents) {
  const auto toks = ea::tokenize("1'000'000 1e-3 0x1p+4 3.14f .5");
  ASSERT_EQ(toks.size(), 5u);
  for (const ea::Token& t : toks) EXPECT_EQ(t.kind, ea::TokenKind::kNumber);
  EXPECT_EQ(toks[0].text, "1'000'000");
  EXPECT_EQ(toks[1].text, "1e-3");
  EXPECT_EQ(toks[2].text, "0x1p+4");
  EXPECT_EQ(toks[3].text, "3.14f");
  EXPECT_EQ(toks[4].text, ".5");
}

TEST(LexerTest, FloatLiteralTextClassification) {
  EXPECT_TRUE(ea::is_float_literal_text("1.0"));
  EXPECT_TRUE(ea::is_float_literal_text("1e9"));
  EXPECT_TRUE(ea::is_float_literal_text(".5"));
  EXPECT_TRUE(ea::is_float_literal_text("0x1p3"));
  EXPECT_FALSE(ea::is_float_literal_text("42"));
  EXPECT_FALSE(ea::is_float_literal_text("0x1f"));
  EXPECT_FALSE(ea::is_float_literal_text("100u"));
}

TEST(LexerTest, MaximalMunchPunctuators) {
  const auto toks = ea::tokenize("a <<= b; c <=> d; e->f; x >>= 1;");
  std::vector<std::string> puncts;
  for (const ea::Token& t : toks)
    if (t.kind == ea::TokenKind::kPunct && t.text.size() > 1)
      puncts.push_back(t.text);
  EXPECT_EQ(puncts, (std::vector<std::string>{"<<=", "<=>", "->", ">>="}));
}

TEST(LexerTest, BraceDepthMatchesNesting) {
  const auto toks = ea::tokenize("a { b { c } d } e");
  ASSERT_EQ(toks.size(), 9u);
  EXPECT_EQ(toks[0].depth, 0);  // a
  EXPECT_EQ(toks[2].depth, 1);  // b
  EXPECT_EQ(toks[4].depth, 2);  // c
  EXPECT_EQ(toks[5].depth, 1);  // '}' reports its matching '{' depth
  EXPECT_EQ(toks[8].depth, 0);  // e
}

TEST(LexerTest, LineContinuationJoinsLogicalLine) {
  const auto toks = ea::tokenize("int a\\\n= 3;");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[2].text, "=");
  EXPECT_EQ(toks[2].line, 2u);
}

TEST(LexerTest, UnterminatedStringClosesAtEndOfLine) {
  const auto toks = ea::tokenize("\"oops\nnext");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].kind, ea::TokenKind::kString);
  EXPECT_EQ(toks[1].text, "next");
}

}  // namespace
