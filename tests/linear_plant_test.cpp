#include "control/linear_plant.h"

#include <gtest/gtest.h>

#include "eucon/workloads.h"

namespace eucon::control {
namespace {

using linalg::Vector;

TEST(LinearPlantTest, InitialUtilizationFromRates) {
  const PlantModel model = make_plant_model(workloads::simple());
  const Vector r0 = workloads::simple().initial_rate_vector();
  LinearPlant plant(model, Vector{1.0, 1.0}, r0);
  const Vector expected = model.f * r0;
  EXPECT_NEAR(plant.utilization()[0], expected[0], 1e-12);
  EXPECT_NEAR(plant.utilization()[1], expected[1], 1e-12);
}

TEST(LinearPlantTest, StepFollowsDifferenceEquation) {
  const PlantModel model = make_plant_model(workloads::simple());
  const Vector r0 = workloads::simple().initial_rate_vector();
  LinearPlant plant(model, Vector{0.5, 0.25}, r0);  // gains avoid saturation
  const Vector u0 = plant.utilization();
  Vector r1 = r0;
  r1[0] += 0.001;
  const Vector u1 = plant.step(r1);
  // Δb = F Δr; u += G Δb (paper eq. 5).
  EXPECT_NEAR(u1[0], u0[0] + 0.5 * model.f(0, 0) * 0.001, 1e-12);
  EXPECT_NEAR(u1[1], u0[1] + 0.25 * model.f(1, 0) * 0.001, 1e-12);
}

TEST(LinearPlantTest, SaturatesAtZeroAndOne) {
  const PlantModel model = make_plant_model(workloads::simple());
  const Vector r0 = workloads::simple().initial_rate_vector();
  LinearPlant plant(model, Vector{50.0, 50.0}, r0);
  EXPECT_LE(plant.utilization()[0], 1.0);
  Vector tiny(3, 1e-9);
  const Vector u = plant.step(tiny);  // huge negative Δr, saturate at 0
  EXPECT_GE(u[0], 0.0);
  EXPECT_GE(u[1], 0.0);
}

TEST(LinearPlantTest, RejectsWrongSizes) {
  const PlantModel model = make_plant_model(workloads::simple());
  const Vector r0 = workloads::simple().initial_rate_vector();
  EXPECT_THROW(LinearPlant(model, Vector{1.0}, r0), std::invalid_argument);
  LinearPlant plant(model, Vector{1.0, 1.0}, r0);
  EXPECT_THROW(plant.step(Vector{0.1}), std::invalid_argument);
}

}  // namespace
}  // namespace eucon::control
