// Unit tests for the eucon_lint rule engine and output layer
// (src/analysis/rules.h, src/analysis/output.h): one positive and one
// negative case per concurrency rule, suppression behavior, the JSON
// schema, and the baseline round-trip. Sources are linted in memory via
// lint_source — no subprocess, no temp files.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/output.h"
#include "analysis/rules.h"

namespace ea = eucon::analysis;

namespace {

std::vector<std::string> rules_of(const std::vector<ea::Finding>& findings) {
  std::vector<std::string> out;
  for (const ea::Finding& f : findings) out.push_back(f.rule);
  return out;
}

bool has_rule(const std::vector<ea::Finding>& findings,
              const std::string& rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const ea::Finding& f) { return f.rule == rule; });
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(LintRegistryTest, AllSeventeenRulesRegistered) {
  EXPECT_EQ(ea::rule_registry().size(), 17u);
  for (const char* name :
       {"raw-assert", "float-equality", "banned-random",
        "using-namespace-header", "missing-pragma-once", "raw-throw",
        "narrowing-size-cast", "locked-field-access", "detached-thread",
        "blocking-in-callback", "nondeterministic-parallel",
        "allocation-in-realtime", "blocking-in-realtime",
        "nondeterminism-in-realtime", "lock-order-inversion",
        "blocking-while-locked", "callback-under-lock"})
    EXPECT_TRUE(ea::known_rule(name)) << name;
  EXPECT_FALSE(ea::known_rule("no-such-rule"));
}

// ---------------------------------------------------------------------------
// locked-field-access
// ---------------------------------------------------------------------------

TEST(LockedFieldAccessTest, FiresOnUnlockedAccess) {
  const auto f = ea::lint_source("a.cpp",
                                 "struct S {\n"
                                 "  void bump() { ++n_; }\n"
                                 "  Mutex mu_;\n"
                                 "  int n_ EUCON_GUARDED_BY(mu_) = 0;\n"
                                 "};\n");
  ASSERT_TRUE(has_rule(f, "locked-field-access"));
  EXPECT_EQ(f[0].line, 2u);
}

TEST(LockedFieldAccessTest, SilentUnderRaiiLockOrRequires) {
  const auto f = ea::lint_source(
      "a.cpp",
      "struct S {\n"
      "  void bump() { const MutexLock lock(mu_); ++n_; }\n"
      "  void bump2() EUCON_REQUIRES(mu_) { ++n_; }\n"
      "  void bump3() { std::lock_guard<std::mutex> g(mu_); ++n_; }\n"
      "  Mutex mu_;\n"
      "  int n_ EUCON_GUARDED_BY(mu_) = 0;\n"
      "};\n");
  EXPECT_FALSE(has_rule(f, "locked-field-access")) << ea::render_text(f);
}

TEST(LockedFieldAccessTest, LockReleaseEndsWithScope) {
  const auto f = ea::lint_source("a.cpp",
                                 "struct S {\n"
                                 "  void bump() {\n"
                                 "    { const MutexLock lock(mu_); ++n_; }\n"
                                 "    ++n_;\n"
                                 "  }\n"
                                 "  Mutex mu_;\n"
                                 "  int n_ EUCON_GUARDED_BY(mu_) = 0;\n"
                                 "};\n");
  ASSERT_TRUE(has_rule(f, "locked-field-access"));
  EXPECT_EQ(f[0].line, 4u);
}

TEST(LockedFieldAccessTest, CompanionHeaderDisciplineApplies) {
  const std::string header =
      "struct S {\n"
      "  void locked() EUCON_REQUIRES(mu_);\n"
      "  void unlocked();\n"
      "  Mutex mu_;\n"
      "  int n_ EUCON_GUARDED_BY(mu_) = 0;\n"
      "};\n";
  const std::string good = "void S::locked() { ++n_; }\n";
  const std::string bad = "void S::unlocked() { ++n_; }\n";
  EXPECT_FALSE(has_rule(ea::lint_source("s.cpp", good, header),
                        "locked-field-access"));
  EXPECT_TRUE(has_rule(ea::lint_source("s.cpp", bad, header),
                       "locked-field-access"));
}

TEST(LockedFieldAccessTest, ManualLockUnlockTracked) {
  const auto f = ea::lint_source("a.cpp",
                                 "struct S {\n"
                                 "  void bump() {\n"
                                 "    mu_.lock();\n"
                                 "    ++n_;\n"
                                 "    mu_.unlock();\n"
                                 "    ++n_;\n"
                                 "  }\n"
                                 "  Mutex mu_;\n"
                                 "  int n_ EUCON_GUARDED_BY(mu_) = 0;\n"
                                 "};\n");
  ASSERT_EQ(rules_of(f),
            (std::vector<std::string>{"locked-field-access"}));
  EXPECT_EQ(f[0].line, 6u);
}

// ---------------------------------------------------------------------------
// detached-thread
// ---------------------------------------------------------------------------

TEST(DetachedThreadTest, FiresOnRawThreadAndDetach) {
  const auto f = ea::lint_source(
      "a.cpp", "void go() { std::thread t([]{}); t.detach(); }\n");
  EXPECT_EQ(rules_of(f), (std::vector<std::string>{"detached-thread",
                                                   "detached-thread"}));
}

TEST(DetachedThreadTest, SilentOnStaticMembersAndOwners) {
  EXPECT_TRUE(ea::lint_source(
                  "a.cpp",
                  "unsigned n() { return std::thread::hardware_concurrency(); }\n")
                  .empty());
  // The pool implementation itself is exempt.
  EXPECT_TRUE(ea::lint_source("common/thread_pool.cpp",
                              "void f() { std::thread t([]{}); }\n")
                  .empty());
}

// ---------------------------------------------------------------------------
// blocking-in-callback
// ---------------------------------------------------------------------------

TEST(BlockingInCallbackTest, FiresInsideSubmittedLambda) {
  const auto f = ea::lint_source(
      "a.cpp",
      "void go(ThreadPool& p, std::future<int>& other) {\n"
      "  p.submit([&] { other.wait(); });\n"
      "  p.submit([] { std::this_thread::sleep_for(ms(1)); });\n"
      "}\n");
  EXPECT_EQ(rules_of(f), (std::vector<std::string>{"blocking-in-callback",
                                                   "blocking-in-callback"}));
}

TEST(BlockingInCallbackTest, SilentOnCallerSideBlocking) {
  const auto f = ea::lint_source("a.cpp",
                                 "int go(ThreadPool& p) {\n"
                                 "  auto fut = p.submit([] { return 1; });\n"
                                 "  return fut.get();\n"
                                 "}\n");
  EXPECT_TRUE(f.empty()) << ea::render_text(f);
}

// ---------------------------------------------------------------------------
// nondeterministic-parallel
// ---------------------------------------------------------------------------

TEST(NondeterministicParallelTest, FiresOnStaticRngAndRandomDevice) {
  EXPECT_TRUE(has_rule(
      ea::lint_source("a.cpp", "int r() { static std::mt19937 g(1); return 0; }\n"),
      "nondeterministic-parallel"));
  EXPECT_TRUE(has_rule(
      ea::lint_source("a.cpp", "int r() { thread_local Rng rng(1); return 0; }\n"),
      "nondeterministic-parallel"));
  EXPECT_TRUE(has_rule(
      ea::lint_source("a.cpp", "int r() { std::random_device rd; return 0; }\n"),
      "nondeterministic-parallel"));
}

TEST(NondeterministicParallelTest, SilentOnSeededStreamsAndFactories) {
  const auto f = ea::lint_source(
      "a.cpp",
      "int a(eucon::Rng& rng) { return rng.next_int(); }\n"
      "struct F { static Rng make(std::uint64_t seed); };\n"
      "static const Rng kFixed(7);\n");
  EXPECT_TRUE(f.empty()) << ea::render_text(f);
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

TEST(SuppressionTest, AllowSilencesNamedRuleOnThatLineOnly) {
  const auto f = ea::lint_source(
      "a.cpp",
      "void go() {\n"
      "  std::thread a([]{});  // eucon-lint: allow(detached-thread)\n"
      "  std::thread b([]{});\n"
      "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].line, 3u);
}

TEST(SuppressionTest, UnknownRuleNameIsItselfAFinding) {
  const auto f = ea::lint_source(
      "a.cpp", "int x;  // eucon-lint: allow(not-a-rule)\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "unknown-suppression");
}

// ---------------------------------------------------------------------------
// JSON output
// ---------------------------------------------------------------------------

TEST(JsonOutputTest, SchemaFieldsPresentAndEscaped) {
  const std::vector<ea::Finding> findings{
      {"dir/a \"quoted\".cpp", 3, 7, "raw-throw", "line1\nline2"}};
  const std::string json = ea::render_json(findings, 2);
  EXPECT_NE(json.find("\"version\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"baseline_suppressed\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"file\": \"dir/a \\\"quoted\\\".cpp\""),
            std::string::npos);
  EXPECT_NE(json.find("\"line\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"col\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"raw-throw\""), std::string::npos);
  EXPECT_NE(json.find("line1\\nline2"), std::string::npos);
}

TEST(JsonOutputTest, EmptyFindingsStillWellFormed) {
  const std::string json = ea::render_json({}, 0);
  EXPECT_NE(json.find("\"count\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"rule_counts\": {}"), std::string::npos);
  EXPECT_NE(json.find("\"findings\": []"), std::string::npos);
}

TEST(JsonOutputTest, RuleCountsAggregatePerFamilySorted) {
  const std::vector<ea::Finding> findings{
      {"a.cpp", 1, 1, "raw-throw", "m"},
      {"a.cpp", 2, 1, "lock-order-inversion", "m"},
      {"b.cpp", 3, 1, "raw-throw", "m"},
  };
  const std::string json = ea::render_json(findings, 0);
  // One entry per rule with findings, sorted by rule name.
  EXPECT_NE(json.find("\"rule_counts\": {\"lock-order-inversion\": 1, "
                      "\"raw-throw\": 2}"),
            std::string::npos)
      << json;
}

// ---------------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------------

TEST(BaselineTest, RoundTripAbsorbsExactlyTheRenderedFindings) {
  const std::vector<ea::Finding> findings{
      {"src/a.cpp", 1, 1, "raw-throw", "m"},
      {"src/a.cpp", 2, 1, "raw-throw", "m"},
      {"src/b.cpp", 9, 1, "raw-assert", "m"},
  };
  ea::Baseline baseline;
  std::string error;
  ASSERT_TRUE(ea::parse_baseline(ea::render_baseline(findings), baseline,
                                 error))
      << error;
  std::size_t suppressed = 0;
  const auto kept = ea::apply_baseline(findings, baseline, suppressed);
  EXPECT_TRUE(kept.empty());
  EXPECT_EQ(suppressed, 3u);
}

TEST(BaselineTest, MaxCountCapsAbsorption) {
  ea::Baseline baseline;
  std::string error;
  ASSERT_TRUE(ea::parse_baseline("a.cpp:raw-throw:1\n", baseline, error));
  const std::vector<ea::Finding> findings{
      {"src/a.cpp", 1, 1, "raw-throw", "m"},
      {"src/a.cpp", 2, 1, "raw-throw", "m"},
  };
  std::size_t suppressed = 0;
  const auto kept = ea::apply_baseline(findings, baseline, suppressed);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].line, 2u);
  EXPECT_EQ(suppressed, 1u);
}

TEST(BaselineTest, UnknownRuleOrBadCountIsALoadError) {
  ea::Baseline baseline;
  std::string error;
  EXPECT_FALSE(ea::parse_baseline("a.cpp:no-such-rule\n", baseline, error));
  EXPECT_NE(error.find("no-such-rule"), std::string::npos);
  EXPECT_FALSE(ea::parse_baseline("a.cpp:raw-throw:xyz\n", baseline, error));
  EXPECT_FALSE(ea::parse_baseline("justonefield\n", baseline, error));
}

TEST(BaselineTest, CommentsAndBlanksIgnored) {
  ea::Baseline baseline;
  std::string error;
  EXPECT_TRUE(ea::parse_baseline("# header\n\n  # indented comment\n",
                                 baseline, error))
      << error;
  EXPECT_TRUE(baseline.entries.empty());
}

// ---------------------------------------------------------------------------
// Style rules through the v2 engine (regression: comments/strings inert)
// ---------------------------------------------------------------------------

TEST(StyleRegressionTest, CommentAndStringBodiesNeverFire) {
  const auto f = ea::lint_source(
      "a.cpp",
      "// assert(1) throw rand() x == 0.0 std::thread t;\n"
      "const char* s = \"assert(1) throw time(nullptr)\";\n"
      "const char* r = R\"(static std::mt19937 g; rd.detach();)\";\n");
  EXPECT_TRUE(f.empty()) << ea::render_text(f);
}

TEST(StyleRegressionTest, HeaderRulesStillFire) {
  const auto f = ea::lint_source("a.h", "using namespace std;\n");
  EXPECT_EQ(rules_of(f), (std::vector<std::string>{
                             "missing-pragma-once", "using-namespace-header"}));
}

}  // namespace
